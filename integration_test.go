package aladdin_test

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"aladdin/internal/constraint"
	"aladdin/internal/core"
	"aladdin/internal/firmament"
	"aladdin/internal/gokube"
	"aladdin/internal/kubesim"
	"aladdin/internal/medea"
	"aladdin/internal/resource"
	"aladdin/internal/sched"
	"aladdin/internal/sim"
	"aladdin/internal/topology"
	"aladdin/internal/trace"
	"aladdin/internal/workload"
)

// allSchedulers returns one representative configuration per
// scheduler family.
func allSchedulers() []sched.Scheduler {
	return []sched.Scheduler{
		core.NewDefault(),
		gokube.NewDefault(),
		medea.New(medea.Options{Weights: medea.Weights{A: 1, B: 1, C: 0}}),
		firmament.New(firmament.Options{Model: firmament.Trivial, Reschd: 4}),
		firmament.New(firmament.Options{Model: firmament.Quincy, Reschd: 4}),
		firmament.New(firmament.Options{Model: firmament.Octopus, Reschd: 4}),
	}
}

// TestAllSchedulersProduceConsistentResults runs every scheduler on
// the same trace and verifies the structural invariants the Result
// contract promises: assignments match machine state, capacities are
// respected, no container is both deployed and undeployed.
func TestAllSchedulersProduceConsistentResults(t *testing.T) {
	w := trace.MustGenerate(trace.Scaled(42, 200))
	for _, s := range allSchedulers() {
		s := s
		t.Run(s.Name(), func(t *testing.T) {
			cl := topology.New(topology.AlibabaConfig(160))
			res, err := s.Schedule(w, cl, w.Arrange(workload.OrderInterleaved))
			if err != nil {
				t.Fatal(err)
			}
			if err := res.Verify(w, cl); err != nil {
				t.Fatal(err)
			}
			if res.Total != w.NumContainers() {
				t.Errorf("Total = %d, want %d", res.Total, w.NumContainers())
			}
		})
	}
}

// TestAllSchedulersDeterministic verifies the same inputs give the
// same placement decisions (required for reproducible experiments).
func TestAllSchedulersDeterministic(t *testing.T) {
	w := trace.MustGenerate(trace.Scaled(7, 300))
	for _, mk := range []func() sched.Scheduler{
		func() sched.Scheduler { return core.NewDefault() },
		func() sched.Scheduler { return gokube.NewDefault() },
		func() sched.Scheduler {
			return medea.New(medea.Options{Weights: medea.Weights{A: 1, B: 1, C: 0}})
		},
		func() sched.Scheduler {
			return firmament.New(firmament.Options{Model: firmament.Quincy, Reschd: 2})
		},
	} {
		s1, s2 := mk(), mk()
		t.Run(s1.Name(), func(t *testing.T) {
			cl1 := topology.New(topology.AlibabaConfig(128))
			cl2 := topology.New(topology.AlibabaConfig(128))
			arrivals := w.Arrange(workload.OrderCHP)
			r1, err := s1.Schedule(w, cl1, arrivals)
			if err != nil {
				t.Fatal(err)
			}
			r2, err := s2.Schedule(w, cl2, arrivals)
			if err != nil {
				t.Fatal(err)
			}
			if len(r1.Assignment) != len(r2.Assignment) {
				t.Fatalf("assignment sizes differ: %d vs %d", len(r1.Assignment), len(r2.Assignment))
			}
			for id, m := range r1.Assignment {
				if r2.Assignment[id] != m {
					t.Fatalf("container %s: %d vs %d", id, m, r2.Assignment[id])
				}
			}
		})
	}
}

// TestAladdinNeverViolatesProperty is the headline invariant as a
// property test: on random workloads Aladdin never produces an
// anti-affinity violation or a priority inversion, whatever the
// cluster size.
func TestAladdinNeverViolatesProperty(t *testing.T) {
	f := func(seed int64, machineSeed uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		apps := randomApps(rng, 2+rng.Intn(12))
		w, err := workload.New(apps)
		if err != nil {
			return false
		}
		machines := 2 + int(machineSeed)%30
		cl := topology.New(topology.Config{
			Machines: machines, MachinesPerRack: 4, RacksPerCluster: 4,
			Capacity: resource.Cores(32, 64*1024),
		})
		res, err := core.NewDefault().Schedule(w, cl, w.Arrange(workload.OrderSubmission))
		if err != nil {
			return false
		}
		if err := res.Verify(w, cl); err != nil {
			return false
		}
		s := res.ViolationSummary()
		return s.Total() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestNoSchedulerOverallocatesProperty: no scheduler may ever leave a
// machine above capacity, whatever the workload.
func TestNoSchedulerOverallocatesProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		apps := randomApps(rng, 2+rng.Intn(8))
		w, err := workload.New(apps)
		if err != nil {
			return false
		}
		for _, s := range allSchedulers() {
			cl := topology.New(topology.Config{
				Machines: 8, MachinesPerRack: 4, RacksPerCluster: 2,
				Capacity: resource.Cores(32, 64*1024),
			})
			res, err := s.Schedule(w, cl, w.Arrange(workload.OrderSubmission))
			if err != nil {
				return false
			}
			if err := res.Verify(w, cl); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// randomApps builds a small random workload with a mix of priorities
// and constraints.
func randomApps(rng *rand.Rand, n int) []*workload.App {
	apps := make([]*workload.App, n)
	for i := range apps {
		apps[i] = &workload.App{
			ID:       string(rune('a'+i%26)) + string(rune('0'+i/26)),
			Demand:   resource.Cores(1+rng.Int63n(16), 1024*(1+rng.Int63n(16))),
			Replicas: 1 + rng.Intn(6),
			Priority: workload.Priority(rng.Intn(3)),
		}
		if rng.Intn(2) == 0 {
			apps[i].AntiAffinitySelf = true
		}
	}
	// Random across-app pairs among already-created apps.
	for i, a := range apps {
		if i > 0 && rng.Intn(3) == 0 {
			a.AntiAffinityApps = []string{apps[rng.Intn(i)].ID}
		}
	}
	return apps
}

// TestKubesimResolverWithAllSchedulers replays every scheduler's
// decisions through the kubesim bind API.
func TestKubesimResolverWithAllSchedulers(t *testing.T) {
	w := trace.MustGenerate(trace.Scaled(13, 400))
	for _, s := range allSchedulers() {
		s := s
		t.Run(s.Name(), func(t *testing.T) {
			bus := kubesim.NewBus()
			cl := topology.New(topology.AlibabaConfig(96))
			adaptor := kubesim.NewAdaptor(cl, bus)
			res, err := kubesim.NewResolver(s).Resolve(w, adaptor, workload.OrderSubmission)
			if err != nil {
				t.Fatal(err)
			}
			// Every assignment is live on the adaptor's cluster.
			for id, m := range res.Assignment {
				if !cl.Machine(m).Hosts(id) {
					t.Errorf("%s not hosted on %d", id, m)
				}
			}
			bound := 0
			for _, e := range bus.Log() {
				if e.Kind == kubesim.ContainerBound {
					bound++
				}
			}
			if bound != res.Deployed() {
				t.Errorf("bound events %d != deployed %d", bound, res.Deployed())
			}
		})
	}
}

// TestTraceFormatsAgree schedules the same generated workload after a
// JSONL round trip and after a CSV round trip and expects identical
// outcomes.
func TestTraceFormatsAgree(t *testing.T) {
	w := trace.MustGenerate(trace.Scaled(23, 400))
	var jl, cs bytes.Buffer
	if err := trace.Write(&jl, w); err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteCSV(&cs, w); err != nil {
		t.Fatal(err)
	}
	w1, err := trace.Read(&jl)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := trace.ReadCSV(&cs)
	if err != nil {
		t.Fatal(err)
	}
	run := func(w *workload.Workload) constraint.Assignment {
		cl := topology.New(topology.AlibabaConfig(96))
		res, err := core.NewDefault().Schedule(w, cl, w.Arrange(workload.OrderSubmission))
		if err != nil {
			t.Fatal(err)
		}
		return res.Assignment
	}
	a1, a2 := run(w1), run(w2)
	if len(a1) != len(a2) {
		t.Fatalf("assignment sizes differ: %d vs %d", len(a1), len(a2))
	}
	for id, m := range a1 {
		if a2[id] != m {
			t.Fatalf("container %s differs: %d vs %d", id, m, a2[id])
		}
	}
}

// TestSimAndDirectScheduleAgree cross-checks the sim harness against
// driving the scheduler directly.
func TestSimAndDirectScheduleAgree(t *testing.T) {
	w := trace.MustGenerate(trace.Scaled(31, 400))
	m, err := sim.Run(sim.Config{
		Scheduler: core.NewDefault(), Workload: w, Machines: 96,
		Order: workload.OrderCLA,
	})
	if err != nil {
		t.Fatal(err)
	}
	cl := topology.New(topology.AlibabaConfig(96))
	res, err := core.NewDefault().Schedule(w, cl, w.Arrange(workload.OrderCLA))
	if err != nil {
		t.Fatal(err)
	}
	if m.Deployed != res.Deployed() {
		t.Errorf("sim deployed %d != direct %d", m.Deployed, res.Deployed())
	}
	if m.UsedMachines != cl.UsedMachines() {
		t.Errorf("sim used %d != direct %d", m.UsedMachines, cl.UsedMachines())
	}
}
