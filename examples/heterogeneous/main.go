// Heterogeneous: the paper's stated future work (§VII) — scheduling
// onto a cluster of three machine generations.  The flow model needs
// no change: machine capacities are per-machine vectors, so the same
// Aladdin run packs big containers onto big machines and fills the
// old generation with small ones.
//
//	go run ./examples/heterogeneous
package main

import (
	"fmt"
	"log"
	"strings"

	"aladdin/internal/core"
	"aladdin/internal/resource"
	"aladdin/internal/topology"
	"aladdin/internal/workload"
)

func main() {
	cluster, err := topology.NewHeterogeneous(topology.HeteroConfig{
		Classes: []topology.MachineClass{
			{Name: "gen3", Count: 4, Capacity: resource.Cores(64, 128*1024)},
			{Name: "gen2", Count: 12, Capacity: resource.Cores(32, 64*1024)},
			{Name: "gen1", Count: 8, Capacity: resource.Cores(16, 32*1024)},
		},
		MachinesPerRack: 4,
		RacksPerCluster: 2,
	})
	if err != nil {
		log.Fatal(err)
	}

	w, err := workload.New([]*workload.App{
		// Only fits gen3.
		{ID: "train", Demand: resource.Cores(48, 96*1024), Replicas: 3,
			Priority: workload.PriorityHigh, AntiAffinitySelf: true},
		// Fits gen2 and gen3.
		{ID: "serve", Demand: resource.Cores(24, 48*1024), Replicas: 6,
			Priority: workload.PriorityMid, AntiAffinitySelf: true},
		// Fits everywhere.
		{ID: "batch", Demand: resource.Cores(4, 8*1024), Replicas: 40,
			Priority: workload.PriorityLow},
	})
	if err != nil {
		log.Fatal(err)
	}

	res, err := core.NewDefault().Schedule(w, cluster, w.Arrange(workload.OrderInterleaved))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res)
	if s := res.ViolationSummary(); s.Total() != 0 {
		log.Fatalf("violations: %+v", s)
	}

	// Show where each tier landed, by machine class.
	perClass := map[string]map[string]int{}
	for id, m := range res.Assignment {
		machine := cluster.Machine(m)
		capCores := machine.Capacity().Dim(resource.CPU) / 1000
		class := fmt.Sprintf("%dc machines", capCores)
		app := id
		if i := strings.LastIndexByte(id, '/'); i >= 0 {
			app = id[:i]
		}
		if perClass[class] == nil {
			perClass[class] = map[string]int{}
		}
		perClass[class][app]++
	}
	fmt.Println("\nplacement by machine class:")
	for _, class := range []string{"64c machines", "32c machines", "16c machines"} {
		fmt.Printf("  %s: %v\n", class, perClass[class])
	}
	lo, mean, hi := cluster.UtilizationRange()
	fmt.Printf("\nused %d/%d machines, utilisation %.0f%%..%.0f%% (mean %.0f%%)\n",
		cluster.UsedMachines(), cluster.Size(), lo*100, hi*100, mean*100)
}
