// Flashsale: the 11.11 / Black Friday scenario from the paper's
// introduction — an online service scales its capacity ~100× by
// submitting a massive batch of long-lived containers at once, under
// anti-affinity (replicas spread for fault tolerance; frontends keep
// away from batch analytics) and priority (checkout preempts
// analytics when the cluster runs hot).
//
//	go run ./examples/flashsale
package main

import (
	"fmt"
	"log"
	"time"

	"aladdin/internal/core"
	"aladdin/internal/resource"
	"aladdin/internal/topology"
	"aladdin/internal/workload"
)

func main() {
	cluster := topology.New(topology.Config{
		Machines: 400,
		Capacity: resource.Cores(32, 64*1024),
	})

	// Steady state: a modest deployment.
	baseline := []*workload.App{
		{ID: "checkout", Demand: resource.Cores(4, 8192), Replicas: 4,
			Priority: workload.PriorityHigh, AntiAffinitySelf: true,
			AntiAffinityApps: []string{"analytics"}},
		{ID: "frontend", Demand: resource.Cores(2, 4096), Replicas: 8,
			Priority: workload.PriorityMid, AntiAffinitySelf: true},
		{ID: "analytics", Demand: resource.Cores(8, 16384), Replicas: 20,
			Priority: workload.PriorityLow},
	}

	// Flash sale: checkout and frontend scale ~50-100x, analytics
	// keeps running.  Everything is submitted as one batch — the
	// "massive LLAs arrive simultaneously" case Aladdin optimises.
	sale := []*workload.App{
		{ID: "checkout", Demand: resource.Cores(4, 8192), Replicas: 300,
			Priority: workload.PriorityHigh, AntiAffinitySelf: true,
			AntiAffinityApps: []string{"analytics"}},
		{ID: "frontend", Demand: resource.Cores(2, 4096), Replicas: 400,
			Priority: workload.PriorityMid, AntiAffinitySelf: false},
		{ID: "analytics", Demand: resource.Cores(8, 16384), Replicas: 120,
			Priority: workload.PriorityLow},
	}

	for _, scenario := range []struct {
		name string
		apps []*workload.App
	}{
		{"steady state", baseline},
		{"flash sale (100x)", sale},
	} {
		w, err := workload.New(scenario.apps)
		if err != nil {
			log.Fatal(err)
		}
		cluster.Reset()
		start := time.Now()
		res, err := core.NewDefault().Schedule(w, cluster, w.Arrange(workload.OrderSubmission))
		if err != nil {
			log.Fatal(err)
		}
		lo, mean, hi := cluster.UtilizationRange()
		fmt.Printf("== %s ==\n", scenario.name)
		fmt.Printf("  containers:   %d (undeployed %d)\n", res.Total, len(res.Undeployed))
		fmt.Printf("  violations:   %d\n", res.ViolationSummary().Total())
		fmt.Printf("  machines:     %d/%d used\n", cluster.UsedMachines(), cluster.Size())
		fmt.Printf("  utilisation:  %.0f%%..%.0f%% (mean %.0f%%)\n", lo*100, hi*100, mean*100)
		fmt.Printf("  migrations:   %d, preemptions: %d\n", res.Migrations, res.Preemptions)
		fmt.Printf("  latency:      %v total (%v/container)\n\n",
			time.Since(start).Round(time.Millisecond), res.LatencyPerContainer().Round(time.Microsecond))

		// The checkout tier must be fully spread: verify no machine
		// hosts two checkout replicas and none co-locates with
		// analytics.
		if s := res.ViolationSummary(); s.Total() != 0 {
			log.Fatalf("constraint violations in %s: %+v", scenario.name, s)
		}
	}
}
