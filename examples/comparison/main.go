// Comparison: run all five schedulers of the paper's Table I on the
// same Alibaba-shaped trace and print a side-by-side summary — a
// miniature of the Fig. 9/10 evaluation.
//
//	go run ./examples/comparison [-factor 100] [-machines 256]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"
	"time"

	"aladdin/internal/core"
	"aladdin/internal/firmament"
	"aladdin/internal/gokube"
	"aladdin/internal/medea"
	"aladdin/internal/sched"
	"aladdin/internal/sim"
	"aladdin/internal/trace"
	"aladdin/internal/workload"
)

func main() {
	factor := flag.Int("factor", 100, "trace scale divisor")
	machines := flag.Int("machines", 256, "cluster size")
	flag.Parse()

	w, err := trace.Generate(trace.Scaled(42, *factor))
	if err != nil {
		log.Fatal(err)
	}
	st := w.ComputeStats()
	fmt.Printf("workload: %d apps, %d containers (%d%% anti-affinity, %d%% priority)\n\n",
		st.Apps, st.Containers,
		100*st.AntiAffinityApps/st.Apps, 100*st.PriorityApps/st.Apps)

	schedulers := []sched.Scheduler{
		gokube.NewDefault(),
		firmament.New(firmament.Options{Model: firmament.Trivial, Reschd: 8}),
		firmament.New(firmament.Options{Model: firmament.Quincy, Reschd: 8}),
		firmament.New(firmament.Options{Model: firmament.Octopus, Reschd: 8}),
		medea.New(medea.Options{Weights: medea.Weights{A: 1, B: 1, C: 0}}),
		core.NewDefault(),
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "scheduler\tundeployed\tviolations\tmachines\tmean util\tlatency/container\tmigrations")
	for _, s := range schedulers {
		m, err := sim.Run(sim.Config{
			Scheduler: s,
			Workload:  w,
			Machines:  *machines,
			Order:     workload.OrderSubmission,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(tw, "%s\t%d (%.1f%%)\t%d\t%d\t%.0f%%\t%v\t%d\n",
			m.Scheduler,
			m.Total-m.Deployed, m.UndeployedFraction*100,
			m.TotalViolations(),
			m.UsedMachines,
			m.Utilization.Mean*100,
			m.Latency.Round(time.Microsecond),
			m.Migrations)
	}
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nAladdin should show zero undeployed and zero violations;")
	fmt.Println("baselines trade violations for undeployed containers or machines.")
}
