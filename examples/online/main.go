// Online: drives Aladdin's Session API through an event-driven
// day-in-the-life — applications arrive over time, live out their
// long lifetimes and depart, while the scheduler keeps the flow
// network, blacklists and machine state warm between batches.
// Machine failures strike along the way (MTBF/MTTR knobs): residents
// are evicted and re-placed through the normal pipeline, and the
// constraint audit must stay clean throughout.
//
//	go run ./examples/online
package main

import (
	"fmt"
	"log"
	"time"

	"aladdin/internal/core"
	"aladdin/internal/sim"
	"aladdin/internal/trace"
)

func main() {
	// ~500 containers in ~65 applications; the cluster is sized far
	// below the batch minimum, so the run only works because
	// departures recycle capacity.
	w := trace.MustGenerate(trace.Scaled(42, 200))
	st := w.ComputeStats()
	fmt.Printf("workload: %d apps, %d containers, %s total demand\n",
		st.Apps, st.Containers, st.TotalDemand)

	m, err := sim.RunOnline(sim.OnlineConfig{
		Workload:         w,
		Machines:         48,
		Options:          core.DefaultOptions(),
		Seed:             7,
		MeanInterarrival: time.Second,
		MeanLifetime:     4 * time.Second,
		// One machine dies every ~8 arrivals and repairs after ~5.
		MTBF: 8 * time.Second,
		MTTR: 5 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\napplications arrived:  %d (departed %d)\n", m.Arrived, m.Departed)
	fmt.Printf("containers submitted:  %d (rejected %d = %.1f%%)\n",
		m.TotalContainers, m.RejectedContainers,
		100*float64(m.RejectedContainers)/float64(m.TotalContainers))
	fmt.Printf("peak machines used:    %d/48\n", m.PeakUsedMachines)
	fmt.Printf("peak mean utilisation: %.0f%%\n", m.PeakUtilization*100)
	fmt.Printf("migrations:            %d, preemptions: %d\n", m.Migrations, m.Preemptions)
	fmt.Printf("batch latency:         p50 %.0fµs, p99 %.0fµs, max %.0fµs\n",
		m.BatchLatency.Percentile(50), m.BatchLatency.Percentile(99), m.BatchLatency.Max())
	fmt.Printf("machine failures:      %d (repaired %d)\n", m.Failures, m.Recoveries)
	fmt.Printf("evicted containers:    %d (re-placed %d, stranded %d)\n",
		m.FailureEvicted, m.FailureReplaced, m.FailureStranded)
	if m.FailureEvicted > 0 {
		fmt.Printf("re-place latency:      p50 %.0fµs, p99 %.0fµs\n",
			m.ReplaceLatency.Percentile(50), m.ReplaceLatency.Percentile(99))
	}
	if m.Violations != 0 {
		log.Fatalf("constraint violations: %d", m.Violations)
	}
	fmt.Println("constraints:           all satisfied across the whole timeline")
}
