// Migration: reproduces the paper's Fig. 3(b) scenario through the
// kubesim event stream — a high-priority container A occupies the
// only machine a low-priority container B fits on; Aladdin migrates A
// instead of violating the A~B anti-affinity or stranding B.
//
//	go run ./examples/migration
package main

import (
	"fmt"
	"log"

	"aladdin/internal/core"
	"aladdin/internal/kubesim"
	"aladdin/internal/resource"
	"aladdin/internal/topology"
	"aladdin/internal/workload"
)

func main() {
	// Machine M (id 0) is large, machine N (id 1) is mostly full:
	// only A's 4 cores still fit there; B's 10 cores do not.
	cluster := topology.New(topology.Config{
		Machines:        2,
		MachinesPerRack: 2,
		RacksPerCluster: 1,
		Capacity:        resource.Cores(16, 32*1024),
	})
	if err := cluster.Machine(1).Allocate("resident", resource.Cores(10, 1024)); err != nil {
		log.Fatal(err)
	}

	// A (high priority) and B (low priority) must not co-locate.
	w, err := workload.New([]*workload.App{
		{ID: "A", Demand: resource.Cores(4, 2048), Replicas: 1,
			Priority: workload.PriorityHigh, AntiAffinityApps: []string{"B"}},
		{ID: "B", Demand: resource.Cores(10, 4096), Replicas: 1,
			Priority: workload.PriorityLow},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Wire the event bus so every lifecycle step is observable, the
	// way the paper's EHC forwards events to the model adaptor.
	bus := kubesim.NewBus()
	events := bus.Subscribe(64)
	adaptor := kubesim.NewAdaptor(cluster, bus)

	resolver := kubesim.NewResolver(core.NewDefault())
	res, err := resolver.Resolve(w, adaptor, workload.OrderSubmission)
	if err != nil {
		log.Fatal(err)
	}
	bus.Close()

	fmt.Println("event stream:")
	for e := range events {
		switch e.Kind {
		case kubesim.ContainerMigrated:
			fmt.Printf("  %-9s %s: machine %d -> %d\n", e.Kind, e.ContainerID, e.From, e.Machine)
		case kubesim.ContainerBound:
			fmt.Printf("  %-9s %s -> machine %d\n", e.Kind, e.ContainerID, e.Machine)
		default:
			fmt.Printf("  %-9s %s\n", e.Kind, e.ContainerID)
		}
	}

	fmt.Println("\noutcome:")
	fmt.Printf("  deployed: %d/%d, migrations during scheduling: %d\n",
		res.Deployed(), res.Total, res.Migrations)
	for id, m := range res.Assignment {
		fmt.Printf("  %s on machine %d\n", id, m)
	}
	if s := res.ViolationSummary(); s.Total() != 0 {
		log.Fatalf("unexpected violations: %+v", s)
	}
	if res.Migrations == 0 {
		log.Fatal("expected Aladdin to migrate A out of B's way")
	}
	fmt.Println("  A migrated so B could deploy — no constraint violated (Fig. 3b).")
}
