// Quickstart: build a cluster, describe two applications with
// anti-affinity and priority constraints, and let Aladdin place them.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"aladdin/internal/core"
	"aladdin/internal/resource"
	"aladdin/internal/topology"
	"aladdin/internal/workload"
)

func main() {
	// A small cluster: 8 homogeneous machines, 32 cores / 64 GB each,
	// 4 machines per rack.
	cluster := topology.New(topology.Config{
		Machines:        8,
		MachinesPerRack: 4,
		RacksPerCluster: 2,
		Capacity:        resource.Cores(32, 64*1024),
	})

	// Two long-lived applications:
	//   - "web": 4 replicas, high priority, replicas must spread
	//     across machines and must not share a machine with "batch";
	//   - "batch": 6 low-priority replicas, unconstrained.
	w, err := workload.New([]*workload.App{
		{
			ID:               "web",
			Demand:           resource.Cores(8, 16*1024),
			Replicas:         4,
			Priority:         workload.PriorityHigh,
			AntiAffinitySelf: true,
			AntiAffinityApps: []string{"batch"},
		},
		{
			ID:       "batch",
			Demand:   resource.Cores(4, 8*1024),
			Replicas: 6,
			Priority: workload.PriorityLow,
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Schedule with the paper's default configuration: weight base
	// 16, isomorphism + depth limiting, migration and preemption.
	scheduler := core.NewDefault()
	result, err := scheduler.Schedule(w, cluster, w.Arrange(workload.OrderSubmission))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println(result)
	fmt.Println()
	for _, c := range w.Containers() {
		if m, ok := result.Assignment[c.ID]; ok {
			machine := cluster.Machine(m)
			fmt.Printf("  %-8s -> %s (rack %s)\n", c.ID, machine.Name, machine.Rack)
		} else {
			fmt.Printf("  %-8s -> UNDEPLOYED\n", c.ID)
		}
	}
	fmt.Printf("\nmachines used: %d/%d\n", cluster.UsedMachines(), cluster.Size())
	if s := result.ViolationSummary(); s.Total() == 0 {
		fmt.Println("constraints: all satisfied")
	} else {
		fmt.Printf("constraints: %d violations (unexpected!)\n", s.Total())
	}
}
