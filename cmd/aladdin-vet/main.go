// Command aladdin-vet is the repo's invariant multichecker: it loads
// the named packages (default ./...) and applies the four
// repo-specific analyzers — determinism, errflow, intcap, lockcheck —
// from internal/analysis.  Exit status 1 means findings; fix the code
// or, for a deliberate exception, annotate the line with the
// analyzer's //aladdin:<marker> suppression comment and a reason.
//
// Usage:
//
//	aladdin-vet [-run name,name] [-list] [packages...]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"aladdin/internal/analysis"
)

func main() {
	runFilter := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: aladdin-vet [-run name,name] [-list] [packages...]\n\nAnalyzers:\n")
		for _, a := range analysis.All() {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *runFilter != "" {
		byName := make(map[string]*analysis.Analyzer)
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*runFilter, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "aladdin-vet: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load("", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "aladdin-vet: %v\n", err)
		os.Exit(2)
	}
	diags, err := analysis.RunAnalyzers(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "aladdin-vet: %v\n", err)
		os.Exit(2)
	}
	for _, d := range diags {
		pos := pkgs[0].Fset.Position(d.Pos)
		fmt.Printf("%s: %s: %s\n", pos, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "aladdin-vet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
