// Command aladdin-vet is the repo's invariant multichecker: it loads
// the named packages (default ./...) and applies the seven
// repo-specific analyzers — determinism, errflow, hotalloc, intcap,
// lockcheck, lockorder, ordinalflow — from internal/analysis.  Exit
// status 1 means findings; fix the code or, for a deliberate
// exception, annotate the line with the analyzer's
// //aladdin:<marker> suppression comment and a reason.
//
// -audit-suppressions flips the polarity: instead of reporting what
// the markers hide, it reports markers that are unknown, give no
// reason, or no longer suppress anything (stale).
//
// Usage:
//
//	aladdin-vet [-run name,name] [-list] [-json] [-audit-suppressions] [packages...]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"aladdin/internal/analysis"
)

// jsonDiagnostic is the -json wire form of one finding, one object per
// line (JSON Lines), stable for CI consumption.
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	runFilter := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	jsonOut := flag.Bool("json", false, "emit findings as JSON Lines on stdout")
	audit := flag.Bool("audit-suppressions", false,
		"audit //aladdin: markers instead: flag unknown, reason-less, and stale ones")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: aladdin-vet [-run name,name] [-list] [-json] [-audit-suppressions] [packages...]\n\nAnalyzers:\n")
		for _, a := range analysis.All() {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *runFilter != "" {
		byName := make(map[string]*analysis.Analyzer)
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*runFilter, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "aladdin-vet: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load("", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "aladdin-vet: %v\n", err)
		os.Exit(2)
	}

	var diags []analysis.Diagnostic
	if *audit {
		diags, err = analysis.AuditSuppressions(pkgs, analyzers)
	} else {
		diags, err = analysis.RunAnalyzers(pkgs, analyzers)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "aladdin-vet: %v\n", err)
		os.Exit(2)
	}

	if *jsonOut {
		// Repo-relative paths: GitHub's ::error annotations resolve
		// files against the workspace root, not the runner's absolute
		// filesystem.
		cwd, _ := os.Getwd()
		enc := json.NewEncoder(os.Stdout)
		for _, d := range diags {
			pos := pkgs[0].Fset.Position(d.Pos)
			file := pos.Filename
			if cwd != "" {
				if rel, err := filepath.Rel(cwd, file); err == nil && !strings.HasPrefix(rel, "..") {
					file = rel
				}
			}
			if err := enc.Encode(jsonDiagnostic{
				File:     file,
				Line:     pos.Line,
				Column:   pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			}); err != nil {
				fmt.Fprintf(os.Stderr, "aladdin-vet: %v\n", err)
				os.Exit(2)
			}
		}
	} else {
		for _, d := range diags {
			pos := pkgs[0].Fset.Position(d.Pos)
			fmt.Printf("%s: %s: %s\n", pos, d.Analyzer, d.Message)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "aladdin-vet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
