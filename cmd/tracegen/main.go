// Command tracegen generates a synthetic Alibaba-shaped LLA workload
// trace (JSON lines, one application per line) and prints its
// statistics.
//
// Usage:
//
//	tracegen -factor 10 -seed 42 -out trace.jsonl
//	tracegen -factor 10 -stats          # statistics only, no file
package main

import (
	"flag"
	"fmt"
	"os"

	"aladdin/internal/trace"
)

func main() {
	var (
		seed      = flag.Int64("seed", 42, "random seed")
		factor    = flag.Int("factor", 10, "scale divisor of the full Alibaba trace (1 = full: 13,056 apps / ~100k containers)")
		out       = flag.String("out", "", "output file (default stdout; ignored with -stats)")
		statsOnly = flag.Bool("stats", false, "print workload statistics instead of the trace")
	)
	flag.Parse()

	w, err := trace.Generate(trace.Scaled(*seed, *factor))
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}

	if *statsOnly {
		st := w.ComputeStats()
		fmt.Printf("applications:        %d\n", st.Apps)
		fmt.Printf("containers:          %d\n", st.Containers)
		fmt.Printf("single-instance:     %d (%.0f%%)\n", st.SingleInstanceApps, pct(st.SingleInstanceApps, st.Apps))
		fmt.Printf("apps < 50 replicas:  %d (%.0f%%)\n", st.AppsUnder50, pct(st.AppsUnder50, st.Apps))
		fmt.Printf("apps > 2000 replicas:%d\n", st.AppsOver2000)
		fmt.Printf("anti-affinity apps:  %d (%.0f%%)\n", st.AntiAffinityApps, pct(st.AntiAffinityApps, st.Apps))
		fmt.Printf("priority apps:       %d (%.0f%%)\n", st.PriorityApps, pct(st.PriorityApps, st.Apps))
		fmt.Printf("max demand:          %s\n", st.MaxDemand)
		fmt.Printf("total demand:        %s\n", st.TotalDemand)
		return
	}

	dst := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
		defer f.Close()
		dst = f
	}
	if err := trace.Write(dst, w); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "tracegen: wrote %d applications (%d containers) to %s\n",
			len(w.Apps()), w.NumContainers(), *out)
	}
}

func pct(n, total int) float64 {
	if total == 0 {
		return 0
	}
	return 100 * float64(n) / float64(total)
}
