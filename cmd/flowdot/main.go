// Command flowdot schedules a (small) workload with Aladdin and emits
// the resulting tiered flow network in Graphviz DOT format, flows
// included — a live rendering of the paper's Fig. 4.
//
// Usage:
//
//	flowdot -factor 2000 -machines 6 | dot -Tsvg > network.svg
//	flowdot -trace trace.jsonl -machines 16
package main

import (
	"flag"
	"fmt"
	"os"

	"aladdin/internal/core"
	"aladdin/internal/topology"
	"aladdin/internal/trace"
	"aladdin/internal/workload"
)

func main() {
	var (
		factor    = flag.Int("factor", 2000, "synthetic trace scale divisor (keep large: DOT output grows fast)")
		seed      = flag.Int64("seed", 42, "synthetic trace seed")
		traceFile = flag.String("trace", "", "JSON-lines trace file (overrides -factor)")
		machines  = flag.Int("machines", 8, "cluster size")
	)
	flag.Parse()

	var w *workload.Workload
	var err error
	if *traceFile != "" {
		f, ferr := os.Open(*traceFile)
		if ferr != nil {
			fatal(ferr)
		}
		w, err = trace.Read(f)
		f.Close()
	} else {
		w, err = trace.Generate(trace.Scaled(*seed, *factor))
	}
	if err != nil {
		fatal(err)
	}
	if w.NumContainers() > 500 {
		fmt.Fprintf(os.Stderr, "flowdot: warning: %d containers will render a very large graph\n", w.NumContainers())
	}

	cluster := topology.New(topology.AlibabaConfig(*machines))
	res, err := core.NewDefault().Schedule(w, cluster, w.Arrange(workload.OrderSubmission))
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "flowdot: %s\n", res)
	if err := core.ExportNetworkDOT(os.Stdout, w, cluster, res.Assignment); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "flowdot:", err)
	os.Exit(1)
}
