package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"aladdin/internal/checkpoint"
	"aladdin/internal/core"
	"aladdin/internal/obs"
	"aladdin/internal/topology"
	"aladdin/internal/workload"
)

// sessionConfig carries the -checkpoint/-restore session-mode flags.
type sessionConfig struct {
	traceFile string
	seed      int64
	factor    int
	machines  int
	wbase     int64
	noIL      bool
	noDL      bool
	naive     bool
	restoreIn string
	ckptOut   string
	assignOut string
	appsN     int
	metOut    string
}

// assignmentFile is the deterministic JSON -assign-out writes: the
// byte-diffable artifact the CI round-trip compares between a full
// run and a checkpoint/restore split of the same trace.
type assignmentFile struct {
	Placements []checkpoint.Placement `json:"placements"`
	Undeployed []string               `json:"undeployed,omitempty"`
}

// runSession drives an incremental session placing one batch per
// application — the same batch boundaries whether the trace runs in
// one process or is split by a checkpoint/restore, which is what
// makes the final assignments byte-identical: preemption victims
// requeue behind the current batch's tail, so batch boundaries are
// part of the schedule.
func runSession(cfg sessionConfig) error {
	w, err := loadWorkload(cfg.traceFile, cfg.seed, cfg.factor)
	if err != nil {
		return err
	}
	opts := core.DefaultOptions()
	opts.WeightBase = cfg.wbase
	opts.IsomorphismLimiting = !cfg.noIL
	opts.DepthLimiting = !cfg.noDL
	opts.NaiveSearch = cfg.naive
	var reg *obs.Registry
	if cfg.metOut != "" {
		reg = obs.NewRegistry()
		opts.Metrics = reg
	}

	// An application counts as submitted once any of its containers is
	// placed or in the undeployed ledger; a resumed run skips those
	// apps and continues with the rest of the trace.
	appOf := make(map[string]string, w.NumContainers())
	byApp := make(map[string][]*workload.Container, len(w.Apps()))
	for _, c := range w.Containers() {
		appOf[c.ID] = c.App
		byApp[c.App] = append(byApp[c.App], c)
	}

	var session *core.Session
	submitted := make(map[string]bool)
	if cfg.restoreIn != "" {
		snap, err := checkpoint.ReadFile(cfg.restoreIn)
		if err != nil {
			return err
		}
		sess, cluster, err := snap.Restore(opts, w)
		if err != nil {
			return err
		}
		session = sess
		st := sess.ExportState()
		for id := range st.Assignment {
			submitted[appOf[id]] = true
		}
		for _, id := range st.Undeployed {
			submitted[appOf[id]] = true
		}
		fmt.Printf("restored from %s: %d machines (%d down), %d placements, %d undeployed, %d apps already submitted\n",
			cfg.restoreIn, cluster.Size(), cluster.DownMachines(),
			len(st.Assignment), len(st.Undeployed), len(submitted))
	} else {
		cluster := topology.New(topology.AlibabaConfig(cfg.machines))
		session = core.NewSession(opts, w, cluster)
	}

	apps := w.Apps()
	limit := len(apps)
	if cfg.appsN > 0 && cfg.appsN < limit {
		limit = cfg.appsN
	}
	placedApps := 0
	for _, a := range apps[:limit] {
		if submitted[a.ID] {
			continue
		}
		if _, err := session.Place(byApp[a.ID]); err != nil {
			return fmt.Errorf("place %s: %w", a.ID, err)
		}
		placedApps++
	}

	st := session.ExportState()
	fmt.Printf("session: %d/%d apps placed this run, %d containers deployed, %d undeployed\n",
		placedApps, limit, len(st.Assignment), len(st.Undeployed))
	if vs := session.AuditInvariants(); len(vs) != 0 {
		return fmt.Errorf("session audit found %d violations (first: %v)", len(vs), vs[0])
	}

	if cfg.ckptOut != "" {
		snap, err := checkpoint.CaptureSession(session)
		if err != nil {
			return err
		}
		if err := checkpoint.WriteFile(cfg.ckptOut, snap); err != nil {
			return err
		}
		fmt.Printf("checkpoint: %s (%d machines, %d placements, %d undeployed)\n",
			cfg.ckptOut, len(snap.Machines), len(snap.Placements), len(snap.Undeployed))
	}
	if cfg.assignOut != "" {
		if err := writeAssignment(cfg.assignOut, st); err != nil {
			return err
		}
		fmt.Printf("assignment: %s\n", cfg.assignOut)
	}
	if cfg.metOut != "" {
		if err := writeMetricsSnapshot(cfg.metOut, reg); err != nil {
			return err
		}
	}
	return nil
}

// writeAssignment dumps the session state in a deterministic order so
// two equivalent runs produce byte-identical files.
func writeAssignment(path string, st *core.SessionState) error {
	out := assignmentFile{
		Placements: make([]checkpoint.Placement, 0, len(st.Assignment)),
		Undeployed: st.Undeployed,
	}
	for id, m := range st.Assignment {
		out.Placements = append(out.Placements, checkpoint.Placement{Container: id, Machine: m})
	}
	sort.Slice(out.Placements, func(i, j int) bool {
		return out.Placements[i].Container < out.Placements[j].Container
	})
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
