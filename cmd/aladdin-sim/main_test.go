package main

import (
	"os"
	"path/filepath"
	"testing"

	"encoding/json"
	"strings"
	"time"

	"aladdin/internal/sim"
	"aladdin/internal/trace"
	"aladdin/internal/workload"
)

func TestParseOrder(t *testing.T) {
	cases := map[string]workload.ArrivalOrder{
		"submission": workload.OrderSubmission,
		"SUBMISSION": workload.OrderSubmission,
		"chp":        workload.OrderCHP,
		"CLP":        workload.OrderCLP,
		"cla":        workload.OrderCLA,
		"CSA":        workload.OrderCSA,
	}
	for in, want := range cases {
		got, err := parseOrder(in)
		if err != nil || got != want {
			t.Errorf("parseOrder(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := parseOrder("bogus"); err == nil {
		t.Error("bogus order should fail")
	}
}

func TestBuildScheduler(t *testing.T) {
	names := map[string]string{
		"aladdin":           "Aladdin(32)+IL+DL",
		"gokube":            "Go-Kube",
		"medea":             "Medea(1,1,0.5)",
		"firmament-trivial": "Firmament-TRIVIAL(4)",
		"firmament-quincy":  "Firmament-QUINCY(4)",
		"firmament-octopus": "Firmament-OCTOPUS(4)",
	}
	for in, want := range names {
		s, err := buildScheduler(in, 4, "1,1,0.5", 32, false, false, false, nil)
		if err != nil {
			t.Fatalf("buildScheduler(%q): %v", in, err)
		}
		if s.Name() != want {
			t.Errorf("buildScheduler(%q).Name() = %q, want %q", in, s.Name(), want)
		}
	}
	if _, err := buildScheduler("bogus", 1, "1,1,1", 16, false, false, false, nil); err == nil {
		t.Error("bogus scheduler should fail")
	}
	// Aladdin variant flags.
	s, err := buildScheduler("aladdin", 1, "1,1,1", 64, true, true, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "Aladdin(64)" {
		t.Errorf("flags not applied: %q", s.Name())
	}
}

func TestParseWeights(t *testing.T) {
	w, err := parseWeights("1, 0.5, 0")
	if err != nil {
		t.Fatal(err)
	}
	if w.A != 1 || w.B != 0.5 || w.C != 0 {
		t.Errorf("weights = %+v", w)
	}
	for _, bad := range []string{"1,2", "a,b,c", "2,0,0", "1,1,1,1"} {
		if _, err := parseWeights(bad); err == nil {
			t.Errorf("parseWeights(%q) should fail", bad)
		}
	}
}

func TestLoadWorkload(t *testing.T) {
	// Synthetic path.
	w, err := loadWorkload("", 42, 400)
	if err != nil || w.NumContainers() == 0 {
		t.Fatalf("synthetic load: %v", err)
	}
	// File path.
	dir := t.TempDir()
	path := filepath.Join(dir, "t.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.Write(f, w); err != nil {
		t.Fatal(err)
	}
	f.Close()
	back, err := loadWorkload(path, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumContainers() != w.NumContainers() {
		t.Errorf("file load container count %d != %d", back.NumContainers(), w.NumContainers())
	}
	if _, err := loadWorkload(filepath.Join(dir, "missing.jsonl"), 0, 0); err == nil {
		t.Error("missing file should fail")
	}
}

func TestSummarize(t *testing.T) {
	m := sim.Metrics{Total: 100, Latency: 2 * time.Microsecond, WorkUnits: 420}
	got := summarize(m)
	want := "500000 containers/sec, 4.2 explored/container"
	if got != want {
		t.Errorf("summarize = %q, want %q", got, want)
	}
	// Zero-latency and empty runs must not divide by zero.
	if got := summarize(sim.Metrics{}); got != "0 containers/sec, 0.0 explored/container" {
		t.Errorf("empty summarize = %q", got)
	}
}

func TestWriteBenchRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	m := sim.Metrics{
		Scheduler: "Aladdin(16)+IL+DL",
		Machines:  384,
		Total:     965,
		Latency:   2502 * time.Nanosecond,
		WorkUnits: 4052,
	}
	// Two appends → two JSON lines; the second carries the default label.
	if err := writeBenchRecord(path, "small", m); err != nil {
		t.Fatal(err)
	}
	if err := writeBenchRecord(path, "", m); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 2 {
		t.Fatalf("want 2 records, got %d: %q", len(lines), string(data))
	}
	var recs [2]benchRecord
	for i, line := range lines {
		if err := json.Unmarshal([]byte(line), &recs[i]); err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
	}
	if recs[0].Label != "small" || recs[0].NsPerContainer != 2502 || recs[0].Machines != 384 {
		t.Errorf("first record = %+v", recs[0])
	}
	if recs[1].Label != "Aladdin(16)+IL+DL/384" {
		t.Errorf("default label = %q", recs[1].Label)
	}
}
