package main

import (
	"os"
	"path/filepath"
	"testing"

	"aladdin/internal/trace"
	"aladdin/internal/workload"
)

func TestParseOrder(t *testing.T) {
	cases := map[string]workload.ArrivalOrder{
		"submission": workload.OrderSubmission,
		"SUBMISSION": workload.OrderSubmission,
		"chp":        workload.OrderCHP,
		"CLP":        workload.OrderCLP,
		"cla":        workload.OrderCLA,
		"CSA":        workload.OrderCSA,
	}
	for in, want := range cases {
		got, err := parseOrder(in)
		if err != nil || got != want {
			t.Errorf("parseOrder(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := parseOrder("bogus"); err == nil {
		t.Error("bogus order should fail")
	}
}

func TestBuildScheduler(t *testing.T) {
	names := map[string]string{
		"aladdin":           "Aladdin(32)+IL+DL",
		"gokube":            "Go-Kube",
		"medea":             "Medea(1,1,0.5)",
		"firmament-trivial": "Firmament-TRIVIAL(4)",
		"firmament-quincy":  "Firmament-QUINCY(4)",
		"firmament-octopus": "Firmament-OCTOPUS(4)",
	}
	for in, want := range names {
		s, err := buildScheduler(in, 4, "1,1,0.5", 32, false, false)
		if err != nil {
			t.Fatalf("buildScheduler(%q): %v", in, err)
		}
		if s.Name() != want {
			t.Errorf("buildScheduler(%q).Name() = %q, want %q", in, s.Name(), want)
		}
	}
	if _, err := buildScheduler("bogus", 1, "1,1,1", 16, false, false); err == nil {
		t.Error("bogus scheduler should fail")
	}
	// Aladdin variant flags.
	s, err := buildScheduler("aladdin", 1, "1,1,1", 64, true, true)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "Aladdin(64)" {
		t.Errorf("flags not applied: %q", s.Name())
	}
}

func TestParseWeights(t *testing.T) {
	w, err := parseWeights("1, 0.5, 0")
	if err != nil {
		t.Fatal(err)
	}
	if w.A != 1 || w.B != 0.5 || w.C != 0 {
		t.Errorf("weights = %+v", w)
	}
	for _, bad := range []string{"1,2", "a,b,c", "2,0,0", "1,1,1,1"} {
		if _, err := parseWeights(bad); err == nil {
			t.Errorf("parseWeights(%q) should fail", bad)
		}
	}
}

func TestLoadWorkload(t *testing.T) {
	// Synthetic path.
	w, err := loadWorkload("", 42, 400)
	if err != nil || w.NumContainers() == 0 {
		t.Fatalf("synthetic load: %v", err)
	}
	// File path.
	dir := t.TempDir()
	path := filepath.Join(dir, "t.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.Write(f, w); err != nil {
		t.Fatal(err)
	}
	f.Close()
	back, err := loadWorkload(path, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumContainers() != w.NumContainers() {
		t.Errorf("file load container count %d != %d", back.NumContainers(), w.NumContainers())
	}
	if _, err := loadWorkload(filepath.Join(dir, "missing.jsonl"), 0, 0); err == nil {
		t.Error("missing file should fail")
	}
}
