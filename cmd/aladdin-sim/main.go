// Command aladdin-sim runs one scheduler over one workload on one
// cluster and reports the paper's metrics: undeployed containers,
// constraint violations, machines used, utilisation range, latency,
// migrations and preemptions.
//
// Usage:
//
//	aladdin-sim -scheduler aladdin -machines 1024 -factor 10
//	aladdin-sim -scheduler firmament-quincy -reschd 8 -trace trace.jsonl -machines 1024
//	aladdin-sim -scheduler medea -weights 1,1,0 -machines 1024 -order CLA
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"aladdin/internal/core"
	"aladdin/internal/firmament"
	"aladdin/internal/gokube"
	"aladdin/internal/medea"
	"aladdin/internal/sched"
	"aladdin/internal/sim"
	"aladdin/internal/topology"
	"aladdin/internal/trace"
	"aladdin/internal/workload"
)

func main() {
	var (
		schedName = flag.String("scheduler", "aladdin", "aladdin | gokube | medea | firmament-trivial | firmament-quincy | firmament-octopus")
		machines  = flag.Int("machines", 1024, "cluster size (homogeneous 32c/64GB machines)")
		factor    = flag.Int("factor", 10, "synthetic trace scale divisor (ignored with -trace)")
		seed      = flag.Int64("seed", 42, "synthetic trace seed")
		traceFile = flag.String("trace", "", "JSON-lines trace file (overrides -factor)")
		orderName = flag.String("order", "submission", "arrival order: submission | CHP | CLP | CLA | CSA")
		reschd    = flag.Int("reschd", 8, "Firmament reschd(i) parameter")
		weightsCS = flag.String("weights", "1,1,0", "Medea weights a,b,c")
		wbase     = flag.Int64("wbase", 16, "Aladdin priority weight base (16/32/64/128)")
		noIL      = flag.Bool("no-il", false, "disable Aladdin isomorphism limiting")
		noDL      = flag.Bool("no-dl", false, "disable Aladdin depth limiting")
		explain   = flag.Int("explain", 0, "diagnose up to N undeployed containers after the run")
	)
	flag.Parse()

	w, err := loadWorkload(*traceFile, *seed, *factor)
	if err != nil {
		fatal(err)
	}
	order, err := parseOrder(*orderName)
	if err != nil {
		fatal(err)
	}
	s, err := buildScheduler(*schedName, *reschd, *weightsCS, *wbase, *noIL, *noDL)
	if err != nil {
		fatal(err)
	}

	m, err := sim.Run(sim.Config{
		Scheduler: s,
		Workload:  w,
		Machines:  *machines,
		Order:     order,
	})
	if err != nil {
		fatal(err)
	}

	fmt.Printf("scheduler:       %s\n", m.Scheduler)
	fmt.Printf("order:           %s\n", m.Order)
	fmt.Printf("cluster:         %d machines\n", m.Machines)
	fmt.Printf("containers:      %d (deployed %d, undeployed %d = %.1f%%)\n",
		m.Total, m.Deployed, m.Total-m.Deployed, m.UndeployedFraction*100)
	fmt.Printf("violations:      %d within, %d across, %d inversions\n",
		m.ViolationsWithin, m.ViolationsAcross, m.Inversions)
	fmt.Printf("machines used:   %d\n", m.UsedMachines)
	fmt.Printf("utilisation:     %s\n", m.Utilization)
	fmt.Printf("latency:         %v/container (total %v)\n",
		m.Latency.Round(time.Microsecond), m.Elapsed.Round(time.Millisecond))
	fmt.Printf("migrations:      %d\n", m.Migrations)
	fmt.Printf("preemptions:     %d\n", m.Preemptions)

	if *explain > 0 && m.Deployed < m.Total {
		// Re-run deterministically to obtain the live cluster state,
		// then diagnose stranded containers.
		cluster := topology.New(topology.AlibabaConfig(*machines))
		res, err := s.Schedule(w, cluster, w.Arrange(order))
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\ndiagnosis of undeployed containers (first %d):\n", *explain)
		for i, id := range res.Undeployed {
			if i >= *explain {
				break
			}
			e, err := core.Explain(w, cluster, res.Assignment, id)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("  %s\n", e)
		}
	}
}

func loadWorkload(path string, seed int64, factor int) (*workload.Workload, error) {
	if path == "" {
		return trace.Generate(trace.Scaled(seed, factor))
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return trace.Read(f)
}

func parseOrder(name string) (workload.ArrivalOrder, error) {
	switch strings.ToUpper(name) {
	case "SUBMISSION":
		return workload.OrderSubmission, nil
	case "CHP":
		return workload.OrderCHP, nil
	case "CLP":
		return workload.OrderCLP, nil
	case "CLA":
		return workload.OrderCLA, nil
	case "CSA":
		return workload.OrderCSA, nil
	default:
		return 0, fmt.Errorf("unknown order %q", name)
	}
}

func buildScheduler(name string, reschd int, weightsCSV string, wbase int64, noIL, noDL bool) (sched.Scheduler, error) {
	switch strings.ToLower(name) {
	case "aladdin":
		opts := core.DefaultOptions()
		opts.WeightBase = wbase
		opts.IsomorphismLimiting = !noIL
		opts.DepthLimiting = !noDL
		return core.New(opts), nil
	case "gokube":
		return gokube.NewDefault(), nil
	case "medea":
		ws, err := parseWeights(weightsCSV)
		if err != nil {
			return nil, err
		}
		return medea.New(medea.Options{Weights: ws}), nil
	case "firmament-trivial":
		return firmament.New(firmament.Options{Model: firmament.Trivial, Reschd: reschd}), nil
	case "firmament-quincy":
		return firmament.New(firmament.Options{Model: firmament.Quincy, Reschd: reschd}), nil
	case "firmament-octopus":
		return firmament.New(firmament.Options{Model: firmament.Octopus, Reschd: reschd}), nil
	default:
		return nil, fmt.Errorf("unknown scheduler %q", name)
	}
}

func parseWeights(csv string) (medea.Weights, error) {
	parts := strings.Split(csv, ",")
	if len(parts) != 3 {
		return medea.Weights{}, fmt.Errorf("weights must be a,b,c, got %q", csv)
	}
	var vals [3]float64
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return medea.Weights{}, fmt.Errorf("weights: %w", err)
		}
		vals[i] = v
	}
	w := medea.Weights{A: vals[0], B: vals[1], C: vals[2]}
	if err := w.Validate(); err != nil {
		return medea.Weights{}, err
	}
	return w, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "aladdin-sim:", err)
	os.Exit(1)
}
