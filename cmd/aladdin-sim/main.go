// Command aladdin-sim runs one scheduler over one workload on one
// cluster and reports the paper's metrics: undeployed containers,
// constraint violations, machines used, utilisation range, latency,
// migrations and preemptions.
//
// Usage:
//
//	aladdin-sim -scheduler aladdin -machines 1024 -factor 10
//	aladdin-sim -scheduler firmament-quincy -reschd 8 -trace trace.jsonl -machines 1024
//	aladdin-sim -scheduler medea -weights 1,1,0 -machines 1024 -order CLA
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"aladdin/internal/core"
	"aladdin/internal/firmament"
	"aladdin/internal/gokube"
	"aladdin/internal/medea"
	"aladdin/internal/obs"
	"aladdin/internal/sched"
	"aladdin/internal/sim"
	"aladdin/internal/topology"
	"aladdin/internal/trace"
	"aladdin/internal/workload"
)

func main() {
	var (
		schedName = flag.String("scheduler", "aladdin", "aladdin | gokube | medea | firmament-trivial | firmament-quincy | firmament-octopus")
		machines  = flag.Int("machines", 1024, "cluster size (homogeneous 32c/64GB machines)")
		factor    = flag.Int("factor", 10, "synthetic trace scale divisor (ignored with -trace)")
		seed      = flag.Int64("seed", 42, "synthetic trace seed")
		traceFile = flag.String("trace", "", "JSON-lines trace file (overrides -factor)")
		orderName = flag.String("order", "submission", "arrival order: submission | CHP | CLP | CLA | CSA")
		reschd    = flag.Int("reschd", 8, "Firmament reschd(i) parameter")
		weightsCS = flag.String("weights", "1,1,0", "Medea weights a,b,c")
		wbase     = flag.Int64("wbase", 16, "Aladdin priority weight base (16/32/64/128)")
		noIL      = flag.Bool("no-il", false, "disable Aladdin isomorphism limiting")
		noDL      = flag.Bool("no-dl", false, "disable Aladdin depth limiting")
		naive     = flag.Bool("naive-search", false, "use Aladdin's retained naive machine scan instead of the capacity index")
		shards    = flag.Int("shards", 0, "run the sharded Aladdin core with N sub-cluster shards (0 = unsharded; clamped to the sub-cluster count)")
		seqShards = flag.Bool("seq-shards", false, "with -shards, run the shard queues sequentially (byte-identical oracle for the concurrent mode)")
		explain   = flag.Int("explain", 0, "diagnose up to N undeployed containers after the run")
		reps      = flag.Int("reps", 1, "repeat the run N times and report the fastest (placements are deterministic; the minimum strips first-touch page-fault and cold-cache noise from the latency figures)")
		benchOut  = flag.String("bench-out", "", "append a JSON benchmark record to this file")
		benchTag  = flag.String("bench-label", "", "label for the -bench-out record (default scheduler/machines)")
		metOut    = flag.String("metrics-out", "", "write a JSON metrics-registry snapshot to this file after the run")
		ckptOut   = flag.String("checkpoint", "", "session mode: write a v2 session snapshot to this file after placing")
		restoreIn = flag.String("restore", "", "session mode: warm-restart from this v2 snapshot instead of a fresh cluster")
		appsN     = flag.Int("apps", 0, "session mode: place only the first N applications (0 = all)")
		assignOut = flag.String("assign-out", "", "session mode: write the final assignment as JSON to this file")
	)
	flag.Parse()

	// Any checkpoint/restore flag switches to session mode: an
	// incremental per-application-batch run over the Session API, the
	// CLI surface for warm-restart experiments.
	if *ckptOut != "" || *restoreIn != "" || *appsN > 0 || *assignOut != "" {
		if strings.ToLower(*schedName) != "aladdin" {
			fatal(fmt.Errorf("session mode (-checkpoint/-restore/-apps/-assign-out) supports only -scheduler aladdin"))
		}
		if err := runSession(sessionConfig{
			traceFile: *traceFile, seed: *seed, factor: *factor,
			machines: *machines, wbase: *wbase,
			noIL: *noIL, noDL: *noDL, naive: *naive,
			restoreIn: *restoreIn, ckptOut: *ckptOut,
			assignOut: *assignOut, appsN: *appsN, metOut: *metOut,
		}); err != nil {
			fatal(err)
		}
		return
	}

	w, err := loadWorkload(*traceFile, *seed, *factor)
	if err != nil {
		fatal(err)
	}
	order, err := parseOrder(*orderName)
	if err != nil {
		fatal(err)
	}
	// With -metrics-out the run carries a metrics registry: Aladdin's
	// core records its per-phase histograms into it directly; every
	// scheduler additionally gets the scheduler-agnostic batch wrapper.
	var reg *obs.Registry
	if *metOut != "" {
		if *reps > 1 {
			fatal(fmt.Errorf("-metrics-out with -reps %d would accumulate counters across repetitions", *reps))
		}
		reg = obs.NewRegistry()
	}
	s, err := buildScheduler(*schedName, *reschd, *weightsCS, *wbase, *noIL, *noDL, *naive, reg)
	if err != nil {
		fatal(err)
	}
	if reg != nil {
		s = sched.Instrumented(s, reg)
	}

	var m sim.Metrics
	if *shards > 0 {
		// Sharded core: the session API drives placement directly, so
		// only the Aladdin scheduler supports it.
		if strings.ToLower(*schedName) != "aladdin" {
			fatal(fmt.Errorf("-shards supports only -scheduler aladdin"))
		}
		opts := core.DefaultOptions()
		opts.WeightBase = *wbase
		opts.IsomorphismLimiting = !*noIL
		opts.DepthLimiting = !*noDL
		opts.NaiveSearch = *naive
		opts.Shards = *shards
		opts.SequentialShards = *seqShards
		opts.Metrics = reg
		scfg := sim.ShardedConfig{Opts: opts, Workload: w, Machines: *machines, Order: order}
		if m, err = sim.RunSharded(scfg); err != nil {
			fatal(err)
		}
		for i := 1; i < *reps; i++ {
			mi, err := sim.RunSharded(scfg)
			if err != nil {
				fatal(err)
			}
			if mi.Elapsed < m.Elapsed {
				m = mi
			}
		}
	} else {
		cfg := sim.Config{
			Scheduler: s,
			Workload:  w,
			Machines:  *machines,
			Order:     order,
		}
		if m, err = sim.Run(cfg); err != nil {
			fatal(err)
		}
		// Every repetition runs the identical deterministic schedule on
		// a fresh cluster, so only the timing differs; keep the fastest.
		for i := 1; i < *reps; i++ {
			mi, err := sim.Run(cfg)
			if err != nil {
				fatal(err)
			}
			if mi.Elapsed < m.Elapsed {
				m = mi
			}
		}
	}

	fmt.Printf("scheduler:       %s\n", m.Scheduler)
	fmt.Printf("order:           %s\n", m.Order)
	fmt.Printf("cluster:         %d machines\n", m.Machines)
	fmt.Printf("containers:      %d (deployed %d, undeployed %d = %.1f%%)\n",
		m.Total, m.Deployed, m.Total-m.Deployed, m.UndeployedFraction*100)
	fmt.Printf("violations:      %d within, %d across, %d inversions\n",
		m.ViolationsWithin, m.ViolationsAcross, m.Inversions)
	fmt.Printf("machines used:   %d\n", m.UsedMachines)
	fmt.Printf("utilisation:     %s\n", m.Utilization)
	fmt.Printf("latency:         %v/container (total %v)\n",
		m.Latency.Round(time.Microsecond), m.Elapsed.Round(time.Millisecond))
	if m.WallElapsed > m.Elapsed {
		// Sharded runs report critical-path time as the headline
		// latency; surface the host wall-clock whenever the fan-out
		// had to time-slice (fewer cores than shards).
		fmt.Printf("wall clock:      %v (host ran %s on %d core(s))\n",
			m.WallElapsed.Round(time.Millisecond), m.Scheduler, runtime.GOMAXPROCS(0))
	}
	fmt.Printf("migrations:      %d\n", m.Migrations)
	fmt.Printf("preemptions:     %d\n", m.Preemptions)
	fmt.Printf("summary:         %s\n", summarize(m))

	if *benchOut != "" {
		if err := writeBenchRecord(*benchOut, *benchTag, m); err != nil {
			fatal(err)
		}
	}
	if *metOut != "" {
		if err := writeMetricsSnapshot(*metOut, reg); err != nil {
			fatal(err)
		}
	}

	if *explain > 0 && *shards > 0 {
		// The diagnosis below re-runs the unsharded scheduler, which
		// would explain a different placement than the one reported.
		fatal(fmt.Errorf("-explain is not supported with -shards"))
	}
	if *explain > 0 && m.Deployed < m.Total {
		// Re-run deterministically to obtain the live cluster state,
		// then diagnose stranded containers.
		cluster := topology.New(topology.AlibabaConfig(*machines))
		res, err := s.Schedule(w, cluster, w.Arrange(order))
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\ndiagnosis of undeployed containers (first %d):\n", *explain)
		for i, id := range res.Undeployed {
			if i >= *explain {
				break
			}
			e, err := core.Explain(w, cluster, res.Assignment, id)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("  %s\n", e)
		}
	}
}

// summarize condenses a run into the one-line placement-latency
// summary: scheduling throughput and search effort per container.
func summarize(m sim.Metrics) string {
	perSec := 0.0
	if m.Latency > 0 {
		perSec = float64(time.Second) / float64(m.Latency)
	}
	explored := 0.0
	if m.Total > 0 {
		explored = float64(m.WorkUnits) / float64(m.Total)
	}
	return fmt.Sprintf("%.0f containers/sec, %.1f explored/container", perSec, explored)
}

// benchRecord is one JSON line of -bench-out: the per-container
// placement cost plus enough context to interpret it.
type benchRecord struct {
	Label                string  `json:"label"`
	Scheduler            string  `json:"scheduler"`
	Machines             int     `json:"machines"`
	Containers           int     `json:"containers"`
	NsPerContainer       int64   `json:"ns_per_container"`
	ContainersPerSec     float64 `json:"containers_per_sec"`
	ExploredPerContainer float64 `json:"explored_per_container"`
	// WallNs is the host wall-clock for the whole run when it differs
	// from the critical-path total (sharded runs on hosts with fewer
	// cores than shards); omitted otherwise.
	WallNs int64 `json:"wall_ns,omitempty"`
}

func writeBenchRecord(path, label string, m sim.Metrics) error {
	if label == "" {
		label = fmt.Sprintf("%s/%d", m.Scheduler, m.Machines)
	}
	perSec := 0.0
	if m.Latency > 0 {
		perSec = float64(time.Second) / float64(m.Latency)
	}
	explored := 0.0
	if m.Total > 0 {
		explored = float64(m.WorkUnits) / float64(m.Total)
	}
	rec := benchRecord{
		Label:                label,
		Scheduler:            m.Scheduler,
		Machines:             m.Machines,
		Containers:           m.Total,
		NsPerContainer:       m.Latency.Nanoseconds(),
		ContainersPerSec:     perSec,
		ExploredPerContainer: explored,
	}
	if m.WallElapsed > m.Elapsed {
		rec.WallNs = m.WallElapsed.Nanoseconds()
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = fmt.Fprintln(f, string(line))
	return err
}

// writeMetricsSnapshot dumps the registry as indented JSON — the same
// shape /debug/vars serves on the live server.
func writeMetricsSnapshot(path string, reg *obs.Registry) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return reg.WriteJSON(f)
}

func loadWorkload(path string, seed int64, factor int) (*workload.Workload, error) {
	if path == "" {
		return trace.Generate(trace.Scaled(seed, factor))
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return trace.Read(f)
}

func parseOrder(name string) (workload.ArrivalOrder, error) {
	switch strings.ToUpper(name) {
	case "SUBMISSION":
		return workload.OrderSubmission, nil
	case "CHP":
		return workload.OrderCHP, nil
	case "CLP":
		return workload.OrderCLP, nil
	case "CLA":
		return workload.OrderCLA, nil
	case "CSA":
		return workload.OrderCSA, nil
	default:
		return 0, fmt.Errorf("unknown order %q", name)
	}
}

func buildScheduler(name string, reschd int, weightsCSV string, wbase int64, noIL, noDL, naive bool, reg *obs.Registry) (sched.Scheduler, error) {
	switch strings.ToLower(name) {
	case "aladdin":
		opts := core.DefaultOptions()
		opts.WeightBase = wbase
		opts.IsomorphismLimiting = !noIL
		opts.DepthLimiting = !noDL
		opts.NaiveSearch = naive
		opts.Metrics = reg // nil when -metrics-out is unset
		return core.New(opts), nil
	case "gokube":
		return gokube.NewDefault(), nil
	case "medea":
		ws, err := parseWeights(weightsCSV)
		if err != nil {
			return nil, err
		}
		return medea.New(medea.Options{Weights: ws}), nil
	case "firmament-trivial":
		return firmament.New(firmament.Options{Model: firmament.Trivial, Reschd: reschd}), nil
	case "firmament-quincy":
		return firmament.New(firmament.Options{Model: firmament.Quincy, Reschd: reschd}), nil
	case "firmament-octopus":
		return firmament.New(firmament.Options{Model: firmament.Octopus, Reschd: reschd}), nil
	default:
		return nil, fmt.Errorf("unknown scheduler %q", name)
	}
}

func parseWeights(csv string) (medea.Weights, error) {
	parts := strings.Split(csv, ",")
	if len(parts) != 3 {
		return medea.Weights{}, fmt.Errorf("weights must be a,b,c, got %q", csv)
	}
	var vals [3]float64
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return medea.Weights{}, fmt.Errorf("weights: %w", err)
		}
		vals[i] = v
	}
	w := medea.Weights{A: vals[0], B: vals[1], C: vals[2]}
	if err := w.Validate(); err != nil {
		return medea.Weights{}, err
	}
	return w, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "aladdin-sim:", err)
	os.Exit(1)
}
