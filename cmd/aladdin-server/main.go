// Command aladdin-server runs a live Aladdin scheduling session over
// HTTP: submit batches with POST /place, remove departures with POST
// /remove, inspect /assignments, /metrics, /healthz and
// /explain?container=<id>.
//
// Usage:
//
//	aladdin-server -factor 100 -machines 256 -addr :8080
//	curl -XPOST localhost:8080/place -d '{"containers":["app-00001/0"]}'
//	curl localhost:8080/metrics
//
// Multi-tenant mode with request coalescing and backpressure:
//
//	aladdin-server -tenants blue,green -coalesce-window 2ms -max-queue 256
//	curl -XPOST localhost:8080/t/blue/place -d '{"containers":["app-00001/0"]}'
//	curl localhost:8080/tenants
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"aladdin/internal/checkpoint"
	"aladdin/internal/core"
	"aladdin/internal/obs"
	"aladdin/internal/server"
	"aladdin/internal/topology"
	"aladdin/internal/trace"
	"aladdin/internal/workload"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		factor    = flag.Int("factor", 100, "synthetic trace scale divisor (the workload universe)")
		seed      = flag.Int64("seed", 42, "synthetic trace seed")
		traceFile = flag.String("trace", "", "JSON-lines trace file (overrides -factor)")
		machines  = flag.Int("machines", 256, "cluster size")
		wbase     = flag.Int64("wbase", 16, "Aladdin priority weight base")
		placeAll  = flag.Bool("place-all", false, "schedule the whole workload at startup")
		pprofOn   = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
		ckptPath  = flag.String("checkpoint", "", "default snapshot file for POST /checkpoint")
		restoreIn = flag.String("restore", "", "warm-restart from this v2 snapshot at startup (cluster comes from the snapshot; -machines is ignored)")
		tenants   = flag.String("tenants", "", "comma-separated tenant names to create at startup (each shares the default universe on its own cluster)")
		coWindow  = flag.Duration("coalesce-window", 0, "request-coalescing flush window (0 disables coalescing)")
		coBatch   = flag.Int("max-batch", 0, "containers per coalesced flush before an early cut (0: default 128)")
		coQueue   = flag.Int("max-queue", 0, "queued place requests per tenant before 429s (0: default 256)")
		rbEvery   = flag.Duration("rebalance-every", 0, "background rebalancing cycle interval for every tenant (0 disables; POST /rebalance/start can enable per tenant later)")
		rbBudget  = flag.Int("rebalance-budget", 0, "container moves allowed per rebalancing cycle (0: unlimited)")
	)
	flag.Parse()
	if *restoreIn != "" && *placeAll {
		log.Fatal("-restore and -place-all are mutually exclusive: the snapshot already holds the placement")
	}

	var w *workload.Workload
	var err error
	if *traceFile != "" {
		f, ferr := os.Open(*traceFile)
		if ferr != nil {
			log.Fatal(ferr)
		}
		w, err = trace.Read(f)
		f.Close()
	} else {
		w, err = trace.Generate(trace.Scaled(*seed, *factor))
	}
	if err != nil {
		log.Fatal(err)
	}

	opts := core.DefaultOptions()
	opts.WeightBase = *wbase
	reg := obs.NewRegistry()
	opts.Metrics = reg // /metrics exposes the scheduler's phase histograms

	var cluster *topology.Cluster
	var session *core.Session
	if *restoreIn != "" {
		snap, err := checkpoint.ReadFile(*restoreIn)
		if err != nil {
			log.Fatal(err)
		}
		session, cluster, err = snap.Restore(opts, w)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("restored from %s: %d machines (%d down), %d placements, %d undeployed\n",
			*restoreIn, cluster.Size(), cluster.DownMachines(),
			len(snap.Placements), len(snap.Undeployed))
	} else {
		cluster = topology.New(topology.AlibabaConfig(*machines))
		session = core.NewSession(opts, w, cluster)
	}

	if *placeAll {
		res, err := session.Place(w.Arrange(workload.OrderInterleaved))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("startup placement: %d/%d deployed, %d migrations\n",
			res.Deployed(), res.Total, res.Migrations)
	}

	srvOpts := []server.Option{server.WithRegistry(reg)}
	if *pprofOn {
		srvOpts = append(srvOpts, server.WithPprof())
	}
	if *ckptPath != "" {
		srvOpts = append(srvOpts, server.WithCheckpointPath(*ckptPath))
	}
	if *coWindow > 0 {
		srvOpts = append(srvOpts, server.WithCoalescing(server.CoalesceConfig{
			Window: *coWindow, MaxBatch: *coBatch, MaxQueue: *coQueue,
		}))
	}
	srv := server.New(session, w, cluster, srvOpts...)
	for _, name := range strings.Split(*tenants, ",") {
		name = strings.TrimSpace(name)
		if name == "" || name == server.DefaultTenant {
			continue
		}
		if _, err := srv.CreateTenant(server.TenantSpec{Name: name}); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("tenant %s: %d containers on a private %d-machine cluster\n",
			name, w.NumContainers(), cluster.Size())
	}
	if *rbEvery > 0 {
		started := []string{server.DefaultTenant}
		for _, name := range strings.Split(*tenants, ",") {
			if name = strings.TrimSpace(name); name != "" && name != server.DefaultTenant {
				started = append(started, name)
			}
		}
		for _, name := range started {
			if err := srv.StartRebalancer(name, *rbEvery, *rbBudget); err != nil {
				log.Fatal(err)
			}
		}
		fmt.Printf("rebalancer: every %s, budget %d moves/cycle, tenants %s\n",
			*rbEvery, *rbBudget, strings.Join(started, ","))
	}
	fmt.Printf("aladdin-server: %d apps / %d containers, %d machines, listening on %s\n",
		len(w.Apps()), w.NumContainers(), cluster.Size(), *addr)

	httpSrv := &http.Server{Addr: *addr, Handler: srv}
	// Graceful shutdown: stop admitting placements, flush every
	// tenant's coalescing queue so in-flight requests get responses,
	// then close the listener.
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-stop
		fmt.Printf("received %s, draining\n", sig)
		srv.Drain()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		httpSrv.Shutdown(ctx)
	}()
	if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	fmt.Println("drained, bye")
}
