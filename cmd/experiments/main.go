// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments                         # all figures, medium scale
//	experiments -scale small -fig 9     # one figure, small scale
//	experiments -scale full -out results.txt
//
// Scales: small (~1k containers / 256 machines), medium (~10k / 1024),
// full (the paper's ~100k / 10000 — expect minutes to hours).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"aladdin/internal/experiments"
)

func main() {
	var (
		scaleName = flag.String("scale", "medium", "small | medium | full")
		fig       = flag.String("fig", "all", "8 | 9 | 10 | 12 | 13 | ablation | hetero | availability | scalability | loadtest | all")
		out       = flag.String("out", "", "output file (default stdout)")
		workers   = flag.Int("workers", 0, "parallel simulation workers (0 = GOMAXPROCS)")
	)
	flag.Parse()

	var scale experiments.Scale
	switch *scaleName {
	case "small":
		scale = experiments.Small()
	case "medium":
		scale = experiments.Medium()
	case "full":
		scale = experiments.Full()
	default:
		fatal(fmt.Errorf("unknown scale %q", *scaleName))
	}
	scale.Workers = *workers

	dst := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		dst = io.MultiWriter(os.Stdout, f)
	}

	if err := run(scale, *fig, dst); err != nil {
		fatal(err)
	}
}

func run(scale experiments.Scale, fig string, w io.Writer) error {
	switch fig {
	case "all":
		return experiments.RunAll(scale, w)
	case "8":
		writeTables(w, experiments.Fig8(scale))
		return nil
	case "9":
		r, err := experiments.Fig9(scale)
		if err != nil {
			return err
		}
		writeTables(w, r)
		return nil
	case "10", "11":
		r, err := experiments.Fig10(scale)
		if err != nil {
			return err
		}
		writeTables(w, r)
		return nil
	case "12":
		r, err := experiments.Fig12(scale)
		if err != nil {
			return err
		}
		writeTables(w, r)
		return nil
	case "13":
		r, err := experiments.Fig13(scale)
		if err != nil {
			return err
		}
		writeTables(w, r)
		return nil
	case "ablation":
		r, err := experiments.Ablation(scale)
		if err != nil {
			return err
		}
		writeTables(w, r)
		return nil
	case "hetero":
		r, err := experiments.Hetero(scale)
		if err != nil {
			return err
		}
		writeTables(w, r)
		return nil
	case "availability":
		r, err := experiments.Availability(scale)
		if err != nil {
			return err
		}
		writeTables(w, r)
		return nil
	case "scalability":
		r, err := experiments.Scalability(scale)
		if err != nil {
			return err
		}
		writeTables(w, r)
		return nil
	case "loadtest":
		r, err := experiments.LoadTest(scale)
		if err != nil {
			return err
		}
		writeTables(w, r)
		return nil
	case "dimensions":
		r, err := experiments.Dimensions(scale)
		if err != nil {
			return err
		}
		writeTables(w, r)
		return nil
	default:
		return fmt.Errorf("unknown figure %q", fig)
	}
}

func writeTables(w io.Writer, src experiments.TableSource) {
	for _, t := range src.Tables() {
		fmt.Fprintln(w, t.Render())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
