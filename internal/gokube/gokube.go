// Package gokube reimplements the Kubernetes 1.11 scheduling pipeline
// the paper calls "Go-Kube" (Table I: "scoring machines and choose the
// best one"): a queue-based scheduler that filters feasible nodes,
// scores them with the default priority functions (least-requested and
// balanced-resource-allocation) and binds to the best.
//
// Go-Kube supports anti-affinity and priority, but — as the paper
// stresses — *separately*: anti-affinity is a per-pod filter and
// priority a per-pod preemption pass, with no global optimisation and
// no migration.  A spread service arriving into a cluster whose
// machines were load-balanced full of its anti-affinity partners
// therefore simply fails to schedule, which is exactly the ~21%
// undeployed behaviour of Fig. 9.
package gokube

import (
	"sort"
	"time"

	"aladdin/internal/constraint"
	"aladdin/internal/resource"
	"aladdin/internal/sched"
	"aladdin/internal/topology"
	"aladdin/internal/workload"
)

// Profile selects the scoring plugin set, mirroring the K8s scoring
// profiles.
type Profile int

const (
	// LeastAllocated is the K8s 1.11 default: favour the emptiest
	// node (spreads load, inflates machine usage).
	LeastAllocated Profile = iota
	// MostAllocated is the bin-packing profile: favour the fullest
	// node that still fits.
	MostAllocated
)

// String names the profile.
func (p Profile) String() string {
	switch p {
	case LeastAllocated:
		return "least-allocated"
	case MostAllocated:
		return "most-allocated"
	default:
		return "unknown"
	}
}

// Options configures Go-Kube.
type Options struct {
	// Preemption enables the Kubernetes priority-preemption pass.
	Preemption bool
	// Profile selects the scoring plugins (default LeastAllocated,
	// the K8s 1.11 behaviour the paper evaluates).
	Profile Profile
	// MaxRequeues bounds how many times an evicted pod re-enters the
	// queue; 0 means the default of 1 (K8s re-queues the victim once
	// through the backoff queue before it is effectively stuck).
	MaxRequeues int
}

// Scheduler is the Go-Kube baseline.
type Scheduler struct {
	opts Options
}

// New builds a Go-Kube scheduler.
func New(opts Options) *Scheduler { return &Scheduler{opts: opts} }

// NewDefault builds Go-Kube with preemption enabled, the paper's
// configuration.
func NewDefault() *Scheduler { return New(Options{Preemption: true}) }

// Name implements sched.Scheduler.
func (s *Scheduler) Name() string { return "Go-Kube" }

func (o Options) maxRequeues() int {
	if o.MaxRequeues > 0 {
		return o.MaxRequeues
	}
	return 1
}

// Schedule implements sched.Scheduler with the K8s pipeline:
// one pod at a time — filter → score → bind, preempting on failure.
func (s *Scheduler) Schedule(w *workload.Workload, cluster *topology.Cluster, arrivals []*workload.Container) (*sched.Result, error) {
	start := time.Now()
	bl := constraint.NewBlacklist(w, cluster.Size())
	assignment := make(constraint.Assignment, len(arrivals))
	byID := make(map[string]*workload.Container, w.NumContainers())
	for _, c := range w.Containers() {
		byID[c.ID] = c
	}
	requeues := make(map[string]int)
	var undeployed []string

	queue := make([]*workload.Container, len(arrivals))
	copy(queue, arrivals)
	for i := 0; i < len(queue); i++ {
		pod := queue[i]
		node := s.scheduleOne(pod, cluster, bl)
		if node != topology.Invalid {
			bind(pod, node, cluster, bl, assignment)
			continue
		}
		if s.opts.Preemption {
			if victims, node := s.preempt(pod, w, cluster, bl, byID); node != topology.Invalid {
				for _, v := range victims {
					unbind(v, assignment[v.ID], cluster, bl, assignment)
					if requeues[v.ID] < s.opts.maxRequeues() {
						requeues[v.ID]++
						queue = append(queue, v)
					} else {
						undeployed = append(undeployed, v.ID)
					}
				}
				// The plan guaranteed feasibility; re-verify against
				// the live blacklist before binding.
				if cluster.Machine(node).Fits(pod.Demand) && bl.Allows(node, pod) {
					bind(pod, node, cluster, bl, assignment)
					continue
				}
			}
		}
		undeployed = append(undeployed, pod.ID)
	}

	res := &sched.Result{
		Scheduler:  s.Name(),
		Assignment: assignment,
		Undeployed: undeployed,
		Elapsed:    time.Since(start),
	}
	res.Finalize(w)
	return res, nil
}

// scheduleOne runs filter+score over every node, returning the best
// or Invalid.  This is deliberately an O(N) pass per pod — the
// queue-based K8s design the paper contrasts with flow scheduling.
func (s *Scheduler) scheduleOne(pod *workload.Container, cluster *topology.Cluster, bl *constraint.Blacklist) topology.MachineID {
	best := topology.Invalid
	bestScore := -1.0
	for _, m := range cluster.Machines() {
		if !m.Fits(pod.Demand) {
			continue
		}
		if !bl.Allows(m.ID, pod) {
			continue
		}
		if sc := s.score(pod, m); sc > bestScore {
			best, bestScore = m.ID, sc
		}
	}
	return best
}

// score mirrors the K8s scoring plugins: the allocation score per the
// configured profile (LeastRequestedPriority spreads — the 1.11
// default — MostAllocated packs) plus BalancedResourceAllocation
// (favour balanced CPU/mem usage).
func (s *Scheduler) score(pod *workload.Container, m *topology.Machine) float64 {
	capVec := m.Capacity()
	used := m.Used().Add(pod.Demand)
	cpuFree := 1 - resource.CPUUtilization(used, capVec)
	memFree := 1 - ratio(used.Dim(resource.Memory), capVec.Dim(resource.Memory))
	alloc := (cpuFree + memFree) / 2 * 10
	if s.opts.Profile == MostAllocated {
		alloc = 10 - alloc
	}

	cpuFrac := 1 - cpuFree
	memFrac := 1 - memFree
	diff := cpuFrac - memFrac
	if diff < 0 {
		diff = -diff
	}
	balanced := (1 - diff) * 10
	return alloc + balanced
}

// preempt implements the K8s preemption pass: find a node where
// evicting strictly-lower-priority pods makes this pod feasible (both
// resources and anti-affinity), preferring the node with the fewest
// and lowest-priority victims.
func (s *Scheduler) preempt(pod *workload.Container, w *workload.Workload, cluster *topology.Cluster, bl *constraint.Blacklist, byID map[string]*workload.Container) ([]*workload.Container, topology.MachineID) {
	if pod.Priority <= workload.PriorityLow {
		return nil, topology.Invalid
	}
	type plan struct {
		node    topology.MachineID
		victims []*workload.Container
	}
	var bestPlan *plan
	for _, m := range cluster.Machines() {
		if !pod.Demand.Fits(m.Capacity()) {
			continue
		}
		victims := victimsFor(pod, w, m, byID)
		if victims == nil {
			continue
		}
		if bestPlan == nil || len(victims) < len(bestPlan.victims) {
			bestPlan = &plan{node: m.ID, victims: victims}
		}
	}
	if bestPlan == nil {
		return nil, topology.Invalid
	}
	return bestPlan.victims, bestPlan.node
}

// victimsFor returns the minimal prefix (lowest priority first) of
// evictable pods on m that makes pod fit there on resources, or nil.
// Kubernetes 1.11 preemption only clears resource-based predicates:
// it does not evict pods to satisfy the pending pod's inter-pod
// anti-affinity, so any anti-affinity blocker makes the node
// infeasible outright.  This is precisely the "supports them
// separately" gap the paper calls out — priority and anti-affinity
// never compose in Go-Kube.
func victimsFor(pod *workload.Container, w *workload.Workload, m *topology.Machine, byID map[string]*workload.Container) []*workload.Container {
	blocks := func(other *workload.Container) bool {
		if other.App == pod.App {
			return w.AntiAffine(pod.App, pod.App)
		}
		return w.AntiAffine(other.App, pod.App)
	}
	var lower []*workload.Container
	for _, id := range m.ContainerIDs() {
		other := byID[id]
		if other == nil {
			continue
		}
		if blocks(other) {
			return nil // anti-affinity blockage: preemption cannot help
		}
		if other.Priority < pod.Priority {
			lower = append(lower, other)
		}
	}
	if len(lower) == 0 {
		return nil
	}
	sort.Slice(lower, func(i, j int) bool {
		if lower[i].Priority != lower[j].Priority {
			return lower[i].Priority < lower[j].Priority
		}
		return lower[i].ID < lower[j].ID
	})
	free := m.Free()
	var chosen []*workload.Container
	for _, v := range lower {
		free = free.Add(v.Demand)
		chosen = append(chosen, v)
		if pod.Demand.Fits(free) {
			return chosen
		}
	}
	return nil
}

func bind(pod *workload.Container, node topology.MachineID, cluster *topology.Cluster, bl *constraint.Blacklist, asg constraint.Assignment) {
	if err := cluster.Machine(node).Allocate(pod.ID, pod.Demand); err != nil {
		panic("gokube: bind: " + err.Error())
	}
	bl.Place(node, pod)
	asg[pod.ID] = node
}

func unbind(pod *workload.Container, node topology.MachineID, cluster *topology.Cluster, bl *constraint.Blacklist, asg constraint.Assignment) {
	if _, err := cluster.Machine(node).Release(pod.ID); err != nil {
		panic("gokube: unbind: " + err.Error())
	}
	bl.Release(node, pod)
	delete(asg, pod.ID)
}

func ratio(num, den int64) float64 {
	if den <= 0 {
		return 0
	}
	return float64(num) / float64(den)
}
