package gokube

import (
	"testing"

	"aladdin/internal/resource"
	"aladdin/internal/sched"
	"aladdin/internal/topology"
	"aladdin/internal/trace"
	"aladdin/internal/workload"
)

func cluster(n int) *topology.Cluster {
	return topology.New(topology.Config{
		Machines: n, MachinesPerRack: 8, RacksPerCluster: 4,
		Capacity: resource.Cores(32, 64*1024),
	})
}

func run(t *testing.T, s *Scheduler, w *workload.Workload, cl *topology.Cluster) *sched.Result {
	t.Helper()
	res, err := s.Schedule(w, cl, w.Arrange(workload.OrderSubmission))
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Verify(w, cl); err != nil {
		t.Fatal(err)
	}
	return res
}

func TestBasicPlacement(t *testing.T) {
	w := workload.MustNew([]*workload.App{
		{ID: "a", Demand: resource.Cores(4, 4096), Replicas: 4},
	})
	cl := cluster(2)
	res := run(t, NewDefault(), w, cl)
	if len(res.Undeployed) != 0 {
		t.Errorf("undeployed: %v", res.Undeployed)
	}
}

func TestSpreadingBehaviour(t *testing.T) {
	// LeastRequested spreads: 4 small pods on 4 machines should land
	// on 4 distinct machines even without anti-affinity.
	w := workload.MustNew([]*workload.App{
		{ID: "a", Demand: resource.Cores(1, 1024), Replicas: 4},
	})
	cl := cluster(4)
	res := run(t, NewDefault(), w, cl)
	if used := cl.UsedMachines(); used != 4 {
		t.Errorf("Go-Kube should spread across all 4 machines, used %d", used)
	}
	_ = res
}

func TestAntiAffinityFilterRespected(t *testing.T) {
	w := workload.MustNew([]*workload.App{
		{ID: "spread", Demand: resource.Cores(1, 1024), Replicas: 3, AntiAffinitySelf: true},
	})
	cl := cluster(3)
	res := run(t, NewDefault(), w, cl)
	if len(res.Undeployed) != 0 {
		t.Fatalf("undeployed: %v", res.Undeployed)
	}
	if s := res.ViolationSummary(); s.Total() != 0 {
		t.Errorf("violations: %+v", s)
	}
}

func TestNoMigrationMeansStuck(t *testing.T) {
	// Two machines; a partner pod lands on each (spreading), then a
	// spread app of 2 that is anti-affine with the partner arrives:
	// with no migration Go-Kube cannot deploy it anywhere.
	w := workload.MustNew([]*workload.App{
		{ID: "partner", Demand: resource.Cores(1, 1024), Replicas: 2},
		{ID: "spread", Demand: resource.Cores(1, 1024), Replicas: 2, AntiAffinitySelf: true, AntiAffinityApps: []string{"partner"}},
	})
	cl := cluster(2)
	res := run(t, NewDefault(), w, cl)
	if len(res.Undeployed) != 2 {
		t.Errorf("undeployed = %v, want both spread pods (no migration in Go-Kube)", res.Undeployed)
	}
	if s := res.ViolationSummary(); s.Total() != 0 {
		t.Errorf("violations: %+v", s)
	}
}

func TestPreemptionEvictsLowerPriority(t *testing.T) {
	cl := topology.New(topology.Config{
		Machines: 1, MachinesPerRack: 1, RacksPerCluster: 1,
		Capacity: resource.Cores(16, 32*1024),
	})
	w := workload.MustNew([]*workload.App{
		{ID: "hog", Demand: resource.Cores(12, 8192), Replicas: 1, Priority: workload.PriorityLow},
		{ID: "vip", Demand: resource.Cores(10, 8192), Replicas: 1, Priority: workload.PriorityHigh},
	})
	res := run(t, NewDefault(), w, cl)
	if _, ok := res.Assignment["vip/0"]; !ok {
		t.Error("vip should preempt the hog")
	}
	if _, ok := res.Assignment["hog/0"]; ok {
		t.Error("hog should have been evicted (nowhere to requeue)")
	}
}

func TestPreemptionDisabled(t *testing.T) {
	cl := topology.New(topology.Config{
		Machines: 1, MachinesPerRack: 1, RacksPerCluster: 1,
		Capacity: resource.Cores(16, 32*1024),
	})
	w := workload.MustNew([]*workload.App{
		{ID: "hog", Demand: resource.Cores(12, 8192), Replicas: 1, Priority: workload.PriorityLow},
		{ID: "vip", Demand: resource.Cores(10, 8192), Replicas: 1, Priority: workload.PriorityHigh},
	})
	res := run(t, New(Options{}), w, cl)
	if _, ok := res.Assignment["vip/0"]; ok {
		t.Error("without preemption vip cannot fit")
	}
}

func TestLowPriorityNeverPreempts(t *testing.T) {
	cl := topology.New(topology.Config{
		Machines: 1, MachinesPerRack: 1, RacksPerCluster: 1,
		Capacity: resource.Cores(16, 32*1024),
	})
	w := workload.MustNew([]*workload.App{
		{ID: "vip", Demand: resource.Cores(10, 8192), Replicas: 1, Priority: workload.PriorityHigh},
		{ID: "bulk", Demand: resource.Cores(12, 8192), Replicas: 1, Priority: workload.PriorityLow},
	})
	res := run(t, NewDefault(), w, cl)
	if _, ok := res.Assignment["vip/0"]; !ok {
		t.Error("vip must stay")
	}
	if len(res.Undeployed) != 1 || res.Undeployed[0] != "bulk/0" {
		t.Errorf("undeployed = %v", res.Undeployed)
	}
}

func TestPreemptionCannotClearBlockers(t *testing.T) {
	// vip is anti-affine with a low-priority squatter on the only
	// machine.  Kubernetes 1.11 preemption does not evict pods to
	// satisfy the pending pod's anti-affinity — vip stays undeployed
	// even though it outranks the squatter (the "separately" gap).
	cl := topology.New(topology.Config{
		Machines: 1, MachinesPerRack: 1, RacksPerCluster: 1,
		Capacity: resource.Cores(32, 64*1024),
	})
	w := workload.MustNew([]*workload.App{
		{ID: "squatter", Demand: resource.Cores(2, 2048), Replicas: 1, Priority: workload.PriorityLow},
		{ID: "vip", Demand: resource.Cores(2, 2048), Replicas: 1, Priority: workload.PriorityHigh, AntiAffinityApps: []string{"squatter"}},
	})
	res := run(t, NewDefault(), w, cl)
	if _, ok := res.Assignment["vip/0"]; ok {
		t.Fatal("K8s-style preemption must not clear anti-affinity blockers")
	}
	if len(res.Undeployed) != 1 || res.Undeployed[0] != "vip/0" {
		t.Errorf("undeployed = %v, want [vip/0]", res.Undeployed)
	}
	if s := res.ViolationSummary(); s.Total() != 0 {
		t.Errorf("violations: %+v", s)
	}
}

func TestTraceNoViolationsButUndeployed(t *testing.T) {
	// Go-Kube never violates anti-affinity (it filters), but its lack
	// of global optimisation leaves a meaningful fraction undeployed
	// on the Alibaba-shaped trace (the ~21% of Fig. 9).
	w := trace.MustGenerate(trace.Scaled(42, 100))
	cl := cluster(256)
	res := run(t, NewDefault(), w, cl)
	if s := res.ViolationSummary(); s.Within+s.Across != 0 {
		t.Errorf("anti-affinity violations: %+v", s)
	}
	if res.UndeployedFraction() == 0 {
		t.Log("note: Go-Kube deployed everything on this trace; acceptable but unexpected at scale")
	}
}

func TestUsesMoreMachinesThanNeeded(t *testing.T) {
	// Spreading inflates machine usage: 8 one-core pods across 8
	// machines, where packing would use 1.
	w := workload.MustNew([]*workload.App{
		{ID: "a", Demand: resource.Cores(1, 1024), Replicas: 8},
	})
	cl := cluster(8)
	run(t, NewDefault(), w, cl)
	if used := cl.UsedMachines(); used < 8 {
		t.Errorf("expected spreading to touch all machines, used %d", used)
	}
}

func TestName(t *testing.T) {
	if NewDefault().Name() != "Go-Kube" {
		t.Error("name")
	}
}

func TestProfileStrings(t *testing.T) {
	if LeastAllocated.String() != "least-allocated" ||
		MostAllocated.String() != "most-allocated" ||
		Profile(9).String() != "unknown" {
		t.Error("profile names")
	}
}

func TestMostAllocatedProfilePacks(t *testing.T) {
	// The bin-packing profile should land 8 one-core pods on one
	// machine where the default spreads them over all 8.
	w := workload.MustNew([]*workload.App{
		{ID: "a", Demand: resource.Cores(1, 1024), Replicas: 8},
	})
	cl := cluster(8)
	res := run(t, New(Options{Preemption: true, Profile: MostAllocated}), w, cl)
	if len(res.Undeployed) != 0 {
		t.Fatalf("undeployed: %v", res.Undeployed)
	}
	if used := cl.UsedMachines(); used != 1 {
		t.Errorf("MostAllocated should pack onto 1 machine, used %d", used)
	}
}

func TestProfilesDiffer(t *testing.T) {
	w := workload.MustNew([]*workload.App{
		{ID: "a", Demand: resource.Cores(2, 2048), Replicas: 12},
	})
	clSpread, clPack := cluster(6), cluster(6)
	run(t, New(Options{}), w, clSpread)
	run(t, New(Options{Profile: MostAllocated}), w, clPack)
	if clPack.UsedMachines() >= clSpread.UsedMachines() {
		t.Errorf("packing (%d machines) should beat spreading (%d)",
			clPack.UsedMachines(), clSpread.UsedMachines())
	}
}
