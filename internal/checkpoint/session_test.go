package checkpoint

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"aladdin/internal/core"
	"aladdin/internal/resource"
	"aladdin/internal/topology"
	"aladdin/internal/trace"
	"aladdin/internal/workload"
)

// liveSession builds a session mid-trace: half the apps placed, two
// machines failed (evictions stranded in the undeployed ledger), on a
// heterogeneous cluster — everything the v1 format cannot hold.
func liveSession(t *testing.T) (*core.Session, *workload.Workload, [][]*workload.Container) {
	t.Helper()
	w := trace.MustGenerate(trace.Scaled(13, 300))
	cl, err := topology.NewHeterogeneous(topology.HeteroConfig{
		MachinesPerRack: 8, RacksPerCluster: 3,
		Classes: []topology.MachineClass{
			{Name: "big", Count: 24, Capacity: resource.Cores(32, 64*1024)},
			{Name: "small", Count: 24, Capacity: resource.Cores(16, 32*1024)},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	var batches [][]*workload.Container
	for _, a := range w.Apps() {
		var b []*workload.Container
		for _, c := range w.Containers() {
			if c.App == a.ID {
				b = append(b, c)
			}
		}
		batches = append(batches, b)
	}
	s := core.NewSession(core.DefaultOptions(), w, cl)
	for _, b := range batches[:len(batches)/2] {
		if _, err := s.Place(b); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range []topology.MachineID{2, 30} {
		if _, err := s.FailMachine(id); err != nil {
			t.Fatal(err)
		}
	}
	return s, w, batches
}

// TestSessionSnapshotRoundTrip captures a live heterogeneous session
// with down machines, round-trips it through JSON, restores, and
// requires byte-identical subsequent scheduling versus the session
// that never restarted.
func TestSessionSnapshotRoundTrip(t *testing.T) {
	s, w, batches := liveSession(t)
	snap, err := CaptureSession(s)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := snap.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSession(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, snap) {
		t.Fatal("snapshot changed across encode/decode")
	}
	restored, cl2, err := back.Restore(core.DefaultOptions(), w)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []topology.MachineID{2, 30} {
		if cl2.Machine(id).Up() {
			t.Fatalf("machine %d should restore down", id)
		}
	}
	if !reflect.DeepEqual(restored.ExportState(), s.ExportState()) {
		t.Fatal("restored state differs from captured session")
	}
	// Replay the remaining batches on both timelines.
	for _, b := range batches[len(batches)/2:] {
		if _, err := s.Place(b); err != nil {
			t.Fatal(err)
		}
		if _, err := restored.Place(b); err != nil {
			t.Fatal(err)
		}
	}
	if !reflect.DeepEqual(restored.ExportState(), s.ExportState()) {
		t.Fatal("restored session diverged on subsequent batches")
	}
	if vs := restored.AuditInvariants(); len(vs) != 0 {
		t.Fatalf("restored session violations: %v", vs)
	}
}

func TestSessionSnapshotWriteFile(t *testing.T) {
	s, w, _ := liveSession(t)
	snap, err := CaptureSession(s)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "snap.json")
	if err := WriteFile(path, snap); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := back.Restore(core.DefaultOptions(), w); err != nil {
		t.Fatal(err)
	}
	// No temp droppings left behind.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory should hold only the snapshot, got %d entries", len(entries))
	}
	// A flipped byte fails the checksum.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	bad := bytes.Replace(raw, []byte(`"capacity_mem_mb": 65536`), []byte(`"capacity_mem_mb": 65537`), 1)
	if bytes.Equal(raw, bad) {
		t.Fatal("corruption edit did not apply")
	}
	if _, err := ReadSession(bytes.NewReader(bad)); err == nil {
		t.Error("corrupted snapshot should fail")
	}
}

// TestWriteFileSyncsDirectory pins the final step of the crash-safety
// contract: after renaming the temp file over the target, WriteFile
// must fsync the parent directory.  Without it the rename itself is
// not durable — a crash right after WriteFile returns can roll the
// directory entry back and lose the checkpoint the caller was told
// had been written.  The sync runs through the syncDir seam so the
// test can observe the call and inject failures.
func TestWriteFileSyncsDirectory(t *testing.T) {
	s, _, _ := liveSession(t)
	snap, err := CaptureSession(s)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.json")

	orig := syncDir
	defer func() { syncDir = orig }()
	var synced []string
	syncDir = func(d string) error {
		// The snapshot must already sit at its final name when the
		// directory is synced: syncing earlier would not cover the
		// rename.
		if _, err := os.Stat(path); err != nil {
			t.Errorf("directory synced before snapshot landed at %s: %v", path, err)
		}
		synced = append(synced, d)
		return orig(d)
	}
	if err := WriteFile(path, snap); err != nil {
		t.Fatal(err)
	}
	if len(synced) != 1 || synced[0] != dir {
		t.Fatalf("expected exactly one directory sync of %q, got %v", dir, synced)
	}

	// A directory-sync failure must surface: the caller cannot treat
	// the checkpoint as durable.
	syncDir = func(string) error { return errors.New("injected sync failure") }
	if err := WriteFile(filepath.Join(dir, "snap2.json"), snap); err == nil || !strings.Contains(err.Error(), "sync dir") {
		t.Fatalf("expected sync-dir error, got %v", err)
	}
}

func TestReadSessionValidation(t *testing.T) {
	machines := `"machines": [{"name": "m0", "rack": "r0", "cluster": "g0", "capacity_cpu_milli": 1000, "capacity_mem_mb": 1024}]`
	layout := `"layout": {"machines_per_rack": 1, "racks_per_cluster": 1}`
	cases := map[string]string{
		"empty":           ``,
		"wrong version":   `{"version": 1, ` + layout + `, ` + machines + `}`,
		"unknown field":   `{"version": 2, ` + layout + `, ` + machines + `, "extra": 1}`,
		"no machines":     `{"version": 2, ` + layout + `, "machines": []}`,
		"zero layout":     `{"version": 2, "layout": {"machines_per_rack": 0, "racks_per_cluster": 1}, ` + machines + `}`,
		"layout mismatch": `{"version": 2, "layout": {"machines_per_rack": 9, "racks_per_cluster": 1}, ` + machines + `}`,
		"sub mismatch":    `{"version": 2, "layout": {"machines_per_rack": 1, "racks_per_cluster": 4}, ` + machines + `}`,
		"empty name": `{"version": 2, ` + layout + `, "machines": [
			{"name": "", "rack": "r0", "cluster": "g0", "capacity_cpu_milli": 1000, "capacity_mem_mb": 1024}]}`,
		"dup machine": `{"version": 2, "layout": {"machines_per_rack": 2, "racks_per_cluster": 1}, "machines": [
			{"name": "m0", "rack": "r0", "cluster": "g0", "capacity_cpu_milli": 1000, "capacity_mem_mb": 1024},
			{"name": "m0", "rack": "r0", "cluster": "g0", "capacity_cpu_milli": 1000, "capacity_mem_mb": 1024}]}`,
		"zero capacity": `{"version": 2, ` + layout + `, "machines": [
			{"name": "m0", "rack": "r0", "cluster": "g0", "capacity_cpu_milli": 0, "capacity_mem_mb": 1024}]}`,
		"rack in two subs": `{"version": 2, "layout": {"machines_per_rack": 2, "racks_per_cluster": 1}, "machines": [
			{"name": "m0", "rack": "r0", "cluster": "g0", "capacity_cpu_milli": 1000, "capacity_mem_mb": 1024},
			{"name": "m1", "rack": "r0", "cluster": "g1", "capacity_cpu_milli": 1000, "capacity_mem_mb": 1024}]}`,
		"dup placement": `{"version": 2, ` + layout + `, ` + machines + `,
			"placements": [{"container": "a/0", "machine": 0}, {"container": "a/0", "machine": 0}]}`,
		"placement out of range": `{"version": 2, ` + layout + `, ` + machines + `,
			"placements": [{"container": "a/0", "machine": 7}]}`,
		"placement on down": `{"version": 2, ` + layout + `, "machines": [
			{"name": "m0", "rack": "r0", "cluster": "g0", "capacity_cpu_milli": 1000, "capacity_mem_mb": 1024, "down": true}],
			"placements": [{"container": "a/0", "machine": 0}]}`,
		"placed and undeployed": `{"version": 2, ` + layout + `, ` + machines + `,
			"placements": [{"container": "a/0", "machine": 0}], "undeployed": ["a/0"]}`,
		"dup undeployed": `{"version": 2, ` + layout + `, ` + machines + `, "undeployed": ["a/0", "a/0"]}`,
		"zero requeue": `{"version": 2, ` + layout + `, ` + machines + `,
			"requeues": [{"container": "a/0", "count": 0}]}`,
		"dup requeue": `{"version": 2, ` + layout + `, ` + machines + `,
			"requeues": [{"container": "a/0", "count": 1}, {"container": "a/0", "count": 2}]}`,
		"bad checksum": `{"version": 2, "checksum": "deadbeef", ` + layout + `, ` + machines + `}`,
	}
	for name, in := range cases {
		if _, err := ReadSession(strings.NewReader(in)); err == nil {
			t.Errorf("%s: input should fail", name)
		}
	}
	// A checksum-free snapshot (hand-written) is accepted.
	ok := `{"version": 2, ` + layout + `, ` + machines + `}`
	if _, err := ReadSession(strings.NewReader(ok)); err != nil {
		t.Errorf("checksum-free snapshot should parse: %v", err)
	}
}

// --- v1 regression tests: each failed on pre-PR code. ---

// TestReadRejectsDefaultableLayout: v1 Restore feeds layout values
// into topology.New, which substitutes defaults (40 machines/rack, 25
// racks/cluster) for non-positive input — a zeroed layout silently
// restored onto a topology with different anti-affinity boundaries.
func TestReadRejectsDefaultableLayout(t *testing.T) {
	cases := []string{
		`{"version": 1, "machines": 4, "machines_per_rack": 0, "racks_per_cluster": 2, "capacity_cpu_milli": 1000, "capacity_mem_mb": 1024}`,
		`{"version": 1, "machines": 4, "machines_per_rack": -2, "racks_per_cluster": 2, "capacity_cpu_milli": 1000, "capacity_mem_mb": 1024}`,
		`{"version": 1, "machines": 4, "machines_per_rack": 2, "racks_per_cluster": 0, "capacity_cpu_milli": 1000, "capacity_mem_mb": 1024}`,
		`{"version": 1, "machines": 4, "machines_per_rack": 2, "racks_per_cluster": 2, "capacity_cpu_milli": 0, "capacity_mem_mb": 1024}`,
		`{"version": 1, "machines": 4, "machines_per_rack": 2, "racks_per_cluster": 2, "capacity_cpu_milli": 1000, "capacity_mem_mb": 0}`,
	}
	for _, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("input %q should fail", in)
		}
	}
}

// TestV1LayoutRoundTripEquality: a captured snapshot restores onto a
// cluster with identical rack/sub-cluster boundaries, not defaults.
func TestV1LayoutRoundTripEquality(t *testing.T) {
	w, cl, asg := scheduled(t)
	snap, err := Capture(cl, asg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := snap.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	cl2, _, err := back.Restore(w)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := cl2.Racks(), cl.Racks(); !reflect.DeepEqual(got, want) {
		t.Fatalf("rack set diverged: %v != %v", got, want)
	}
	for _, r := range cl.Racks() {
		if got, want := cl2.Rack(r).Machines, cl.Rack(r).Machines; !reflect.DeepEqual(got, want) {
			t.Fatalf("rack %s machines diverged: %v != %v", r, got, want)
		}
	}
	if got, want := cl2.SubClusters(), cl.SubClusters(); !reflect.DeepEqual(got, want) {
		t.Fatalf("sub-cluster set diverged: %v != %v", got, want)
	}
}

// TestRejectsDuplicatePlacements: pre-PR, a snapshot placing the same
// container on two machines passed Restore — the second Allocate
// overwrote asg[c.ID] and leaked the first machine's capacity.
func TestRejectsDuplicatePlacements(t *testing.T) {
	in := `{"version": 1, "machines": 4, "machines_per_rack": 2, "racks_per_cluster": 2,
		"capacity_cpu_milli": 32000, "capacity_mem_mb": 65536,
		"placements": [{"container": "web/0", "machine": 0}, {"container": "web/0", "machine": 1}]}`
	if _, err := Read(strings.NewReader(in)); err == nil {
		t.Error("duplicate placements should fail Read")
	}
	// Restore defends independently of Read.
	w := workload.MustNew([]*workload.App{
		{ID: "web", Demand: resource.Cores(1, 1024), Replicas: 1},
	})
	snap := &Snapshot{
		Version: 1, Machines: 4, MachinesPerRack: 2, RacksPerCluster: 2,
		CapacityCPU: 32000, CapacityMem: 65536,
		Placements: []Placement{
			{Container: "web/0", Machine: 0},
			{Container: "web/0", Machine: 1},
		},
	}
	if _, _, err := snap.Restore(w); err == nil {
		t.Error("duplicate placements should fail Restore")
	}
}

// TestCaptureRefusesDownMachines: pre-PR, Capture ignored up/down
// state and Restore brought every machine back up — a failed machine
// silently resurrected by a warm restart.
func TestCaptureRefusesDownMachines(t *testing.T) {
	_, cl, asg := scheduled(t)
	cl.Machine(5).MarkDown()
	if _, err := Capture(cl, asg); err == nil {
		t.Error("capture with a down machine should fail in the v1 format")
	}
	cl.Machine(5).MarkUp()
	if _, err := Capture(cl, asg); err != nil {
		t.Errorf("capture should succeed once the machine recovers: %v", err)
	}
}
