// Package checkpoint persists and restores the live state of a
// scheduling session — the cluster layout, every placement, and the
// workload reference — so long-running simulations (and a production
// scheduler manager) can stop and resume without replaying history.
//
// The format is versioned JSON; the workload itself is stored by
// reference (its trace must be preserved alongside, which the paper's
// CM/MM split also implies: the scheduler manager snapshots only the
// assignment state).
//
// Two formats exist.  The v1 Snapshot (Capture/Restore) is the legacy
// cluster-level format: homogeneous capacities only, no machine
// availability, no session ledgers — readable but no longer written
// by anything in this repo.  The v2 SessionSnapshot
// (CaptureSession/SessionSnapshot.Restore) is the warm-restart
// format: per-machine capacities and down state, the session's
// undeployed and requeue ledgers, a layout block that is validated —
// never defaulted — on restore, a content checksum, and atomic
// write-temp-then-rename persistence (WriteFile).
package checkpoint

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"aladdin/internal/constraint"
	"aladdin/internal/resource"
	"aladdin/internal/topology"
	"aladdin/internal/workload"
)

// FormatVersion identifies the snapshot schema.
const FormatVersion = 1

// Snapshot is the serialised form of a scheduling state.
type Snapshot struct {
	Version int `json:"version"`
	// Cluster layout.
	Machines        int   `json:"machines"`
	MachinesPerRack int   `json:"machines_per_rack"`
	RacksPerCluster int   `json:"racks_per_cluster"`
	CapacityCPU     int64 `json:"capacity_cpu_milli"`
	CapacityMem     int64 `json:"capacity_mem_mb"`
	// Placements, sorted by container ID for determinism.
	Placements []Placement `json:"placements"`
}

// Placement is one container→machine binding.
type Placement struct {
	Container string             `json:"container"`
	Machine   topology.MachineID `json:"machine"`
}

// Capture snapshots a homogeneous cluster and an assignment.  The
// cluster's layout parameters are recovered from its structure.
//
// The v1 format cannot record machine availability, so capturing a
// cluster with any machine down is refused outright: restoring such a
// snapshot would bring every machine back up and silently resurrect
// failed hardware.  Use CaptureSession (the v2 format) instead.
func Capture(cluster *topology.Cluster, asg constraint.Assignment) (*Snapshot, error) {
	if cluster.Size() == 0 {
		return nil, fmt.Errorf("checkpoint: empty cluster")
	}
	m0 := cluster.Machine(0)
	// Homogeneity check: the v1 format stores one capacity.
	for _, m := range cluster.Machines() {
		if m.Capacity() != m0.Capacity() {
			return nil, fmt.Errorf("checkpoint: v%d format requires a homogeneous cluster (machine %s differs)",
				FormatVersion, m.Name)
		}
		if !m.Up() {
			return nil, fmt.Errorf("checkpoint: v%d format cannot record down machine %s; use CaptureSession",
				FormatVersion, m.Name)
		}
	}
	snap := &Snapshot{
		Version:         FormatVersion,
		Machines:        cluster.Size(),
		MachinesPerRack: len(cluster.Rack(m0.Rack).Machines),
		RacksPerCluster: len(cluster.SubCluster(m0.Cluster).Racks),
		CapacityCPU:     m0.Capacity().Dim(resource.CPU),
		CapacityMem:     m0.Capacity().Dim(resource.Memory),
	}
	for id, machine := range asg {
		if cluster.Machine(machine) == nil {
			return nil, fmt.Errorf("checkpoint: assignment references unknown machine %d", machine)
		}
		if !cluster.Machine(machine).Hosts(id) {
			return nil, fmt.Errorf("checkpoint: container %s not hosted on machine %d", id, machine)
		}
		snap.Placements = append(snap.Placements, Placement{Container: id, Machine: machine})
	}
	sort.Slice(snap.Placements, func(i, j int) bool {
		return snap.Placements[i].Container < snap.Placements[j].Container
	})
	return snap, nil
}

// Write serialises the snapshot as indented JSON.
func (s *Snapshot) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s); err != nil {
		return fmt.Errorf("checkpoint: encode: %w", err)
	}
	return nil
}

// Read parses a snapshot.
func Read(r io.Reader) (*Snapshot, error) {
	var s Snapshot
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("checkpoint: decode: %w", err)
	}
	if s.Version != FormatVersion {
		return nil, fmt.Errorf("checkpoint: unsupported version %d (want %d)", s.Version, FormatVersion)
	}
	if s.Machines <= 0 {
		return nil, fmt.Errorf("checkpoint: invalid machine count %d", s.Machines)
	}
	// Layout parameters feed topology.New, which silently substitutes
	// defaults for non-positive values — a snapshot with a zeroed
	// layout would restore onto a topology with different rack
	// boundaries and different anti-affinity semantics.  Reject here.
	if s.MachinesPerRack <= 0 {
		return nil, fmt.Errorf("checkpoint: invalid machines_per_rack %d", s.MachinesPerRack)
	}
	if s.RacksPerCluster <= 0 {
		return nil, fmt.Errorf("checkpoint: invalid racks_per_cluster %d", s.RacksPerCluster)
	}
	if s.CapacityCPU <= 0 || s.CapacityMem <= 0 {
		return nil, fmt.Errorf("checkpoint: invalid machine capacity (%d CPU milli, %d mem MB)",
			s.CapacityCPU, s.CapacityMem)
	}
	seen := make(map[string]bool, len(s.Placements))
	for _, p := range s.Placements {
		if p.Container == "" {
			return nil, fmt.Errorf("checkpoint: placement with empty container ID")
		}
		if seen[p.Container] {
			return nil, fmt.Errorf("checkpoint: duplicate placement for container %s", p.Container)
		}
		seen[p.Container] = true
	}
	return &s, nil
}

// Restore rebuilds the cluster and re-applies every placement using
// the workload for container demands.  Containers unknown to the
// workload fail the restore (the snapshot and trace must match).
func (s *Snapshot) Restore(w *workload.Workload) (*topology.Cluster, constraint.Assignment, error) {
	cluster := topology.New(topology.Config{
		Machines:        s.Machines,
		MachinesPerRack: s.MachinesPerRack,
		RacksPerCluster: s.RacksPerCluster,
		Capacity:        resource.Milli(s.CapacityCPU, s.CapacityMem),
	})
	byID := make(map[string]*workload.Container, w.NumContainers())
	for _, c := range w.Containers() {
		byID[c.ID] = c
	}
	asg := make(constraint.Assignment, len(s.Placements))
	for _, p := range s.Placements {
		c := byID[p.Container]
		if c == nil {
			return nil, nil, fmt.Errorf("checkpoint: container %s not in workload", p.Container)
		}
		// Defend against duplicates even for snapshots that bypassed
		// Read: a second Allocate for the same ID would overwrite
		// asg[c.ID] and leak the first machine's capacity.
		if _, dup := asg[c.ID]; dup {
			return nil, nil, fmt.Errorf("checkpoint: duplicate placement for container %s", c.ID)
		}
		machine := cluster.Machine(p.Machine)
		if machine == nil {
			return nil, nil, fmt.Errorf("checkpoint: machine %d out of range", p.Machine)
		}
		if err := machine.Allocate(c.ID, c.Demand); err != nil {
			return nil, nil, fmt.Errorf("checkpoint: restore: %w", err)
		}
		asg[c.ID] = p.Machine
	}
	return cluster, asg, nil
}
