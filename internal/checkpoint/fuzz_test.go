package checkpoint

import (
	"bytes"
	"testing"

	"aladdin/internal/core"
	"aladdin/internal/resource"
	"aladdin/internal/workload"
)

// FuzzCheckpointRead feeds arbitrary bytes through both snapshot
// decoders and, for anything they accept, through restore against a
// small fixed workload.  The invariants: Read/ReadSession never
// panic, and an accepted snapshot either restores or fails with a
// clean error — never a crash, never a half-restored state that
// flunks the invariant audit.
func FuzzCheckpointRead(f *testing.F) {
	f.Add([]byte(`{"version": 1, "machines": 4, "machines_per_rack": 2, "racks_per_cluster": 2,
		"capacity_cpu_milli": 32000, "capacity_mem_mb": 65536,
		"placements": [{"container": "web/0", "machine": 0}]}`))
	f.Add([]byte(`{"version": 2, "layout": {"machines_per_rack": 2, "racks_per_cluster": 1}, "machines": [
		{"name": "m0", "rack": "r0", "cluster": "g0", "capacity_cpu_milli": 32000, "capacity_mem_mb": 65536},
		{"name": "m1", "rack": "r0", "cluster": "g0", "capacity_cpu_milli": 16000, "capacity_mem_mb": 32768, "down": true}],
		"placements": [{"container": "web/0", "machine": 0}], "undeployed": ["web/1"],
		"requeues": [{"container": "web/0", "count": 1}]}`))
	f.Add([]byte(`{"version": 2`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`{"version": 1, "machines": -7}`))

	w := workload.MustNew([]*workload.App{
		{ID: "web", Demand: resource.Cores(4, 8192), Replicas: 2, AntiAffinitySelf: true},
	})
	f.Fuzz(func(t *testing.T, data []byte) {
		if snap, err := Read(bytes.NewReader(data)); err == nil {
			// Cap the machine count before Restore materialises the
			// topology: the fuzzer will happily claim a billion machines.
			if snap.Machines <= 512 {
				if _, _, rerr := snap.Restore(w); rerr == nil && len(snap.Placements) > 0 {
					// Accepted and restored with placements: they must all
					// be hosted.
					cl, asg, _ := snap.Restore(w)
					for id, m := range asg {
						if !cl.Machine(m).Hosts(id) {
							t.Fatalf("restored container %s not hosted on machine %d", id, m)
						}
					}
				}
			}
		}
		if snap, err := ReadSession(bytes.NewReader(data)); err == nil {
			sess, _, rerr := snap.Restore(core.DefaultOptions(), w)
			if rerr == nil {
				if vs := sess.AuditInvariants(); len(vs) != 0 {
					t.Fatalf("accepted snapshot restored into a session with violations: %v", vs)
				}
			}
		}
	})
}
