package checkpoint

import (
	"bytes"
	"strings"
	"testing"

	"aladdin/internal/constraint"
	"aladdin/internal/core"
	"aladdin/internal/resource"
	"aladdin/internal/topology"
	"aladdin/internal/trace"
	"aladdin/internal/workload"
)

func scheduled(t *testing.T) (*workload.Workload, *topology.Cluster, constraint.Assignment) {
	t.Helper()
	w := trace.MustGenerate(trace.Scaled(42, 400))
	cl := topology.New(topology.Config{
		Machines: 96, MachinesPerRack: 8, RacksPerCluster: 4,
		Capacity: resource.Cores(32, 64*1024),
	})
	res, err := core.NewDefault().Schedule(w, cl, w.Arrange(workload.OrderSubmission))
	if err != nil {
		t.Fatal(err)
	}
	return w, cl, res.Assignment
}

func TestCaptureRestoreRoundTrip(t *testing.T) {
	w, cl, asg := scheduled(t)
	snap, err := Capture(cl, asg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := snap.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	cl2, asg2, err := back.Restore(w)
	if err != nil {
		t.Fatal(err)
	}
	if cl2.Size() != cl.Size() {
		t.Errorf("size %d != %d", cl2.Size(), cl.Size())
	}
	if len(asg2) != len(asg) {
		t.Fatalf("assignment size %d != %d", len(asg2), len(asg))
	}
	for id, m := range asg {
		if asg2[id] != m {
			t.Fatalf("container %s: %d != %d", id, asg2[id], m)
		}
		if !cl2.Machine(m).Hosts(id) {
			t.Fatalf("restored machine %d does not host %s", m, id)
		}
	}
	// Resource state identical.
	if cl2.TotalUsed() != cl.TotalUsed() {
		t.Errorf("TotalUsed %v != %v", cl2.TotalUsed(), cl.TotalUsed())
	}
	if cl2.UsedMachines() != cl.UsedMachines() {
		t.Errorf("UsedMachines %d != %d", cl2.UsedMachines(), cl.UsedMachines())
	}
	// Restored state continues to schedule: place one more batch via
	// a session.
	s := core.NewSession(core.DefaultOptions(), w, cl2)
	_ = s
}

func TestCaptureValidation(t *testing.T) {
	_, cl, asg := scheduled(t)
	// Unknown machine.
	bad := constraint.Assignment{"x": 9999}
	if _, err := Capture(cl, bad); err == nil {
		t.Error("unknown machine should fail")
	}
	// Machine exists but does not host the container.
	bad2 := constraint.Assignment{"ghost/0": 0}
	if _, err := Capture(cl, bad2); err == nil {
		t.Error("unhosted container should fail")
	}
	// Empty cluster.
	if _, err := Capture(topology.New(topology.Config{}), asg); err == nil {
		t.Error("empty cluster should fail")
	}
	// Heterogeneous cluster rejected by v1 format.
	het, err := topology.NewHeterogeneous(topology.HeteroConfig{
		Classes: []topology.MachineClass{
			{Name: "a", Count: 1, Capacity: resource.Cores(32, 65536)},
			{Name: "b", Count: 1, Capacity: resource.Cores(16, 32768)},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Capture(het, constraint.Assignment{}); err == nil {
		t.Error("heterogeneous cluster should be rejected by v1")
	}
}

func TestReadValidation(t *testing.T) {
	cases := []string{
		``,
		`{"version": 99, "machines": 1}`,
		`{"version": 1, "machines": 0}`,
		`{"version": 1, "machines": 1, "unknown_field": true}`,
	}
	for _, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("input %q should fail", in)
		}
	}
}

func TestRestoreValidation(t *testing.T) {
	w, cl, asg := scheduled(t)
	snap, err := Capture(cl, asg)
	if err != nil {
		t.Fatal(err)
	}
	// Restoring against a mismatched workload fails.
	other := workload.MustNew([]*workload.App{
		{ID: "different", Demand: resource.Cores(1, 1), Replicas: 1},
	})
	if _, _, err := snap.Restore(other); err == nil && len(asg) > 0 {
		t.Error("mismatched workload should fail restore")
	}
	// Machine out of range.
	snap2 := *snap
	snap2.Machines = 1
	if _, _, err := snap2.Restore(w); err == nil && len(asg) > 0 {
		t.Error("machine out of range should fail restore")
	}
}
