package checkpoint

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"aladdin/internal/core"
	"aladdin/internal/resource"
	"aladdin/internal/topology"
	"aladdin/internal/workload"
)

// SessionFormatVersion identifies the v2 session snapshot schema.
const SessionFormatVersion = 2

// Layout records the rack/sub-cluster shape the snapshot was taken
// from.  ReadSession validates it against the per-machine specs —
// a snapshot whose layout disagrees with its machine list is corrupt,
// not "use a default": restoring onto different rack boundaries would
// silently change anti-affinity semantics.
type Layout struct {
	// MachinesPerRack is the size of the largest rack.
	MachinesPerRack int `json:"machines_per_rack"`
	// RacksPerCluster is the rack count of the largest sub-cluster.
	RacksPerCluster int `json:"racks_per_cluster"`
}

// MachineState is one machine's spec in a session snapshot:
// identity, topology position, capacity, and availability.  Unlike
// the v1 format, capacities are per-machine (heterogeneous clusters
// checkpoint losslessly) and down machines are recorded.
type MachineState struct {
	Name    string `json:"name"`
	Rack    string `json:"rack"`
	Cluster string `json:"cluster"`
	// Per-machine capacity.
	CPUMilli int64 `json:"capacity_cpu_milli"`
	MemMB    int64 `json:"capacity_mem_mb"`
	// Down marks the machine failed at capture time; Restore rebuilds
	// it out of service.
	Down bool `json:"down,omitempty"`
}

// RequeueCount records the consumed preemption re-queue budget for
// one container.
type RequeueCount struct {
	Container string `json:"container"`
	Count     int    `json:"count"`
}

// SessionSnapshot is the v2, session-level checkpoint: the full
// per-machine topology (capacities, down set), every placement, and
// the session's undeployed and requeue ledgers.  Restoring it yields
// a core.Session whose subsequent scheduling decisions are
// byte-identical to a session that never restarted.
type SessionSnapshot struct {
	Version int `json:"version"`
	// Checksum is the hex sha256 of the snapshot's JSON encoding with
	// this field cleared.  Write computes it; ReadSession verifies it
	// when non-empty (hand-written snapshots may omit it).
	Checksum string `json:"checksum,omitempty"`
	Layout   Layout `json:"layout"`
	// Machines in machine-ID order; FromSpecs reassigns the same IDs.
	Machines []MachineState `json:"machines"`
	// Placements, sorted by container ID for determinism.
	Placements []Placement `json:"placements"`
	// Undeployed lists submitted-but-unplaced containers (arrival
	// rejections, preemption strandings, failure evictions), sorted.
	Undeployed []string `json:"undeployed,omitempty"`
	// Stranded lists the subset of Undeployed evicted by machine
	// failures and eligible for automatic retry after recovery,
	// sorted.  Optional: snapshots from before this field restore
	// with every undeployed container requiring explicit
	// re-submission.
	Stranded []string `json:"stranded,omitempty"`
	// Requeues is the consumed preemption re-queue budget, sorted by
	// container ID.
	Requeues []RequeueCount `json:"requeues,omitempty"`
	// ILFailed lists applications the isomorphism-limiting cache had
	// proven unplaceable at capture time, sorted.  Restoring it warms
	// the memo so the first post-restore batch pays no re-miss storm;
	// the entries stay valid because the restored cluster state is
	// exactly the captured one.  Optional: snapshots from before this
	// field (or hand-written ones) restore with a cold cache.
	ILFailed []string `json:"il_failed,omitempty"`
}

// CaptureSession snapshots a live session: topology (including down
// machines and heterogeneous capacities), placements, and the
// undeployed/requeue ledgers.
func CaptureSession(s *core.Session) (*SessionSnapshot, error) {
	cluster := s.Cluster()
	if cluster.Size() == 0 {
		return nil, fmt.Errorf("checkpoint: empty cluster")
	}
	snap := &SessionSnapshot{Version: SessionFormatVersion}
	for _, sp := range cluster.Specs() {
		snap.Machines = append(snap.Machines, MachineState{
			Name:     sp.Name,
			Rack:     sp.Rack,
			Cluster:  sp.Cluster,
			CPUMilli: sp.Capacity.CPUMilli,
			MemMB:    sp.Capacity.MemMB,
			Down:     sp.Down,
		})
	}
	for _, rname := range cluster.Racks() {
		if n := len(cluster.Rack(rname).Machines); n > snap.Layout.MachinesPerRack {
			snap.Layout.MachinesPerRack = n
		}
	}
	for _, gname := range cluster.SubClusters() {
		if n := len(cluster.SubCluster(gname).Racks); n > snap.Layout.RacksPerCluster {
			snap.Layout.RacksPerCluster = n
		}
	}

	st := s.ExportState()
	for id, machine := range st.Assignment {
		m := cluster.Machine(machine)
		if m == nil {
			return nil, fmt.Errorf("checkpoint: assignment references unknown machine %d", machine)
		}
		if !m.Hosts(id) {
			return nil, fmt.Errorf("checkpoint: container %s not hosted on machine %d", id, machine)
		}
		snap.Placements = append(snap.Placements, Placement{Container: id, Machine: machine})
	}
	sort.Slice(snap.Placements, func(i, j int) bool {
		return snap.Placements[i].Container < snap.Placements[j].Container
	})
	snap.Undeployed = append(snap.Undeployed, st.Undeployed...)
	snap.Stranded = append(snap.Stranded, st.Stranded...)
	for id, n := range st.Requeues {
		snap.Requeues = append(snap.Requeues, RequeueCount{Container: id, Count: n})
	}
	sort.Slice(snap.Requeues, func(i, j int) bool {
		return snap.Requeues[i].Container < snap.Requeues[j].Container
	})
	snap.ILFailed = append(snap.ILFailed, st.ILFailed...)
	return snap, nil
}

// checksum computes the hex sha256 of the snapshot's compact JSON
// encoding with the Checksum field cleared.
func (s *SessionSnapshot) checksum() (string, error) {
	clone := *s
	clone.Checksum = ""
	b, err := json.Marshal(&clone)
	if err != nil {
		return "", fmt.Errorf("checkpoint: checksum encode: %w", err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// Write serialises the snapshot as indented JSON, stamping the
// content checksum.
func (s *SessionSnapshot) Write(w io.Writer) error {
	sum, err := s.checksum()
	if err != nil {
		return err
	}
	s.Checksum = sum
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s); err != nil {
		return fmt.Errorf("checkpoint: encode: %w", err)
	}
	return nil
}

// ReadSession parses and validates a v2 session snapshot.  Every
// structural invariant is checked here so Restore can trust the
// snapshot: version, layout consistency against the machine list,
// machine spec validity, placement/ledger referential integrity, and
// the content checksum when present.
func ReadSession(r io.Reader) (*SessionSnapshot, error) {
	var s SessionSnapshot
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("checkpoint: decode: %w", err)
	}
	if s.Version != SessionFormatVersion {
		return nil, fmt.Errorf("checkpoint: unsupported session version %d (want %d)", s.Version, SessionFormatVersion)
	}
	if s.Checksum != "" {
		want, err := s.checksum()
		if err != nil {
			return nil, err
		}
		if s.Checksum != want {
			return nil, fmt.Errorf("checkpoint: checksum mismatch (snapshot corrupt or edited): got %s want %s",
				s.Checksum, want)
		}
	}
	if len(s.Machines) == 0 {
		return nil, fmt.Errorf("checkpoint: no machines")
	}
	if s.Layout.MachinesPerRack <= 0 {
		return nil, fmt.Errorf("checkpoint: invalid machines_per_rack %d", s.Layout.MachinesPerRack)
	}
	if s.Layout.RacksPerCluster <= 0 {
		return nil, fmt.Errorf("checkpoint: invalid racks_per_cluster %d", s.Layout.RacksPerCluster)
	}
	names := make(map[string]int, len(s.Machines))
	rackSize := map[string]int{}
	rackCluster := map[string]string{}
	subRacks := map[string]map[string]bool{}
	down := make(map[int]bool)
	for i, m := range s.Machines {
		if m.Name == "" || m.Rack == "" || m.Cluster == "" {
			return nil, fmt.Errorf("checkpoint: machine %d: empty name, rack or cluster", i)
		}
		if _, dup := names[m.Name]; dup {
			return nil, fmt.Errorf("checkpoint: duplicate machine name %q", m.Name)
		}
		names[m.Name] = i
		if m.CPUMilli <= 0 || m.MemMB <= 0 {
			return nil, fmt.Errorf("checkpoint: machine %q has invalid capacity (%d CPU milli, %d mem MB)",
				m.Name, m.CPUMilli, m.MemMB)
		}
		if prev, ok := rackCluster[m.Rack]; ok && prev != m.Cluster {
			return nil, fmt.Errorf("checkpoint: rack %q claimed by sub-clusters %q and %q", m.Rack, prev, m.Cluster)
		}
		rackCluster[m.Rack] = m.Cluster
		rackSize[m.Rack]++
		if subRacks[m.Cluster] == nil {
			subRacks[m.Cluster] = map[string]bool{}
		}
		subRacks[m.Cluster][m.Rack] = true
		if m.Down {
			down[i] = true
		}
	}
	// Layout must agree with the machine list: no rack or sub-cluster
	// exceeds it, and the maxima match exactly (a too-large layout is
	// as corrupt as a too-small one).
	maxRack, maxSub := 0, 0
	for _, n := range rackSize {
		if n > maxRack {
			maxRack = n
		}
	}
	for _, racks := range subRacks {
		if len(racks) > maxSub {
			maxSub = len(racks)
		}
	}
	if maxRack != s.Layout.MachinesPerRack {
		return nil, fmt.Errorf("checkpoint: layout machines_per_rack %d disagrees with machine list (largest rack has %d)",
			s.Layout.MachinesPerRack, maxRack)
	}
	if maxSub != s.Layout.RacksPerCluster {
		return nil, fmt.Errorf("checkpoint: layout racks_per_cluster %d disagrees with machine list (largest sub-cluster has %d racks)",
			s.Layout.RacksPerCluster, maxSub)
	}

	placed := make(map[string]bool, len(s.Placements))
	for _, p := range s.Placements {
		if p.Container == "" {
			return nil, fmt.Errorf("checkpoint: placement with empty container ID")
		}
		if placed[p.Container] {
			return nil, fmt.Errorf("checkpoint: duplicate placement for container %s", p.Container)
		}
		placed[p.Container] = true
		idx := int(p.Machine)
		if idx < 0 || idx >= len(s.Machines) {
			return nil, fmt.Errorf("checkpoint: placement of %s on machine %d out of range", p.Container, p.Machine)
		}
		if down[idx] {
			return nil, fmt.Errorf("checkpoint: placement of %s on down machine %s", p.Container, s.Machines[idx].Name)
		}
	}
	undeployed := make(map[string]bool, len(s.Undeployed))
	for _, id := range s.Undeployed {
		if id == "" {
			return nil, fmt.Errorf("checkpoint: empty container ID in undeployed ledger")
		}
		if undeployed[id] {
			return nil, fmt.Errorf("checkpoint: duplicate undeployed entry %s", id)
		}
		undeployed[id] = true
		if placed[id] {
			return nil, fmt.Errorf("checkpoint: container %s both placed and undeployed", id)
		}
	}
	seenStranded := make(map[string]bool, len(s.Stranded))
	for _, id := range s.Stranded {
		if id == "" {
			return nil, fmt.Errorf("checkpoint: empty container ID in stranded ledger")
		}
		if seenStranded[id] {
			return nil, fmt.Errorf("checkpoint: duplicate stranded entry %s", id)
		}
		seenStranded[id] = true
		if !undeployed[id] {
			return nil, fmt.Errorf("checkpoint: stranded container %s not in the undeployed ledger", id)
		}
	}
	seenReq := make(map[string]bool, len(s.Requeues))
	for _, rq := range s.Requeues {
		if rq.Container == "" {
			return nil, fmt.Errorf("checkpoint: empty container ID in requeue ledger")
		}
		if seenReq[rq.Container] {
			return nil, fmt.Errorf("checkpoint: duplicate requeue entry %s", rq.Container)
		}
		seenReq[rq.Container] = true
		if rq.Count <= 0 {
			return nil, fmt.Errorf("checkpoint: container %s has non-positive requeue count %d", rq.Container, rq.Count)
		}
	}
	seenIL := make(map[string]bool, len(s.ILFailed))
	for _, app := range s.ILFailed {
		if app == "" {
			return nil, fmt.Errorf("checkpoint: empty app ID in IL cache ledger")
		}
		if seenIL[app] {
			return nil, fmt.Errorf("checkpoint: duplicate IL cache entry %s", app)
		}
		seenIL[app] = true
	}
	return &s, nil
}

// Restore rebuilds a live session from the snapshot: topology via
// FromSpecs (heterogeneous capacities, down machines marked before
// any replay), then core.RestoreSession replaying every placement
// through the scheduler's own place path.  The workload must be the
// universe the snapshot was captured from.
func (s *SessionSnapshot) Restore(opts core.Options, w *workload.Workload) (*core.Session, *topology.Cluster, error) {
	specs := make([]topology.MachineSpec, len(s.Machines))
	for i, m := range s.Machines {
		specs[i] = topology.MachineSpec{
			Name:     m.Name,
			Rack:     m.Rack,
			Cluster:  m.Cluster,
			Capacity: resource.Milli(m.CPUMilli, m.MemMB),
			Down:     m.Down,
		}
	}
	cluster, err := topology.FromSpecs(specs)
	if err != nil {
		return nil, nil, fmt.Errorf("checkpoint: restore topology: %w", err)
	}
	st := &core.SessionState{
		Assignment: make(map[string]topology.MachineID, len(s.Placements)),
		Undeployed: append([]string(nil), s.Undeployed...),
		Stranded:   append([]string(nil), s.Stranded...),
		Requeues:   make(map[string]int, len(s.Requeues)),
		ILFailed:   append([]string(nil), s.ILFailed...),
	}
	for _, p := range s.Placements {
		if _, dup := st.Assignment[p.Container]; dup {
			return nil, nil, fmt.Errorf("checkpoint: duplicate placement for container %s", p.Container)
		}
		st.Assignment[p.Container] = p.Machine
	}
	for _, rq := range s.Requeues {
		st.Requeues[rq.Container] = rq.Count
	}
	sess, err := core.RestoreSession(opts, w, cluster, st)
	if err != nil {
		return nil, nil, err
	}
	return sess, cluster, nil
}

// syncDir fsyncs a directory so a completed rename is durable.  It is
// a seam (package variable) so tests can observe that WriteFile really
// syncs the parent directory and can inject sync failures.
var syncDir = func(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// WriteFile persists the snapshot crash-safely: write to a temp file
// in the destination directory, fsync, rename over the target, then
// fsync the directory.  A crash mid-write leaves either the old
// snapshot or none — never a truncated one.  The directory fsync is
// what makes the rename itself durable: without it, a crash right
// after the rename can roll the directory entry back to the old
// snapshot or to nothing at all, losing a checkpoint the caller was
// told had been written.
func WriteFile(path string, s *SessionSnapshot) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("checkpoint: temp file: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after successful rename
	if err := s.Write(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("checkpoint: sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("checkpoint: close: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("checkpoint: rename: %w", err)
	}
	if err := syncDir(dir); err != nil {
		return fmt.Errorf("checkpoint: sync dir: %w", err)
	}
	return nil
}

// ReadFile loads and validates a session snapshot from disk.
func ReadFile(path string) (*SessionSnapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: open: %w", err)
	}
	defer f.Close()
	return ReadSession(f)
}
