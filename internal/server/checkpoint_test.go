package server

import (
	"encoding/json"
	"errors"
	"net/http"
	"path/filepath"
	"reflect"
	"testing"

	"aladdin/internal/checkpoint"
	"aladdin/internal/constraint"
	"aladdin/internal/core"
	"aladdin/internal/resource"
	"aladdin/internal/topology"
	"aladdin/internal/workload"
)

// TestExplainStatusCodes: pre-PR the handler mapped every Explain
// error to 404, so an internal failure read as "no such container".
func TestExplainStatusCodes(t *testing.T) {
	s, _ := testServer(t)
	if rec := do(t, s, http.MethodGet, "/explain?container=web/0", ""); rec.Code != http.StatusOK {
		t.Fatalf("explain known = %d: %s", rec.Code, rec.Body)
	}
	if rec := do(t, s, http.MethodGet, "/explain?container=ghost/9", ""); rec.Code != http.StatusNotFound {
		t.Fatalf("explain unknown = %d, want 404: %s", rec.Code, rec.Body)
	}
	if rec := do(t, s, http.MethodGet, "/explain", ""); rec.Code != http.StatusBadRequest {
		t.Fatalf("explain missing param = %d, want 400", rec.Code)
	}
	// An internal failure must NOT masquerade as not-found.
	s.explain = func(*workload.Workload, *topology.Cluster, constraint.Assignment, string) (*core.Explanation, error) {
		return nil, errors.New("aggregates diverged")
	}
	if rec := do(t, s, http.MethodGet, "/explain?container=web/0", ""); rec.Code != http.StatusInternalServerError {
		t.Fatalf("explain internal error = %d, want 500: %s", rec.Code, rec.Body)
	}
}

// TestCheckpointRestoreHandlers drives the full warm-restart loop
// over HTTP: place, fail a machine, checkpoint to disk, keep
// scheduling on one server while a second restores the snapshot and
// replays the same batch — both must land identical assignments.
func TestCheckpointRestoreHandlers(t *testing.T) {
	s, _ := testServer(t)
	if rec := do(t, s, http.MethodPost, "/place", `{"containers":["web/0","web/1","db/0"]}`); rec.Code != http.StatusOK {
		t.Fatalf("place = %d: %s", rec.Code, rec.Body)
	}
	if rec := do(t, s, http.MethodPost, "/fail", `{"machine": 3}`); rec.Code != http.StatusOK {
		t.Fatalf("fail = %d: %s", rec.Code, rec.Body)
	}

	path := filepath.Join(t.TempDir(), "snap.json")
	rec := do(t, s, http.MethodPost, "/checkpoint", `{"path": "`+path+`"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("checkpoint = %d: %s", rec.Code, rec.Body)
	}
	var cr checkpointResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &cr); err != nil {
		t.Fatal(err)
	}
	if cr.Machines != 4 || cr.Placements != 3 {
		t.Fatalf("checkpoint summary = %+v", cr)
	}
	if _, err := checkpoint.ReadFile(path); err != nil {
		t.Fatalf("written snapshot unreadable: %v", err)
	}

	// Second server, same workload universe, fresh state.
	s2, _ := testServer(t)
	rec = do(t, s2, http.MethodPost, "/restore", `{"path": "`+path+`"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("restore = %d: %s", rec.Code, rec.Body)
	}
	var rr restoreResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &rr); err != nil {
		t.Fatal(err)
	}
	if rr.Machines != 4 || rr.Placed != 3 {
		t.Fatalf("restore summary = %+v", rr)
	}
	if s2.def.cluster.Machine(3).Up() {
		t.Fatal("machine 3 should restore down")
	}

	// Same subsequent batch on both; must land identically.
	for _, srv := range []*Server{s, s2} {
		if rec := do(t, srv, http.MethodPost, "/place", `{"containers":["web/2"]}`); rec.Code != http.StatusOK {
			t.Fatalf("post-restore place = %d: %s", rec.Code, rec.Body)
		}
	}
	if !reflect.DeepEqual(s.def.sched.Assignment(), s2.def.sched.Assignment()) {
		t.Fatalf("assignments diverged:\n original: %v\n restored: %v",
			s.def.sched.Assignment(), s2.def.sched.Assignment())
	}
	if rec := do(t, s2, http.MethodGet, "/healthz", ""); rec.Code != http.StatusOK {
		t.Fatalf("restored server unhealthy: %s", rec.Body)
	}
}

// TestCheckpointInline: no path configured or given returns the
// snapshot itself, which restores through the inline /restore form.
func TestCheckpointInline(t *testing.T) {
	s, _ := testServer(t)
	if rec := do(t, s, http.MethodPost, "/place", `{"containers":["web/0","db/0"]}`); rec.Code != http.StatusOK {
		t.Fatalf("place = %d: %s", rec.Code, rec.Body)
	}
	rec := do(t, s, http.MethodPost, "/checkpoint", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("inline checkpoint = %d: %s", rec.Code, rec.Body)
	}
	s2, _ := testServer(t)
	body, err := json.Marshal(restoreRequest{Snapshot: rec.Body.Bytes()})
	if err != nil {
		t.Fatal(err)
	}
	if rec := do(t, s2, http.MethodPost, "/restore", string(body)); rec.Code != http.StatusOK {
		t.Fatalf("inline restore = %d: %s", rec.Code, rec.Body)
	}
	if !reflect.DeepEqual(s.def.sched.Assignment(), s2.def.sched.Assignment()) {
		t.Fatal("inline round-trip diverged")
	}
}

func TestCheckpointDefaultPath(t *testing.T) {
	w := workload.MustNew([]*workload.App{
		{ID: "a", Demand: resource.Cores(4, 8192), Replicas: 1},
	})
	cl := topology.New(topology.Config{
		Machines: 2, MachinesPerRack: 1, RacksPerCluster: 2,
		Capacity: resource.Cores(32, 64*1024),
	})
	sess := core.NewSession(core.DefaultOptions(), w, cl)
	path := filepath.Join(t.TempDir(), "default.json")
	s := New(sess, w, cl, WithCheckpointPath(path))
	if rec := do(t, s, http.MethodPost, "/checkpoint", "{}"); rec.Code != http.StatusOK {
		t.Fatalf("checkpoint = %d: %s", rec.Code, rec.Body)
	}
	if _, err := checkpoint.ReadFile(path); err != nil {
		t.Fatalf("default-path snapshot unreadable: %v", err)
	}
}

func TestRestoreValidationErrors(t *testing.T) {
	s, _ := testServer(t)
	cases := map[string]struct {
		body string
		want int
	}{
		"empty body":       {``, http.StatusBadRequest},
		"neither":          {`{}`, http.StatusBadRequest},
		"both":             {`{"path": "x", "snapshot": {"version": 2}}`, http.StatusBadRequest},
		"missing file":     {`{"path": "/nonexistent/snap.json"}`, http.StatusBadRequest},
		"invalid snapshot": {`{"snapshot": {"version": 99}}`, http.StatusBadRequest},
	}
	for name, tc := range cases {
		if rec := do(t, s, http.MethodPost, "/restore", tc.body); rec.Code != tc.want {
			t.Errorf("%s: code = %d, want %d (%s)", name, rec.Code, tc.want, rec.Body)
		}
	}
	// A structurally valid snapshot whose placements reference
	// containers outside the server's workload is a conflict.
	alien := `{"snapshot": {"version": 2,
		"layout": {"machines_per_rack": 1, "racks_per_cluster": 1},
		"machines": [{"name": "m0", "rack": "r0", "cluster": "g0", "capacity_cpu_milli": 64000, "capacity_mem_mb": 65536}],
		"placements": [{"container": "alien/0", "machine": 0}]}}`
	if rec := do(t, s, http.MethodPost, "/restore", alien); rec.Code != http.StatusConflict {
		t.Errorf("alien snapshot: code = %d, want 409 (%s)", rec.Code, rec.Body)
	}
}
