package server

import (
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"aladdin/internal/core"
	"aladdin/internal/obs"
	"aladdin/internal/resource"
	"aladdin/internal/topology"
	"aladdin/internal/workload"
)

// TestMultiTenantStorm hammers two tenants concurrently with the full
// mutating surface — place (coalesced), remove, fail, recover,
// checkpoint — interleaved with metrics scrapes and assignment dumps,
// under the race detector in CI.  Assertions: every request receives
// a response with an expected status, every 429 carries Retry-After,
// and after the dust settles each tenant's session passes the full
// invariant audit.
func TestMultiTenantStorm(t *testing.T) {
	w := workload.MustNew([]*workload.App{
		{ID: "web", Demand: resource.Cores(4, 8192), Replicas: 6, AntiAffinitySelf: true},
		{ID: "db", Demand: resource.Cores(8, 16384), Replicas: 2},
	})
	cl := topology.New(topology.Config{
		Machines: 8, MachinesPerRack: 4, RacksPerCluster: 2,
		Capacity: resource.Cores(32, 64*1024),
	})
	reg := obs.NewRegistry()
	opts := core.DefaultOptions()
	opts.Metrics = reg
	sess := core.NewSession(opts, w, cl)
	// A tiny queue makes admission-control rejections an expected part
	// of the storm rather than a theoretical path.
	s := New(sess, w, cl, WithRegistry(reg),
		WithCoalescing(CoalesceConfig{Window: 2 * time.Millisecond, MaxBatch: 4, MaxQueue: 2}))
	t.Cleanup(s.Drain)
	if rec := do(t, s, http.MethodPost, "/tenants", `{"name":"blue","machines":8}`); rec.Code != http.StatusCreated {
		t.Fatalf("create tenant = %d: %s", rec.Code, rec.Body)
	}

	prefixes := []string{"", "/t/blue"}
	const workers = 8
	const opsPerWorker = 60

	type tally struct {
		responses int
		badCodes  []string
		bare429   int
	}
	tallies := make([]tally, workers)
	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(wk) + 1))
			ta := &tallies[wk]
			for op := 0; op < opsPerWorker; op++ {
				prefix := prefixes[rng.Intn(len(prefixes))]
				var method, path, body string
				switch rng.Intn(10) {
				case 0, 1, 2, 3:
					method, path = http.MethodPost, prefix+"/place"
					body = fmt.Sprintf(`{"containers":["web/%d"]}`, rng.Intn(6))
				case 4:
					method, path = http.MethodPost, prefix+"/remove"
					body = fmt.Sprintf(`{"container":"web/%d"}`, rng.Intn(6))
				case 5:
					method, path = http.MethodPost, prefix+"/fail"
					body = fmt.Sprintf(`{"machine":%d}`, rng.Intn(8))
				case 6:
					method, path = http.MethodPost, prefix+"/recover"
					body = fmt.Sprintf(`{"machine":%d}`, rng.Intn(8))
				case 7:
					method, path = http.MethodPost, prefix+"/checkpoint"
				case 8:
					method, path = http.MethodGet, "/metrics"
				default:
					method, path = http.MethodGet, prefix+"/assignments"
				}
				var rdr *strings.Reader
				if body != "" {
					rdr = strings.NewReader(body)
				} else {
					rdr = strings.NewReader("")
				}
				req := httptest.NewRequest(method, path, rdr)
				rec := httptest.NewRecorder()
				s.ServeHTTP(rec, req)
				ta.responses++
				switch rec.Code {
				case http.StatusOK, http.StatusBadRequest, http.StatusConflict:
				case http.StatusTooManyRequests:
					if rec.Result().Header.Get("Retry-After") == "" {
						ta.bare429++
					}
				default:
					ta.badCodes = append(ta.badCodes, fmt.Sprintf("%s %s -> %d: %s", method, path, rec.Code, rec.Body))
				}
			}
		}(wk)
	}
	wg.Wait()

	total := 0
	for wk := range tallies {
		total += tallies[wk].responses
		if tallies[wk].bare429 > 0 {
			t.Errorf("worker %d: %d 429 responses without Retry-After", wk, tallies[wk].bare429)
		}
		for _, bad := range tallies[wk].badCodes {
			t.Errorf("worker %d: unexpected response %s", wk, bad)
		}
	}
	if total != workers*opsPerWorker {
		t.Fatalf("responses = %d, want %d (lost results)", total, workers*opsPerWorker)
	}

	// Flush whatever the batchers still hold, then audit every tenant.
	s.Drain()
	for _, tn := range s.tenantsSorted() {
		tn.mu.Lock()
		if err := tn.sched.FlowConservation(); err != nil {
			t.Errorf("tenant %s: flow conservation broken after storm: %v", tn.name, err)
		}
		if vs := tn.sched.AuditInvariants(); len(vs) != 0 {
			t.Errorf("tenant %s: %d invariant violations after storm: %v", tn.name, len(vs), vs[0])
		}
		tn.mu.Unlock()
	}
}
