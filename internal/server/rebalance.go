package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"aladdin/internal/core"
	"aladdin/internal/obs"
	"aladdin/internal/rebalance"
)

// This file is the HTTP face of continuous rescheduling: the one-shot
// POST /consolidate and POST /rebalance endpoints, the background
// loop's start/stop lifecycle, and the locking adapter that lets a
// rebalance.Rebalancer drive a tenant's session safely.

// rebalanceTarget adapts a Tenant to rebalance.Target: every call
// takes the tenant session lock exactly as the equivalent handler
// would, so a background cycle and an HTTP mutation never interleave
// inside the scheduler core.
type rebalanceTarget struct{ t *Tenant }

func (rt rebalanceTarget) PackingStats() core.PackingStats {
	rt.t.mu.RLock()
	defer rt.t.mu.RUnlock()
	return rt.t.sched.PackingStats()
}

func (rt rebalanceTarget) ConsolidateN(budget int) (core.ConsolidateResult, error) {
	rt.t.mu.Lock()
	defer rt.t.unlockAfterWrite()
	return rt.t.sched.ConsolidateN(budget)
}

func (rt rebalanceTarget) RetryStranded(budget int) (*core.RetryResult, error) {
	rt.t.mu.Lock()
	defer rt.t.unlockAfterWrite()
	return rt.t.sched.RetryStranded(budget)
}

// The audits mutate lazily-built caches (sorted container IDs), so
// they need the exclusive lock even though they only diagnose —
// exactly like handleHealth.
func (rt rebalanceTarget) AuditInvariants() []core.AuditViolation {
	rt.t.mu.Lock()
	defer rt.t.mu.Unlock()
	return rt.t.sched.AuditInvariants()
}

func (rt rebalanceTarget) FlowConservation() error {
	rt.t.mu.Lock()
	defer rt.t.mu.Unlock()
	return rt.t.sched.FlowConservation()
}

// rebalancer lazily builds the tenant's Rebalancer.  The instance is
// created once and reconfigured by Start calls; cycles serialize
// inside it, so one-shot POST /rebalance sweeps and the background
// loop never interleave their moves.
func (t *Tenant) rebalancer(reg *obs.Registry) *rebalance.Rebalancer {
	t.rbMu.Lock()
	defer t.rbMu.Unlock()
	if t.rb == nil {
		cfg := rebalance.Config{Audit: true}
		if reg != nil {
			cfg.Metrics = reg
			cfg.MetricLabels = obs.Labels{"tenant": t.name}
		}
		t.rb = rebalance.New(rebalanceTarget{t}, cfg)
	}
	return t.rb
}

// stopRebalancer halts the tenant's background loop if one runs.
// Never call it under t.mu: Stop waits for an in-flight cycle, and
// the cycle needs t.mu to finish.
func (t *Tenant) stopRebalancer() {
	t.rbMu.Lock()
	rb := t.rb
	t.rbMu.Unlock()
	if rb != nil {
		rb.Stop()
	}
}

// StartRebalancer launches a tenant's background rebalancing loop
// with the given cycle interval and per-cycle move budget (0 =
// unlimited).  It errors on an unknown tenant, a non-positive
// interval, or a loop that is already running.
func (s *Server) StartRebalancer(tenant string, interval time.Duration, budget int) error {
	t := s.lookupTenant(tenant)
	if t == nil {
		return fmt.Errorf("unknown tenant %q", tenant)
	}
	if interval <= 0 {
		return fmt.Errorf("rebalance interval must be positive")
	}
	t.rebalancer(s.reg) // ensure the instance exists
	t.rbMu.Lock()
	defer t.rbMu.Unlock()
	if t.rb.Running() {
		return fmt.Errorf("tenant %q rebalancer already running", tenant)
	}
	if err := t.rb.SetSchedule(interval, budget); err != nil {
		return err
	}
	return t.rb.Start()
}

// budgetRequest is the JSON body of /consolidate and /rebalance; an
// empty body means unlimited budget.
type budgetRequest struct {
	// Budget caps container moves for this call; 0 = unlimited.
	Budget int `json:"budget,omitempty"`
}

// decodeBudget parses an optional budget body; a missing body is the
// zero request.
func decodeBudget(r *http.Request) (budgetRequest, error) {
	var req budgetRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil && !errors.Is(err, io.EOF) {
		return req, err
	}
	if req.Budget < 0 {
		return req, fmt.Errorf("budget must be non-negative")
	}
	return req, nil
}

// schedulerErrorStatus maps a scheduler error for the response: state
// corruption is a 500 — the session can no longer be trusted and the
// operator must restore from a checkpoint — anything else a 409.
func schedulerErrorStatus(err error) int {
	if rebalance.IsCorruption(err) {
		return http.StatusInternalServerError
	}
	return http.StatusConflict
}

// handleConsolidate runs one budgeted consolidation pass — the direct
// path to Session.ConsolidateN, for operators who want machine
// draining without the rebalancer's triggers.
func (s *Server) handleConsolidate(w http.ResponseWriter, r *http.Request, t *Tenant) {
	req, err := decodeBudget(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	t.mu.Lock()
	res, err := t.sched.ConsolidateN(req.Budget)
	t.unlockAfterWrite()
	if err != nil {
		http.Error(w, err.Error(), schedulerErrorStatus(err))
		return
	}
	writeJSON(w, res)
}

// handleRebalance runs one full rebalancing cycle (stranded retry,
// triggered consolidation, audit) and returns its CycleResult.
func (s *Server) handleRebalance(w http.ResponseWriter, r *http.Request, t *Tenant) {
	req, err := decodeBudget(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	res := t.rebalancer(s.reg).RunCycleBudget(req.Budget)
	if res.Err != nil {
		http.Error(w, res.Err.Error(), schedulerErrorStatus(res.Err))
		return
	}
	writeJSON(w, res)
}

// rebalanceStartRequest is the JSON body of /rebalance/start.
type rebalanceStartRequest struct {
	// IntervalMS is the background cycle period in milliseconds.
	IntervalMS int `json:"interval_ms"`
	// Budget caps moves per cycle; 0 = unlimited.
	Budget int `json:"budget,omitempty"`
}

// handleRebalanceStart launches the tenant's background loop.
func (s *Server) handleRebalanceStart(w http.ResponseWriter, r *http.Request, t *Tenant) {
	var req rebalanceStartRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if req.IntervalMS <= 0 || req.Budget < 0 {
		http.Error(w, "interval_ms must be positive and budget non-negative", http.StatusBadRequest)
		return
	}
	err := s.StartRebalancer(t.name, time.Duration(req.IntervalMS)*time.Millisecond, req.Budget)
	if err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "started")
}

// handleRebalanceStop halts the tenant's background loop; stopping a
// loop that isn't running is a no-op, so the endpoint is idempotent.
func (s *Server) handleRebalanceStop(w http.ResponseWriter, _ *http.Request, t *Tenant) {
	t.stopRebalancer()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "stopped")
}
