package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"

	"aladdin/internal/constraint"
	"aladdin/internal/core"
	"aladdin/internal/obs"
	"aladdin/internal/rebalance"
	"aladdin/internal/sched"
	"aladdin/internal/topology"
	"aladdin/internal/trace"
	"aladdin/internal/workload"
)

// Sched is the scheduling surface a tenant needs from its session.
// Both core.Session (single-threaded, guarded by the tenant lock) and
// core.ShardedSession (internally synchronized) satisfy it, so a
// tenant can opt into the sharded core at creation.
type Sched interface {
	Place(batch []*workload.Container) (*sched.Result, error)
	Remove(containerID string) error
	FailMachine(id topology.MachineID) (*core.FailureResult, error)
	RecoverMachine(id topology.MachineID) (*core.RecoverResult, error)
	Assignment() constraint.Assignment
	Placed(containerID string) bool
	Audit() []constraint.Violation
	FlowConservation() error
	AuditInvariants() []core.AuditViolation
	// Continuous-rescheduling surface (the rebalance.Target methods,
	// plus the consolidate endpoint's direct path).
	PackingStats() core.PackingStats
	ConsolidateN(budget int) (core.ConsolidateResult, error)
	RetryStranded(budget int) (*core.RetryResult, error)
}

// DefaultTenant is the name of the tenant New builds from its session
// argument.  The un-prefixed routes (/place, /assignments, …) serve
// it, so a single-tenant deployment never needs to spell a tenant
// name.
const DefaultTenant = "default"

// tenantMetrics bundles the server-layer per-tenant instrument
// handles, each a labeled series (tenant="<name>") in the shared
// registry.  All handles are nil-safe: with no registry attached
// every record call is a no-op.
type tenantMetrics struct {
	requests   *obs.Counter   // place requests received
	batches    *obs.Counter   // solver batches submitted (flushes + direct calls)
	rejected   *obs.Counter   // 429s issued by admission control
	inflight   *obs.Gauge     // requests queued or being placed right now
	queueDepth *obs.Gauge     // requests waiting in the coalescing queue
	batchSize  *obs.Histogram // containers per solver batch
}

// batchSizeBuckets is the bucket ladder for coalesced batch sizes.
var batchSizeBuckets = []int64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512}

// newTenantMetrics registers one tenant's labeled families.
func newTenantMetrics(reg *obs.Registry, name string) tenantMetrics {
	if reg == nil {
		return tenantMetrics{}
	}
	lbl := obs.Labels{"tenant": name}
	return tenantMetrics{
		requests:   reg.LabeledCounter("aladdin_tenant_place_requests_total", "POST /place requests received, per tenant", lbl),
		batches:    reg.LabeledCounter("aladdin_tenant_place_batches_total", "solver batches submitted (coalesced flushes and direct calls), per tenant", lbl),
		rejected:   reg.LabeledCounter("aladdin_tenant_rejected_total", "place requests rejected with 429 by admission control, per tenant", lbl),
		inflight:   reg.LabeledGauge("aladdin_tenant_inflight_requests", "place requests currently queued or being placed, per tenant", lbl),
		queueDepth: reg.LabeledGauge("aladdin_tenant_queue_depth", "place requests waiting in the coalescing queue, per tenant", lbl),
		batchSize:  reg.LabeledHistogram("aladdin_tenant_batch_size", "containers per solver batch after coalescing, per tenant", batchSizeBuckets, lbl),
	}
}

// Tenant is one named scheduling session: its own workload universe,
// cluster, session (plain or sharded), checkpoint path, coalescing
// batcher, and labeled metrics.  Handlers for /t/{tenant}/... resolve
// a Tenant and operate on it alone, so tenants never contend on each
// other's locks.
type Tenant struct {
	name string

	// mu is the session lock, the per-tenant successor of the old
	// server-wide handler lock: mutating handlers take it exclusively
	// (a plain core.Session is single-threaded by design; for sharded
	// sessions it additionally serializes the cached view rebuild in
	// unlockAfterWrite), read-only handlers share it.  The core's own
	// locks (placeMu and below) nest strictly inside it; the analyzer
	// sees only intra-package nesting, so the server-layer levels
	// (40/42/44) order the registry, batcher and tenant locks among
	// themselves.
	//
	//aladdin:lock-level 44 per-tenant session lock; innermost server-layer lock, never held while acquiring the registry or batcher locks
	mu    sync.RWMutex
	sched Sched
	// plain is the concrete session when the tenant is unsharded;
	// checkpoint capture and restore need it (snapshots replay
	// through a single flow network).  Nil for sharded tenants.
	plain    *core.Session
	w        *workload.Workload
	cluster  *topology.Cluster
	byID     map[string]*workload.Container
	ckptPath string
	shards   int

	bat *batcher
	met tenantMetrics

	// rbMu guards the tenant's rebalancer lifecycle (lazy creation,
	// start/stop).  It is held while acquiring t.mu only transitively —
	// a cycle started under it takes t.mu through the target adapter —
	// never the other way around, and Tenant.stopRebalancer must never
	// run under t.mu: Stop waits for an in-flight cycle that needs t.mu
	// to finish.
	//
	//aladdin:lock-level 43 per-tenant rebalancer lifecycle lock; may be held while a cycle acquires the tenant session lock (44), never acquired under it
	rbMu sync.Mutex
	rb   *rebalance.Rebalancer
}

// newTenant wraps an existing session as a tenant and materializes
// its lazy read views so shared-lock readers never write them.
func newTenant(name string, sch Sched, plain *core.Session, w *workload.Workload, cluster *topology.Cluster, ckptPath string, shards int, reg *obs.Registry) *Tenant {
	t := &Tenant{
		name:     name,
		sched:    sch,
		plain:    plain,
		w:        w,
		cluster:  cluster,
		byID:     make(map[string]*workload.Container, w.NumContainers()),
		ckptPath: ckptPath,
		shards:   shards,
		met:      newTenantMetrics(reg, name),
	}
	for _, c := range w.Containers() {
		t.byID[c.ID] = c
	}
	t.sched.Assignment()
	return t
}

// refreshViews re-materializes the session's lazily-built assignment
// view.  Mutating paths call it before releasing the tenant lock;
// without it two concurrent readers would race to rebuild the map.
func (t *Tenant) refreshViews() {
	t.sched.Assignment()
}

// unlockAfterWrite releases the write lock after refreshing views —
// the tenant-scoped version of the old server-wide helper.
func (t *Tenant) unlockAfterWrite() {
	t.refreshViews()
	t.mu.Unlock()
}

// Name returns the tenant's name.
func (t *Tenant) Name() string { return t.name } //aladdin:lock-ok name is immutable after construction

// TenantSpec describes a tenant to create, the JSON body of
// POST /tenants.  The zero knobs inherit from the default tenant:
// its workload universe (Factor 0), its cluster size (Machines 0),
// and the unsharded core (Shards ≤ 1).
type TenantSpec struct {
	Name string `json:"name"`
	// Machines sizes the tenant's private cluster (paper evaluation
	// shape); 0 copies the default tenant's cluster size.
	Machines int `json:"machines,omitempty"`
	// Factor, when positive, generates a private synthetic workload
	// universe at this trace scale divisor; 0 shares the default
	// tenant's universe (each tenant still schedules onto its own
	// cluster, so shared universes never contend).
	Factor int   `json:"factor,omitempty"`
	Seed   int64 `json:"seed,omitempty"`
	// Shards, when > 1, backs the tenant with the sharded core
	// (checkpoint/restore are unsupported there).
	Shards int `json:"shards,omitempty"`
	// CheckpointPath is the tenant's default snapshot destination.
	CheckpointPath string `json:"checkpoint_path,omitempty"`
}

// validTenantName gates names usable in paths and metric labels.
func validTenantName(name string) error {
	if name == "" || len(name) > 64 {
		return fmt.Errorf("tenant name must be 1–64 characters")
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
		default:
			return fmt.Errorf("tenant name %q: only letters, digits, '-', '_', '.'", name)
		}
	}
	return nil
}

// CreateTenant builds and registers a tenant.  The expensive parts
// (workload generation, session construction) run outside the
// registry lock so scrapes and placements on other tenants never
// stall behind a creation.
func (s *Server) CreateTenant(spec TenantSpec) (*Tenant, error) {
	if err := validTenantName(spec.Name); err != nil {
		return nil, err
	}
	s.mu.RLock()
	_, exists := s.tenants[spec.Name]
	def := s.def
	s.mu.RUnlock()
	if exists {
		return nil, fmt.Errorf("tenant %q already exists", spec.Name)
	}
	defSize := def.cluster.Size()

	w := def.w
	if spec.Factor > 0 {
		seed := spec.Seed
		if seed == 0 {
			seed = 42
		}
		var err error
		w, err = trace.Generate(trace.Scaled(seed, spec.Factor))
		if err != nil {
			return nil, fmt.Errorf("tenant %q workload: %w", spec.Name, err)
		}
	}
	machines := spec.Machines
	if machines <= 0 {
		machines = defSize
	}
	cluster := topology.New(topology.AlibabaConfig(machines))

	opts := s.baseOpts
	opts.Metrics = s.reg
	opts.MetricLabels = obs.Labels{"tenant": spec.Name}
	opts.Shards = spec.Shards

	var (
		sch   Sched
		plain *core.Session
	)
	if spec.Shards > 1 {
		ss, err := core.NewSharded(opts, w, cluster)
		if err != nil {
			return nil, fmt.Errorf("tenant %q sharded core: %w", spec.Name, err)
		}
		sch = ss
	} else {
		plain = core.NewSession(opts, w, cluster)
		sch = plain
	}
	t := newTenant(spec.Name, sch, plain, w, cluster, spec.CheckpointPath, spec.Shards, s.reg)
	if s.coalesce.enabled() {
		t.bat = newBatcher(t, s.coalesce)
	}

	s.mu.Lock()
	_, raced := s.tenants[spec.Name]
	if !raced {
		s.tenants[spec.Name] = t
	}
	s.mu.Unlock()
	if raced {
		if t.bat != nil {
			t.bat.close()
		}
		return nil, fmt.Errorf("tenant %q already exists", spec.Name)
	}
	return t, nil
}

// DeleteTenant unregisters a tenant and drains its batcher so every
// queued request still gets a response.  The default tenant is
// undeletable — the un-prefixed routes depend on it.
func (s *Server) DeleteTenant(name string) error {
	if name == DefaultTenant {
		return fmt.Errorf("the default tenant cannot be deleted")
	}
	s.mu.Lock()
	t, ok := s.tenants[name]
	if ok {
		delete(s.tenants, name)
	}
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("unknown tenant %q", name)
	}
	if t.bat != nil {
		t.bat.close()
	}
	t.stopRebalancer()
	return nil
}

// lookupTenant resolves a tenant by name; nil when unknown.
func (s *Server) lookupTenant(name string) *Tenant {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.tenants[name]
}

// tenantsSorted snapshots the registry in name order with the default
// tenant first — the stable iteration every rendering path uses.
func (s *Server) tenantsSorted() []*Tenant {
	s.mu.RLock()
	out := make([]*Tenant, 0, len(s.tenants))
	for _, t := range s.tenants {
		out = append(out, t)
	}
	s.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		if (out[i].name == DefaultTenant) != (out[j].name == DefaultTenant) {
			return out[i].name == DefaultTenant
		}
		return out[i].name < out[j].name
	})
	return out
}

// tenantInfo is the JSON row of GET /tenants.
type tenantInfo struct {
	Name           string `json:"name"`
	Machines       int    `json:"machines"`
	MachinesDown   int    `json:"machines_down"`
	Containers     int    `json:"containers"`
	Placed         int    `json:"placed"`
	QueueDepth     int    `json:"queue_depth"`
	Coalescing     bool   `json:"coalescing"`
	Shards         int    `json:"shards,omitempty"`
	CheckpointPath string `json:"checkpoint_path,omitempty"`
}

// info reads one tenant's summary under its read lock.  The queue
// depth is read first: queueLen takes the batcher lock (level 42),
// which must not be acquired under t.mu (level 44).
func (t *Tenant) info() tenantInfo {
	depth := 0
	if t.bat != nil {
		depth = t.bat.queueLen()
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	return tenantInfo{
		Name:           t.name,
		Machines:       t.cluster.Size(),
		MachinesDown:   t.cluster.DownMachines(),
		Containers:     t.w.NumContainers(),
		Placed:         len(t.sched.Assignment()),
		QueueDepth:     depth,
		Coalescing:     t.bat != nil,
		Shards:         t.shards,
		CheckpointPath: t.ckptPath,
	}
}

// handleTenantsList renders GET /tenants.
func (s *Server) handleTenantsList(w http.ResponseWriter, _ *http.Request) {
	tenants := s.tenantsSorted()
	out := make([]tenantInfo, 0, len(tenants))
	for _, t := range tenants {
		out = append(out, t.info())
	}
	writeJSON(w, out)
}

// handleTenantCreate serves POST /tenants.
func (s *Server) handleTenantCreate(w http.ResponseWriter, r *http.Request) {
	var spec TenantSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	t, err := s.CreateTenant(spec)
	if err != nil {
		status := http.StatusBadRequest
		if strings.Contains(err.Error(), "already exists") {
			status = http.StatusConflict
		}
		http.Error(w, err.Error(), status)
		return
	}
	writeJSONStatus(w, http.StatusCreated, t.info())
}

// handleTenantDelete serves DELETE /tenants/{tenant}.
func (s *Server) handleTenantDelete(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("tenant")
	if err := s.DeleteTenant(name); err != nil {
		status := http.StatusBadRequest
		if strings.Contains(err.Error(), "unknown tenant") {
			status = http.StatusNotFound
		}
		http.Error(w, err.Error(), status)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "deleted")
}
