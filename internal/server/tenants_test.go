package server

import (
	"encoding/json"
	"net/http"
	"testing"
)

// TestTenantLifecycle walks the registry CRUD surface: the default
// tenant pre-exists, created tenants appear on their /t/{name}/
// routes with isolated state, and deletion tears them down.
func TestTenantLifecycle(t *testing.T) {
	s, _ := testServer(t)

	rec := do(t, s, http.MethodGet, "/tenants", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("list = %d: %s", rec.Code, rec.Body)
	}
	var infos []tenantInfo
	if err := json.Unmarshal(rec.Body.Bytes(), &infos); err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].Name != DefaultTenant {
		t.Fatalf("initial tenants = %+v, want just the default", infos)
	}

	rec = do(t, s, http.MethodPost, "/tenants", `{"name":"blue","machines":4}`)
	if rec.Code != http.StatusCreated {
		t.Fatalf("create = %d: %s", rec.Code, rec.Body)
	}
	var info tenantInfo
	if err := json.Unmarshal(rec.Body.Bytes(), &info); err != nil {
		t.Fatal(err)
	}
	if info.Name != "blue" || info.Machines != 4 {
		t.Fatalf("created tenant = %+v", info)
	}
	// The spec shared the default workload universe, so the container
	// population matches the default tenant's.
	if info.Containers != infos[0].Containers {
		t.Fatalf("blue universe = %d containers, want %d (shared)", info.Containers, infos[0].Containers)
	}

	if rec := do(t, s, http.MethodPost, "/tenants", `{"name":"blue"}`); rec.Code != http.StatusConflict {
		t.Fatalf("duplicate create = %d, want 409", rec.Code)
	}
	if rec := do(t, s, http.MethodPost, "/tenants", `{"name":"bad/name"}`); rec.Code != http.StatusBadRequest {
		t.Fatalf("invalid name = %d, want 400", rec.Code)
	}
	if rec := do(t, s, http.MethodGet, "/t/nope/healthz", ""); rec.Code != http.StatusNotFound {
		t.Fatalf("unknown tenant route = %d, want 404", rec.Code)
	}

	// Isolation: a placement on blue never shows up on the default
	// tenant even though the container IDs coincide.
	if rec := do(t, s, http.MethodPost, "/t/blue/place", `{"containers":["web/0"]}`); rec.Code != http.StatusOK {
		t.Fatalf("blue place = %d: %s", rec.Code, rec.Body)
	}
	var blueAsg, defAsg []assignmentEntry
	if err := json.Unmarshal(do(t, s, http.MethodGet, "/t/blue/assignments", "").Body.Bytes(), &blueAsg); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(do(t, s, http.MethodGet, "/assignments", "").Body.Bytes(), &defAsg); err != nil {
		t.Fatal(err)
	}
	if len(blueAsg) != 1 || len(defAsg) != 0 {
		t.Fatalf("assignments: blue=%d default=%d, want 1 and 0", len(blueAsg), len(defAsg))
	}
	if rec := do(t, s, http.MethodGet, "/t/blue/healthz", ""); rec.Code != http.StatusOK {
		t.Fatalf("blue healthz = %d: %s", rec.Code, rec.Body)
	}

	// /debug/vars carries both tenants' cluster blocks.
	var vars varsResponse
	if err := json.Unmarshal(do(t, s, http.MethodGet, "/debug/vars", "").Body.Bytes(), &vars); err != nil {
		t.Fatal(err)
	}
	if vars.Tenants["blue"].ContainersPlaced != 1 || vars.Tenants[DefaultTenant].ContainersPlaced != 0 {
		t.Fatalf("vars tenants = %+v", vars.Tenants)
	}

	if rec := do(t, s, http.MethodDelete, "/tenants/blue", ""); rec.Code != http.StatusOK {
		t.Fatalf("delete = %d: %s", rec.Code, rec.Body)
	}
	if rec := do(t, s, http.MethodGet, "/t/blue/healthz", ""); rec.Code != http.StatusNotFound {
		t.Fatalf("deleted tenant route = %d, want 404", rec.Code)
	}
	if rec := do(t, s, http.MethodDelete, "/tenants/blue", ""); rec.Code != http.StatusNotFound {
		t.Fatalf("double delete = %d, want 404", rec.Code)
	}
	if rec := do(t, s, http.MethodDelete, "/tenants/"+DefaultTenant, ""); rec.Code != http.StatusBadRequest {
		t.Fatalf("delete default = %d, want 400", rec.Code)
	}
}

// TestTenantPrivateWorkload: Factor > 0 generates a private synthetic
// universe instead of sharing the default tenant's.
func TestTenantPrivateWorkload(t *testing.T) {
	s, w := testServer(t)
	rec := do(t, s, http.MethodPost, "/tenants", `{"name":"gen","machines":8,"factor":2000,"seed":7}`)
	if rec.Code != http.StatusCreated {
		t.Fatalf("create = %d: %s", rec.Code, rec.Body)
	}
	var info tenantInfo
	if err := json.Unmarshal(rec.Body.Bytes(), &info); err != nil {
		t.Fatal(err)
	}
	if info.Containers == 0 || info.Containers == w.NumContainers() {
		t.Fatalf("generated universe = %d containers, want a non-empty private one (default has %d)",
			info.Containers, w.NumContainers())
	}
	// The default tenant's container IDs don't exist there.
	if rec := do(t, s, http.MethodPost, "/t/gen/place", `{"containers":["web/0"]}`); rec.Code != http.StatusBadRequest {
		t.Fatalf("foreign id place = %d, want 400: %s", rec.Code, rec.Body)
	}
}

// TestTenantSharded: Shards > 1 backs the tenant with the sharded
// core; placement works, checkpoint and restore refuse.
func TestTenantSharded(t *testing.T) {
	s, _ := testServer(t)
	rec := do(t, s, http.MethodPost, "/tenants", `{"name":"wide","machines":4,"shards":2}`)
	if rec.Code != http.StatusCreated {
		t.Fatalf("create = %d: %s", rec.Code, rec.Body)
	}
	if rec := do(t, s, http.MethodPost, "/t/wide/place", `{"containers":["web/0","db/0"]}`); rec.Code != http.StatusOK {
		t.Fatalf("sharded place = %d: %s", rec.Code, rec.Body)
	}
	if rec := do(t, s, http.MethodPost, "/t/wide/checkpoint", ""); rec.Code != http.StatusConflict {
		t.Fatalf("sharded checkpoint = %d, want 409: %s", rec.Code, rec.Body)
	}
	if rec := do(t, s, http.MethodPost, "/t/wide/restore", `{"path":"nope.json"}`); rec.Code == http.StatusOK {
		t.Fatalf("sharded restore = %d, want failure", rec.Code)
	}
	if rec := do(t, s, http.MethodGet, "/t/wide/healthz", ""); rec.Code != http.StatusOK {
		t.Fatalf("sharded healthz = %d: %s", rec.Code, rec.Body)
	}
}
