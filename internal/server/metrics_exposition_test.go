package server

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"aladdin/internal/core"
	"aladdin/internal/obs"
	"aladdin/internal/resource"
	"aladdin/internal/topology"
	"aladdin/internal/workload"
)

var update = flag.Bool("update", false, "rewrite golden files")

// stepClock advances a fixed amount on every reading, so every
// duration the scheduler measures is an exact multiple of step and
// the /metrics histograms are byte-for-byte reproducible.
type stepClock struct {
	t    time.Time
	step time.Duration
}

func (c *stepClock) now() time.Time {
	c.t = c.t.Add(c.step)
	return c.t
}

// instrumentedServer builds the testServer topology with a metrics
// registry shared between the session and the HTTP layer, driven by a
// deterministic fake clock.
func instrumentedServer(t *testing.T) (*Server, *obs.Registry) {
	t.Helper()
	w := workload.MustNew([]*workload.App{
		{ID: "web", Demand: resource.Cores(4, 8192), Replicas: 3, AntiAffinitySelf: true},
		{ID: "db", Demand: resource.Cores(8, 16384), Replicas: 1, AntiAffinityApps: []string{"web"}},
	})
	cl := topology.New(topology.Config{
		Machines: 4, MachinesPerRack: 2, RacksPerCluster: 2,
		Capacity: resource.Cores(32, 64*1024),
	})
	opts := core.DefaultOptions()
	reg := obs.NewRegistry()
	opts.Metrics = reg
	clk := &stepClock{t: time.Unix(0, 0).UTC(), step: 100 * time.Microsecond}
	opts.Clock = clk.now
	sess := core.NewSession(opts, w, cl)
	return New(sess, w, cl, WithRegistry(reg)), reg
}

// promFamily is one metric family parsed back out of the exposition.
type promFamily struct {
	name    string
	help    bool
	typ     string
	samples []promSample
}

// promSample is a single sample line.  labels holds the full parsed
// label set (nil when the sample is unlabeled); le mirrors
// labels["le"] for histogram _bucket samples.
type promSample struct {
	name   string
	labels map[string]string
	le     string
	value  float64
}

// parseLabels splits a `k="v",k2="v2"` label body (braces already
// stripped) into a map, unescaping the three sequences the exposition
// format defines for label values: \\, \", \n.
func parseLabels(t *testing.T, lineNo int, body string) map[string]string {
	t.Helper()
	labels := make(map[string]string)
	for body != "" {
		eq := strings.IndexByte(body, '=')
		if eq <= 0 || eq+1 >= len(body) || body[eq+1] != '"' {
			t.Fatalf("line %d: malformed label body %q", lineNo, body)
		}
		key := body[:eq]
		var val strings.Builder
		i := eq + 2
		for {
			if i >= len(body) {
				t.Fatalf("line %d: unterminated label value in %q", lineNo, body)
			}
			ch := body[i]
			if ch == '"' {
				break
			}
			if ch == '\\' {
				if i+1 >= len(body) {
					t.Fatalf("line %d: dangling escape in %q", lineNo, body)
				}
				switch body[i+1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					t.Fatalf("line %d: unknown escape \\%c in %q", lineNo, body[i+1], body)
				}
				i += 2
				continue
			}
			val.WriteByte(ch)
			i++
		}
		if _, dup := labels[key]; dup {
			t.Fatalf("line %d: duplicate label %q", lineNo, key)
		}
		labels[key] = val.String()
		body = body[i+1:]
		if body != "" {
			if body[0] != ',' {
				t.Fatalf("line %d: expected ',' between labels, got %q", lineNo, body)
			}
			body = body[1:]
		}
	}
	return labels
}

// parseExposition is a miniature parser for the Prometheus text
// format (0.0.4), strict about the properties the scrape pipeline
// relies on: every family announces # HELP then # TYPE before its
// first sample, sample names belong to the announced family, and
// values parse as numbers.
func parseExposition(t *testing.T, body string) map[string]*promFamily {
	t.Helper()
	fams := make(map[string]*promFamily)
	var cur *promFamily
	for ln, line := range strings.Split(body, "\n") {
		lineNo := ln + 1
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			name, help, ok := strings.Cut(rest, " ")
			if !ok || help == "" {
				t.Fatalf("line %d: HELP without text: %q", lineNo, line)
			}
			if fams[name] != nil {
				t.Fatalf("line %d: duplicate family %q", lineNo, name)
			}
			cur = &promFamily{name: name, help: true}
			fams[name] = cur
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name, typ, ok := strings.Cut(rest, " ")
			if !ok {
				t.Fatalf("line %d: malformed TYPE: %q", lineNo, line)
			}
			if typ != "counter" && typ != "gauge" && typ != "histogram" {
				t.Fatalf("line %d: unknown type %q", lineNo, typ)
			}
			if cur == nil || cur.name != name || !cur.help {
				t.Fatalf("line %d: TYPE for %q not preceded by its HELP", lineNo, name)
			}
			cur.typ = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("line %d: unexpected comment %q", lineNo, line)
		}
		nameAndLabels, valueStr, ok := strings.Cut(line, " ")
		if !ok {
			t.Fatalf("line %d: malformed sample %q", lineNo, line)
		}
		value, err := strconv.ParseFloat(valueStr, 64)
		if err != nil {
			t.Fatalf("line %d: bad value %q: %v", lineNo, valueStr, err)
		}
		sample := promSample{name: nameAndLabels, value: value}
		if name, labels, ok := strings.Cut(nameAndLabels, "{"); ok {
			sample.name = name
			sample.labels = parseLabels(t, lineNo, strings.TrimSuffix(labels, "}"))
			sample.le = sample.labels["le"]
		}
		if cur == nil {
			t.Fatalf("line %d: sample %q before any family", lineNo, line)
		}
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(
			sample.name, "_bucket"), "_sum"), "_count")
		if sample.name != cur.name && base != cur.name {
			t.Fatalf("line %d: sample %q under family %q", lineNo, sample.name, cur.name)
		}
		if cur.typ == "" {
			t.Fatalf("line %d: sample %q before its TYPE line", lineNo, sample.name)
		}
		cur.samples = append(cur.samples, sample)
	}
	return fams
}

// checkHistogram asserts the cumulative-bucket invariants on a parsed
// histogram family: non-decreasing bucket counts, a final le="+Inf"
// bucket, and _count equal to the +Inf bucket.
func checkHistogram(t *testing.T, f *promFamily) {
	t.Helper()
	var prev float64
	var inf, count float64
	var sawInf, sawCount, sawSum bool
	for _, s := range f.samples {
		switch {
		case s.name == f.name+"_bucket":
			if s.value < prev {
				t.Errorf("%s: bucket le=%s count %v below previous %v", f.name, s.le, s.value, prev)
			}
			prev = s.value
			if s.le == "+Inf" {
				inf, sawInf = s.value, true
			}
		case s.name == f.name+"_sum":
			sawSum = true
		case s.name == f.name+"_count":
			count, sawCount = s.value, true
		}
	}
	if !sawInf || !sawCount || !sawSum {
		t.Fatalf("%s: incomplete histogram (inf=%v count=%v sum=%v)", f.name, sawInf, sawCount, sawSum)
	}
	if inf != count {
		t.Errorf("%s: le=+Inf bucket %v != count %v", f.name, inf, count)
	}
}

// TestMetricsGoldenExposition drives a fully deterministic session
// (seeded workload, fake clock) and compares the /metrics body
// byte-for-byte against testdata/metrics.golden.  Run with -update to
// regenerate after an intentional format change.
func TestMetricsGoldenExposition(t *testing.T) {
	s, _ := instrumentedServer(t)
	if rec := do(t, s, http.MethodPost, "/place",
		`{"containers":["web/0","web/1","web/2","db/0"]}`); rec.Code != http.StatusOK {
		t.Fatalf("place = %d: %s", rec.Code, rec.Body)
	}
	if rec := do(t, s, http.MethodPost, "/fail", `{"machine":0}`); rec.Code != http.StatusOK {
		t.Fatalf("fail = %d: %s", rec.Code, rec.Body)
	}
	if rec := do(t, s, http.MethodPost, "/recover", `{"machine":0}`); rec.Code != http.StatusOK {
		t.Fatalf("recover = %d: %s", rec.Code, rec.Body)
	}

	rec := do(t, s, http.MethodGet, "/metrics", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics = %d", rec.Code)
	}
	if ct := rec.Result().Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("Content-Type = %q, want exposition format 0.0.4", ct)
	}
	got := rec.Body.Bytes()

	golden := filepath.Join("testdata", "metrics.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with go test -run Golden -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("exposition drifted from golden file:\n%s", diffLines(string(want), string(got)))
	}

	// Parse the body back and check structural validity plus the
	// presence of every family the acceptance criteria name.
	fams := parseExposition(t, string(got))
	for _, name := range []string{
		"aladdin_place_batch_duration_us",
		"aladdin_search_duration_us",
	} {
		f := fams[name]
		if f == nil {
			t.Fatalf("exposition missing histogram %q", name)
		}
		if f.typ != "histogram" {
			t.Fatalf("%s type = %q", name, f.typ)
		}
		checkHistogram(t, f)
	}
	for _, name := range []string{
		"aladdin_il_cache_hits_total", "aladdin_il_cache_misses_total",
		"aladdin_preemptions_total", "aladdin_migrations_total",
		"aladdin_corruptions_total",
		"aladdin_machine_failures_total", "aladdin_machine_recoveries_total",
	} {
		f := fams[name]
		if f == nil {
			t.Fatalf("exposition missing counter %q", name)
		}
		if f.typ != "counter" {
			t.Errorf("%s type = %q, want counter", name, f.typ)
		}
	}
	for _, name := range []string{"aladdin_machines_up", "aladdin_machines_down"} {
		f := fams[name]
		if f == nil {
			t.Fatalf("exposition missing gauge %q", name)
		}
		if f.typ != "gauge" {
			t.Errorf("%s type = %q, want gauge", name, f.typ)
		}
		if len(f.samples) != 1 {
			t.Fatalf("%s emitted %d samples, want exactly 1 (registry/appendix dedup)", name, len(f.samples))
		}
	}
	// The failure round-trip left everything back up.
	if v := fams["aladdin_machines_up"].samples[0].value; v != 4 {
		t.Errorf("machines_up = %v, want 4", v)
	}
	if v := fams["aladdin_machines_down"].samples[0].value; v != 0 {
		t.Errorf("machines_down = %v, want 0", v)
	}
	if v := fams["aladdin_machine_failures_total"].samples[0].value; v != 1 {
		t.Errorf("failures_total = %v, want 1", v)
	}
	// Scrape-time appendix families coexist with the registry's.
	for _, name := range []string{
		"aladdin_machines_total", "aladdin_containers_placed",
		"aladdin_cpu_utilization_mean",
	} {
		if fams[name] == nil {
			t.Errorf("exposition missing scrape-time gauge %q", name)
		}
	}
	// Server-layer tenant families carry a tenant label on every
	// sample, default tenant included.
	for _, name := range []string{
		"aladdin_tenant_place_requests_total",
		"aladdin_tenant_place_batches_total",
		"aladdin_tenant_rejected_total",
	} {
		f := fams[name]
		if f == nil {
			t.Fatalf("exposition missing tenant counter %q", name)
		}
		if f.typ != "counter" {
			t.Errorf("%s type = %q, want counter", name, f.typ)
		}
		for _, smp := range f.samples {
			if smp.labels["tenant"] != "default" {
				t.Errorf("%s labels = %v, want tenant=default", name, smp.labels)
			}
		}
	}
	bs := fams["aladdin_tenant_batch_size"]
	if bs == nil {
		t.Fatal("exposition missing tenant histogram aladdin_tenant_batch_size")
	}
	checkHistogram(t, bs)
	for _, smp := range bs.samples {
		if smp.labels["tenant"] != "default" {
			t.Errorf("aladdin_tenant_batch_size labels = %v, want tenant=default", smp.labels)
		}
	}
	if v := fams["aladdin_tenant_place_requests_total"].samples[0].value; v != 1 {
		t.Errorf("tenant place requests = %v, want 1", v)
	}
}

// TestMetricsWithoutRegistryStillParses: the bare server (no registry
// attached) serves only scrape-time gauges — still valid exposition.
func TestMetricsWithoutRegistryStillParses(t *testing.T) {
	s, _ := testServer(t)
	do(t, s, http.MethodPost, "/place", `{"containers":["web/0","db/0"]}`)
	body := do(t, s, http.MethodGet, "/metrics", "").Body.String()
	fams := parseExposition(t, body)
	if f := fams["aladdin_machines_total"]; f == nil || f.typ != "gauge" || f.samples[0].value != 4 {
		t.Errorf("aladdin_machines_total = %+v", f)
	}
	if f := fams["aladdin_containers_placed"]; f == nil || f.samples[0].value != 2 {
		t.Errorf("aladdin_containers_placed = %+v", f)
	}
	if fams["aladdin_place_batch_duration_us"] != nil {
		t.Error("uninstrumented server should not expose scheduler histograms")
	}
}

// TestHandlerContentTypes pins the Content-Type every handler commits
// with its status line.  httptest snapshots headers at first write,
// so a handler that sets the header after writing the body regresses
// this test even though a casual curl would still show the header.
func TestHandlerContentTypes(t *testing.T) {
	s, _ := instrumentedServer(t)
	do(t, s, http.MethodPost, "/place", `{"containers":["web/0","web/1","db/0"]}`)
	cases := []struct {
		method, path, body string
		wantCode           int
		wantCT             string
	}{
		{http.MethodGet, "/healthz", "", http.StatusOK, "text/plain; charset=utf-8"},
		{http.MethodGet, "/metrics", "", http.StatusOK, "text/plain; version=0.0.4; charset=utf-8"},
		{http.MethodGet, "/debug/vars", "", http.StatusOK, "application/json"},
		{http.MethodGet, "/assignments", "", http.StatusOK, "application/json"},
		{http.MethodGet, "/explain?container=db/0", "", http.StatusOK, "application/json"},
		{http.MethodPost, "/remove", `{"container":"web/1"}`, http.StatusOK, "text/plain; charset=utf-8"},
		{http.MethodPost, "/fail", `{"machine":2}`, http.StatusOK, "application/json"},
		{http.MethodPost, "/recover", `{"machine":2}`, http.StatusOK, "application/json"},
		{http.MethodPost, "/consolidate", `{}`, http.StatusOK, "application/json"},
		{http.MethodPost, "/rebalance", `{"budget":4}`, http.StatusOK, "application/json"},
		{http.MethodPost, "/rebalance/stop", "", http.StatusOK, "text/plain; charset=utf-8"},
	}
	for _, tc := range cases {
		rec := do(t, s, tc.method, tc.path, tc.body)
		res := rec.Result()
		if rec.Code != tc.wantCode {
			t.Errorf("%s %s = %d, want %d: %s", tc.method, tc.path, rec.Code, tc.wantCode, rec.Body)
			continue
		}
		if ct := res.Header.Get("Content-Type"); ct != tc.wantCT {
			t.Errorf("%s %s Content-Type = %q, want %q", tc.method, tc.path, ct, tc.wantCT)
		}
	}
}

// TestDebugVars decodes the JSON snapshot endpoint.
func TestDebugVars(t *testing.T) {
	s, _ := instrumentedServer(t)
	do(t, s, http.MethodPost, "/place", `{"containers":["web/0","web/1","web/2","db/0"]}`)
	rec := do(t, s, http.MethodGet, "/debug/vars", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/vars = %d", rec.Code)
	}
	var vars varsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &vars); err != nil {
		t.Fatal(err)
	}
	if got := vars.Metrics.Counters["aladdin_placements_total"]; got != 4 {
		t.Errorf("placements counter = %d, want 4", got)
	}
	if vars.Cluster.Machines != 4 || vars.Cluster.ContainersPlaced != 4 {
		t.Errorf("cluster vars = %+v", vars.Cluster)
	}
	if vars.Cluster.CPUMilli != 20000 {
		t.Errorf("cpu allocated = %d, want 20000", vars.Cluster.CPUMilli)
	}
	h, ok := vars.Metrics.Histograms["aladdin_place_batch_duration_us"]
	if !ok || h.Count != 1 {
		t.Errorf("batch histogram = %+v", h)
	}
}

// TestDebugVarsWithoutRegistry: the endpoint stays useful (cluster
// block) with no registry attached.
func TestDebugVarsWithoutRegistry(t *testing.T) {
	s, _ := testServer(t)
	do(t, s, http.MethodPost, "/place", `{"containers":["web/0"]}`)
	rec := do(t, s, http.MethodGet, "/debug/vars", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/vars = %d", rec.Code)
	}
	var vars varsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &vars); err != nil {
		t.Fatal(err)
	}
	if vars.Cluster.ContainersPlaced != 1 {
		t.Errorf("cluster vars = %+v", vars.Cluster)
	}
}

// TestPprofGatedByOption: profiling endpoints exist only with
// WithPprof.
func TestPprofGatedByOption(t *testing.T) {
	s, _ := testServer(t)
	if rec := do(t, s, http.MethodGet, "/debug/pprof/", ""); rec.Code != http.StatusNotFound {
		t.Errorf("pprof without option = %d, want 404", rec.Code)
	}

	w := workload.MustNew([]*workload.App{
		{ID: "web", Demand: resource.Cores(4, 8192), Replicas: 1},
	})
	cl := topology.New(topology.Config{
		Machines: 1, MachinesPerRack: 1, RacksPerCluster: 1,
		Capacity: resource.Cores(32, 64*1024),
	})
	sess := core.NewSession(core.DefaultOptions(), w, cl)
	sp := New(sess, w, cl, WithPprof())
	if rec := do(t, sp, http.MethodGet, "/debug/pprof/", ""); rec.Code != http.StatusOK {
		t.Errorf("pprof index = %d, want 200", rec.Code)
	}
	if rec := do(t, sp, http.MethodGet, "/debug/pprof/cmdline", ""); rec.Code != http.StatusOK {
		t.Errorf("pprof cmdline = %d, want 200", rec.Code)
	}
}

// diffLines renders a small line diff for golden mismatches.
func diffLines(want, got string) string {
	wl, gl := strings.Split(want, "\n"), strings.Split(got, "\n")
	var b strings.Builder
	for i := 0; i < len(wl) || i < len(gl); i++ {
		var w, g string
		if i < len(wl) {
			w = wl[i]
		}
		if i < len(gl) {
			g = gl[i]
		}
		if w != g {
			fmt.Fprintf(&b, "line %d:\n  want: %s\n  got:  %s\n", i+1, w, g)
		}
	}
	return b.String()
}
