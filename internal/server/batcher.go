package server

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"aladdin/internal/workload"
)

// CoalesceConfig tunes a tenant's request batcher.  The batcher turns
// the flood of small POST /place calls a production cluster substrate
// emits into the batch-sized Place calls the flow solver is fast at:
// requests enqueue, the flusher merges everything pending into one
// solver batch when either MaxBatch containers have accumulated or
// Window has elapsed since the first queued request, and each waiting
// request gets back exactly its own containers' outcomes.
type CoalesceConfig struct {
	// Window is the maximum time a queued request waits before a
	// partial batch flushes.  Zero disables coalescing entirely.
	Window time.Duration
	// MaxBatch is the pending-container count that triggers an
	// immediate flush without waiting out the window; 0 means the
	// default of 128.
	MaxBatch int
	// MaxQueue caps the number of queued requests; a request arriving
	// with the queue at capacity is rejected with 429 + Retry-After
	// instead of admitted (admission control keeps the queue, and
	// therefore worst-case latency, bounded).  0 means the default of
	// 256.
	MaxQueue int
}

// enabled reports whether the configuration turns coalescing on.
func (c CoalesceConfig) enabled() bool { return c.Window > 0 }

// withDefaults fills the zero knobs.
func (c CoalesceConfig) withDefaults() CoalesceConfig {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 128
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 256
	}
	return c
}

// retryAfterSeconds is the Retry-After hint on 429 responses: one
// flush window rounded up to whole seconds (the queue drains at least
// once per window), never less than a second.
func (c CoalesceConfig) retryAfterSeconds() int {
	s := int((c.Window + time.Second - 1) / time.Second)
	if s < 1 {
		s = 1
	}
	return s
}

// placeReply is the outcome fanned back to one queued request.
type placeReply struct {
	status int
	body   placeResponse
	// plain, when non-empty, is rendered via http.Error instead of a
	// JSON body (validation failures mirror the direct path's shape).
	plain string
}

// placeCall is one queued POST /place request: the container IDs it
// submitted and the channel its handler waits on.  done is buffered
// so a handler that gave up (client disconnect) never blocks the
// flusher.
type placeCall struct {
	ids  []string
	done chan placeReply
}

// Admission-control sentinels for batcher.enqueue.
var (
	errQueueFull = errors.New("placement queue at capacity")
	errDraining  = errors.New("server draining")
)

// batcher coalesces one tenant's place requests.  Lifecycle: created
// with the tenant, one flusher goroutine; close() stops admissions,
// flushes everything still queued so every in-flight request gets a
// response, and waits for the flusher to exit.
type batcher struct {
	t   *Tenant
	cfg CoalesceConfig

	// mu guards the queue only; it is never held across a solver
	// call.  The flusher swaps the queue out under mu and places the
	// merged batch under the tenant session lock afterwards, so the
	// declared order (batcher mu before tenant mu, never inverted)
	// holds trivially — the two are never held together.
	//
	//aladdin:lock-level 42 coalescing queue lock; taken after the registry lock, before the tenant session lock, never held across Place
	mu      sync.Mutex
	pending []*placeCall
	npend   int // containers queued across pending
	closed  bool

	kick chan struct{} // buffered 1: work arrived
	full chan struct{} // buffered 1: MaxBatch threshold crossed
	quit chan struct{} // closed by close()
	done chan struct{} // closed when the flusher exits
}

// newBatcher starts a tenant's flusher.
func newBatcher(t *Tenant, cfg CoalesceConfig) *batcher {
	b := &batcher{
		t:    t,
		cfg:  cfg.withDefaults(),
		kick: make(chan struct{}, 1),
		full: make(chan struct{}, 1),
		quit: make(chan struct{}),
		done: make(chan struct{}),
	}
	go b.loop()
	return b
}

// signal performs a non-blocking send on a buffered-1 channel:
// repeated signals coalesce, which is exactly the edge-trigger the
// flusher needs.
func signal(ch chan struct{}) {
	select {
	case ch <- struct{}{}:
	default:
	}
}

// enqueue admits one request into the queue, returning errQueueFull
// (→ 429 + Retry-After) when the queue is at capacity and errDraining
// (→ 503) after close.  Queue depth is measured in requests, so
// "capacity" is exactly MaxQueue concurrently-waiting clients.
func (b *batcher) enqueue(c *placeCall) error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return errDraining
	}
	if len(b.pending) >= b.cfg.MaxQueue {
		b.mu.Unlock()
		b.t.met.rejected.Inc()
		return errQueueFull
	}
	b.pending = append(b.pending, c)
	b.npend += len(c.ids)
	depth, fullNow := len(b.pending), b.npend >= b.cfg.MaxBatch
	b.mu.Unlock()

	b.t.met.queueDepth.Set(int64(depth))
	signal(b.kick)
	if fullNow {
		signal(b.full)
	}
	return nil
}

// queueLen reads the current queue depth in requests.
func (b *batcher) queueLen() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.pending)
}

// isFull reports whether the pending containers already meet the
// flush threshold.
func (b *batcher) isFull() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.npend >= b.cfg.MaxBatch
}

// loop is the flusher: wait for work, give the batch up to Window to
// fill (cut short when MaxBatch containers accumulate), flush, and
// repeat.  On quit it flushes whatever is queued so every admitted
// request gets a response — graceful drain, not a connection reset.
func (b *batcher) loop() {
	defer close(b.done)
	for {
		select {
		case <-b.kick:
		case <-b.quit:
			b.drain()
			return
		}
		if b.queueLen() == 0 {
			continue // stale kick: the work was taken by a previous flush
		}
		// Clear any stale fullness token from an earlier cycle, then
		// wait for the batch to fill or the window to expire.  An
		// enqueue crossing the threshold between the clear and the
		// wait re-signals, so the token can only be fresh here.  A
		// fresh timer per cycle sidesteps the Stop/drain races of a
		// reused one; this path flushes at most once per window, so
		// the allocation is noise.
		select {
		case <-b.full:
		default:
		}
		if !b.isFull() {
			timer := time.NewTimer(b.cfg.Window)
			select {
			case <-b.full:
				timer.Stop()
			case <-timer.C:
			case <-b.quit:
				timer.Stop()
				b.drain()
				return
			}
		}
		b.flushOnce()
	}
}

// drain flushes until the queue is empty.  closed is already set, so
// no new work can arrive behind the final flush.
func (b *batcher) drain() {
	for b.queueLen() > 0 {
		b.flushOnce()
	}
}

// flushOnce swaps the queue out and places it as one merged batch.
func (b *batcher) flushOnce() {
	b.mu.Lock()
	calls := b.pending
	b.pending = nil
	b.npend = 0
	b.mu.Unlock()
	b.t.met.queueDepth.Set(0)
	if len(calls) == 0 {
		return
	}
	b.t.placeCoalesced(calls)
}

// close stops admissions (subsequent enqueues return errDraining),
// flushes the queue, and waits for the flusher goroutine to exit.
// Idempotent-safe against double drain via the closed flag.
func (b *batcher) close() {
	b.mu.Lock()
	already := b.closed
	b.closed = true
	b.mu.Unlock()
	if already {
		<-b.done
		return
	}
	close(b.quit)
	<-b.done
}

// placeCoalesced merges queued calls into one solver batch under the
// tenant session lock and fans the per-container outcomes back to
// each caller.  Validation happens per call so one bad request (an
// unknown ID, a double submission) fails alone instead of poisoning
// the merged batch.  The merged batch is placed in workload-ordinal
// order: arrival order across concurrently-queued requests is
// nondeterministic, and the canonical order makes a coalesced flush
// byte-identical to one client submitting the same containers
// serially — the equivalence the oracle test pins.
func (t *Tenant) placeCoalesced(calls []*placeCall) {
	t.mu.Lock()
	queued := make(map[string]bool, len(calls))
	survivors := make([]*placeCall, 0, len(calls))
	merged := make([]*workload.Container, 0, len(calls))
	// done channels are buffered one reply deep, so sending under the
	// lock cannot block on a departed client.
	for _, c := range calls {
		rep, batch := t.validateCall(c, queued)
		if rep != nil {
			c.done <- *rep
			continue
		}
		survivors = append(survivors, c)
		merged = append(merged, batch...)
	}
	if len(merged) == 0 {
		t.mu.Unlock()
		// Nothing to place, but every surviving call (an empty
		// container list) still gets its answer — a dropped reply
		// parks the handler forever.
		for _, c := range survivors {
			c.done <- placeReply{status: 200}
		}
		return
	}
	sort.Slice(merged, func(i, j int) bool { return merged[i].Ord < merged[j].Ord })

	res, err := t.sched.Place(merged)
	t.met.batches.Inc()
	t.met.batchSize.Observe(int64(len(merged)))

	// Copy everything the replies need before the lock drops: the
	// Result and its slices are session scratch, valid only until the
	// next Place on this session.
	var (
		undeployed map[string]bool
		migrations int
		elapsedUS  int64
		errMsg     string
	)
	if res != nil {
		undeployed = make(map[string]bool, len(res.Undeployed))
		for _, id := range res.Undeployed {
			undeployed[id] = true
		}
		migrations = res.Migrations
		elapsedUS = res.Elapsed.Microseconds()
	}
	if err != nil {
		errMsg = err.Error()
	}
	t.refreshViews()
	t.mu.Unlock()

	for _, c := range survivors {
		rep := placeReply{status: 200}
		if err != nil && res == nil {
			// Validation failure inside the solver despite the per-call
			// pre-checks: internal, every caller learns it.
			c.done <- placeReply{status: 409, plain: errMsg}
			continue
		}
		var mine placeResponse
		for _, id := range c.ids {
			if undeployed[id] {
				mine.Undeployed = append(mine.Undeployed, id)
			} else {
				mine.Placed++
			}
		}
		mine.Migrations = migrations
		mine.ElapsedUS = elapsedUS
		mine.Coalesced = len(merged)
		mine.Error = errMsg
		if errMsg != "" {
			rep.status = 409
		}
		rep.body = mine
		c.done <- rep
	}
}

// validateCall pre-checks one queued request against the live session
// under the tenant lock, mirroring Session.Place's batch validation
// per call: unknown containers, duplicates within the request,
// containers already placed, and containers already claimed by an
// earlier request in the same flush each fail that request alone.
// Returns a non-nil reply on rejection, else the resolved containers.
func (t *Tenant) validateCall(c *placeCall, queued map[string]bool) (*placeReply, []*workload.Container) {
	batch := make([]*workload.Container, 0, len(c.ids))
	mine := make(map[string]bool, len(c.ids))
	for _, id := range c.ids {
		cont := t.byID[id]
		switch {
		case cont == nil:
			return &placeReply{status: 400, plain: fmt.Sprintf("unknown container %q", id)}, nil
		case mine[id]:
			return &placeReply{status: 409, plain: fmt.Sprintf("duplicate container %q in request", id)}, nil
		case t.sched.Placed(id):
			return &placeReply{status: 409, plain: fmt.Sprintf("container %q is already placed", id)}, nil
		case queued[id]:
			return &placeReply{status: 409, plain: fmt.Sprintf("container %q already submitted by a concurrent request", id)}, nil
		}
		mine[id] = true
		batch = append(batch, cont)
	}
	for id := range mine {
		queued[id] = true
	}
	return nil, batch
}
