package server

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"aladdin/internal/core"
	"aladdin/internal/resource"
	"aladdin/internal/topology"
	"aladdin/internal/workload"
)

func testServer(t *testing.T) (*Server, *workload.Workload) {
	t.Helper()
	w := workload.MustNew([]*workload.App{
		{ID: "web", Demand: resource.Cores(4, 8192), Replicas: 3, AntiAffinitySelf: true},
		{ID: "db", Demand: resource.Cores(8, 16384), Replicas: 1, AntiAffinityApps: []string{"web"}},
	})
	cl := topology.New(topology.Config{
		Machines: 4, MachinesPerRack: 2, RacksPerCluster: 2,
		Capacity: resource.Cores(32, 64*1024),
	})
	sess := core.NewSession(core.DefaultOptions(), w, cl)
	return New(sess, w, cl), w
}

func do(t *testing.T, s *Server, method, path string, body string) *httptest.ResponseRecorder {
	t.Helper()
	var rdr io.Reader
	if body != "" {
		rdr = strings.NewReader(body)
	}
	req := httptest.NewRequest(method, path, rdr)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec
}

func TestHealthz(t *testing.T) {
	s, _ := testServer(t)
	rec := do(t, s, http.MethodGet, "/healthz", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz = %d: %s", rec.Code, rec.Body)
	}
}

func TestPlaceAndAssignments(t *testing.T) {
	s, _ := testServer(t)
	rec := do(t, s, http.MethodPost, "/place",
		`{"containers":["web/0","web/1","web/2","db/0"]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("place = %d: %s", rec.Code, rec.Body)
	}
	var pr placeResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Placed != 4 || len(pr.Undeployed) != 0 {
		t.Fatalf("placeResponse = %+v", pr)
	}

	rec = do(t, s, http.MethodGet, "/assignments", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("assignments = %d", rec.Code)
	}
	var entries []assignmentEntry
	if err := json.Unmarshal(rec.Body.Bytes(), &entries); err != nil {
		t.Fatal(err)
	}
	if len(entries) != 4 {
		t.Fatalf("entries = %d", len(entries))
	}
	// Sorted by container and machine names resolved.
	if entries[0].Container != "db/0" || entries[0].MachineID == "" {
		t.Errorf("entry[0] = %+v", entries[0])
	}
}

func TestPlaceErrors(t *testing.T) {
	s, _ := testServer(t)
	if rec := do(t, s, http.MethodPost, "/place", `{"containers":["ghost/9"]}`); rec.Code != http.StatusBadRequest {
		t.Errorf("unknown container = %d", rec.Code)
	}
	if rec := do(t, s, http.MethodPost, "/place", `not json`); rec.Code != http.StatusBadRequest {
		t.Errorf("bad json = %d", rec.Code)
	}
	// Double placement conflicts.
	do(t, s, http.MethodPost, "/place", `{"containers":["web/0"]}`)
	if rec := do(t, s, http.MethodPost, "/place", `{"containers":["web/0"]}`); rec.Code != http.StatusConflict {
		t.Errorf("double place = %d", rec.Code)
	}
}

func TestRemove(t *testing.T) {
	s, _ := testServer(t)
	do(t, s, http.MethodPost, "/place", `{"containers":["web/0"]}`)
	if rec := do(t, s, http.MethodPost, "/remove", `{"container":"web/0"}`); rec.Code != http.StatusOK {
		t.Errorf("remove = %d: %s", rec.Code, rec.Body)
	}
	if rec := do(t, s, http.MethodPost, "/remove", `{"container":"web/0"}`); rec.Code != http.StatusConflict {
		t.Errorf("double remove = %d", rec.Code)
	}
	if rec := do(t, s, http.MethodPost, "/remove", `bad`); rec.Code != http.StatusBadRequest {
		t.Errorf("bad json = %d", rec.Code)
	}
}

func TestMetrics(t *testing.T) {
	s, _ := testServer(t)
	do(t, s, http.MethodPost, "/place", `{"containers":["web/0","db/0"]}`)
	rec := do(t, s, http.MethodGet, "/metrics", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics = %d", rec.Code)
	}
	body := rec.Body.String()
	for _, want := range []string{
		"aladdin_machines_total 4",
		"aladdin_containers_placed 2",
		"aladdin_cpu_milli_allocated 12000",
		"aladdin_cpu_utilization_mean",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q:\n%s", want, body)
		}
	}
}

func TestExplainEndpoint(t *testing.T) {
	s, _ := testServer(t)
	do(t, s, http.MethodPost, "/place", `{"containers":["web/0","web/1","web/2"]}`)
	rec := do(t, s, http.MethodGet, "/explain?container=db/0", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("explain = %d: %s", rec.Code, rec.Body)
	}
	var e core.Explanation
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil {
		t.Fatal(err)
	}
	// db conflicts with web on 3 of 4 machines; one stays free.
	if !e.Placeable() {
		t.Errorf("db should still be placeable: %+v", e)
	}
	if e.BlacklistRejected != 3 {
		t.Errorf("BlacklistRejected = %d, want 3", e.BlacklistRejected)
	}
	if rec := do(t, s, http.MethodGet, "/explain", ""); rec.Code != http.StatusBadRequest {
		t.Errorf("missing param = %d", rec.Code)
	}
	if rec := do(t, s, http.MethodGet, "/explain?container=ghost/0", ""); rec.Code != http.StatusNotFound {
		t.Errorf("unknown container = %d", rec.Code)
	}
}

func TestFailAndRecoverEndpoints(t *testing.T) {
	s, _ := testServer(t)
	do(t, s, http.MethodPost, "/place", `{"containers":["web/0","web/1","web/2","db/0"]}`)

	rec := do(t, s, http.MethodPost, "/fail", `{"machine":0}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("fail = %d: %s", rec.Code, rec.Body)
	}
	var fr failResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &fr); err != nil {
		t.Fatal(err)
	}
	if fr.Machine != 0 {
		t.Errorf("failResponse.Machine = %d", fr.Machine)
	}
	if fr.Evicted != fr.Replaced+len(fr.Stranded) {
		t.Errorf("fail ledger unbalanced: %+v", fr)
	}

	// The metrics and health surfaces reflect the failure.
	body := do(t, s, http.MethodGet, "/metrics", "").Body.String()
	if !strings.Contains(body, "aladdin_machines_down 1") {
		t.Errorf("metrics missing down gauge:\n%s", body)
	}
	if rec := do(t, s, http.MethodGet, "/healthz", ""); rec.Code != http.StatusOK {
		t.Errorf("healthz after failure = %d: %s", rec.Code, rec.Body)
	}

	// Error cases: double fail, unknown machine, bad body.
	if rec := do(t, s, http.MethodPost, "/fail", `{"machine":0}`); rec.Code != http.StatusConflict {
		t.Errorf("double fail = %d", rec.Code)
	}
	if rec := do(t, s, http.MethodPost, "/fail", `{"machine":99}`); rec.Code != http.StatusNotFound {
		t.Errorf("unknown machine = %d", rec.Code)
	}
	if rec := do(t, s, http.MethodPost, "/fail", `nope`); rec.Code != http.StatusBadRequest {
		t.Errorf("bad json = %d", rec.Code)
	}

	// Recover and verify the gauge resets.
	if rec := do(t, s, http.MethodPost, "/recover", `{"machine":0}`); rec.Code != http.StatusOK {
		t.Errorf("recover = %d: %s", rec.Code, rec.Body)
	}
	if rec := do(t, s, http.MethodPost, "/recover", `{"machine":0}`); rec.Code != http.StatusConflict {
		t.Errorf("double recover = %d", rec.Code)
	}
	if rec := do(t, s, http.MethodPost, "/recover", `{"machine":99}`); rec.Code != http.StatusNotFound {
		t.Errorf("recover unknown machine = %d", rec.Code)
	}
	body = do(t, s, http.MethodGet, "/metrics", "").Body.String()
	if !strings.Contains(body, "aladdin_machines_down 0") {
		t.Errorf("metrics down gauge should reset:\n%s", body)
	}
}

func TestPlacePartialResultSurfaced(t *testing.T) {
	// Regression: a mid-batch placement error used to answer a bare 409
	// with no body, hiding which containers were already live.  Force
	// the collision by allocating web/1's slot behind the session's
	// back on every machine.
	w := workload.MustNew([]*workload.App{
		{ID: "web", Demand: resource.Cores(4, 8192), Replicas: 2},
	})
	cl := topology.New(topology.Config{
		Machines: 1, MachinesPerRack: 1, RacksPerCluster: 1,
		Capacity: resource.Cores(32, 64*1024),
	})
	sess := core.NewSession(core.DefaultOptions(), w, cl)
	s := New(sess, w, cl)
	if err := cl.Machine(0).Allocate("web/1", resource.Cores(4, 8192)); err != nil {
		t.Fatal(err)
	}
	rec := do(t, s, http.MethodPost, "/place", `{"containers":["web/0","web/1"]}`)
	if rec.Code != http.StatusConflict {
		t.Fatalf("partial place = %d, want 409", rec.Code)
	}
	var pr placeResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &pr); err != nil {
		t.Fatalf("partial place response must be JSON, got %q: %v", rec.Body, err)
	}
	if pr.Error == "" {
		t.Error("partial place response missing error")
	}
	if pr.Placed != 1 || len(pr.Undeployed) != 1 {
		t.Errorf("partial place response = %+v, want 1 placed / 1 undeployed", pr)
	}
}

func TestWriteJSONEncodeErrorIsClean500(t *testing.T) {
	// Regression: writeJSON used to stream the encoder straight into
	// the ResponseWriter, so an encode error fired http.Error after the
	// 200 header was already committed — a superfluous WriteHeader and
	// a body mixing partial JSON with the error text.  Buffered
	// encoding must produce a clean 500 instead.
	rec := httptest.NewRecorder()
	writeJSON(rec, map[string]any{"bad": math.NaN()})
	if rec.Code != http.StatusInternalServerError {
		t.Errorf("encode error status = %d, want 500", rec.Code)
	}
	if strings.Contains(rec.Body.String(), "{") {
		t.Errorf("encode error body contains partial JSON: %q", rec.Body)
	}
}

func TestHealthzDetectsCorruption(t *testing.T) {
	// Manually violate the cluster behind the session's back: healthz
	// must notice via the audit.
	w := workload.MustNew([]*workload.App{
		{ID: "spread", Demand: resource.Cores(2, 2048), Replicas: 2, AntiAffinitySelf: true},
	})
	cl := topology.New(topology.Config{
		Machines: 2, MachinesPerRack: 2, RacksPerCluster: 1,
		Capacity: resource.Cores(32, 64*1024),
	})
	sess := core.NewSession(core.DefaultOptions(), w, cl)
	s := New(sess, w, cl)
	do(t, s, http.MethodPost, "/place", `{"containers":["spread/0","spread/1"]}`)

	// Forge a violating state by swapping the assignment map directly
	// (the map is shared by design).
	asg := sess.Assignment()
	asg["spread/1"] = asg["spread/0"]
	rec := do(t, s, http.MethodGet, "/healthz", "")
	if rec.Code != http.StatusInternalServerError {
		t.Errorf("healthz should fail on violation, got %d", rec.Code)
	}
	if !bytes.Contains(rec.Body.Bytes(), []byte("violation")) {
		t.Errorf("body = %s", rec.Body)
	}
}
