package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"aladdin/internal/constraint"
	"aladdin/internal/core"
	"aladdin/internal/resource"
	"aladdin/internal/topology"
	"aladdin/internal/workload"
)

// TestConcurrentHandlers hammers every mutating and reading endpoint
// from parallel goroutines.  The Session is single-threaded by design;
// the server's mutex is the only thing standing between concurrent
// HTTP clients and state corruption, so this test exists to fail under
// `go test -race` if any handler forgets to take it.
func TestConcurrentHandlers(t *testing.T) {
	w := workload.MustNew([]*workload.App{
		{ID: "a", Demand: resource.Cores(2, 2048), Replicas: 16},
		{ID: "b", Demand: resource.Cores(4, 4096), Replicas: 8, AntiAffinitySelf: true},
	})
	cl := topology.New(topology.Config{
		Machines: 16, MachinesPerRack: 4, RacksPerCluster: 4,
		Capacity: resource.Cores(32, 64*1024),
	})
	sess := core.NewSession(core.DefaultOptions(), w, cl)
	s := New(sess, w, cl)

	send := func(method, path, body string) {
		var rdr *strings.Reader
		if body != "" {
			rdr = strings.NewReader(body)
		} else {
			rdr = strings.NewReader("")
		}
		req := httptest.NewRequest(method, path, rdr)
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		// Contention outcomes (409 on double place/remove, overlapping
		// fails) are expected; data races and 500s are not.
		if rec.Code == http.StatusInternalServerError {
			t.Errorf("%s %s -> 500: %s", method, path, rec.Body)
		}
	}

	var wg sync.WaitGroup
	const rounds = 8
	for g := 0; g < 4; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				id := fmt.Sprintf("a/%d", g*4+i%4)
				send(http.MethodPost, "/place", fmt.Sprintf(`{"containers":[%q]}`, id))
				send(http.MethodGet, "/metrics", "")
				send(http.MethodPost, "/remove", fmt.Sprintf(`{"container":%q}`, id))
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			id := fmt.Sprintf("b/%d", i)
			send(http.MethodPost, "/place", fmt.Sprintf(`{"containers":[%q]}`, id))
			send(http.MethodGet, "/assignments", "")
			send(http.MethodGet, "/debug/vars", "")
			send(http.MethodGet, "/explain?container=b/0", "")
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			m := i % 16
			send(http.MethodPost, "/fail", fmt.Sprintf(`{"machine":%d}`, m))
			send(http.MethodGet, "/healthz", "")
			send(http.MethodPost, "/recover", fmt.Sprintf(`{"machine":%d}`, m))
		}
	}()
	wg.Wait()

	// After the dust settles the session must be internally coherent.
	if err := sess.FlowConservation(); err != nil {
		t.Errorf("flow conservation after concurrent load: %v", err)
	}
	if vs := sess.Audit(); len(vs) != 0 {
		t.Errorf("violations after concurrent load: %v", vs)
	}
}

// TestSlowExplainDoesNotSerializePlace is the regression for the
// single-mutex server: /explain used to hold the one lock for its
// whole diagnosis, so one slow explain stalled every placement queued
// behind it.  The handler now snapshots cluster and assignment under
// the shared read lock and diagnoses the snapshot unlocked, so this
// test parks an /explain inside the injected explain seam and proves
// a /place completes while it is still parked.
func TestSlowExplainDoesNotSerializePlace(t *testing.T) {
	w := workload.MustNew([]*workload.App{
		{ID: "a", Demand: resource.Cores(2, 2048), Replicas: 8},
	})
	cl := topology.New(topology.Config{
		Machines: 8, MachinesPerRack: 4, RacksPerCluster: 2,
		Capacity: resource.Cores(32, 64*1024),
	})
	sess := core.NewSession(core.DefaultOptions(), w, cl)
	s := New(sess, w, cl)

	entered := make(chan struct{})
	release := make(chan struct{})
	realExplain := s.explain
	s.explain = func(wl *workload.Workload, cluster *topology.Cluster, asg constraint.Assignment, id string) (*core.Explanation, error) {
		close(entered)
		<-release
		return realExplain(wl, cluster, asg, id)
	}

	explained := make(chan int, 1)
	go func() {
		req := httptest.NewRequest(http.MethodGet, "/explain?container=a/0", strings.NewReader(""))
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		explained <- rec.Code
	}()
	select {
	case <-entered:
	case <-time.After(10 * time.Second):
		t.Fatal("/explain never reached the explain seam")
	}

	// The explain handler is now parked holding no lock at all; a
	// placement must go through.
	placed := make(chan int, 1)
	go func() {
		req := httptest.NewRequest(http.MethodPost, "/place", strings.NewReader(`{"containers":["a/0"]}`))
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		placed <- rec.Code
	}()
	select {
	case code := <-placed:
		if code != http.StatusOK {
			t.Fatalf("/place during slow /explain -> %d", code)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("/place blocked behind a slow /explain")
	}

	close(release)
	if code := <-explained; code != http.StatusOK {
		t.Fatalf("slow /explain -> %d", code)
	}
}
