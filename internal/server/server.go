// Package server exposes a live scheduling Session over HTTP — the
// operational surface a production scheduler manager needs: health,
// metrics, the live assignment, per-container diagnosis, and batch
// submission.  It is the in-process analogue of the watching/binding
// APIs the paper's model adaptor delegates (§IV.C).
package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"sort"
	"sync"

	"aladdin/internal/checkpoint"
	"aladdin/internal/constraint"
	"aladdin/internal/core"
	"aladdin/internal/obs"
	"aladdin/internal/resource"
	"aladdin/internal/topology"
	"aladdin/internal/workload"
)

// Server wraps a Session with an http.Handler.  Mutating handlers
// (place/remove/fail/recover/restore) take mu exclusively — the
// Session itself is single-threaded by design (one scheduler manager
// per cluster) — while read-only handlers share it, so scrapes and
// assignment dumps no longer serialize placement.  Every mutating
// handler re-materializes the session's lazy read views before
// releasing the lock (unlockAfterWrite), which is what makes the
// shared-lock read paths pure reads.  /explain goes further: it
// copies the cluster and assignment under the read lock and runs the
// (potentially expensive) diagnosis on that private snapshot with no
// lock held at all.
type Server struct {
	//aladdin:lock-level 40 handler session lock; the wrapped Session is single-threaded and holds no locks of its own
	mu      sync.RWMutex
	session *core.Session
	w       *workload.Workload
	cluster *topology.Cluster
	byID    map[string]*workload.Container

	// reg is the metrics registry behind /metrics and /debug/vars.
	// Attach the same registry via core.Options.Metrics and the
	// scheduler's phase histograms and pipeline counters appear in the
	// exposition alongside the server's scrape-time cluster gauges.
	// Nil leaves only the scrape-time gauges.
	reg       *obs.Registry
	withPprof bool

	// ckptPath is the default destination for POST /checkpoint when
	// the request names none (WithCheckpointPath).
	ckptPath string

	// explain is the diagnosis seam, core.Explain in production; tests
	// inject failures to exercise the handler's internal-error path.
	explain func(w *workload.Workload, cluster *topology.Cluster, asg constraint.Assignment, containerID string) (*core.Explanation, error)

	mux *http.ServeMux
}

// Option customises a Server at construction.
type Option func(*Server)

// WithRegistry attaches a metrics registry: /metrics renders its
// families as Prometheus text exposition and /debug/vars serves its
// JSON snapshot.  Pass the registry also carried by the session's
// core.Options.Metrics to expose the scheduler's internals.
func WithRegistry(reg *obs.Registry) Option {
	return func(s *Server) { s.reg = reg }
}

// WithPprof mounts net/http/pprof under /debug/pprof/.  Off by
// default: profiling endpoints expose heap contents and must be
// opted into (cmd/aladdin-server gates it behind -pprof).
func WithPprof() Option {
	return func(s *Server) { s.withPprof = true }
}

// WithCheckpointPath sets the default snapshot file for
// POST /checkpoint requests that name no path of their own.
func WithCheckpointPath(path string) Option {
	return func(s *Server) { s.ckptPath = path }
}

// New builds a server over a session and the workload/cluster it
// manages.
func New(session *core.Session, w *workload.Workload, cluster *topology.Cluster, opts ...Option) *Server {
	s := &Server{
		session: session,
		w:       w,
		cluster: cluster,
		byID:    make(map[string]*workload.Container, w.NumContainers()),
		explain: core.Explain,
	}
	for _, c := range w.Containers() {
		s.byID[c.ID] = c
	}
	for _, opt := range opts {
		opt(s)
	}
	// Materialize the session's lazy read views up front so handlers
	// running under the shared read lock never write them.
	s.session.Assignment()
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /debug/vars", s.handleVars)
	s.mux.HandleFunc("GET /assignments", s.handleAssignments)
	s.mux.HandleFunc("GET /explain", s.handleExplain)
	s.mux.HandleFunc("POST /place", s.handlePlace)
	s.mux.HandleFunc("POST /remove", s.handleRemove)
	s.mux.HandleFunc("POST /fail", s.handleFail)
	s.mux.HandleFunc("POST /recover", s.handleRecover)
	s.mux.HandleFunc("POST /checkpoint", s.handleCheckpoint)
	s.mux.HandleFunc("POST /restore", s.handleRestore)
	if s.withPprof {
		s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// unlockAfterWrite releases the write lock after re-materializing the
// session's lazily-built assignment view.  Session.Place and friends
// invalidate that view; rebuilding it while still exclusive means
// handlers under the shared read lock only ever read it — without
// this, two concurrent readers would race to build the map.
func (s *Server) unlockAfterWrite() {
	s.session.Assignment()
	s.mu.Unlock()
}

// handleHealth holds the write lock even though it only diagnoses:
// the audit walks Machine.ContainerIDs, whose sorted-ID cache is
// rebuilt lazily, so running it under the shared read lock would race
// with other readers.
func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.session.FlowConservation(); err != nil {
		http.Error(w, fmt.Sprintf("flow conservation violated: %v", err), http.StatusInternalServerError)
		return
	}
	if vs := s.session.Audit(); len(vs) != 0 {
		http.Error(w, fmt.Sprintf("%d constraint violations live", len(vs)), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleMetrics renders Prometheus text exposition (format 0.0.4):
// the attached registry's families first — the scheduler's phase
// histograms and event counters when the session shares a registry —
// then scrape-time gauges derived from the live cluster state.  The
// scrape-time block skips any family the registry already owns, so a
// core-maintained gauge (aladdin_machines_down) is never emitted
// twice with conflicting values.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var buf bytes.Buffer
	s.reg.WritePrometheus(&buf) //aladdin:errcheck-ok bytes.Buffer writes cannot fail (nil registry: no-op)
	s.writeClusterMetrics(&buf)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write(buf.Bytes())
}

// writeClusterMetrics appends gauges recomputed from cluster ground
// truth at scrape time.  They need no registry plumbing and stay
// correct even when the scheduler runs uninstrumented.
func (s *Server) writeClusterMetrics(buf *bytes.Buffer) {
	used := s.cluster.UsedMachines()
	lo, mean, hi := s.cluster.UtilizationRange()
	totalUsed := s.cluster.TotalUsed()
	intGauge := func(name, help string, v int64) {
		if s.reg.Has(name) {
			return
		}
		fmt.Fprintf(buf, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	floatGauge := func(name, help string, v float64) {
		if s.reg.Has(name) {
			return
		}
		fmt.Fprintf(buf, "# HELP %s %s\n# TYPE %s gauge\n%s %.4f\n", name, help, name, name, v)
	}
	intGauge("aladdin_machines_total", "machines in the cluster topology", int64(s.cluster.Size()))
	intGauge("aladdin_machines_used", "machines hosting at least one container", int64(used))
	intGauge("aladdin_machines_down", "machines currently marked failed", int64(s.cluster.DownMachines()))
	intGauge("aladdin_containers_placed", "containers with a live assignment", int64(len(s.session.Assignment())))
	intGauge("aladdin_cpu_milli_allocated", "millicores allocated across the cluster", totalUsed.Dim(resource.CPU))
	intGauge("aladdin_mem_mb_allocated", "memory MB allocated across the cluster", totalUsed.Dim(resource.Memory))
	floatGauge("aladdin_cpu_utilization_min", "lowest per-machine CPU utilization among used machines", lo)
	floatGauge("aladdin_cpu_utilization_mean", "mean per-machine CPU utilization among used machines", mean)
	floatGauge("aladdin_cpu_utilization_max", "highest per-machine CPU utilization among used machines", hi)
}

// varsResponse is the JSON body of /debug/vars: the full registry
// snapshot plus the same cluster-derived summary /metrics appends.
type varsResponse struct {
	Metrics obs.Snapshot `json:"metrics"`
	Cluster clusterVars  `json:"cluster"`
}

type clusterVars struct {
	Machines         int     `json:"machines"`
	MachinesUsed     int     `json:"machines_used"`
	MachinesDown     int     `json:"machines_down"`
	ContainersPlaced int     `json:"containers_placed"`
	CPUMilli         int64   `json:"cpu_milli_allocated"`
	MemMB            int64   `json:"mem_mb_allocated"`
	UtilizationMin   float64 `json:"cpu_utilization_min"`
	UtilizationMean  float64 `json:"cpu_utilization_mean"`
	UtilizationMax   float64 `json:"cpu_utilization_max"`
}

func (s *Server) handleVars(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	lo, mean, hi := s.cluster.UtilizationRange()
	totalUsed := s.cluster.TotalUsed()
	writeJSON(w, varsResponse{
		Metrics: s.reg.Snapshot(),
		Cluster: clusterVars{
			Machines:         s.cluster.Size(),
			MachinesUsed:     s.cluster.UsedMachines(),
			MachinesDown:     s.cluster.DownMachines(),
			ContainersPlaced: len(s.session.Assignment()),
			CPUMilli:         totalUsed.Dim(resource.CPU),
			MemMB:            totalUsed.Dim(resource.Memory),
			UtilizationMin:   lo,
			UtilizationMean:  mean,
			UtilizationMax:   hi,
		},
	})
}

// assignmentEntry is the JSON row of /assignments.
type assignmentEntry struct {
	Container string             `json:"container"`
	Machine   topology.MachineID `json:"machine"`
	MachineID string             `json:"machine_name"`
	Rack      string             `json:"rack"`
}

func (s *Server) handleAssignments(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	asg := s.session.Assignment()
	out := make([]assignmentEntry, 0, len(asg))
	for id, m := range asg {
		machine := s.cluster.Machine(m)
		out = append(out, assignmentEntry{
			Container: id, Machine: m,
			MachineID: machine.Name, Rack: machine.Rack,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Container < out[j].Container })
	writeJSON(w, out)
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("container")
	if id == "" {
		http.Error(w, "missing ?container=", http.StatusBadRequest)
		return
	}
	// Capture a private snapshot under the shared read lock, then run
	// the diagnosis unlocked: Explain walks blocking containers per
	// machine, which is arbitrarily expensive on a loaded cluster, and
	// an RWMutex alone would still let one slow reader stall the next
	// writer (and every reader queued behind it).
	s.mu.RLock()
	specs := s.cluster.Specs()
	allocs := make([]map[string]resource.Vector, len(specs))
	for i, m := range s.cluster.Machines() {
		allocs[i] = m.Allocations()
	}
	live := s.session.Assignment()
	asg := make(constraint.Assignment, len(live))
	for cid, m := range live {
		asg[cid] = m
	}
	s.mu.RUnlock()
	shadow, err := snapshotCluster(specs, allocs)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	e, err := s.explain(s.w, shadow, asg, id)
	if err != nil {
		// Only "that container does not exist" is the caller's mistake;
		// anything else is an internal failure and must say so — a 404
		// here would send an operator hunting for a typo in a container
		// ID while the scheduler is broken.
		status := http.StatusInternalServerError
		if errors.Is(err, core.ErrUnknownContainer) {
			status = http.StatusNotFound
		}
		http.Error(w, err.Error(), status)
		return
	}
	writeJSON(w, e)
}

// snapshotCluster rebuilds a private cluster from specs and
// per-machine allocations captured under the read lock.  Machines are
// constructed up — Allocate rejects a down machine — so the captured
// allocations replay, then the originally-down machines are re-marked
// down.
func snapshotCluster(specs []topology.MachineSpec, allocs []map[string]resource.Vector) (*topology.Cluster, error) {
	up := make([]topology.MachineSpec, len(specs))
	copy(up, specs)
	for i := range up {
		up[i].Down = false
	}
	cl, err := topology.FromSpecs(up)
	if err != nil {
		return nil, err
	}
	for i, m := range cl.Machines() {
		for cid, v := range allocs[i] {
			if err := m.Allocate(cid, v); err != nil {
				return nil, err
			}
		}
	}
	for i, sp := range specs {
		if sp.Down {
			cl.Machine(topology.MachineID(i)).MarkDown()
		}
	}
	return cl, nil
}

// placeRequest is the JSON body of /place.
type placeRequest struct {
	Containers []string `json:"containers"`
}

// placeResponse summarises one batch.  Error is set when the batch
// hit an internal placement error mid-way: the other fields then
// describe the partial placement that is live on the cluster, so the
// caller can reconcile instead of guessing what a bare 409 left
// behind.
type placeResponse struct {
	Placed     int      `json:"placed"`
	Undeployed []string `json:"undeployed,omitempty"`
	Migrations int      `json:"migrations"`
	ElapsedUS  int64    `json:"elapsed_us"`
	Error      string   `json:"error,omitempty"`
}

func (s *Server) handlePlace(w http.ResponseWriter, r *http.Request) {
	var req placeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	defer s.unlockAfterWrite()
	batch := make([]*workload.Container, 0, len(req.Containers))
	for _, id := range req.Containers {
		c := s.byID[id]
		if c == nil {
			http.Error(w, fmt.Sprintf("unknown container %q", id), http.StatusBadRequest)
			return
		}
		batch = append(batch, c)
	}
	res, err := s.session.Place(batch)
	if err != nil {
		if res == nil {
			// Validation failure: nothing was placed.
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		writeJSONStatus(w, http.StatusConflict, placeResponse{
			Placed:     res.Deployed(),
			Undeployed: res.Undeployed,
			Migrations: res.Migrations,
			ElapsedUS:  res.Elapsed.Microseconds(),
			Error:      err.Error(),
		})
		return
	}
	writeJSON(w, placeResponse{
		Placed:     res.Deployed(),
		Undeployed: res.Undeployed,
		Migrations: res.Migrations,
		ElapsedUS:  res.Elapsed.Microseconds(),
	})
}

// removeRequest is the JSON body of /remove.
type removeRequest struct {
	Container string `json:"container"`
}

func (s *Server) handleRemove(w http.ResponseWriter, r *http.Request) {
	var req removeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	defer s.unlockAfterWrite()
	if err := s.session.Remove(req.Container); err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "removed")
}

// machineRequest is the JSON body of /fail and /recover.
type machineRequest struct {
	Machine topology.MachineID `json:"machine"`
}

// failResponse reports one failure event's outcome.
type failResponse struct {
	Machine     topology.MachineID `json:"machine"`
	Evicted     int                `json:"evicted"`
	Replaced    int                `json:"replaced"`
	Stranded    []string           `json:"stranded,omitempty"`
	Migrations  int                `json:"migrations"`
	Preemptions int                `json:"preemptions"`
	ElapsedUS   int64              `json:"elapsed_us"`
}

// handleFail is the admin endpoint for taking a machine out of
// service: residents are evicted and re-placed through the normal
// pipeline; the response reports who moved and who was stranded.
func (s *Server) handleFail(w http.ResponseWriter, r *http.Request) {
	var req machineRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	defer s.unlockAfterWrite()
	if s.cluster.Machine(req.Machine) == nil {
		http.Error(w, fmt.Sprintf("unknown machine %d", req.Machine), http.StatusNotFound)
		return
	}
	res, err := s.session.FailMachine(req.Machine)
	if err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	writeJSON(w, failResponse{
		Machine:     res.Machine,
		Evicted:     res.Evicted,
		Replaced:    res.Replaced,
		Stranded:    res.Stranded,
		Migrations:  res.Migrations,
		Preemptions: res.Preemptions,
		ElapsedUS:   res.Elapsed.Microseconds(),
	})
}

// handleRecover returns a failed machine to service.
func (s *Server) handleRecover(w http.ResponseWriter, r *http.Request) {
	var req machineRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	defer s.unlockAfterWrite()
	if s.cluster.Machine(req.Machine) == nil {
		http.Error(w, fmt.Sprintf("unknown machine %d", req.Machine), http.StatusNotFound)
		return
	}
	if err := s.session.RecoverMachine(req.Machine); err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "recovered")
}

// checkpointRequest is the JSON body of /checkpoint; an empty body is
// allowed.
type checkpointRequest struct {
	// Path overrides the server's configured checkpoint file.  With
	// neither, the snapshot itself is returned inline.
	Path string `json:"path,omitempty"`
}

// checkpointResponse summarises a snapshot written to disk.
type checkpointResponse struct {
	Path       string `json:"path"`
	Machines   int    `json:"machines"`
	Placements int    `json:"placements"`
	Undeployed int    `json:"undeployed"`
}

// handleCheckpoint captures the live session as a v2 snapshot.  With
// a destination path (request body or WithCheckpointPath) the
// snapshot is written crash-safely and a summary returned; without
// one the snapshot JSON itself is the response, so an operator can
// checkpoint a diskless server through curl alone.
func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	var req checkpointRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil && !errors.Is(err, io.EOF) {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	snap, err := checkpoint.CaptureSession(s.session)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	path := req.Path
	if path == "" {
		path = s.ckptPath
	}
	if path == "" {
		writeJSON(w, snap)
		return
	}
	if err := checkpoint.WriteFile(path, snap); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, checkpointResponse{
		Path:       path,
		Machines:   len(snap.Machines),
		Placements: len(snap.Placements),
		Undeployed: len(snap.Undeployed),
	})
}

// restoreRequest is the JSON body of /restore: a snapshot file path
// or the snapshot inline (exactly one).
type restoreRequest struct {
	Path     string          `json:"path,omitempty"`
	Snapshot json.RawMessage `json:"snapshot,omitempty"`
}

// restoreResponse summarises the restored session.
type restoreResponse struct {
	Machines   int `json:"machines"`
	Placed     int `json:"placed"`
	Undeployed int `json:"undeployed"`
}

// handleRestore replaces the live session with one rebuilt from a v2
// snapshot.  The workload universe is the server's own: a snapshot
// captured against a different trace fails validation rather than
// restoring a diverged state.
func (s *Server) handleRestore(w http.ResponseWriter, r *http.Request) {
	var req restoreRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	var snap *checkpoint.SessionSnapshot
	var err error
	switch {
	case len(req.Snapshot) > 0 && req.Path != "":
		http.Error(w, "give either path or snapshot, not both", http.StatusBadRequest)
		return
	case len(req.Snapshot) > 0:
		snap, err = checkpoint.ReadSession(bytes.NewReader(req.Snapshot))
	case req.Path != "":
		snap, err = checkpoint.ReadFile(req.Path)
	default:
		http.Error(w, "missing path or snapshot", http.StatusBadRequest)
		return
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	defer s.unlockAfterWrite()
	sess, cluster, err := snap.Restore(s.session.Options(), s.w)
	if err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	s.session, s.cluster = sess, cluster
	writeJSON(w, restoreResponse{
		Machines:   cluster.Size(),
		Placed:     len(sess.Assignment()),
		Undeployed: len(snap.Undeployed),
	})
}

func writeJSON(w http.ResponseWriter, v any) {
	writeJSONStatus(w, http.StatusOK, v)
}

// writeJSONStatus encodes to a buffer before touching the response:
// encoding directly into the ResponseWriter commits a 200 header (and
// possibly a partial body) before an encode error can be reported, so
// the error path would corrupt the response with a superfluous
// WriteHeader instead of returning a clean 500.
func writeJSONStatus(w http.ResponseWriter, status int, v any) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(buf.Bytes())
}
