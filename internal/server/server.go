// Package server exposes scheduling sessions over HTTP — the
// operational surface a production scheduler manager needs: health,
// metrics, the live assignment, per-container diagnosis, and batch
// submission.  It is the in-process analogue of the watching/binding
// APIs the paper's model adaptor delegates (§IV.C).
//
// The server is multi-tenant: a registry of named tenants, each with
// its own session, workload universe, cluster, coalescing batcher and
// labeled metrics.  The un-prefixed routes (/place, /assignments, …)
// serve the default tenant, so a single-tenant deployment looks
// exactly like the pre-tenancy server; /t/{tenant}/... variants reach
// the others, and /tenants is the CRUD surface.
package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"aladdin/internal/checkpoint"
	"aladdin/internal/constraint"
	"aladdin/internal/core"
	"aladdin/internal/obs"
	"aladdin/internal/resource"
	"aladdin/internal/topology"
	"aladdin/internal/workload"
)

// Server is the multi-tenant HTTP front end.  Three lock tiers, all
// disjoint by construction: the registry lock (this mu) guards only
// the tenant map and is never held while a tenant or batcher lock is
// taken; each batcher's queue lock is never held across a solver
// call; each tenant's session lock serializes that tenant's session
// exactly as the old single-tenant server lock did — mutating
// handlers exclusive, read-only handlers shared, every mutating path
// re-materializing the session's lazy read views before unlock.  The
// scheduler core's own locks nest strictly inside a tenant lock.
type Server struct {
	//aladdin:lock-level 40 tenant registry lock; guards the tenants map only and is released before any batcher or tenant session lock is acquired
	mu      sync.RWMutex
	tenants map[string]*Tenant

	// def is the default tenant, also registered in tenants; kept as a
	// field so the un-prefixed routes skip the map lookup.
	def *Tenant

	// baseOpts is the scheduler configuration template for created
	// tenants, captured from the default tenant's session so every
	// tenant runs the same policy knobs (per-tenant metrics labels and
	// shard counts are layered on top).
	baseOpts core.Options

	// coalesce, when enabled, gives every tenant a request batcher.
	coalesce CoalesceConfig

	// draining flips at Drain: placement admission stops (503 on the
	// direct path, errDraining from the batchers) while queued work is
	// flushed so every admitted request still gets its response.
	draining atomic.Bool

	// reg is the metrics registry behind /metrics and /debug/vars.
	// Attach the same registry via core.Options.Metrics and the
	// scheduler's phase histograms and pipeline counters appear in the
	// exposition alongside the server's scrape-time cluster gauges.
	// Nil leaves only the scrape-time gauges.
	reg       *obs.Registry
	withPprof bool

	// ckptPath is the default tenant's snapshot destination for
	// POST /checkpoint requests that name none (WithCheckpointPath).
	ckptPath string

	// explain is the diagnosis seam, core.Explain in production; tests
	// inject failures to exercise the handler's internal-error path.
	explain func(w *workload.Workload, cluster *topology.Cluster, asg constraint.Assignment, containerID string) (*core.Explanation, error)

	mux *http.ServeMux
}

// Option customises a Server at construction.
type Option func(*Server)

// WithRegistry attaches a metrics registry: /metrics renders its
// families as Prometheus text exposition and /debug/vars serves its
// JSON snapshot.  Pass the registry also carried by the session's
// core.Options.Metrics to expose the scheduler's internals.
func WithRegistry(reg *obs.Registry) Option {
	return func(s *Server) { s.reg = reg }
}

// WithPprof mounts net/http/pprof under /debug/pprof/.  Off by
// default: profiling endpoints expose heap contents and must be
// opted into (cmd/aladdin-server gates it behind -pprof).
func WithPprof() Option {
	return func(s *Server) { s.withPprof = true }
}

// WithCheckpointPath sets the default tenant's snapshot file for
// POST /checkpoint requests that name no path of their own.
func WithCheckpointPath(path string) Option {
	return func(s *Server) { s.ckptPath = path }
}

// WithCoalescing turns on request coalescing for every tenant: small
// POST /place calls enqueue into a per-tenant batcher and flush as
// one merged solver batch (see CoalesceConfig).  A zero Window leaves
// coalescing off.
func WithCoalescing(cfg CoalesceConfig) Option {
	return func(s *Server) { s.coalesce = cfg.withDefaults() }
}

// New builds a server whose default tenant wraps the given session
// and the workload/cluster it manages.
func New(session *core.Session, w *workload.Workload, cluster *topology.Cluster, opts ...Option) *Server {
	s := &Server{
		tenants: make(map[string]*Tenant),
		explain: core.Explain,
	}
	for _, opt := range opts {
		opt(s)
	}
	s.baseOpts = session.Options()
	s.def = newTenant(DefaultTenant, session, session, w, cluster, s.ckptPath, 0, s.reg)
	if s.coalesce.enabled() {
		s.def.bat = newBatcher(s.def, s.coalesce)
	}
	s.tenants[DefaultTenant] = s.def

	s.mux = http.NewServeMux()
	routes := []struct {
		method, path string
		h            tenantHandler
	}{
		{"GET", "healthz", s.handleHealth},
		{"GET", "assignments", s.handleAssignments},
		{"GET", "explain", s.handleExplain},
		{"POST", "place", s.handlePlace},
		{"POST", "remove", s.handleRemove},
		{"POST", "fail", s.handleFail},
		{"POST", "recover", s.handleRecover},
		{"POST", "checkpoint", s.handleCheckpoint},
		{"POST", "restore", s.handleRestore},
		{"POST", "consolidate", s.handleConsolidate},
		{"POST", "rebalance", s.handleRebalance},
		{"POST", "rebalance/start", s.handleRebalanceStart},
		{"POST", "rebalance/stop", s.handleRebalanceStop},
	}
	for _, rt := range routes {
		s.mux.HandleFunc(rt.method+" /"+rt.path, s.dflt(rt.h))
		s.mux.HandleFunc(rt.method+" /t/{tenant}/"+rt.path, s.named(rt.h))
	}
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /debug/vars", s.handleVars)
	s.mux.HandleFunc("GET /tenants", s.handleTenantsList)
	s.mux.HandleFunc("POST /tenants", s.handleTenantCreate)
	s.mux.HandleFunc("DELETE /tenants/{tenant}", s.handleTenantDelete)
	if s.withPprof {
		s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Drain stops admitting placement work and flushes every tenant's
// coalescing queue, so each already-admitted request receives its
// response rather than a connection reset.  Call before process
// shutdown; other endpoints (reads, metrics, admin) keep serving.
func (s *Server) Drain() {
	s.draining.Store(true)
	for _, t := range s.tenantsSorted() {
		if t.bat != nil {
			t.bat.close()
		}
		t.stopRebalancer()
	}
}

// tenantHandler is a handler bound to a resolved tenant.
type tenantHandler func(http.ResponseWriter, *http.Request, *Tenant)

// dflt adapts a tenant handler to the un-prefixed routes, which serve
// the default tenant.
func (s *Server) dflt(h tenantHandler) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) { h(w, r, s.def) }
}

// named adapts a tenant handler to the /t/{tenant}/... routes.
func (s *Server) named(h tenantHandler) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("tenant")
		t := s.lookupTenant(name)
		if t == nil {
			http.Error(w, fmt.Sprintf("unknown tenant %q", name), http.StatusNotFound)
			return
		}
		h(w, r, t)
	}
}

// handleHealth holds the write lock even though it only diagnoses:
// the audit walks Machine.ContainerIDs, whose sorted-ID cache is
// rebuilt lazily, so running it under the shared read lock would race
// with other readers.
func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request, t *Tenant) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.sched.FlowConservation(); err != nil {
		http.Error(w, fmt.Sprintf("flow conservation violated: %v", err), http.StatusInternalServerError)
		return
	}
	if vs := t.sched.Audit(); len(vs) != 0 {
		http.Error(w, fmt.Sprintf("%d constraint violations live", len(vs)), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// clusterSample is one tenant's scrape-time cluster summary, read
// under that tenant's lock alone so a scrape never serializes the
// whole fleet.
type clusterSample struct {
	tenant   string
	machines int
	used     int
	down     int
	placed   int
	cpu      int64
	mem      int64
	lo       float64
	mean     float64
	hi       float64
}

// sample reads one tenant's cluster summary under its read lock.
func (t *Tenant) sample() clusterSample {
	t.mu.RLock()
	defer t.mu.RUnlock()
	lo, mean, hi := t.cluster.UtilizationRange()
	totalUsed := t.cluster.TotalUsed()
	return clusterSample{
		tenant:   t.name,
		machines: t.cluster.Size(),
		used:     t.cluster.UsedMachines(),
		down:     t.cluster.DownMachines(),
		placed:   len(t.sched.Assignment()),
		cpu:      totalUsed.Dim(resource.CPU),
		mem:      totalUsed.Dim(resource.Memory),
		lo:       lo,
		mean:     mean,
		hi:       hi,
	}
}

// handleMetrics renders Prometheus text exposition (format 0.0.4):
// the attached registry's families first — the scheduler's phase
// histograms and event counters when the sessions share a registry —
// then scrape-time gauges derived from every tenant's live cluster
// state.  The scrape-time block skips any family the registry already
// owns, so a core-maintained gauge (aladdin_machines_down) is never
// emitted twice with conflicting values.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	var buf bytes.Buffer
	s.reg.WritePrometheus(&buf) //aladdin:errcheck-ok bytes.Buffer writes cannot fail (nil registry: no-op)
	samples := make([]clusterSample, 0, 4)
	for _, t := range s.tenantsSorted() {
		samples = append(samples, t.sample())
	}
	s.writeClusterMetrics(&buf, samples)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write(buf.Bytes())
}

// writeClusterMetrics appends gauges recomputed from cluster ground
// truth at scrape time, one sample per tenant under each family
// header.  The default tenant stays unlabeled — identical to the
// pre-tenancy exposition — and every other tenant gets a
// tenant="name" label.  They need no registry plumbing and stay
// correct even when the scheduler runs uninstrumented.
func (s *Server) writeClusterMetrics(buf *bytes.Buffer, samples []clusterSample) {
	series := func(name, tenant string) string {
		if tenant == DefaultTenant {
			return name
		}
		// Tenant names are pre-validated to [A-Za-z0-9._-], so no label
		// escaping is needed here.
		return fmt.Sprintf("%s{tenant=%q}", name, tenant)
	}
	intGauge := func(name, help string, v func(clusterSample) int64) {
		if s.reg.Has(name) {
			return
		}
		fmt.Fprintf(buf, "# HELP %s %s\n# TYPE %s gauge\n", name, help, name)
		for _, cs := range samples {
			fmt.Fprintf(buf, "%s %d\n", series(name, cs.tenant), v(cs))
		}
	}
	floatGauge := func(name, help string, v func(clusterSample) float64) {
		if s.reg.Has(name) {
			return
		}
		fmt.Fprintf(buf, "# HELP %s %s\n# TYPE %s gauge\n", name, help, name)
		for _, cs := range samples {
			fmt.Fprintf(buf, "%s %.4f\n", series(name, cs.tenant), v(cs))
		}
	}
	intGauge("aladdin_machines_total", "machines in the cluster topology", func(cs clusterSample) int64 { return int64(cs.machines) })
	intGauge("aladdin_machines_used", "machines hosting at least one container", func(cs clusterSample) int64 { return int64(cs.used) })
	intGauge("aladdin_machines_down", "machines currently marked failed", func(cs clusterSample) int64 { return int64(cs.down) })
	intGauge("aladdin_containers_placed", "containers with a live assignment", func(cs clusterSample) int64 { return int64(cs.placed) })
	intGauge("aladdin_cpu_milli_allocated", "millicores allocated across the cluster", func(cs clusterSample) int64 { return cs.cpu })
	intGauge("aladdin_mem_mb_allocated", "memory MB allocated across the cluster", func(cs clusterSample) int64 { return cs.mem })
	floatGauge("aladdin_cpu_utilization_min", "lowest per-machine CPU utilization among used machines", func(cs clusterSample) float64 { return cs.lo })
	floatGauge("aladdin_cpu_utilization_mean", "mean per-machine CPU utilization among used machines", func(cs clusterSample) float64 { return cs.mean })
	floatGauge("aladdin_cpu_utilization_max", "highest per-machine CPU utilization among used machines", func(cs clusterSample) float64 { return cs.hi })
}

// varsResponse is the JSON body of /debug/vars: the full registry
// snapshot plus per-tenant cluster summaries.  Cluster repeats the
// default tenant's block under its pre-tenancy key so existing
// consumers keep working.
type varsResponse struct {
	Metrics obs.Snapshot           `json:"metrics"`
	Cluster clusterVars            `json:"cluster"`
	Tenants map[string]clusterVars `json:"tenants,omitempty"`
}

type clusterVars struct {
	Machines         int     `json:"machines"`
	MachinesUsed     int     `json:"machines_used"`
	MachinesDown     int     `json:"machines_down"`
	ContainersPlaced int     `json:"containers_placed"`
	CPUMilli         int64   `json:"cpu_milli_allocated"`
	MemMB            int64   `json:"mem_mb_allocated"`
	UtilizationMin   float64 `json:"cpu_utilization_min"`
	UtilizationMean  float64 `json:"cpu_utilization_mean"`
	UtilizationMax   float64 `json:"cpu_utilization_max"`
}

func (cs clusterSample) vars() clusterVars {
	return clusterVars{
		Machines:         cs.machines,
		MachinesUsed:     cs.used,
		MachinesDown:     cs.down,
		ContainersPlaced: cs.placed,
		CPUMilli:         cs.cpu,
		MemMB:            cs.mem,
		UtilizationMin:   cs.lo,
		UtilizationMean:  cs.mean,
		UtilizationMax:   cs.hi,
	}
}

func (s *Server) handleVars(w http.ResponseWriter, _ *http.Request) {
	resp := varsResponse{
		Metrics: s.reg.Snapshot(),
		Tenants: make(map[string]clusterVars),
	}
	for _, t := range s.tenantsSorted() {
		cv := t.sample().vars()
		if t.name == DefaultTenant {
			resp.Cluster = cv
		}
		resp.Tenants[t.name] = cv
	}
	writeJSON(w, resp)
}

// assignmentEntry is the JSON row of /assignments.
type assignmentEntry struct {
	Container string             `json:"container"`
	Machine   topology.MachineID `json:"machine"`
	MachineID string             `json:"machine_name"`
	Rack      string             `json:"rack"`
}

func (s *Server) handleAssignments(w http.ResponseWriter, _ *http.Request, t *Tenant) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	asg := t.sched.Assignment()
	out := make([]assignmentEntry, 0, len(asg))
	for id, m := range asg {
		machine := t.cluster.Machine(m)
		out = append(out, assignmentEntry{
			Container: id, Machine: m,
			MachineID: machine.Name, Rack: machine.Rack,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Container < out[j].Container })
	writeJSON(w, out)
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request, t *Tenant) {
	id := r.URL.Query().Get("container")
	if id == "" {
		http.Error(w, "missing ?container=", http.StatusBadRequest)
		return
	}
	// Capture a private snapshot under the shared read lock, then run
	// the diagnosis unlocked: Explain walks blocking containers per
	// machine, which is arbitrarily expensive on a loaded cluster, and
	// an RWMutex alone would still let one slow reader stall the next
	// writer (and every reader queued behind it).
	t.mu.RLock()
	specs := t.cluster.Specs()
	allocs := make([]map[string]resource.Vector, len(specs))
	for i, m := range t.cluster.Machines() {
		allocs[i] = m.Allocations()
	}
	live := t.sched.Assignment()
	asg := make(constraint.Assignment, len(live))
	for cid, m := range live {
		asg[cid] = m
	}
	t.mu.RUnlock()
	shadow, err := snapshotCluster(specs, allocs)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	e, err := s.explain(t.w, shadow, asg, id)
	if err != nil {
		// Only "that container does not exist" is the caller's mistake;
		// anything else is an internal failure and must say so — a 404
		// here would send an operator hunting for a typo in a container
		// ID while the scheduler is broken.
		status := http.StatusInternalServerError
		if errors.Is(err, core.ErrUnknownContainer) {
			status = http.StatusNotFound
		}
		http.Error(w, err.Error(), status)
		return
	}
	writeJSON(w, e)
}

// snapshotCluster rebuilds a private cluster from specs and
// per-machine allocations captured under the read lock.  Machines are
// constructed up — Allocate rejects a down machine — so the captured
// allocations replay, then the originally-down machines are re-marked
// down.
func snapshotCluster(specs []topology.MachineSpec, allocs []map[string]resource.Vector) (*topology.Cluster, error) {
	up := make([]topology.MachineSpec, len(specs))
	copy(up, specs)
	for i := range up {
		up[i].Down = false
	}
	cl, err := topology.FromSpecs(up)
	if err != nil {
		return nil, err
	}
	for i, m := range cl.Machines() {
		for cid, v := range allocs[i] {
			if err := m.Allocate(cid, v); err != nil {
				return nil, err
			}
		}
	}
	for i, sp := range specs {
		if sp.Down {
			cl.Machine(topology.MachineID(i)).MarkDown()
		}
	}
	return cl, nil
}

// placeRequest is the JSON body of /place.
type placeRequest struct {
	Containers []string `json:"containers"`
}

// placeResponse summarises one batch.  Error is set when the batch
// hit an internal placement error mid-way: the other fields then
// describe the partial placement that is live on the cluster, so the
// caller can reconcile instead of guessing what a bare 409 left
// behind.  Coalesced, when set, is the size of the merged solver
// batch this request rode in — the request's own containers plus
// everything queued alongside it.
type placeResponse struct {
	Placed     int      `json:"placed"`
	Undeployed []string `json:"undeployed,omitempty"`
	Migrations int      `json:"migrations"`
	ElapsedUS  int64    `json:"elapsed_us"`
	Coalesced  int      `json:"coalesced,omitempty"`
	Error      string   `json:"error,omitempty"`
}

// handlePlace admits one placement request.  With coalescing on, the
// request enqueues into the tenant's batcher and the handler parks on
// the reply channel: admission control answers 429 + Retry-After at
// queue capacity, drain answers 503, and a departed client simply
// abandons its buffered reply.  Without coalescing the request places
// directly under the tenant lock, exactly the pre-tenancy behavior.
func (s *Server) handlePlace(w http.ResponseWriter, r *http.Request, t *Tenant) {
	var req placeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	t.met.requests.Inc()
	t.met.inflight.Add(1)
	defer t.met.inflight.Add(-1)
	if s.draining.Load() {
		http.Error(w, "server draining", http.StatusServiceUnavailable)
		return
	}
	if t.bat != nil {
		call := &placeCall{ids: req.Containers, done: make(chan placeReply, 1)}
		if err := t.bat.enqueue(call); err != nil {
			if errors.Is(err, errQueueFull) {
				w.Header().Set("Retry-After", strconv.Itoa(t.bat.cfg.retryAfterSeconds()))
				http.Error(w, err.Error(), http.StatusTooManyRequests)
				return
			}
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		select {
		case rep := <-call.done:
			if rep.plain != "" {
				http.Error(w, rep.plain, rep.status)
				return
			}
			writeJSONStatus(w, rep.status, rep.body)
		case <-r.Context().Done():
			// Client gone.  The flusher's send lands in the buffered
			// channel and is garbage collected with the call.
		}
		return
	}

	t.mu.Lock()
	defer t.unlockAfterWrite()
	batch := make([]*workload.Container, 0, len(req.Containers))
	for _, id := range req.Containers {
		c := t.byID[id]
		if c == nil {
			http.Error(w, fmt.Sprintf("unknown container %q", id), http.StatusBadRequest)
			return
		}
		batch = append(batch, c)
	}
	res, err := t.sched.Place(batch)
	t.met.batches.Inc()
	t.met.batchSize.Observe(int64(len(batch)))
	if err != nil {
		if res == nil {
			// Validation failure: nothing was placed.
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		writeJSONStatus(w, http.StatusConflict, placeResponse{
			Placed:     res.Deployed(),
			Undeployed: res.Undeployed,
			Migrations: res.Migrations,
			ElapsedUS:  res.Elapsed.Microseconds(),
			Error:      err.Error(),
		})
		return
	}
	writeJSON(w, placeResponse{
		Placed:     res.Deployed(),
		Undeployed: res.Undeployed,
		Migrations: res.Migrations,
		ElapsedUS:  res.Elapsed.Microseconds(),
	})
}

// removeRequest is the JSON body of /remove.
type removeRequest struct {
	Container string `json:"container"`
}

func (s *Server) handleRemove(w http.ResponseWriter, r *http.Request, t *Tenant) {
	var req removeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	t.mu.Lock()
	defer t.unlockAfterWrite()
	if err := t.sched.Remove(req.Container); err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "removed")
}

// machineRequest is the JSON body of /fail and /recover.
type machineRequest struct {
	Machine topology.MachineID `json:"machine"`
}

// failResponse reports one failure event's outcome.
type failResponse struct {
	Machine     topology.MachineID `json:"machine"`
	Evicted     int                `json:"evicted"`
	Replaced    int                `json:"replaced"`
	Stranded    []string           `json:"stranded,omitempty"`
	Migrations  int                `json:"migrations"`
	Preemptions int                `json:"preemptions"`
	ElapsedUS   int64              `json:"elapsed_us"`
}

// handleFail is the admin endpoint for taking a machine out of
// service: residents are evicted and re-placed through the normal
// pipeline; the response reports who moved and who was stranded.
func (s *Server) handleFail(w http.ResponseWriter, r *http.Request, t *Tenant) {
	var req machineRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	t.mu.Lock()
	defer t.unlockAfterWrite()
	if t.cluster.Machine(req.Machine) == nil {
		http.Error(w, fmt.Sprintf("unknown machine %d", req.Machine), http.StatusNotFound)
		return
	}
	res, err := t.sched.FailMachine(req.Machine)
	if err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	writeJSON(w, failResponse{
		Machine:     res.Machine,
		Evicted:     res.Evicted,
		Replaced:    res.Replaced,
		Stranded:    res.Stranded,
		Migrations:  res.Migrations,
		Preemptions: res.Preemptions,
		ElapsedUS:   res.Elapsed.Microseconds(),
	})
}

// recoverResponse reports one recovery event's outcome, including the
// automatic stranded-container retry RecoverMachine runs.
type recoverResponse struct {
	Machine     topology.MachineID `json:"machine"`
	Retried     int                `json:"retried"`
	Replaced    []string           `json:"replaced,omitempty"`
	Migrations  int                `json:"migrations"`
	Preemptions int                `json:"preemptions"`
	ElapsedUS   int64              `json:"elapsed_us"`
}

// handleRecover returns a failed machine to service and reports the
// stranded containers the recovery re-placed onto it.
func (s *Server) handleRecover(w http.ResponseWriter, r *http.Request, t *Tenant) {
	var req machineRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	t.mu.Lock()
	defer t.unlockAfterWrite()
	if t.cluster.Machine(req.Machine) == nil {
		http.Error(w, fmt.Sprintf("unknown machine %d", req.Machine), http.StatusNotFound)
		return
	}
	res, err := t.sched.RecoverMachine(req.Machine)
	if err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	writeJSON(w, recoverResponse{
		Machine:     res.Machine,
		Retried:     res.Retried,
		Replaced:    res.Replaced,
		Migrations:  res.Migrations,
		Preemptions: res.Preemptions,
		ElapsedUS:   res.Elapsed.Microseconds(),
	})
}

// checkpointRequest is the JSON body of /checkpoint; an empty body is
// allowed.
type checkpointRequest struct {
	// Path overrides the tenant's configured checkpoint file.  With
	// neither, the snapshot itself is returned inline.
	Path string `json:"path,omitempty"`
}

// checkpointResponse summarises a snapshot written to disk.
type checkpointResponse struct {
	Path       string `json:"path"`
	Machines   int    `json:"machines"`
	Placements int    `json:"placements"`
	Undeployed int    `json:"undeployed"`
}

// handleCheckpoint captures the live session as a v2 snapshot.  With
// a destination path (request body or the tenant's configured path)
// the snapshot is written crash-safely and a summary returned;
// without one the snapshot JSON itself is the response, so an
// operator can checkpoint a diskless server through curl alone.
// Sharded tenants cannot checkpoint: snapshots replay through a
// single flow network.
func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request, t *Tenant) {
	var req checkpointRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil && !errors.Is(err, io.EOF) {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.plain == nil {
		http.Error(w, fmt.Sprintf("tenant %q runs the sharded core; checkpointing is unsupported", t.name), http.StatusConflict)
		return
	}
	snap, err := checkpoint.CaptureSession(t.plain)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	path := req.Path
	if path == "" {
		path = t.ckptPath
	}
	if path == "" {
		writeJSON(w, snap)
		return
	}
	if err := checkpoint.WriteFile(path, snap); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, checkpointResponse{
		Path:       path,
		Machines:   len(snap.Machines),
		Placements: len(snap.Placements),
		Undeployed: len(snap.Undeployed),
	})
}

// restoreRequest is the JSON body of /restore: a snapshot file path
// or the snapshot inline (exactly one).
type restoreRequest struct {
	Path     string          `json:"path,omitempty"`
	Snapshot json.RawMessage `json:"snapshot,omitempty"`
}

// restoreResponse summarises the restored session.
type restoreResponse struct {
	Machines   int `json:"machines"`
	Placed     int `json:"placed"`
	Undeployed int `json:"undeployed"`
}

// handleRestore replaces the tenant's live session with one rebuilt
// from a v2 snapshot.  The workload universe is the tenant's own: a
// snapshot captured against a different trace fails validation rather
// than restoring a diverged state.
func (s *Server) handleRestore(w http.ResponseWriter, r *http.Request, t *Tenant) {
	var req restoreRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	var snap *checkpoint.SessionSnapshot
	var err error
	switch {
	case len(req.Snapshot) > 0 && req.Path != "":
		http.Error(w, "give either path or snapshot, not both", http.StatusBadRequest)
		return
	case len(req.Snapshot) > 0:
		snap, err = checkpoint.ReadSession(bytes.NewReader(req.Snapshot))
	case req.Path != "":
		snap, err = checkpoint.ReadFile(req.Path)
	default:
		http.Error(w, "missing path or snapshot", http.StatusBadRequest)
		return
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	t.mu.Lock()
	defer t.unlockAfterWrite()
	if t.plain == nil {
		http.Error(w, fmt.Sprintf("tenant %q runs the sharded core; restore is unsupported", t.name), http.StatusConflict)
		return
	}
	sess, cluster, err := snap.Restore(t.plain.Options(), t.w)
	if err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	t.plain, t.sched, t.cluster = sess, sess, cluster
	writeJSON(w, restoreResponse{
		Machines:   cluster.Size(),
		Placed:     len(sess.Assignment()),
		Undeployed: len(snap.Undeployed),
	})
}

func writeJSON(w http.ResponseWriter, v any) {
	writeJSONStatus(w, http.StatusOK, v)
}

// writeJSONStatus encodes to a buffer before touching the response:
// encoding directly into the ResponseWriter commits a 200 header (and
// possibly a partial body) before an encode error can be reported, so
// the error path would corrupt the response with a superfluous
// WriteHeader instead of returning a clean 500.
func writeJSONStatus(w http.ResponseWriter, status int, v any) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(buf.Bytes())
}
