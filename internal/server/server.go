// Package server exposes a live scheduling Session over HTTP — the
// operational surface a production scheduler manager needs: health,
// metrics, the live assignment, per-container diagnosis, and batch
// submission.  It is the in-process analogue of the watching/binding
// APIs the paper's model adaptor delegates (§IV.C).
package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"

	"aladdin/internal/core"
	"aladdin/internal/resource"
	"aladdin/internal/topology"
	"aladdin/internal/workload"
)

// Server wraps a Session with an http.Handler.  All handlers share
// one mutex: the Session itself is single-threaded by design (one
// scheduler manager per cluster).
type Server struct {
	mu      sync.Mutex
	session *core.Session
	w       *workload.Workload
	cluster *topology.Cluster
	byID    map[string]*workload.Container

	mux *http.ServeMux
}

// New builds a server over a session and the workload/cluster it
// manages.
func New(session *core.Session, w *workload.Workload, cluster *topology.Cluster) *Server {
	s := &Server{
		session: session,
		w:       w,
		cluster: cluster,
		byID:    make(map[string]*workload.Container, w.NumContainers()),
	}
	for _, c := range w.Containers() {
		s.byID[c.ID] = c
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /assignments", s.handleAssignments)
	s.mux.HandleFunc("GET /explain", s.handleExplain)
	s.mux.HandleFunc("POST /place", s.handlePlace)
	s.mux.HandleFunc("POST /remove", s.handleRemove)
	s.mux.HandleFunc("POST /fail", s.handleFail)
	s.mux.HandleFunc("POST /recover", s.handleRecover)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.session.FlowConservation(); err != nil {
		http.Error(w, fmt.Sprintf("flow conservation violated: %v", err), http.StatusInternalServerError)
		return
	}
	if vs := s.session.Audit(); len(vs) != 0 {
		http.Error(w, fmt.Sprintf("%d constraint violations live", len(vs)), http.StatusInternalServerError)
		return
	}
	fmt.Fprintln(w, "ok")
}

// handleMetrics renders Prometheus-style text metrics.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	used := s.cluster.UsedMachines()
	lo, mean, hi := s.cluster.UtilizationRange()
	totalUsed := s.cluster.TotalUsed()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	fmt.Fprintf(w, "aladdin_machines_total %d\n", s.cluster.Size())
	fmt.Fprintf(w, "aladdin_machines_used %d\n", used)
	fmt.Fprintf(w, "aladdin_machines_down %d\n", s.cluster.DownMachines())
	fmt.Fprintf(w, "aladdin_containers_placed %d\n", len(s.session.Assignment()))
	fmt.Fprintf(w, "aladdin_cpu_milli_allocated %d\n", totalUsed.Dim(resource.CPU))
	fmt.Fprintf(w, "aladdin_mem_mb_allocated %d\n", totalUsed.Dim(resource.Memory))
	fmt.Fprintf(w, "aladdin_cpu_utilization_min %.4f\n", lo)
	fmt.Fprintf(w, "aladdin_cpu_utilization_mean %.4f\n", mean)
	fmt.Fprintf(w, "aladdin_cpu_utilization_max %.4f\n", hi)
}

// assignmentEntry is the JSON row of /assignments.
type assignmentEntry struct {
	Container string             `json:"container"`
	Machine   topology.MachineID `json:"machine"`
	MachineID string             `json:"machine_name"`
	Rack      string             `json:"rack"`
}

func (s *Server) handleAssignments(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	asg := s.session.Assignment()
	out := make([]assignmentEntry, 0, len(asg))
	for id, m := range asg {
		machine := s.cluster.Machine(m)
		out = append(out, assignmentEntry{
			Container: id, Machine: m,
			MachineID: machine.Name, Rack: machine.Rack,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Container < out[j].Container })
	writeJSON(w, out)
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("container")
	if id == "" {
		http.Error(w, "missing ?container=", http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	e, err := core.Explain(s.w, s.cluster, s.session.Assignment(), id)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	writeJSON(w, e)
}

// placeRequest is the JSON body of /place.
type placeRequest struct {
	Containers []string `json:"containers"`
}

// placeResponse summarises one batch.  Error is set when the batch
// hit an internal placement error mid-way: the other fields then
// describe the partial placement that is live on the cluster, so the
// caller can reconcile instead of guessing what a bare 409 left
// behind.
type placeResponse struct {
	Placed     int      `json:"placed"`
	Undeployed []string `json:"undeployed,omitempty"`
	Migrations int      `json:"migrations"`
	ElapsedUS  int64    `json:"elapsed_us"`
	Error      string   `json:"error,omitempty"`
}

func (s *Server) handlePlace(w http.ResponseWriter, r *http.Request) {
	var req placeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	batch := make([]*workload.Container, 0, len(req.Containers))
	for _, id := range req.Containers {
		c := s.byID[id]
		if c == nil {
			http.Error(w, fmt.Sprintf("unknown container %q", id), http.StatusBadRequest)
			return
		}
		batch = append(batch, c)
	}
	res, err := s.session.Place(batch)
	if err != nil {
		if res == nil {
			// Validation failure: nothing was placed.
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		writeJSONStatus(w, http.StatusConflict, placeResponse{
			Placed:     res.Deployed(),
			Undeployed: res.Undeployed,
			Migrations: res.Migrations,
			ElapsedUS:  res.Elapsed.Microseconds(),
			Error:      err.Error(),
		})
		return
	}
	writeJSON(w, placeResponse{
		Placed:     res.Deployed(),
		Undeployed: res.Undeployed,
		Migrations: res.Migrations,
		ElapsedUS:  res.Elapsed.Microseconds(),
	})
}

// removeRequest is the JSON body of /remove.
type removeRequest struct {
	Container string `json:"container"`
}

func (s *Server) handleRemove(w http.ResponseWriter, r *http.Request) {
	var req removeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.session.Remove(req.Container); err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	fmt.Fprintln(w, "removed")
}

// machineRequest is the JSON body of /fail and /recover.
type machineRequest struct {
	Machine topology.MachineID `json:"machine"`
}

// failResponse reports one failure event's outcome.
type failResponse struct {
	Machine     topology.MachineID `json:"machine"`
	Evicted     int                `json:"evicted"`
	Replaced    int                `json:"replaced"`
	Stranded    []string           `json:"stranded,omitempty"`
	Migrations  int                `json:"migrations"`
	Preemptions int                `json:"preemptions"`
	ElapsedUS   int64              `json:"elapsed_us"`
}

// handleFail is the admin endpoint for taking a machine out of
// service: residents are evicted and re-placed through the normal
// pipeline; the response reports who moved and who was stranded.
func (s *Server) handleFail(w http.ResponseWriter, r *http.Request) {
	var req machineRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cluster.Machine(req.Machine) == nil {
		http.Error(w, fmt.Sprintf("unknown machine %d", req.Machine), http.StatusNotFound)
		return
	}
	res, err := s.session.FailMachine(req.Machine)
	if err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	writeJSON(w, failResponse{
		Machine:     res.Machine,
		Evicted:     res.Evicted,
		Replaced:    res.Replaced,
		Stranded:    res.Stranded,
		Migrations:  res.Migrations,
		Preemptions: res.Preemptions,
		ElapsedUS:   res.Elapsed.Microseconds(),
	})
}

// handleRecover returns a failed machine to service.
func (s *Server) handleRecover(w http.ResponseWriter, r *http.Request) {
	var req machineRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cluster.Machine(req.Machine) == nil {
		http.Error(w, fmt.Sprintf("unknown machine %d", req.Machine), http.StatusNotFound)
		return
	}
	if err := s.session.RecoverMachine(req.Machine); err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	fmt.Fprintln(w, "recovered")
}

func writeJSON(w http.ResponseWriter, v any) {
	writeJSONStatus(w, http.StatusOK, v)
}

// writeJSONStatus encodes to a buffer before touching the response:
// encoding directly into the ResponseWriter commits a 200 header (and
// possibly a partial body) before an encode error can be reported, so
// the error path would corrupt the response with a superfluous
// WriteHeader instead of returning a clean 500.
func writeJSONStatus(w http.ResponseWriter, status int, v any) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(buf.Bytes())
}
