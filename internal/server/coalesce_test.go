package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"aladdin/internal/core"
	"aladdin/internal/resource"
	"aladdin/internal/topology"
	"aladdin/internal/workload"
)

// coalesceWorkload is the universe both the coalesced server and its
// serial oracle schedule: one app, replicas single-container requests.
func coalesceWorkload(replicas int) *workload.Workload {
	return workload.MustNew([]*workload.App{
		{ID: "web", Demand: resource.Cores(4, 8192), Replicas: replicas, AntiAffinitySelf: true},
	})
}

func coalesceTopology() topology.Config {
	return topology.Config{
		Machines: 16, MachinesPerRack: 4, RacksPerCluster: 2,
		Capacity: resource.Cores(32, 64*1024),
	}
}

// coalescedServer builds a server over the shared coalescing fixture.
// Drain is registered as cleanup so the flusher goroutine never
// outlives the test.
func coalescedServer(t *testing.T, replicas int, cfg CoalesceConfig) *Server {
	t.Helper()
	w := coalesceWorkload(replicas)
	cl := topology.New(coalesceTopology())
	sess := core.NewSession(core.DefaultOptions(), w, cl)
	s := New(sess, w, cl, WithCoalescing(cfg))
	t.Cleanup(s.Drain)
	return s
}

// TestCoalescingEquivalence is the oracle test the tentpole hangs on:
// K concurrent clients each submitting one container through the
// batcher must leave the session in exactly the state one client
// submitting the same containers as a single ordinal-ordered batch
// would — proven byte-for-byte on the deterministic checkpoint
// snapshot.
func TestCoalescingEquivalence(t *testing.T) {
	const k = 16
	// A one-hour window with MaxBatch=k pins the flush plan: nothing
	// flushes until all k requests are queued, then everything flushes
	// as one merged batch.
	s := coalescedServer(t, k, CoalesceConfig{Window: time.Hour, MaxBatch: k, MaxQueue: k})

	var wg sync.WaitGroup
	codes := make([]int, k)
	bodies := make([]placeResponse, k)
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := fmt.Sprintf(`{"containers":["web/%d"]}`, i)
			req := httptest.NewRequest(http.MethodPost, "/place", strings.NewReader(body))
			rec := httptest.NewRecorder()
			s.ServeHTTP(rec, req)
			codes[i] = rec.Code
			json.Unmarshal(rec.Body.Bytes(), &bodies[i]) //aladdin:errcheck-ok asserted via codes below
		}(i)
	}
	wg.Wait()
	for i, code := range codes {
		if code != http.StatusOK {
			t.Fatalf("client %d = %d: %+v", i, code, bodies[i])
		}
		if bodies[i].Placed != 1 || bodies[i].Coalesced != k {
			t.Fatalf("client %d response = %+v, want placed=1 coalesced=%d", i, bodies[i], k)
		}
	}

	// The serial oracle: same universe, same cluster, one batch in
	// workload-ordinal order, no coalescing.
	oracle, _ := func() (*Server, *workload.Workload) {
		w := coalesceWorkload(k)
		cl := topology.New(coalesceTopology())
		return New(core.NewSession(core.DefaultOptions(), w, cl), w, cl), w
	}()
	ids := make([]string, k)
	for i := range ids {
		ids[i] = fmt.Sprintf("%q", fmt.Sprintf("web/%d", i))
	}
	body := `{"containers":[` + strings.Join(ids, ",") + `]}`
	if rec := do(t, oracle, http.MethodPost, "/place", body); rec.Code != http.StatusOK {
		t.Fatalf("oracle place = %d: %s", rec.Code, rec.Body)
	}

	coalesced := do(t, s, http.MethodPost, "/checkpoint", "").Body.Bytes()
	serial := do(t, oracle, http.MethodPost, "/checkpoint", "").Body.Bytes()
	if len(coalesced) == 0 || len(serial) == 0 {
		t.Fatal("empty checkpoint snapshot")
	}
	if string(coalesced) != string(serial) {
		t.Fatalf("coalesced and serial checkpoints differ:\n%s", diffLines(string(serial), string(coalesced)))
	}
}

// TestCoalescingValidationPerCall: one bad request in a flush fails
// alone; the good requests sharing the batch still place.
func TestCoalescingValidationPerCall(t *testing.T) {
	s := coalescedServer(t, 4, CoalesceConfig{Window: time.Hour, MaxBatch: 3, MaxQueue: 8})
	var wg sync.WaitGroup
	type result struct {
		code int
		body string
	}
	results := make([]result, 3)
	// Three requests so the container threshold (MaxBatch=3) trips
	// exactly when the last one lands: two good, one unknown ID.
	reqs := []string{
		`{"containers":["web/0"]}`,
		`{"containers":["nosuch/9"]}`,
		`{"containers":["web/1"]}`,
	}
	for i, body := range reqs {
		wg.Add(1)
		go func(i int, body string) {
			defer wg.Done()
			req := httptest.NewRequest(http.MethodPost, "/place", strings.NewReader(body))
			rec := httptest.NewRecorder()
			s.ServeHTTP(rec, req)
			results[i] = result{rec.Code, rec.Body.String()}
		}(i, body)
	}
	wg.Wait()
	if results[0].code != http.StatusOK || results[2].code != http.StatusOK {
		t.Fatalf("good requests = %d, %d: %s %s", results[0].code, results[2].code, results[0].body, results[2].body)
	}
	if results[1].code != http.StatusBadRequest || !strings.Contains(results[1].body, "unknown container") {
		t.Fatalf("bad request = %d: %s", results[1].code, results[1].body)
	}
	var asg []assignmentEntry
	if err := json.Unmarshal(do(t, s, http.MethodGet, "/assignments", "").Body.Bytes(), &asg); err != nil {
		t.Fatal(err)
	}
	if len(asg) != 2 {
		t.Fatalf("placed = %d, want 2", len(asg))
	}
}

// TestBackpressureBoundary pins the admission-control edge: a queue
// at capacity still admits the request that fills it; the next one is
// rejected with 429 and a Retry-After hint; drain then flushes the
// queue so every admitted request gets its response.
func TestBackpressureBoundary(t *testing.T) {
	const maxQueue = 3
	// MaxBatch larger than the queue so nothing flushes on its own.
	s := coalescedServer(t, 8, CoalesceConfig{Window: time.Hour, MaxBatch: 64, MaxQueue: maxQueue})
	bat := s.def.bat

	// Fill all but one slot directly at the batcher layer, keeping the
	// test single-threaded and the boundary exact.
	direct := make([]*placeCall, 0, maxQueue-1)
	for i := 0; i < maxQueue-1; i++ {
		call := &placeCall{ids: []string{fmt.Sprintf("web/%d", i)}, done: make(chan placeReply, 1)}
		if err := bat.enqueue(call); err != nil {
			t.Fatalf("fill enqueue %d: %v", i, err)
		}
		direct = append(direct, call)
	}

	// The capacity-th request goes through HTTP and must be admitted:
	// it parks until drain, so it runs on its own goroutine.
	admitted := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		req := httptest.NewRequest(http.MethodPost, "/place", strings.NewReader(`{"containers":["web/6"]}`))
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		admitted <- rec
	}()
	waitFor(t, func() bool { return bat.queueLen() == maxQueue })

	// Capacity + 1: rejected, with the retry hint.
	rec := do(t, s, http.MethodPost, "/place", `{"containers":["web/7"]}`)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("over-capacity place = %d, want 429: %s", rec.Code, rec.Body)
	}
	if ra := rec.Result().Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 without Retry-After")
	}

	// Drain flushes the queue: the parked HTTP request completes and
	// the directly-enqueued calls all receive replies.
	s.Drain()
	got := <-admitted
	if got.Code != http.StatusOK {
		t.Fatalf("admitted request after drain = %d: %s", got.Code, got.Body)
	}
	for i, call := range direct {
		select {
		case rep := <-call.done:
			if rep.status != http.StatusOK {
				t.Fatalf("direct call %d reply = %d (%s)", i, rep.status, rep.plain)
			}
		default:
			t.Fatalf("direct call %d: no reply after drain", i)
		}
	}

	// Post-drain: admission is closed for good.
	if rec := do(t, s, http.MethodPost, "/place", `{"containers":["web/5"]}`); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("post-drain place = %d, want 503", rec.Code)
	}
}

// TestCoalescingClientDisconnect: a client that gives up while queued
// neither hangs the handler nor blocks the flusher; the batch still
// places.
func TestCoalescingClientDisconnect(t *testing.T) {
	s := coalescedServer(t, 4, CoalesceConfig{Window: time.Hour, MaxBatch: 64, MaxQueue: 8})
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan struct{})
	go func() {
		defer close(served)
		req := httptest.NewRequest(http.MethodPost, "/place", strings.NewReader(`{"containers":["web/0"]}`)).WithContext(ctx)
		s.ServeHTTP(httptest.NewRecorder(), req)
	}()
	waitFor(t, func() bool { return s.def.bat.queueLen() == 1 })
	cancel()
	select {
	case <-served:
	case <-time.After(5 * time.Second):
		t.Fatal("handler did not return after context cancellation")
	}
	// The abandoned request is still in the queue; drain flushes it
	// into the session without anyone listening.
	s.Drain()
	var asg []assignmentEntry
	if err := json.Unmarshal(do(t, s, http.MethodGet, "/assignments", "").Body.Bytes(), &asg); err != nil {
		t.Fatal(err)
	}
	if len(asg) != 1 {
		t.Fatalf("placed = %d, want 1 (abandoned request still flushed)", len(asg))
	}
}

// waitFor polls a condition with a deadline — the tests above need to
// observe queue states that a concurrent handler establishes.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within deadline")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestCoalescingEmptyRequest pins the empty-batch reply: a request
// with no containers contributes nothing to the merged batch, but its
// handler must still get an answer — a dropped reply parks the client
// until it gives up.  Regression test: the flusher used to return
// early on an empty merge without fanning anything back.
func TestCoalescingEmptyRequest(t *testing.T) {
	s := coalescedServer(t, 4, CoalesceConfig{Window: time.Millisecond, MaxBatch: 8, MaxQueue: 8})
	done := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		req := httptest.NewRequest(http.MethodPost, "/place", strings.NewReader(`{"containers":[]}`))
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		done <- rec
	}()
	select {
	case rec := <-done:
		if rec.Code != http.StatusOK {
			t.Fatalf("empty place = %d, want 200: %s", rec.Code, rec.Body)
		}
		var resp placeResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatalf("decoding body %q: %v", rec.Body, err)
		}
		if resp.Placed != 0 || len(resp.Undeployed) != 0 {
			t.Fatalf("empty place body = %+v, want zero placement", resp)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("empty coalesced place never answered")
	}
}
