package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"testing"

	"aladdin/internal/constraint"
	"aladdin/internal/core"
	"aladdin/internal/rebalance"
	"aladdin/internal/resource"
	"aladdin/internal/sched"
	"aladdin/internal/topology"
	"aladdin/internal/workload"
)

// fragServer builds a server whose default tenant is scattered one
// container per machine — consolidation bait the endpoints can act on.
func fragServer(t *testing.T) *Server {
	t.Helper()
	w := workload.MustNew([]*workload.App{
		{ID: "a", Demand: resource.Cores(8, 16384), Replicas: 16},
	})
	cl := topology.New(topology.Config{
		Machines: 4, MachinesPerRack: 2, RacksPerCluster: 2,
		Capacity: resource.Cores(32, 64*1024),
	})
	sess := core.NewSession(core.DefaultOptions(), w, cl)
	if _, err := sess.Place(w.Containers()); err != nil {
		t.Fatal(err)
	}
	perMachine := make(map[topology.MachineID]bool)
	for id, m := range sess.Assignment() {
		if perMachine[m] {
			if err := sess.Remove(id); err != nil {
				t.Fatal(err)
			}
		}
		perMachine[m] = true
	}
	return New(sess, w, cl)
}

func TestConsolidateEndpoint(t *testing.T) {
	s := fragServer(t)

	// Budgeted call: exactly one move, more work left.
	rec := do(t, s, http.MethodPost, "/consolidate", `{"budget":1}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("consolidate = %d: %s", rec.Code, rec.Body)
	}
	var res core.ConsolidateResult
	if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if res.Moves != 1 || !res.More {
		t.Fatalf("budgeted consolidate = %+v, want 1 move and more", res)
	}

	// Unbudgeted call drains the rest: 4 one-resident machines pack
	// onto one (8 cores x 4 fit a 32-core machine).
	rec = do(t, s, http.MethodPost, "/consolidate", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("consolidate = %d: %s", rec.Code, rec.Body)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if res.Moves == 0 || res.More {
		t.Fatalf("full consolidate = %+v, want moves > 0 and no more", res)
	}

	if rec := do(t, s, http.MethodPost, "/consolidate", `{"budget":-1}`); rec.Code != http.StatusBadRequest {
		t.Errorf("negative budget = %d, want 400", rec.Code)
	}
	if rec := do(t, s, http.MethodPost, "/consolidate", `nope`); rec.Code != http.StatusBadRequest {
		t.Errorf("bad json = %d, want 400", rec.Code)
	}
	if rec := do(t, s, http.MethodPost, "/t/ghost/consolidate", ""); rec.Code != http.StatusNotFound {
		t.Errorf("unknown tenant = %d, want 404", rec.Code)
	}
}

func TestRebalanceEndpoint(t *testing.T) {
	s := fragServer(t)
	rec := do(t, s, http.MethodPost, "/rebalance", `{"budget":2}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("rebalance = %d: %s", rec.Code, rec.Body)
	}
	var res rebalance.CycleResult
	if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if res.Budget != 2 || res.Moves == 0 || res.Moves > 2 {
		t.Fatalf("cycle = %+v, want budget 2 honoured with moves in (0,2]", res)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("cycle reported violations: %v", res.Violations)
	}
	// Unbudgeted cycles converge; fragmentation stays at the endpoint's
	// mercy (empty machines keep the gauge high), so run to quiescence.
	for i := 0; ; i++ {
		rec = do(t, s, http.MethodPost, "/rebalance", "")
		if rec.Code != http.StatusOK {
			t.Fatalf("rebalance = %d: %s", rec.Code, rec.Body)
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
			t.Fatal(err)
		}
		if res.Moves == 0 && !res.More {
			break
		}
		if i > 16 {
			t.Fatal("rebalance cycles did not converge")
		}
	}
	if rec := do(t, s, http.MethodPost, "/rebalance", `{"budget":-2}`); rec.Code != http.StatusBadRequest {
		t.Errorf("negative budget = %d, want 400", rec.Code)
	}
	if rec := do(t, s, http.MethodPost, "/t/ghost/rebalance", ""); rec.Code != http.StatusNotFound {
		t.Errorf("unknown tenant = %d, want 404", rec.Code)
	}
}

func TestRebalanceStartStop(t *testing.T) {
	s, _ := testServer(t)
	if rec := do(t, s, http.MethodPost, "/rebalance/start", `{"interval_ms":0}`); rec.Code != http.StatusBadRequest {
		t.Fatalf("zero interval = %d, want 400", rec.Code)
	}
	if rec := do(t, s, http.MethodPost, "/rebalance/start", `bad`); rec.Code != http.StatusBadRequest {
		t.Fatalf("bad json = %d, want 400", rec.Code)
	}
	rec := do(t, s, http.MethodPost, "/rebalance/start", `{"interval_ms":60000,"budget":4}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("start = %d: %s", rec.Code, rec.Body)
	}
	if rec := do(t, s, http.MethodPost, "/rebalance/start", `{"interval_ms":60000}`); rec.Code != http.StatusConflict {
		t.Fatalf("double start = %d, want 409: %s", rec.Code, rec.Body)
	}
	def := s.lookupTenant(DefaultTenant)
	if !def.rebalancer(nil).Running() {
		t.Fatal("rebalancer not running after /rebalance/start")
	}
	if rec := do(t, s, http.MethodPost, "/rebalance/stop", ""); rec.Code != http.StatusOK {
		t.Fatalf("stop = %d: %s", rec.Code, rec.Body)
	}
	if def.rebalancer(nil).Running() {
		t.Fatal("rebalancer still running after /rebalance/stop")
	}
	// Idempotent stop, and a stopped loop restarts.
	if rec := do(t, s, http.MethodPost, "/rebalance/stop", ""); rec.Code != http.StatusOK {
		t.Fatalf("second stop = %d", rec.Code)
	}
	if rec := do(t, s, http.MethodPost, "/rebalance/start", `{"interval_ms":60000}`); rec.Code != http.StatusOK {
		t.Fatalf("restart = %d: %s", rec.Code, rec.Body)
	}
	do(t, s, http.MethodPost, "/rebalance/stop", "")
	if rec := do(t, s, http.MethodPost, "/t/ghost/rebalance/start", `{"interval_ms":1000}`); rec.Code != http.StatusNotFound {
		t.Errorf("unknown tenant start = %d, want 404", rec.Code)
	}
}

// TestConsolidateShardedTenant routes the consolidation path through a
// sharded-core tenant: scatter by placing and removing, then drain
// through the endpoint.
func TestConsolidateShardedTenant(t *testing.T) {
	s, _ := testServer(t)
	rec := do(t, s, http.MethodPost, "/tenants", `{"name":"wide","machines":16,"shards":2}`)
	if rec.Code != http.StatusCreated {
		t.Fatalf("create = %d: %s", rec.Code, rec.Body)
	}
	if rec := do(t, s, http.MethodPost, "/t/wide/place", `{"containers":["web/0","web/1","web/2","db/0"]}`); rec.Code != http.StatusOK {
		t.Fatalf("sharded place = %d: %s", rec.Code, rec.Body)
	}
	rec = do(t, s, http.MethodPost, "/t/wide/consolidate", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("sharded consolidate = %d: %s", rec.Code, rec.Body)
	}
	var res core.ConsolidateResult
	if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if res.More {
		t.Fatalf("sharded consolidate left work behind: %+v", res)
	}
	// One full cycle through the sharded target adapter too.
	if rec := do(t, s, http.MethodPost, "/t/wide/rebalance", `{"budget":8}`); rec.Code != http.StatusOK {
		t.Fatalf("sharded rebalance = %d: %s", rec.Code, rec.Body)
	}
}

// corruptSched wraps a healthy in-memory state but fails the
// continuous-rescheduling surface with state corruption — the error
// class the HTTP layer must map to 500, not 409.
type corruptSched struct {
	w *workload.Workload
}

func (c corruptSched) Place([]*workload.Container) (*sched.Result, error) {
	return nil, fmt.Errorf("corrupt")
}
func (c corruptSched) Remove(string) error { return fmt.Errorf("corrupt") }
func (c corruptSched) FailMachine(topology.MachineID) (*core.FailureResult, error) {
	return nil, fmt.Errorf("corrupt")
}
func (c corruptSched) RecoverMachine(topology.MachineID) (*core.RecoverResult, error) {
	return nil, fmt.Errorf("corrupt")
}
func (c corruptSched) Assignment() constraint.Assignment      { return nil }
func (c corruptSched) Placed(string) bool                     { return false }
func (c corruptSched) Audit() []constraint.Violation          { return nil }
func (c corruptSched) FlowConservation() error                { return nil }
func (c corruptSched) AuditInvariants() []core.AuditViolation { return nil }
func (c corruptSched) PackingStats() core.PackingStats {
	return core.PackingStats{Stranded: 1}
}
func (c corruptSched) ConsolidateN(int) (core.ConsolidateResult, error) {
	return core.ConsolidateResult{}, fmt.Errorf("drain: %w", core.ErrStateCorruption)
}
func (c corruptSched) RetryStranded(int) (*core.RetryResult, error) {
	return nil, fmt.Errorf("retry: %w", core.ErrStateCorruption)
}

// TestConsolidateCorruptionStatus injects a Sched whose rescheduling
// surface reports state corruption: both endpoints must answer 500 —
// the restore-from-checkpoint signal — never a retryable 409.
func TestConsolidateCorruptionStatus(t *testing.T) {
	s, w := testServer(t)
	bad := newTenant("bad", corruptSched{w: w}, nil, w, topology.New(topology.Config{
		Machines: 2, MachinesPerRack: 2, RacksPerCluster: 1,
		Capacity: resource.Cores(32, 64*1024),
	}), "", 0, nil)
	s.mu.Lock()
	s.tenants["bad"] = bad
	s.mu.Unlock()

	if rec := do(t, s, http.MethodPost, "/t/bad/consolidate", ""); rec.Code != http.StatusInternalServerError {
		t.Errorf("corrupt consolidate = %d, want 500: %s", rec.Code, rec.Body)
	}
	// The cycle hits the corruption in the stranded retry (PackingStats
	// advertises a stranding) and must surface the same 500.
	if rec := do(t, s, http.MethodPost, "/t/bad/rebalance", ""); rec.Code != http.StatusInternalServerError {
		t.Errorf("corrupt rebalance = %d, want 500: %s", rec.Code, rec.Body)
	}
}
