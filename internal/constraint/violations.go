package constraint

import (
	"fmt"
	"sort"

	"aladdin/internal/topology"
	"aladdin/internal/workload"
)

// ViolationKind classifies a constraint violation.
type ViolationKind int

const (
	// AntiAffinityWithin: two containers of one self-anti-affine app
	// share a machine.
	AntiAffinityWithin ViolationKind = iota
	// AntiAffinityAcross: containers of two mutually anti-affine apps
	// share a machine.
	AntiAffinityAcross
	// PriorityInversion: a low-priority container displaced or
	// blocked a high-priority one (recorded by schedulers that allow
	// it; the audit below cannot see scheduling history, only
	// placements, so it reports co-location kinds).
	PriorityInversion
)

// String names the violation kind.
func (k ViolationKind) String() string {
	switch k {
	case AntiAffinityWithin:
		return "anti-affinity-within"
	case AntiAffinityAcross:
		return "anti-affinity-across"
	case PriorityInversion:
		return "priority-inversion"
	default:
		return "unknown"
	}
}

// Violation is one detected constraint violation.
type Violation struct {
	Kind    ViolationKind
	Machine topology.MachineID
	// ContainerA and ContainerB are the conflicting container IDs;
	// for priority inversions B is the victim.
	ContainerA, ContainerB string
}

// String renders a violation for logs.
func (v Violation) String() string {
	return fmt.Sprintf("%s on machine %d: %s vs %s", v.Kind, v.Machine, v.ContainerA, v.ContainerB)
}

// Assignment maps container IDs to machines; Invalid (or absence)
// means undeployed.
type Assignment map[string]topology.MachineID

// AuditAntiAffinity scans a placement for anti-affinity violations.
// It is scheduler-independent: the source of truth for the
// "constraint violations" metrics of Fig. 9.  Each offending pair is
// reported once.
func AuditAntiAffinity(w *workload.Workload, asg Assignment) []Violation {
	// Resolve the constraint structure to app ordinals once: only
	// containers of constrained apps (self anti-affinity or a partner
	// in the symmetric closure) can participate in a violation, and
	// the per-pair test becomes an integer-set probe instead of a
	// string-pair hash.
	apps := w.Apps()
	selfAnti := make([]bool, len(apps))
	constrained := make([]bool, len(apps))
	pairs := make(map[uint64]bool)
	for i, a := range apps {
		selfAnti[i] = a.AntiAffinitySelf
		partners := w.AntiAffinePartners(a.ID)
		constrained[i] = a.AntiAffinitySelf || len(partners) > 0
		for _, p := range partners {
			if j := w.AppIndex(p); i < j {
				pairs[uint64(i)<<32|uint64(j)] = true
			}
		}
	}
	pairKey := func(i, j int) uint64 {
		if i > j {
			i, j = j, i
		}
		return uint64(i)<<32 | uint64(j)
	}

	// Group constrained containers by machine, remembering app
	// ordinals so the pair scan never touches strings.
	type placed struct {
		c   *workload.Container
		app int
	}
	byMachine := make(map[topology.MachineID][]placed)
	for _, c := range w.Containers() {
		ai := w.AppIndex(c.App)
		if ai < 0 || !constrained[ai] {
			continue
		}
		m, ok := asg[c.ID]
		if !ok || m == topology.Invalid {
			continue
		}
		byMachine[m] = append(byMachine[m], placed{c: c, app: ai})
	}
	machines := make([]topology.MachineID, 0, len(byMachine))
	for m := range byMachine {
		machines = append(machines, m)
	}
	sort.Slice(machines, func(i, j int) bool { return machines[i] < machines[j] })

	var out []Violation
	for _, m := range machines {
		cs := byMachine[m]
		sort.Slice(cs, func(i, j int) bool { return cs[i].c.ID < cs[j].c.ID })
		for i := 0; i < len(cs); i++ {
			for j := i + 1; j < len(cs); j++ {
				a, b := cs[i], cs[j]
				if a.app == b.app {
					if selfAnti[a.app] {
						out = append(out, Violation{
							Kind: AntiAffinityWithin, Machine: m,
							ContainerA: a.c.ID, ContainerB: b.c.ID,
						})
					}
				} else if pairs[pairKey(a.app, b.app)] {
					out = append(out, Violation{
						Kind: AntiAffinityAcross, Machine: m,
						ContainerA: a.c.ID, ContainerB: b.c.ID,
					})
				}
			}
		}
	}
	return out
}

// Summary aggregates violations by kind.
type Summary struct {
	Within, Across, Inversions int
}

// Total returns the violation count across kinds.
func (s Summary) Total() int { return s.Within + s.Across + s.Inversions }

// Summarize counts violations by kind.
func Summarize(vs []Violation) Summary {
	var s Summary
	for _, v := range vs {
		switch v.Kind {
		case AntiAffinityWithin:
			s.Within++
		case AntiAffinityAcross:
			s.Across++
		case PriorityInversion:
			s.Inversions++
		}
	}
	return s
}
