package constraint

import (
	"fmt"
	"sort"

	"aladdin/internal/resource"
	"aladdin/internal/workload"
)

// WeightLadder assigns each priority class a weight w_k such that the
// weighted flow w_k·f(i,j) of any higher-priority container strictly
// dominates any lower-priority one (Equations 3–5):
//
//	w_1 = 1
//	w_{k+1} ≥ minimize(x(k+1)) / maximize(x(k))
//
// where x(k) is the set of flow values (here: CPU demand in the
// dimension being compared) of containers at priority k.  In the
// evaluation the paper simply sets w to 16/32/64/128 because the
// maximum per-app requirement is 16 CPUs; NewWeightLadder derives the
// same kind of ladder from the workload itself.
type WeightLadder struct {
	weights map[workload.Priority]int64
	base    int64
}

// NewWeightLadder derives weights from the workload so that
// weight(k) * minDemand(k) > weight(k-1) * maxDemand(k-1) for every
// adjacent pair of occupied priority classes.  base is the paper's
// configured starting multiplier for the second class (16, 32, 64 or
// 128 in Fig. 9); base ≤ 1 derives the minimal safe ladder instead.
func NewWeightLadder(w *workload.Workload, base int64) *WeightLadder {
	// Collect min/max demand per priority class (CPU dimension; the
	// evaluation is CPU-only for fairness against Firmament).
	type span struct{ min, max int64 }
	spans := make(map[workload.Priority]*span)
	for _, a := range w.Apps() {
		d := a.Demand.Dim(resource.CPU)
		if d <= 0 {
			d = 1
		}
		s, ok := spans[a.Priority]
		if !ok {
			spans[a.Priority] = &span{min: d, max: d}
			continue
		}
		if d < s.min {
			s.min = d
		}
		if d > s.max {
			s.max = d
		}
	}
	prios := make([]workload.Priority, 0, len(spans))
	for p := range spans {
		prios = append(prios, p)
	}
	sort.Slice(prios, func(i, j int) bool { return prios[i] < prios[j] })

	l := &WeightLadder{weights: make(map[workload.Priority]int64), base: base}
	var prev int64 = 1
	for i, p := range prios {
		if i == 0 {
			l.weights[p] = 1 // Equation 4: w1 = 1
			prev = 1
			continue
		}
		// Equation 5: the next weight must make this class's minimum
		// weighted flow exceed the previous class's maximum.
		lower := spans[prios[i-1]]
		cur := spans[p]
		need := ceilDiv(prev*lower.max+1, cur.min)
		wk := need
		if wk <= prev {
			// Keep the ladder strictly increasing in weight as well
			// as in weighted flow; Equation 5 is a lower bound, so
			// raising wk is always safe.
			wk = prev + 1
		}
		if base > 1 {
			// Honour the configured base while never dropping below
			// the safe minimum.
			configured := prev * base
			if configured > wk {
				wk = configured
			}
		}
		l.weights[p] = wk
		prev = wk
	}
	return l
}

// Weight returns w_k for the priority class; unknown classes get the
// lowest weight 1 so the ladder stays safe.
func (l *WeightLadder) Weight(p workload.Priority) int64 {
	if w, ok := l.weights[p]; ok {
		return w
	}
	return 1
}

// WeightedFlow returns w_k·f for a container, the quantity Equation 9
// maximises.  The flow value of placing one container is its CPU
// demand (milli-cores) since that is the capacity it consumes.
func (l *WeightLadder) WeightedFlow(c *workload.Container) int64 {
	d := c.Demand.Dim(resource.CPU)
	if d <= 0 {
		d = 1
	}
	return l.Weight(c.Priority) * d
}

// Verify checks the ladder's defining property against the workload:
// for any two containers a, b with a.Priority > b.Priority,
// weightedFlow(a) > weightedFlow(b).  Returns an error naming the
// first violating pair.
func (l *WeightLadder) Verify(w *workload.Workload) error {
	type ext struct {
		minWF int64
		maxWF int64
		seen  bool
	}
	byPrio := make(map[workload.Priority]*ext)
	for _, a := range w.Apps() {
		d := a.Demand.Dim(resource.CPU)
		if d <= 0 {
			d = 1
		}
		wf := l.Weight(a.Priority) * d
		e, ok := byPrio[a.Priority]
		if !ok {
			byPrio[a.Priority] = &ext{minWF: wf, maxWF: wf, seen: true}
			continue
		}
		if wf < e.minWF {
			e.minWF = wf
		}
		if wf > e.maxWF {
			e.maxWF = wf
		}
	}
	prios := make([]workload.Priority, 0, len(byPrio))
	for p := range byPrio {
		prios = append(prios, p)
	}
	sort.Slice(prios, func(i, j int) bool { return prios[i] < prios[j] })
	for i := 1; i < len(prios); i++ {
		lo, hi := byPrio[prios[i-1]], byPrio[prios[i]]
		if hi.minWF <= lo.maxWF {
			return fmt.Errorf("constraint: weight ladder violated: prio %v min weighted flow %d ≤ prio %v max %d",
				prios[i], hi.minWF, prios[i-1], lo.maxWF)
		}
	}
	return nil
}

func ceilDiv(a, b int64) int64 {
	if b <= 0 {
		return a
	}
	return (a + b - 1) / b
}
