// Package constraint implements the non-linear half of Aladdin's
// capacity function: the per-machine container blacklist (Equations
// 7–8), the priority weight ladder (Equations 3–5) and constraint-
// violation accounting shared by all schedulers.
package constraint

import (
	"aladdin/internal/topology"
	"aladdin/internal/workload"
)

// AppRef is an application's dense ordinal inside a Blacklist, the
// key under which per-machine blacklist counters are stored.  Resolve
// it once per search with Ref and reuse it across candidate machines;
// NoApp marks an app unknown to the workload (never blacklisted).
type AppRef int32

// NoApp is the AppRef of an unknown application.
const NoApp AppRef = -1

// blEntry is one (app, count) blacklist counter.  Machines blacklist
// few distinct apps (the anti-affinity partner degrees of what they
// host), so a small app-sorted slice beats any map: admit checks scan
// a handful of contiguous entries with no hashing.
type blEntry struct {
	app   AppRef
	count int32
}

// Blacklist tracks, for every machine, which applications may not be
// deployed there given the containers already placed.  This realises
// the set-based capacity extension of Equation 6: "the symbol ≤ is
// extended to represent c(s,Ti) ∈ c(Nj,t)" — a container only fits a
// machine when it is not in the machine's blacklist (Equation 8).
//
// All state is keyed by app ordinal (AppRef), not app ID: the admit
// check runs once per candidate machine on the scheduler's innermost
// loop, and integer-keyed counters keep it free of string hashing.
type Blacklist struct {
	w *workload.Workload
	// selfAnti[a] reports whether app ordinal a is self-anti-affine.
	selfAnti []bool
	// partners[a] lists the app ordinals anti-affine with a, the
	// symmetric closure precomputed so Place/Release are O(degree).
	partners [][]AppRef
	// perMachine[m] counts, app-sorted, how many placed containers on
	// machine m forbid each app.  Counted (not boolean) so releases
	// can undo placements incrementally during migration.
	perMachine [][]blEntry
}

// NewBlacklist builds the empty blacklist state for a cluster of the
// given size.
func NewBlacklist(w *workload.Workload, machines int) *Blacklist {
	apps := w.Apps()
	b := &Blacklist{
		w:          w,
		selfAnti:   make([]bool, len(apps)),
		partners:   make([][]AppRef, len(apps)),
		perMachine: make([][]blEntry, machines),
	}
	for i, a := range apps {
		b.selfAnti[i] = a.AntiAffinitySelf
		names := w.AntiAffinePartners(a.ID)
		if len(names) == 0 {
			continue
		}
		refs := make([]AppRef, len(names))
		for j, other := range names {
			refs[j] = AppRef(w.AppIndex(other))
		}
		b.partners[i] = refs
	}
	return b
}

// Ref resolves an app ID to its ordinal, NoApp when unknown.
func (b *Blacklist) Ref(appID string) AppRef {
	return AppRef(b.w.AppIndex(appID))
}

// Allows reports whether the container may be deployed on the machine
// under anti-affinity alone (Equation 8: deployed = 1 iff the
// container is not in the machine's blacklist).
func (b *Blacklist) Allows(m topology.MachineID, c *workload.Container) bool {
	return b.AllowsRef(m, b.Ref(c.App))
}

// AllowsRef is Allows with the app ordinal already resolved — the
// form search loops use so the string lookup happens once per
// container, not once per candidate machine.
func (b *Blacklist) AllowsRef(m topology.MachineID, app AppRef) bool {
	for _, e := range b.perMachine[m] {
		if e.app == app {
			return e.count == 0
		}
		if e.app > app {
			break
		}
	}
	return true
}

// BlockedApps returns how many distinct apps are currently blocked on
// the machine (Equation 7's blacklist size).
func (b *Blacklist) BlockedApps(m topology.MachineID) int {
	n := 0
	for _, e := range b.perMachine[m] {
		if e.count > 0 {
			n++
		}
	}
	return n
}

// inc bumps the counter for app on machine m, keeping the entry slice
// app-sorted.
func (b *Blacklist) inc(m topology.MachineID, app AppRef) {
	bm := b.perMachine[m]
	i := 0
	for ; i < len(bm); i++ {
		if bm[i].app == app {
			bm[i].count++
			return
		}
		if bm[i].app > app {
			break
		}
	}
	bm = append(bm, blEntry{})
	copy(bm[i+1:], bm[i:])
	bm[i] = blEntry{app: app, count: 1}
	b.perMachine[m] = bm
}

// dec undoes one inc, dropping the entry when its count reaches zero.
func (b *Blacklist) dec(m topology.MachineID, app AppRef) {
	bm := b.perMachine[m]
	for i := 0; i < len(bm); i++ {
		if bm[i].app == app {
			bm[i].count--
			if bm[i].count <= 0 {
				bm = append(bm[:i], bm[i+1:]...)
				b.perMachine[m] = bm
			}
			return
		}
		if bm[i].app > app {
			return
		}
	}
}

// Place updates blacklists after the container is deployed on the
// machine: every app that is anti-affine with the container's app —
// including the app itself when it has self anti-affinity — joins the
// machine's blacklist (the d = {T1} → blacklist update of §III.C).
func (b *Blacklist) Place(m topology.MachineID, c *workload.Container) {
	b.PlaceRef(m, b.Ref(c.App))
}

// PlaceRef is Place with the app ordinal already resolved — the form
// the scheduler's mutation funnel uses so deploying a container does
// not re-hash its app ID.
func (b *Blacklist) PlaceRef(m topology.MachineID, app AppRef) {
	if app == NoApp {
		return
	}
	if b.selfAnti[app] {
		b.inc(m, app)
	}
	for _, other := range b.partners[app] {
		b.inc(m, other)
	}
}

// Release undoes a Place for the container on the machine.
func (b *Blacklist) Release(m topology.MachineID, c *workload.Container) {
	b.ReleaseRef(m, b.Ref(c.App))
}

// ReleaseRef is Release with the app ordinal already resolved.
func (b *Blacklist) ReleaseRef(m topology.MachineID, app AppRef) {
	if app == NoApp {
		return
	}
	if b.selfAnti[app] {
		b.dec(m, app)
	}
	for _, other := range b.partners[app] {
		b.dec(m, other)
	}
}

// Reset clears all machines' blacklists.
func (b *Blacklist) Reset() {
	for i := range b.perMachine {
		b.perMachine[i] = nil
	}
}
