// Package constraint implements the non-linear half of Aladdin's
// capacity function: the per-machine container blacklist (Equations
// 7–8), the priority weight ladder (Equations 3–5) and constraint-
// violation accounting shared by all schedulers.
package constraint

import (
	"aladdin/internal/topology"
	"aladdin/internal/workload"
)

// Blacklist tracks, for every machine, which applications may not be
// deployed there given the containers already placed.  This realises
// the set-based capacity extension of Equation 6: "the symbol ≤ is
// extended to represent c(s,Ti) ∈ c(Nj,t)" — a container only fits a
// machine when it is not in the machine's blacklist (Equation 8).
type Blacklist struct {
	w *workload.Workload
	// partners caches the symmetric anti-affinity partner list per
	// app so Place/Release are O(partners) rather than O(all pairs).
	partners map[string][]string
	// perMachine[m][app] counts how many placed containers on machine
	// m forbid app.  Counted (not boolean) so releases can undo
	// placements incrementally during migration.
	perMachine []map[string]int
}

// NewBlacklist builds the empty blacklist state for a cluster of the
// given size.
func NewBlacklist(w *workload.Workload, machines int) *Blacklist {
	b := &Blacklist{
		w:          w,
		partners:   make(map[string][]string, len(w.Apps())),
		perMachine: make([]map[string]int, machines),
	}
	for _, a := range w.Apps() {
		b.partners[a.ID] = w.AntiAffinePartners(a.ID)
	}
	return b
}

// Allows reports whether the container may be deployed on the machine
// under anti-affinity alone (Equation 8: deployed = 1 iff the
// container is not in the machine's blacklist).
func (b *Blacklist) Allows(m topology.MachineID, c *workload.Container) bool {
	bm := b.perMachine[m]
	if bm == nil {
		return true
	}
	return bm[c.App] == 0
}

// BlockedApps returns how many distinct apps are currently blocked on
// the machine (Equation 7's blacklist size).
func (b *Blacklist) BlockedApps(m topology.MachineID) int {
	n := 0
	for _, cnt := range b.perMachine[m] {
		if cnt > 0 {
			n++
		}
	}
	return n
}

// Place updates blacklists after the container is deployed on the
// machine: every app that is anti-affine with the container's app —
// including the app itself when it has self anti-affinity — joins the
// machine's blacklist (the d = {T1} → blacklist update of §III.C).
func (b *Blacklist) Place(m topology.MachineID, c *workload.Container) {
	bm := b.perMachine[m]
	if bm == nil {
		bm = make(map[string]int)
		b.perMachine[m] = bm
	}
	app := b.w.App(c.App)
	if app == nil {
		return
	}
	if app.AntiAffinitySelf {
		bm[c.App]++
	}
	for _, other := range b.partners[c.App] {
		bm[other]++
	}
}

// Release undoes a Place for the container on the machine.
func (b *Blacklist) Release(m topology.MachineID, c *workload.Container) {
	bm := b.perMachine[m]
	if bm == nil {
		return
	}
	dec := func(app string) {
		if bm[app] > 0 {
			bm[app]--
			if bm[app] == 0 {
				delete(bm, app)
			}
		}
	}
	app := b.w.App(c.App)
	if app == nil {
		return
	}
	if app.AntiAffinitySelf {
		dec(c.App)
	}
	for _, other := range b.partners[c.App] {
		dec(other)
	}
}

// Reset clears all machines' blacklists.
func (b *Blacklist) Reset() {
	for i := range b.perMachine {
		b.perMachine[i] = nil
	}
}
