package constraint

import (
	"testing"
	"testing/quick"

	"aladdin/internal/resource"
	"aladdin/internal/topology"
	"aladdin/internal/workload"
)

func testWorkload() *workload.Workload {
	return workload.MustNew([]*workload.App{
		{ID: "web", Demand: resource.Cores(4, 8192), Replicas: 3, Priority: workload.PriorityHigh, AntiAffinitySelf: true, AntiAffinityApps: []string{"db"}},
		{ID: "db", Demand: resource.Cores(8, 16384), Replicas: 2, Priority: workload.PriorityLow},
		{ID: "cache", Demand: resource.Cores(2, 4096), Replicas: 2, Priority: workload.PriorityMid},
	})
}

func cont(w *workload.Workload, app string, idx int) *workload.Container {
	for _, c := range w.Containers() {
		if c.App == app && c.Index == idx {
			return c
		}
	}
	panic("container not found")
}

func TestBlacklistSelfAntiAffinity(t *testing.T) {
	w := testWorkload()
	b := NewBlacklist(w, 4)
	web0, web1 := cont(w, "web", 0), cont(w, "web", 1)
	if !b.Allows(0, web0) {
		t.Fatal("fresh machine should allow")
	}
	b.Place(0, web0)
	if b.Allows(0, web1) {
		t.Error("self anti-affinity: sibling must be blocked on same machine")
	}
	if !b.Allows(1, web1) {
		t.Error("sibling must be allowed on a different machine")
	}
}

func TestBlacklistAcrossApps(t *testing.T) {
	w := testWorkload()
	b := NewBlacklist(w, 4)
	web0, db0 := cont(w, "web", 0), cont(w, "db", 0)
	b.Place(0, web0)
	if b.Allows(0, db0) {
		t.Error("web blocks db on machine 0 (declared by web)")
	}
	// And the reverse direction: db placed first blocks web, even
	// though only web declared the pair (symmetry).
	b2 := NewBlacklist(w, 4)
	b2.Place(0, db0)
	if b2.Allows(0, web0) {
		t.Error("db must block web symmetrically")
	}
	cache0 := cont(w, "cache", 0)
	if !b.Allows(0, cache0) {
		t.Error("cache is unconstrained and must be allowed")
	}
}

func TestBlacklistNoSelfConstraint(t *testing.T) {
	w := testWorkload()
	b := NewBlacklist(w, 2)
	db0, db1 := cont(w, "db", 0), cont(w, "db", 1)
	b.Place(0, db0)
	if !b.Allows(0, db1) {
		t.Error("db has no self anti-affinity; siblings may co-locate")
	}
}

func TestBlacklistReleaseRestores(t *testing.T) {
	w := testWorkload()
	b := NewBlacklist(w, 2)
	web0, web1, db0 := cont(w, "web", 0), cont(w, "web", 1), cont(w, "db", 0)
	b.Place(0, web0)
	b.Place(0, web1) // hypothetical violating placement still counts twice
	b.Release(0, web0)
	if b.Allows(0, db0) {
		t.Error("one web remains; db still blocked")
	}
	b.Release(0, web1)
	if !b.Allows(0, db0) {
		t.Error("all webs released; db must be allowed again")
	}
	if !b.Allows(0, web0) {
		t.Error("web itself must be allowed again")
	}
}

func TestBlacklistReset(t *testing.T) {
	w := testWorkload()
	b := NewBlacklist(w, 2)
	b.Place(0, cont(w, "web", 0))
	b.Reset()
	if !b.Allows(0, cont(w, "db", 0)) {
		t.Error("Reset must clear blacklists")
	}
	if b.BlockedApps(0) != 0 {
		t.Error("BlockedApps after reset should be 0")
	}
}

func TestBlockedApps(t *testing.T) {
	w := testWorkload()
	b := NewBlacklist(w, 2)
	b.Place(0, cont(w, "web", 0))
	// web blocks: web (self) and db -> 2 apps
	if got := b.BlockedApps(0); got != 2 {
		t.Errorf("BlockedApps = %d, want 2", got)
	}
	if got := b.BlockedApps(1); got != 0 {
		t.Errorf("BlockedApps(untouched) = %d, want 0", got)
	}
}

func TestBlacklistReleaseOnEmptyMachine(t *testing.T) {
	w := testWorkload()
	b := NewBlacklist(w, 1)
	// Must not panic or underflow.
	b.Release(0, cont(w, "web", 0))
	if !b.Allows(0, cont(w, "db", 0)) {
		t.Error("release on empty machine must be a no-op")
	}
}

func TestWeightLadderDerived(t *testing.T) {
	w := testWorkload()
	l := NewWeightLadder(w, 0) // minimal safe ladder
	if l.Weight(workload.PriorityLow) != 1 {
		t.Errorf("w1 = %d, want 1 (Equation 4)", l.Weight(workload.PriorityLow))
	}
	if err := l.Verify(w); err != nil {
		t.Errorf("derived ladder must verify: %v", err)
	}
	// Strictly increasing across occupied classes.
	if !(l.Weight(workload.PriorityMid) > l.Weight(workload.PriorityLow)) {
		t.Error("mid weight must exceed low weight")
	}
	if !(l.Weight(workload.PriorityHigh) > l.Weight(workload.PriorityMid)) {
		t.Error("high weight must exceed mid weight")
	}
}

func TestWeightLadderConfiguredBase(t *testing.T) {
	w := testWorkload()
	for _, base := range []int64{16, 32, 64, 128} {
		l := NewWeightLadder(w, base)
		if err := l.Verify(w); err != nil {
			t.Errorf("base %d: %v", base, err)
		}
		if got := l.Weight(workload.PriorityMid); got < base {
			t.Errorf("base %d: mid weight %d below configured base", base, got)
		}
	}
}

func TestWeightLadderUnknownPriority(t *testing.T) {
	w := testWorkload()
	l := NewWeightLadder(w, 16)
	if l.Weight(workload.Priority(42)) != 1 {
		t.Error("unknown priority should fall back to weight 1")
	}
}

func TestWeightedFlowDominance(t *testing.T) {
	w := testWorkload()
	l := NewWeightLadder(w, 16)
	// Every high-priority container's weighted flow must exceed every
	// lower-priority one's (§III.B's no-preemption-of-high guarantee).
	for _, a := range w.Containers() {
		for _, b := range w.Containers() {
			if a.Priority > b.Priority {
				if l.WeightedFlow(a) <= l.WeightedFlow(b) {
					t.Fatalf("weighted flow of %s (%v) = %d not > %s (%v) = %d",
						a.ID, a.Priority, l.WeightedFlow(a), b.ID, b.Priority, l.WeightedFlow(b))
				}
			}
		}
	}
}

func TestWeightedFlowZeroDemand(t *testing.T) {
	w := workload.MustNew([]*workload.App{
		{ID: "z", Demand: resource.Vector{}, Replicas: 1},
	})
	l := NewWeightLadder(w, 16)
	if l.WeightedFlow(w.Containers()[0]) < 1 {
		t.Error("zero-demand container should still have positive weighted flow")
	}
}

func TestQuickWeightLadderAlwaysVerifies(t *testing.T) {
	f := func(demands []uint8) bool {
		if len(demands) == 0 {
			return true
		}
		if len(demands) > 12 {
			demands = demands[:12]
		}
		apps := make([]*workload.App, len(demands))
		for i, d := range demands {
			apps[i] = &workload.App{
				ID:       string(rune('a' + i)),
				Demand:   resource.Cores(int64(d%16)+1, 1024),
				Replicas: 1,
				Priority: workload.Priority(i % 3),
			}
		}
		w, err := workload.New(apps)
		if err != nil {
			return false
		}
		return NewWeightLadder(w, 0).Verify(w) == nil &&
			NewWeightLadder(w, 16).Verify(w) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestAuditAntiAffinity(t *testing.T) {
	w := testWorkload()
	asg := Assignment{
		"web/0": 0,
		"web/1": 0, // within violation
		"web/2": 1,
		"db/0":  1, // across violation with web/2
		"db/1":  2,
	}
	vs := AuditAntiAffinity(w, asg)
	s := Summarize(vs)
	if s.Within != 1 {
		t.Errorf("Within = %d, want 1", s.Within)
	}
	if s.Across != 1 {
		t.Errorf("Across = %d, want 1", s.Across)
	}
	if s.Total() != 2 {
		t.Errorf("Total = %d, want 2", s.Total())
	}
}

func TestAuditCleanPlacement(t *testing.T) {
	w := testWorkload()
	asg := Assignment{
		"web/0": 0, "web/1": 1, "web/2": 2,
		"db/0": 3, "db/1": 3, // db may co-locate with itself
		"cache/0": 0, "cache/1": 0, // cache unconstrained
	}
	if vs := AuditAntiAffinity(w, asg); len(vs) != 0 {
		t.Errorf("clean placement reported violations: %v", vs)
	}
}

func TestAuditIgnoresUndeployed(t *testing.T) {
	w := testWorkload()
	asg := Assignment{
		"web/0": 0,
		"web/1": topology.Invalid, // undeployed: not a violation
	}
	if vs := AuditAntiAffinity(w, asg); len(vs) != 0 {
		t.Errorf("undeployed container should not violate: %v", vs)
	}
}

func TestAuditDeterministic(t *testing.T) {
	w := testWorkload()
	asg := Assignment{"web/0": 0, "web/1": 0, "db/0": 0}
	a := AuditAntiAffinity(w, asg)
	b := AuditAntiAffinity(w, asg)
	if len(a) != len(b) {
		t.Fatal("non-deterministic audit")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("non-deterministic audit ordering")
		}
	}
}

func TestViolationStrings(t *testing.T) {
	if AntiAffinityWithin.String() != "anti-affinity-within" ||
		AntiAffinityAcross.String() != "anti-affinity-across" ||
		PriorityInversion.String() != "priority-inversion" {
		t.Error("violation kind names")
	}
	if ViolationKind(9).String() != "unknown" {
		t.Error("unknown kind name")
	}
	v := Violation{Kind: AntiAffinityAcross, Machine: 3, ContainerA: "a/0", ContainerB: "b/0"}
	if v.String() == "" {
		t.Error("violation String should render")
	}
}

func TestSummarizeInversions(t *testing.T) {
	s := Summarize([]Violation{{Kind: PriorityInversion}, {Kind: PriorityInversion}})
	if s.Inversions != 2 || s.Total() != 2 {
		t.Errorf("Summarize inversions = %+v", s)
	}
}

// Property: Allows is exactly the audit's verdict — placing a set of
// containers one machine at a time, a container that Allows() accepts
// never creates an anti-affinity violation.
func TestQuickBlacklistMatchesAudit(t *testing.T) {
	w := testWorkload()
	cs := w.Containers()
	f := func(choices []uint8) bool {
		b := NewBlacklist(w, 3)
		asg := Assignment{}
		for i, c := range cs {
			if i >= len(choices) {
				break
			}
			m := topology.MachineID(choices[i] % 3)
			if b.Allows(m, c) {
				b.Place(m, c)
				asg[c.ID] = m
			}
		}
		return len(AuditAntiAffinity(w, asg)) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
