package experiments

import (
	"fmt"
	"time"

	"aladdin/internal/core"
	"aladdin/internal/parallel"
	"aladdin/internal/sim"
)

// AvailabilityRow is one failure-rate point of the availability sweep:
// the online simulation runs with machine failures injected at the
// given MTBF and reports how well the session absorbs them.
type AvailabilityRow struct {
	// MTBF is the cluster-wide mean time between machine failures, in
	// units of the mean application interarrival (so 10 means one
	// machine dies every ~10 arrivals).  Zero is the failure-free
	// baseline.
	MTBF float64
	// Failures / Recoveries count applied events.
	Failures, Recoveries int
	// Evicted counts containers displaced by failures; Replaced of
	// those found a new machine immediately.
	Evicted, Replaced int
	// SurvivalRate is Replaced/Evicted — the fraction of displaced
	// containers the pipeline rescued (1.0 when nothing was evicted).
	SurvivalRate float64
	// ReplaceP50/ReplaceP99 are re-placement latency percentiles in
	// microseconds (eviction plus re-placement per failure event).
	ReplaceP50, ReplaceP99 float64
	// Violations is the audit count over the whole run — must stay 0.
	Violations int
	// RejectedContainers counts arrival-time rejections (capacity lost
	// to down machines shows up here too).
	RejectedContainers int
}

// AvailabilityResult carries the failure-rate sweep.
type AvailabilityResult struct {
	Rows []AvailabilityRow
}

// Availability measures fault tolerance: the online simulation runs at
// a fixed load while machine failures arrive at increasing rates, and
// each point reports the container survival rate (evicted residents
// re-placed immediately) and the re-placement latency distribution.
// The invariant under test is that the session stays audit-clean at
// every failure rate — fault handling reuses the same pipeline as
// arrivals, so anti-affinity and priority safety cannot regress.
func Availability(s Scale) (*AvailabilityResult, error) {
	w := s.Workload()
	interarrival := time.Second
	// MTBF sweep in interarrival units; 0 = no failures (baseline).
	mtbfs := []float64{0, 100, 30, 10, 3}

	type cell struct {
		m   *sim.OnlineMetrics
		err error
	}
	cells := make([]cell, len(mtbfs))
	parallel.ForEach(len(mtbfs), s.Workers, func(i int) {
		cfg := sim.OnlineConfig{
			Workload:         w,
			Machines:         s.Machines,
			Options:          core.DefaultOptions(),
			Seed:             s.Seed,
			MeanInterarrival: interarrival,
			MTBF:             time.Duration(mtbfs[i] * float64(interarrival)),
			MTTR:             10 * interarrival,
		}
		m, err := sim.RunOnline(cfg)
		cells[i] = cell{m: m, err: err}
	})

	res := &AvailabilityResult{}
	for i, c := range cells {
		if c.err != nil {
			return nil, c.err
		}
		m := c.m
		survival := 1.0
		if m.FailureEvicted > 0 {
			survival = float64(m.FailureReplaced) / float64(m.FailureEvicted)
		}
		res.Rows = append(res.Rows, AvailabilityRow{
			MTBF:               mtbfs[i],
			Failures:           m.Failures,
			Recoveries:         m.Recoveries,
			Evicted:            m.FailureEvicted,
			Replaced:           m.FailureReplaced,
			SurvivalRate:       survival,
			ReplaceP50:         m.ReplaceLatency.Percentile(50),
			ReplaceP99:         m.ReplaceLatency.Percentile(99),
			Violations:         m.Violations,
			RejectedContainers: m.RejectedContainers,
		})
	}
	return res, nil
}

// Tables renders the availability sweep.
func (r *AvailabilityResult) Tables() []*Table {
	t := &Table{
		Title: "Availability: container survival and re-placement latency vs machine failure rate",
		Header: []string{"MTBF (interarrivals)", "failures", "evicted", "replaced",
			"survival", "replace p50 (µs)", "replace p99 (µs)", "violations"},
	}
	for _, row := range r.Rows {
		mtbf := "∞ (baseline)"
		if row.MTBF > 0 {
			mtbf = fmt.Sprintf("%.0f", row.MTBF)
		}
		t.AddRow(mtbf, row.Failures, row.Evicted, row.Replaced,
			fmt.Sprintf("%.1f%%", row.SurvivalRate*100),
			fmt.Sprintf("%.0f", row.ReplaceP50),
			fmt.Sprintf("%.0f", row.ReplaceP99),
			row.Violations)
	}
	return []*Table{t}
}
