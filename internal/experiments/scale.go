// Package experiments regenerates every table and figure of the
// paper's evaluation (§V): workload features (Fig. 8), placement
// quality (Fig. 9), resource efficiency (Fig. 10–11), placement
// latency (Fig. 12) and algorithm overhead (Fig. 13), plus the
// ablations DESIGN.md calls out.  Each experiment returns structured
// rows and renders as a text table so `cmd/experiments` can print the
// same series the paper plots.
package experiments

import (
	"aladdin/internal/trace"
	"aladdin/internal/workload"
)

// Scale fixes the experiment size.  The paper's full scale (10,000
// machines, ~100,000 containers) is expensive on a laptop; scaled
// variants shrink the trace and the cluster together so every ratio
// (containers per machine, constraint pressure) is preserved.
type Scale struct {
	// Name labels outputs.
	Name string
	// TraceFactor divides the Alibaba trace (1 = full).
	TraceFactor int
	// Machines is the cluster size for the fixed-size experiments
	// (Fig. 9, 10, 11); the paper uses 10,000.
	Machines int
	// MachineSweep is the x axis of Fig. 12 and Fig. 13.
	MachineSweep []int
	// Seed drives the synthetic trace.
	Seed int64
	// Workers bounds parallel simulation runs (0 = GOMAXPROCS).
	Workers int
}

// Small is the CI-friendly scale (~1,000 containers, 128 machines —
// the paper's ~10 containers/machine pressure preserved).
func Small() Scale {
	return Scale{
		Name:         "small",
		TraceFactor:  100,
		Machines:     128,
		MachineSweep: []int{32, 64, 96, 128},
		Seed:         42,
	}
}

// Medium is the default CLI scale (~10,000 containers, 1,024
// machines) — a faithful 1:10 shrink of the paper's setting.
func Medium() Scale {
	return Scale{
		Name:         "medium",
		TraceFactor:  10,
		Machines:     1024,
		MachineSweep: []int{128, 256, 512, 1024},
		Seed:         42,
	}
}

// Full is the paper's own scale (~100,000 containers, 10,000
// machines).  Expect multi-minute runtimes.
func Full() Scale {
	return Scale{
		Name:         "full",
		TraceFactor:  1,
		Machines:     10000,
		MachineSweep: []int{1000, 2000, 4000, 8000, 10000},
		Seed:         42,
	}
}

// Workload generates (once per call) the scale's synthetic trace.
func (s Scale) Workload() *workload.Workload {
	return trace.MustGenerate(trace.Scaled(s.Seed, s.TraceFactor))
}
