package experiments

import (
	"fmt"
	"time"

	"aladdin/internal/core"
	"aladdin/internal/sim"
	"aladdin/internal/workload"
)

// Fig13Row is one (order, machines) overhead sample of Aladdin's
// full policy.
type Fig13Row struct {
	Order          workload.ArrivalOrder
	Machines       int
	Elapsed        time.Duration
	Migrations     int
	Consolidations int
	Preempts       int
	Undeployed     int
	Total          int
}

// Fig13Result carries the algorithm-overhead scaling (13a) and the
// migration/preemption cost (13b).
type Fig13Result struct {
	Rows []Fig13Row
}

// Fig13 measures Aladdin+IL+DL's overhead and migration cost across
// cluster sizes and the four arrival characteristics.  Runs are
// sequential to keep timings clean.
func Fig13(s Scale) (*Fig13Result, error) {
	w := s.Workload()
	res := &Fig13Result{}
	for _, order := range workload.AllArrivalOrders() {
		ms, err := sim.SweepMachines(core.NewDefault(), w, s.MachineSweep, order, 1)
		if err != nil {
			return nil, err
		}
		for _, m := range ms {
			res.Rows = append(res.Rows, Fig13Row{
				Order:          m.Order,
				Machines:       m.Machines,
				Elapsed:        m.Elapsed,
				Migrations:     m.Migrations,
				Consolidations: m.Consolidations,
				Preempts:       m.Preemptions,
				Undeployed:     m.Total - m.Deployed,
				Total:          m.Total,
			})
		}
	}
	return res, nil
}

// Tables renders Fig. 13(a) and Fig. 13(b).
func (r *Fig13Result) Tables() []*Table {
	a := &Table{
		Title:  "Fig 13(a): Aladdin algorithm overhead as cluster size grows",
		Header: []string{"order", "machines", "total time", "undeployed"},
	}
	for _, row := range r.Rows {
		a.AddRow(row.Order.String(), row.Machines,
			row.Elapsed.Round(time.Millisecond).String(), row.Undeployed)
	}
	b := &Table{
		Title:  "Fig 13(b): The cost of migration and preemption",
		Header: []string{"order", "machines", "migrations", "consolidations", "preemptions", "migrated %"},
	}
	for _, row := range r.Rows {
		// Percentage of total containers migrated to rescue
		// placements (the paper reports ~1.7% worst case); the
		// consolidation sweep is reported separately.
		pct := 0.0
		if row.Total > 0 {
			pct = 100 * float64(row.Migrations) / float64(row.Total)
		}
		b.AddRow(row.Order.String(), row.Machines, row.Migrations,
			row.Consolidations, row.Preempts, fmt.Sprintf("%.1f", pct))
	}
	return []*Table{a, b}
}
