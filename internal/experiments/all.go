package experiments

import (
	"fmt"
	"io"
)

// TableSource is any experiment result that renders tables.
type TableSource interface {
	Tables() []*Table
}

// RunAll executes every experiment at the given scale and writes the
// rendered tables to w.  Figures run in paper order; latency figures
// run last so earlier parallel runs cannot skew their timings.
func RunAll(s Scale, w io.Writer) error {
	fmt.Fprintf(w, "Aladdin evaluation — scale %q (trace factor %d, %d machines)\n\n",
		s.Name, s.TraceFactor, s.Machines)

	fmt.Fprintln(w, "== Workload features ==")
	writeTables(w, Fig8(s))

	fmt.Fprintln(w, "== Placement quality ==")
	fig9, err := Fig9(s)
	if err != nil {
		return fmt.Errorf("fig9: %w", err)
	}
	writeTables(w, fig9)

	fmt.Fprintln(w, "== Resource efficiency ==")
	fig10, err := Fig10(s)
	if err != nil {
		return fmt.Errorf("fig10: %w", err)
	}
	writeTables(w, fig10)

	fmt.Fprintln(w, "== Placement latency ==")
	fig12, err := Fig12(s)
	if err != nil {
		return fmt.Errorf("fig12: %w", err)
	}
	writeTables(w, fig12)

	fmt.Fprintln(w, "== Algorithm overhead ==")
	fig13, err := Fig13(s)
	if err != nil {
		return fmt.Errorf("fig13: %w", err)
	}
	writeTables(w, fig13)

	fmt.Fprintln(w, "== Ablations ==")
	abl, err := Ablation(s)
	if err != nil {
		return fmt.Errorf("ablation: %w", err)
	}
	writeTables(w, abl)

	fmt.Fprintln(w, "== Extension: heterogeneous cluster ==")
	het, err := Hetero(s)
	if err != nil {
		return fmt.Errorf("hetero: %w", err)
	}
	writeTables(w, het)

	fmt.Fprintln(w, "== Availability under machine failures ==")
	av, err := Availability(s)
	if err != nil {
		return fmt.Errorf("availability: %w", err)
	}
	writeTables(w, av)

	fmt.Fprintln(w, "== Scalability ==")
	sc, err := Scalability(s)
	if err != nil {
		return fmt.Errorf("scalability: %w", err)
	}
	writeTables(w, sc)

	fmt.Fprintln(w, "== Dimension-count ablation ==")
	dim, err := Dimensions(s)
	if err != nil {
		return fmt.Errorf("dimensions: %w", err)
	}
	writeTables(w, dim)
	return nil
}

func writeTables(w io.Writer, src TableSource) {
	for _, t := range src.Tables() {
		fmt.Fprintln(w, t.Render())
	}
}
