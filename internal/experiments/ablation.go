package experiments

import (
	"fmt"
	"time"

	"aladdin/internal/core"
	"aladdin/internal/sim"
	"aladdin/internal/workload"
)

// AblationRow is one Aladdin variant's outcome.
type AblationRow struct {
	Variant     string
	Elapsed     time.Duration
	Undeployed  int
	Violations  int
	Inversions  int
	Migrations  int
	Preemptions int
}

// AblationResult covers the design choices DESIGN.md lists: IL, DL,
// the weight ladder, migration and preemption.
type AblationResult struct {
	Rows []AblationRow
}

// Ablation runs Aladdin variants with individual mechanisms disabled.
func Ablation(s Scale) (*AblationResult, error) {
	w := s.Workload()
	variants := []struct {
		name string
		mut  func(*core.Options)
	}{
		{"full (IL+DL+weights+mig+preempt)", func(o *core.Options) {}},
		{"no IL", func(o *core.Options) { o.IsomorphismLimiting = false }},
		{"no DL", func(o *core.Options) { o.DepthLimiting = false }},
		{"no IL, no DL", func(o *core.Options) {
			o.IsomorphismLimiting = false
			o.DepthLimiting = false
		}},
		{"no weights (raw flows)", func(o *core.Options) { o.DisableWeights = true }},
		{"no migration", func(o *core.Options) { o.Migration = false }},
		{"no preemption", func(o *core.Options) { o.Preemption = false }},
	}
	res := &AblationResult{}
	for _, v := range variants {
		opts := core.DefaultOptions()
		v.mut(&opts)
		// The ablation runs on a deliberately tight cluster (2/3 of
		// the scale's) so the rescue mechanisms actually fire; on a
		// roomy cluster every variant trivially succeeds.
		m, err := sim.Run(sim.Config{
			Scheduler: core.New(opts),
			Workload:  w,
			Machines:  s.Machines * 2 / 3,
			Order:     workload.OrderCLP, // lows first: stresses weights & preemption
		})
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, AblationRow{
			Variant:     v.name,
			Elapsed:     m.Elapsed,
			Undeployed:  m.Total - m.Deployed,
			Violations:  m.ViolationsWithin + m.ViolationsAcross,
			Inversions:  m.Inversions,
			Migrations:  m.Migrations,
			Preemptions: m.Preemptions,
		})
	}
	return res, nil
}

// Tables renders the ablation matrix.
func (r *AblationResult) Tables() []*Table {
	t := &Table{
		Title:  "Ablation: Aladdin mechanisms (CLP order)",
		Header: []string{"variant", "time", "undeployed", "anti-affinity viol", "inversions", "migrations", "preemptions"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Variant, row.Elapsed.Round(time.Millisecond).String(),
			row.Undeployed, row.Violations, row.Inversions,
			row.Migrations, row.Preemptions)
	}
	return []*Table{t}
}

// Row returns the named variant's row.
func (r *AblationResult) Row(name string) (AblationRow, error) {
	for _, row := range r.Rows {
		if row.Variant == name {
			return row, nil
		}
	}
	return AblationRow{}, fmt.Errorf("experiments: no ablation variant %q", name)
}
