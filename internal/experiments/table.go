package experiments

import (
	"fmt"
	"strings"
)

// Table is a rendered experiment result: a title, a header row and
// data rows, printable as aligned text.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a row built from stringable values.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render prints the table with aligned columns.
func (t *Table) Render() string {
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
		b.WriteString(strings.Repeat("=", len(t.Title)))
		b.WriteByte('\n')
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			pad := 0
			if i < len(widths) {
				pad = widths[i] - len(cell)
			}
			b.WriteString(cell)
			b.WriteString(strings.Repeat(" ", pad))
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	if total > 2 {
		b.WriteString(strings.Repeat("-", total-2))
		b.WriteByte('\n')
	}
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}
