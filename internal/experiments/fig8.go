package experiments

import (
	"fmt"

	"aladdin/internal/stats"
	"aladdin/internal/workload"
)

// Fig8Result reproduces the workload-features figure: the CDF of
// container numbers per application (8a) and the constraint counts
// (8b).
type Fig8Result struct {
	Stats workload.Stats
	// CDF holds (replicas, cumulative apps) points for Fig. 8a.
	CDF [][2]float64
}

// Fig8 computes workload features for the scale's trace.
func Fig8(s Scale) *Fig8Result {
	w := s.Workload()
	st := w.ComputeStats()
	cdf := stats.NewCDFInts(w.ReplicaCDF())
	pts := cdf.Points(20)
	// Express the y axis in application counts like the paper.
	scaled := make([][2]float64, len(pts))
	for i, p := range pts {
		scaled[i] = [2]float64{p[0], p[1] * float64(st.Apps)}
	}
	return &Fig8Result{Stats: st, CDF: scaled}
}

// Tables renders Fig. 8a and 8b.
func (r *Fig8Result) Tables() []*Table {
	a := &Table{
		Title:  "Fig 8(a): CDF of container numbers per application",
		Header: []string{"containers/app ≤", "applications"},
	}
	for _, p := range r.CDF {
		a.AddRow(fmt.Sprintf("%.0f", p[0]), fmt.Sprintf("%.0f", p[1]))
	}
	b := &Table{
		Title:  "Fig 8(b): The number of constraints",
		Header: []string{"type", "count", "fraction"},
	}
	st := r.Stats
	frac := func(n int) string {
		if st.Apps == 0 {
			return "0%"
		}
		return fmt.Sprintf("%.0f%%", 100*float64(n)/float64(st.Apps))
	}
	b.AddRow("Total applications", st.Apps, "100%")
	b.AddRow("Applications with anti-affinity", st.AntiAffinityApps, frac(st.AntiAffinityApps))
	b.AddRow("Applications with priority", st.PriorityApps, frac(st.PriorityApps))
	b.AddRow("Total containers", st.Containers, "-")
	b.AddRow("Single-instance applications", st.SingleInstanceApps, frac(st.SingleInstanceApps))
	b.AddRow("Applications with <50 containers", st.AppsUnder50, frac(st.AppsUnder50))
	b.AddRow("Applications with >2000 containers", st.AppsOver2000, frac(st.AppsOver2000))
	b.AddRow("Max demand", st.MaxDemand.String(), "-")
	return []*Table{a, b}
}
