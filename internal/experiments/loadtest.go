package experiments

import (
	"fmt"
	"time"

	"aladdin/internal/core"
	"aladdin/internal/loadtest"
	"aladdin/internal/resource"
	"aladdin/internal/server"
	"aladdin/internal/topology"
	"aladdin/internal/workload"
)

// LoadTestRow compares one client-count level of the HTTP sweep:
// the same single-container request stream pushed through the direct
// per-request path and through the coalescing batcher.
type LoadTestRow struct {
	Clients        int
	DirectRPS      float64
	CoalescedRPS   float64
	Speedup        float64
	DirectP50US    float64
	DirectP99US    float64
	CoalescedP50US float64
	CoalescedP99US float64
}

// LoadTestResult is the request-coalescing throughput sweep: how much
// solver-batch amortisation buys at increasing client concurrency.
type LoadTestResult struct {
	Requests int
	Rows     []LoadTestRow
}

// loadServer builds a fresh server over a flat n-container universe,
// optionally with coalescing, plus the request IDs to place.
func loadServer(n int, coalesced bool) (*server.Server, []string) {
	w := workload.MustNew([]*workload.App{
		{ID: "svc", Demand: resource.Cores(1, 2048), Replicas: n},
	})
	cl := topology.New(topology.Config{
		Machines: n / 16, MachinesPerRack: 8, RacksPerCluster: 4,
		Capacity: resource.Cores(32, 64*1024),
	})
	sess := core.NewSession(core.DefaultOptions(), w, cl)
	var opts []server.Option
	if coalesced {
		opts = append(opts, server.WithCoalescing(server.CoalesceConfig{
			Window: time.Millisecond, MaxBatch: 32, MaxQueue: 4096,
		}))
	}
	s := server.New(sess, w, cl, opts...)
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("svc/%d", i)
	}
	return s, ids
}

// LoadTest sweeps client concurrency over the in-process HTTP server,
// fresh sessions per cell so every run places the same containers
// onto an empty cluster.
func LoadTest(s Scale) (*LoadTestResult, error) {
	n := s.Machines * 8
	if n < 256 {
		n = 256
	}
	res := &LoadTestResult{Requests: n}
	for _, clients := range []int{1, 8, 32} {
		direct, ids := loadServer(n, false)
		rd := loadtest.Run(loadtest.Config{Clients: clients, IDs: ids}, loadtest.HandlerTarget{Handler: direct})
		direct.Drain()
		if !rd.OK(200) {
			return nil, fmt.Errorf("loadtest direct c=%d: statuses %v, %d errors", clients, rd.StatusCounts, rd.Errors)
		}
		co, ids := loadServer(n, true)
		rc := loadtest.Run(loadtest.Config{Clients: clients, IDs: ids}, loadtest.HandlerTarget{Handler: co})
		co.Drain()
		if !rc.OK(200) {
			return nil, fmt.Errorf("loadtest coalesced c=%d: statuses %v, %d errors", clients, rc.StatusCounts, rc.Errors)
		}
		row := LoadTestRow{
			Clients:        clients,
			DirectRPS:      rd.Throughput,
			CoalescedRPS:   rc.Throughput,
			DirectP50US:    rd.P50US,
			DirectP99US:    rd.P99US,
			CoalescedP50US: rc.P50US,
			CoalescedP99US: rc.P99US,
		}
		if rd.Throughput > 0 {
			row.Speedup = rc.Throughput / rd.Throughput
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Tables renders the sweep.
func (r *LoadTestResult) Tables() []*Table {
	t := &Table{
		Title: fmt.Sprintf("Request coalescing: HTTP throughput, %d single-container requests", r.Requests),
		Header: []string{"clients", "direct req/s", "coalesced req/s", "speedup",
			"direct p50/p99 us", "coalesced p50/p99 us"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Clients,
			fmt.Sprintf("%.0f", row.DirectRPS),
			fmt.Sprintf("%.0f", row.CoalescedRPS),
			fmt.Sprintf("%.2fx", row.Speedup),
			fmt.Sprintf("%.0f/%.0f", row.DirectP50US, row.DirectP99US),
			fmt.Sprintf("%.0f/%.0f", row.CoalescedP50US, row.CoalescedP99US))
	}
	return []*Table{t}
}
