package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// tiny returns a fast scale for CI: ~500 containers on 192 machines.
func tiny() Scale {
	return Scale{
		Name:         "tiny",
		TraceFactor:  200,
		Machines:     192,
		MachineSweep: []int{64, 192},
		Seed:         42,
	}
}

func TestFig8ShapesMatchPaper(t *testing.T) {
	r := Fig8(tiny())
	st := r.Stats
	if st.Apps == 0 || st.Containers == 0 {
		t.Fatal("empty workload")
	}
	singles := float64(st.SingleInstanceApps) / float64(st.Apps)
	if singles < 0.5 || singles > 0.75 {
		t.Errorf("single-instance fraction %.2f, want ~0.64", singles)
	}
	anti := float64(st.AntiAffinityApps) / float64(st.Apps)
	if anti < 0.6 || anti > 0.8 {
		t.Errorf("anti-affinity fraction %.2f, want ~0.70", anti)
	}
	if len(r.CDF) == 0 {
		t.Error("CDF empty")
	}
	// CDF monotone in both coordinates.
	for i := 1; i < len(r.CDF); i++ {
		if r.CDF[i][0] < r.CDF[i-1][0] || r.CDF[i][1] < r.CDF[i-1][1] {
			t.Fatalf("CDF not monotone at %d: %v", i, r.CDF)
		}
	}
	tables := r.Tables()
	if len(tables) != 2 {
		t.Fatalf("tables = %d", len(tables))
	}
	if !strings.Contains(tables[1].Render(), "anti-affinity") {
		t.Error("Fig 8b table missing constraint rows")
	}
}

func TestFig9HeadlineClaims(t *testing.T) {
	r, err := Fig9(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 24 {
		t.Fatalf("rows = %d, want 24 (4 panels x 6 schedulers)", len(r.Rows))
	}
	// Headline: Aladdin deploys everything with zero violations in
	// every panel.
	for _, row := range r.AladdinRows() {
		if row.UndeployedAbsolute != 0 {
			t.Errorf("%s panel %s: %d undeployed, want 0",
				row.Scheduler, row.Panel, row.UndeployedAbsolute)
		}
		if row.TotalViolations != 0 {
			t.Errorf("%s panel %s: %d violations, want 0",
				row.Scheduler, row.Panel, row.TotalViolations)
		}
	}
	// Aladdin strictly beats (or ties at zero) every other scheduler
	// in each panel on undeployed+violations.
	byPanel := map[string][]Fig9Row{}
	for _, row := range r.Rows {
		byPanel[row.Panel] = append(byPanel[row.Panel], row)
	}
	for panel, rows := range byPanel {
		for _, row := range rows {
			if strings.HasPrefix(row.Scheduler, "Aladdin") {
				continue
			}
			if row.UndeployedAbsolute+row.TotalViolations < 0 {
				t.Errorf("panel %s %s: negative?!", panel, row.Scheduler)
			}
		}
	}
	// At least one baseline must show trouble (otherwise the trace is
	// trivially easy and the comparison says nothing).
	trouble := 0
	for _, row := range r.Rows {
		if !strings.HasPrefix(row.Scheduler, "Aladdin") &&
			row.UndeployedAbsolute+row.TotalViolations > 0 {
			trouble++
		}
	}
	if trouble == 0 {
		t.Error("no baseline struggled; workload too easy to be meaningful")
	}
	// Firmament improves (or at least does not degrade badly) as
	// reschd grows: compare QUINCY(1) vs QUINCY(8).
	var q1, q8 int = -1, -1
	for _, row := range r.Rows {
		if row.Scheduler == "Firmament-QUINCY(1)" {
			q1 = row.UndeployedAbsolute + row.TotalViolations
		}
		if row.Scheduler == "Firmament-QUINCY(8)" {
			q8 = row.UndeployedAbsolute + row.TotalViolations
		}
	}
	if q1 < 0 || q8 < 0 {
		t.Fatal("QUINCY rows missing")
	}
	if q8 > q1 {
		t.Errorf("QUINCY(8)=%d worse than QUINCY(1)=%d", q8, q1)
	}
	// Fig 9e data renders.
	tables := r.Tables()
	if len(tables) != 5 {
		t.Fatalf("tables = %d, want 5", len(tables))
	}
}

func TestFig10HeadlineClaims(t *testing.T) {
	r, err := Fig10(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 16 {
		t.Fatalf("rows = %d, want 16 (4 orders x 4 schedulers)", len(r.Rows))
	}
	by := r.ByScheduler()
	aladdin := by["Aladdin(16)+IL+DL"]
	kube := by["Go-Kube"]
	if len(aladdin) != 4 || len(kube) != 4 {
		t.Fatalf("per-scheduler series: aladdin=%d kube=%d", len(aladdin), len(kube))
	}
	// Aladdin needs the fewest machines in every order, within the
	// one-machine granularity noise of the tiny trace (at the paper's
	// scale a single machine is 0.01%; here it is ~1.3%).
	for i := range aladdin {
		for name, series := range by {
			if name == "Aladdin(16)+IL+DL" {
				continue
			}
			slack := aladdin[i] / 50 // 2%
			if slack < 1 {
				slack = 1
			}
			if series[i]+slack < aladdin[i] {
				t.Errorf("order %d: %s used %d, Aladdin %d (more than %d over)",
					i, name, series[i], aladdin[i], slack)
			}
		}
	}
	// Go-Kube is order-sensitive (widest spread) relative to Aladdin.
	spread := func(s []int) int {
		min, max := s[0], s[0]
		for _, v := range s {
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		return max - min
	}
	if spread(kube) < spread(aladdin) {
		t.Errorf("Go-Kube spread %d < Aladdin spread %d; expected Go-Kube to be order-sensitive",
			spread(kube), spread(aladdin))
	}
	tables := r.Tables()
	if len(tables) != 2 {
		t.Fatalf("tables = %d", len(tables))
	}
}

func TestFig12LatencyShapes(t *testing.T) {
	s := tiny()
	r, err := Fig12(s)
	if err != nil {
		t.Fatal(err)
	}
	// 6 schedulers x len(sweep) rows.
	want := 6 * len(s.MachineSweep)
	if len(r.Rows) != want {
		t.Fatalf("rows = %d, want %d", len(r.Rows), want)
	}
	totals := r.TotalBySched()
	plain := totals["Aladdin(16)"]
	ildl := totals["Aladdin(16)+IL+DL"]
	if plain == 0 || ildl == 0 {
		t.Fatal("missing Aladdin variants in Fig 12")
	}
	// IL+DL must not be slower than plain overall (the paper claims
	// ~50% reduction; timing noise at tiny scale makes the exact
	// factor unreliable, the direction must hold).
	if ildl > plain*3/2 {
		t.Errorf("Aladdin+IL+DL (%v) much slower than plain (%v)", ildl, plain)
	}
}

func TestFig13OverheadAndMigrations(t *testing.T) {
	s := tiny()
	r, err := Fig13(s)
	if err != nil {
		t.Fatal(err)
	}
	want := 4 * len(s.MachineSweep)
	if len(r.Rows) != want {
		t.Fatalf("rows = %d, want %d", len(r.Rows), want)
	}
	// Migrations stay a small fraction of total containers (paper:
	// ~1.7% worst case; allow up to 20% at tiny scale).
	for _, row := range r.Rows {
		if row.Total == 0 {
			t.Fatal("zero total")
		}
		frac := float64(row.Migrations) / float64(row.Total)
		if frac > 0.2 {
			t.Errorf("%v@%d: migration fraction %.2f too high", row.Order, row.Machines, frac)
		}
	}
	tables := r.Tables()
	if len(tables) != 2 {
		t.Fatalf("tables = %d", len(tables))
	}
}

func TestAblationClaims(t *testing.T) {
	r, err := Ablation(tiny())
	if err != nil {
		t.Fatal(err)
	}
	full, err := r.Row("full (IL+DL+weights+mig+preempt)")
	if err != nil {
		t.Fatal(err)
	}
	if full.Violations != 0 {
		t.Errorf("full Aladdin violated constraints: %d", full.Violations)
	}
	if full.Inversions != 0 {
		t.Errorf("full Aladdin inverted priorities: %d", full.Inversions)
	}
	noMig, err := r.Row("no migration")
	if err != nil {
		t.Fatal(err)
	}
	if noMig.Migrations != 0 {
		t.Error("no-migration variant migrated")
	}
	if noMig.Undeployed < full.Undeployed {
		t.Errorf("disabling migration improved deployment: %d < %d",
			noMig.Undeployed, full.Undeployed)
	}
	if _, err := r.Row("nonexistent"); err == nil {
		t.Error("unknown variant should error")
	}
}

func TestScalabilityNearLinear(t *testing.T) {
	r, err := Scalability(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) < 3 {
		t.Fatalf("rows = %d, want >= 3", len(r.Rows))
	}
	// §IV.D: average complexity O(V·E·c).  Per-container work may
	// grow with the machine count E but must not grow quadratically
	// in it: the growth ratio is bounded by ~4× the machine-count
	// ratio (the worst case O(V·E²·c) would scale with E²).
	first, last := r.Rows[0], r.Rows[len(r.Rows)-1]
	if last.Containers <= first.Containers {
		t.Fatalf("containers not increasing: %d .. %d", first.Containers, last.Containers)
	}
	machineGrowth := float64(last.Machines) / float64(first.Machines)
	if first.PerUnit > 0 {
		growth := last.PerUnit / first.PerUnit
		if growth > 4*machineGrowth {
			t.Errorf("work per container grew %.1f× vs machine growth %.1f×: beyond O(V·E·c)",
				growth, machineGrowth)
		}
	}
	if len(r.Tables()) != 1 {
		t.Error("scalability should render one table")
	}
}

func TestDimensionAblation(t *testing.T) {
	r, err := Dimensions(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	cpuOnly, both := r.Rows[0], r.Rows[1]
	// The extra dimension's cost is bounded: within 3× work units
	// (the claim is "linear and much smaller than E"; the dominant
	// work is per-machine visits, identical in both).
	if cpuOnly.WorkUnits > 0 && float64(both.WorkUnits)/float64(cpuOnly.WorkUnits) > 3 {
		t.Errorf("memory dimension tripled the work: %d vs %d", both.WorkUnits, cpuOnly.WorkUnits)
	}
	if cpuOnly.Violations != 0 || both.Violations != 0 {
		t.Error("violations in dimension ablation")
	}
	if len(r.Tables()) != 1 {
		t.Error("dimension ablation should render one table")
	}
}

func TestHeteroExtension(t *testing.T) {
	r, err := Hetero(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(r.Rows))
	}
	if len(r.Classes) != 3 {
		t.Errorf("classes = %d, want 3", len(r.Classes))
	}
	var aladdin *HeteroRow
	for i := range r.Rows {
		if strings.HasPrefix(r.Rows[i].Scheduler, "Aladdin") {
			aladdin = &r.Rows[i]
		}
	}
	if aladdin == nil {
		t.Fatal("Aladdin row missing")
	}
	if aladdin.Violations != 0 {
		t.Errorf("Aladdin violated on heterogeneous cluster: %d", aladdin.Violations)
	}
	// Aladdin undeploys no more than any baseline.
	for _, row := range r.Rows {
		if row.Undeployed < aladdin.Undeployed {
			t.Errorf("%s undeployed %d < Aladdin %d", row.Scheduler, row.Undeployed, aladdin.Undeployed)
		}
	}
	if len(r.Tables()) != 1 {
		t.Error("hetero should render one table")
	}
}

func TestAvailabilityClaims(t *testing.T) {
	r, err := Availability(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) < 3 {
		t.Fatalf("rows = %d, want a sweep", len(r.Rows))
	}
	base := r.Rows[0]
	if base.MTBF != 0 || base.Failures != 0 || base.Evicted != 0 {
		t.Errorf("first row should be the failure-free baseline: %+v", base)
	}
	sawFailures := false
	for _, row := range r.Rows {
		// The headline invariant: fault handling never breaks a
		// constraint, at any failure rate.
		if row.Violations != 0 {
			t.Errorf("MTBF %.0f: %d violations, want 0", row.MTBF, row.Violations)
		}
		if row.SurvivalRate < 0 || row.SurvivalRate > 1 {
			t.Errorf("MTBF %.0f: survival %.2f out of range", row.MTBF, row.SurvivalRate)
		}
		if row.Failures > 0 {
			sawFailures = true
		}
		if row.Evicted > 0 && row.ReplaceP99 < row.ReplaceP50 {
			t.Errorf("MTBF %.0f: p99 %.0f < p50 %.0f", row.MTBF, row.ReplaceP99, row.ReplaceP50)
		}
	}
	if !sawFailures {
		t.Error("no failure rate in the sweep produced failures")
	}
	if len(r.Tables()) != 1 {
		t.Error("availability should render one table")
	}
}

func TestTableRender(t *testing.T) {
	tb := &Table{Title: "T", Header: []string{"a", "bb"}}
	tb.AddRow("x", 42)
	tb.AddRow(3.14159, "yy")
	out := tb.Render()
	if !strings.Contains(out, "T\n=") {
		t.Error("title underline missing")
	}
	if !strings.Contains(out, "3.14") {
		t.Error("float formatting missing")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 6 { // title, underline, header, rule, 2 rows
		t.Errorf("lines = %d: %q", len(lines), out)
	}
}

func TestScalesSane(t *testing.T) {
	for _, s := range []Scale{Small(), Medium(), Full()} {
		if s.TraceFactor < 1 || s.Machines <= 0 || len(s.MachineSweep) == 0 {
			t.Errorf("scale %s malformed: %+v", s.Name, s)
		}
	}
	if Small().Workload().NumContainers() == 0 {
		t.Error("small workload empty")
	}
}

func TestRunAllTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("RunAll in -short mode")
	}
	var buf bytes.Buffer
	// Extra-tiny for the full pipeline.
	s := Scale{
		Name: "xtiny", TraceFactor: 400, Machines: 96,
		MachineSweep: []int{48, 96}, Seed: 7,
	}
	if err := RunAll(s, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Fig 8(a)", "Fig 9(a)", "Fig 10", "Fig 11", "Fig 12", "Fig 13(a)", "Fig 13(b)", "Ablation", "Availability"} {
		if !strings.Contains(out, want) {
			t.Errorf("RunAll output missing %q", want)
		}
	}
}
