package experiments

import (
	"time"

	"aladdin/internal/core"
	"aladdin/internal/resource"
	"aladdin/internal/sim"
	"aladdin/internal/workload"
)

// DimensionRow is one variant of the dimension-count ablation.
type DimensionRow struct {
	Variant    string
	Elapsed    time.Duration
	WorkUnits  int64
	Undeployed int
	Violations int
}

// DimensionResult reproduces the §IV.D claim: "adding additional
// constraints such as memory ... leads to increased c.  However, the
// effect of c on time complexity is linear and much smaller than E."
// The paper's evaluation is CPU-only (for fairness against
// Firmament); this ablation runs the same trace with the memory
// dimension zeroed versus active and compares the cost.
type DimensionResult struct {
	Rows []DimensionRow
}

// Dimensions runs the ablation.
func Dimensions(s Scale) (*DimensionResult, error) {
	full := s.Workload()

	// CPU-only variant: same apps with memory demands zeroed.
	var cpuApps []*workload.App
	for _, a := range full.Apps() {
		clone := *a
		clone.Demand = resource.Milli(a.Demand.Dim(resource.CPU), 0)
		cpuApps = append(cpuApps, &clone)
	}
	cpuOnly, err := workload.New(cpuApps)
	if err != nil {
		return nil, err
	}

	res := &DimensionResult{}
	for _, v := range []struct {
		name string
		w    *workload.Workload
	}{
		{"cpu-only (c=1, the paper's setting)", cpuOnly},
		{"cpu+memory (c=2)", full},
	} {
		m, err := sim.Run(sim.Config{
			Scheduler: core.NewDefault(),
			Workload:  v.w,
			Machines:  s.Machines,
			Order:     workload.OrderInterleaved,
		})
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, DimensionRow{
			Variant:    v.name,
			Elapsed:    m.Elapsed,
			WorkUnits:  m.WorkUnits,
			Undeployed: m.Total - m.Deployed,
			Violations: m.TotalViolations(),
		})
	}
	return res, nil
}

// Tables renders the ablation.
func (r *DimensionResult) Tables() []*Table {
	t := &Table{
		Title:  "Ablation: capacity dimension count c (§IV.D)",
		Header: []string{"variant", "time", "work units", "undeployed", "violations"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Variant, row.Elapsed.Round(time.Millisecond).String(),
			row.WorkUnits, row.Undeployed, row.Violations)
	}
	return []*Table{t}
}
