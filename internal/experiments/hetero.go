package experiments

import (
	"fmt"
	"time"

	"aladdin/internal/resource"
	"aladdin/internal/sched"
	"aladdin/internal/topology"
	"aladdin/internal/workload"
)

// HeteroRow is one scheduler's outcome on the heterogeneous cluster.
type HeteroRow struct {
	Scheduler    string
	Undeployed   int
	Violations   int
	UsedMachines int
	MeanUtil     float64
	Elapsed      time.Duration
}

// HeteroResult is the future-work extension experiment (§VII: "We
// will extend the flow-based model to support heterogeneous
// workloads"): the same trace scheduled onto a three-generation
// cluster.  The flow model needs no change — per-machine capacity
// vectors already carry heterogeneity — so this measures how well
// each scheduler exploits mixed hardware.
type HeteroResult struct {
	Rows    []HeteroRow
	Classes []resource.Vector
}

// Hetero runs the heterogeneous-cluster extension experiment.  The
// cluster has the same total CPU as the scale's homogeneous one,
// split across three machine generations.
func Hetero(s Scale) (*HeteroResult, error) {
	w := s.Workload()
	// Same total CPU as s.Machines 32-core machines: big machines are
	// double, old machines half.
	big := s.Machines / 8
	old := s.Machines / 4
	std := s.Machines - big*2 - old/2
	if std < 1 {
		std = 1
	}
	build := func() (*topology.Cluster, error) {
		return topology.NewHeterogeneous(topology.HeteroConfig{
			Classes: []topology.MachineClass{
				{Name: "gen3-64c", Count: big, Capacity: resource.Cores(64, 128*1024)},
				{Name: "gen2-32c", Count: std, Capacity: resource.Cores(32, 64*1024)},
				{Name: "gen1-16c", Count: old, Capacity: resource.Cores(16, 32*1024)},
			},
			MachinesPerRack: 16,
			RacksPerCluster: 8,
		})
	}
	res := &HeteroResult{}
	for _, sch := range contenders() {
		cl, err := build()
		if err != nil {
			return nil, err
		}
		if res.Classes == nil {
			res.Classes = cl.Classes()
		}
		r, err := runOn(sch, w, cl)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, r)
	}
	return res, nil
}

func runOn(sch sched.Scheduler, w *workload.Workload, cl *topology.Cluster) (HeteroRow, error) {
	r, err := sch.Schedule(w, cl, w.Arrange(workload.OrderInterleaved))
	if err != nil {
		return HeteroRow{}, err
	}
	if err := r.Verify(w, cl); err != nil {
		return HeteroRow{}, err
	}
	_, mean, _ := cl.UtilizationRange()
	return HeteroRow{
		Scheduler:    r.Scheduler,
		Undeployed:   len(r.Undeployed),
		Violations:   r.ViolationSummary().Total(),
		UsedMachines: cl.UsedMachines(),
		MeanUtil:     mean,
		Elapsed:      r.Elapsed,
	}, nil
}

// Tables renders the extension experiment.
func (r *HeteroResult) Tables() []*Table {
	t := &Table{
		Title:  "Extension: heterogeneous cluster (3 machine generations)",
		Header: []string{"scheduler", "undeployed", "violations", "used machines", "mean util", "time"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Scheduler, row.Undeployed, row.Violations, row.UsedMachines,
			fmt.Sprintf("%.0f%%", row.MeanUtil*100),
			row.Elapsed.Round(time.Millisecond).String())
	}
	return []*Table{t}
}
