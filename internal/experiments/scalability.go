package experiments

import (
	"fmt"
	"time"

	"aladdin/internal/core"
	"aladdin/internal/sim"
	"aladdin/internal/trace"
	"aladdin/internal/workload"
)

// ScalabilityRow is one (trace size, cluster size) measurement of
// Aladdin with the workload/cluster ratio held constant.
type ScalabilityRow struct {
	Containers int
	Machines   int
	Elapsed    time.Duration
	// WorkUnits is the deterministic effort counter (machine vertices
	// explored); unlike Elapsed it is immune to machine noise, so the
	// linearity claim is asserted on it.
	WorkUnits  int64
	PerUnit    float64 // WorkUnits per container
	Undeployed int
}

// ScalabilityResult checks the §IV.D complexity claim: Aladdin's
// average cost is O(V·E·c), so with the cluster scaled alongside the
// trace the *per-container* work grows proportionally to the machine
// count (E) and the *total* work stays within the stated average
// bound — no quadratic-in-E blowup from the un-optimised O(V·E²·c)
// worst case.
type ScalabilityResult struct {
	Rows []ScalabilityRow
}

// Scalability runs Aladdin across doubling trace sizes.
func Scalability(s Scale) (*ScalabilityResult, error) {
	res := &ScalabilityResult{}
	// Four doublings ending at the scale's own size.
	factors := []int{s.TraceFactor * 8, s.TraceFactor * 4, s.TraceFactor * 2, s.TraceFactor}
	machines := []int{s.Machines / 8, s.Machines / 4, s.Machines / 2, s.Machines}
	for i, f := range factors {
		if machines[i] < 8 {
			continue
		}
		w := trace.MustGenerate(trace.Scaled(s.Seed, f))
		m, err := sim.Run(sim.Config{
			Scheduler: core.NewDefault(),
			Workload:  w,
			Machines:  machines[i],
			Order:     workload.OrderInterleaved,
		})
		if err != nil {
			return nil, err
		}
		row := ScalabilityRow{
			Containers: m.Total,
			Machines:   machines[i],
			Elapsed:    m.Elapsed,
			WorkUnits:  m.WorkUnits,
			Undeployed: m.Total - m.Deployed,
		}
		if m.Total > 0 {
			row.PerUnit = float64(m.WorkUnits) / float64(m.Total)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Tables renders the scaling series.
func (r *ScalabilityResult) Tables() []*Table {
	t := &Table{
		Title:  "Scalability: Aladdin work vs trace size (constant load ratio)",
		Header: []string{"containers", "machines", "work units", "units/container", "time", "undeployed"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Containers, row.Machines, row.WorkUnits,
			fmt.Sprintf("%.1f", row.PerUnit),
			row.Elapsed.Round(time.Millisecond).String(), row.Undeployed)
	}
	return []*Table{t}
}
