package experiments

import (
	"fmt"

	"aladdin/internal/core"
	"aladdin/internal/firmament"
	"aladdin/internal/gokube"
	"aladdin/internal/medea"
	"aladdin/internal/parallel"
	"aladdin/internal/resource"
	"aladdin/internal/sched"
	"aladdin/internal/sim"
	"aladdin/internal/stats"
	"aladdin/internal/workload"
)

// contenders returns the four schedulers of the resource-efficiency
// comparison with the paper's "optimal" parameters (§V.C): Go-Kube,
// Firmament-QUINCY(8), Medea(1,1,0) and Aladdin(16).
func contenders() []sched.Scheduler {
	return []sched.Scheduler{
		gokube.NewDefault(),
		firmament.New(firmament.Options{Model: firmament.Quincy, Reschd: 8}),
		medea.New(medea.Options{Weights: medea.Weights{A: 1, B: 1, C: 0}}),
		core.NewDefault(),
	}
}

// Fig10Row is one (scheduler, order) cell of Fig. 10 and Fig. 11.
type Fig10Row struct {
	Scheduler string
	Order     workload.ArrivalOrder
	// UsedMachines is num(sched) of Equation 10: the number of
	// machines the scheduler needs to deploy the whole workload (the
	// paper's Go-Kube needs 14,211 — more than the 10,000-machine
	// cluster — so the metric is a capacity search, not a count on a
	// fixed cluster).
	UsedMachines int
	Efficiency   float64 // Equation 10, per order group
	Utilization  stats.Range
	// Undeployed is non-zero only when the scheduler failed to
	// deploy everything even on the largest cluster probed.
	Undeployed int
}

// Fig10Result carries the machines-used comparison (Fig. 10) and the
// utilisation ranges (Fig. 11) — the paper derives both from the same
// runs.
type Fig10Result struct {
	Rows []Fig10Row
}

// minMachines finds the smallest cluster on which the scheduler
// deploys every container without violations being forced by
// capacity.  It probes geometrically from the demand lower bound,
// then binary-searches.  Returns the metrics of the minimal
// successful run (or the best attempt when even the cap fails).
func minMachines(s sched.Scheduler, w *workload.Workload, order workload.ArrivalOrder) (sim.Metrics, error) {
	st := w.ComputeStats()
	machineCPU := resource.Cores(32, 64*1024).Dim(resource.CPU)
	lo := int(st.TotalDemand.Dim(resource.CPU)/machineCPU) + 1
	if lo < 1 {
		lo = 1
	}
	run := func(n int) (sim.Metrics, error) {
		return sim.Run(sim.Config{Scheduler: s, Workload: w, Machines: n, Order: order})
	}
	// Geometric probe for an upper bound where everything deploys.
	hi := lo
	cap := lo * 64
	var hiMetrics sim.Metrics
	for {
		m, err := run(hi)
		if err != nil {
			return sim.Metrics{}, err
		}
		hiMetrics = m
		if m.Deployed == m.Total {
			break
		}
		if hi >= cap {
			// Never fully deploys; report the best attempt.
			return m, nil
		}
		hi *= 2
		if hi > cap {
			hi = cap
		}
	}
	// Binary search the minimal size in (lo-1, hi].
	lowFail, best := lo-1, hiMetrics
	for lowFail+1 < best.Machines {
		mid := (lowFail + best.Machines) / 2
		m, err := run(mid)
		if err != nil {
			return sim.Metrics{}, err
		}
		if m.Deployed == m.Total {
			best = m
		} else {
			lowFail = mid
		}
	}
	return best, nil
}

// Fig10 runs the resource-efficiency experiment across the four
// arrival orders, searching each scheduler's minimal machine count.
func Fig10(s Scale) (*Fig10Result, error) {
	w := s.Workload()
	scheds := contenders()
	orders := workload.AllArrivalOrders()

	type cell struct {
		m   sim.Metrics
		err error
	}
	cells := make([]cell, len(orders)*len(scheds))
	parallel.ForEach(len(cells), s.Workers, func(i int) {
		o := orders[i/len(scheds)]
		sch := scheds[i%len(scheds)]
		m, err := minMachines(sch, w, o)
		cells[i] = cell{m: m, err: err}
	})
	res := &Fig10Result{}
	for g := 0; g < len(orders); g++ {
		group := make([]sim.Metrics, len(scheds))
		for i := 0; i < len(scheds); i++ {
			c := cells[g*len(scheds)+i]
			if c.err != nil {
				return nil, c.err
			}
			group[i] = c.m
		}
		eff := sim.Efficiency(group)
		for i, m := range group {
			res.Rows = append(res.Rows, Fig10Row{
				Scheduler:    m.Scheduler,
				Order:        m.Order,
				UsedMachines: m.UsedMachines,
				Efficiency:   eff[i],
				Utilization:  m.Utilization,
				Undeployed:   m.Total - m.Deployed,
			})
		}
	}
	return res, nil
}

// Tables renders Fig. 10 and Fig. 11.
func (r *Fig10Result) Tables() []*Table {
	t10 := &Table{
		Title:  "Fig 10: Number of machines used per container arrival characteristic",
		Header: []string{"order", "scheduler", "machines needed", "efficiency (Eq.10)", "undeployed"},
	}
	for _, row := range r.Rows {
		t10.AddRow(row.Order.String(), row.Scheduler, row.UsedMachines,
			fmt.Sprintf("%.3f", row.Efficiency), row.Undeployed)
	}
	t11 := &Table{
		Title:  "Fig 11: Resource efficiency (CPU utilisation of used machines)",
		Header: []string{"order", "scheduler", "min", "mean", "max"},
	}
	for _, row := range r.Rows {
		t11.AddRow(row.Order.String(), row.Scheduler,
			fmt.Sprintf("%.0f%%", row.Utilization.Min*100),
			fmt.Sprintf("%.0f%%", row.Utilization.Mean*100),
			fmt.Sprintf("%.0f%%", row.Utilization.Max*100))
	}
	return []*Table{t10, t11}
}

// ByScheduler groups machine counts per scheduler, ordered by arrival
// order — the series shape tests assert on.
func (r *Fig10Result) ByScheduler() map[string][]int {
	out := make(map[string][]int)
	for _, row := range r.Rows {
		out[row.Scheduler] = append(out[row.Scheduler], row.UsedMachines)
	}
	return out
}
