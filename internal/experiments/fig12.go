package experiments

import (
	"fmt"
	"time"

	"aladdin/internal/core"
	"aladdin/internal/firmament"
	"aladdin/internal/gokube"
	"aladdin/internal/medea"
	"aladdin/internal/sched"
	"aladdin/internal/sim"
	"aladdin/internal/workload"
)

// Fig12Row is one (scheduler, cluster size) latency point.
type Fig12Row struct {
	Scheduler string
	Machines  int
	// Latency is Equation 11's average per-container latency.
	Latency time.Duration
	// Elapsed is the full batch time.
	Elapsed time.Duration
}

// Fig12Result is the placement-latency curve set.
type Fig12Result struct {
	Rows []Fig12Row
}

// fig12Schedulers returns the six curves of Fig. 12, including the
// three Aladdin policies (plain, +IL, +IL+DL).
func fig12Schedulers() []sched.Scheduler {
	plain := core.DefaultOptions()
	plain.IsomorphismLimiting = false
	plain.DepthLimiting = false
	il := core.DefaultOptions()
	il.DepthLimiting = false
	ildl := core.DefaultOptions()
	return []sched.Scheduler{
		gokube.NewDefault(),
		firmament.New(firmament.Options{Model: firmament.Quincy, Reschd: 8}),
		medea.New(medea.Options{Weights: medea.Weights{A: 1, B: 1, C: 0}}),
		core.New(plain),
		core.New(il),
		core.New(ildl),
	}
}

// Fig12 measures average placement latency against cluster size.
// Latency experiments run sequentially (workers=1) so concurrent runs
// cannot distort each other's timings.
func Fig12(s Scale) (*Fig12Result, error) {
	w := s.Workload()
	res := &Fig12Result{}
	for _, sch := range fig12Schedulers() {
		ms, err := sim.SweepMachines(sch, w, s.MachineSweep, workload.OrderInterleaved, 1)
		if err != nil {
			return nil, err
		}
		for _, m := range ms {
			res.Rows = append(res.Rows, Fig12Row{
				Scheduler: m.Scheduler,
				Machines:  m.Machines,
				Latency:   m.Latency,
				Elapsed:   m.Elapsed,
			})
		}
	}
	return res, nil
}

// Tables renders the latency series.
func (r *Fig12Result) Tables() []*Table {
	t := &Table{
		Title:  "Fig 12: Average placement latency vs cluster size",
		Header: []string{"scheduler", "machines", "latency/container", "total"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Scheduler, row.Machines,
			fmt.Sprintf("%.3fms", float64(row.Latency.Microseconds())/1000),
			row.Elapsed.Round(time.Millisecond).String())
	}
	return []*Table{t}
}

// TotalBySched sums elapsed time per scheduler, for the ablation
// assertions (IL+DL must beat plain Aladdin).
func (r *Fig12Result) TotalBySched() map[string]time.Duration {
	out := make(map[string]time.Duration)
	for _, row := range r.Rows {
		out[row.Scheduler] += row.Elapsed
	}
	return out
}
