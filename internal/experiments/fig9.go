package experiments

import (
	"fmt"

	"aladdin/internal/core"
	"aladdin/internal/firmament"
	"aladdin/internal/gokube"
	"aladdin/internal/medea"
	"aladdin/internal/sched"
	"aladdin/internal/sim"
	"aladdin/internal/workload"
)

// fig9Panel mirrors one subfigure of Fig. 9: a Firmament reschd
// value, a Medea weight triple and an Aladdin weight base evaluated
// side by side against Go-Kube.
type fig9Panel struct {
	Label      string
	Reschd     int
	Medea      medea.Weights
	AladdinW   int64
	Schedulers []string
}

// panels reproduces the parameterisation of Fig. 9(a)–(d).
func fig9Panels() []fig9Panel {
	return []fig9Panel{
		{Label: "a", Reschd: 1, Medea: medea.Weights{A: 1, B: 1, C: 1}, AladdinW: 16},
		{Label: "b", Reschd: 2, Medea: medea.Weights{A: 1, B: 1, C: 0.5}, AladdinW: 32},
		{Label: "c", Reschd: 4, Medea: medea.Weights{A: 1, B: 1, C: 0}, AladdinW: 64},
		{Label: "d", Reschd: 8, Medea: medea.Weights{A: 1, B: 0.5, C: 0.5}, AladdinW: 128},
	}
}

// Fig9Row is one bar of a Fig. 9 panel.
type Fig9Row struct {
	Panel               string
	Scheduler           string
	UndeployedPercent   float64
	ViolationsWithin    int
	ViolationsAcross    int
	AntiAffinityRatio   float64
	TotalViolations     int
	ViolatingContainers int
	UndeployedAbsolute  int
}

// Fig9Result aggregates all panels plus the Fig. 9(e) ratio data.
type Fig9Result struct {
	Rows []Fig9Row
}

// Fig9 runs the placement-quality experiment.
func Fig9(s Scale) (*Fig9Result, error) {
	w := s.Workload()
	var configs []sim.Config
	var panelOf []string
	add := func(panel string, sch sched.Scheduler) {
		// Interleaved arrivals: all LLAs submit simultaneously, the
		// regime the paper evaluates ("massive LLAs arrive
		// simultaneously").
		configs = append(configs, sim.Config{
			Scheduler: sch,
			Workload:  w,
			Machines:  s.Machines,
			Order:     workload.OrderInterleaved,
		})
		panelOf = append(panelOf, panel)
	}
	for _, p := range fig9Panels() {
		add(p.Label, gokube.NewDefault())
		add(p.Label, firmament.New(firmament.Options{Model: firmament.Trivial, Reschd: p.Reschd}))
		add(p.Label, firmament.New(firmament.Options{Model: firmament.Quincy, Reschd: p.Reschd}))
		add(p.Label, firmament.New(firmament.Options{Model: firmament.Octopus, Reschd: p.Reschd}))
		add(p.Label, medea.New(medea.Options{Weights: p.Medea}))
		opts := core.DefaultOptions()
		opts.WeightBase = p.AladdinW
		add(p.Label, core.New(opts))
	}
	ms, err := sim.RunAll(configs, s.Workers)
	if err != nil {
		return nil, err
	}
	res := &Fig9Result{}
	for i, m := range ms {
		res.Rows = append(res.Rows, Fig9Row{
			Panel:               panelOf[i],
			Scheduler:           m.Scheduler,
			UndeployedPercent:   m.UndeployedFraction * 100,
			ViolationsWithin:    m.ViolationsWithin,
			ViolationsAcross:    m.ViolationsAcross,
			AntiAffinityRatio:   m.AntiAffinityRatio() * 100,
			TotalViolations:     m.TotalViolations(),
			ViolatingContainers: m.ViolatingContainers,
			UndeployedAbsolute:  m.Total - m.Deployed,
		})
	}
	return res, nil
}

// Tables renders Fig. 9(a)-(d) and Fig. 9(e).
func (r *Fig9Result) Tables() []*Table {
	var out []*Table
	for _, panel := range []string{"a", "b", "c", "d"} {
		t := &Table{
			Title:  fmt.Sprintf("Fig 9(%s): Placement quality (undeployed containers)", panel),
			Header: []string{"scheduler", "undeployed %", "undeployed", "violating pairs", "violating containers"},
		}
		for _, row := range r.Rows {
			if row.Panel != panel {
				continue
			}
			t.AddRow(row.Scheduler, fmt.Sprintf("%.1f", row.UndeployedPercent),
				row.UndeployedAbsolute, row.TotalViolations, row.ViolatingContainers)
		}
		out = append(out, t)
	}
	e := &Table{
		Title:  "Fig 9(e): Ratio of anti-affinity failures to total constraint failures",
		Header: []string{"scheduler", "anti-affinity %", "violations", "undeployed"},
	}
	for _, row := range r.Rows {
		if row.TotalViolations+row.UndeployedAbsolute == 0 {
			continue
		}
		e.AddRow(row.Scheduler, fmt.Sprintf("%.0f", row.AntiAffinityRatio),
			row.TotalViolations, row.UndeployedAbsolute)
	}
	out = append(out, e)
	return out
}

// AladdinRows filters the Aladdin entries (used by tests asserting
// the headline zero-violation claim).
func (r *Fig9Result) AladdinRows() []Fig9Row {
	var out []Fig9Row
	for _, row := range r.Rows {
		if len(row.Scheduler) >= 7 && row.Scheduler[:7] == "Aladdin" {
			out = append(out, row)
		}
	}
	return out
}
