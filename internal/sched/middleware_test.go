package sched_test

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"aladdin/internal/core"
	"aladdin/internal/obs"
	"aladdin/internal/resource"
	"aladdin/internal/sched"
	"aladdin/internal/topology"
	"aladdin/internal/workload"
)

func TestLoggedScheduler(t *testing.T) {
	w := workload.MustNew([]*workload.App{
		{ID: "a", Demand: resource.Cores(4, 4096), Replicas: 2},
	})
	cl := topology.New(topology.AlibabaConfig(2))
	var buf bytes.Buffer
	s := sched.Logged(core.NewDefault(), &buf)
	if s.Name() != "Aladdin(16)+IL+DL" {
		t.Errorf("Name = %q", s.Name())
	}
	res, err := s.Schedule(w, cl, w.Arrange(workload.OrderSubmission))
	if err != nil {
		t.Fatal(err)
	}
	if res.Deployed() != 2 {
		t.Errorf("deployed = %d", res.Deployed())
	}
	line := buf.String()
	for _, want := range []string{
		"sched=Aladdin(16)+IL+DL", "containers=2", "deployed=2",
		"undeployed=0", "violations=0", "elapsed=",
	} {
		if !strings.Contains(line, want) {
			t.Errorf("log missing %q: %s", want, line)
		}
	}
}

type failingScheduler struct{}

func (failingScheduler) Name() string { return "boom" }
func (failingScheduler) Schedule(*workload.Workload, *topology.Cluster, []*workload.Container) (*sched.Result, error) {
	return nil, errors.New("kaput")
}

func TestLoggedSchedulerError(t *testing.T) {
	var buf bytes.Buffer
	s := sched.Logged(failingScheduler{}, &buf)
	if _, err := s.Schedule(nil, nil, nil); err == nil {
		t.Fatal("error should propagate")
	}
	if !strings.Contains(buf.String(), `error="kaput"`) {
		t.Errorf("log = %q", buf.String())
	}
}

func TestInstrumentedScheduler(t *testing.T) {
	w := workload.MustNew([]*workload.App{
		{ID: "a", Demand: resource.Cores(4, 4096), Replicas: 2},
	})
	cl := topology.New(topology.AlibabaConfig(2))
	reg := obs.NewRegistry()
	s := sched.Instrumented(core.NewDefault(), reg)
	if s.Name() != "Aladdin(16)+IL+DL" {
		t.Errorf("Name = %q", s.Name())
	}
	res, err := s.Schedule(w, cl, w.Arrange(workload.OrderSubmission))
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["sched_batches_total"]; got != 1 {
		t.Errorf("batches = %d, want 1", got)
	}
	if got := snap.Counters["sched_containers_deployed_total"]; got != int64(res.Deployed()) {
		t.Errorf("deployed counter = %d, want %d", got, res.Deployed())
	}
	if got := snap.Histograms["sched_batch_duration_us"].Count; got != 1 {
		t.Errorf("batch latency observations = %d, want 1", got)
	}
	if got := snap.Counters["sched_work_units_total"]; got != res.WorkUnits {
		t.Errorf("work units = %d, want %d", got, res.WorkUnits)
	}
	if got := snap.Counters["sched_errors_total"]; got != 0 {
		t.Errorf("errors = %d, want 0", got)
	}
}

func TestInstrumentedSchedulerErrorAndNilRegistry(t *testing.T) {
	reg := obs.NewRegistry()
	s := sched.Instrumented(failingScheduler{}, reg)
	if _, err := s.Schedule(nil, nil, nil); err == nil {
		t.Fatal("error should propagate")
	}
	snap := reg.Snapshot()
	if got := snap.Counters["sched_errors_total"]; got != 1 {
		t.Errorf("errors = %d, want 1", got)
	}
	if got := snap.Histograms["sched_batch_duration_us"].Count; got != 0 {
		t.Errorf("failed batch recorded a latency observation")
	}

	inner := failingScheduler{}
	if wrapped := sched.Instrumented(inner, nil); wrapped != inner {
		t.Errorf("nil registry should return the scheduler unwrapped")
	}
}
