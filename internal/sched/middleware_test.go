package sched_test

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"aladdin/internal/core"
	"aladdin/internal/resource"
	"aladdin/internal/sched"
	"aladdin/internal/topology"
	"aladdin/internal/workload"
)

func TestLoggedScheduler(t *testing.T) {
	w := workload.MustNew([]*workload.App{
		{ID: "a", Demand: resource.Cores(4, 4096), Replicas: 2},
	})
	cl := topology.New(topology.AlibabaConfig(2))
	var buf bytes.Buffer
	s := sched.Logged(core.NewDefault(), &buf)
	if s.Name() != "Aladdin(16)+IL+DL" {
		t.Errorf("Name = %q", s.Name())
	}
	res, err := s.Schedule(w, cl, w.Arrange(workload.OrderSubmission))
	if err != nil {
		t.Fatal(err)
	}
	if res.Deployed() != 2 {
		t.Errorf("deployed = %d", res.Deployed())
	}
	line := buf.String()
	for _, want := range []string{
		"sched=Aladdin(16)+IL+DL", "containers=2", "deployed=2",
		"undeployed=0", "violations=0", "elapsed=",
	} {
		if !strings.Contains(line, want) {
			t.Errorf("log missing %q: %s", want, line)
		}
	}
}

type failingScheduler struct{}

func (failingScheduler) Name() string { return "boom" }
func (failingScheduler) Schedule(*workload.Workload, *topology.Cluster, []*workload.Container) (*sched.Result, error) {
	return nil, errors.New("kaput")
}

func TestLoggedSchedulerError(t *testing.T) {
	var buf bytes.Buffer
	s := sched.Logged(failingScheduler{}, &buf)
	if _, err := s.Schedule(nil, nil, nil); err == nil {
		t.Fatal("error should propagate")
	}
	if !strings.Contains(buf.String(), `error="kaput"`) {
		t.Errorf("log = %q", buf.String())
	}
}
