// Package sched defines the interface every scheduler in this
// repository implements, and the placement Result all experiments
// consume.  Aladdin and the baselines (Firmament, Medea, Go-Kube)
// plug in behind the same contract so the evaluation harness treats
// them uniformly.
package sched

import (
	"fmt"
	"sort"
	"time"

	"aladdin/internal/constraint"
	"aladdin/internal/topology"
	"aladdin/internal/workload"
)

// Scheduler places a workload's containers onto a cluster.
type Scheduler interface {
	// Name identifies the scheduler configuration, e.g.
	// "Firmament-QUINCY(8)" or "Aladdin(16)".
	Name() string
	// Schedule places the given containers (already in arrival
	// order) onto the cluster.  Implementations mutate the cluster's
	// machines to reflect the final placement and return a Result.
	Schedule(w *workload.Workload, cluster *topology.Cluster, arrivals []*workload.Container) (*Result, error)
}

// Result is the outcome of one scheduling run.
type Result struct {
	// Scheduler is the Name() of the producer.
	Scheduler string
	// Assignment maps every deployed container to its machine.
	Assignment constraint.Assignment
	// Undeployed lists containers the scheduler could not place.
	Undeployed []string
	// Violations are the constraint violations the placement incurs
	// (anti-affinity audited post-hoc plus any priority inversions
	// the scheduler reported).
	Violations []constraint.Violation
	// Migrations counts containers moved to rescue another
	// container's placement — anti-affinity unblocking and
	// defragmentation (Fig. 13b's cost metric).
	Migrations int
	// Consolidations counts containers moved by the machine-draining
	// pass that minimises used machines; reported separately because
	// it is an optional efficiency sweep, not a placement cost.
	Consolidations int
	// Preemptions counts evictions of placed containers.
	Preemptions int
	// Elapsed is the scheduling time for the whole batch.  For
	// single-threaded schedulers this is wall-clock time.  The sharded
	// core reports the batch's critical path instead — serial
	// admission and merge plus the slowest shard's placement time —
	// because its shard placements are independent by construction;
	// the two readings coincide on hosts with GOMAXPROCS at or above
	// the shard count.
	Elapsed time.Duration
	// WallElapsed is the wall-clock time this host actually spent on
	// the batch.  It equals Elapsed for single-threaded schedulers
	// and exceeds it for the sharded core whenever the host has fewer
	// cores than shards (the shard fan-out then time-slices on the
	// available cores).  Zero when the producer predates the field.
	WallElapsed time.Duration
	// WorkUnits is a scheduler-specific effort counter (for Aladdin:
	// machine vertices explored by the path search).  Zero when the
	// scheduler does not report one.  Unlike Elapsed it is
	// deterministic, so tests assert optimisation claims on it.
	WorkUnits int64
	// Total is the number of containers submitted.
	Total int
}

// UndeployedFraction returns undeployed/total in [0,1].
func (r *Result) UndeployedFraction() float64 {
	if r.Total == 0 {
		return 0
	}
	return float64(len(r.Undeployed)) / float64(r.Total)
}

// ViolationSummary aggregates violations by kind.
func (r *Result) ViolationSummary() constraint.Summary {
	return constraint.Summarize(r.Violations)
}

// LatencyPerContainer implements Equation 11: total time divided by
// the number of submitted containers.
func (r *Result) LatencyPerContainer() time.Duration {
	if r.Total == 0 {
		return 0
	}
	return r.Elapsed / time.Duration(r.Total)
}

// Deployed returns the number of placed containers.
func (r *Result) Deployed() int { return len(r.Assignment) }

// String summarises the result for logs.
func (r *Result) String() string {
	return fmt.Sprintf("%s: %d/%d deployed, %d undeployed, %d violations, %d migrations, %v",
		r.Scheduler, r.Deployed(), r.Total, len(r.Undeployed),
		len(r.Violations), r.Migrations, r.Elapsed)
}

// Finalize audits anti-affinity on the assignment, sorts the
// undeployed list for determinism and stamps totals.  Every scheduler
// calls this before returning so violation accounting is uniform and
// cannot be fudged by an implementation.
func (r *Result) Finalize(w *workload.Workload) {
	r.Total = w.NumContainers()
	audited := constraint.AuditAntiAffinity(w, r.Assignment)
	// Keep scheduler-reported priority inversions, replace
	// anti-affinity findings with the audit's ground truth.
	var inversions []constraint.Violation
	for _, v := range r.Violations {
		if v.Kind == constraint.PriorityInversion {
			inversions = append(inversions, v)
		}
	}
	r.Violations = append(audited, inversions...)
	sort.Strings(r.Undeployed)
}

// Verify cross-checks a Result against the cluster state: every
// assigned container must actually be hosted by its machine, and no
// machine may exceed capacity.  Returns the first inconsistency.
func (r *Result) Verify(w *workload.Workload, cluster *topology.Cluster) error {
	for _, c := range w.Containers() {
		m, ok := r.Assignment[c.ID]
		if !ok {
			continue
		}
		machine := cluster.Machine(m)
		if machine == nil {
			return fmt.Errorf("sched: container %s assigned to unknown machine %d", c.ID, m)
		}
		if !machine.Hosts(c.ID) {
			return fmt.Errorf("sched: container %s assigned to machine %d but not hosted there", c.ID, m)
		}
	}
	for _, m := range cluster.Machines() {
		if !m.Used().Fits(m.Capacity()) {
			return fmt.Errorf("sched: machine %s over capacity: used %s > cap %s", m.Name, m.Used(), m.Capacity())
		}
	}
	deployed := make(map[string]bool, len(r.Assignment))
	for id := range r.Assignment {
		deployed[id] = true
	}
	for _, id := range r.Undeployed {
		if deployed[id] {
			return fmt.Errorf("sched: container %s both deployed and undeployed", id)
		}
	}
	if len(r.Assignment)+len(r.Undeployed) != r.Total {
		return fmt.Errorf("sched: %d assigned + %d undeployed != %d total",
			len(r.Assignment), len(r.Undeployed), r.Total)
	}
	return nil
}
