package sched

import (
	"fmt"
	"io"
	"time"

	"aladdin/internal/topology"
	"aladdin/internal/workload"
)

// Logged wraps a Scheduler so every Schedule call writes a one-line
// structured summary to out — the audit trail a shared production
// cluster keeps of its placement decisions.
func Logged(s Scheduler, out io.Writer) Scheduler {
	return &loggedScheduler{inner: s, out: out}
}

type loggedScheduler struct {
	inner Scheduler
	out   io.Writer
}

func (l *loggedScheduler) Name() string { return l.inner.Name() }

func (l *loggedScheduler) Schedule(w *workload.Workload, cluster *topology.Cluster, arrivals []*workload.Container) (*Result, error) {
	start := time.Now()
	res, err := l.inner.Schedule(w, cluster, arrivals)
	elapsed := time.Since(start).Round(time.Microsecond)
	if err != nil {
		fmt.Fprintf(l.out, "sched=%s containers=%d error=%q elapsed=%v\n",
			l.inner.Name(), len(arrivals), err.Error(), elapsed)
		return nil, err
	}
	vs := res.ViolationSummary()
	fmt.Fprintf(l.out,
		"sched=%s containers=%d deployed=%d undeployed=%d violations=%d migrations=%d consolidations=%d preemptions=%d elapsed=%v\n",
		l.inner.Name(), res.Total, res.Deployed(), len(res.Undeployed),
		vs.Total(), res.Migrations, res.Consolidations, res.Preemptions, elapsed)
	return res, nil
}
