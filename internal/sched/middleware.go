package sched

import (
	"fmt"
	"io"
	"time"

	"aladdin/internal/obs"
	"aladdin/internal/topology"
	"aladdin/internal/workload"
)

// Logged wraps a Scheduler so every Schedule call writes a one-line
// structured summary to out — the audit trail a shared production
// cluster keeps of its placement decisions.
func Logged(s Scheduler, out io.Writer) Scheduler {
	return &loggedScheduler{inner: s, out: out}
}

type loggedScheduler struct {
	inner Scheduler
	out   io.Writer
}

func (l *loggedScheduler) Name() string { return l.inner.Name() }

func (l *loggedScheduler) Schedule(w *workload.Workload, cluster *topology.Cluster, arrivals []*workload.Container) (*Result, error) {
	start := time.Now()
	res, err := l.inner.Schedule(w, cluster, arrivals)
	elapsed := time.Since(start).Round(time.Microsecond)
	if err != nil {
		fmt.Fprintf(l.out, "sched=%s containers=%d error=%q elapsed=%v\n",
			l.inner.Name(), len(arrivals), err.Error(), elapsed)
		return nil, err
	}
	vs := res.ViolationSummary()
	fmt.Fprintf(l.out,
		"sched=%s containers=%d deployed=%d undeployed=%d violations=%d migrations=%d consolidations=%d preemptions=%d elapsed=%v\n",
		l.inner.Name(), res.Total, res.Deployed(), len(res.Undeployed),
		vs.Total(), res.Migrations, res.Consolidations, res.Preemptions, elapsed)
	return res, nil
}

// Instrumented wraps any Scheduler so every Schedule call records
// into the registry: a batch-latency histogram plus outcome counters.
// It works scheduler-agnostically from the returned Result (no extra
// clock reads — it reuses Result.Elapsed), so the baselines get the
// same telemetry Aladdin's core emits natively; for Aladdin itself
// prefer Options.Metrics, which adds the per-phase breakdown.
func Instrumented(s Scheduler, reg *obs.Registry) Scheduler {
	if reg == nil {
		return s
	}
	return &instrumentedScheduler{
		inner:       s,
		batchLat:    reg.Histogram("sched_batch_duration_us", "wall-clock latency of one Schedule batch, microseconds", obs.LatencyBucketsUS),
		batches:     reg.Counter("sched_batches_total", "Schedule calls"),
		errors:      reg.Counter("sched_errors_total", "Schedule calls that returned an error"),
		deployed:    reg.Counter("sched_containers_deployed_total", "containers successfully placed across all batches"),
		undeployed:  reg.Counter("sched_containers_undeployed_total", "containers left unplaced across all batches"),
		migrations:  reg.Counter("sched_migrations_total", "migrations reported across all batches"),
		preemptions: reg.Counter("sched_preemptions_total", "preemptions reported across all batches"),
		workUnits:   reg.Counter("sched_work_units_total", "scheduler effort units (explored vertices) across all batches"),
	}
}

type instrumentedScheduler struct {
	inner    Scheduler
	batchLat *obs.Histogram

	batches, errors, deployed, undeployed *obs.Counter
	migrations, preemptions, workUnits    *obs.Counter
}

func (i *instrumentedScheduler) Name() string { return i.inner.Name() }

func (i *instrumentedScheduler) Schedule(w *workload.Workload, cluster *topology.Cluster, arrivals []*workload.Container) (*Result, error) {
	res, err := i.inner.Schedule(w, cluster, arrivals)
	i.batches.Inc()
	if err != nil {
		i.errors.Inc()
		return res, err
	}
	i.batchLat.Observe(res.Elapsed.Microseconds())
	i.deployed.Add(int64(res.Deployed()))
	i.undeployed.Add(int64(len(res.Undeployed)))
	i.migrations.Add(int64(res.Migrations))
	i.preemptions.Add(int64(res.Preemptions))
	i.workUnits.Add(res.WorkUnits)
	return res, err
}
