package sched

import (
	"strings"
	"testing"
	"time"

	"aladdin/internal/constraint"
	"aladdin/internal/resource"
	"aladdin/internal/topology"
	"aladdin/internal/workload"
)

func testWorkload() *workload.Workload {
	return workload.MustNew([]*workload.App{
		{ID: "a", Demand: resource.Cores(2, 2048), Replicas: 2, AntiAffinitySelf: true},
		{ID: "b", Demand: resource.Cores(4, 4096), Replicas: 1},
	})
}

func TestResultMetrics(t *testing.T) {
	r := &Result{
		Scheduler:  "test",
		Assignment: constraint.Assignment{"a/0": 0, "a/1": 1},
		Undeployed: []string{"b/0"},
		Elapsed:    300 * time.Millisecond,
		Total:      3,
	}
	if got := r.UndeployedFraction(); got != 1.0/3.0 {
		t.Errorf("UndeployedFraction = %v", got)
	}
	if got := r.LatencyPerContainer(); got != 100*time.Millisecond {
		t.Errorf("LatencyPerContainer = %v", got)
	}
	if r.Deployed() != 2 {
		t.Errorf("Deployed = %d", r.Deployed())
	}
	if !strings.Contains(r.String(), "test") {
		t.Error("String should include scheduler name")
	}
}

func TestResultMetricsEmpty(t *testing.T) {
	r := &Result{}
	if r.UndeployedFraction() != 0 || r.LatencyPerContainer() != 0 {
		t.Error("zero totals should yield zero metrics")
	}
}

func TestFinalizeAuditsViolations(t *testing.T) {
	w := testWorkload()
	r := &Result{
		Assignment: constraint.Assignment{"a/0": 0, "a/1": 0, "b/0": 1}, // a/0+a/1 violate
		Undeployed: []string{"z", "y"},
		Violations: []constraint.Violation{
			{Kind: constraint.PriorityInversion, ContainerA: "x", ContainerB: "y"},
			// A bogus anti-affinity claim that the audit must replace.
			{Kind: constraint.AntiAffinityAcross, ContainerA: "fake", ContainerB: "fake2"},
		},
	}
	r.Finalize(w)
	if r.Total != 3 {
		t.Errorf("Total = %d", r.Total)
	}
	s := r.ViolationSummary()
	if s.Within != 1 {
		t.Errorf("Within = %d, want 1 (from audit)", s.Within)
	}
	if s.Across != 0 {
		t.Errorf("Across = %d, want 0 (bogus claim dropped)", s.Across)
	}
	if s.Inversions != 1 {
		t.Errorf("Inversions = %d, want 1 (preserved)", s.Inversions)
	}
	if r.Undeployed[0] != "y" || r.Undeployed[1] != "z" {
		t.Errorf("Undeployed not sorted: %v", r.Undeployed)
	}
}

func TestVerifyDetectsInconsistencies(t *testing.T) {
	w := testWorkload()
	cl := topology.New(topology.Config{Machines: 2, Capacity: resource.Cores(32, 65536)})

	// Consistent placement.
	if err := cl.Machine(0).Allocate("a/0", resource.Cores(2, 2048)); err != nil {
		t.Fatal(err)
	}
	if err := cl.Machine(1).Allocate("a/1", resource.Cores(2, 2048)); err != nil {
		t.Fatal(err)
	}
	r := &Result{
		Assignment: constraint.Assignment{"a/0": 0, "a/1": 1},
		Undeployed: []string{"b/0"},
	}
	r.Finalize(w)
	if err := r.Verify(w, cl); err != nil {
		t.Errorf("consistent result rejected: %v", err)
	}

	// Assignment points at a machine that does not host the container.
	bad := &Result{Assignment: constraint.Assignment{"a/0": 1, "a/1": 1}}
	bad.Finalize(w)
	if err := bad.Verify(w, cl); err == nil {
		t.Error("mismatched hosting should fail Verify")
	}

	// Unknown machine.
	bad2 := &Result{Assignment: constraint.Assignment{"a/0": 99}}
	bad2.Finalize(w)
	if err := bad2.Verify(w, cl); err == nil {
		t.Error("unknown machine should fail Verify")
	}

	// Container both deployed and undeployed.
	bad3 := &Result{
		Assignment: constraint.Assignment{"a/0": 0, "a/1": 1},
		Undeployed: []string{"a/0"},
	}
	bad3.Total = 3
	if err := bad3.Verify(w, cl); err == nil {
		t.Error("deployed+undeployed overlap should fail Verify")
	}

	// Count mismatch.
	bad4 := &Result{Assignment: constraint.Assignment{"a/0": 0, "a/1": 1}}
	bad4.Total = 3 // one container unaccounted
	if err := bad4.Verify(w, cl); err == nil {
		t.Error("unaccounted containers should fail Verify")
	}
}
