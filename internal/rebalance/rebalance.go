// Package rebalance runs Aladdin's continuous-rescheduling loop
// (ROADMAP item 3): a background rebalancer that watches utilization
// drift, fragmentation and the stranded ledger, and spends a bounded
// per-cycle migration budget putting the placement back on the
// paper's resource-efficiency objective (§II.A — minimise used
// machines).
//
// Every move is computed incrementally, warm-started from the live
// flow network: the session's ConsolidateN and RetryStranded reuse
// the incumbent network, search index and blacklists, so a cycle's
// cost is proportional to the moves it makes, not to the cluster size
// (the CvxCluster argument for incremental over cold re-solves).
// Priority safety is inherited from the pipeline the moves run
// through — consolidation drains never change relative priorities and
// retry preemptions only displace strictly lower priorities.
package rebalance

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"aladdin/internal/core"
	"aladdin/internal/obs"
)

// Target is the scheduling session a Rebalancer manages.  Both
// *core.Session and *core.ShardedSession satisfy it; servers wrap
// their tenant locking around one.
type Target interface {
	// PackingStats summarises current placement quality; the
	// rebalancer reads it to decide whether a cycle is worth running.
	PackingStats() core.PackingStats
	// ConsolidateN drains lightly-loaded machines under a move budget.
	ConsolidateN(budget int) (core.ConsolidateResult, error)
	// RetryStranded re-submits failure-stranded containers under a
	// move budget.
	RetryStranded(budget int) (*core.RetryResult, error)
	// AuditInvariants and FlowConservation gate cycles when
	// Config.Audit is on.
	AuditInvariants() []core.AuditViolation
	FlowConservation() error
}

// Config tunes a Rebalancer.
type Config struct {
	// Interval is the background cycle period; Start requires it > 0.
	// RunCycle can always be called manually regardless.
	Interval time.Duration
	// Budget caps moves (consolidation relocations, retry migrations
	// and preemptions) per cycle; 0 means unlimited.
	Budget int
	// MinFragmentation triggers consolidation when the fraction of
	// free CPU that is NOT in the largest free slab reaches it.
	// Defaults to 0.125 when zero.
	MinFragmentation float64
	// UtilizationDrift triggers consolidation when mean utilization
	// moved at least this much since the last cycle.  Defaults to
	// 0.02 when zero.
	UtilizationDrift float64
	// Audit runs AuditInvariants and FlowConservation after each
	// cycle's moves, recording violations in the result.
	Audit bool
	// Metrics, when non-nil, registers the aladdin_rebalance_* series
	// (scoped by MetricLabels, e.g. per tenant).
	Metrics      *obs.Registry
	MetricLabels obs.Labels
	// Clock overrides time.Now for cycle timing (tests).  Trigger
	// decisions never read it — they depend only on packing state.
	Clock func() time.Time
}

func (c Config) now() time.Time {
	if c.Clock != nil {
		return c.Clock()
	}
	return time.Now()
}

func (c Config) minFragmentation() float64 {
	if c.MinFragmentation > 0 {
		return c.MinFragmentation
	}
	return 0.125
}

func (c Config) utilizationDrift() float64 {
	if c.UtilizationDrift > 0 {
		return c.UtilizationDrift
	}
	return 0.02
}

// CycleResult reports one rebalancing cycle.
type CycleResult struct {
	// Budget is the move cap this cycle ran under (0 = unlimited);
	// Moves is what it actually spent, never exceeding a non-zero
	// Budget on a single-session target.
	Budget int `json:"budget"`
	Moves  int `json:"moves"`
	// Retried / Replaced describe the stranded sweep: containers
	// attempted and containers that found a new home.
	Retried  int `json:"retried"`
	Replaced int `json:"replaced"`
	// ConsolidationMoves is the subset of Moves spent draining
	// machines; More reports drain work left for the next cycle.
	ConsolidationMoves int  `json:"consolidation_moves"`
	More               bool `json:"more"`
	// Skipped is set when the cycle found no trigger (no strandings,
	// fragmentation and drift below thresholds) and did nothing.
	Skipped bool `json:"skipped,omitempty"`
	// Stranded / Fragmentation / MeanUtilization snapshot packing
	// state after the cycle's moves.
	Stranded        int     `json:"stranded"`
	Fragmentation   float64 `json:"fragmentation"`
	MeanUtilization float64 `json:"mean_utilization"`
	// Violations holds audit findings (Config.Audit only); a healthy
	// session always produces none.
	Violations []string      `json:"violations,omitempty"`
	Elapsed    time.Duration `json:"elapsed_ns"`
	// Err carries a scheduler error (state corruption aborts the
	// cycle); the HTTP layer maps it separately.
	Err error `json:"-"`
}

// Fragmentation is the share of free CPU outside the largest free
// slab: 0 when all free capacity is one contiguous machine-slab, →1
// as it shatters across many machines.
func Fragmentation(ps core.PackingStats) float64 {
	if ps.FreeCPU <= 0 {
		return 0
	}
	return 1 - float64(ps.LargestFreeCPU)/float64(ps.FreeCPU)
}

// cycleMoveBuckets sizes the per-cycle move histogram: cycles are
// budget-bounded, so power-of-two buckets up to a few thousand cover
// any realistic budget.
var cycleMoveBuckets = []int64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096}

// rbMetrics bundles the rebalancer's instrument handles; the zero
// value is the disabled configuration (nil-safe handles).
type rbMetrics struct {
	cycles        *obs.Counter
	skipped       *obs.Counter
	moves         *obs.Counter
	retried       *obs.Counter
	replaced      *obs.Counter
	violations    *obs.Counter
	cycleMoves    *obs.Histogram
	cycleLat      *obs.Histogram
	running       *obs.Gauge
	stranded      *obs.Gauge
	fragmentation *obs.Gauge
}

func newRBMetrics(reg *obs.Registry, labels obs.Labels) rbMetrics {
	if reg == nil {
		return rbMetrics{}
	}
	return rbMetrics{
		cycles:        reg.LabeledCounter("aladdin_rebalance_cycles_total", "rebalancing cycles run", labels),
		skipped:       reg.LabeledCounter("aladdin_rebalance_skipped_total", "cycles that found no trigger and did nothing", labels),
		moves:         reg.LabeledCounter("aladdin_rebalance_moves_total", "container moves spent by rebalancing cycles", labels),
		retried:       reg.LabeledCounter("aladdin_rebalance_retried_total", "stranded containers retried by rebalancing cycles", labels),
		replaced:      reg.LabeledCounter("aladdin_rebalance_replaced_total", "stranded containers re-placed by rebalancing cycles", labels),
		violations:    reg.LabeledCounter("aladdin_rebalance_violations_total", "audit violations observed after rebalancing cycles", labels),
		cycleMoves:    reg.LabeledHistogram("aladdin_rebalance_cycle_moves", "container moves per rebalancing cycle", cycleMoveBuckets, labels),
		cycleLat:      reg.LabeledHistogram("aladdin_rebalance_cycle_duration_us", "wall-clock latency of one rebalancing cycle, microseconds", obs.LatencyBucketsUS, labels),
		running:       reg.LabeledGauge("aladdin_rebalance_running", "1 while the background rebalancer loop is started", labels),
		stranded:      reg.LabeledGauge("aladdin_rebalance_stranded", "failure-stranded containers awaiting a feasible home", labels),
		fragmentation: reg.LabeledGauge("aladdin_rebalance_fragmentation_bp", "free-CPU fragmentation in basis points (share of free CPU outside the largest slab)", labels),
	}
}

// Rebalancer drives continuous rescheduling against one Target.  It
// is safe for concurrent use: Start/Stop manage the background loop,
// and RunCycle may also be invoked directly (cycles serialize on an
// internal mutex, so a manual cycle and a ticker cycle never
// interleave their moves).
type Rebalancer struct {
	target Target    //aladdin:lock-ok immutable after construction
	met    rbMetrics //aladdin:lock-ok immutable after construction
	cfg    Config    // guarded by mu; SetSchedule rewrites it between runs

	// cycleMu serializes cycles; it is held across target calls, so
	// lifecycle state lives under the separate mu below (Stop must
	// never wait on a running cycle's locks to flip `running`).
	cycleMu sync.Mutex

	mu       sync.Mutex
	running  bool
	stop     chan struct{}
	done     chan struct{}
	lastUtil float64
	haveLast bool
	// pendingMore remembers a budget-exhausted drain so the next
	// cycle resumes it even when no fresh trigger fires.
	pendingMore bool
}

// New builds a Rebalancer over a target session.
func New(target Target, cfg Config) *Rebalancer {
	return &Rebalancer{
		target: target,
		cfg:    cfg,
		met:    newRBMetrics(cfg.Metrics, cfg.MetricLabels),
	}
}

// SetSchedule reconfigures the background cycle interval and the
// per-cycle move budget.  It fails while the loop is running — stop
// it first, so an in-flight cycle never observes a torn config.
func (rb *Rebalancer) SetSchedule(interval time.Duration, budget int) error {
	rb.mu.Lock()
	defer rb.mu.Unlock()
	if rb.running {
		return fmt.Errorf("rebalance: cannot reconfigure while running")
	}
	rb.cfg.Interval = interval
	rb.cfg.Budget = budget
	return nil
}

// Start launches the background loop, one cycle per Config.Interval.
// It errors when the interval is unset or the loop already runs.
func (rb *Rebalancer) Start() error {
	rb.mu.Lock()
	defer rb.mu.Unlock()
	if rb.cfg.Interval <= 0 {
		return fmt.Errorf("rebalance: Start requires a positive Interval")
	}
	if rb.running {
		return fmt.Errorf("rebalance: already running")
	}
	rb.running = true
	rb.stop = make(chan struct{})
	rb.done = make(chan struct{})
	rb.met.running.Set(1)
	go rb.loop(rb.cfg.Interval, rb.stop, rb.done)
	return nil
}

func (rb *Rebalancer) loop(interval time.Duration, stop, done chan struct{}) {
	defer close(done)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			rb.RunCycle()
		}
	}
}

// Stop halts the background loop and waits for an in-flight cycle to
// finish.  Idempotent; a stopped rebalancer can Start again.
func (rb *Rebalancer) Stop() {
	stop, done := rb.beginStop()
	if stop == nil {
		return
	}
	close(stop)
	<-done
	rb.met.running.Set(0)
}

// beginStop flips the lifecycle flag under the lock and hands back the
// loop's channels — nil when the loop was not running.  Stop closes
// and waits outside the lock so a draining cycle can never deadlock
// against it.
func (rb *Rebalancer) beginStop() (stop, done chan struct{}) {
	rb.mu.Lock()
	defer rb.mu.Unlock()
	if !rb.running {
		return nil, nil
	}
	rb.running = false
	return rb.stop, rb.done
}

// Running reports whether the background loop is started.
func (rb *Rebalancer) Running() bool {
	rb.mu.Lock()
	defer rb.mu.Unlock()
	return rb.running
}

// RunCycle runs one rebalancing cycle under the configured budget.
func (rb *Rebalancer) RunCycle() CycleResult {
	return rb.RunCycleBudget(rb.snapshotCfg().Budget)
}

// snapshotCfg reads the config under the lifecycle lock — SetSchedule
// may rewrite it between cycles, so a cycle works from one coherent
// copy.
func (rb *Rebalancer) snapshotCfg() Config {
	rb.mu.Lock()
	defer rb.mu.Unlock()
	return rb.cfg
}

// driftSince reports whether mean utilization moved enough since the
// last finished cycle to warrant consolidation; the first cycle and a
// pending budget-exhausted drain always trigger.
func (rb *Rebalancer) driftSince(util float64, cfg Config) bool {
	rb.mu.Lock()
	defer rb.mu.Unlock()
	return !rb.haveLast || rb.pendingMore ||
		abs(util-rb.lastUtil) >= cfg.utilizationDrift()
}

// RunCycleBudget runs one cycle under an explicit move budget (0 =
// unlimited), overriding Config.Budget — the HTTP POST /rebalance
// body uses it for one-shot operator-driven sweeps.
func (rb *Rebalancer) RunCycleBudget(budget int) CycleResult {
	rb.cycleMu.Lock()
	defer rb.cycleMu.Unlock()
	cfg := rb.snapshotCfg()
	start := cfg.now()
	res := CycleResult{Budget: budget}

	ps := rb.target.PackingStats()
	frag := Fragmentation(ps)
	drift := rb.driftSince(ps.MeanUtilization, cfg)

	remaining := budget
	if ps.Stranded > 0 {
		rr, err := rb.target.RetryStranded(remaining)
		if rr != nil {
			res.Retried = rr.Retried
			res.Replaced = len(rr.Replaced)
			res.Moves += rr.Migrations + rr.Preemptions
			if budget > 0 {
				remaining -= rr.Migrations + rr.Preemptions
			}
		}
		if err != nil {
			res.Err = err
			return rb.finish(res, ps, cfg, start)
		}
	}

	consolidate := frag >= cfg.minFragmentation() || drift || res.Replaced > 0
	switch {
	case !consolidate:
		if res.Retried == 0 {
			res.Skipped = true
		}
	case budget > 0 && remaining <= 0:
		// Retry ate the whole budget; drain work waits for next cycle.
		res.More = true
	default:
		cr, err := rb.target.ConsolidateN(remaining)
		res.ConsolidationMoves = cr.Moves
		res.Moves += cr.Moves
		res.More = cr.More
		if err != nil {
			res.Err = err
			return rb.finish(res, ps, cfg, start)
		}
	}

	if cfg.Audit {
		for _, v := range rb.target.AuditInvariants() {
			res.Violations = append(res.Violations, v.Detail)
		}
		if err := rb.target.FlowConservation(); err != nil {
			res.Violations = append(res.Violations, err.Error())
		}
	}
	return rb.finish(res, rb.target.PackingStats(), cfg, start)
}

// finish stamps the post-cycle packing snapshot, updates the drift
// baseline and records metrics.
func (rb *Rebalancer) finish(res CycleResult, ps core.PackingStats, cfg Config, start time.Time) CycleResult {
	res.Stranded = ps.Stranded
	res.Fragmentation = Fragmentation(ps)
	res.MeanUtilization = ps.MeanUtilization
	res.Elapsed = cfg.now().Sub(start)
	rb.mu.Lock()
	rb.lastUtil = ps.MeanUtilization
	rb.haveLast = true
	rb.pendingMore = res.More
	rb.mu.Unlock()
	rb.met.cycles.Inc()
	if res.Skipped {
		rb.met.skipped.Inc()
	}
	rb.met.moves.Add(int64(res.Moves))
	rb.met.retried.Add(int64(res.Retried))
	rb.met.replaced.Add(int64(res.Replaced))
	rb.met.violations.Add(int64(len(res.Violations)))
	rb.met.cycleMoves.Observe(int64(res.Moves))
	rb.met.cycleLat.Observe(res.Elapsed.Microseconds())
	rb.met.stranded.Set(int64(ps.Stranded))
	rb.met.fragmentation.Set(int64(res.Fragmentation * 10000))
	return res
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// IsCorruption reports whether a cycle error poisons the session
// (core.ErrStateCorruption); anything else is retryable.
func IsCorruption(err error) bool {
	return errors.Is(err, core.ErrStateCorruption)
}
