package rebalance

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"aladdin/internal/core"
	"aladdin/internal/obs"
	"aladdin/internal/resource"
	"aladdin/internal/topology"
	"aladdin/internal/workload"
)

// fakeTarget scripts the Target interface so trigger and budget logic
// can be asserted without a real scheduling session.
type fakeTarget struct {
	mu        sync.Mutex
	ps        core.PackingStats
	retryRes  core.RetryResult
	retryErr  error
	consRes   core.ConsolidateResult
	consErr   error
	retryArgs []int // budgets RetryStranded was called with
	consArgs  []int // budgets ConsolidateN was called with
}

func (f *fakeTarget) PackingStats() core.PackingStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ps
}

func (f *fakeTarget) ConsolidateN(budget int) (core.ConsolidateResult, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.consArgs = append(f.consArgs, budget)
	return f.consRes, f.consErr
}

func (f *fakeTarget) RetryStranded(budget int) (*core.RetryResult, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.retryArgs = append(f.retryArgs, budget)
	r := f.retryRes
	return &r, f.retryErr
}

func (f *fakeTarget) AuditInvariants() []core.AuditViolation { return nil }
func (f *fakeTarget) FlowConservation() error                { return nil }

func (f *fakeTarget) calls() (retry, cons []int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]int(nil), f.retryArgs...), append([]int(nil), f.consArgs...)
}

func TestFragmentation(t *testing.T) {
	cases := []struct {
		free, largest int64
		want          float64
	}{
		{0, 0, 0},         // nothing free: nothing to fragment
		{1000, 1000, 0},   // one contiguous slab
		{1000, 250, 0.75}, // shattered
	}
	for _, c := range cases {
		ps := core.PackingStats{FreeCPU: c.free, LargestFreeCPU: c.largest}
		if got := Fragmentation(ps); got != c.want {
			t.Errorf("Fragmentation(free=%d largest=%d) = %v, want %v", c.free, c.largest, got, c.want)
		}
	}
}

// TestCycleTriggers drives the decision table: first cycle always
// consolidates, steady state skips, and fragmentation, drift or a
// successful stranded retry each re-arm the sweep.
func TestCycleTriggers(t *testing.T) {
	steady := core.PackingStats{MeanUtilization: 0.5, FreeCPU: 1000, LargestFreeCPU: 1000}

	f := &fakeTarget{ps: steady}
	rb := New(f, Config{})

	if r := rb.RunCycle(); r.Skipped {
		t.Fatal("first cycle skipped; it must consolidate to establish a baseline")
	}
	if r := rb.RunCycle(); !r.Skipped {
		t.Fatal("steady-state cycle not skipped")
	}
	_, cons := f.calls()
	if len(cons) != 1 {
		t.Fatalf("ConsolidateN called %d times, want 1 (skipped cycle must not touch the target)", len(cons))
	}

	// Fragmentation at/above the threshold triggers.
	f.mu.Lock()
	f.ps.LargestFreeCPU = 100 // frag 0.9 >= 0.125
	f.mu.Unlock()
	if r := rb.RunCycle(); r.Skipped {
		t.Fatal("fragmented cycle skipped")
	}
	f.mu.Lock()
	f.ps = steady
	f.mu.Unlock()

	// Utilization drift triggers even with zero fragmentation.
	f.mu.Lock()
	f.ps.MeanUtilization = 0.55 // |0.55-0.5| >= 0.02
	f.mu.Unlock()
	if r := rb.RunCycle(); r.Skipped {
		t.Fatal("drifted cycle skipped")
	}

	// Stranded containers force a retry; a successful re-placement
	// then forces consolidation to absorb the churn.
	f.mu.Lock()
	f.ps.Stranded = 1
	f.retryRes = core.RetryResult{Retried: 1, Replaced: []string{"a/0"}, Migrations: 1}
	f.mu.Unlock()
	r := rb.RunCycle()
	if r.Skipped || r.Retried != 1 || r.Replaced != 1 || r.Moves < 1 {
		t.Fatalf("stranded cycle = %+v, want retried=1 replaced=1", r)
	}
	retry, _ := f.calls()
	if len(retry) != 1 {
		t.Fatalf("RetryStranded called %d times, want 1", len(retry))
	}
}

// TestCycleBudgetSplit: the retry sweep draws down the cycle budget
// before consolidation sees the remainder, and a retry that exhausts
// it defers all drain work to the next cycle via More.
func TestCycleBudgetSplit(t *testing.T) {
	f := &fakeTarget{
		ps:       core.PackingStats{Stranded: 2, MeanUtilization: 0.4, FreeCPU: 1000, LargestFreeCPU: 100},
		retryRes: core.RetryResult{Retried: 2, Replaced: []string{"a/0"}, Migrations: 1, Preemptions: 1},
	}
	rb := New(f, Config{Budget: 5})
	r := rb.RunCycle()
	if r.Budget != 5 || r.Moves != 2 {
		t.Fatalf("cycle = %+v, want budget 5, moves 2", r)
	}
	retry, cons := f.calls()
	if len(retry) != 1 || retry[0] != 5 {
		t.Fatalf("RetryStranded budgets = %v, want [5]", retry)
	}
	if len(cons) != 1 || cons[0] != 3 {
		t.Fatalf("ConsolidateN budgets = %v, want [3] (5 minus 2 retry moves)", cons)
	}

	// Retry consumes the entire budget: no consolidation call, More set.
	f2 := &fakeTarget{
		ps:       core.PackingStats{Stranded: 1, FreeCPU: 1000, LargestFreeCPU: 100},
		retryRes: core.RetryResult{Retried: 1, Replaced: []string{"a/0"}, Migrations: 2},
	}
	rb2 := New(f2, Config{Budget: 2})
	r2 := rb2.RunCycle()
	if !r2.More {
		t.Fatal("budget-exhausted cycle did not report More")
	}
	if _, cons2 := f2.calls(); len(cons2) != 0 {
		t.Fatalf("ConsolidateN called with an exhausted budget: %v", cons2)
	}
}

// TestPendingMoreResume: a budget-capped drain that left work behind
// re-arms the next cycle even when no fresh trigger fires.
func TestPendingMoreResume(t *testing.T) {
	steady := core.PackingStats{MeanUtilization: 0.5, FreeCPU: 1000, LargestFreeCPU: 1000}
	f := &fakeTarget{ps: steady, consRes: core.ConsolidateResult{Moves: 1, More: true}}
	rb := New(f, Config{Budget: 1})

	if r := rb.RunCycle(); !r.More {
		t.Fatal("first cycle should report leftover drain work")
	}
	// No fragmentation, no drift, no strandings — but More was pending.
	f.mu.Lock()
	f.consRes = core.ConsolidateResult{}
	f.mu.Unlock()
	if r := rb.RunCycle(); r.Skipped {
		t.Fatal("cycle after More skipped instead of resuming the drain")
	}
	// With the drain finished the third cycle finally idles.
	if r := rb.RunCycle(); !r.Skipped {
		t.Fatal("cycle after a completed drain was not skipped")
	}
}

func TestCycleErrorPropagation(t *testing.T) {
	wrapped := fmt.Errorf("audit: %w", core.ErrStateCorruption)
	f := &fakeTarget{
		ps:       core.PackingStats{Stranded: 1, FreeCPU: 1000, LargestFreeCPU: 100},
		retryErr: wrapped,
	}
	r := New(f, Config{}).RunCycle()
	if r.Err == nil || !IsCorruption(r.Err) {
		t.Fatalf("cycle error = %v, want state corruption", r.Err)
	}
	if IsCorruption(errors.New("transient")) {
		t.Error("IsCorruption misclassified a transient error")
	}
}

// TestLifecycle covers Start/Stop/SetSchedule edges: Start demands an
// interval, refuses double-starts, Stop is idempotent and a stopped
// rebalancer restarts; SetSchedule is rejected mid-run.
func TestLifecycle(t *testing.T) {
	f := &fakeTarget{ps: core.PackingStats{FreeCPU: 1000, LargestFreeCPU: 100}}
	rb := New(f, Config{})
	if err := rb.Start(); err == nil {
		t.Fatal("Start without an interval should error")
	}
	if err := rb.SetSchedule(time.Millisecond, 3); err != nil {
		t.Fatal(err)
	}
	if err := rb.Start(); err != nil {
		t.Fatal(err)
	}
	if !rb.Running() {
		t.Fatal("Running() false after Start")
	}
	if err := rb.Start(); err == nil {
		t.Fatal("second Start should error")
	}
	if err := rb.SetSchedule(time.Second, 1); err == nil {
		t.Fatal("SetSchedule while running should error")
	}
	// The loop must actually cycle: fragmentation is high, so every
	// tick consolidates with the configured budget.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, cons := f.calls(); len(cons) > 0 {
			if cons[0] != 3 {
				t.Fatalf("ticker cycle used budget %d, want 3", cons[0])
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("background loop never ran a cycle")
		}
		time.Sleep(time.Millisecond)
	}
	rb.Stop()
	if rb.Running() {
		t.Fatal("Running() true after Stop")
	}
	rb.Stop() // idempotent
	if err := rb.Start(); err != nil {
		t.Fatalf("restart after Stop: %v", err)
	}
	rb.Stop()
}

// TestRunCycleRealSession runs budgeted cycles against a live
// core.Session scattered one-container-per-machine: every cycle obeys
// the move cap, audits stay clean, and the loop converges to a dense
// packing with no leftover More.
func TestRunCycleRealSession(t *testing.T) {
	w := workload.MustNew([]*workload.App{
		{ID: "fill", Demand: resource.Cores(8, 16384), Replicas: 32},
	})
	cl := topology.New(topology.Config{
		Machines:        8,
		MachinesPerRack: 4,
		RacksPerCluster: 2,
		Capacity:        resource.Cores(32, 64*1024),
	})
	s := core.NewSession(core.DefaultOptions(), w, cl)
	if _, err := s.Place(w.Containers()); err != nil {
		t.Fatal(err)
	}
	perMachine := make(map[topology.MachineID]bool)
	for id, m := range s.Assignment() {
		if perMachine[m] {
			if err := s.Remove(id); err != nil {
				t.Fatal(err)
			}
		}
		perMachine[m] = true
	}

	reg := obs.NewRegistry()
	rb := New(s, Config{Budget: 2, Audit: true, Metrics: reg})
	var total, cycles int
	for {
		r := rb.RunCycle()
		if r.Err != nil {
			t.Fatalf("cycle %d: %v", cycles, r.Err)
		}
		if r.Moves > 2 {
			t.Fatalf("cycle %d spent %d moves on a budget of 2", cycles, r.Moves)
		}
		if len(r.Violations) != 0 {
			t.Fatalf("cycle %d: audit violations %v", cycles, r.Violations)
		}
		total += r.Moves
		cycles++
		if r.Moves == 0 && !r.More {
			break
		}
		if cycles > 32 {
			t.Fatal("budgeted rebalancing did not converge")
		}
	}
	if total == 0 {
		t.Fatal("rebalancer moved nothing on an 8-way scatter")
	}
	// 8 containers x 8 cores pack into two 32-core machines.
	if ps := s.PackingStats(); ps.Used != 2 {
		t.Errorf("converged packing uses %d machines, want 2", ps.Used)
	}

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"aladdin_rebalance_cycles_total",
		"aladdin_rebalance_moves_total",
		"aladdin_rebalance_cycle_moves",
		"aladdin_rebalance_fragmentation_bp",
	} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("metrics exposition missing %s", want)
		}
	}
}
