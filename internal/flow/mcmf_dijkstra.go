package flow

import (
	"container/heap"
	"fmt"
)

// MinCostMaxFlowDijkstra computes a minimum-cost maximum flow using
// successive shortest paths with Johnson potentials: after an initial
// Bellman-Ford (SPFA) pass establishes potentials, every subsequent
// shortest-path search runs Dijkstra over reduced costs, which are
// non-negative.  On scheduling-shaped networks this is substantially
// faster than plain SPFA per augmentation (see BenchmarkMCMFSolvers).
//
// Requirements: all arcs must have non-negative reduced costs after
// the initial potentials, which holds when the graph has no negative
// cycle (negative arc costs are fine).
func MinCostMaxFlowDijkstra(g *Graph, s, t NodeID) (flowVal, cost int64, err error) {
	if err := g.checkNode(s); err != nil {
		return 0, 0, err
	}
	if err := g.checkNode(t); err != nil {
		return 0, 0, err
	}
	if s == t {
		return 0, 0, fmt.Errorf("flow: source equals sink (%d)", s)
	}
	n := g.NumNodes()
	// Initial potentials via SPFA (handles negative arc costs).
	pot, _, err := SPFA(g, s)
	if err != nil {
		return 0, 0, err
	}
	// Unreachable nodes keep "infinite" potential; Dijkstra below
	// never relaxes through them because their reduced costs stay
	// huge and their residual arcs carry no capacity toward t.
	dist := make([]int64, n)
	via := make([]int32, n)
	visited := make([]bool, n)

	for {
		// Dijkstra over reduced costs c' = c + pot[u] - pot[v].
		for i := range dist {
			dist[i] = inf
			via[i] = -1
			visited[i] = false
		}
		dist[s] = 0
		pq := &nodePQ{{node: s, dist: 0}}
		for pq.Len() > 0 {
			item := heap.Pop(pq).(nodeDist)
			v := item.node
			if visited[v] {
				continue
			}
			visited[v] = true
			if v == t {
				break // capped potential update keeps correctness
			}
			if pot[v] >= inf {
				continue
			}
			for _, ai := range g.adj[v] {
				a := &g.arcs[ai]
				if a.Cap <= 0 || visited[a.To] || pot[a.To] >= inf {
					continue
				}
				rc := a.Cost + pot[v] - pot[a.To]
				if nd := item.dist + rc; nd < dist[a.To] {
					dist[a.To] = nd
					via[a.To] = ai
					heap.Push(pq, nodeDist{node: a.To, dist: nd})
				}
			}
		}
		if via[t] == -1 {
			return flowVal, cost, nil
		}
		// Update potentials with the found distances, capped at
		// dist[t]: nodes beyond the sink's distance (or unvisited
		// after the early exit) advance by dist[t], which keeps all
		// reduced costs non-negative without finishing the Dijkstra.
		dt := dist[t]
		for v := 0; v < n; v++ {
			if pot[v] >= inf {
				continue
			}
			d := dist[v]
			if d > dt {
				d = dt
			}
			pot[v] += d
		}
		// Augment along the path.
		delta := inf
		for v := t; v != s; {
			a := &g.arcs[via[v]]
			if a.Cap < delta {
				delta = a.Cap
			}
			v = a.From
		}
		var pathCost int64
		for v := t; v != s; {
			ai := via[v]
			g.push(int(ai), delta)
			pathCost += g.arcs[ai].Cost
			v = g.arcs[ai].From
		}
		flowVal += delta
		cost += delta * pathCost
	}
}

// nodeDist is a priority-queue entry.
type nodeDist struct {
	node NodeID
	dist int64
}

type nodePQ []nodeDist

func (pq nodePQ) Len() int           { return len(pq) }
func (pq nodePQ) Less(i, j int) bool { return pq[i].dist < pq[j].dist }
func (pq nodePQ) Swap(i, j int)      { pq[i], pq[j] = pq[j], pq[i] }
func (pq *nodePQ) Push(x any)        { *pq = append(*pq, x.(nodeDist)) }
func (pq *nodePQ) Pop() any          { old := *pq; n := len(old); it := old[n-1]; *pq = old[:n-1]; return it }
