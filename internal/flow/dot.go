package flow

import (
	"fmt"
	"io"
)

// WriteDOT renders the graph in Graphviz DOT format for inspection:
// arcs carrying flow are drawn solid and labelled "flow/cap@cost";
// idle arcs are dashed.  Residual twins are omitted.  Node labels can
// be customised via the optional name function.
func WriteDOT(w io.Writer, g *Graph, name func(NodeID) string) error {
	if name == nil {
		name = func(v NodeID) string { return fmt.Sprintf("n%d", v) }
	}
	if _, err := fmt.Fprintln(w, "digraph flow {"); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "  rankdir=LR;"); err != nil {
		return err
	}
	for v := 0; v < g.NumNodes(); v++ {
		if _, err := fmt.Fprintf(w, "  %d [label=%q];\n", v, name(NodeID(v))); err != nil {
			return err
		}
	}
	var werr error
	g.ForwardArcs(func(idx int, a *Arc) {
		if werr != nil {
			return
		}
		style := "dashed"
		if a.Flow() > 0 {
			style = "solid"
		}
		total := a.Cap + a.Flow() // original capacity
		label := fmt.Sprintf("%d/%d", a.Flow(), total)
		if a.Cost != 0 {
			label += fmt.Sprintf("@%d", a.Cost)
		}
		_, werr = fmt.Fprintf(w, "  %d -> %d [label=%q, style=%s];\n",
			a.From, a.To, label, style)
	})
	if werr != nil {
		return werr
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
