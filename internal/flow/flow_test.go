package flow

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// diamond builds the classic 4-node max-flow example with answer 23.
//
//	s -10-> a -4--> b -10-> t
//	s -10-> b        a -8-> t ... (CLRS-style)
func buildCLRS(t *testing.T) (*Graph, NodeID, NodeID) {
	t.Helper()
	g := NewGraph(6)
	s, v1, v2, v3, v4, sink := NodeID(0), NodeID(1), NodeID(2), NodeID(3), NodeID(4), NodeID(5)
	g.MustAddArc(s, v1, 16, 0)
	g.MustAddArc(s, v2, 13, 0)
	g.MustAddArc(v1, v3, 12, 0)
	g.MustAddArc(v2, v1, 4, 0)
	g.MustAddArc(v3, v2, 9, 0)
	g.MustAddArc(v2, v4, 14, 0)
	g.MustAddArc(v4, v3, 7, 0)
	g.MustAddArc(v3, sink, 20, 0)
	g.MustAddArc(v4, sink, 4, 0)
	return g, s, sink
}

func TestMaxFlowCLRS(t *testing.T) {
	g, s, sink := buildCLRS(t)
	got, err := MaxFlow(g, s, sink)
	if err != nil {
		t.Fatal(err)
	}
	if got != 23 {
		t.Errorf("MaxFlow = %d, want 23", got)
	}
}

func TestMaxFlowConservation(t *testing.T) {
	g, s, sink := buildCLRS(t)
	val, err := MaxFlow(g, s, sink)
	if err != nil {
		t.Fatal(err)
	}
	ex := g.Excess()
	for v, e := range ex {
		switch NodeID(v) {
		case s:
			if e != -val {
				t.Errorf("source excess = %d, want %d", e, -val)
			}
		case sink:
			if e != val {
				t.Errorf("sink excess = %d, want %d", e, val)
			}
		default:
			if e != 0 {
				t.Errorf("node %d excess = %d, want 0 (Equation 2)", v, e)
			}
		}
	}
}

func TestMaxFlowDisconnected(t *testing.T) {
	g := NewGraph(3)
	g.MustAddArc(0, 1, 5, 0)
	// node 2 unreachable
	got, err := MaxFlow(g, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("MaxFlow disconnected = %d, want 0", got)
	}
}

func TestMaxFlowErrors(t *testing.T) {
	g := NewGraph(2)
	if _, err := MaxFlow(g, 0, 0); err == nil {
		t.Error("source == sink should fail")
	}
	if _, err := MaxFlow(g, -1, 1); err == nil {
		t.Error("bad source should fail")
	}
	if _, err := MaxFlow(g, 0, 5); err == nil {
		t.Error("bad sink should fail")
	}
}

func TestAddArcValidation(t *testing.T) {
	g := NewGraph(2)
	if _, err := g.AddArc(0, 1, -1, 0); err == nil {
		t.Error("negative capacity should fail")
	}
	if _, err := g.AddArc(0, 7, 1, 0); err == nil {
		t.Error("bad node should fail")
	}
	if _, err := g.AddArc(7, 0, 1, 0); err == nil {
		t.Error("bad from node should fail")
	}
}

func TestMustAddArcPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustAddArc should panic on invalid input")
		}
	}()
	NewGraph(1).MustAddArc(0, 5, 1, 0)
}

func TestAddNode(t *testing.T) {
	g := NewGraph(0)
	a := g.AddNode()
	b := g.AddNode()
	if a != 0 || b != 1 || g.NumNodes() != 2 {
		t.Errorf("AddNode ids %d,%d nodes=%d", a, b, g.NumNodes())
	}
}

func TestSPFABasic(t *testing.T) {
	g := NewGraph(4)
	g.MustAddArc(0, 1, 1, 5)
	g.MustAddArc(0, 2, 1, 2)
	g.MustAddArc(2, 1, 1, 1) // 0->2->1 costs 3, cheaper than direct 5
	g.MustAddArc(1, 3, 1, 1)
	dist, via, err := SPFA(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if dist[1] != 3 {
		t.Errorf("dist[1] = %d, want 3", dist[1])
	}
	if dist[3] != 4 {
		t.Errorf("dist[3] = %d, want 4", dist[3])
	}
	if via[3] == -1 {
		t.Error("node 3 should be reachable")
	}
}

func TestSPFAIgnoresSaturatedArcs(t *testing.T) {
	g := NewGraph(3)
	g.MustAddArc(0, 1, 0, 1) // zero capacity: invisible to SPFA
	g.MustAddArc(0, 2, 1, 9)
	g.MustAddArc(2, 1, 1, 1)
	dist, _, err := SPFA(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if dist[1] != 10 {
		t.Errorf("dist[1] = %d, want 10 (direct arc saturated)", dist[1])
	}
}

func TestSPFANegativeCosts(t *testing.T) {
	g := NewGraph(3)
	g.MustAddArc(0, 1, 1, 4)
	g.MustAddArc(1, 2, 1, -2)
	dist, _, err := SPFA(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if dist[2] != 2 {
		t.Errorf("dist[2] = %d, want 2", dist[2])
	}
}

func TestSPFANegativeCycle(t *testing.T) {
	g := NewGraph(2)
	g.MustAddArc(0, 1, 1, -1)
	g.MustAddArc(1, 0, 1, -1)
	if _, _, err := SPFA(g, 0); err == nil {
		t.Error("negative cycle should be detected")
	}
}

func TestMinCostMaxFlow(t *testing.T) {
	// Two disjoint unit paths with costs 3 and 5, plus an expensive
	// shared edge: max flow 2, min cost 8.
	g := NewGraph(4)
	g.MustAddArc(0, 1, 1, 1)
	g.MustAddArc(1, 3, 1, 2)
	g.MustAddArc(0, 2, 1, 2)
	g.MustAddArc(2, 3, 1, 3)
	f, c, err := MinCostMaxFlow(g, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if f != 2 || c != 8 {
		t.Errorf("MinCostMaxFlow = (%d, %d), want (2, 8)", f, c)
	}
}

func TestMinCostPrefersCheapPath(t *testing.T) {
	// One unit can go cost-1 or cost-100; min cost flow must pick 1.
	g := NewGraph(4)
	g.MustAddArc(0, 1, 1, 1)
	g.MustAddArc(1, 3, 1, 0)
	g.MustAddArc(0, 2, 1, 100)
	g.MustAddArc(2, 3, 1, 0)
	g.MustAddArc(3, 3, 0, 0) // no-op arc, exercise zero-cap handling
	// sink bottleneck of 1:
	g2 := NewGraph(5)
	g2.MustAddArc(0, 1, 1, 1)
	g2.MustAddArc(0, 2, 1, 100)
	g2.MustAddArc(1, 3, 1, 0)
	g2.MustAddArc(2, 3, 1, 0)
	g2.MustAddArc(3, 4, 1, 0)
	f, c, err := MinCostMaxFlow(g2, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if f != 1 || c != 1 {
		t.Errorf("MinCostMaxFlow = (%d,%d), want (1,1)", f, c)
	}
}

func TestMinCostMaxFlowErrors(t *testing.T) {
	g := NewGraph(2)
	if _, _, err := MinCostMaxFlow(g, 0, 0); err == nil {
		t.Error("source == sink should fail")
	}
	if _, _, err := MinCostMaxFlow(g, 9, 0); err == nil {
		t.Error("bad source should fail")
	}
	if _, _, err := MinCostMaxFlow(g, 0, 9); err == nil {
		t.Error("bad sink should fail")
	}
}

func TestAugmentPath(t *testing.T) {
	g := NewGraph(3)
	a1 := g.MustAddArc(0, 1, 5, 0)
	a2 := g.MustAddArc(1, 2, 5, 0)
	if err := AugmentPath(g, []int{a1, a2}, 3); err != nil {
		t.Fatal(err)
	}
	if g.Arc(a1).Flow() != 3 || g.Arc(a2).Flow() != 3 {
		t.Errorf("flows = %d,%d", g.Arc(a1).Flow(), g.Arc(a2).Flow())
	}
	if g.Arc(a1).Cap != 2 {
		t.Errorf("residual = %d", g.Arc(a1).Cap)
	}
	// Over-capacity augment fails and leaves graph unchanged.
	if err := AugmentPath(g, []int{a1, a2}, 3); err == nil {
		t.Error("over-capacity augment should fail")
	}
	if g.Arc(a1).Flow() != 3 {
		t.Error("failed augment must not mutate")
	}
}

func TestAugmentPathValidation(t *testing.T) {
	g := NewGraph(3)
	a1 := g.MustAddArc(0, 1, 5, 0)
	g.MustAddArc(1, 2, 5, 0)
	a3 := g.MustAddArc(0, 2, 5, 0)
	if err := AugmentPath(g, []int{a1, a3}, 1); err == nil {
		t.Error("discontinuous path should fail")
	}
	if err := AugmentPath(g, []int{a1}, 0); err == nil {
		t.Error("zero augment should fail")
	}
	if err := AugmentPath(g, []int{999}, 1); err == nil {
		t.Error("bad arc index should fail")
	}
}

func TestSetCapacityAndForwardArcs(t *testing.T) {
	g := NewGraph(2)
	idx := g.MustAddArc(0, 1, 5, 7)
	g.SetCapacity(idx, 9)
	if g.Arc(idx).Cap != 9 {
		t.Errorf("SetCapacity: cap = %d", g.Arc(idx).Cap)
	}
	count := 0
	g.ForwardArcs(func(i int, a *Arc) {
		count++
		if a.Cost != 7 {
			t.Errorf("forward arc cost = %d", a.Cost)
		}
	})
	if count != 1 || g.NumArcs() != 1 {
		t.Errorf("forward arcs = %d, NumArcs = %d", count, g.NumArcs())
	}
}

// randomNetwork builds a layered random graph for property testing.
func randomNetwork(rng *rand.Rand, layers, width int) (*Graph, NodeID, NodeID) {
	n := 2 + layers*width
	g := NewGraph(n)
	s, t := NodeID(0), NodeID(n-1)
	node := func(l, w int) NodeID { return NodeID(1 + l*width + w) }
	for w := 0; w < width; w++ {
		g.MustAddArc(s, node(0, w), rng.Int63n(20)+1, rng.Int63n(10))
	}
	for l := 0; l+1 < layers; l++ {
		for a := 0; a < width; a++ {
			for b := 0; b < width; b++ {
				if rng.Intn(2) == 0 {
					g.MustAddArc(node(l, a), node(l+1, b), rng.Int63n(20)+1, rng.Int63n(10))
				}
			}
		}
	}
	for w := 0; w < width; w++ {
		g.MustAddArc(node(layers-1, w), t, rng.Int63n(20)+1, rng.Int63n(10))
	}
	return g, s, t
}

func TestQuickMaxFlowEqualsMinCostFlowValue(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g1, s, tt := randomNetwork(rng, 3, 4)
		rng = rand.New(rand.NewSource(seed))
		g2, _, _ := randomNetwork(rng, 3, 4)
		v1, err := MaxFlow(g1, s, tt)
		if err != nil {
			return false
		}
		v2, _, err := MinCostMaxFlow(g2, s, tt)
		if err != nil {
			return false
		}
		return v1 == v2 // both must find the same max-flow value
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestQuickFlowConservationRandom(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, s, tt := randomNetwork(rng, 4, 3)
		val, err := MaxFlow(g, s, tt)
		if err != nil {
			return false
		}
		ex := g.Excess()
		for v, e := range ex {
			switch NodeID(v) {
			case s:
				if e != -val {
					return false
				}
			case tt:
				if e != val {
					return false
				}
			default:
				if e != 0 {
					return false
				}
			}
		}
		// Capacity constraint (Equation 1): flow on every forward arc
		// within [0, original cap].  Residual cap must be >= 0.
		ok := true
		g.ForwardArcs(func(i int, a *Arc) {
			if a.Flow() < 0 || a.Cap < 0 {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestQuickMinCostNotWorseThanAnyPath(t *testing.T) {
	// The min-cost solver's cost for unit flow equals the SPFA
	// shortest path distance.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, s, tt := randomNetwork(rng, 3, 3)
		dist, via, err := SPFA(g, s)
		if err != nil {
			return false
		}
		if via[tt] == -1 {
			return true
		}
		want := dist[tt]
		// Limit to one unit: rebuild with unit source arc.
		g2 := NewGraph(g.NumNodes() + 1)
		super := NodeID(g.NumNodes())
		g.ForwardArcs(func(i int, a *Arc) {
			g2.MustAddArc(a.From, a.To, a.Cap, a.Cost)
		})
		g2.MustAddArc(super, s, 1, 0)
		fl, cost, err := MinCostMaxFlow(g2, super, tt)
		if err != nil {
			return false
		}
		return fl == 1 && cost == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
