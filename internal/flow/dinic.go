package flow

import "fmt"

// Dinic computes the maximum s-t flow with Dinic's algorithm: BFS
// level graphs plus blocking flows found by DFS with the current-arc
// optimisation.  It is asymptotically stronger than Edmonds-Karp
// (O(V²E) vs O(VE²)) and considerably faster on the wide, shallow
// networks cluster scheduling produces; the solver-choice ablation
// bench compares the two.
func Dinic(g *Graph, s, t NodeID) (int64, error) {
	if err := g.checkNode(s); err != nil {
		return 0, err
	}
	if err := g.checkNode(t); err != nil {
		return 0, err
	}
	if s == t {
		return 0, fmt.Errorf("flow: source equals sink (%d)", s)
	}
	n := g.NumNodes()
	level := make([]int32, n)
	iter := make([]int32, n)
	queue := make([]NodeID, 0, n)

	bfs := func() bool {
		for i := range level {
			level[i] = -1
		}
		level[s] = 0
		queue = append(queue[:0], s)
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, ai := range g.adj[v] {
				a := &g.arcs[ai]
				if a.Cap > 0 && level[a.To] == -1 {
					level[a.To] = level[v] + 1
					queue = append(queue, a.To)
				}
			}
		}
		return level[t] != -1
	}

	var dfs func(v NodeID, limit int64) int64
	dfs = func(v NodeID, limit int64) int64 {
		if v == t {
			return limit
		}
		for ; iter[v] < int32(len(g.adj[v])); iter[v]++ {
			ai := g.adj[v][iter[v]]
			a := &g.arcs[ai]
			if a.Cap <= 0 || level[a.To] != level[v]+1 {
				continue
			}
			d := limit
			if a.Cap < d {
				d = a.Cap
			}
			if pushed := dfs(a.To, d); pushed > 0 {
				g.push(int(ai), pushed)
				return pushed
			}
		}
		return 0
	}

	var total int64
	for bfs() {
		for i := range iter {
			iter[i] = 0
		}
		for {
			pushed := dfs(s, inf)
			if pushed == 0 {
				break
			}
			total += pushed
		}
	}
	return total, nil
}
