package flow

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteDOT(t *testing.T) {
	g := NewGraph(3)
	a := g.MustAddArc(0, 1, 5, 2)
	g.MustAddArc(1, 2, 5, 0)
	if err := AugmentPath(g, []int{a}, 3); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteDOT(&buf, g, func(v NodeID) string {
		return []string{"s", "mid", "t"}[v]
	}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"digraph flow {",
		`label="s"`,
		`label="mid"`,
		`0 -> 1 [label="3/5@2", style=solid]`,
		`1 -> 2 [label="0/5", style=dashed]`,
		"}",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteDOTDefaultNames(t *testing.T) {
	g := NewGraph(2)
	g.MustAddArc(0, 1, 1, 0)
	var buf bytes.Buffer
	if err := WriteDOT(&buf, g, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `label="n0"`) {
		t.Error("default names missing")
	}
}

type failWriter struct{ n int }

func (f *failWriter) Write(p []byte) (int, error) {
	f.n--
	if f.n <= 0 {
		return 0, errFail
	}
	return len(p), nil
}

var errFail = &writeErr{}

type writeErr struct{}

func (*writeErr) Error() string { return "write failed" }

func TestWriteDOTPropagatesErrors(t *testing.T) {
	g := NewGraph(2)
	g.MustAddArc(0, 1, 1, 0)
	for n := 1; n <= 5; n++ {
		if err := WriteDOT(&failWriter{n: n}, g, nil); err == nil {
			t.Errorf("expected error with failure at write %d", n)
		}
	}
}
