package flow

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMCMFDijkstraBasic(t *testing.T) {
	g := NewGraph(4)
	g.MustAddArc(0, 1, 1, 1)
	g.MustAddArc(1, 3, 1, 2)
	g.MustAddArc(0, 2, 1, 2)
	g.MustAddArc(2, 3, 1, 3)
	f, c, err := MinCostMaxFlowDijkstra(g, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if f != 2 || c != 8 {
		t.Errorf("got (%d,%d), want (2,8)", f, c)
	}
}

func TestMCMFDijkstraNegativeArcs(t *testing.T) {
	g := NewGraph(3)
	g.MustAddArc(0, 1, 2, 5)
	g.MustAddArc(1, 2, 2, -3)
	f, c, err := MinCostMaxFlowDijkstra(g, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if f != 2 || c != 4 {
		t.Errorf("got (%d,%d), want (2,4)", f, c)
	}
}

func TestMCMFDijkstraErrors(t *testing.T) {
	g := NewGraph(2)
	if _, _, err := MinCostMaxFlowDijkstra(g, 0, 0); err == nil {
		t.Error("source == sink should fail")
	}
	if _, _, err := MinCostMaxFlowDijkstra(g, 5, 0); err == nil {
		t.Error("bad source should fail")
	}
	if _, _, err := MinCostMaxFlowDijkstra(g, 0, 5); err == nil {
		t.Error("bad sink should fail")
	}
	// Negative cycle propagates SPFA's error.
	g2 := NewGraph(3)
	g2.MustAddArc(0, 1, 1, -1)
	g2.MustAddArc(1, 0, 1, -1)
	g2.MustAddArc(1, 2, 1, 0)
	if _, _, err := MinCostMaxFlowDijkstra(g2, 0, 2); err == nil {
		t.Error("negative cycle should fail")
	}
}

func TestMCMFDijkstraUnreachableSink(t *testing.T) {
	g := NewGraph(3)
	g.MustAddArc(0, 1, 5, 1)
	f, c, err := MinCostMaxFlowDijkstra(g, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if f != 0 || c != 0 {
		t.Errorf("unreachable sink: got (%d,%d)", f, c)
	}
}

func TestQuickMCMFDijkstraMatchesSPFA(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g1, s, tt := randomNetwork(rng, 4, 4)
		rng = rand.New(rand.NewSource(seed))
		g2, _, _ := randomNetwork(rng, 4, 4)
		f1, c1, err := MinCostMaxFlow(g1, s, tt)
		if err != nil {
			return false
		}
		f2, c2, err := MinCostMaxFlowDijkstra(g2, s, tt)
		if err != nil {
			return false
		}
		return f1 == f2 && c1 == c2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
