package flow

import "fmt"

// MaxFlow computes the maximum s-t flow with Edmonds-Karp (BFS
// augmenting paths over the residual graph).  It mutates the graph's
// residual capacities and returns the total flow value.
func MaxFlow(g *Graph, s, t NodeID) (int64, error) {
	if err := g.checkNode(s); err != nil {
		return 0, err
	}
	if err := g.checkNode(t); err != nil {
		return 0, err
	}
	if s == t {
		return 0, fmt.Errorf("flow: source equals sink (%d)", s)
	}
	var total int64
	parent := make([]int32, g.NumNodes()) // arc used to reach node
	queue := make([]NodeID, 0, g.NumNodes())
	for {
		for i := range parent {
			parent[i] = -1
		}
		parent[s] = -2
		queue = append(queue[:0], s)
		found := false
	bfs:
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, ai := range g.adj[v] {
				a := &g.arcs[ai]
				if a.Cap <= 0 || parent[a.To] != -1 {
					continue
				}
				parent[a.To] = ai
				if a.To == t {
					found = true
					break bfs
				}
				queue = append(queue, a.To)
			}
		}
		if !found {
			return total, nil
		}
		// Find bottleneck.
		delta := inf
		for v := t; v != s; {
			ai := parent[v]
			if g.arcs[ai].Cap < delta {
				delta = g.arcs[ai].Cap
			}
			v = g.arcs[ai].From
		}
		// Augment.
		for v := t; v != s; {
			ai := parent[v]
			g.push(int(ai), delta)
			v = g.arcs[ai].From
		}
		total += delta
	}
}

// SPFA computes single-source shortest path distances by arc Cost
// over arcs with positive residual capacity, using the queue-based
// Bellman-Ford variant the paper names (§II.B).  It returns the
// distance slice and, for each node, the arc index used to reach it
// (-1 when unreachable).  Negative arc costs are allowed; negative
// cycles reachable from s cause an error.
func SPFA(g *Graph, s NodeID) (dist []int64, via []int32, err error) {
	if err := g.checkNode(s); err != nil {
		return nil, nil, err
	}
	n := g.NumNodes()
	dist = make([]int64, n)
	via = make([]int32, n)
	inQueue := make([]bool, n)
	relaxed := make([]int, n)
	for i := range dist {
		dist[i] = inf
		via[i] = -1
	}
	dist[s] = 0
	queue := make([]NodeID, 0, n)
	queue = append(queue, s)
	inQueue[s] = true
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		inQueue[v] = false
		for _, ai := range g.adj[v] {
			a := &g.arcs[ai]
			if a.Cap <= 0 {
				continue
			}
			if nd := dist[v] + a.Cost; nd < dist[a.To] {
				dist[a.To] = nd
				via[a.To] = ai
				if !inQueue[a.To] {
					relaxed[a.To]++
					if relaxed[a.To] > n {
						return nil, nil, fmt.Errorf("flow: negative cycle reachable from node %d", s)
					}
					queue = append(queue, a.To)
					inQueue[a.To] = true
				}
			}
		}
	}
	return dist, via, nil
}

// MinCostMaxFlow computes a maximum s-t flow of minimum total cost by
// successive shortest augmenting paths found with SPFA.  It returns
// (flow, cost).  The graph's residual capacities are mutated.
func MinCostMaxFlow(g *Graph, s, t NodeID) (flowVal, cost int64, err error) {
	if err := g.checkNode(s); err != nil {
		return 0, 0, err
	}
	if err := g.checkNode(t); err != nil {
		return 0, 0, err
	}
	if s == t {
		return 0, 0, fmt.Errorf("flow: source equals sink (%d)", s)
	}
	for {
		dist, via, err := SPFA(g, s)
		if err != nil {
			return flowVal, cost, err
		}
		if via[t] == -1 {
			return flowVal, cost, nil
		}
		delta := inf
		for v := t; v != s; {
			a := &g.arcs[via[v]]
			if a.Cap < delta {
				delta = a.Cap
			}
			v = a.From
		}
		for v := t; v != s; {
			ai := via[v]
			g.push(int(ai), delta)
			v = g.arcs[ai].From
		}
		flowVal += delta
		cost += delta * dist[t]
	}
}

// AugmentPath pushes the given units along an explicit arc path from s
// to t, validating connectivity and capacity.  Schedulers that choose
// their own paths (Aladdin's optimized search) use this to keep
// residual bookkeeping consistent.
func AugmentPath(g *Graph, path []int, units int64) error {
	if units <= 0 {
		return fmt.Errorf("flow: non-positive augment %d", units)
	}
	for i, ai := range path {
		if ai < 0 || ai >= len(g.arcs) {
			return fmt.Errorf("flow: arc index %d out of range", ai)
		}
		a := &g.arcs[ai]
		if a.Cap < units {
			return fmt.Errorf("flow: arc %d->%d capacity %d < augment %d", a.From, a.To, a.Cap, units)
		}
		if i > 0 && g.arcs[path[i-1]].To != a.From {
			return fmt.Errorf("flow: path discontinuity at hop %d", i)
		}
	}
	for _, ai := range path {
		g.push(ai, units)
	}
	return nil
}
