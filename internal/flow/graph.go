// Package flow implements the directed flow-network substrate the
// schedulers are built on: residual graphs, SPFA shortest paths,
// Edmonds-Karp maximum flow and an SPFA-based minimum-cost maximum
// flow (the solver family — "SPFA or Bellman-Ford", §IV.D — the paper
// compares against and builds upon).
//
// Networks use adjacency lists with paired residual arcs: arc i and
// arc i^1 are a forward/backward pair, the classic representation that
// makes augmenting and cancelling flow O(1) per arc.
package flow

import "fmt"

// NodeID indexes a vertex in a Graph.
type NodeID int

// Arc is one directed edge with residual bookkeeping.
type Arc struct {
	// From and To are the endpoints.
	From, To NodeID
	// Cap is the remaining (residual) capacity.
	Cap int64
	// Cost is the per-unit cost used by min-cost flow; plain max-flow
	// ignores it.
	Cost int64
	// flow tracks units pushed across the original direction; the
	// reverse arc holds the negation.
	flow int64
}

// Flow returns the units currently routed through the arc.
func (a *Arc) Flow() int64 { return a.flow }

// Graph is a directed flow network.  The zero value is unusable; use
// NewGraph.
type Graph struct {
	arcs []Arc
	// adj[v] lists indexes into arcs for arcs leaving v (both forward
	// and residual).
	adj [][]int32
}

// NewGraph builds a graph with n vertices and no arcs.
func NewGraph(n int) *Graph {
	return &Graph{adj: make([][]int32, n)}
}

// NumNodes returns the vertex count.
func (g *Graph) NumNodes() int { return len(g.adj) }

// Grow pre-allocates room for additional vertices and forward arcs
// (each forward arc also stores its residual twin), so bulk network
// construction avoids repeated slice growth.
func (g *Graph) Grow(nodes, arcs int) {
	if need := len(g.adj) + nodes; need > cap(g.adj) {
		adj := make([][]int32, len(g.adj), need)
		copy(adj, g.adj)
		g.adj = adj
	}
	if need := len(g.arcs) + 2*arcs; need > cap(g.arcs) {
		as := make([]Arc, len(g.arcs), need)
		copy(as, g.arcs)
		g.arcs = as
	}
}

// NumArcs returns the count of forward arcs (excluding residuals).
func (g *Graph) NumArcs() int { return len(g.arcs) / 2 }

// AddNode appends a vertex and returns its ID.
func (g *Graph) AddNode() NodeID {
	g.adj = append(g.adj, nil)
	return NodeID(len(g.adj) - 1)
}

// AddArc inserts a forward arc and its zero-capacity residual twin,
// returning the forward arc's index.  Capacity must be non-negative.
func (g *Graph) AddArc(from, to NodeID, capacity, cost int64) (int, error) {
	if err := g.checkNode(from); err != nil {
		return 0, err
	}
	if err := g.checkNode(to); err != nil {
		return 0, err
	}
	if capacity < 0 {
		return 0, fmt.Errorf("flow: negative capacity %d on arc %d->%d", capacity, from, to)
	}
	idx := len(g.arcs)
	g.arcs = append(g.arcs,
		Arc{From: from, To: to, Cap: capacity, Cost: cost},
		Arc{From: to, To: from, Cap: 0, Cost: -cost},
	)
	g.adj[from] = append(g.adj[from], int32(idx))
	g.adj[to] = append(g.adj[to], int32(idx+1))
	return idx, nil
}

// MustAddArc is AddArc that panics on error, for construction code
// whose inputs are known valid (the Must* convention).
//
//aladdin:nondeterministic-ok Must* constructor; inputs are static
func (g *Graph) MustAddArc(from, to NodeID, capacity, cost int64) int {
	idx, err := g.AddArc(from, to, capacity, cost)
	if err != nil {
		panic(err)
	}
	return idx
}

// Arc returns the arc at the given index (forward arcs are even,
// residual twins odd).
func (g *Graph) Arc(idx int) *Arc { return &g.arcs[idx] }

// SetCapacity replaces the remaining capacity of the arc at idx.  It
// does not touch flow already routed; callers adjusting capacities
// mid-solve are expected to know the invariant they need.
func (g *Graph) SetCapacity(idx int, capacity int64) {
	g.arcs[idx].Cap = capacity
}

// push routes delta units across arc idx, updating the residual twin.
func (g *Graph) push(idx int, delta int64) {
	g.arcs[idx].Cap -= delta
	g.arcs[idx].flow += delta
	g.arcs[idx^1].Cap += delta
	g.arcs[idx^1].flow -= delta
}

// OutArcs returns the arc indexes (forward and residual) leaving v.
func (g *Graph) OutArcs(v NodeID) []int32 { return g.adj[v] }

// ForwardArcs iterates the forward arcs in insertion order.
func (g *Graph) ForwardArcs(fn func(idx int, a *Arc)) {
	for i := 0; i < len(g.arcs); i += 2 {
		fn(i, &g.arcs[i])
	}
}

// Excess returns, for each node, inflow minus outflow of routed flow.
// For a feasible s-t flow every node except s and t must have zero
// excess (Equation 2, flow conservation).
func (g *Graph) Excess() []int64 {
	ex := make([]int64, len(g.adj))
	for i := 0; i < len(g.arcs); i += 2 {
		a := &g.arcs[i]
		ex[a.To] += a.flow
		ex[a.From] -= a.flow
	}
	return ex
}

func (g *Graph) checkNode(v NodeID) error {
	if v < 0 || int(v) >= len(g.adj) {
		return fmt.Errorf("flow: node %d out of range [0,%d)", v, len(g.adj))
	}
	return nil
}

const inf = int64(1) << 62
