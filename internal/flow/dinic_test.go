package flow

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDinicCLRS(t *testing.T) {
	g, s, sink := buildCLRS(t)
	got, err := Dinic(g, s, sink)
	if err != nil {
		t.Fatal(err)
	}
	if got != 23 {
		t.Errorf("Dinic = %d, want 23", got)
	}
}

func TestDinicConservation(t *testing.T) {
	g, s, sink := buildCLRS(t)
	val, err := Dinic(g, s, sink)
	if err != nil {
		t.Fatal(err)
	}
	ex := g.Excess()
	for v, e := range ex {
		switch NodeID(v) {
		case s:
			if e != -val {
				t.Errorf("source excess %d", e)
			}
		case sink:
			if e != val {
				t.Errorf("sink excess %d", e)
			}
		default:
			if e != 0 {
				t.Errorf("node %d excess %d", v, e)
			}
		}
	}
}

func TestDinicErrors(t *testing.T) {
	g := NewGraph(2)
	if _, err := Dinic(g, 0, 0); err == nil {
		t.Error("source == sink should fail")
	}
	if _, err := Dinic(g, -1, 1); err == nil {
		t.Error("bad source should fail")
	}
	if _, err := Dinic(g, 0, 9); err == nil {
		t.Error("bad sink should fail")
	}
}

func TestDinicDisconnected(t *testing.T) {
	g := NewGraph(3)
	g.MustAddArc(0, 1, 5, 0)
	got, err := Dinic(g, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("Dinic disconnected = %d", got)
	}
}

func TestQuickDinicMatchesEdmondsKarp(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g1, s, tt := randomNetwork(rng, 4, 4)
		rng = rand.New(rand.NewSource(seed))
		g2, _, _ := randomNetwork(rng, 4, 4)
		v1, err := MaxFlow(g1, s, tt)
		if err != nil {
			return false
		}
		v2, err := Dinic(g2, s, tt)
		if err != nil {
			return false
		}
		return v1 == v2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
