package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"aladdin/internal/resource"
	"aladdin/internal/workload"
)

// csvHeader is the column layout of the CSV trace format — the shape
// of the public Alibaba cluster-data CSV dumps, adapted to the LLA
// fields this repository models.
var csvHeader = []string{
	"app_id", "cpu_milli", "mem_mb", "replicas", "priority",
	"anti_affinity_self", "anti_affinity_apps",
}

// WriteCSV serialises the workload as CSV with a header row.
// Across-app anti-affinity partners are ';'-joined in one column.
func WriteCSV(w io.Writer, wl *workload.Workload) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return fmt.Errorf("trace: csv header: %w", err)
	}
	for _, a := range wl.Apps() {
		rec := []string{
			a.ID,
			strconv.FormatInt(a.Demand.Dim(resource.CPU), 10),
			strconv.FormatInt(a.Demand.Dim(resource.Memory), 10),
			strconv.Itoa(a.Replicas),
			strconv.Itoa(int(a.Priority)),
			strconv.FormatBool(a.AntiAffinitySelf),
			strings.Join(a.AntiAffinityApps, ";"),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("trace: csv app %s: %w", a.ID, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a CSV trace written by WriteCSV.
func ReadCSV(r io.Reader) (*workload.Workload, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(csvHeader)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("trace: csv: %w", err)
	}
	for i, want := range csvHeader {
		if header[i] != want {
			return nil, fmt.Errorf("trace: csv: column %d is %q, want %q", i, header[i], want)
		}
	}
	var apps []*workload.App
	line := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		line++
		if err != nil {
			return nil, fmt.Errorf("trace: csv line %d: %w", line, err)
		}
		cpu, err := strconv.ParseInt(rec[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: csv line %d cpu: %w", line, err)
		}
		mem, err := strconv.ParseInt(rec[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: csv line %d mem: %w", line, err)
		}
		reps, err := strconv.Atoi(rec[3])
		if err != nil {
			return nil, fmt.Errorf("trace: csv line %d replicas: %w", line, err)
		}
		prio, err := strconv.Atoi(rec[4])
		if err != nil {
			return nil, fmt.Errorf("trace: csv line %d priority: %w", line, err)
		}
		self, err := strconv.ParseBool(rec[5])
		if err != nil {
			return nil, fmt.Errorf("trace: csv line %d anti_affinity_self: %w", line, err)
		}
		var partners []string
		if rec[6] != "" {
			partners = strings.Split(rec[6], ";")
		}
		apps = append(apps, &workload.App{
			ID:               rec[0],
			Demand:           resource.Milli(cpu, mem),
			Replicas:         reps,
			Priority:         workload.Priority(prio),
			AntiAffinitySelf: self,
			AntiAffinityApps: partners,
		})
	}
	return workload.New(apps)
}
