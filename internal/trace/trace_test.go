package trace

import (
	"bytes"
	"strings"
	"testing"

	"aladdin/internal/resource"
	"aladdin/internal/workload"
)

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
		ok   bool
	}{
		{"default", func(c *Config) {}, true},
		{"zero apps", func(c *Config) { c.Apps = 0 }, false},
		{"target below apps", func(c *Config) { c.TargetContainers = c.Apps - 1 }, false},
		{"bad anti fraction", func(c *Config) { c.AntiAffinityFraction = 1.5 }, false},
		{"negative anti fraction", func(c *Config) { c.AntiAffinityFraction = -0.1 }, false},
		{"bad prio fraction", func(c *Config) { c.PriorityFraction = 2 }, false},
		{"zero demand", func(c *Config) { c.MaxDemand = resource.Vector{} }, false},
	}
	for _, tc := range cases {
		cfg := Alibaba(1)
		tc.mut(&cfg)
		err := cfg.Validate()
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestGenerateMatchesPaperShape(t *testing.T) {
	// Scale 10: ~1,305 apps, ~10,000 containers.
	w := MustGenerate(Scaled(42, 10))
	s := w.ComputeStats()

	if s.Apps < 1200 || s.Apps > 1400 {
		t.Errorf("Apps = %d, want ~1306", s.Apps)
	}
	if s.Containers < 8000 || s.Containers > 13000 {
		t.Errorf("Containers = %d, want ~10000", s.Containers)
	}
	singleFrac := float64(s.SingleInstanceApps) / float64(s.Apps)
	if singleFrac < 0.55 || singleFrac > 0.72 {
		t.Errorf("single-instance fraction = %.2f, want ~0.64", singleFrac)
	}
	under50 := float64(s.AppsUnder50) / float64(s.Apps)
	if under50 < 0.78 || under50 > 0.93 {
		t.Errorf("under-50 fraction = %.2f, want ~0.85", under50)
	}
	// The heavy tail scales with the trace: at scale 10 the giants sit
	// near TargetContainers/45 ≈ 220 replicas.
	maxReps := 0
	for _, a := range w.Apps() {
		if a.Replicas > maxReps {
			maxReps = a.Replicas
		}
	}
	if maxReps < 150 {
		t.Errorf("largest app = %d replicas, want >= 150 (scaled heavy tail)", maxReps)
	}
	antiFrac := float64(s.AntiAffinityApps) / float64(s.Apps)
	if antiFrac < 0.62 || antiFrac > 0.78 {
		t.Errorf("anti-affinity fraction = %.2f, want ~0.70", antiFrac)
	}
	prioFrac := float64(s.PriorityApps) / float64(s.Apps)
	if prioFrac < 0.10 || prioFrac > 0.20 {
		t.Errorf("priority fraction = %.2f, want ~0.15", prioFrac)
	}
	if !s.MaxDemand.Fits(resource.Cores(16, 32*1024)) {
		t.Errorf("MaxDemand = %v exceeds the 16c/32GB cap", s.MaxDemand)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := MustGenerate(Scaled(7, 40))
	b := MustGenerate(Scaled(7, 40))
	if a.NumContainers() != b.NumContainers() {
		t.Fatal("same seed must give same container count")
	}
	for i, app := range a.Apps() {
		other := b.Apps()[i]
		if app.ID != other.ID || app.Replicas != other.Replicas ||
			app.Demand != other.Demand || app.Priority != other.Priority ||
			app.AntiAffinitySelf != other.AntiAffinitySelf {
			t.Fatalf("app %d differs between identical seeds", i)
		}
	}
	c := MustGenerate(Scaled(8, 40))
	diff := false
	for i := range a.Apps() {
		if a.Apps()[i].Replicas != c.Apps()[i].Replicas ||
			a.Apps()[i].Demand != c.Apps()[i].Demand {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("different seeds should give different workloads")
	}
}

func TestGenerateInvalidConfig(t *testing.T) {
	if _, err := Generate(Config{}); err == nil {
		t.Error("zero config should fail validation")
	}
}

func TestMustGeneratePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustGenerate should panic on invalid config")
		}
	}()
	MustGenerate(Config{})
}

func TestScaled(t *testing.T) {
	full := Alibaba(1)
	s := Scaled(1, 10)
	if s.Apps != full.Apps/10 || s.TargetContainers != full.TargetContainers/10 {
		t.Errorf("Scaled: %+v", s)
	}
	if one := Scaled(1, 1); one.Apps != full.Apps {
		t.Error("factor 1 should be identity")
	}
	if zero := Scaled(1, 0); zero.Apps != full.Apps {
		t.Error("factor 0 should be identity")
	}
}

func TestPriorityAppsAreBigger(t *testing.T) {
	w := MustGenerate(Scaled(3, 10))
	var hiCPU, loCPU, hi, lo int64
	for _, a := range w.Apps() {
		if a.Priority == workload.PriorityHigh {
			hiCPU += a.Demand.Dim(resource.CPU)
			hi++
		} else if a.Priority == workload.PriorityLow {
			loCPU += a.Demand.Dim(resource.CPU)
			lo++
		}
	}
	if hi == 0 || lo == 0 {
		t.Fatal("both classes should exist")
	}
	if hiCPU/hi <= loCPU/lo {
		t.Errorf("high-priority mean demand %d not above low %d (§V.A)", hiCPU/hi, loCPU/lo)
	}
}

func TestRoundTrip(t *testing.T) {
	w := MustGenerate(Scaled(11, 80))
	var buf bytes.Buffer
	if err := Write(&buf, w); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumContainers() != w.NumContainers() {
		t.Fatalf("round trip container count %d != %d", back.NumContainers(), w.NumContainers())
	}
	for i, a := range w.Apps() {
		b := back.Apps()[i]
		if a.ID != b.ID || a.Demand != b.Demand || a.Replicas != b.Replicas ||
			a.Priority != b.Priority || a.AntiAffinitySelf != b.AntiAffinitySelf ||
			len(a.AntiAffinityApps) != len(b.AntiAffinityApps) {
			t.Fatalf("app %s differs after round trip", a.ID)
		}
	}
	// Constraint semantics preserved.
	for _, a := range w.Apps() {
		for _, p := range w.AntiAffinePartners(a.ID) {
			if !back.AntiAffine(a.ID, p) {
				t.Fatalf("lost anti-affinity %s~%s in round trip", a.ID, p)
			}
		}
	}
}

func TestReadSkipsBlanksAndComments(t *testing.T) {
	in := `# comment
{"id":"a","cpu_milli":1000,"mem_mb":1024,"replicas":2,"priority":0}

{"id":"b","cpu_milli":2000,"mem_mb":2048,"replicas":1,"priority":2,"anti_affinity_apps":["a"]}
`
	w, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Apps()) != 2 || w.NumContainers() != 3 {
		t.Errorf("apps=%d containers=%d", len(w.Apps()), w.NumContainers())
	}
	if !w.AntiAffine("a", "b") {
		t.Error("across-app constraint lost")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("not json")); err == nil {
		t.Error("garbage should fail")
	}
	// Valid JSON but invalid workload (duplicate IDs).
	dup := `{"id":"a","cpu_milli":1,"mem_mb":1,"replicas":1,"priority":0}
{"id":"a","cpu_milli":1,"mem_mb":1,"replicas":1,"priority":0}`
	if _, err := Read(strings.NewReader(dup)); err == nil {
		t.Error("duplicate app IDs should fail workload validation")
	}
}

func TestConflictHeavyAppsExist(t *testing.T) {
	// §V.A: several LLAs conflict with thousands of containers.  At
	// scale 10 we expect at least one app with conflict degree in the
	// hundreds (the giants carry self anti-affinity by construction).
	w := MustGenerate(Scaled(42, 10))
	maxDeg := 0
	for _, a := range w.Apps() {
		if d := w.ConflictDegree(a.ID); d > maxDeg {
			maxDeg = d
		}
	}
	if maxDeg < 150 {
		t.Errorf("max conflict degree = %d, want >= 150 at scale 10", maxDeg)
	}
}

func TestFullScaleHeavyTail(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale generation in -short mode")
	}
	w := MustGenerate(Alibaba(42))
	s := w.ComputeStats()
	if s.AppsOver2000 < 1 {
		t.Errorf("AppsOver2000 = %d, want >= 1 at full scale (Fig. 8a tail)", s.AppsOver2000)
	}
	if s.Apps != 13056 {
		t.Errorf("Apps = %d, want 13056", s.Apps)
	}
	if s.Containers < 85000 || s.Containers > 120000 {
		t.Errorf("Containers = %d, want ~100000", s.Containers)
	}
	// Feasibility: total CPU demand must fit the 10k-machine cluster
	// with headroom for anti-affinity spreading.
	totalCores := s.TotalDemand.Dim(resource.CPU) / 1000
	if totalCores > 10000*32*85/100 {
		t.Errorf("total demand %d cores exceeds 85%% of the 10k-machine cluster", totalCores)
	}
}
