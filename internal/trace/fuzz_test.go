package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead ensures the JSONL parser never panics and that anything it
// accepts round-trips losslessly.
func FuzzRead(f *testing.F) {
	var seed bytes.Buffer
	if err := Write(&seed, MustGenerate(Scaled(1, 800))); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.String())
	f.Add("")
	f.Add("# just a comment\n")
	f.Add(`{"id":"a","cpu_milli":1000,"mem_mb":1,"replicas":1,"priority":0}`)
	f.Add(`{"id":"a","replicas":-1}`)
	f.Add("{\"id\":\"a\"}\n{\"id\":\"a\"}\n")
	f.Fuzz(func(t *testing.T, in string) {
		w, err := Read(strings.NewReader(in))
		if err != nil {
			return // rejected input is fine; panics are not
		}
		var buf bytes.Buffer
		if err := Write(&buf, w); err != nil {
			t.Fatalf("accepted workload failed to serialise: %v", err)
		}
		back, err := Read(&buf)
		if err != nil {
			t.Fatalf("round trip of accepted workload failed: %v", err)
		}
		if back.NumContainers() != w.NumContainers() {
			t.Fatalf("round trip changed container count: %d != %d",
				back.NumContainers(), w.NumContainers())
		}
	})
}

// FuzzReadCSV is the CSV analogue.
func FuzzReadCSV(f *testing.F) {
	var seed bytes.Buffer
	if err := WriteCSV(&seed, MustGenerate(Scaled(1, 800))); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.String())
	f.Add("")
	f.Add("app_id,cpu_milli,mem_mb,replicas,priority,anti_affinity_self,anti_affinity_apps\n")
	f.Fuzz(func(t *testing.T, in string) {
		w, err := ReadCSV(strings.NewReader(in))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteCSV(&buf, w); err != nil {
			t.Fatalf("accepted workload failed to serialise: %v", err)
		}
		if _, err := ReadCSV(&buf); err != nil {
			t.Fatalf("round trip of accepted workload failed: %v", err)
		}
	})
}
