package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestCSVRoundTrip(t *testing.T) {
	w := MustGenerate(Scaled(19, 200))
	var buf bytes.Buffer
	if err := WriteCSV(&buf, w); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumContainers() != w.NumContainers() {
		t.Fatalf("containers %d != %d", back.NumContainers(), w.NumContainers())
	}
	for i, a := range w.Apps() {
		b := back.Apps()[i]
		if a.ID != b.ID || a.Demand != b.Demand || a.Replicas != b.Replicas ||
			a.Priority != b.Priority || a.AntiAffinitySelf != b.AntiAffinitySelf ||
			len(a.AntiAffinityApps) != len(b.AntiAffinityApps) {
			t.Fatalf("app %s differs after CSV round trip", a.ID)
		}
	}
	// Anti-affinity semantics preserved symmetric-closure-wise.
	for _, a := range w.Apps() {
		for _, p := range w.AntiAffinePartners(a.ID) {
			if !back.AntiAffine(a.ID, p) {
				t.Fatalf("lost %s~%s", a.ID, p)
			}
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"empty", ""},
		{"bad header", "x,y,z,a,b,c,d\n"},
		{"bad cpu", "app_id,cpu_milli,mem_mb,replicas,priority,anti_affinity_self,anti_affinity_apps\na,x,1,1,0,false,\n"},
		{"bad mem", "app_id,cpu_milli,mem_mb,replicas,priority,anti_affinity_self,anti_affinity_apps\na,1,x,1,0,false,\n"},
		{"bad replicas", "app_id,cpu_milli,mem_mb,replicas,priority,anti_affinity_self,anti_affinity_apps\na,1,1,x,0,false,\n"},
		{"bad priority", "app_id,cpu_milli,mem_mb,replicas,priority,anti_affinity_self,anti_affinity_apps\na,1,1,1,x,false,\n"},
		{"bad bool", "app_id,cpu_milli,mem_mb,replicas,priority,anti_affinity_self,anti_affinity_apps\na,1,1,1,0,maybe,\n"},
		{"unknown partner", "app_id,cpu_milli,mem_mb,replicas,priority,anti_affinity_self,anti_affinity_apps\na,1,1,1,0,false,ghost\n"},
		{"wrong columns", "app_id,cpu_milli,mem_mb,replicas,priority,anti_affinity_self,anti_affinity_apps\na,1,1\n"},
	}
	for _, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c.in)); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestCSVPartnersColumn(t *testing.T) {
	in := `app_id,cpu_milli,mem_mb,replicas,priority,anti_affinity_self,anti_affinity_apps
a,1000,1024,2,0,true,
b,2000,2048,1,2,false,a
c,500,512,3,1,false,a;b
`
	w, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if !w.AntiAffine("a", "b") || !w.AntiAffine("a", "c") || !w.AntiAffine("b", "c") {
		t.Error("partner parsing lost pairs")
	}
	if !w.AntiAffine("a", "a") {
		t.Error("self flag lost")
	}
}
