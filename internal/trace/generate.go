// Package trace synthesises and (de)serialises Alibaba-shaped LLA
// workload traces.  The real trace is not distributable, so the
// generator reproduces the statistical features the paper reports
// (Fig. 8 and §V.A) from a seed:
//
//   - ~13,056 applications, ~100,000 containers in total;
//   - 64% of LLAs have a single instance;
//   - 85% of LLAs have fewer than 50 containers;
//   - a heavy tail with a few LLAs above 2,000 containers;
//   - ~70% of LLAs carry anti-affinity constraints, ~15% priority;
//   - per-container demand capped at 16 CPU / 32 GB;
//   - high-priority LLAs tend to have more instances and larger
//     demands and conflict with thousands of containers (§V.A).
//
// Generation is deterministic for a given Config (including Seed) so
// every experiment is reproducible.
package trace

import (
	"fmt"
	"math/rand"
	"sort"

	"aladdin/internal/resource"
	"aladdin/internal/workload"
)

// Config controls the synthetic generator.
type Config struct {
	// Seed drives all randomness.
	Seed int64
	// Apps is the number of applications (paper: 13,056).
	Apps int
	// TargetContainers approximately bounds total containers
	// (paper: ~100,000); the replica sampler is calibrated so the
	// total lands near this without truncating the distribution.
	TargetContainers int
	// AntiAffinityFraction of apps carry anti-affinity (paper: ~0.70).
	AntiAffinityFraction float64
	// PriorityFraction of apps have elevated priority (paper: ~0.15).
	PriorityFraction float64
	// MaxDemand caps per-container demand (paper: 16 CPU / 32 GB).
	MaxDemand resource.Vector
}

// Alibaba returns the paper's full-scale workload configuration.
func Alibaba(seed int64) Config {
	return Config{
		Seed:                 seed,
		Apps:                 13056,
		TargetContainers:     100000,
		AntiAffinityFraction: 0.70,
		PriorityFraction:     0.15,
		MaxDemand:            resource.Cores(16, 32*1024),
	}
}

// Scaled returns the Alibaba configuration shrunk by factor (e.g. 10
// gives ~1,306 apps / ~10,000 containers), keeping all ratios.
func Scaled(seed int64, factor int) Config {
	cfg := Alibaba(seed)
	if factor > 1 {
		cfg.Apps /= factor
		cfg.TargetContainers /= factor
	}
	return cfg
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Apps <= 0 {
		return fmt.Errorf("trace: Apps must be positive, got %d", c.Apps)
	}
	if c.TargetContainers < c.Apps {
		return fmt.Errorf("trace: TargetContainers %d below Apps %d (every app needs one container)",
			c.TargetContainers, c.Apps)
	}
	if c.AntiAffinityFraction < 0 || c.AntiAffinityFraction > 1 {
		return fmt.Errorf("trace: AntiAffinityFraction %v out of [0,1]", c.AntiAffinityFraction)
	}
	if c.PriorityFraction < 0 || c.PriorityFraction > 1 {
		return fmt.Errorf("trace: PriorityFraction %v out of [0,1]", c.PriorityFraction)
	}
	if c.MaxDemand.Zero() {
		return fmt.Errorf("trace: MaxDemand must be non-zero")
	}
	return nil
}

// Generate synthesises a workload from the configuration.
func Generate(cfg Config) (*workload.Workload, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	apps := make([]*workload.App, cfg.Apps)
	// Pre-assign priority classes so demand sampling can correlate
	// with them (high-priority LLAs are bigger, §V.A).
	numPriority := int(float64(cfg.Apps)*cfg.PriorityFraction + 0.5)
	numHigh := numPriority / 3
	for i := range apps {
		prio := workload.PriorityLow
		switch {
		case i < numHigh:
			prio = workload.PriorityHigh
		case i < numPriority:
			prio = workload.PriorityMid
		}
		apps[i] = &workload.App{
			ID:       fmt.Sprintf("app-%05d", i),
			Priority: prio,
		}
	}
	// Shuffle so priority classes are interleaved in submission order.
	rng.Shuffle(len(apps), func(i, j int) { apps[i], apps[j] = apps[j], apps[i] })

	sampleReplicas(rng, apps, cfg)
	sampleDemands(rng, apps, cfg)
	sampleAntiAffinity(rng, apps, cfg)

	return workload.New(apps)
}

// MustGenerate is Generate that panics on error, for tests/examples
// (the Must* convention).
//
//aladdin:nondeterministic-ok Must* constructor; inputs are static
func MustGenerate(cfg Config) *workload.Workload {
	w, err := Generate(cfg)
	if err != nil {
		panic(err)
	}
	return w
}

// sampleReplicas draws per-app container counts matching Fig. 8(a):
// 64% singles, a small-replica class, a mid class at and above 50
// replicas (so ~90% of apps stay under 50, the paper reports 85%),
// and a handful of giants.  Giant size scales with the trace target
// (full scale: >2,000 replicas) so scaled-down traces stay feasible
// on proportionally scaled-down clusters.
//
// Class calibration keeps the total near TargetContainers without a
// global rescale: 0.64n singles + 0.27n small (mean ≈ 5.3) + ~0.09n
// mid (mean ≈ 55) + giants (T/45 each) ≈ T when T/n ≈ 7.7 as in the
// Alibaba trace.
func sampleReplicas(rng *rand.Rand, apps []*workload.App, cfg Config) {
	n := len(apps)
	numSingle := int(0.64 * float64(n))
	numGiant := n / 2000 // ~6 giants at full scale
	if numGiant == 0 {
		numGiant = 1
	}
	numSmall := int(0.27 * float64(n))
	numMid := n - numSingle - numSmall - numGiant
	if numMid < 0 {
		numMid = 0
	}
	giantMin := cfg.TargetContainers / 50
	giantMax := cfg.TargetContainers / 40
	if giantMin < 2 {
		giantMin = 2
	}
	if giantMax <= giantMin {
		giantMax = giantMin + 1
	}

	type class struct {
		count    int
		min, max int
	}
	classes := []class{
		{numSingle, 1, 1},
		{numSmall, 2, 12},
		{numMid, 50, 80},
		{numGiant, giantMin, giantMax},
	}
	// Deal classes onto apps.  Priority apps preferentially receive
	// the small multi-replica class (priority LLAs have more
	// instances than the single-instance majority, §V.A) while the
	// mid and giant spread-service classes go to the low-priority
	// tail, keeping the workload feasible.
	var prios, lows []*workload.App
	for _, a := range apps {
		if a.Priority > workload.PriorityLow {
			prios = append(prios, a)
		} else {
			lows = append(lows, a)
		}
	}
	draw := func(c class, a *workload.App) {
		if c.min >= c.max {
			a.Replicas = c.min
			return
		}
		// Squared-uniform skew biases toward the low end of the
		// class, matching the long-tailed CDF.
		u := rng.Float64()
		a.Replicas = c.min + int(u*u*float64(c.max-c.min))
	}
	// small class: priority apps first, then lows.
	smallTargets := append(append([]*workload.App{}, prios...), lows...)
	si := 0
	for k := 0; k < classes[1].count && si < len(smallTargets); k++ {
		draw(classes[1], smallTargets[si])
		si++
	}
	// giant and mid classes: low-priority apps not yet assigned.
	var rest []*workload.App
	for _, a := range smallTargets[si:] {
		rest = append(rest, a)
	}
	ri := 0
	for _, cl := range []int{3, 2} {
		c := classes[cl]
		for k := 0; k < c.count && ri < len(rest); k++ {
			draw(c, rest[ri])
			ri++
		}
	}
	// Everything left is a single.
	for _, a := range rest[ri:] {
		a.Replicas = 1
	}
}

// sampleDemands draws per-container demand.  Most containers are
// small (1–4 cores); high-priority apps skew large, up to the 16-core
// / 32 GB cap.
func sampleDemands(rng *rand.Rand, apps []*workload.App, cfg Config) {
	maxCPU := cfg.MaxDemand.Dim(resource.CPU) / 1000
	if maxCPU < 1 {
		maxCPU = 1
	}
	for _, a := range apps {
		var cores int64
		switch a.Priority {
		case workload.PriorityHigh:
			// {4,8,16}: high-priority LLAs have the largest demands
			// (§V.A); the 16-core (half-machine) containers are what
			// break evenly-spreading schedulers once mean utilisation
			// passes 50%.
			r := rng.Intn(20)
			switch {
			case r < 6:
				cores = 4
			case r < 14:
				cores = 8
			default:
				cores = 16
			}
		case workload.PriorityMid:
			// {1,2,4,8} mean ≈ 2.7 cores.
			r := rng.Intn(10)
			switch {
			case r < 3:
				cores = 1
			case r < 7:
				cores = 2
			case r < 9:
				cores = 4
			default:
				cores = 8
			}
		default:
			// {1,2,4,8} skewed low: mean ≈ 2 cores.
			r := rng.Intn(10)
			switch {
			case r < 5:
				cores = 1
			case r < 8:
				cores = 2
			case r < 9:
				cores = 4
			default:
				cores = 8
			}
		}
		// Spread services with many replicas are small per replica;
		// without this cap the workload would not fit the paper's
		// cluster.
		if a.Replicas >= 50 && cores > 2 {
			cores = 2
		}
		if cores > maxCPU {
			cores = maxCPU
		}
		// Memory tracks CPU at 2 GB per core, capped.
		memMB := cores * 2048
		if memMB > cfg.MaxDemand.Dim(resource.Memory) {
			memMB = cfg.MaxDemand.Dim(resource.Memory)
		}
		a.Demand = resource.Cores(cores, 0).WithDim(resource.Memory, memMB)
	}
}

// sampleAntiAffinity marks ~AntiAffinityFraction of apps with
// constraints: multi-instance constrained apps get self anti-affinity
// (spread for fault tolerance), and a subset also gets across-app
// pairs; "several LLAs cannot be co-located with at least other 5,000
// containers" — big high-priority apps get partners with many
// containers.
func sampleAntiAffinity(rng *rand.Rand, apps []*workload.App, cfg Config) {
	n := len(apps)
	numConstrained := int(float64(n)*cfg.AntiAffinityFraction + 0.5)
	// Giants are always constrained: the paper observes that the LLAs
	// conflicting with thousands of containers are exactly the large
	// spread services (§V.A).
	var constrained []*workload.App
	inConstrained := make(map[string]bool, numConstrained)
	for _, a := range apps {
		if a.Replicas >= 200 {
			constrained = append(constrained, a)
			inConstrained[a.ID] = true
		}
	}
	for _, a := range apps {
		if len(constrained) >= numConstrained {
			break
		}
		if !inConstrained[a.ID] {
			constrained = append(constrained, a)
			inConstrained[a.ID] = true
		}
	}
	for _, a := range constrained {
		if a.Replicas > 1 {
			a.AntiAffinitySelf = true
		}
	}
	// Across-app pairs: ~20% of constrained apps pick 1–3 partners
	// among other constrained apps.
	for i, a := range constrained {
		if rng.Float64() >= 0.20 {
			continue
		}
		pairs := 1 + rng.Intn(3)
		seen := map[string]bool{}
		for k := 0; k < pairs; k++ {
			j := rng.Intn(len(constrained))
			if j == i {
				continue
			}
			other := constrained[j]
			if seen[other.ID] {
				continue
			}
			seen[other.ID] = true
			a.AntiAffinityApps = append(a.AntiAffinityApps, other.ID)
		}
		sort.Strings(a.AntiAffinityApps)
	}
	// Ensure single-instance constrained apps still carry at least an
	// across-app edge so the 70% constraint fraction holds.
	for i, a := range constrained {
		if a.AntiAffinitySelf || len(a.AntiAffinityApps) > 0 {
			continue
		}
		j := (i + 1) % len(constrained)
		if constrained[j].ID != a.ID {
			a.AntiAffinityApps = append(a.AntiAffinityApps, constrained[j].ID)
		}
	}

	// Hot apps (§V.A): "several LLAs cannot be co-located with at
	// least other 5,000 containers, and these applications usually
	// have higher priorities and larger resource requirements."
	// Link a handful of high-priority apps against the biggest
	// spread services so their conflict sets cover a few percent of
	// all containers.
	var spreaders []*workload.App
	for _, a := range constrained {
		if a.Replicas >= 50 {
			spreaders = append(spreaders, a)
		}
	}
	sort.Slice(spreaders, func(i, j int) bool {
		if spreaders[i].Replicas != spreaders[j].Replicas {
			return spreaders[i].Replicas > spreaders[j].Replicas
		}
		return spreaders[i].ID < spreaders[j].ID
	})
	if len(spreaders) == 0 {
		return
	}
	numHot := n / 200
	if numHot < 2 {
		numHot = 2
	}
	hot := 0
	for _, a := range apps {
		if hot >= numHot {
			break
		}
		if a.Priority != workload.PriorityHigh {
			continue
		}
		links := 2 + rng.Intn(2)
		if links > len(spreaders) {
			links = len(spreaders)
		}
		seen := map[string]bool{}
		for _, p := range a.AntiAffinityApps {
			seen[p] = true
		}
		for k := 0; k < links; k++ {
			p := spreaders[(hot+k)%len(spreaders)]
			if p.ID == a.ID || seen[p.ID] {
				continue
			}
			seen[p.ID] = true
			a.AntiAffinityApps = append(a.AntiAffinityApps, p.ID)
		}
		sort.Strings(a.AntiAffinityApps)
		hot++
	}
}
