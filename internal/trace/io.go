package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"aladdin/internal/resource"
	"aladdin/internal/workload"
)

// appRecord is the JSON-lines on-disk form of one application.
type appRecord struct {
	ID               string   `json:"id"`
	CPUMilli         int64    `json:"cpu_milli"`
	MemMB            int64    `json:"mem_mb"`
	Replicas         int      `json:"replicas"`
	Priority         int      `json:"priority"`
	AntiAffinitySelf bool     `json:"anti_affinity_self,omitempty"`
	AntiAffinityApps []string `json:"anti_affinity_apps,omitempty"`
}

// Write serialises the workload as JSON lines, one application per
// line — the same shape as the public Alibaba cluster-data dumps
// (one record per entity, streamable).
func Write(w io.Writer, wl *workload.Workload) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, a := range wl.Apps() {
		rec := appRecord{
			ID:               a.ID,
			CPUMilli:         a.Demand.Dim(resource.CPU),
			MemMB:            a.Demand.Dim(resource.Memory),
			Replicas:         a.Replicas,
			Priority:         int(a.Priority),
			AntiAffinitySelf: a.AntiAffinitySelf,
			AntiAffinityApps: a.AntiAffinityApps,
		}
		if err := enc.Encode(&rec); err != nil {
			return fmt.Errorf("trace: encode app %s: %w", a.ID, err)
		}
	}
	return bw.Flush()
}

// Read parses a JSON-lines trace back into a workload.
func Read(r io.Reader) (*workload.Workload, error) {
	var apps []*workload.App
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		var rec appRecord
		if err := json.Unmarshal([]byte(text), &rec); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		apps = append(apps, &workload.App{
			ID:               rec.ID,
			Demand:           resource.Milli(rec.CPUMilli, rec.MemMB),
			Replicas:         rec.Replicas,
			Priority:         workload.Priority(rec.Priority),
			AntiAffinitySelf: rec.AntiAffinitySelf,
			AntiAffinityApps: rec.AntiAffinityApps,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: scan: %w", err)
	}
	return workload.New(apps)
}
