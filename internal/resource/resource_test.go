package resource

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestCoresConstructor(t *testing.T) {
	v := Cores(4, 8192)
	if v.CPUMilli != 4000 {
		t.Errorf("CPUMilli = %d, want 4000", v.CPUMilli)
	}
	if v.MemMB != 8192 {
		t.Errorf("MemMB = %d, want 8192", v.MemMB)
	}
}

func TestMilliConstructor(t *testing.T) {
	v := Milli(250, 512)
	if v.CPUMilli != 250 || v.MemMB != 512 {
		t.Errorf("Milli(250,512) = %+v", v)
	}
}

func TestZero(t *testing.T) {
	if !(Vector{}).Zero() {
		t.Error("zero value should report Zero()")
	}
	if Cores(1, 0).Zero() {
		t.Error("non-zero CPU should not report Zero()")
	}
	if Milli(0, 1).Zero() {
		t.Error("non-zero memory should not report Zero()")
	}
}

func TestAddSub(t *testing.T) {
	a := Cores(2, 1024)
	b := Cores(1, 512)
	sum := a.Add(b)
	if sum != Cores(3, 1536) {
		t.Errorf("Add = %v", sum)
	}
	diff := a.Sub(b)
	if diff != Cores(1, 512) {
		t.Errorf("Sub = %v", diff)
	}
	neg := b.Sub(a)
	if neg.CPUMilli != -1000 || neg.MemMB != -512 {
		t.Errorf("Sub underflow = %v", neg)
	}
}

func TestSubChecked(t *testing.T) {
	a := Cores(2, 1024)
	b := Cores(1, 512)
	if _, err := a.SubChecked(b); err != nil {
		t.Errorf("SubChecked ok case: %v", err)
	}
	if _, err := b.SubChecked(a); !errors.Is(err, ErrNegative) {
		t.Errorf("SubChecked underflow err = %v, want ErrNegative", err)
	}
	// Underflow on a single dimension must also fail.
	c := Milli(500, 2048)
	if _, err := a.SubChecked(c); !errors.Is(err, ErrNegative) {
		t.Errorf("SubChecked single-dim underflow err = %v", err)
	}
}

func TestScale(t *testing.T) {
	v := Cores(2, 100).Scale(3)
	if v != Cores(6, 300) {
		t.Errorf("Scale = %v", v)
	}
	if got := Cores(2, 100).Scale(0); !got.Zero() {
		t.Errorf("Scale(0) = %v", got)
	}
}

func TestFits(t *testing.T) {
	machine := Cores(32, 65536)
	cases := []struct {
		demand Vector
		want   bool
	}{
		{Cores(16, 32768), true},
		{Cores(32, 65536), true},
		{Cores(33, 0), false},
		{Cores(0, 65537), false},
		{Vector{}, true},
	}
	for _, c := range cases {
		if got := c.demand.Fits(machine); got != c.want {
			t.Errorf("Fits(%v, %v) = %v, want %v", c.demand, machine, got, c.want)
		}
	}
}

func TestDominates(t *testing.T) {
	if !Cores(4, 400).Dominates(Cores(4, 400)) {
		t.Error("vector should dominate itself")
	}
	if !Cores(4, 400).Dominates(Cores(3, 100)) {
		t.Error("strictly larger should dominate")
	}
	if Cores(4, 100).Dominates(Cores(3, 200)) {
		t.Error("mixed comparison should not dominate")
	}
}

func TestMaxMin(t *testing.T) {
	a, b := Milli(100, 900), Milli(800, 200)
	if got := a.Max(b); got != Milli(800, 900) {
		t.Errorf("Max = %v", got)
	}
	if got := a.Min(b); got != Milli(100, 200) {
		t.Errorf("Min = %v", got)
	}
}

func TestDominantShare(t *testing.T) {
	capacity := Cores(32, 64*1024)
	v := Cores(16, 1024) // CPU half full, memory small
	if got := v.DominantShare(capacity); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("DominantShare = %v, want 0.5", got)
	}
	// Zero capacity with demand saturates.
	if got := Cores(1, 0).DominantShare(Vector{}); got != 1 {
		t.Errorf("DominantShare vs zero capacity = %v, want 1", got)
	}
	if got := (Vector{}).DominantShare(Vector{}); got != 0 {
		t.Errorf("DominantShare zero/zero = %v, want 0", got)
	}
}

func TestUtilization(t *testing.T) {
	capacity := Cores(10, 1000)
	used := Cores(5, 250)
	// mean of 0.5 and 0.25
	if got := Utilization(used, capacity); math.Abs(got-0.375) > 1e-9 {
		t.Errorf("Utilization = %v, want 0.375", got)
	}
	if got := Utilization(used, Vector{}); got != 0 {
		t.Errorf("Utilization vs zero capacity = %v, want 0", got)
	}
}

func TestCPUUtilization(t *testing.T) {
	if got := CPUUtilization(Cores(8, 0), Cores(32, 64)); math.Abs(got-0.25) > 1e-9 {
		t.Errorf("CPUUtilization = %v", got)
	}
}

func TestString(t *testing.T) {
	if got := Cores(4, 8192).String(); got != "4c/8192MB" {
		t.Errorf("String = %q", got)
	}
	if got := Milli(250, 64).String(); got != "250m/64MB" {
		t.Errorf("String = %q", got)
	}
}

func TestDimAccessors(t *testing.T) {
	v := Milli(123, 456)
	if v.Dim(CPU) != 123 || v.Dim(Memory) != 456 {
		t.Errorf("Dim accessors: %v", v)
	}
	if v.Dim(Dimension(99)) != 0 {
		t.Error("unknown dimension should read 0")
	}
	v2 := v.WithDim(CPU, 999)
	if v2.Dim(CPU) != 999 || v2.Dim(Memory) != 456 {
		t.Errorf("WithDim: %v", v2)
	}
	if v.Dim(CPU) != 123 {
		t.Error("WithDim must not mutate the receiver")
	}
	if got := v.WithDim(Dimension(99), 5); got != v {
		t.Errorf("WithDim unknown dimension changed vector: %v", got)
	}
}

func TestDimensionString(t *testing.T) {
	if CPU.String() != "cpu" || Memory.String() != "mem" {
		t.Error("dimension names")
	}
	if Dimension(7).String() != "dim(7)" {
		t.Errorf("unknown dimension name = %q", Dimension(7).String())
	}
}

func TestSum(t *testing.T) {
	vs := []Vector{Cores(1, 10), Cores(2, 20), Cores(3, 30)}
	if got := Sum(vs); got != Cores(6, 60) {
		t.Errorf("Sum = %v", got)
	}
	if got := Sum(nil); !got.Zero() {
		t.Errorf("Sum(nil) = %v", got)
	}
}

// clamp keeps quick-generated values in a range where arithmetic
// cannot overflow int64.
func clamp(x int64) int64 {
	if x < 0 {
		x = -x
	}
	return x % (1 << 30)
}

func clampVec(v Vector) Vector {
	return Vector{CPUMilli: clamp(v.CPUMilli), MemMB: clamp(v.MemMB)}
}

func TestQuickAddCommutative(t *testing.T) {
	f := func(a, b Vector) bool {
		a, b = clampVec(a), clampVec(b)
		return a.Add(b) == b.Add(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickAddSubRoundTrip(t *testing.T) {
	f := func(a, b Vector) bool {
		a, b = clampVec(a), clampVec(b)
		return a.Add(b).Sub(b) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickFitsAntisymmetry(t *testing.T) {
	// If a fits in b and b fits in a then they are equal.
	f := func(a, b Vector) bool {
		a, b = clampVec(a), clampVec(b)
		if a.Fits(b) && b.Fits(a) {
			return a == b
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickFitsMonotone(t *testing.T) {
	// Adding demand never makes something fit that did not fit.
	f := func(a, extra, cap Vector) bool {
		a, extra, cap = clampVec(a), clampVec(extra), clampVec(cap)
		if !a.Fits(cap) {
			return !a.Add(extra).Fits(cap)
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickDominantShareBounds(t *testing.T) {
	f := func(a, cap Vector) bool {
		a, cap = clampVec(a), clampVec(cap)
		s := a.DominantShare(cap)
		if s < 0 {
			return false
		}
		// If a fits, the share is at most 1.
		if a.Fits(cap) && s > 1 {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickMaxDominates(t *testing.T) {
	f := func(a, b Vector) bool {
		a, b = clampVec(a), clampVec(b)
		m := a.Max(b)
		return m.Dominates(a) && m.Dominates(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
