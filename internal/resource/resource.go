// Package resource provides multidimensional resource vectors used
// throughout the scheduler: container demands, machine capacities and
// the arithmetic the capacity function of the flow network is built on.
//
// The paper's capacity function c(i,j) is an N-tuple (x1, x2, ..., xn)
// of resource dimensions (§III.C).  The evaluation restricts itself to
// CPU for fairness against Firmament, but the model here carries both
// CPU and memory so the multidimensional code paths are always
// exercised; adding further dimensions only grows the linear factor c
// of the time complexity (§IV.D).
package resource

import (
	"errors"
	"fmt"
)

// Dimension identifies one axis of a resource vector.
type Dimension int

const (
	// CPU is measured in milli-cores (1000 = one core), matching the
	// granularity Kubernetes uses, so fractional-core containers are
	// representable without floating point.
	CPU Dimension = iota
	// Memory is measured in MiB.
	Memory

	// NumDimensions is the number of axes in a Vector.
	NumDimensions
)

// String returns the conventional short name of the dimension.
func (d Dimension) String() string {
	switch d {
	case CPU:
		return "cpu"
	case Memory:
		return "mem"
	default:
		return fmt.Sprintf("dim(%d)", int(d))
	}
}

// Vector is a point in resource space.  The zero value is the empty
// (all-zero) vector and is ready to use.
type Vector struct {
	// CPUMilli is CPU demand/capacity in milli-cores.
	CPUMilli int64
	// MemMB is memory demand/capacity in MiB.
	MemMB int64
}

// ErrNegative is returned by operations that would produce a vector
// with a negative component.
var ErrNegative = errors.New("resource: negative component")

// NoCapacity is a sentinel strictly below every valid capacity: no
// demand — not even the zero vector — Fits it.  It is the identity
// element for Max-aggregation over free vectors, so aggregates over
// empty machine sets (e.g. padding leaves of the search index, or the
// "used machines only" view of an all-empty subtree) admit nothing.
var NoCapacity = Vector{CPUMilli: -1, MemMB: -1}

// Cores builds a vector from whole cores and MiB of memory.
func Cores(cpu, memMB int64) Vector {
	return Vector{CPUMilli: cpu * 1000, MemMB: memMB}
}

// Milli builds a vector from milli-cores and MiB of memory.
func Milli(cpuMilli, memMB int64) Vector {
	return Vector{CPUMilli: cpuMilli, MemMB: memMB}
}

// Zero reports whether every component is zero.
func (v Vector) Zero() bool { return v.CPUMilli == 0 && v.MemMB == 0 }

// Dim returns the named component.
func (v Vector) Dim(d Dimension) int64 {
	switch d {
	case CPU:
		return v.CPUMilli
	case Memory:
		return v.MemMB
	default:
		return 0
	}
}

// WithDim returns a copy of v with the named component replaced.
func (v Vector) WithDim(d Dimension, val int64) Vector {
	switch d {
	case CPU:
		v.CPUMilli = val
	case Memory:
		v.MemMB = val
	}
	return v
}

// Add returns v + o.
func (v Vector) Add(o Vector) Vector {
	return Vector{CPUMilli: v.CPUMilli + o.CPUMilli, MemMB: v.MemMB + o.MemMB}
}

// Sub returns v - o.  Components may go negative; use SubChecked when
// that would indicate a bookkeeping bug.
func (v Vector) Sub(o Vector) Vector {
	return Vector{CPUMilli: v.CPUMilli - o.CPUMilli, MemMB: v.MemMB - o.MemMB}
}

// SubChecked returns v - o, or ErrNegative if any component of the
// result would be negative.
func (v Vector) SubChecked(o Vector) (Vector, error) {
	r := v.Sub(o)
	if r.CPUMilli < 0 || r.MemMB < 0 {
		return Vector{}, fmt.Errorf("%w: %s - %s", ErrNegative, v, o)
	}
	return r, nil
}

// Scale returns v with every component multiplied by k.
func (v Vector) Scale(k int64) Vector {
	return Vector{CPUMilli: v.CPUMilli * k, MemMB: v.MemMB * k}
}

// Fits reports whether v ≤ capacity component-wise.  This is the
// linear part of the paper's Equation 6: the resource requirement of a
// container is no larger than the provisioning of a machine on every
// dimension.
func (v Vector) Fits(capacity Vector) bool {
	return v.CPUMilli <= capacity.CPUMilli && v.MemMB <= capacity.MemMB
}

// Dominates reports whether v ≥ o on every dimension.
func (v Vector) Dominates(o Vector) bool {
	return v.CPUMilli >= o.CPUMilli && v.MemMB >= o.MemMB
}

// Max returns the component-wise maximum of v and o.
func (v Vector) Max(o Vector) Vector {
	return Vector{CPUMilli: max64(v.CPUMilli, o.CPUMilli), MemMB: max64(v.MemMB, o.MemMB)}
}

// Min returns the component-wise minimum of v and o.
func (v Vector) Min(o Vector) Vector {
	return Vector{CPUMilli: min64(v.CPUMilli, o.CPUMilli), MemMB: min64(v.MemMB, o.MemMB)}
}

// DominantShare returns the largest ratio v[d]/capacity[d] over all
// dimensions, i.e. the dominant resource share of v against capacity.
// A zero-capacity dimension with non-zero demand yields 1.0 so that
// the demand is treated as saturating.
func (v Vector) DominantShare(capacity Vector) float64 {
	share := ratio(v.CPUMilli, capacity.CPUMilli)
	if s := ratio(v.MemMB, capacity.MemMB); s > share {
		share = s
	}
	return share
}

// Utilization returns the mean utilisation of used against capacity
// across dimensions, in [0,1].  Dimensions with zero capacity are
// skipped.  Floats are fine here: utilisation is a reporting metric,
// never an allocation decision, so rounding cannot double-book.
//
//aladdin:float-ok reporting metric, not capacity accounting
func Utilization(used, capacity Vector) float64 {
	sum, n := 0.0, 0
	if capacity.CPUMilli > 0 {
		sum += float64(used.CPUMilli) / float64(capacity.CPUMilli)
		n++
	}
	if capacity.MemMB > 0 {
		sum += float64(used.MemMB) / float64(capacity.MemMB)
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// CPUUtilization returns used CPU over capacity CPU in [0,1].  The
// paper's efficiency figures (Fig. 11) are CPU-only.
func CPUUtilization(used, capacity Vector) float64 {
	return ratio(used.CPUMilli, capacity.CPUMilli)
}

// String renders the vector as "4c/8192MB" style text.
func (v Vector) String() string {
	if v.CPUMilli%1000 == 0 {
		return fmt.Sprintf("%dc/%dMB", v.CPUMilli/1000, v.MemMB)
	}
	return fmt.Sprintf("%dm/%dMB", v.CPUMilli, v.MemMB)
}

// Sum accumulates a slice of vectors.
func Sum(vs []Vector) Vector {
	var total Vector
	for _, v := range vs {
		total = total.Add(v)
	}
	return total
}

// ratio divides as float for the reporting helpers above; allocation
// math stays integer.
//
//aladdin:float-ok reporting metric, not capacity accounting
func ratio(num, den int64) float64 {
	if den <= 0 {
		if num > 0 {
			return 1
		}
		return 0
	}
	return float64(num) / float64(den)
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
