package sim

import (
	"testing"

	"aladdin/internal/core"
	"aladdin/internal/gokube"
	"aladdin/internal/resource"
	"aladdin/internal/trace"
	"aladdin/internal/workload"
)

func smallWorkload() *workload.Workload {
	return workload.MustNew([]*workload.App{
		{ID: "web", Demand: resource.Cores(4, 4096), Replicas: 4, AntiAffinitySelf: true},
		{ID: "db", Demand: resource.Cores(8, 8192), Replicas: 2},
	})
}

func TestRunBasics(t *testing.T) {
	m, err := Run(Config{
		Scheduler: core.NewDefault(),
		Workload:  smallWorkload(),
		Machines:  8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Total != 6 || m.Deployed != 6 {
		t.Errorf("Total/Deployed = %d/%d", m.Total, m.Deployed)
	}
	if m.UndeployedFraction != 0 {
		t.Errorf("UndeployedFraction = %v", m.UndeployedFraction)
	}
	if m.TotalViolations() != 0 {
		t.Errorf("violations = %d", m.TotalViolations())
	}
	if m.UsedMachines < 4 {
		t.Errorf("UsedMachines = %d, want >= 4 (anti-affinity spread)", m.UsedMachines)
	}
	if m.Utilization.Max <= 0 {
		t.Error("utilisation range should be populated")
	}
	if m.Machines != 8 || m.Scheduler == "" {
		t.Errorf("metadata: %+v", m)
	}
}

func TestRunValidation(t *testing.T) {
	w := smallWorkload()
	if _, err := Run(Config{Workload: w, Machines: 4}); err == nil {
		t.Error("nil scheduler should fail")
	}
	if _, err := Run(Config{Scheduler: core.NewDefault(), Machines: 4}); err == nil {
		t.Error("nil workload should fail")
	}
	if _, err := Run(Config{Scheduler: core.NewDefault(), Workload: w}); err == nil {
		t.Error("zero machines should fail")
	}
}

func TestAntiAffinityRatio(t *testing.T) {
	m := Metrics{ViolationsWithin: 6, ViolationsAcross: 1, Inversions: 3}
	if got := m.AntiAffinityRatio(); got != 0.7 {
		t.Errorf("AntiAffinityRatio = %v", got)
	}
	if (Metrics{}).AntiAffinityRatio() != 0 {
		t.Error("no violations should give ratio 0")
	}
}

func TestRunAllParallel(t *testing.T) {
	w := trace.MustGenerate(trace.Scaled(3, 300))
	configs := []Config{
		{Scheduler: core.NewDefault(), Workload: w, Machines: 160},
		{Scheduler: gokube.NewDefault(), Workload: w, Machines: 160},
		{Scheduler: core.NewDefault(), Workload: w, Machines: 160, Order: workload.OrderCHP},
	}
	ms, err := RunAll(configs, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 3 {
		t.Fatalf("results = %d", len(ms))
	}
	for i, m := range ms {
		if m.Total != w.NumContainers() {
			t.Errorf("run %d: total %d", i, m.Total)
		}
	}
	if ms[2].Order != workload.OrderCHP {
		t.Error("order not preserved")
	}
}

func TestRunAllPropagatesError(t *testing.T) {
	w := smallWorkload()
	configs := []Config{
		{Scheduler: core.NewDefault(), Workload: w, Machines: 8},
		{Scheduler: core.NewDefault(), Workload: w, Machines: 0}, // invalid
	}
	if _, err := RunAll(configs, 2); err == nil {
		t.Error("invalid config error should propagate")
	}
}

func TestSweepOrders(t *testing.T) {
	w := smallWorkload()
	ms, err := SweepOrders(core.NewDefault(), w, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 4 {
		t.Fatalf("orders = %d", len(ms))
	}
	seen := map[workload.ArrivalOrder]bool{}
	for _, m := range ms {
		seen[m.Order] = true
	}
	for _, o := range workload.AllArrivalOrders() {
		if !seen[o] {
			t.Errorf("order %v missing", o)
		}
	}
}

func TestSweepMachines(t *testing.T) {
	w := smallWorkload()
	sizes := []int{4, 8, 16}
	ms, err := SweepMachines(core.NewDefault(), w, sizes, workload.OrderSubmission, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, m := range ms {
		if m.Machines != sizes[i] {
			t.Errorf("size %d != %d", m.Machines, sizes[i])
		}
	}
}

func TestEfficiencyEquation10(t *testing.T) {
	ms := []Metrics{
		{UsedMachines: 9242},
		{UsedMachines: 10477},
		{UsedMachines: 0}, // failed/empty run
	}
	eff := Efficiency(ms)
	if eff[0] != 0 {
		t.Errorf("best scheduler efficiency = %v, want 0", eff[0])
	}
	want := float64(10477)/9242 - 1
	if diff := eff[1] - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("eff[1] = %v, want %v", eff[1], want)
	}
	if eff[2] != 0 {
		t.Errorf("zero-machine run efficiency = %v", eff[2])
	}
	if all := Efficiency([]Metrics{{}, {}}); all[0] != 0 || all[1] != 0 {
		t.Error("all-zero runs should give zero efficiencies")
	}
}
