package sim

// splitmix64 is the SplitMix64 output function (Steele, Lea & Flood,
// "Fast Splittable Pseudorandom Number Generators", OOPSLA 2014).  It
// derives independent RNG substreams from one user-facing seed: every
// output bit depends on every input bit, so no pair of seeds shares a
// substream by construction.  The previous scheme seeded the failure
// stream with cfg.Seed + 0x5f3759df, which made runs with seeds S and
// S+0x5f3759df reuse each other's streams.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
