package sim

import (
	"fmt"

	"aladdin/internal/core"
	"aladdin/internal/resource"
	"aladdin/internal/sched"
	"aladdin/internal/stats"
	"aladdin/internal/topology"
	"aladdin/internal/workload"
)

// ShardedConfig describes one simulation run over the sharded
// scheduler core.  Opts carries the shard count (Options.Shards) and
// the SequentialShards oracle switch alongside the usual scheduler
// configuration.
type ShardedConfig struct {
	Opts     core.Options
	Workload *workload.Workload
	Machines int
	// MachinesPerRack / RacksPerCluster default to the topology
	// package defaults when zero.
	MachinesPerRack int
	RacksPerCluster int
	// Capacity defaults to the paper's 32 CPU / 64 GB machines.
	Capacity resource.Vector
	Order    workload.ArrivalOrder
}

// RunSharded executes one simulation through core.ShardedSession and
// returns the same Metrics as Run, so sharded and unsharded rows land
// in one table.  It mirrors core.Scheduler.Schedule over the session
// API: the full arrival queue goes in as one batch (each shard runs
// the complete placement pipeline over its slice, stranded containers
// spill across shards), then a consolidation pass drains light
// machines, then containers stranded by fragmentation get one more
// placement pass over the drained space.
//
// Allocations live on the per-shard topology copies — the parent
// cluster handed to NewSharded stays an empty routing map — so the
// utilisation statistics aggregate over ShardClusters().  Elapsed
// sums the Place batches' critical-path timings and WallElapsed their
// host wall-clock (see sched.Result); consolidation is bookkeeping
// outside the timed placement path, as in RunOnline.
func RunSharded(cfg ShardedConfig) (Metrics, error) {
	if cfg.Workload == nil {
		return Metrics{}, fmt.Errorf("sim: nil workload")
	}
	if cfg.Machines <= 0 {
		return Metrics{}, fmt.Errorf("sim: machine count %d must be positive", cfg.Machines)
	}
	capacity := cfg.Capacity
	if capacity.Zero() {
		capacity = resource.Cores(32, 64*1024)
	}
	cluster := topology.New(topology.Config{
		Machines:        cfg.Machines,
		MachinesPerRack: cfg.MachinesPerRack,
		RacksPerCluster: cfg.RacksPerCluster,
		Capacity:        capacity,
	})
	// The simulator never reads per-batch assignment maps (the final
	// Result is built from the session-wide Assignment below), so the
	// lean mode keeps ID-map construction out of the timed path.
	opts := cfg.Opts
	opts.LeanPlaceResult = true
	sess, err := core.NewSharded(opts, cfg.Workload, cluster)
	if err != nil {
		return Metrics{}, fmt.Errorf("sim: %w", err)
	}

	arrivals := cfg.Workload.Arrange(cfg.Order)
	res, err := sess.Place(arrivals)
	if err != nil {
		return Metrics{}, fmt.Errorf("sim: %s: %w", sess.Name(), err)
	}
	elapsed, wall := res.Elapsed, res.WallElapsed
	migrations, preempts, work := res.Migrations, res.Preemptions, res.WorkUnits
	undeployed := res.Undeployed

	consolidations := 0
	if cfg.Opts.Migration {
		n, cerr := sess.Consolidate()
		if cerr != nil {
			return Metrics{}, fmt.Errorf("sim: %s: consolidate: %w", sess.Name(), cerr)
		}
		consolidations = n

		// Drained machines expose whole-machine gaps; stranded
		// containers get one more try, mirroring Schedule's
		// post-consolidation rescue.
		if len(undeployed) > 0 {
			byID := make(map[string]*workload.Container, len(undeployed))
			for _, c := range cfg.Workload.Containers() {
				byID[c.ID] = c
			}
			retry := make([]*workload.Container, 0, len(undeployed))
			for _, id := range undeployed {
				if c := byID[id]; c != nil {
					retry = append(retry, c)
				}
			}
			res2, rerr := sess.Place(retry)
			if rerr != nil {
				return Metrics{}, fmt.Errorf("sim: %s: retry: %w", sess.Name(), rerr)
			}
			elapsed += res2.Elapsed
			wall += res2.WallElapsed
			migrations += res2.Migrations
			preempts += res2.Preemptions
			work += res2.WorkUnits
			undeployed = res2.Undeployed
		}
	}

	// Integrity gates before reporting: the shard sessions, their flow
	// networks and the wrapper's ownership tables must agree.
	if vs := sess.AuditInvariants(); len(vs) != 0 {
		return Metrics{}, fmt.Errorf("sim: %s: invariant violations after run: %v", sess.Name(), vs[0])
	}
	if err := sess.FlowConservation(); err != nil {
		return Metrics{}, fmt.Errorf("sim: %s: %w", sess.Name(), err)
	}

	final := &sched.Result{
		Scheduler:      sess.Name(),
		Assignment:     sess.Assignment(),
		Undeployed:     undeployed,
		Migrations:     migrations,
		Consolidations: consolidations,
		Preemptions:    preempts,
		Elapsed:        elapsed,
		WallElapsed:    wall,
		WorkUnits:      work,
	}
	final.Finalize(cfg.Workload)

	m := collect(Config{
		Scheduler: nil, Workload: cfg.Workload, Machines: cfg.Machines, Order: cfg.Order,
	}, cluster, final)
	// The parent cluster is empty by design; overwrite the topology
	// statistics with the aggregate over the shard clusters.
	m.UsedMachines, m.Utilization = shardedUtilization(sess.ShardClusters())
	return m, nil
}

// shardedUtilization aggregates used-machine count and the Fig. 11
// CPU-utilisation range across the shard topology copies.
func shardedUtilization(clusters []*topology.Cluster) (int, stats.Range) {
	used := 0
	lo, hi, sum := 1.0, 0.0, 0.0
	for _, cl := range clusters {
		for _, m := range cl.Machines() {
			if m.NumContainers() == 0 {
				continue
			}
			u := m.CPUUtilization()
			if u < lo {
				lo = u
			}
			if u > hi {
				hi = u
			}
			sum += u
			used++
		}
	}
	if used == 0 {
		return 0, stats.Range{}
	}
	return used, stats.Range{Min: lo, Mean: sum / float64(used), Max: hi}
}
