package sim

import (
	"path/filepath"
	"testing"
	"time"

	"aladdin/internal/checkpoint"
	"aladdin/internal/core"
	"aladdin/internal/trace"
)

func TestRunOnlineBasic(t *testing.T) {
	w := trace.MustGenerate(trace.Scaled(42, 400)) // ~65 apps wait: factor 400 -> ~32 apps
	m, err := RunOnline(OnlineConfig{
		Workload: w,
		Machines: 96,
		Options:  core.DefaultOptions(),
		Seed:     7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Arrived != len(w.Apps()) {
		t.Errorf("Arrived = %d, want %d", m.Arrived, len(w.Apps()))
	}
	if m.TotalContainers != w.NumContainers() {
		t.Errorf("TotalContainers = %d, want %d", m.TotalContainers, w.NumContainers())
	}
	if m.Violations != 0 {
		t.Errorf("Violations = %d, want 0", m.Violations)
	}
	if m.BatchLatency == nil || m.BatchLatency.Len() != m.Arrived {
		t.Error("BatchLatency should have one sample per arrival")
	}
	// Streaming estimates come from the registry's batch-latency
	// histogram: ordered, positive, and never above the observed
	// maximum's bucket ceiling.  (Bucket interpolation means they are
	// not exact sample quantiles — a p50 inside the le=100 bucket can
	// exceed the true sample median — but they cannot leave the
	// bucket holding the rank.)
	if m.StreamP99 < m.StreamP50 {
		t.Errorf("p99 %v < p50 %v", m.StreamP99, m.StreamP50)
	}
	if m.StreamP50 <= 0 {
		t.Errorf("StreamP50 = %v, want > 0", m.StreamP50)
	}
	hist, ok := m.Snapshot.Histograms["aladdin_place_batch_duration_us"]
	if !ok {
		t.Fatal("drain snapshot missing the batch-latency histogram")
	}
	if hist.Count != int64(m.Arrived) {
		t.Errorf("batch histogram count = %d, want one observation per arrival (%d)", hist.Count, m.Arrived)
	}
	if m.Snapshot.Counters["aladdin_placements_total"] == 0 {
		t.Error("drain snapshot recorded no placements")
	}
	if m.PeakUsedMachines <= 0 || m.PeakUsedMachines > 96 {
		t.Errorf("PeakUsedMachines = %d", m.PeakUsedMachines)
	}
	if m.PeakUtilization <= 0 || m.PeakUtilization > 1 {
		t.Errorf("PeakUtilization = %v", m.PeakUtilization)
	}
}

func TestRunOnlineDeterministic(t *testing.T) {
	w := trace.MustGenerate(trace.Scaled(3, 400))
	run := func() *OnlineMetrics {
		m, err := RunOnline(OnlineConfig{
			Workload: w, Machines: 96, Options: core.DefaultOptions(), Seed: 11,
		})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	a, b := run(), run()
	if a.RejectedContainers != b.RejectedContainers ||
		a.PeakUsedMachines != b.PeakUsedMachines ||
		a.Migrations != b.Migrations {
		t.Errorf("online run not deterministic: %+v vs %+v", a, b)
	}
}

func TestRunOnlineDeparturesFreeCapacity(t *testing.T) {
	// With lifetimes much shorter than the arrival horizon, a small
	// cluster absorbs a workload far larger than its capacity.
	w := trace.MustGenerate(trace.Scaled(42, 200)) // ~500 containers
	m, err := RunOnline(OnlineConfig{
		Workload:         w,
		Machines:         48, // far below the ~117 batch minimum
		Options:          core.DefaultOptions(),
		Seed:             5,
		MeanInterarrival: time.Second,
		MeanLifetime:     3 * time.Second, // churn: ~3 apps alive at once
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Departed == 0 {
		t.Error("expected departures")
	}
	frac := float64(m.RejectedContainers) / float64(m.TotalContainers)
	if frac > 0.25 {
		t.Errorf("rejected fraction %.2f too high for a churning cluster", frac)
	}
	if m.Violations != 0 {
		t.Errorf("Violations = %d", m.Violations)
	}
}

func TestRunOnlineBurstPhases(t *testing.T) {
	// A burst phase concentrates arrivals, raising the peak machine
	// high-water mark versus a flat arrival rate with heavy churn.
	w := trace.MustGenerate(trace.Scaled(42, 200))
	base := OnlineConfig{
		Workload:         w,
		Machines:         192,
		Options:          core.DefaultOptions(),
		Seed:             3,
		MeanInterarrival: time.Second,
		MeanLifetime:     2 * time.Second,
	}
	flat, err := RunOnline(base)
	if err != nil {
		t.Fatal(err)
	}
	burst := base
	burst.Phases = []float64{1, 50, 1}
	bursty, err := RunOnline(burst)
	if err != nil {
		t.Fatal(err)
	}
	if bursty.PeakUsedMachines <= flat.PeakUsedMachines {
		t.Errorf("burst peak %d should exceed flat peak %d",
			bursty.PeakUsedMachines, flat.PeakUsedMachines)
	}
	if bursty.Violations != 0 || flat.Violations != 0 {
		t.Error("violations in online runs")
	}
}

func TestRunOnlineArrivalLedgerBalances(t *testing.T) {
	// Regression: fully-rejected applications used to vanish from the
	// departure ledger — they got no departure event and no rejection
	// count, so Arrived could never be reconciled against Departed.  On
	// a tiny cluster some apps must be rejected outright, and the
	// ledger must still balance at drain.
	w := trace.MustGenerate(trace.Scaled(42, 200))
	m, err := RunOnline(OnlineConfig{
		Workload:         w,
		Machines:         2, // far too small: many apps place nothing
		Options:          core.DefaultOptions(),
		Seed:             9,
		MeanInterarrival: time.Second,
		// Lifetimes far beyond the arrival horizon: the cluster fills
		// once and later apps place nothing at all.
		MeanLifetime: 1000 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.RejectedApps == 0 {
		t.Fatal("a 4-machine cluster must reject some applications outright")
	}
	if m.Arrived != m.Departed+m.RejectedApps {
		t.Errorf("ledger unbalanced: Arrived %d != Departed %d + RejectedApps %d",
			m.Arrived, m.Departed, m.RejectedApps)
	}
	if m.Violations != 0 {
		t.Errorf("Violations = %d", m.Violations)
	}
}

func TestRunOnlineWithFailures(t *testing.T) {
	// Failure injection at a rate aggressive enough to guarantee
	// events: the run must complete audit-clean with the failure
	// ledger populated and every failure eventually repaired or left
	// down at drain (Recoveries <= Failures).
	w := trace.MustGenerate(trace.Scaled(42, 200))
	m, err := RunOnline(OnlineConfig{
		Workload:         w,
		Machines:         64,
		Options:          core.DefaultOptions(),
		Seed:             5,
		MeanInterarrival: time.Second,
		MeanLifetime:     5 * time.Second,
		MTBF:             2 * time.Second,
		MTTR:             3 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Failures == 0 {
		t.Fatal("MTBF of 2 interarrivals must produce failures")
	}
	if m.Recoveries > m.Failures {
		t.Errorf("Recoveries %d > Failures %d", m.Recoveries, m.Failures)
	}
	if m.Violations != 0 {
		t.Errorf("Violations = %d, want 0 — failure re-placement broke an invariant", m.Violations)
	}
	if m.FailureReplaced+m.FailureStranded != m.FailureEvicted {
		t.Errorf("failure ledger unbalanced: %d replaced + %d stranded != %d evicted",
			m.FailureReplaced, m.FailureStranded, m.FailureEvicted)
	}
	if m.Arrived != m.Departed+m.RejectedApps {
		t.Errorf("arrival ledger unbalanced under failures: Arrived %d != Departed %d + RejectedApps %d",
			m.Arrived, m.Departed, m.RejectedApps)
	}
	if m.FailureEvicted > 0 {
		if m.ReplaceLatency == nil || m.ReplaceLatency.Len() == 0 {
			t.Error("ReplaceLatency should have samples when containers were evicted")
		}
	}
}

func TestRunOnlineDeepAudit(t *testing.T) {
	// DeepAudit runs the full invariant Auditor (flow conservation,
	// index/aggregate drift, assignment cross-checks, preemption
	// ordering) after every failure and recovery: a correct scheduler
	// survives an aggressive failure schedule with zero findings.
	w := trace.MustGenerate(trace.Scaled(42, 120))
	m, err := RunOnline(OnlineConfig{
		Workload:         w,
		Machines:         48,
		Options:          core.DefaultOptions(),
		Seed:             7,
		MeanInterarrival: time.Second,
		MeanLifetime:     5 * time.Second,
		MTBF:             2 * time.Second,
		MTTR:             3 * time.Second,
		DeepAudit:        true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Failures == 0 {
		t.Fatal("MTBF of 2 interarrivals must produce failures")
	}
	if m.Violations != 0 {
		t.Errorf("Violations = %d, want 0 — deep audit found broken invariants", m.Violations)
	}
}

func TestRunOnlineFailuresDontPerturbArrivals(t *testing.T) {
	// The failure timeline draws from its own rng stream: enabling
	// failures must not change which applications arrive when, so the
	// arrival/total counters of a failure-free run are preserved.
	w := trace.MustGenerate(trace.Scaled(42, 300))
	base := OnlineConfig{
		Workload: w, Machines: 96, Options: core.DefaultOptions(), Seed: 11,
		MeanInterarrival: time.Second, MeanLifetime: 10 * time.Second,
	}
	clean, err := RunOnline(base)
	if err != nil {
		t.Fatal(err)
	}
	faulty := base
	faulty.MTBF = 3 * time.Second
	injected, err := RunOnline(faulty)
	if err != nil {
		t.Fatal(err)
	}
	if clean.Arrived != injected.Arrived || clean.TotalContainers != injected.TotalContainers {
		t.Errorf("failure injection changed the arrival sequence: %d/%d vs %d/%d",
			clean.Arrived, clean.TotalContainers, injected.Arrived, injected.TotalContainers)
	}
	if injected.Failures == 0 {
		t.Error("expected failures to be injected")
	}
}

func TestRunOnlineValidation(t *testing.T) {
	w := trace.MustGenerate(trace.Scaled(42, 400))
	if _, err := RunOnline(OnlineConfig{Machines: 8}); err == nil {
		t.Error("nil workload should fail")
	}
	if _, err := RunOnline(OnlineConfig{Workload: w}); err == nil {
		t.Error("zero machines should fail")
	}
}

func TestRunOnlineCheckpointing(t *testing.T) {
	w := trace.MustGenerate(trace.Scaled(42, 400))
	path := filepath.Join(t.TempDir(), "online.json")
	m, err := RunOnline(OnlineConfig{
		Workload:            w,
		Machines:            96,
		Options:             core.DefaultOptions(),
		Seed:                7,
		MTBF:                5 * time.Second,
		CheckpointPath:      path,
		CheckpointEvery:     2 * time.Second,
		CheckpointOnFailure: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// At least the drain checkpoint plus one per failure, and the file
	// on disk is a valid v2 snapshot restoring against the same trace.
	if m.Checkpoints < 1+m.Failures {
		t.Errorf("Checkpoints = %d, want >= %d", m.Checkpoints, 1+m.Failures)
	}
	snap, err := checkpoint.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	sess, _, err := snap.Restore(core.DefaultOptions(), w)
	if err != nil {
		t.Fatal(err)
	}
	if vs := sess.AuditInvariants(); len(vs) != 0 {
		t.Errorf("restored drain session violations: %v", vs)
	}
	if m.Violations != 0 {
		t.Errorf("Violations = %d, want 0", m.Violations)
	}
}

func TestRunOnlineCheckpointValidation(t *testing.T) {
	w := trace.MustGenerate(trace.Scaled(42, 800))
	if _, err := RunOnline(OnlineConfig{
		Workload: w, Machines: 8, Options: core.DefaultOptions(),
		CheckpointEvery: time.Second,
	}); err == nil {
		t.Error("CheckpointEvery without a path should fail")
	}
	if _, err := RunOnline(OnlineConfig{
		Workload: w, Machines: 8, Options: core.DefaultOptions(),
		CheckpointOnFailure: true,
	}); err == nil {
		t.Error("CheckpointOnFailure without a path should fail")
	}
}
