package sim

import (
	"testing"
	"time"

	"aladdin/internal/core"
	"aladdin/internal/trace"
)

// TestSplitmix64KnownAnswers pins the mix against the published
// SplitMix64 reference stream: seeding the reference generator with 0
// and stepping it yields mix(k·gamma) for k = 0, 1, 2, so those values
// (and the widely-used mix(1) vector) must match exactly.  A silent
// drift in the constants would quietly re-correlate every derived
// substream.
func TestSplitmix64KnownAnswers(t *testing.T) {
	var gamma uint64 = 0x9e3779b97f4a7c15
	cases := []struct{ in, want uint64 }{
		{0, 0xe220a8397b1dcdaf},
		{gamma, 0x6e789e6aa1b965f4},
		{gamma + gamma, 0x06c45d188009454f},
		{1, 0x910a2dec89025cc1},
	}
	for _, c := range cases {
		if got := splitmix64(c.in); got != c.want {
			t.Errorf("splitmix64(%#x) = %#x, want %#x", c.in, got, c.want)
		}
	}
}

// TestSplitmix64DecorrelatesSeeds is the regression for the additive
// substream derivation: the failure RNG used to be seeded with
// cfg.Seed + 0x5f3759df, so the failure stream of seed S was exactly
// the arrival stream of seed S + 0x5f3759df.  The mix must not
// preserve any fixed offset between consecutive seeds.
func TestSplitmix64DecorrelatesSeeds(t *testing.T) {
	for s := int64(0); s < 64; s++ {
		if int64(splitmix64(uint64(s))) == s+0x5f3759df {
			t.Errorf("seed %d: derived failure seed equals the old additive offset", s)
		}
	}
	// Consecutive seeds must not map to a constant stride (the defect
	// class: derived(S+1) - derived(S) independent of S).
	d0 := splitmix64(0) - splitmix64(1)
	d1 := splitmix64(1) - splitmix64(2)
	d2 := splitmix64(2) - splitmix64(3)
	if d0 == d1 && d1 == d2 {
		t.Fatalf("splitmix64 preserves a constant stride %#x across consecutive seeds", d0)
	}
}

// TestRunOnlineFailureStreamDeterministic pins that the new substream
// derivation keeps online runs reproducible: two runs with identical
// configs must inject the same failure schedule and land on identical
// ledgers.
func TestRunOnlineFailureStreamDeterministic(t *testing.T) {
	w := trace.MustGenerate(trace.Scaled(42, 200))
	cfg := OnlineConfig{
		Workload:         w,
		Machines:         64,
		Options:          core.DefaultOptions(),
		Seed:             5,
		MeanInterarrival: time.Second,
		MeanLifetime:     5 * time.Second,
		MTBF:             2 * time.Second,
		MTTR:             3 * time.Second,
	}
	a, err := RunOnline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunOnline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Failures == 0 {
		t.Fatal("config must inject failures for the determinism check to bite")
	}
	if a.Failures != b.Failures || a.Recoveries != b.Recoveries ||
		a.FailureEvicted != b.FailureEvicted || a.Arrived != b.Arrived ||
		a.Departed != b.Departed || a.RejectedContainers != b.RejectedContainers {
		t.Errorf("same seed diverged: run A {fail %d recover %d evicted %d arrived %d departed %d rejected %d}, run B {fail %d recover %d evicted %d arrived %d departed %d rejected %d}",
			a.Failures, a.Recoveries, a.FailureEvicted, a.Arrived, a.Departed, a.RejectedContainers,
			b.Failures, b.Recoveries, b.FailureEvicted, b.Arrived, b.Departed, b.RejectedContainers)
	}
}
