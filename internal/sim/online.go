package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"aladdin/internal/core"
	"aladdin/internal/resource"
	"aladdin/internal/stats"
	"aladdin/internal/topology"
	"aladdin/internal/workload"
)

// OnlineConfig drives the event-driven simulation: applications
// arrive over a simulated timeline, run for their (long-lived)
// durations and depart, exercising Aladdin's Session API the way a
// production cluster would.
type OnlineConfig struct {
	Workload *workload.Workload
	Machines int
	Options  core.Options
	// Seed drives arrival spacing and durations.
	Seed int64
	// MeanInterarrival is the mean gap between application arrivals
	// in simulated time; defaults to 1s.
	MeanInterarrival time.Duration
	// MeanLifetime is the mean application lifetime; LLA lifetimes
	// range "from hours to months" — pick relative to interarrival to
	// set the steady-state load.  Defaults to 100× the interarrival.
	MeanLifetime time.Duration
	// Phases shapes the arrival rate over time (diurnal patterns,
	// flash-sale bursts): the application sequence is split into
	// len(Phases) equal segments and segment i arrives Phases[i]
	// times faster than the base rate.  Empty means a flat rate.
	// Example: {1, 8, 1} — the middle third is an 8× burst (the
	// 11.11 scenario of §I).
	Phases []float64
}

// OnlineMetrics summarises an online run.
type OnlineMetrics struct {
	// Arrived / Departed / Rejected count applications.
	Arrived, Departed int
	// RejectedContainers counts containers that could not be placed
	// at their arrival instant.
	RejectedContainers int
	// TotalContainers counts all containers submitted.
	TotalContainers int
	// BatchLatency is the distribution of per-batch scheduling
	// latencies (real time spent in Place).
	BatchLatency *stats.CDF
	// StreamP50/StreamP99 are streaming (P²) estimates of the same
	// latencies in microseconds — O(1) space, what a production
	// scheduler manager would export as metrics.
	StreamP50, StreamP99 float64
	// PeakUsedMachines is the high-water mark of used machines.
	PeakUsedMachines int
	// PeakUtilization is the high-water mark of mean CPU utilisation.
	PeakUtilization float64
	// Migrations and Preemptions accumulate over the run.
	Migrations, Preemptions int
	// Violations counts audit findings over the whole run (always 0
	// for a correct Aladdin).
	Violations int
}

// event is an arrival or departure in simulated time.
type event struct {
	at      time.Duration
	arrive  *workload.App
	departs []string // container IDs leaving
	seq     int
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)        { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any          { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h eventHeap) Peek() event        { return h[0] }
func (h *eventHeap) popEvent() event   { return heap.Pop(h).(event) }
func (h *eventHeap) pushEvent(e event) { heap.Push(h, e) }

// RunOnline executes the event-driven simulation.
func RunOnline(cfg OnlineConfig) (*OnlineMetrics, error) {
	if cfg.Workload == nil {
		return nil, fmt.Errorf("sim: online: nil workload")
	}
	if cfg.Machines <= 0 {
		return nil, fmt.Errorf("sim: online: machine count %d must be positive", cfg.Machines)
	}
	interarrival := cfg.MeanInterarrival
	if interarrival <= 0 {
		interarrival = time.Second
	}
	lifetime := cfg.MeanLifetime
	if lifetime <= 0 {
		lifetime = 100 * interarrival
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	cluster := topology.New(topology.Config{
		Machines: cfg.Machines,
		Capacity: resource.Cores(32, 64*1024),
	})
	session := core.NewSession(cfg.Options, cfg.Workload, cluster)

	// Build the arrival schedule: one event per application,
	// exponential-ish interarrival (deterministic via seed).
	var h eventHeap
	now := time.Duration(0)
	seq := 0
	apps := cfg.Workload.Apps()
	rate := func(i int) float64 {
		if len(cfg.Phases) == 0 {
			return 1
		}
		phase := i * len(cfg.Phases) / max(1, len(apps))
		if phase >= len(cfg.Phases) {
			phase = len(cfg.Phases) - 1
		}
		if cfg.Phases[phase] <= 0 {
			return 1
		}
		return cfg.Phases[phase]
	}
	for i, app := range apps {
		gap := rng.ExpFloat64() * float64(interarrival) / rate(i)
		now += time.Duration(gap)
		h.pushEvent(event{at: now, arrive: app, seq: seq})
		seq++
	}
	heap.Init(&h)

	m := &OnlineMetrics{}
	var latencies []float64
	p50, err := stats.NewQuantile(0.5)
	if err != nil {
		return nil, err
	}
	p99, err := stats.NewQuantile(0.99)
	if err != nil {
		return nil, err
	}
	byApp := make(map[string][]*workload.Container)
	for _, c := range cfg.Workload.Containers() {
		byApp[c.App] = append(byApp[c.App], c)
	}

	for h.Len() > 0 {
		e := h.popEvent()
		if e.arrive != nil {
			batch := byApp[e.arrive.ID]
			m.Arrived++
			m.TotalContainers += len(batch)
			res, err := session.Place(batch)
			if err != nil {
				return nil, err
			}
			us := float64(res.Elapsed.Microseconds())
			latencies = append(latencies, us)
			p50.Observe(us)
			p99.Observe(us)
			m.RejectedContainers += len(res.Undeployed)
			m.Migrations += res.Migrations
			m.Preemptions += res.Preemptions
			// Departure event for the deployed containers.
			var ids []string
			undep := make(map[string]bool, len(res.Undeployed))
			for _, id := range res.Undeployed {
				undep[id] = true
			}
			for _, c := range batch {
				if !undep[c.ID] {
					ids = append(ids, c.ID)
				}
			}
			sort.Strings(ids)
			if len(ids) > 0 {
				life := time.Duration(rng.ExpFloat64() * float64(lifetime))
				h.pushEvent(event{at: e.at + life, departs: ids, seq: seq})
				seq++
			}
			if used := cluster.UsedMachines(); used > m.PeakUsedMachines {
				m.PeakUsedMachines = used
			}
			if _, mean, _ := cluster.UtilizationRange(); mean > m.PeakUtilization {
				m.PeakUtilization = mean
			}
		} else {
			for _, id := range e.departs {
				// A container may have been preempted (and stranded)
				// after its initial placement; departures of unplaced
				// containers are no-ops.
				if !session.Placed(id) {
					continue
				}
				if err := session.Remove(id); err != nil {
					return nil, fmt.Errorf("sim: online departure: %w", err)
				}
			}
			m.Departed++
		}
	}
	m.Violations = len(session.Audit())
	m.BatchLatency = stats.NewCDF(latencies)
	m.StreamP50 = p50.Value()
	m.StreamP99 = p99.Value()
	return m, nil
}
