package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"aladdin/internal/checkpoint"
	"aladdin/internal/core"
	"aladdin/internal/obs"
	"aladdin/internal/rebalance"
	"aladdin/internal/resource"
	"aladdin/internal/stats"
	"aladdin/internal/topology"
	"aladdin/internal/workload"
)

// OnlineConfig drives the event-driven simulation: applications
// arrive over a simulated timeline, run for their (long-lived)
// durations and depart, exercising Aladdin's Session API the way a
// production cluster would.
type OnlineConfig struct {
	Workload *workload.Workload
	Machines int
	Options  core.Options
	// Seed drives arrival spacing and durations.
	Seed int64
	// MeanInterarrival is the mean gap between application arrivals
	// in simulated time; defaults to 1s.
	MeanInterarrival time.Duration
	// MeanLifetime is the mean application lifetime; LLA lifetimes
	// range "from hours to months" — pick relative to interarrival to
	// set the steady-state load.  Defaults to 100× the interarrival.
	MeanLifetime time.Duration
	// Phases shapes the arrival rate over time (diurnal patterns,
	// flash-sale bursts): the application sequence is split into
	// len(Phases) equal segments and segment i arrives Phases[i]
	// times faster than the base rate.  Empty means a flat rate.
	// Example: {1, 8, 1} — the middle third is an 8× burst (the
	// 11.11 scenario of §I).
	Phases []float64
	// MTBF enables failure injection: machine failures arrive as a
	// Poisson process over the whole cluster with this mean time
	// between failures, up to the arrival horizon.  Each failure
	// evicts the machine's residents through Session.FailMachine and
	// schedules a repair.  Zero disables failures.
	MTBF time.Duration
	// MTTR is the mean time to repair a failed machine
	// (Session.RecoverMachine returns its capacity to service after
	// an exponential repair time).  Defaults to 10× the mean
	// interarrival when failures are enabled.
	MTTR time.Duration
	// DeepAudit swaps the per-event anti-affinity audit for the full
	// runtime invariant Auditor (Session.AuditInvariants): flow
	// conservation per tier, index/aggregate consistency, assignment
	// cross-checks and preemption ordering, checked after every
	// failure and recovery event and again at drain.  Slower — meant
	// for validation runs and fuzzing, not benchmarks.
	DeepAudit bool
	// CheckpointPath enables crash-safe checkpointing: the session is
	// snapshotted (v2 format, atomic write) to this file at drain, and
	// additionally per the two knobs below.  Empty disables all
	// checkpointing.
	CheckpointPath string
	// CheckpointEvery checkpoints on the first event at or after each
	// multiple of this simulated-time interval.  Zero disables
	// periodic checkpoints.
	CheckpointEvery time.Duration
	// CheckpointOnFailure checkpoints immediately after every machine
	// failure event — the moments a warm restart is most likely to be
	// needed from.
	CheckpointOnFailure bool
	// RebalanceEvery enables continuous rescheduling: a rebalancing
	// cycle fires on the first event at or after each multiple of this
	// simulated-time interval (the sim drives cycles off the event
	// clock, not a wall-clock ticker, so runs stay deterministic).
	// Zero disables the rebalancer.
	RebalanceEvery time.Duration
	// RebalanceBudget caps moves (consolidation relocations, retry
	// migrations and preemptions) per rebalancing cycle; 0 = unlimited.
	RebalanceBudget int
}

// OnlineMetrics summarises an online run.
type OnlineMetrics struct {
	// Arrived counts applications submitted; Departed counts
	// applications that placed at least one container and later left.
	// Every arrival is eventually accounted: Arrived = Departed +
	// RejectedApps once the timeline drains.
	Arrived, Departed int
	// RejectedApps counts applications none of whose containers could
	// be placed at arrival — they never enter the cluster, so they
	// get no departure event.
	RejectedApps int
	// RejectedContainers counts containers that could not be placed
	// at their arrival instant.
	RejectedContainers int
	// TotalContainers counts all containers submitted.
	TotalContainers int
	// BatchLatency is the distribution of per-batch scheduling
	// latencies (real time spent in Place).
	BatchLatency *stats.CDF
	// StreamP50/StreamP99 are the same latencies in microseconds as a
	// production scheduler manager would export them: read back from
	// the obs registry's batch-latency histogram (O(1) space,
	// bucket-interpolated — what a Prometheus scrape of /metrics
	// yields), replacing the earlier ad-hoc P² estimator plumbing.
	StreamP50, StreamP99 float64
	// Snapshot is the full metrics-registry reading at drain: every
	// phase histogram, pipeline counter and gauge the core recorded
	// during the run (aladdin-sim -metrics-out dumps it as JSON).
	Snapshot obs.Snapshot
	// PeakUsedMachines is the high-water mark of used machines.
	PeakUsedMachines int
	// PeakUtilization is the high-water mark of mean CPU utilisation.
	PeakUtilization float64
	// Migrations and Preemptions accumulate over the run.
	Migrations, Preemptions int
	// Violations counts audit findings over the whole run — the
	// placement is audited after every failure event and at drain —
	// always 0 for a correct Aladdin.
	Violations int
	// Failures / Recoveries count machine failure and repair events
	// actually applied (a failure drawn for an already-down machine
	// is skipped).
	Failures, Recoveries int
	// FailureEvicted counts containers evicted by machine failures;
	// FailureReplaced of those found a new machine immediately;
	// FailureStranded were left undeployed (they stay out until their
	// app departs — the availability cost of the failure).
	FailureEvicted, FailureReplaced, FailureStranded int
	// ReplaceLatency is the distribution of per-failure re-placement
	// latencies in microseconds (real time spent evicting and
	// re-placing; failures of empty machines are not sampled).
	ReplaceLatency *stats.CDF
	// Checkpoints counts session snapshots written during the run
	// (periodic, on-failure and the drain checkpoint).
	Checkpoints int
	// RebalanceCycles / RebalanceMoves accumulate over the run's
	// rebalancing cycles; RebalanceMaxCycleMoves is the single-cycle
	// high-water mark (never exceeds a non-zero RebalanceBudget).
	RebalanceCycles, RebalanceMoves, RebalanceMaxCycleMoves int
	// StrandedRetried counts failure-stranded containers the recovery
	// and rebalancing sweeps re-submitted; StrandedRecovered of those
	// found a machine.  StrandedAtDrain is the stranded ledger size
	// when the timeline drains — 0 when every stranding was healed or
	// its application departed.
	StrandedRetried, StrandedRecovered, StrandedAtDrain int
	// MeanUsedMachines is the time-weighted average of used machines
	// over the run — the packing quality integral a rebalancer is
	// meant to push down (peaks alone can't distinguish a run that
	// consolidates from one that stays fragmented between peaks).
	MeanUsedMachines float64
}

// eventKind discriminates timeline events.
type eventKind int

const (
	kindArrive eventKind = iota
	kindDepart
	kindFail
	kindRecover
)

// event is an arrival, departure, machine failure or machine repair
// in simulated time.
type event struct {
	at      time.Duration
	kind    eventKind
	arrive  *workload.App
	departs []string           // container IDs leaving
	machine topology.MachineID // fail/recover target
	seq     int
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)        { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any          { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h eventHeap) Peek() event        { return h[0] }
func (h *eventHeap) popEvent() event   { return heap.Pop(h).(event) }
func (h *eventHeap) pushEvent(e event) { heap.Push(h, e) }

// RunOnline executes the event-driven simulation.
func RunOnline(cfg OnlineConfig) (*OnlineMetrics, error) {
	if cfg.Workload == nil {
		return nil, fmt.Errorf("sim: online: nil workload")
	}
	if cfg.Machines <= 0 {
		return nil, fmt.Errorf("sim: online: machine count %d must be positive", cfg.Machines)
	}
	if (cfg.CheckpointEvery > 0 || cfg.CheckpointOnFailure) && cfg.CheckpointPath == "" {
		return nil, fmt.Errorf("sim: online: checkpointing enabled without a checkpoint path")
	}
	interarrival := cfg.MeanInterarrival
	if interarrival <= 0 {
		interarrival = time.Second
	}
	lifetime := cfg.MeanLifetime
	if lifetime <= 0 {
		lifetime = 100 * interarrival
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	cluster := topology.New(topology.Config{
		Machines: cfg.Machines,
		Capacity: resource.Cores(32, 64*1024),
	})
	// Every online run is instrumented: the registry feeds the
	// streaming quantiles and the drain snapshot.  Callers may inject
	// their own registry via Options.Metrics to aggregate across runs.
	if cfg.Options.Metrics == nil {
		cfg.Options.Metrics = obs.NewRegistry()
	}
	session := core.NewSession(cfg.Options, cfg.Workload, cluster)

	// Build the arrival schedule: one event per application,
	// exponential-ish interarrival (deterministic via seed).
	var h eventHeap
	now := time.Duration(0)
	seq := 0
	apps := cfg.Workload.Apps()
	rate := func(i int) float64 {
		if len(cfg.Phases) == 0 {
			return 1
		}
		phase := i * len(cfg.Phases) / max(1, len(apps))
		if phase >= len(cfg.Phases) {
			phase = len(cfg.Phases) - 1
		}
		if cfg.Phases[phase] <= 0 {
			return 1
		}
		return cfg.Phases[phase]
	}
	for i, app := range apps {
		gap := rng.ExpFloat64() * float64(interarrival) / rate(i)
		now += time.Duration(gap)
		h.pushEvent(event{at: now, kind: kindArrive, arrive: app, seq: seq})
		seq++
	}

	// Failure timeline: a Poisson process over the arrival horizon,
	// drawn from its own rng stream so enabling failures never
	// perturbs the arrival/lifetime sequence of a given seed.  Each
	// failure pre-schedules its repair.
	if cfg.MTBF > 0 {
		mttr := cfg.MTTR
		if mttr <= 0 {
			mttr = 10 * interarrival
		}
		frng := rand.New(rand.NewSource(int64(splitmix64(uint64(cfg.Seed)))))
		ft := time.Duration(0)
		for {
			ft += time.Duration(frng.ExpFloat64() * float64(cfg.MTBF))
			if ft >= now {
				break
			}
			target := topology.MachineID(frng.Intn(cfg.Machines))
			h.pushEvent(event{at: ft, kind: kindFail, machine: target, seq: seq})
			seq++
			repair := ft + time.Duration(frng.ExpFloat64()*float64(mttr))
			h.pushEvent(event{at: repair, kind: kindRecover, machine: target, seq: seq})
			seq++
		}
	}
	heap.Init(&h)

	m := &OnlineMetrics{}
	var latencies []float64
	byApp := make(map[string][]*workload.Container)
	for _, c := range cfg.Workload.Containers() {
		byApp[c.App] = append(byApp[c.App], c)
	}

	// audit returns the violation count for one checkpoint: the cheap
	// anti-affinity audit by default, the full invariant Auditor under
	// DeepAudit.
	audit := func() int {
		if cfg.DeepAudit {
			return len(session.AuditInvariants())
		}
		return len(session.Audit())
	}

	// writeCheckpoint snapshots the live session crash-safely; wired
	// to the periodic interval, failure events and the drain below.
	writeCheckpoint := func() error {
		snap, err := checkpoint.CaptureSession(session)
		if err != nil {
			return fmt.Errorf("sim: online checkpoint: %w", err)
		}
		if err := checkpoint.WriteFile(cfg.CheckpointPath, snap); err != nil {
			return fmt.Errorf("sim: online checkpoint: %w", err)
		}
		m.Checkpoints++
		return nil
	}
	var nextCkpt time.Duration
	if cfg.CheckpointEvery > 0 {
		nextCkpt = cfg.CheckpointEvery
	}

	// Continuous rescheduling rides the event clock: cycles fire at
	// simulated-interval boundaries (like periodic checkpoints), so a
	// seeded run with a rebalancer is as reproducible as one without.
	var rb *rebalance.Rebalancer
	var nextRb time.Duration
	if cfg.RebalanceEvery > 0 {
		rb = rebalance.New(session, rebalance.Config{
			Budget: cfg.RebalanceBudget,
			Audit:  cfg.DeepAudit,
		})
		nextRb = cfg.RebalanceEvery
	}

	// MeanUsedMachines integrates used machines over simulated time:
	// accumulate the pre-event level across the gap since the last
	// event, then let the event change the level.
	var usedIntegral float64
	var lastAt time.Duration

	var replaceLat []float64
	for h.Len() > 0 {
		e := h.popEvent()
		usedIntegral += float64(cluster.UsedMachines()) * float64(e.at-lastAt)
		lastAt = e.at
		switch e.kind {
		case kindArrive:
			batch := byApp[e.arrive.ID]
			m.Arrived++
			m.TotalContainers += len(batch)
			res, err := session.Place(batch)
			if err != nil {
				return nil, err
			}
			latencies = append(latencies, float64(res.Elapsed.Microseconds()))
			m.RejectedContainers += len(res.Undeployed)
			m.Migrations += res.Migrations
			m.Preemptions += res.Preemptions
			// Departure event for the deployed containers.  An
			// application that failed to place any container never
			// entered the cluster: it is accounted as rejected right
			// here, so Arrived = Departed + RejectedApps holds at
			// drain instead of the fully-rejected apps silently
			// vanishing from the departure ledger.
			var ids []string
			undep := make(map[string]bool, len(res.Undeployed))
			for _, id := range res.Undeployed {
				undep[id] = true
			}
			for _, c := range batch {
				if !undep[c.ID] {
					ids = append(ids, c.ID)
				}
			}
			sort.Strings(ids)
			if len(ids) > 0 {
				life := time.Duration(rng.ExpFloat64() * float64(lifetime))
				h.pushEvent(event{at: e.at + life, kind: kindDepart, departs: ids, seq: seq})
				seq++
			} else {
				m.RejectedApps++
			}
			if used := cluster.UsedMachines(); used > m.PeakUsedMachines {
				m.PeakUsedMachines = used
			}
			if _, mean, _ := cluster.UtilizationRange(); mean > m.PeakUtilization {
				m.PeakUtilization = mean
			}
		case kindDepart:
			for _, id := range e.departs {
				// A container may have been preempted or stranded by a
				// machine failure after its initial placement.  A
				// departing stranded container must be forgotten, not
				// skipped: its application is gone, so a later recovery
				// or rebalancing sweep must not resurrect it into
				// capacity nothing will ever release.
				if !session.Placed(id) {
					if err := session.Forget(id); err != nil {
						return nil, fmt.Errorf("sim: online departure: %w", err)
					}
					continue
				}
				if err := session.Remove(id); err != nil {
					return nil, fmt.Errorf("sim: online departure: %w", err)
				}
			}
			m.Departed++
		case kindFail:
			// The drawn target may already be down (overlapping
			// failures): skip — its paired repair will no-op too.
			if !cluster.Machine(e.machine).Up() {
				continue
			}
			fr, err := session.FailMachine(e.machine)
			if err != nil {
				return nil, fmt.Errorf("sim: online failure: %w", err)
			}
			m.Failures++
			m.FailureEvicted += fr.Evicted
			m.FailureReplaced += fr.Replaced
			m.FailureStranded += len(fr.Stranded)
			m.Migrations += fr.Migrations
			m.Preemptions += fr.Preemptions
			if fr.Evicted > 0 {
				replaceLat = append(replaceLat, float64(fr.Elapsed.Microseconds()))
			}
			// The failure invariant: eviction re-placement never
			// violates anti-affinity or priority.
			m.Violations += audit()
			if cfg.CheckpointOnFailure {
				if err := writeCheckpoint(); err != nil {
					return nil, err
				}
			}
		case kindRecover:
			if cluster.Machine(e.machine).Up() {
				continue // never failed, or an overlapping repair won
			}
			rr, err := session.RecoverMachine(e.machine)
			if err != nil {
				return nil, fmt.Errorf("sim: online recovery: %w", err)
			}
			m.Recoveries++
			m.StrandedRetried += rr.Retried
			m.StrandedRecovered += len(rr.Replaced)
			m.Migrations += rr.Migrations
			m.Preemptions += rr.Preemptions
			if cfg.DeepAudit {
				m.Violations += audit()
			}
		}
		// Rebalancing cycle: fire on the first event at or past each
		// interval boundary, after the event's own mutation settles.
		if rb != nil && e.at >= nextRb {
			res := rb.RunCycle()
			if res.Err != nil {
				return nil, fmt.Errorf("sim: online rebalance: %w", res.Err)
			}
			m.RebalanceCycles++
			m.RebalanceMoves += res.Moves
			if res.Moves > m.RebalanceMaxCycleMoves {
				m.RebalanceMaxCycleMoves = res.Moves
			}
			m.StrandedRetried += res.Retried
			m.StrandedRecovered += res.Replaced
			m.Violations += len(res.Violations)
			for nextRb <= e.at {
				nextRb += cfg.RebalanceEvery
			}
		}
		// Periodic checkpoint: fire on the first event at or past each
		// interval boundary (simulated time advances only at events).
		if cfg.CheckpointEvery > 0 && e.at >= nextCkpt {
			if err := writeCheckpoint(); err != nil {
				return nil, err
			}
			for nextCkpt <= e.at {
				nextCkpt += cfg.CheckpointEvery
			}
		}
	}
	if cfg.CheckpointPath != "" {
		if err := writeCheckpoint(); err != nil {
			return nil, err
		}
	}
	m.Violations += audit()
	m.StrandedAtDrain = len(session.StrandedIDs())
	if lastAt > 0 {
		m.MeanUsedMachines = usedIntegral / float64(lastAt)
	}
	m.BatchLatency = stats.NewCDF(latencies)
	m.ReplaceLatency = stats.NewCDF(replaceLat)
	m.Snapshot = cfg.Options.Metrics.Snapshot()
	batchHist := m.Snapshot.Histograms["aladdin_place_batch_duration_us"]
	m.StreamP50 = batchHist.Quantile(0.5)
	m.StreamP99 = batchHist.Quantile(0.99)
	return m, nil
}
