// Package sim is the replay engine of the evaluation: it drives any
// scheduler over a workload and cluster, collects the metrics the
// paper's figures report, and runs parameter sweeps (cluster sizes,
// arrival orders, scheduler configurations) — in parallel across
// configurations, since each run owns its cluster.
package sim

import (
	"fmt"
	"time"

	"aladdin/internal/parallel"
	"aladdin/internal/resource"
	"aladdin/internal/sched"
	"aladdin/internal/stats"
	"aladdin/internal/topology"
	"aladdin/internal/workload"
)

// Metrics captures everything the paper's figures need from one run.
type Metrics struct {
	// Scheduler is the configuration name.
	Scheduler string
	// Order is the arrival characteristic used.
	Order workload.ArrivalOrder
	// Machines is the cluster size offered.
	Machines int

	// Total and Deployed are container counts; Undeployed = Total -
	// Deployed.
	Total, Deployed int
	// UndeployedFraction is the Fig. 9 "constraint violations (%)"
	// metric (the paper counts undeployed containers).
	UndeployedFraction float64
	// ViolationsWithin / ViolationsAcross / Inversions are audited
	// constraint violations (Fig. 9e's ratio numerator is the
	// anti-affinity ones).
	ViolationsWithin, ViolationsAcross, Inversions int
	// UndeployedAntiAffinity counts undeployed containers whose app
	// carries an anti-affinity constraint — the denominator
	// attribution for Fig. 9(e): a constrained app that could not be
	// placed failed because of its constraints.
	UndeployedAntiAffinity int
	// ViolatingContainers counts distinct containers involved in at
	// least one violating pair — a more interpretable size than the
	// (quadratic) pair count when a scheduler stacks many conflicting
	// containers on one machine.
	ViolatingContainers int
	// UsedMachines is num(sched) of Equation 10.
	UsedMachines int
	// Utilization is the Fig. 11 CPU utilisation range over used
	// machines.
	Utilization stats.Range
	// Latency is Equation 11's per-container average latency.
	Latency time.Duration
	// Elapsed is the total scheduling time (Fig. 13a): wall-clock for
	// single-threaded schedulers, critical path for the sharded core
	// (see sched.Result.Elapsed).
	Elapsed time.Duration
	// WallElapsed is the host's actual wall-clock scheduling time.
	// Equal to Elapsed except for sharded runs on hosts with fewer
	// cores than shards.  Zero when the scheduler does not report it.
	WallElapsed time.Duration
	// Migrations and Preemptions (Fig. 13b); Consolidations are the
	// machine-draining moves of the final efficiency sweep.
	Migrations, Preemptions, Consolidations int
	// WorkUnits is the scheduler's deterministic effort counter
	// (zero for schedulers that do not report one).
	WorkUnits int64
}

// TotalViolations sums the audited violations.
func (m Metrics) TotalViolations() int {
	return m.ViolationsWithin + m.ViolationsAcross + m.Inversions
}

// AntiAffinityRatio implements Fig. 9(e): the share of constraint
// failures attributable to anti-affinity.  A constraint failure is
// either an audited violation or an undeployed container; it counts
// as anti-affinity when it is an anti-affinity violation or an
// undeployed container of a constrained app.  Returns 0 when there
// are no failures.
func (m Metrics) AntiAffinityRatio() float64 {
	undeployed := m.Total - m.Deployed
	t := m.TotalViolations() + undeployed
	if t == 0 {
		return 0
	}
	aa := m.ViolationsWithin + m.ViolationsAcross + m.UndeployedAntiAffinity
	return float64(aa) / float64(t)
}

// Config describes one simulation run.
type Config struct {
	Scheduler sched.Scheduler
	Workload  *workload.Workload
	Machines  int
	// MachinesPerRack / RacksPerCluster default to the topology
	// package defaults when zero.
	MachinesPerRack int
	RacksPerCluster int
	// Capacity defaults to the paper's 32 CPU / 64 GB machines.
	Capacity resource.Vector
	Order    workload.ArrivalOrder
}

// Run executes one simulation and returns its metrics.  The cluster
// is created fresh, so runs are independent and parallelisable.
func Run(cfg Config) (Metrics, error) {
	if cfg.Scheduler == nil {
		return Metrics{}, fmt.Errorf("sim: nil scheduler")
	}
	if cfg.Workload == nil {
		return Metrics{}, fmt.Errorf("sim: nil workload")
	}
	if cfg.Machines <= 0 {
		return Metrics{}, fmt.Errorf("sim: machine count %d must be positive", cfg.Machines)
	}
	capacity := cfg.Capacity
	if capacity.Zero() {
		capacity = resource.Cores(32, 64*1024)
	}
	cluster := topology.New(topology.Config{
		Machines:        cfg.Machines,
		MachinesPerRack: cfg.MachinesPerRack,
		RacksPerCluster: cfg.RacksPerCluster,
		Capacity:        capacity,
	})
	arrivals := cfg.Workload.Arrange(cfg.Order)
	res, err := cfg.Scheduler.Schedule(cfg.Workload, cluster, arrivals)
	if err != nil {
		return Metrics{}, fmt.Errorf("sim: %s: %w", cfg.Scheduler.Name(), err)
	}
	if err := res.Verify(cfg.Workload, cluster); err != nil {
		return Metrics{}, fmt.Errorf("sim: %s: inconsistent result: %w", cfg.Scheduler.Name(), err)
	}
	return collect(cfg, cluster, res), nil
}

func collect(cfg Config, cluster *topology.Cluster, res *sched.Result) Metrics {
	vs := res.ViolationSummary()
	lo, mean, hi := cluster.UtilizationRange()
	violating := make(map[string]bool)
	for _, v := range res.Violations {
		violating[v.ContainerA] = true
		violating[v.ContainerB] = true
	}
	undeployedAA := 0
	for _, id := range res.Undeployed {
		for i := len(id) - 1; i >= 0; i-- {
			if id[i] == '/' {
				if app := cfg.Workload.App(id[:i]); app != nil && app.HasConstraints() {
					undeployedAA++
				}
				break
			}
		}
	}
	return Metrics{
		Scheduler:              res.Scheduler,
		Order:                  cfg.Order,
		Machines:               cfg.Machines,
		Total:                  res.Total,
		Deployed:               res.Deployed(),
		UndeployedFraction:     res.UndeployedFraction(),
		ViolationsWithin:       vs.Within,
		ViolationsAcross:       vs.Across,
		Inversions:             vs.Inversions,
		UndeployedAntiAffinity: undeployedAA,
		ViolatingContainers:    len(violating),
		UsedMachines:           cluster.UsedMachines(),
		Utilization:            stats.Range{Min: lo, Mean: mean, Max: hi},
		Latency:                res.LatencyPerContainer(),
		Elapsed:                res.Elapsed,
		WallElapsed:            res.WallElapsed,
		Migrations:             res.Migrations,
		Preemptions:            res.Preemptions,
		Consolidations:         res.Consolidations,
		WorkUnits:              res.WorkUnits,
	}
}

// RunAll executes every configuration, in parallel (each run builds
// its own cluster).  Results are positionally aligned with configs;
// the first error (if any) is returned alongside the successful
// results.
func RunAll(configs []Config, workers int) ([]Metrics, error) {
	out := make([]Metrics, len(configs))
	errs := make([]error, len(configs))
	parallel.ForEach(len(configs), workers, func(i int) {
		out[i], errs[i] = Run(configs[i])
	})
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	return out, nil
}

// SweepOrders runs one scheduler across the four arrival orders of
// §V.C/§V.D.
func SweepOrders(s sched.Scheduler, w *workload.Workload, machines int, workers int) ([]Metrics, error) {
	orders := workload.AllArrivalOrders()
	configs := make([]Config, len(orders))
	for i, o := range orders {
		configs[i] = Config{Scheduler: s, Workload: w, Machines: machines, Order: o}
	}
	return RunAll(configs, workers)
}

// SweepMachines runs one scheduler across cluster sizes (Fig. 12/13's
// x axis).
func SweepMachines(s sched.Scheduler, w *workload.Workload, sizes []int, order workload.ArrivalOrder, workers int) ([]Metrics, error) {
	configs := make([]Config, len(sizes))
	for i, n := range sizes {
		configs[i] = Config{Scheduler: s, Workload: w, Machines: n, Order: order}
	}
	return RunAll(configs, workers)
}

// Efficiency implements Equation 10 over a set of runs: for each run,
// num(i)/min(num) − 1, keyed by position.  Runs that used zero
// machines yield 0.
func Efficiency(ms []Metrics) []float64 {
	min := 0
	for _, m := range ms {
		if m.UsedMachines > 0 && (min == 0 || m.UsedMachines < min) {
			min = m.UsedMachines
		}
	}
	out := make([]float64, len(ms))
	if min == 0 {
		return out
	}
	for i, m := range ms {
		if m.UsedMachines == 0 {
			continue
		}
		out[i] = float64(m.UsedMachines)/float64(min) - 1
	}
	return out
}
