package sim

import (
	"os"
	"strconv"
	"testing"
	"time"

	"aladdin/internal/core"
	"aladdin/internal/trace"
)

// TestRunOnlineStrandedRetryOnRecovery is the stranded-container
// regression test: before recovery-triggered retry existed, containers
// stranded by a machine failure stayed out of the cluster forever —
// RecoverMachine returned capacity but nothing re-submitted the
// strandings, so StrandedRecovered was always zero and availability
// was lost for the rest of each application's lifetime.  Now every
// repair sweeps the stranded ledger through the placement pipeline and
// the ledger drains to zero.
func TestRunOnlineStrandedRetryOnRecovery(t *testing.T) {
	w := trace.MustGenerate(trace.Scaled(42, 200))
	m, err := RunOnline(OnlineConfig{
		Workload:         w,
		Machines:         16, // tight: failure evictions can't all re-place
		Options:          core.DefaultOptions(),
		Seed:             7,
		MeanInterarrival: time.Second,
		MeanLifetime:     30 * time.Second,
		MTBF:             2 * time.Second,
		MTTR:             4 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.FailureStranded == 0 {
		t.Fatal("a near-full 16-machine cluster under aggressive failures must strand containers")
	}
	if m.StrandedRetried == 0 {
		t.Error("recoveries never retried the stranded ledger")
	}
	if m.StrandedRecovered == 0 {
		t.Error("no stranded container was re-placed after recovery — the availability regression")
	}
	if m.StrandedAtDrain != 0 {
		t.Errorf("StrandedAtDrain = %d, want 0: every stranding must be re-placed or forgotten", m.StrandedAtDrain)
	}
	if m.Violations != 0 {
		t.Errorf("Violations = %d, want 0", m.Violations)
	}
}

// TestRunOnlineRebalancerImprovesPacking is the seeded A/B: the same
// workload, timeline and failure schedule run with and without the
// background rebalancer, and the rebalanced run must hold a strictly
// lower time-weighted mean of used machines — the packing integral
// continuous rescheduling exists to push down.
func TestRunOnlineRebalancerImprovesPacking(t *testing.T) {
	w := trace.MustGenerate(trace.Scaled(42, 200))
	base := OnlineConfig{
		Workload:         w,
		Machines:         64,
		Options:          core.DefaultOptions(),
		Seed:             7,
		MeanInterarrival: time.Second,
		MeanLifetime:     20 * time.Second, // long-lived stragglers fragment departures
		MTBF:             3 * time.Second,
		MTTR:             4 * time.Second,
	}
	off, err := RunOnline(base)
	if err != nil {
		t.Fatal(err)
	}
	on := base
	on.Options = core.DefaultOptions() // fresh metrics registry per run
	on.RebalanceEvery = 2 * time.Second
	on.RebalanceBudget = 16
	onM, err := RunOnline(on)
	if err != nil {
		t.Fatal(err)
	}
	if onM.RebalanceCycles == 0 {
		t.Fatal("rebalancer never cycled")
	}
	if onM.MeanUsedMachines >= off.MeanUsedMachines {
		t.Errorf("rebalanced mean used machines %.2f, want < baseline %.2f",
			onM.MeanUsedMachines, off.MeanUsedMachines)
	}
	if onM.RebalanceMaxCycleMoves > 16 {
		t.Errorf("a cycle spent %d moves on a budget of 16", onM.RebalanceMaxCycleMoves)
	}
	if off.Violations != 0 || onM.Violations != 0 {
		t.Errorf("violations: baseline %d, rebalanced %d", off.Violations, onM.Violations)
	}
	// The arrival/failure timeline must be identical: the rebalancer
	// draws nothing from the rng streams.
	if off.Arrived != onM.Arrived || off.Failures != onM.Failures {
		t.Errorf("rebalancer perturbed the timeline: %d/%d arrivals, %d/%d failures",
			off.Arrived, onM.Arrived, off.Failures, onM.Failures)
	}
}

// TestRunOnlineRebalancerDeterministic: cycles ride the event clock,
// so a seeded run with the rebalancer is exactly reproducible.
func TestRunOnlineRebalancerDeterministic(t *testing.T) {
	w := trace.MustGenerate(trace.Scaled(3, 400))
	run := func() *OnlineMetrics {
		m, err := RunOnline(OnlineConfig{
			Workload: w, Machines: 64, Options: core.DefaultOptions(), Seed: 11,
			MeanInterarrival: time.Second, MeanLifetime: 10 * time.Second,
			MTBF: 3 * time.Second, MTTR: 4 * time.Second,
			RebalanceEvery: 2 * time.Second, RebalanceBudget: 8,
		})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	a, b := run(), run()
	if a.RebalanceCycles != b.RebalanceCycles || a.RebalanceMoves != b.RebalanceMoves ||
		a.StrandedRecovered != b.StrandedRecovered || a.MeanUsedMachines != b.MeanUsedMachines {
		t.Errorf("rebalanced run not deterministic: %+v vs %+v", a, b)
	}
}

// TestRunOnlineRebalanceSoak is the long-horizon gate: failures,
// recoveries, churn and budgeted rebalancing cycles together, with the
// full invariant Auditor after every failure, recovery and cycle.  It
// asserts the three safety properties the rebalancer must never trade
// for packing: per-cycle churn stays within budget, no audit (priority
// / flow / index) violation ever appears, and the stranded ledger is
// empty at drain.  ALADDIN_SOAK=<factor> lengthens the horizon
// (smaller factor = more applications); `make rebalance-soak` runs it
// at factor 40.
func TestRunOnlineRebalanceSoak(t *testing.T) {
	factor := 200
	if v := os.Getenv("ALADDIN_SOAK"); v != "" {
		f, err := strconv.Atoi(v)
		if err != nil || f <= 0 {
			t.Fatalf("ALADDIN_SOAK=%q: want a positive integer factor", v)
		}
		factor = f
	} else if testing.Short() {
		t.Skip("short mode: rebalance soak runs in full and soak CI lanes")
	}
	const budget = 8
	w := trace.MustGenerate(trace.Scaled(42, factor))
	m, err := RunOnline(OnlineConfig{
		Workload:         w,
		Machines:         48,
		Options:          core.DefaultOptions(),
		Seed:             5,
		MeanInterarrival: time.Second,
		MeanLifetime:     10 * time.Second,
		MTBF:             3 * time.Second,
		MTTR:             4 * time.Second,
		DeepAudit:        true,
		RebalanceEvery:   2 * time.Second,
		RebalanceBudget:  budget,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("soak: %d apps, %d failures, %d cycles, %d moves (max %d/cycle), %d retried, %d recovered, mean used %.2f",
		m.Arrived, m.Failures, m.RebalanceCycles, m.RebalanceMoves, m.RebalanceMaxCycleMoves,
		m.StrandedRetried, m.StrandedRecovered, m.MeanUsedMachines)
	if m.Failures == 0 || m.RebalanceCycles == 0 {
		t.Fatalf("soak exercised nothing: %d failures, %d cycles", m.Failures, m.RebalanceCycles)
	}
	if m.RebalanceMaxCycleMoves > budget {
		t.Errorf("a cycle spent %d moves on a budget of %d", m.RebalanceMaxCycleMoves, budget)
	}
	if m.Violations != 0 {
		t.Errorf("Violations = %d, want 0 — deep audit caught the rebalancer breaking an invariant", m.Violations)
	}
	if m.StrandedAtDrain != 0 {
		t.Errorf("StrandedAtDrain = %d, want 0", m.StrandedAtDrain)
	}
	if m.Arrived != m.Departed+m.RejectedApps {
		t.Errorf("ledger unbalanced: Arrived %d != Departed %d + RejectedApps %d",
			m.Arrived, m.Departed, m.RejectedApps)
	}
}
