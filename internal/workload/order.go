package workload

import "sort"

// ArrivalOrder names the four container-arrival characteristics of
// the evaluation (§V.C, §V.D): priority-first orders and
// anti-affinity-degree orders.
type ArrivalOrder int

const (
	// OrderSubmission keeps the trace's native order.
	OrderSubmission ArrivalOrder = iota
	// OrderCHP: containers with high priorities first.
	OrderCHP
	// OrderCLP: containers with low priorities first.
	OrderCLP
	// OrderCLA: containers with a large number of anti-affinity
	// constraints first.
	OrderCLA
	// OrderCSA: containers with a small number of anti-affinity
	// constraints first.
	OrderCSA
	// OrderInterleaved emulates massive simultaneous submission: one
	// container per application per wave, round-robin, so every
	// application's containers are in flight concurrently (the
	// "augment capabilities by 100× on 11.11" scenario of §I).
	OrderInterleaved
)

// String returns the paper's abbreviation for the order.
func (o ArrivalOrder) String() string {
	switch o {
	case OrderSubmission:
		return "submission"
	case OrderCHP:
		return "CHP"
	case OrderCLP:
		return "CLP"
	case OrderCLA:
		return "CLA"
	case OrderCSA:
		return "CSA"
	case OrderInterleaved:
		return "interleaved"
	default:
		return "unknown"
	}
}

// AllArrivalOrders lists the four experimental orders (not
// OrderSubmission) in the sequence the paper's figures use.
func AllArrivalOrders() []ArrivalOrder {
	return []ArrivalOrder{OrderCHP, OrderCLP, OrderCLA, OrderCSA}
}

// Arrange returns the workload's containers sorted by the given
// arrival order.  Sorting is stable with container ID as the final
// tiebreak so every run over the same workload is deterministic.
func (w *Workload) Arrange(order ArrivalOrder) []*Container {
	cs := make([]*Container, len(w.containers))
	copy(cs, w.containers)
	switch order {
	case OrderSubmission:
		return cs
	case OrderInterleaved:
		out := cs[:0:0]
		for wave := 0; len(out) < len(cs); wave++ {
			for _, a := range w.apps {
				if wave < a.Replicas {
					out = append(out, w.containers[w.appOffset[a.ID]+wave])
				}
			}
		}
		return out
	case OrderCHP:
		sort.SliceStable(cs, func(i, j int) bool {
			if cs[i].Priority != cs[j].Priority {
				return cs[i].Priority > cs[j].Priority
			}
			return cs[i].ID < cs[j].ID
		})
	case OrderCLP:
		sort.SliceStable(cs, func(i, j int) bool {
			if cs[i].Priority != cs[j].Priority {
				return cs[i].Priority < cs[j].Priority
			}
			return cs[i].ID < cs[j].ID
		})
	case OrderCLA, OrderCSA:
		deg := make(map[string]int, len(w.apps))
		for _, a := range w.apps {
			deg[a.ID] = w.ConflictDegree(a.ID)
		}
		sort.SliceStable(cs, func(i, j int) bool {
			di, dj := deg[cs[i].App], deg[cs[j].App]
			if di != dj {
				if order == OrderCLA {
					return di > dj
				}
				return di < dj
			}
			return cs[i].ID < cs[j].ID
		})
	}
	return cs
}
