// Package workload models long-lived applications (LLAs), their
// containers, and the two placement-constraint families the paper
// supports: anti-affinity (within and across applications, §II.A) and
// priority.
package workload

import (
	"fmt"
	"sort"

	"aladdin/internal/resource"
)

// Priority is a container's scheduling priority; larger is more
// important.  In the Alibaba trace priorities are a small ladder.
type Priority int

const (
	// PriorityLow is the default priority (w1 = 1 in Equation 4).
	PriorityLow Priority = 0
	// PriorityMid is an intermediate priority class.
	PriorityMid Priority = 1
	// PriorityHigh is the top class; high-priority containers may
	// preempt lower ones but never the reverse (§III.B).
	PriorityHigh Priority = 2
)

// String returns a short label.
func (p Priority) String() string {
	switch p {
	case PriorityLow:
		return "low"
	case PriorityMid:
		return "mid"
	case PriorityHigh:
		return "high"
	default:
		return fmt.Sprintf("prio(%d)", int(p))
	}
}

// Container is one long-lived container: the T vertices of the flow
// network.  All containers of one application are isomorphic (same
// demand), the property isomorphism limiting exploits (§IV.A).
type Container struct {
	// ID is unique within a workload, e.g. "app-00042/3".
	ID string
	// App is the owning application's ID.
	App string
	// Index is the container's ordinal within its application.
	Index int
	// Ord is the container's ordinal within its workload (containers
	// are app-major), assigned by New.  Schedulers use it to key
	// per-container state in slices instead of ID-keyed maps.
	Ord int
	// Demand is the resource requirement c_n of the submission.
	Demand resource.Vector
	// Priority is the submission's priority w_n.
	Priority Priority
}

// App is a long-lived application comprising isomorphic containers.
type App struct {
	// ID is unique within a workload, e.g. "app-00042".
	ID string
	// Demand is the per-container resource requirement.
	Demand resource.Vector
	// Replicas is the number of containers.
	Replicas int
	// Priority applies to every container of the app.
	Priority Priority
	// AntiAffinitySelf requires all containers of this app to land on
	// distinct machines ("anti-affinity within an application").
	AntiAffinitySelf bool
	// AntiAffinityApps lists other application IDs this app must not
	// share a machine with ("anti-affinity across applications").
	AntiAffinityApps []string
}

// Containers materialises the app's container list.
func (a *App) Containers() []*Container {
	cs := make([]*Container, a.Replicas)
	for i := range cs {
		cs[i] = &Container{
			ID:       fmt.Sprintf("%s/%d", a.ID, i),
			App:      a.ID,
			Index:    i,
			Demand:   a.Demand,
			Priority: a.Priority,
		}
	}
	return cs
}

// HasConstraints reports whether the app carries any anti-affinity
// constraint.
func (a *App) HasConstraints() bool {
	return a.AntiAffinitySelf || len(a.AntiAffinityApps) > 0
}

// Workload is a batch of LLAs submitted together, the unit the
// evaluation replays ("massive LLAs arrive simultaneously", §I).
type Workload struct {
	apps     []*App
	appByID  map[string]*App
	appIndex map[string]int

	containers []*Container
	// appOffset locates each app's first container within containers
	// (containers are app-major).
	appOffset map[string]int

	// antiPairs holds the symmetric closure of across-app
	// anti-affinity as a set of canonical (a<b) pairs.
	antiPairs map[[2]string]bool

	// partners is the adjacency view of antiPairs, sorted per app —
	// precomputed so AntiAffinePartners is O(degree) instead of
	// O(all pairs) (it is called once per app when a scheduler builds
	// its blacklist state).
	partners map[string][]string
}

// New builds a workload from applications.  App IDs must be unique;
// across-app anti-affinity references to unknown apps are rejected so
// constraint bugs surface at construction.
func New(apps []*App) (*Workload, error) {
	w := &Workload{
		appByID:   make(map[string]*App, len(apps)),
		appIndex:  make(map[string]int, len(apps)),
		appOffset: make(map[string]int, len(apps)),
		antiPairs: make(map[[2]string]bool),
	}
	for _, a := range apps {
		if a.ID == "" {
			return nil, fmt.Errorf("workload: app with empty ID")
		}
		if a.Replicas <= 0 {
			return nil, fmt.Errorf("workload: app %q has %d replicas", a.ID, a.Replicas)
		}
		if a.Demand.CPUMilli < 0 || a.Demand.MemMB < 0 {
			return nil, fmt.Errorf("workload: app %q has negative demand %s", a.ID, a.Demand)
		}
		if _, dup := w.appByID[a.ID]; dup {
			return nil, fmt.Errorf("workload: duplicate app id %q", a.ID)
		}
		w.appByID[a.ID] = a
		w.appIndex[a.ID] = len(w.apps)
		w.apps = append(w.apps, a)
	}
	for _, a := range apps {
		for _, other := range a.AntiAffinityApps {
			if _, ok := w.appByID[other]; !ok {
				return nil, fmt.Errorf("workload: app %q anti-affinity references unknown app %q", a.ID, other)
			}
			if other == a.ID {
				return nil, fmt.Errorf("workload: app %q anti-affinity references itself; use AntiAffinitySelf", a.ID)
			}
			w.antiPairs[pairKey(a.ID, other)] = true
		}
		w.appOffset[a.ID] = len(w.containers)
		for _, c := range a.Containers() {
			c.Ord = len(w.containers)
			w.containers = append(w.containers, c)
		}
	}
	w.partners = make(map[string][]string)
	for pair := range w.antiPairs {
		w.partners[pair[0]] = append(w.partners[pair[0]], pair[1])
		w.partners[pair[1]] = append(w.partners[pair[1]], pair[0])
	}
	for _, ps := range w.partners {
		sort.Strings(ps)
	}
	return w, nil
}

// MustNew is New that panics on error, for tests and examples.
func MustNew(apps []*App) *Workload {
	w, err := New(apps)
	if err != nil {
		panic(err)
	}
	return w
}

// Apps returns the applications in submission order.
func (w *Workload) Apps() []*App { return w.apps }

// App returns the application with the given ID, or nil.
func (w *Workload) App(id string) *App { return w.appByID[id] }

// AppIndex returns the app's ordinal in submission order, or -1 when
// unknown.  Ordinals let per-app state live in slices instead of
// string-keyed maps on scheduler hot paths.
func (w *Workload) AppIndex(id string) int {
	if i, ok := w.appIndex[id]; ok {
		return i
	}
	return -1
}

// NumApps returns the application count.
func (w *Workload) NumApps() int { return len(w.apps) }

// HasAntiAffinity reports whether the app carries any anti-affinity
// constraint under the symmetric closure: self anti-affinity, a
// declared partner, or being another app's declared partner.
func (w *Workload) HasAntiAffinity(appID string) bool {
	if app := w.appByID[appID]; app != nil && app.AntiAffinitySelf {
		return true
	}
	return len(w.partners[appID]) > 0
}

// Containers returns every container in app-major order.  The slice
// is shared; callers must not mutate it.
func (w *Workload) Containers() []*Container { return w.containers }

// NumContainers returns the total container count.
func (w *Workload) NumContainers() int { return len(w.containers) }

// AntiAffine reports whether two applications may not share a machine
// (across-app constraint).  It is symmetric.  Within-app anti-affinity
// is reported when a == b and the app sets AntiAffinitySelf.
func (w *Workload) AntiAffine(a, b string) bool {
	if a == b {
		app := w.appByID[a]
		return app != nil && app.AntiAffinitySelf
	}
	return w.antiPairs[pairKey(a, b)]
}

// AntiAffinePartners returns every application that is across-app
// anti-affine with appID, using the symmetric closure (if either app
// declared the pair, both see each other as partners).  The result is
// in deterministic (sorted) order.
func (w *Workload) AntiAffinePartners(appID string) []string {
	cached := w.partners[appID]
	if len(cached) == 0 {
		return nil
	}
	out := make([]string, len(cached))
	copy(out, cached)
	return out
}

// ConflictDegree returns how many containers (across the whole
// workload) the given app may not be co-located with.  The paper
// orders arrivals by this for the CLA/CSA experiments.
func (w *Workload) ConflictDegree(appID string) int {
	app := w.appByID[appID]
	if app == nil {
		return 0
	}
	deg := 0
	if app.AntiAffinitySelf {
		deg += app.Replicas - 1
	}
	for _, other := range w.apps {
		if other.ID == appID {
			continue
		}
		if w.antiPairs[pairKey(appID, other.ID)] {
			deg += other.Replicas
		}
	}
	return deg
}

// Stats summarises the workload (Fig. 8's headline numbers).
type Stats struct {
	Apps               int
	Containers         int
	SingleInstanceApps int
	AppsUnder50        int
	AppsOver2000       int
	AntiAffinityApps   int
	PriorityApps       int
	MaxDemand          resource.Vector
	TotalDemand        resource.Vector
}

// ComputeStats derives the workload summary.
func (w *Workload) ComputeStats() Stats {
	var s Stats
	s.Apps = len(w.apps)
	for _, a := range w.apps {
		s.Containers += a.Replicas
		if a.Replicas == 1 {
			s.SingleInstanceApps++
		}
		if a.Replicas < 50 {
			s.AppsUnder50++
		}
		if a.Replicas > 2000 {
			s.AppsOver2000++
		}
		if a.HasConstraints() {
			s.AntiAffinityApps++
		}
		if a.Priority > PriorityLow {
			s.PriorityApps++
		}
		s.MaxDemand = s.MaxDemand.Max(a.Demand)
		s.TotalDemand = s.TotalDemand.Add(a.Demand.Scale(int64(a.Replicas)))
	}
	return s
}

// ReplicaCDF returns the sorted replica counts per app, from which a
// CDF (Fig. 8a) can be plotted.
func (w *Workload) ReplicaCDF() []int {
	counts := make([]int, len(w.apps))
	for i, a := range w.apps {
		counts[i] = a.Replicas
	}
	sort.Ints(counts)
	return counts
}

func pairKey(a, b string) [2]string {
	if a > b {
		a, b = b, a
	}
	return [2]string{a, b}
}
