package workload

import (
	"strings"
	"testing"

	"aladdin/internal/resource"
)

func twoApps() []*App {
	return []*App{
		{ID: "web", Demand: resource.Cores(4, 8192), Replicas: 3, Priority: PriorityHigh, AntiAffinitySelf: true, AntiAffinityApps: []string{"db"}},
		{ID: "db", Demand: resource.Cores(8, 16384), Replicas: 2, Priority: PriorityLow},
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New([]*App{{ID: "a", Replicas: 0, Demand: resource.Cores(1, 1)}}); err == nil {
		t.Error("zero replicas should be rejected")
	}
	if _, err := New([]*App{
		{ID: "a", Replicas: 1, Demand: resource.Cores(1, 1)},
		{ID: "a", Replicas: 1, Demand: resource.Cores(1, 1)},
	}); err == nil {
		t.Error("duplicate app IDs should be rejected")
	}
	if _, err := New([]*App{
		{ID: "a", Replicas: 1, Demand: resource.Cores(1, 1), AntiAffinityApps: []string{"ghost"}},
	}); err == nil {
		t.Error("unknown anti-affinity reference should be rejected")
	}
	if _, err := New([]*App{
		{ID: "a", Replicas: 1, Demand: resource.Cores(1, 1), AntiAffinityApps: []string{"a"}},
	}); err == nil {
		t.Error("self reference in AntiAffinityApps should be rejected")
	}
	if _, err := New([]*App{
		{ID: "", Replicas: 1, Demand: resource.Cores(1, 1)},
	}); err == nil {
		t.Error("empty app ID should be rejected")
	}
	if _, err := New([]*App{
		{ID: "neg", Replicas: 1, Demand: resource.Milli(-1, 10)},
	}); err == nil {
		t.Error("negative CPU demand should be rejected")
	}
	if _, err := New([]*App{
		{ID: "neg2", Replicas: 1, Demand: resource.Milli(1, -10)},
	}); err == nil {
		t.Error("negative memory demand should be rejected")
	}
}

func TestContainersMaterialization(t *testing.T) {
	w := MustNew(twoApps())
	if w.NumContainers() != 5 {
		t.Fatalf("NumContainers = %d, want 5", w.NumContainers())
	}
	cs := w.Containers()
	for _, c := range cs {
		app := w.App(c.App)
		if app == nil {
			t.Fatalf("container %s references unknown app", c.ID)
		}
		if c.Demand != app.Demand {
			t.Errorf("container %s demand %v != app demand %v (isomorphism)", c.ID, c.Demand, app.Demand)
		}
		if c.Priority != app.Priority {
			t.Errorf("container %s priority mismatch", c.ID)
		}
		if !strings.HasPrefix(c.ID, c.App+"/") {
			t.Errorf("container ID %q not derived from app %q", c.ID, c.App)
		}
	}
	// IDs are unique.
	seen := map[string]bool{}
	for _, c := range cs {
		if seen[c.ID] {
			t.Errorf("duplicate container ID %s", c.ID)
		}
		seen[c.ID] = true
	}
}

func TestAntiAffine(t *testing.T) {
	w := MustNew(twoApps())
	if !w.AntiAffine("web", "db") {
		t.Error("web/db should be anti-affine")
	}
	if !w.AntiAffine("db", "web") {
		t.Error("anti-affinity must be symmetric")
	}
	if !w.AntiAffine("web", "web") {
		t.Error("web has self anti-affinity")
	}
	if w.AntiAffine("db", "db") {
		t.Error("db has no self anti-affinity")
	}
	if w.AntiAffine("web", "ghost") {
		t.Error("unknown app should not be anti-affine")
	}
}

func TestConflictDegree(t *testing.T) {
	w := MustNew(twoApps())
	// web: 2 siblings (self) + 2 db containers = 4
	if got := w.ConflictDegree("web"); got != 4 {
		t.Errorf("ConflictDegree(web) = %d, want 4", got)
	}
	// db: no self, 3 web containers
	if got := w.ConflictDegree("db"); got != 3 {
		t.Errorf("ConflictDegree(db) = %d, want 3", got)
	}
	if got := w.ConflictDegree("ghost"); got != 0 {
		t.Errorf("ConflictDegree(ghost) = %d, want 0", got)
	}
}

func TestComputeStats(t *testing.T) {
	apps := []*App{
		{ID: "single", Demand: resource.Cores(1, 1024), Replicas: 1},
		{ID: "mid", Demand: resource.Cores(2, 2048), Replicas: 49, Priority: PriorityHigh},
		{ID: "big", Demand: resource.Cores(16, 32768), Replicas: 2500, AntiAffinitySelf: true},
	}
	w := MustNew(apps)
	s := w.ComputeStats()
	if s.Apps != 3 || s.Containers != 2550 {
		t.Errorf("Apps/Containers = %d/%d", s.Apps, s.Containers)
	}
	if s.SingleInstanceApps != 1 {
		t.Errorf("SingleInstanceApps = %d", s.SingleInstanceApps)
	}
	if s.AppsUnder50 != 2 {
		t.Errorf("AppsUnder50 = %d", s.AppsUnder50)
	}
	if s.AppsOver2000 != 1 {
		t.Errorf("AppsOver2000 = %d", s.AppsOver2000)
	}
	if s.AntiAffinityApps != 1 {
		t.Errorf("AntiAffinityApps = %d", s.AntiAffinityApps)
	}
	if s.PriorityApps != 1 {
		t.Errorf("PriorityApps = %d", s.PriorityApps)
	}
	if s.MaxDemand != resource.Cores(16, 32768) {
		t.Errorf("MaxDemand = %v", s.MaxDemand)
	}
}

func TestReplicaCDFSorted(t *testing.T) {
	w := MustNew([]*App{
		{ID: "a", Demand: resource.Cores(1, 1), Replicas: 7},
		{ID: "b", Demand: resource.Cores(1, 1), Replicas: 1},
		{ID: "c", Demand: resource.Cores(1, 1), Replicas: 3},
	})
	cdf := w.ReplicaCDF()
	want := []int{1, 3, 7}
	for i := range want {
		if cdf[i] != want[i] {
			t.Fatalf("ReplicaCDF = %v, want %v", cdf, want)
		}
	}
}

func TestArrangePriorityOrders(t *testing.T) {
	w := MustNew([]*App{
		{ID: "lo", Demand: resource.Cores(1, 1), Replicas: 2, Priority: PriorityLow},
		{ID: "hi", Demand: resource.Cores(1, 1), Replicas: 2, Priority: PriorityHigh},
		{ID: "mid", Demand: resource.Cores(1, 1), Replicas: 1, Priority: PriorityMid},
	})
	chp := w.Arrange(OrderCHP)
	for i := 1; i < len(chp); i++ {
		if chp[i-1].Priority < chp[i].Priority {
			t.Fatalf("CHP not descending at %d: %v then %v", i, chp[i-1].Priority, chp[i].Priority)
		}
	}
	clp := w.Arrange(OrderCLP)
	for i := 1; i < len(clp); i++ {
		if clp[i-1].Priority > clp[i].Priority {
			t.Fatalf("CLP not ascending at %d", i)
		}
	}
	// Arrange must not disturb the workload's own order.
	if w.Containers()[0].App != "lo" {
		t.Error("Arrange mutated workload container order")
	}
}

func TestArrangeAffinityOrders(t *testing.T) {
	w := MustNew([]*App{
		{ID: "calm", Demand: resource.Cores(1, 1), Replicas: 3},
		{ID: "spiky", Demand: resource.Cores(1, 1), Replicas: 2, AntiAffinitySelf: true, AntiAffinityApps: []string{"calm"}},
	})
	cla := w.Arrange(OrderCLA)
	if cla[0].App != "spiky" {
		t.Errorf("CLA should start with the most-constrained app, got %s", cla[0].App)
	}
	csa := w.Arrange(OrderCSA)
	if csa[0].App != "calm" {
		t.Errorf("CSA should start with the least-constrained app, got %s", csa[0].App)
	}
	// CLA and CSA must be exact reverses at the app level here.
	if len(cla) != len(csa) {
		t.Fatal("length mismatch")
	}
}

func TestArrangeSubmissionAndDeterminism(t *testing.T) {
	w := MustNew(twoApps())
	sub := w.Arrange(OrderSubmission)
	for i, c := range w.Containers() {
		if sub[i] != c {
			t.Fatal("submission order should match native order")
		}
	}
	a := w.Arrange(OrderCHP)
	b := w.Arrange(OrderCHP)
	for i := range a {
		if a[i].ID != b[i].ID {
			t.Fatal("Arrange must be deterministic")
		}
	}
}

func TestArrangeInterleaved(t *testing.T) {
	w := MustNew([]*App{
		{ID: "a", Demand: resource.Cores(1, 1), Replicas: 3},
		{ID: "b", Demand: resource.Cores(1, 1), Replicas: 1},
		{ID: "c", Demand: resource.Cores(1, 1), Replicas: 2},
	})
	got := w.Arrange(OrderInterleaved)
	want := []string{"a/0", "b/0", "c/0", "a/1", "c/1", "a/2"}
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].ID != want[i] {
			t.Fatalf("interleaved[%d] = %s, want %s (full: %v)", i, got[i].ID, want[i], ids(got))
		}
	}
}

func ids(cs []*Container) []string {
	out := make([]string, len(cs))
	for i, c := range cs {
		out[i] = c.ID
	}
	return out
}

func TestArrivalOrderStrings(t *testing.T) {
	cases := map[ArrivalOrder]string{
		OrderSubmission:  "submission",
		OrderCHP:         "CHP",
		OrderCLP:         "CLP",
		OrderCLA:         "CLA",
		OrderCSA:         "CSA",
		ArrivalOrder(99): "unknown",
	}
	for o, want := range cases {
		if o.String() != want {
			t.Errorf("%d.String() = %q, want %q", o, o.String(), want)
		}
	}
	if len(AllArrivalOrders()) != 4 {
		t.Error("AllArrivalOrders should list 4 orders")
	}
}

func TestArrangeUnknownOrderFallsBack(t *testing.T) {
	w := MustNew(twoApps())
	got := w.Arrange(ArrivalOrder(99))
	native := w.Containers()
	if len(got) != len(native) {
		t.Fatal("length mismatch")
	}
	for i := range got {
		if got[i] != native[i] {
			t.Fatal("unknown order should fall back to native order")
		}
	}
}

func TestAntiAffinePartnersSymmetric(t *testing.T) {
	w := MustNew([]*App{
		{ID: "a", Demand: resource.Cores(1, 1), Replicas: 1, AntiAffinityApps: []string{"b", "c"}},
		{ID: "b", Demand: resource.Cores(1, 1), Replicas: 1},
		{ID: "c", Demand: resource.Cores(1, 1), Replicas: 1, AntiAffinityApps: []string{"b"}},
	})
	got := w.AntiAffinePartners("b")
	if len(got) != 2 || got[0] != "a" || got[1] != "c" {
		t.Errorf("partners of b = %v, want [a c]", got)
	}
	if len(w.AntiAffinePartners("ghost")) != 0 {
		t.Error("unknown app should have no partners")
	}
}

func TestPriorityString(t *testing.T) {
	if PriorityLow.String() != "low" || PriorityMid.String() != "mid" || PriorityHigh.String() != "high" {
		t.Error("priority names")
	}
	if Priority(9).String() != "prio(9)" {
		t.Error("unknown priority name")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew should panic on invalid input")
		}
	}()
	MustNew([]*App{{ID: "bad", Replicas: -1}})
}
