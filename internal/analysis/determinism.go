package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// deterministicPkgs are the packages whose behaviour must be a pure
// function of their inputs: the scheduler core and flow substrate
// (PR 1's index-vs-naive equivalence depends on byte-identical
// placements), and the trace/sim replay paths (a seeded run must
// reproduce bit-for-bit).  Wall-clock latency probes are allowed when
// annotated //aladdin:nondeterministic-ok.
var deterministicPkgs = []string{
	"aladdin/internal/core",
	"aladdin/internal/flow",
	"aladdin/internal/trace",
	"aladdin/internal/sim",
}

// nondetMarker is the determinism analyzer's suppression marker.
const nondetMarker = "nondeterministic-ok"

// Determinism flags sources of run-to-run nondeterminism inside the
// deterministic packages:
//
//   - time.Now / time.Since calls (route them through the injectable
//     clock; annotate the one legitimate wall-clock read);
//   - top-level math/rand functions, which draw from the global,
//     implicitly seeded source (construct a rand.New(rand.NewSource(
//     seed)) stream instead — methods on *rand.Rand are fine);
//   - bare panic(...) calls, which turn a recoverable invariant slip
//     into a replay-killing crash (return a typed error instead;
//     annotate debug-only oracles);
//   - range over a map whose body lets iteration order escape
//     (appends to a slice, early break/return, channel sends, float
//     accumulation, or any non-builtin call) — placement decisions
//     fed by map order differ between otherwise identical runs.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc: "flags time.Now, unseeded math/rand, bare panics and order-dependent map iteration in deterministic packages; " +
		"suppress intentional sites with //aladdin:" + nondetMarker,
	Run: runDeterminism,
}

func runDeterminism(pass *Pass) (any, error) {
	if !inScope(pass.Pkg.Path(), deterministicPkgs) {
		return nil, nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkNondetCall(pass, n)
			case *ast.RangeStmt:
				checkMapRange(pass, n)
			}
			return true
		})
	}
	return nil, nil
}

// checkNondetCall flags time.Now/Since, global math/rand draws and
// bare panics.
func checkNondetCall(pass *Pass, call *ast.CallExpr) {
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		if obj, ok := pass.TypesInfo.Uses[fn]; ok {
			if b, ok := obj.(*types.Builtin); ok && b.Name() == "panic" {
				pass.Reportf(call.Pos(), nondetMarker,
					"bare panic: a replay aborts instead of reporting a typed error (convert, or annotate a debug-only oracle)")
			}
		}
	case *ast.SelectorExpr:
		obj, ok := pass.TypesInfo.Uses[fn.Sel]
		if !ok {
			return
		}
		f, ok := obj.(*types.Func)
		if !ok || f.Pkg() == nil {
			return
		}
		sig, ok := f.Type().(*types.Signature)
		if !ok || sig.Recv() != nil {
			return // methods (e.g. on a seeded *rand.Rand) are fine
		}
		switch f.Pkg().Path() {
		case "time":
			if f.Name() == "Now" || f.Name() == "Since" {
				pass.Reportf(call.Pos(), nondetMarker,
					"wall-clock read time.%s in a deterministic package: inject a clock (core.Options.Clock)", f.Name())
			}
		case "math/rand", "math/rand/v2":
			switch f.Name() {
			case "New", "NewSource", "NewZipf", "NewPCG", "NewChaCha8":
				// Constructors of explicitly seeded streams.
			default:
				pass.Reportf(call.Pos(), nondetMarker,
					"global math/rand draw rand.%s: use an explicitly seeded *rand.Rand stream", f.Name())
			}
		}
	}
}

// checkMapRange flags map iterations whose body is sensitive to
// iteration order.
func checkMapRange(pass *Pass, rng *ast.RangeStmt) {
	tv, ok := pass.TypesInfo.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	if reason := orderEscapes(pass, rng.Body); reason != "" {
		pass.Reportf(rng.Pos(), nondetMarker,
			"map iteration order escapes (%s): sort the keys first or prove order-independence with an annotation", reason)
	}
}

// orderEscapes reports how a map-range body leaks iteration order, or
// "" when every statement is order-independent (map/counter writes,
// integer accumulation, pure index reads).
func orderEscapes(pass *Pass, body *ast.BlockStmt) string {
	reason := ""
	note := func(r string) {
		if reason == "" {
			reason = r
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if reason != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.BranchStmt:
			if n.Tok == token.BREAK {
				note("early break selects a map-order-dependent element")
			}
		case *ast.ReturnStmt:
			note("early return selects a map-order-dependent element")
		case *ast.SendStmt:
			note("channel send in map order")
		case *ast.CallExpr:
			if r := callEscapes(pass, n); r != "" {
				note(r)
			}
		case *ast.AssignStmt:
			if r := assignEscapes(pass, n); r != "" {
				note(r)
			}
		case *ast.FuncLit:
			return false // deferred execution; orders there are its problem
		}
		return reason == ""
	})
	return reason
}

// callEscapes classifies a call inside a map-range body.  Builtins
// with no observable ordering (len, cap, delete, min, max, and the
// conversion-like make/new) are allowed; append and every other call
// — whose side effects may well record ordering — are not.
func callEscapes(pass *Pass, call *ast.CallExpr) string {
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		obj, ok := pass.TypesInfo.Uses[fn]
		if !ok {
			return ""
		}
		switch o := obj.(type) {
		case *types.Builtin:
			switch o.Name() {
			case "len", "cap", "delete", "min", "max", "make", "new", "copy":
				return ""
			case "append":
				return "append in map order"
			default:
				return "call to " + o.Name() + " in map order"
			}
		case *types.TypeName:
			return "" // conversion
		default:
			return "call to " + fn.Name + " in map order"
		}
	case *ast.SelectorExpr:
		if obj, ok := pass.TypesInfo.Uses[fn.Sel]; ok {
			if _, isType := obj.(*types.TypeName); isType {
				return "" // conversion to a named type
			}
		}
		return "call to " + fn.Sel.Name + " in map order"
	default:
		// Conversions like []byte(x) or calls through arbitrary
		// expressions; treat type conversions as pure.
		if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
			return ""
		}
		return "indirect call in map order"
	}
}

// assignEscapes flags assignments that accumulate order-sensitively:
// any compound assignment on a float (addition is not associative) and
// plain assignment to a range-external slice via append is caught by
// callEscapes already.
func assignEscapes(pass *Pass, as *ast.AssignStmt) string {
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		for _, lhs := range as.Lhs {
			tv, ok := pass.TypesInfo.Types[lhs]
			if !ok {
				continue
			}
			if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsFloat != 0 {
				return "float accumulation is order-sensitive"
			}
		}
	}
	return ""
}
