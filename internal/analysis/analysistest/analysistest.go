// Package analysistest runs an analyzer over a golden fixture package
// and compares its diagnostics against `// want` comments, mirroring
// golang.org/x/tools/go/analysis/analysistest on top of the in-repo
// framework.
//
// Fixture convention: each fixture is one directory of Go files under
// the analyzer's testdata tree.  A line expecting diagnostics carries
// a trailing comment of the form
//
//	expr() // want "regexp" "another regexp"
//
// Every diagnostic reported on that line must match one of the
// regexps, and every regexp must be matched by at least one
// diagnostic on that line; diagnostics on lines without a want
// comment fail the test.  Lines proving the *absence* of a finding
// simply carry no want comment.
package analysistest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"testing"

	"aladdin/internal/analysis"
)

// wantRe extracts the quoted regexps of a want comment: double-quoted
// (backslash escapes apply) or backtick-quoted (taken literally, the
// readable form for patterns full of regex metacharacters).
var wantRe = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"|` + "`([^`]*)`")

// Run loads dir as a single fixture package, applies the analyzer and
// compares diagnostics against the fixture's want comments.
func Run(t *testing.T, dir string, a *analysis.Analyzer) {
	t.Helper()
	moduleDir := moduleRoot(t)
	pkg, err := analysis.LoadDir(moduleDir, dir, "fixture/"+filepath.Base(dir))
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	diags, err := analysis.RunAnalyzers([]*analysis.Package{pkg}, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
	}

	wants := collectWants(t, pkg)
	got := make(map[string][]string) // "file:line" -> messages
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line)
		got[key] = append(got[key], d.Message)
	}

	for key, patterns := range wants {
		msgs := got[key]
		for _, pat := range patterns {
			re, err := regexp.Compile(pat)
			if err != nil {
				t.Fatalf("%s: bad want regexp %q: %v", key, pat, err)
			}
			matched := false
			for _, m := range msgs {
				if re.MatchString(m) {
					matched = true
					break
				}
			}
			if !matched {
				t.Errorf("%s: expected diagnostic matching %q, got %q", key, pat, msgs)
			}
		}
		for _, m := range msgs {
			matchedAny := false
			for _, pat := range patterns {
				if re, err := regexp.Compile(pat); err == nil && re.MatchString(m) {
					matchedAny = true
					break
				}
			}
			if !matchedAny {
				t.Errorf("%s: unexpected diagnostic %q (wants: %q)", key, m, patterns)
			}
		}
	}
	for key, msgs := range got {
		if _, ok := wants[key]; !ok {
			t.Errorf("%s: unexpected diagnostic(s) with no want comment: %q", key, msgs)
		}
	}
}

// collectWants scans the fixture package's own files for want
// comments, keyed by "file:line".  It walks pkg.Files rather than the
// whole FileSet: the gc importer registers dependency source
// positions ($GOROOT/src/...) in the same FileSet and those files
// need not exist on disk.
func collectWants(t *testing.T, pkg *analysis.Package) map[string][]string {
	t.Helper()
	wants := make(map[string][]string)
	for _, f := range pkg.Files {
		name := pkg.Fset.Position(f.Pos()).Filename
		base := filepath.Base(name)
		data, err := os.ReadFile(name)
		if err != nil {
			t.Fatalf("reading %s: %v", name, err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			idx := strings.Index(line, "// want ")
			if idx < 0 {
				continue
			}
			var patterns []string
			for _, m := range wantRe.FindAllStringSubmatch(line[idx+len("// want "):], -1) {
				if m[2] != "" {
					patterns = append(patterns, m[2]) // backtick-quoted: literal
					continue
				}
				pat, err := strconv.Unquote(`"` + m[1] + `"`)
				if err != nil {
					t.Fatalf("%s:%d: bad want string: %v", base, i+1, err)
				}
				patterns = append(patterns, pat)
			}
			if len(patterns) == 0 {
				t.Fatalf("%s:%d: want comment with no quoted regexps", base, i+1)
			}
			wants[fmt.Sprintf("%s:%d", base, i+1)] = patterns
		}
	}
	return wants
}

// moduleRoot walks up from this source file to the directory holding
// go.mod, so fixtures load with the repo's module context regardless
// of the test working directory.
func moduleRoot(t *testing.T) string {
	t.Helper()
	_, thisFile, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("cannot locate module root")
	}
	dir := filepath.Dir(thisFile)
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above analysistest")
		}
		dir = parent
	}
}
