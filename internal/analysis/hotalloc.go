package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// hotallocMarker suppresses one hotalloc diagnostic at a site.
const hotallocMarker = "hotalloc-ok"

// Declaration directives: hotpathWord roots the walk at a function
// whose steady state must stay allocation-free; hotpathStopWord fences
// off a callee subtree that is deliberately outside that contract
// (rescue paths, cold slow paths).
const (
	hotpathWord     = "hotpath"
	hotpathStopWord = "hotpath-stop"
)

// Hotalloc walks the static call graph from //aladdin:hotpath root
// functions and flags constructs the compiler heap-allocates, so a
// zero-alloc regression fails at vet time with a file:line instead of
// at test time with an allocation count (TestSessionPlaceZeroAlloc,
// make allocguard).  Flagged constructs: function literals capturing
// variables, make/new, &composite literals and map/slice literals,
// string↔[]byte/[]rune conversions and string concatenation, fmt
// calls, interface boxing at call arguments, append whose result does
// not feed back into its own first argument (the arena-reuse idiom
// x = append(x, …) and `return append(x, …)` are allowed), and go
// statements.
//
// Two escape hatches keep the signal honest.  Blocks that end by
// returning a non-nil error (or panicking) are cold — corruption and
// validation paths may build rich errors.  //aladdin:hotpath-stop on a
// function excludes it and everything only reachable through it from
// the walk; the scheduler's rescue pipeline (migration, defrag,
// preemption) allocates by design and is annotated so, because the
// AllocsPerRun==0 gate measures the steady state where direct search
// succeeds.
var Hotalloc = &Analyzer{
	Name: "hotalloc",
	Doc: "flags heap-allocating constructs reachable from //aladdin:hotpath roots; " +
		"suppress deliberate allocations with //aladdin:" + hotallocMarker,
	Run: runHotalloc,
}

func runHotalloc(pass *Pass) (any, error) {
	graph := buildCallGraph(pass)
	var roots []*types.Func
	stop := make(map[*types.Func]bool)
	stopComments := make(map[*types.Func]*ast.Comment)
	for _, fn := range graph.sortedFuncs() {
		fd := graph.decls[fn]
		if _, c, ok := funcDirective(fd, hotpathWord); ok {
			roots = append(roots, fn)
			pass.noteMarkerUse(c)
		}
		if _, c, ok := funcDirective(fd, hotpathStopWord); ok {
			stop[fn] = true
			stopComments[fn] = c
		}
	}
	if len(roots) == 0 {
		return nil, nil
	}
	reached := graph.reachable(roots, stop)
	// A stop directive is consumed when it actually fences something:
	// some function on the hot path calls the stopped function.
	for fn, c := range stopComments {
		for caller := range reached {
			if containsFunc(graph.callees[caller], fn) {
				pass.noteMarkerUse(c)
				break
			}
		}
	}
	for _, fn := range graph.sortedFuncs() {
		root, ok := reached[fn]
		if !ok {
			continue
		}
		checkHotFunc(pass, graph.decls[fn], funcDisplayName(root))
	}
	return nil, nil
}

func containsFunc(fns []*types.Func, fn *types.Func) bool {
	for _, f := range fns {
		if f == fn {
			return true
		}
	}
	return false
}

// checkHotFunc reports heap-allocating constructs in one hot
// function's body, skipping cold (error/panic-terminated) blocks.
func checkHotFunc(pass *Pass, fd *ast.FuncDecl, root string) {
	allowedAppends := collectAllowedAppends(fd)
	var inspect func(n ast.Node) bool
	inspect = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BlockStmt:
			if n != fd.Body && isColdStmts(pass, n.List) {
				return false
			}
		case *ast.CaseClause:
			if isColdStmts(pass, n.Body) {
				return false
			}
		case *ast.CommClause:
			if isColdStmts(pass, n.Body) {
				return false
			}
		case *ast.FuncLit:
			if caps := capturedVars(pass, fd, n); len(caps) > 0 {
				pass.Reportf(n.Pos(), hotallocMarker,
					"function literal captures %s: a closure allocates per call on the hot path (root %s)",
					strings.Join(caps, ", "), root)
			}
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), hotallocMarker,
				"go statement allocates on the hot path (root %s)", root)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, isLit := ast.Unparen(n.X).(*ast.CompositeLit); isLit {
					pass.Reportf(n.Pos(), hotallocMarker,
						"&composite literal escapes to the heap on the hot path (root %s)", root)
					return false
				}
			}
		case *ast.CompositeLit:
			if tv, ok := pass.TypesInfo.Types[n]; ok {
				switch tv.Type.Underlying().(type) {
				case *types.Map:
					pass.Reportf(n.Pos(), hotallocMarker,
						"map literal allocates on the hot path (root %s)", root)
				case *types.Slice:
					pass.Reportf(n.Pos(), hotallocMarker,
						"slice literal allocates on the hot path (root %s)", root)
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if tv, ok := pass.TypesInfo.Types[n]; ok && isStringType(tv.Type) {
					pass.Reportf(n.Pos(), hotallocMarker,
						"string concatenation allocates on the hot path (root %s)", root)
				}
			}
		case *ast.CallExpr:
			checkHotCall(pass, n, allowedAppends, root)
		}
		return true
	}
	ast.Inspect(fd.Body, inspect)
}

// checkHotCall reports allocation at one call site: allocating
// builtins, allocating conversions, fmt calls, and interface boxing.
func checkHotCall(pass *Pass, call *ast.CallExpr, allowedAppends map[*ast.CallExpr]bool, root string) {
	// Conversions: T(x).
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		to, from := tv.Type, pass.TypesInfo.Types[call.Args[0]].Type
		if allocatingConversion(to, from) {
			pass.Reportf(call.Pos(), hotallocMarker,
				"conversion %s allocates a copy on the hot path (root %s)",
				describeConversion(to), root)
		}
		return
	}
	// Builtins.
	if ident, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := pass.TypesInfo.Uses[ident].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				pass.Reportf(call.Pos(), hotallocMarker,
					"make allocates on the hot path (root %s): hoist into per-session scratch", root)
			case "new":
				pass.Reportf(call.Pos(), hotallocMarker,
					"new allocates on the hot path (root %s)", root)
			case "append":
				if !allowedAppends[call] {
					pass.Reportf(call.Pos(), hotallocMarker,
						"append into a new destination allocates on the hot path (root %s): reuse the receiver slice (x = append(x, …))", root)
				}
			}
			return
		}
	}
	// fmt calls: formatting boxes every argument and builds a string.
	if fn := staticCallee(pass, call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		pass.Reportf(call.Pos(), hotallocMarker,
			"fmt.%s allocates on the hot path (root %s)", fn.Name(), root)
		return
	}
	// Interface boxing at argument positions.
	sig, ok := pass.TypesInfo.Types[call.Fun].Type.(*types.Signature)
	if !ok || call.Ellipsis.IsValid() {
		return
	}
	for i, arg := range call.Args {
		param := paramAt(sig, i)
		if param == nil || !types.IsInterface(param) {
			continue
		}
		argType := pass.TypesInfo.Types[arg].Type
		if argType == nil || types.IsInterface(argType) || isUntypedNil(pass, arg) {
			continue
		}
		if pointerShaped(argType) {
			continue // the interface data word holds the pointer directly
		}
		pass.Reportf(arg.Pos(), hotallocMarker,
			"argument boxes %s into interface parameter on the hot path (root %s)",
			argType.String(), root)
	}
}

// paramAt resolves the effective parameter type of argument i,
// unwrapping the variadic tail.
func paramAt(sig *types.Signature, i int) types.Type {
	n := sig.Params().Len()
	if n == 0 {
		return nil
	}
	if sig.Variadic() && i >= n-1 {
		s, ok := sig.Params().At(n - 1).Type().(*types.Slice)
		if !ok {
			return nil
		}
		return s.Elem()
	}
	if i >= n {
		return nil
	}
	return sig.Params().At(i).Type()
}

func isUntypedNil(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.IsNil()
}

// pointerShaped reports types whose value is a single pointer word:
// converting one to an interface stores it in the data word directly,
// with no allocation.
func pointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return t.Underlying().(*types.Basic).Kind() == types.UnsafePointer
	}
	return false
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// allocatingConversion reports string↔[]byte / string↔[]rune
// conversions, which copy their operand.
func allocatingConversion(to, from types.Type) bool {
	if to == nil || from == nil {
		return false
	}
	return (isStringType(to) && isByteOrRuneSlice(from)) ||
		(isByteOrRuneSlice(to) && isStringType(from))
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

func describeConversion(to types.Type) string {
	if isStringType(to) {
		return "to string"
	}
	return fmt.Sprintf("to %s", to.String())
}

// collectAllowedAppends finds append calls in the two arena-reuse
// shapes that do not create a new live slice per call:
//
//	x = append(x, …)       // feeds back into its own first argument
//	return append(x, …)    // caller owns the buffer and feeds it back
func collectAllowedAppends(fd *ast.FuncDecl) map[*ast.CallExpr]bool {
	allowed := make(map[*ast.CallExpr]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, rhs := range n.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || !isAppendCall(call) || len(call.Args) == 0 {
					continue
				}
				if sameExprText(n.Lhs[i], call.Args[0]) {
					allowed[call] = true
				}
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if call, ok := ast.Unparen(res).(*ast.CallExpr); ok && isAppendCall(call) {
					allowed[call] = true
				}
			}
		}
		return true
	})
	return allowed
}

func isAppendCall(call *ast.CallExpr) bool {
	ident, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && ident.Name == "append"
}

// sameExprText compares two expressions syntactically, ignoring
// whitespace, for the x = append(x, …) feedback test.
func sameExprText(a, b ast.Expr) bool {
	return nodeText(a) == nodeText(b)
}

func nodeText(n ast.Node) string {
	var sb strings.Builder
	ast.Inspect(n, func(c ast.Node) bool {
		switch c := c.(type) {
		case *ast.Ident:
			sb.WriteString(c.Name)
			sb.WriteByte(' ')
		case *ast.BasicLit:
			sb.WriteString(c.Value)
			sb.WriteByte(' ')
		case *ast.SelectorExpr:
			sb.WriteString(".")
		case *ast.IndexExpr:
			sb.WriteString("[")
		}
		return true
	})
	return sb.String()
}

// capturedVars lists local variables of the enclosing declaration the
// literal closes over, in first-use order.  A literal with no captures
// compiles to a static function value and is allocation-free.
func capturedVars(pass *Pass, fd *ast.FuncDecl, lit *ast.FuncLit) []string {
	var names []string
	seen := make(map[*types.Var]bool)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		ident, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pass.TypesInfo.Uses[ident].(*types.Var)
		if !ok || seen[v] || v.IsField() {
			return true
		}
		// Captured: declared inside the enclosing declaration (its
		// parameters, receiver, or locals) but outside the literal.
		if v.Pos() < fd.Pos() || v.Pos() > fd.End() {
			return true // package-level or other-file: not captured
		}
		if v.Pos() >= lit.Pos() && v.Pos() <= lit.End() {
			return true // the literal's own params/locals
		}
		seen[v] = true
		names = append(names, v.Name())
		return true
	})
	sort.Strings(names)
	return names
}

// isColdStmts reports whether a statement list is a cold (failure)
// path: it ends by returning a non-nil error or panicking.  Hot
// functions may build rich errors on such paths; the steady-state
// allocation contract covers success paths only.
func isColdStmts(pass *Pass, list []ast.Stmt) bool {
	if len(list) == 0 {
		return false
	}
	switch last := list[len(list)-1].(type) {
	case *ast.ReturnStmt:
		if len(last.Results) == 0 {
			return false
		}
		res := last.Results[len(last.Results)-1]
		tv, ok := pass.TypesInfo.Types[res]
		if !ok || tv.IsNil() {
			return false
		}
		return isErrorType(tv.Type)
	case *ast.ExprStmt:
		call, ok := last.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		ident, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok {
			return false
		}
		_, isBuiltin := pass.TypesInfo.Uses[ident].(*types.Builtin)
		return isBuiltin && ident.Name == "panic"
	}
	return false
}

func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil {
		return true
	}
	// Concrete error implementations returned on failure paths count
	// too (*CorruptionError and friends).
	return types.Implements(t, errorInterface) ||
		types.Implements(types.NewPointer(t), errorInterface)
}

// errorInterface is the universe error interface type.
var errorInterface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
