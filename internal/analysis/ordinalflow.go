package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ordinalflowMarker suppresses one ordinalflow diagnostic at a site.
const ordinalflowMarker = "domain-ok"

// domainWord is the declaration directive binding an id domain to a
// table, scalar, or function.
const domainWord = "domain"

// Ordinalflow tracks which id space an integer value belongs to.  The
// sharded core juggles several that are all plain int32 at the type
// level — global machine ids, a shard's own machine ordinals, shard
// indices, container ordinals, app refs — and a value from one space
// silently indexes a table of another.  Domains are declared with
// //aladdin:domain directives on the defining tables and scalars:
//
//	ownerOf []int32            //aladdin:domain global -> shard
//	globalOf [][]MachineID     //aladdin:domain shard, machine -> global
//	Ord int                    //aladdin:domain ord
//
//	//aladdin:domain ord -> machine
//	func (s *Session) AssignedOrd(ord int32) MachineID
//
// For an indexable table the names before -> are the successive index
// domains and the name after -> is the element domain; for a function
// they are the parameter domains (`_` skips one) and the first
// result's domain; a bare name declares a scalar.  The analyzer
// propagates domains through assignments, conversions, range loops,
// and annotated calls, and flags cross-domain indexing, comparisons,
// assignments into annotated targets, arguments to annotated
// parameters, and returns from annotated functions.  Arithmetic erases
// a domain: an expression like ord+1 is no longer a trusted id.
var Ordinalflow = &Analyzer{
	Name: "ordinalflow",
	Doc: "flags id values from one //aladdin:domain id space indexing or comparing against another; " +
		"suppress deliberate cross-domain uses with //aladdin:" + ordinalflowMarker,
	Run: runOrdinalflow,
}

// domainSpec is one parsed //aladdin:domain directive.  Scalars have
// nil dims; tables and functions have one dim per index/parameter.
type domainSpec struct {
	dims []string
	elem string
}

func (s *domainSpec) scalar() bool { return len(s.dims) == 0 }

// parseDomainSpec parses directive args: "D" (scalar), or
// "D1[, D2…] -> E [reason…]".  A `_` dimension or element means
// explicitly untracked.
func parseDomainSpec(args string) *domainSpec {
	left, right, arrow := strings.Cut(args, "->")
	if !arrow {
		word, _, _ := cutWord(strings.TrimSpace(args))
		if word == "" {
			return nil
		}
		return &domainSpec{elem: word}
	}
	var dims []string
	for _, d := range strings.Split(left, ",") {
		d = strings.TrimSpace(d)
		if d == "" || strings.ContainsAny(d, " \t") {
			return nil
		}
		dims = append(dims, d)
	}
	if len(dims) == 0 {
		return nil
	}
	elem, _, _ := cutWord(strings.TrimSpace(right))
	if elem == "" {
		return nil
	}
	return &domainSpec{dims: dims, elem: elem}
}

// ordinalflowState is the per-package analysis state.
type ordinalflowState struct {
	pass  *Pass
	specs map[types.Object]*domainSpec // annotated fields, vars, locals
	funcs map[*types.Func]*domainSpec  // annotated functions
	env   map[types.Object]string      // inferred domains of locals (per function)
}

func runOrdinalflow(pass *Pass) (any, error) {
	st := &ordinalflowState{
		pass:  pass,
		specs: make(map[types.Object]*domainSpec),
		funcs: make(map[*types.Func]*domainSpec),
	}
	st.collectSpecs()
	if len(st.specs) == 0 && len(st.funcs) == 0 {
		return nil, nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			st.checkFunc(fd)
		}
	}
	return nil, nil
}

// collectSpecs binds //aladdin:domain directives to their objects:
// struct fields (doc or trailing comment), any var whose defining
// identifier shares the directive's line or the line below it
// (package vars, locals, named results), and functions (doc comment).
func (st *ordinalflowState) collectSpecs() {
	// Struct fields, through possibly multi-line doc comments.
	for _, d := range fieldDirectives(st.pass) {
		if d.word != domainWord {
			continue
		}
		spec := parseDomainSpec(d.args)
		if spec == nil {
			st.pass.Reportf(d.comment.Pos(), "",
				"malformed //aladdin:%s directive: want \"D\" or \"D1[, D2] -> E\"", domainWord)
			continue
		}
		for _, name := range d.field.Names {
			if obj := st.pass.TypesInfo.Defs[name]; obj != nil {
				st.specs[obj] = spec
				st.pass.noteMarkerUse(d.comment)
			}
		}
	}
	// Line-anchored directives for vars: index comments by line.
	type lineDirective struct {
		comment *ast.Comment
		spec    *domainSpec
	}
	byLine := make(map[string]map[int]lineDirective) // file -> line -> directive
	for _, file := range st.pass.Files {
		fname := st.pass.Fset.Position(file.Pos()).Filename
		lines := make(map[int]lineDirective)
		byLine[fname] = lines
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				word, args, ok := parseDirective(c)
				if !ok || word != domainWord {
					continue
				}
				spec := parseDomainSpec(args)
				if spec == nil {
					continue // reported above for fields; fields dominate
				}
				lines[st.pass.Fset.Position(c.Pos()).Line] = lineDirective{c, spec}
			}
		}
	}
	for ident, obj := range st.pass.TypesInfo.Defs {
		v, ok := obj.(*types.Var)
		if !ok || st.specs[v] != nil {
			continue
		}
		pos := st.pass.Fset.Position(ident.Pos())
		lines := byLine[pos.Filename]
		if d, ok := lines[pos.Line]; ok {
			st.specs[v] = d.spec
			st.pass.noteMarkerUse(d.comment)
		} else if d, ok := lines[pos.Line-1]; ok {
			st.specs[v] = d.spec
			st.pass.noteMarkerUse(d.comment)
		}
	}
	// Functions.
	for _, file := range st.pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			args, c, ok := funcDirective(fd, domainWord)
			if !ok {
				continue
			}
			spec := parseDomainSpec(args)
			if spec == nil {
				st.pass.Reportf(c.Pos(), "",
					"malformed //aladdin:%s directive: want \"D\" or \"D1[, D2] -> E\"", domainWord)
				continue
			}
			if fn, ok := st.pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				st.funcs[fn] = spec
				st.pass.noteMarkerUse(c)
			}
		}
	}
}

// tracked reports whether a domain name participates in checks.
func tracked(d string) bool { return d != "" && d != "_" }

// checkFunc runs the intra-procedural domain inference and checks over
// one function body.
func (st *ordinalflowState) checkFunc(fd *ast.FuncDecl) {
	st.env = make(map[types.Object]string)
	var retSpec *domainSpec
	if fn, ok := st.pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
		retSpec = st.funcs[fn]
		// Annotated parameter domains seed the environment.
		if retSpec != nil && fd.Type.Params != nil {
			i := 0
			for _, f := range fd.Type.Params.List {
				for _, name := range f.Names {
					if i < len(retSpec.dims) && tracked(retSpec.dims[i]) {
						if obj := st.pass.TypesInfo.Defs[name]; obj != nil {
							st.env[obj] = retSpec.dims[i]
						}
					}
					i++
				}
			}
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			st.checkAssign(n)
		case *ast.RangeStmt:
			st.checkRange(n)
		case *ast.IndexExpr:
			st.checkIndex(n)
		case *ast.BinaryExpr:
			st.checkCompare(n)
		case *ast.CallExpr:
			st.checkCallArgs(n)
		case *ast.ReturnStmt:
			if retSpec != nil && tracked(retSpec.elem) && len(n.Results) > 0 {
				if d := st.domainOf(n.Results[0]); tracked(d) && d != retSpec.elem {
					st.pass.Reportf(n.Results[0].Pos(), ordinalflowMarker,
						"returning %s value from %s, declared to return %s ids",
						d, fd.Name.Name, retSpec.elem)
				}
			}
		}
		return true
	})
}

// checkAssign verifies writes into annotated targets and propagates
// inferred domains into unannotated locals.
func (st *ordinalflowState) checkAssign(as *ast.AssignStmt) {
	if as.Tok != token.ASSIGN && as.Tok != token.DEFINE {
		return // compound ops (+=, …) erase the domain; keep prior
	}
	if len(as.Lhs) != len(as.Rhs) {
		// Multi-value: only an annotated callee's first result carries
		// a domain.
		if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
			if d := st.domainOf(as.Rhs[0]); tracked(d) {
				st.bindTarget(as.Lhs[0], d)
			}
		}
		return
	}
	for i := range as.Lhs {
		d := st.domainOf(as.Rhs[i])
		lhs := ast.Unparen(as.Lhs[i])
		// Indexed or annotated targets get checked; bare locals learn.
		if declared := st.targetSpec(lhs); declared != nil && tracked(declared.elem) && declared.scalar() {
			if tracked(d) && d != declared.elem {
				st.pass.Reportf(as.Pos(), ordinalflowMarker,
					"assigning %s value to %s, declared to hold %s ids",
					d, exprString(st.pass, lhs), declared.elem)
			}
			continue
		}
		if idx, ok := lhs.(*ast.IndexExpr); ok {
			if spec := st.tableSpecOf(idx.X); spec != nil && len(spec.dims) == 1 && tracked(spec.elem) {
				if tracked(d) && d != spec.elem {
					st.pass.Reportf(as.Pos(), ordinalflowMarker,
						"storing %s value into %s, declared to hold %s ids",
						d, exprString(st.pass, idx.X), spec.elem)
				}
			}
			continue
		}
		st.bindTarget(lhs, d)
	}
}

// bindTarget updates the inferred environment for a plain local
// identifier target.
func (st *ordinalflowState) bindTarget(e ast.Expr, d string) {
	ident, ok := ast.Unparen(e).(*ast.Ident)
	if !ok || ident.Name == "_" {
		return
	}
	obj := st.pass.TypesInfo.Defs[ident]
	if obj == nil {
		obj = st.pass.TypesInfo.Uses[ident]
	}
	if obj == nil || st.specs[obj] != nil {
		return
	}
	if tracked(d) {
		st.env[obj] = d
	} else {
		delete(st.env, obj) // reassignment from an untracked source
	}
}

// checkRange propagates a ranged table's index domain into the key
// variable and its element domain into the value variable.
func (st *ordinalflowState) checkRange(rs *ast.RangeStmt) {
	spec := st.tableSpecOf(rs.X)
	if spec == nil || len(spec.dims) == 0 {
		return
	}
	if rs.Key != nil && tracked(spec.dims[0]) {
		st.bindTarget(rs.Key, spec.dims[0])
	}
	if rs.Value != nil && len(spec.dims) == 1 && tracked(spec.elem) {
		st.bindTarget(rs.Value, spec.elem)
	}
}

// checkIndex verifies the index expression's domain against the
// table's declared first dimension.
func (st *ordinalflowState) checkIndex(idx *ast.IndexExpr) {
	spec := st.tableSpecOf(idx.X)
	if spec == nil || len(spec.dims) == 0 || !tracked(spec.dims[0]) {
		return
	}
	d := st.domainOf(idx.Index)
	if tracked(d) && d != spec.dims[0] {
		st.pass.Reportf(idx.Index.Pos(), ordinalflowMarker,
			"indexing %s with a %s value; its index space is %s ids",
			exprString(st.pass, idx.X), d, spec.dims[0])
	}
}

// checkCompare flags ordering/equality comparisons between values of
// different domains.
func (st *ordinalflowState) checkCompare(be *ast.BinaryExpr) {
	switch be.Op {
	case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
	default:
		return
	}
	da, db := st.domainOf(be.X), st.domainOf(be.Y)
	if tracked(da) && tracked(db) && da != db {
		st.pass.Reportf(be.OpPos, ordinalflowMarker,
			"comparing a %s value with a %s value: different id spaces", da, db)
	}
}

// checkCallArgs verifies arguments against an annotated callee's
// declared parameter domains.
func (st *ordinalflowState) checkCallArgs(call *ast.CallExpr) {
	fn := staticCallee(st.pass, call)
	if fn == nil {
		return
	}
	spec := st.funcs[fn]
	if spec == nil || call.Ellipsis.IsValid() {
		return
	}
	for i, arg := range call.Args {
		if i >= len(spec.dims) || !tracked(spec.dims[i]) {
			continue
		}
		if d := st.domainOf(arg); tracked(d) && d != spec.dims[i] {
			st.pass.Reportf(arg.Pos(), ordinalflowMarker,
				"passing %s value to %s, whose parameter %d takes %s ids",
				d, fn.Name(), i+1, spec.dims[i])
		}
	}
}

// targetSpec resolves the declared spec of an assignment target:
// an annotated identifier or an annotated struct field selector.
func (st *ordinalflowState) targetSpec(e ast.Expr) *domainSpec {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := st.pass.TypesInfo.Defs[e]; obj != nil {
			return st.specs[obj]
		}
		if obj := st.pass.TypesInfo.Uses[e]; obj != nil {
			return st.specs[obj]
		}
	case *ast.SelectorExpr:
		if obj := st.pass.TypesInfo.Uses[e.Sel]; obj != nil {
			return st.specs[obj]
		}
	}
	return nil
}

// tableSpecOf resolves an expression to an indexable domain spec:
// annotated tables, fields, locals, and partially-applied index
// expressions over multi-dimensional tables.
func (st *ordinalflowState) tableSpecOf(e ast.Expr) *domainSpec {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident, *ast.SelectorExpr:
		spec := st.targetSpec(e)
		if spec != nil && len(spec.dims) > 0 {
			return spec
		}
	case *ast.IndexExpr:
		if spec := st.tableSpecOf(e.X); spec != nil && len(spec.dims) > 1 {
			return &domainSpec{dims: spec.dims[1:], elem: spec.elem}
		}
	}
	return nil
}

// domainOf infers the domain of a value expression, or "" when
// unknown.  Conversions are domain-transparent; arithmetic erases.
func (st *ordinalflowState) domainOf(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := st.pass.TypesInfo.Uses[e]
		if obj == nil {
			obj = st.pass.TypesInfo.Defs[e]
		}
		if obj == nil {
			return ""
		}
		if spec := st.specs[obj]; spec != nil && spec.scalar() && tracked(spec.elem) {
			return spec.elem
		}
		return st.env[obj]
	case *ast.SelectorExpr:
		if obj := st.pass.TypesInfo.Uses[e.Sel]; obj != nil {
			if spec := st.specs[obj]; spec != nil && spec.scalar() && tracked(spec.elem) {
				return spec.elem
			}
		}
	case *ast.IndexExpr:
		if spec := st.tableSpecOf(e.X); spec != nil && len(spec.dims) == 1 && tracked(spec.elem) {
			return spec.elem
		}
	case *ast.CallExpr:
		// Conversions pass the domain through: int32(gid) is still a
		// global id.
		if tv, ok := st.pass.TypesInfo.Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
			return st.domainOf(e.Args[0])
		}
		if fn := staticCallee(st.pass, e); fn != nil {
			if spec := st.funcs[fn]; spec != nil && tracked(spec.elem) {
				return spec.elem
			}
		}
	}
	return ""
}
