package analysis

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// The suppression audit (aladdin-vet -audit-suppressions) keeps the
// //aladdin: namespace honest: every marker must carry a reason and
// must still do something.  It replays the full analyzer suite with
// reporting disabled, recording which directive comments were honoured
// — a suppression that silenced a diagnostic, a declaration an
// analyzer consumed — then walks every directive comment in the loaded
// packages and flags the unknown, the bare, and the stale.

// AuditAnalyzerName tags audit findings in output and JSON.
const AuditAnalyzerName = "suppressions"

// markerKind distinguishes suppressions (silence one diagnostic) from
// declarations (feed facts to an analyzer).
type markerKind int

const (
	markerSuppression markerKind = iota
	markerDeclaration
)

// knownMarkers registers every marker word the //aladdin: namespace
// accepts.  An unregistered word is a typo and gets flagged.
var knownMarkers = map[string]markerKind{
	"nondeterministic-ok": markerSuppression,
	lockMarker:            markerSuppression, // lock-ok
	"float-ok":            markerSuppression,
	"errcheck-ok":         markerSuppression,
	ordinalflowMarker:     markerSuppression, // domain-ok
	lockorderMarker:       markerSuppression, // lockorder-ok
	hotallocMarker:        markerSuppression, // hotalloc-ok
	domainWord:            markerDeclaration, // domain
	lockLevelWord:         markerDeclaration, // lock-level
	hotpathWord:           markerDeclaration, // hotpath
	hotpathStopWord:       markerDeclaration, // hotpath-stop
}

// AuditSuppressions replays the analyzers over the packages with
// reporting disabled and returns one diagnostic per marker problem:
// unknown marker words, markers with no reason text, and stale markers
// that no longer suppress any diagnostic or feed any analyzer.
func AuditSuppressions(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	used := make(map[token.Pos]bool)
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				Report:    func(Diagnostic) {},
				markerUse: func(pos token.Pos) { used[pos] = true },
			}
			if _, err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.Types.Path(), err)
			}
		}
	}

	var diags []Diagnostic
	report := func(pos token.Pos, format string, args ...any) {
		diags = append(diags, Diagnostic{
			Pos:      pos,
			Message:  fmt.Sprintf(format, args...),
			Analyzer: AuditAnalyzerName,
		})
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					word, rest, ok := parseDirective(c)
					if !ok {
						continue
					}
					kind, known := knownMarkers[word]
					if !known {
						report(c.Pos(), "unknown //aladdin: marker %q (known markers: %s)",
							word, knownMarkerList())
						continue
					}
					if reason := markerReason(word, rest); reason == "" {
						report(c.Pos(), "//aladdin:%s has no reason text: say why the exception or declaration is safe", word)
					}
					if !used[c.Pos()] {
						switch kind {
						case markerSuppression:
							report(c.Pos(), "stale //aladdin:%s: it no longer suppresses any diagnostic; remove it", word)
						case markerDeclaration:
							report(c.Pos(), "stale //aladdin:%s: no analyzer consumed it (misplaced or malformed?)", word)
						}
					}
				}
			}
		}
	}
	sortDiagnostics(pkgs, diags)
	return diags, nil
}

// markerReason strips a marker's structural arguments and returns the
// free reason text.  lock-level consumes a numeric level first; the
// domain directive's spec is self-documenting, so its spec counts as
// the reason.
func markerReason(word, rest string) string {
	switch word {
	case lockLevelWord:
		_, reason, _ := cutWord(rest)
		return strings.TrimSpace(reason)
	default:
		return rest
	}
}

func knownMarkerList() string {
	words := make([]string, 0, len(knownMarkers))
	for w := range knownMarkers {
		words = append(words, w)
	}
	sort.Strings(words)
	return strings.Join(words, ", ")
}
