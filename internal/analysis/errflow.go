package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// errMarker is the errflow analyzer's suppression marker.
const errMarker = "errcheck-ok"

// errflowPkgs are the packages whose error returns carry placement
// state: place/unplace/augment/cancel/checkpoint results there report
// half-applied mutations, and discarding one desynchronises the
// scheduler's views (machine allocations vs flow network vs index).
var errflowPkgs = []string{
	"aladdin/internal/core",
	"aladdin/internal/server",
	"aladdin/internal/sim",
	"aladdin/internal/flow",
	"aladdin/internal/trace",
}

// Errflow flags discarded errors on placement/unplace/checkpoint
// paths: a call whose callee is defined in this module (or the
// package under test) and whose final result is an error, used as a
// bare statement, a go/defer statement, or assigned to blank.
// Third-party and standard-library callees are exempt — the hazard
// this analyzer polices is losing *scheduler state* errors, not
// fmt.Fprintf's.  Suppress deliberate discards with
// //aladdin:errcheck-ok.
var Errflow = &Analyzer{
	Name: "errflow",
	Doc: "flags discarded errors from module-internal calls on placement/unplace/checkpoint paths; " +
		"suppress deliberate discards with //aladdin:" + errMarker,
	Run: runErrflow,
}

func runErrflow(pass *Pass) (any, error) {
	if !inScope(pass.Pkg.Path(), errflowPkgs) {
		return nil, nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					checkDiscardedError(pass, call, "result discarded")
				}
				return false
			case *ast.GoStmt:
				checkDiscardedError(pass, n.Call, "result discarded by go statement")
				return true
			case *ast.DeferStmt:
				checkDiscardedError(pass, n.Call, "result discarded by defer")
				return true
			case *ast.AssignStmt:
				checkBlankedError(pass, n)
				return true
			}
			return true
		})
	}
	return nil, nil
}

// checkDiscardedError reports a call statement that drops an error
// result from a module-internal callee.
func checkDiscardedError(pass *Pass, call *ast.CallExpr, how string) {
	name, ok := errorReturningInternalCall(pass, call)
	if !ok {
		return
	}
	pass.Reportf(call.Pos(), errMarker, "error from %s %s", name, how)
}

// checkBlankedError reports assignments that send a module-internal
// error into the blank identifier.
func checkBlankedError(pass *Pass, as *ast.AssignStmt) {
	// Single-call multi-assign: x, _ := f().  The error is the last
	// result by convention; flag only when its slot is blank.
	if len(as.Rhs) == 1 {
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok || len(as.Lhs) < 1 {
			return
		}
		name, ok := errorReturningInternalCall(pass, call)
		if !ok {
			return
		}
		if isBlank(as.Lhs[len(as.Lhs)-1]) {
			pass.Reportf(as.Pos(), errMarker, "error from %s assigned to blank", name)
		}
		return
	}
	// Parallel assignment: each RHS pairs with one LHS.
	for i, rhs := range as.Rhs {
		if i >= len(as.Lhs) || !isBlank(as.Lhs[i]) {
			continue
		}
		if call, ok := rhs.(*ast.CallExpr); ok {
			if name, ok := errorReturningInternalCall(pass, call); ok {
				pass.Reportf(as.Pos(), errMarker, "error from %s assigned to blank", name)
			}
		}
	}
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

// errorReturningInternalCall reports whether the call's callee is
// declared in this module (or the package being analyzed) and its
// last result is an error; it returns a printable callee name.
func errorReturningInternalCall(pass *Pass, call *ast.CallExpr) (string, bool) {
	var obj types.Object
	var name string
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		obj = pass.TypesInfo.Uses[fn]
		name = fn.Name
	case *ast.SelectorExpr:
		obj = pass.TypesInfo.Uses[fn.Sel]
		name = fn.Sel.Name
	default:
		return "", false
	}
	f, ok := obj.(*types.Func)
	if !ok {
		return "", false
	}
	pkg := f.Pkg()
	if pkg == nil {
		return "", false
	}
	if pkg != pass.Pkg && !strings.HasPrefix(pkg.Path(), "aladdin/") {
		return "", false
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok {
		return "", false
	}
	res := sig.Results()
	if res.Len() == 0 {
		return "", false
	}
	last := res.At(res.Len() - 1).Type()
	named, ok := last.(*types.Named)
	if !ok || named.Obj().Pkg() != nil || named.Obj().Name() != "error" {
		return "", false
	}
	return name, true
}
