package analysis

import (
	"go/ast"
	"go/types"
	"sort"
)

// lockMarker is the lockcheck analyzer's suppression marker.
const lockMarker = "lock-ok"

// Lockcheck flags exported methods that touch mutex-guarded struct
// fields without holding the lock.  The guarded set is inferred, not
// declared: a field of a struct that also holds a sync.Mutex/RWMutex
// is guarded when any method of that struct accesses it while the
// mutex is held.  Exported methods (the concurrent API surface — the
// HTTP Server's handlers, anything a caller can reach from another
// goroutine) must then hold the lock across every guarded-field
// access; unexported methods are assumed to be called with the lock
// held, matching this repo's convention.  Fields only ever touched
// outside critical sections (configured once at construction, e.g.
// the Server's request mux) stay unguarded and lock-free reads of
// them are fine.
//
// The lock-state tracking is flow-insensitive within a method: a
// mutex is considered held from the source position of recv.mu.Lock()
// (or RLock) to the matching explicit recv.mu.Unlock(); deferred
// unlocks keep it held to the end of the method.  Function literals
// are separate lock contexts: a closure handed to another goroutine
// (go statements, parallel.ForEach) is not protected by locks the
// spawning method holds, so its body is checked starting unlocked and
// must take the lock itself — except deferred literals, which run on
// the method's own goroutine at return and stay in the enclosing
// context.
//
// Two suppression forms exist.  A statement- or function-level
// //aladdin:lock-ok comment silences one diagnostic site (a
// deliberate racy read).  A //aladdin:lock-ok comment on a struct
// field's declaration exempts the field entirely: it is read-only
// after construction (routing tables, configuration), so accesses are
// never tracked and can never drag it into the guarded set — the
// antidote to over-broad inference when a coarse outer mutex is held
// across a whole method body.
var Lockcheck = &Analyzer{
	Name: "lockcheck",
	Doc: "flags exported methods reading or writing mutex-guarded fields without holding the lock; " +
		"suppress deliberate lock-free accesses with //aladdin:" + lockMarker,
	Run: runLockcheck,
}

// lockEvent is one mutex operation or field access inside a method
// body, ordered by source position.
type lockEvent struct {
	pos   int // file offset for ordering
	node  ast.Node
	kind  lockEventKind
	field string
	write bool
}

type lockEventKind int

const (
	evLock lockEventKind = iota
	evUnlock
	evDeferredUnlock
	evAccess
)

func runLockcheck(pass *Pass) (any, error) {
	structs := mutexStructs(pass)
	if len(structs) == 0 {
		return nil, nil
	}
	// methodsOf[named] lists the FuncDecls whose receiver is that
	// struct (by value or pointer).
	methodsOf := make(map[*types.Named][]*ast.FuncDecl)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || len(fd.Recv.List) != 1 || fd.Body == nil {
				continue
			}
			named := receiverNamed(pass, fd)
			if named == nil {
				continue
			}
			if _, tracked := structs[named]; tracked {
				methodsOf[named] = append(methodsOf[named], fd)
			}
		}
	}
	for named, info := range structs {
		checkStructMethods(pass, named, info, methodsOf[named])
	}
	return nil, nil
}

// mutexInfo describes one struct under analysis.
type mutexInfo struct {
	mutexFields map[string]bool // fields of type sync.Mutex / sync.RWMutex
	fields      map[string]bool // every other field
}

// mutexStructs finds the package's named struct types that embed or
// hold a sync.Mutex/RWMutex field.  Fields whose declaration carries
// an //aladdin:lock-ok comment are exempt: never tracked, never
// inferred guarded.
func mutexStructs(pass *Pass) map[*types.Named]*mutexInfo {
	markers := exemptFields(pass)
	out := make(map[*types.Named]*mutexInfo)
	for _, name := range pass.Pkg.Scope().Names() {
		obj, ok := pass.Pkg.Scope().Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		named, ok := obj.Type().(*types.Named)
		if !ok {
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		exempt := markers[name]
		info := &mutexInfo{mutexFields: make(map[string]bool), fields: make(map[string]bool)}
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			switch {
			case isSyncMutex(f.Type()):
				info.mutexFields[f.Name()] = true
			case exempt[f.Name()] != nil:
				// Declared read-only after construction; lock-free
				// accesses are the point.
			default:
				info.fields[f.Name()] = true
			}
		}
		if len(info.mutexFields) > 0 {
			out[named] = info
			// Field exemptions on a tracked struct are honoured; the
			// suppression audit counts them as live.
			for _, c := range exempt {
				pass.noteMarkerUse(c)
			}
		}
	}
	return out
}

// exemptFields collects, per struct type name, the fields whose
// declaration carries an //aladdin:lock-ok marker — either a doc
// comment above the field or a trailing comment on its line — mapped
// to the marker comment.
func exemptFields(pass *Pass) map[string]map[string]*ast.Comment {
	out := make(map[string]map[string]*ast.Comment)
	for _, d := range fieldDirectives(pass) {
		if d.word != lockMarker {
			continue
		}
		m := out[d.structName]
		if m == nil {
			m = make(map[string]*ast.Comment)
			out[d.structName] = m
		}
		for _, n := range d.field.Names {
			if m[n.Name] == nil {
				m[n.Name] = d.comment
			}
		}
	}
	return out
}

// isSyncMutex reports whether t is sync.Mutex or sync.RWMutex (or a
// pointer to one).
func isSyncMutex(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// receiverNamed resolves a method's receiver to its named type.
func receiverNamed(pass *Pass, fd *ast.FuncDecl) *types.Named {
	field := fd.Recv.List[0]
	tv, ok := pass.TypesInfo.Types[field.Type]
	if !ok {
		return nil
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// checkStructMethods infers the guarded field set across all methods
// (every lock context of every method), then reports unguarded
// accesses in exported methods, checking each lock context with its
// own lock state.
func checkStructMethods(pass *Pass, named *types.Named, info *mutexInfo, methods []*ast.FuncDecl) {
	type methodEvents struct {
		fd       *ast.FuncDecl
		contexts [][]lockEvent
	}
	var all []methodEvents
	guarded := make(map[string]bool)
	for _, fd := range methods {
		contexts := collectLockContexts(pass, fd, info)
		all = append(all, methodEvents{fd, contexts})
		for _, events := range contexts {
			held := false
			for _, ev := range events {
				switch ev.kind {
				case evLock, evDeferredUnlock:
					held = true
				case evUnlock:
					held = false
				case evAccess:
					if held {
						guarded[ev.field] = true
					}
				}
			}
		}
	}
	if len(guarded) == 0 {
		return
	}
	for _, me := range all {
		if !me.fd.Name.IsExported() {
			continue // internal helpers run with the lock held by convention
		}
		for _, events := range me.contexts {
			held := false
			for _, ev := range events {
				switch ev.kind {
				case evLock, evDeferredUnlock:
					held = true
				case evUnlock:
					held = false
				case evAccess:
					if !held && guarded[ev.field] {
						pass.Reportf(ev.node.Pos(), lockMarker,
							"%s.%s accesses mutex-guarded field %q without holding the lock",
							named.Obj().Name(), me.fd.Name.Name, ev.field)
					}
				}
			}
		}
	}
}

// collectLockContexts walks a method body and returns its mutex
// operations and receiver-field accesses in source order, one event
// stream per execution context: the method body proper first, then
// one per function literal at any nesting depth.  A closure may run
// on another goroutine, where locks held by the spawning method do
// not protect it, so each literal starts unlocked and tracks only its
// own lock calls.  Deferred literals are the exception: they run on
// the method's goroutine at return and stay in the enclosing context
// (their Unlocks counting as deferred).
func collectLockContexts(pass *Pass, fd *ast.FuncDecl, info *mutexInfo) [][]lockEvent {
	recvObj := receiverObject(pass, fd)
	if recvObj == nil {
		return nil
	}
	var contexts [][]lockEvent
	var collect func(body ast.Node)
	collect = func(body ast.Node) {
		idx := len(contexts)
		contexts = append(contexts, nil)
		var events []lockEvent
		var walk func(n ast.Node, inDefer bool)
		walk = func(root ast.Node, inDefer bool) {
			ast.Inspect(root, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.DeferStmt:
					if fl, ok := n.Call.Fun.(*ast.FuncLit); ok {
						walk(fl.Body, true)
					} else {
						walk(n.Call, true)
					}
					return false
				case *ast.FuncLit:
					collect(n.Body) // separate execution context
					return false
				case *ast.CallExpr:
					if kind, ok := mutexCall(pass, n, recvObj, info); ok {
						if kind == evUnlock && inDefer {
							kind = evDeferredUnlock
						}
						events = append(events, lockEvent{pos: int(n.Pos()), node: n, kind: kind})
						return false // don't re-visit the selector as an access
					}
				case *ast.SelectorExpr:
					if field, ok := recvFieldAccess(pass, n, recvObj, info); ok {
						events = append(events, lockEvent{pos: int(n.Pos()), node: n, kind: evAccess, field: field})
						return false
					}
				}
				return true
			})
		}
		walk(body, false)
		sort.SliceStable(events, func(i, j int) bool { return events[i].pos < events[j].pos })
		contexts[idx] = events
	}
	collect(fd.Body)
	return contexts
}

// receiverObject returns the types.Object of the method's receiver
// variable, or nil for anonymous receivers.
func receiverObject(pass *Pass, fd *ast.FuncDecl) types.Object {
	names := fd.Recv.List[0].Names
	if len(names) == 0 {
		return nil
	}
	return pass.TypesInfo.Defs[names[0]]
}

// mutexCall classifies recv.<mutexField>.Lock/Unlock/RLock/RUnlock
// calls.
func mutexCall(pass *Pass, call *ast.CallExpr, recv types.Object, info *mutexInfo) (lockEventKind, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return 0, false
	}
	inner, ok := sel.X.(*ast.SelectorExpr)
	if !ok {
		return 0, false
	}
	ident, ok := inner.X.(*ast.Ident)
	if !ok || pass.TypesInfo.Uses[ident] != recv {
		return 0, false
	}
	if !info.mutexFields[inner.Sel.Name] {
		return 0, false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		return evLock, true
	case "Unlock", "RUnlock":
		return evUnlock, true
	}
	return 0, false
}

// recvFieldAccess classifies recv.<field> selector expressions for
// non-mutex fields.
func recvFieldAccess(pass *Pass, sel *ast.SelectorExpr, recv types.Object, info *mutexInfo) (string, bool) {
	ident, ok := sel.X.(*ast.Ident)
	if !ok || pass.TypesInfo.Uses[ident] != recv {
		return "", false
	}
	if !info.fields[sel.Sel.Name] {
		return "", false
	}
	return sel.Sel.Name, true
}
