package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// The //aladdin: comment namespace carries two kinds of markers.
// Suppression markers (lock-ok, domain-ok, …) silence one diagnostic
// at a site; declaration markers (domain, lock-level, hotpath,
// hotpath-stop) feed facts to the analyzers.  Only directive-form
// comments count: the text after // starts exactly with "aladdin:",
// the same shape the toolchain uses for //go: directives, so prose
// mentions of a marker in documentation never act as one.

// parseDirective interprets c as an //aladdin: directive and returns
// the marker word and the remaining argument/reason text.
func parseDirective(c *ast.Comment) (word, rest string, ok bool) {
	text, found := strings.CutPrefix(c.Text, "//")
	if !found {
		return "", "", false // /* */ comments are never directives
	}
	body, found := strings.CutPrefix(text, "aladdin:")
	if !found {
		return "", "", false
	}
	word, rest, _ = strings.Cut(body, " ")
	return word, strings.TrimSpace(rest), word != ""
}

// fieldDirective is one //aladdin: directive attached to a struct
// field declaration of a package-level type — in the field's doc
// comment or trailing line comment.
type fieldDirective struct {
	structName string
	field      *ast.Field
	comment    *ast.Comment
	word       string
	args       string
}

// fieldDirectives collects every field-attached directive in the
// package, in source order.
func fieldDirectives(pass *Pass) []fieldDirective {
	var out []fieldDirective
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				for _, f := range st.Fields.List {
					for _, cg := range []*ast.CommentGroup{f.Doc, f.Comment} {
						if cg == nil {
							continue
						}
						for _, c := range cg.List {
							if word, args, ok := parseDirective(c); ok {
								out = append(out, fieldDirective{
									structName: ts.Name.Name,
									field:      f,
									comment:    c,
									word:       word,
									args:       args,
								})
							}
						}
					}
				}
			}
		}
	}
	return out
}

// funcDirective returns the args of the first //aladdin:<word>
// directive in a function declaration's doc comment, with the comment
// itself for usage tracking.
func funcDirective(fd *ast.FuncDecl, word string) (args string, comment *ast.Comment, ok bool) {
	if fd.Doc == nil {
		return "", nil, false
	}
	for _, c := range fd.Doc.List {
		if w, a, ok := parseDirective(c); ok && w == word {
			return a, c, true
		}
	}
	return "", nil, false
}
