package analysis_test

import (
	"fmt"
	"strings"
	"testing"

	"aladdin/internal/analysis"
)

// TestAuditSuppressions pins the audit's three failure classes against
// the suppressions fixture: an unknown marker word, a marker with no
// reason text, and stale suppressions/declarations — while the live,
// reasoned marker stays silent.
func TestAuditSuppressions(t *testing.T) {
	pkg, err := analysis.LoadDir(testModuleRoot(t), testdataDir(t, "suppressions"), "fixture/suppressions")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	diags, err := analysis.AuditSuppressions([]*analysis.Package{pkg}, analysis.All())
	if err != nil {
		t.Fatalf("audit: %v", err)
	}

	var got []string
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		if d.Analyzer != analysis.AuditAnalyzerName {
			t.Errorf("diagnostic analyzer = %q, want %q", d.Analyzer, analysis.AuditAnalyzerName)
		}
		got = append(got, fmt.Sprintf("%d: %s", pos.Line, d.Message))
	}

	wants := []string{
		`unknown //aladdin: marker "hotalloc-okay"`,
		"//aladdin:hotalloc-ok has no reason text",
		"stale //aladdin:hotalloc-ok: it no longer suppresses any diagnostic",
		"stale //aladdin:lock-level: no analyzer consumed it",
	}
	for _, want := range wants {
		found := false
		for _, g := range got {
			if strings.Contains(g, want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("missing audit finding containing %q; got:\n%s", want, strings.Join(got, "\n"))
		}
	}
	if len(got) != len(wants) {
		t.Errorf("audit returned %d findings, want %d:\n%s", len(got), len(wants), strings.Join(got, "\n"))
	}
}
