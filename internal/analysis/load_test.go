package analysis_test

import (
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"aladdin/internal/analysis"
)

// testModuleRoot walks up from this test file to the directory holding
// go.mod, mirroring analysistest.moduleRoot for tests that call the
// loader directly.
func testModuleRoot(t *testing.T) string {
	t.Helper()
	_, thisFile, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("cannot locate test source")
	}
	dir := filepath.Dir(thisFile)
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above load_test.go")
		}
		dir = parent
	}
}

// testdataDir resolves a fixture directory next to this test file.
func testdataDir(t *testing.T, name string) string {
	t.Helper()
	_, thisFile, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("cannot locate test source")
	}
	return filepath.Join(filepath.Dir(thisFile), "testdata", name)
}

// TestLoadDirMultiFile pins multi-file fixture loading: the lockorder
// fixture spans two files and both must land in one package with
// cross-file type information.
func TestLoadDirMultiFile(t *testing.T) {
	pkg, err := analysis.LoadDir(testModuleRoot(t), testdataDir(t, "lockorder"), "fixture/lockorder")
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	if len(pkg.Files) != 2 {
		t.Fatalf("loaded %d files, want 2", len(pkg.Files))
	}
	// Cross-file resolution: b.go's methods hang off a.go's wrapper.
	if pkg.Types.Scope().Lookup("wrapper") == nil {
		t.Fatal("type wrapper from a.go not in package scope")
	}
}

// TestLoadDirPackageMismatch pins the loader's mixed-package
// diagnosis: without it, go/parser's per-file results type-check into
// a confusing unresolved-identifier cascade.
func TestLoadDirPackageMismatch(t *testing.T) {
	_, err := analysis.LoadDir(testModuleRoot(t), testdataDir(t, "mismatch"), "fixture/mismatch")
	if err == nil {
		t.Fatal("LoadDir accepted a directory with two package clauses")
	}
	for _, needle := range []string{"b.go", `"beta"`, `"alpha"`} {
		if !strings.Contains(err.Error(), needle) {
			t.Errorf("error %q does not mention %s", err, needle)
		}
	}
}
