package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// listedPackage is the subset of `go list -json` output the loader
// consumes.
type listedPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// goList runs `go list -export -json -deps` for the patterns in dir
// and decodes the package stream.  -export makes the go tool compile
// (or reuse from the build cache) every listed package and report the
// path of its export data, which is what the type-checker imports
// against — no network, no GOPATH install tree needed.
func goList(dir string, patterns []string) ([]*listedPackage, error) {
	args := append([]string{"list", "-export", "-json", "-deps", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("analysis: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []*listedPackage
	dec := json.NewDecoder(&stdout)
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %w", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// exportImporter resolves imports from the export-data table a goList
// run produced.  "unsafe" is special-cased per the go/types contract.
type exportImporter struct {
	imp     types.ImporterFrom
	exports map[string]string
}

func newExportImporter(fset *token.FileSet, exports map[string]string) *exportImporter {
	e := &exportImporter{exports: exports}
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := e.exports[path]
		if !ok || file == "" {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(file)
	}
	e.imp = importer.ForCompiler(fset, "gc", lookup).(types.ImporterFrom)
	return e
}

func (e *exportImporter) Import(path string) (*types.Package, error) {
	return e.ImportFrom(path, "", 0)
}

func (e *exportImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return e.imp.ImportFrom(path, dir, mode)
}

// Load lists, parses and type-checks the packages matching the
// patterns (relative to dir; empty dir means the current directory).
// Only non-dependency, non-standard-library packages are returned —
// the packages the patterns named — but their whole dependency
// closure backs the type information.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	var targets []*listedPackage
	for _, p := range listed {
		if p.Error != nil {
			return nil, fmt.Errorf("analysis: go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	imp := newExportImporter(fset, exports)
	var out []*Package
	for _, t := range targets {
		pkg, err := checkPackage(fset, imp, t.ImportPath, t.Name, t.Dir, t.GoFiles)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// LoadDir parses and type-checks a single directory of Go files as
// one package with the given import path — the analysistest entry
// point for fixture packages living under testdata/ (which the go
// tool itself refuses to list).  Imports are resolved by a nested
// goList run over the fixture's import set, executed from moduleDir
// so the module context (toolchain, build cache) matches the repo's.
func LoadDir(moduleDir, dir, importPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: reading fixture dir: %w", err)
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, e.Name())
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	sort.Strings(files)

	fset := token.NewFileSet()
	var parsed []*ast.File
	importSet := make(map[string]bool)
	pkgName := ""
	for _, name := range files {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		parsed = append(parsed, f)
		// Multi-file fixtures must agree on the package clause;
		// catching it here beats the type-checker's opaque complaint.
		if pkgName != "" && f.Name.Name != pkgName {
			return nil, fmt.Errorf("analysis: fixture %s: file %s declares package %q, earlier files declare %q",
				dir, name, f.Name.Name, pkgName)
		}
		pkgName = f.Name.Name
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				return nil, err
			}
			if path != "unsafe" {
				importSet[path] = true
			}
		}
	}
	exports := make(map[string]string)
	if len(importSet) > 0 {
		var imports []string
		for p := range importSet {
			imports = append(imports, p)
		}
		sort.Strings(imports)
		listed, err := goList(moduleDir, imports)
		if err != nil {
			return nil, err
		}
		for _, p := range listed {
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	imp := newExportImporter(fset, exports)
	return typeCheck(fset, imp, importPath, pkgName, parsed)
}

// checkPackage parses a listed package's files and type-checks them.
func checkPackage(fset *token.FileSet, imp types.ImporterFrom, importPath, name, dir string, goFiles []string) (*Package, error) {
	var parsed []*ast.File
	for _, f := range goFiles {
		file, err := parser.ParseFile(fset, filepath.Join(dir, f), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		parsed = append(parsed, file)
	}
	return typeCheck(fset, imp, importPath, name, parsed)
}

func typeCheck(fset *token.FileSet, imp types.Importer, importPath, name string, files []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s (%s): %w", importPath, name, err)
	}
	return &Package{Fset: fset, Files: files, Types: tpkg, TypesInfo: info}, nil
}
