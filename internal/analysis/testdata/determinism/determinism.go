// Package determinism is the golden fixture for the determinism
// analyzer: each `want` line is a finding the analyzer must report,
// and every unannotated line proves a pattern it must stay silent on.
package determinism

import (
	"math/rand"
	"time"
)

func wallClock() time.Duration {
	start := time.Now()      // want "wall-clock read time.Now"
	return time.Since(start) // want "wall-clock read time.Since"
}

func annotatedClock() time.Time {
	return time.Now() //aladdin:nondeterministic-ok fixture latency probe
}

func globalRand() int {
	return rand.Intn(6) // want "global math/rand draw rand.Intn"
}

func seededRand() int {
	r := rand.New(rand.NewSource(1))
	return r.Intn(6) // methods on a seeded stream are fine
}

func barePanic() {
	panic("boom") // want "bare panic"
}

//aladdin:nondeterministic-ok Must-style constructor; inputs are static
func annotatedPanic() {
	panic("fine")
}

func orderedAppend(m map[string]int) []string {
	var out []string
	for k := range m { // want "append in map order"
		out = append(out, k)
	}
	return out
}

func orderedBreak(m map[string]int) bool {
	for range m { // want "early break"
		break
	}
	return false
}

func orderedReturn(m map[string]int) string {
	for k := range m { // want "early return"
		return k
	}
	return ""
}

func commutative(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v // integer accumulation commutes
	}
	return total
}

func counters(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v // map writes are order-independent
	}
	return out
}

func floatAccum(m map[string]float64) float64 {
	sum := 0.0
	for _, v := range m { // want "float accumulation"
		sum += v
	}
	return sum
}
