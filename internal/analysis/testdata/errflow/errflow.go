// Package errflow is the golden fixture for the errflow analyzer:
// dropping a module-internal error is a finding; handling it, calling
// error-free functions, or dropping a stdlib error is not.
package errflow

import (
	"errors"
	"fmt"
)

func mutate() error { return errors.New("boom") }

func pair() (int, error) { return 0, errors.New("boom") }

func value() int { return 1 }

func discard() {
	mutate() // want "error from mutate result discarded"
}

func blank() {
	_ = mutate() // want "error from mutate assigned to blank"
}

func blankPair() {
	n, _ := pair() // want "error from pair assigned to blank"
	_ = n
}

func deferred() {
	defer mutate() // want "discarded by defer"
}

func spawned() {
	go mutate() // want "discarded by go statement"
}

func handled() error {
	if err := mutate(); err != nil {
		return err
	}
	n, err := pair()
	if err != nil {
		return err
	}
	_ = n
	return nil
}

func pure() int {
	return value() // no error result: nothing to drop
}

func stdlib() {
	fmt.Println("stdlib errors are another analyzer's problem")
}

func deliberate() {
	mutate() //aladdin:errcheck-ok fixture: effect is best-effort
}
