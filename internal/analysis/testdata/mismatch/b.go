// Package beta mismatches a.go's package alpha on purpose; see a.go.
package beta

// B keeps the file non-empty.
const B = 2
