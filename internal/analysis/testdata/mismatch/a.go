// Package alpha is half of the load-error fixture: b.go in this
// directory deliberately declares a different package so LoadDir's
// mixed-package check has something to reject.
package alpha

// A keeps the file non-empty.
const A = 1
