// Package lockorder is the golden fixture for the lockorder analyzer.
// It mirrors the sharded scheduler core's hierarchy: an outermost
// batch lock (level 10), per-shard locks (level 20), and an innermost
// wrapper bookkeeping lock (level 30).  Lower levels are outer locks
// and must be acquired first.
package lockorder

import (
	"errors"
	"sync"
)

var errClosed = errors.New("closed")

type wrapper struct {
	placeMu sync.Mutex //aladdin:lock-level 10 outermost: serializes batch placement
	mu      sync.Mutex //aladdin:lock-level 30 innermost: wrapper bookkeeping tables
	shards  []*shard
	epoch   int
}

type shard struct {
	mu sync.RWMutex //aladdin:lock-level 20 per-shard session lock
	n  int
}

// Place follows the declared order 10 → 20 → 30: clean.
func (w *wrapper) Place() {
	w.placeMu.Lock()
	defer w.placeMu.Unlock()
	for _, sh := range w.shards {
		sh.mu.Lock()
		sh.n++
		w.mu.Lock()
		w.epoch++
		w.mu.Unlock()
		sh.mu.Unlock()
	}
}

// Inverted takes the per-shard lock while already holding the
// innermost wrapper lock.
func (w *wrapper) Inverted(sh *shard) {
	w.mu.Lock()
	sh.mu.Lock() // want `acquiring sh.mu .lock-level 20. while holding w.mu .lock-level 30.`
	sh.mu.Unlock()
	w.mu.Unlock()
}

// Double locks the same mutex twice: self-deadlock.
func (w *wrapper) Double() {
	w.mu.Lock()
	w.mu.Lock() // want `w.mu is already held .locked at .*: double lock`
	w.mu.Unlock()
	w.mu.Unlock()
}

// TwoShards holds two instances of the same per-shard lock at once;
// instances of one field have no relative order.
func (w *wrapper) TwoShards(a, b *shard) {
	a.mu.Lock()
	b.mu.Lock() // want `two instances of shard.mu held at once`
	b.mu.Unlock()
	a.mu.Unlock()
}

// Leak returns on the error path without unlocking.
func (w *wrapper) Leak(fail bool) error {
	w.mu.Lock()
	if fail {
		return errClosed // want `return while w.mu is still locked`
	}
	w.mu.Unlock()
	return nil
}

// forgetUnlock never releases at all.
func (w *wrapper) forgetUnlock() {
	w.mu.Lock() // want `locked here but never unlocked before the function exits`
	w.epoch++
}

// SuppressedInversion documents a deliberate exception.
func (w *wrapper) SuppressedInversion(sh *shard) {
	w.mu.Lock()
	//aladdin:lockorder-ok fixture: deliberate inversion under test
	sh.mu.Lock()
	sh.mu.Unlock()
	w.mu.Unlock()
}

// Spawn hands a closure to another goroutine: it is a separate lock
// context, so the spawner's holdings do not order it and taking the
// shard lock inside is clean.
func (w *wrapper) Spawn(sh *shard) {
	w.mu.Lock()
	go func() {
		sh.mu.Lock()
		sh.n++
		sh.mu.Unlock()
	}()
	w.mu.Unlock()
}

type peers struct {
	left  sync.Mutex //aladdin:lock-level 40 left peer
	right sync.Mutex //aladdin:lock-level 40 right peer
}

// Both holds two same-level locks at once: peers have no declared
// order.
func (p *peers) Both() {
	p.left.Lock()
	p.right.Lock() // want `both at lock-level 40: peer locks have no declared order`
	p.right.Unlock()
	p.left.Unlock()
}
