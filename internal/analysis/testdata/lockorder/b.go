// Cross-file, cross-function cases: summaries built in this file must
// propagate to call sites in a.go's structs and vice versa, proving
// multi-file fixture packages work end to end.
package lockorder

import "sync"

// reenter acquires the outermost batch lock; harmless on its own.
func (w *wrapper) reenter() {
	w.placeMu.Lock()
	w.epoch++
	w.placeMu.Unlock()
}

// viaMiddle adds a hop so the acquired set must propagate
// transitively.
func (w *wrapper) viaMiddle() {
	w.reenter()
}

// CallInversion holds the innermost lock and calls a helper that
// acquires the outermost one.
func (w *wrapper) CallInversion() {
	w.mu.Lock()
	w.reenter() // want `may acquire wrapper.placeMu .lock-level 10. while holding w.mu .lock-level 30.`
	w.mu.Unlock()
}

// TransitiveInversion does the same through two hops.
func (w *wrapper) TransitiveInversion() {
	w.mu.Lock()
	w.viaMiddle() // want `may acquire wrapper.placeMu .lock-level 10. while holding w.mu .lock-level 30.`
	w.mu.Unlock()
}

// CallDouble calls a helper that re-locks a mutex the caller already
// holds: self-deadlock through the call graph.
func (w *wrapper) CallDouble() {
	w.placeMu.Lock()
	w.reenter() // want `may lock wrapper.placeMu, which is already held`
	w.placeMu.Unlock()
}

// srv mirrors internal/server's RWMutex-with-unlock-helper shape.
type srv struct {
	mu    sync.RWMutex //aladdin:lock-level 50 session lock
	dirty bool
	gen   int
}

// unlockAfterWrite releases the write lock on behalf of its caller.
func (s *srv) unlockAfterWrite() {
	s.dirty = true
	s.mu.Unlock()
}

// Handle releases through the deferred helper: no leak at return.
func (s *srv) Handle() {
	s.mu.Lock()
	defer s.unlockAfterWrite()
	s.gen++
}

// Snapshot takes the read lock with a deferred release: clean.
func (s *srv) Snapshot() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.gen
}
