// Package ordinalflow is the golden fixture for the ordinalflow
// analyzer.  The router mirrors the sharded core's translation
// tables: global machine ids, per-shard machine ordinals, shard
// indices, container ordinals, and app refs are all plain integers,
// and only the //aladdin:domain declarations tell them apart.
package ordinalflow

type MachineID int32

type router struct {
	ownerOf  []int32       //aladdin:domain global -> shard owning shard of each global machine id
	localOf  []MachineID   //aladdin:domain global -> machine global machine id to its shard-local id
	globalOf [][]MachineID //aladdin:domain shard, machine -> global per-shard local-to-global table
	asg      []MachineID   //aladdin:domain ord -> machine container ordinal to assigned machine
	routeOf  []int32       //aladdin:domain ord -> shard container ordinal to first-try shard
}

type container struct {
	Ord int32 //aladdin:domain ord container ordinal in arrival order
}

type slot struct {
	home int32 //aladdin:domain shard the replica's home shard
}

// assignedOrd translates a container ordinal to its machine ordinal.
//
//aladdin:domain ord -> machine
func (r *router) assignedOrd(ord int32) MachineID {
	return r.asg[ord]
}

// roundTrip follows the clean translation chain global → shard/local
// → global: no findings.
//
//aladdin:domain global -> global
func (r *router) roundTrip(gid MachineID) MachineID {
	k := r.ownerOf[gid]
	lm := r.localOf[gid]
	return r.globalOf[k][lm]
}

// crossIndex feeds a shard-local id back into a global-indexed table.
//
//aladdin:domain global -> machine
func (r *router) crossIndex(gid MachineID) MachineID {
	lm := r.localOf[gid]
	return r.localOf[lm] // want `indexing r.localOf with a machine value; its index space is global ids`
}

// sameMachine compares ids from two different spaces.
//
//aladdin:domain ord, global -> _
func (r *router) sameMachine(ord int32, gid MachineID) bool {
	lm := r.asg[ord]
	return lm == gid // want `comparing a machine value with a global value`
}

// setHome stores into an annotated scalar field.
//
//aladdin:domain _, ord -> _
func (r *router) setHome(s *slot, ord int32) {
	s.home = r.routeOf[ord] // ok: routeOf yields shard ids
	s.home = ord            // want `assigning ord value to s.home, declared to hold shard ids`
}

// store writes through an annotated table's element domain.
//
//aladdin:domain global, shard -> _
func (r *router) store(gid MachineID, k int32) {
	r.ownerOf[gid] = k          // ok: elem domain is shard
	r.ownerOf[gid] = int32(gid) // want `storing global value into r.ownerOf, declared to hold shard ids`
}

// useMachine consumes shard-local machine ordinals.
//
//aladdin:domain machine -> _
func (r *router) useMachine(lm MachineID) { _ = lm }

// callMismatch hands an ordinal to a machine-ordinal parameter.
//
//aladdin:domain ord -> _
func (r *router) callMismatch(ord int32) {
	r.useMachine(r.asg[ord])     // ok
	r.useMachine(MachineID(ord)) // want `passing ord value to useMachine, whose parameter 1 takes machine ids`
}

// wrongReturn declares a global result but returns a machine ordinal.
//
//aladdin:domain ord -> global
func (r *router) wrongReturn(ord int32) MachineID {
	return r.asg[ord] // want `returning machine value from wrongReturn, declared to return global ids`
}

// sweep exercises range-loop domain propagation.
func (r *router) sweep() MachineID {
	var total MachineID
	for ord := range r.asg {
		total += r.asg[ord] // ok: the range key is an ord id
	}
	for ord, lm := range r.asg {
		_ = lm
		total += r.localOf[ord] // want `indexing r.localOf with a ord value; its index space is global ids`
	}
	return total
}

// localTable binds a domain to a local variable at its definition.
//
//aladdin:domain ord, global -> _
func (r *router) localTable(ord int32, gid MachineID) int32 {
	refs := r.routeOf //aladdin:domain ord -> shard local view of the routing table
	if gid > 0 {
		return refs[gid] // want `indexing refs with a global value; its index space is ord ids`
	}
	return refs[ord] // ok
}

// byContainer reads the annotated scalar field through a pointer.
func (r *router) byContainer(c *container) MachineID {
	return r.asg[c.Ord] // ok
}

// confused indexes a global table with a container ordinal.
func (r *router) confused(c *container) MachineID {
	return r.localOf[c.Ord] // want `indexing r.localOf with a ord value; its index space is global ids`
}

// suppressed documents a deliberate cross-domain probe.
//
//aladdin:domain global -> _
func (r *router) suppressed(gid MachineID) {
	lm := r.localOf[gid]
	//aladdin:domain-ok fixture: deliberate cross-domain probe under test
	_ = r.localOf[lm]
}
