// Package intcap is the golden fixture for the intcap analyzer:
// float arithmetic is banned in capacity math, integer math and
// annotated reporting ratios pass.
package intcap

func badAvg(a, b int64) float64 {
	return (float64(a) + float64(b)) / 2 // want "floating-point"
}

func intMath(a, b int64) int64 {
	return (a + b) / 2 // exact integer units
}

// annotatedRatio is a reporting-only ratio.
//
//aladdin:float-ok reporting metric, not capacity accounting
func annotatedRatio(num, den int64) float64 {
	return float64(num) / float64(den)
}

func accumulate(xs []float64) float64 {
	var sum float64
	for _, x := range xs {
		sum += x // want "floating-point"
	}
	return sum
}

func conversionOnly(a int64) float64 {
	return float64(a) // a bare conversion is not arithmetic
}
