// Package lockcheck is the golden fixture for the lockcheck analyzer.
// Counter's n field is inferred guarded (Add touches it under the
// lock), so exported methods must hold mu around every n access; name
// is never touched under the lock and stays unguarded.
package lockcheck

import "sync"

type Counter struct {
	mu   sync.Mutex
	n    int
	name string
}

func (c *Counter) Add(delta int) {
	c.mu.Lock()
	c.n += delta
	c.mu.Unlock()
}

func (c *Counter) Value() int {
	return c.n // want "accesses mutex-guarded field"
}

func (c *Counter) SafeValue() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// Name reads a field configured once at construction; it is never
// accessed under the lock, so lock-free reads are legitimate.
func (c *Counter) Name() string {
	return c.name
}

// value is unexported: by convention it runs with the lock held.
func (c *Counter) value() int {
	return c.n
}

// Racy is a deliberate lock-free read for a metrics path.
//
//aladdin:lock-ok approximate metric; torn reads acceptable
func (c *Counter) Racy() int {
	return c.n
}
