// Package lockcheck is the golden fixture for the lockcheck analyzer.
// Counter's n field is inferred guarded (Add touches it under the
// lock), so exported methods must hold mu around every n access; name
// is never touched under the lock and stays unguarded.
package lockcheck

import "sync"

type Counter struct {
	mu   sync.Mutex
	n    int
	name string
}

func (c *Counter) Add(delta int) {
	c.mu.Lock()
	c.n += delta
	c.mu.Unlock()
}

func (c *Counter) Value() int {
	return c.n // want "accesses mutex-guarded field"
}

func (c *Counter) SafeValue() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// Name reads a field configured once at construction; it is never
// accessed under the lock, so lock-free reads are legitimate.
func (c *Counter) Name() string {
	return c.name
}

// value is unexported: by convention it runs with the lock held.
func (c *Counter) value() int {
	return c.n
}

// Racy is a deliberate lock-free read for a metrics path.
//
//aladdin:lock-ok approximate metric; torn reads acceptable
func (c *Counter) Racy() int {
	return c.n
}

// Gauge exercises the two analyzer extensions: the field-level
// //aladdin:lock-ok marker exempts cfg from guarded inference even
// though Set touches it under the lock, and function literals are
// checked as separate lock contexts.
type Gauge struct {
	mu  sync.Mutex
	v   int
	cfg string //aladdin:lock-ok immutable after construction
}

func (g *Gauge) Set(v int) {
	g.mu.Lock()
	if g.cfg != "" {
		g.v = v
	}
	g.mu.Unlock()
}

// Config reads an exempt field lock-free: no diagnostic, even though
// cfg is accessed inside Set's critical section.
func (g *Gauge) Config() string {
	return g.cfg
}

// Fork hands a closure to a runner while holding the lock.  The
// closure may run on another goroutine the method's lock does not
// protect, so it does not inherit the held state and its v access is
// flagged.
func (g *Gauge) Fork(run func(func())) {
	g.mu.Lock()
	defer g.mu.Unlock()
	run(func() {
		_ = g.v // want "accesses mutex-guarded field"
	})
}

// ForkLocked's closure establishes its own critical section — each
// literal tracks its own lock calls.
func (g *Gauge) ForkLocked(run func(func())) {
	run(func() {
		g.mu.Lock()
		defer g.mu.Unlock()
		_ = g.v
	})
}

// Reset's deferred literal runs on the method's own goroutine at
// return, still inside the critical section — not a separate context.
func (g *Gauge) Reset() {
	g.mu.Lock()
	defer func() {
		_ = g.v
		g.mu.Unlock()
	}()
	g.v = 0
}
