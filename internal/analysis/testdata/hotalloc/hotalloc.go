// Package hotalloc is the golden fixture for the hotalloc analyzer:
// Place is the //aladdin:hotpath root, everything it reaches is hot
// unless fenced by //aladdin:hotpath-stop, and cold error branches are
// exempt.
package hotalloc

import (
	"errors"
	"fmt"
)

type point struct{ x, y int }

type sched struct {
	buf   []int
	names []string
}

// Place is the steady-state placement entry point.
//
//aladdin:hotpath fixture root: steady state must stay allocation-free
func (s *sched) Place(n int) error {
	if n < 0 {
		// Cold: failure branches may build rich errors.
		return fmt.Errorf("negative n: %d", n)
	}
	s.buf = s.buf[:0]
	for i := 0; i < n; i++ {
		s.buf = append(s.buf, i) // arena reuse: allowed
	}
	s.helper(n)
	s.convert(s.names[0], nil)
	s.lazyInit(n)
	if err := s.validate(n); err != nil {
		return err
	}
	s.rescue(n)
	return nil
}

// helper is reachable from the root, so it is hot.
func (s *sched) helper(n int) {
	m := make([]int, n) // want `make allocates on the hot path`
	_ = m
	cb := func() int { return n } // want `function literal captures n`
	_ = cb()
	dst := append(s.buf, n) // want `append into a new destination`
	_ = dst
	box(n) // want `argument boxes int into interface parameter`
}

// convert collects the conversion/literal/boxing shapes.
func (s *sched) convert(name string, b []byte) {
	_ = string(b)            // want `conversion to string allocates a copy`
	_ = name + "!"           // want `string concatenation allocates`
	_ = fmt.Sprintf("%d", 1) // want `fmt.Sprintf allocates`
	p := &point{x: 1, y: 2}  // want `&composite literal escapes to the heap`
	_ = box(p)               // pointer-shaped into any: no allocation, no finding
	m := map[int]int{1: 2}   // want `map literal allocates`
	_ = m
	sl := []int{1, 2} // want `slice literal allocates`
	_ = sl
	q := new(point) // want `new allocates`
	_ = q
	go s.helper(1) // want `go statement allocates`
}

// lazyInit documents a deliberate one-time allocation.
func (s *sched) lazyInit(n int) {
	if s.names == nil {
		s.names = make([]string, n) //aladdin:hotalloc-ok fixture: one-time lazy init, steady state reuses
	}
}

// validate builds its error message on the cold failure branch only.
func (s *sched) validate(n int) error {
	if n > 1000 {
		msg := fmt.Sprintf("too big: %d", n) // cold block: no finding
		return errors.New(msg)
	}
	return nil
}

// rescue is fenced off: its allocations are deliberate and outside
// the steady-state contract.
//
//aladdin:hotpath-stop fixture: rescue path outside the steady-state gate
func (s *sched) rescue(n int) {
	spill := make([]int, n)
	_ = fmt.Sprint(spill)
}

// box's any parameter forces its concrete arguments onto the heap.
func box(v any) any { return v }

// coldStart is not reachable from any hotpath root: not checked.
func (s *sched) coldStart(n int) {
	_ = make([]int, n)
	_ = fmt.Sprint(n)
}
