// Package suppressions is the fixture for the -audit-suppressions
// mode: one live marker (consumed, reasoned — silent), one bare
// marker, one stale suppression, one stale declaration, and one typo.
// The expectations live in TestAuditSuppressions, not in // want
// comments: the audit is a mode over all analyzers, not an Analyzer.
package suppressions

import "fmt"

type w struct {
	buf []int

	// The level below never binds: lvl is not a mutex, so no analyzer
	// consumes the declaration and the audit calls it stale.
	lvl int //aladdin:lock-level 10 not actually a mutex field
}

// Hot is the hotalloc root whose findings the markers below suppress.
//
//aladdin:hotpath fixture root: steady state must stay clean
func (s *w) Hot(n int) {
	_ = fmt.Sprint(n)  //aladdin:hotalloc-ok live marker: deliberate formatting, keeps a reason
	_ = make([]int, n) //aladdin:hotalloc-ok
	s.cold(n)
}

// cold is cut off below, so the marker inside suppresses nothing.
//
//aladdin:hotpath-stop fixture fence so cold's marker goes stale
func (s *w) cold(n int) {
	s.buf = s.buf[:0] //aladdin:hotalloc-ok stale: no diagnostic fires on this line
	_ = n
}

//aladdin:hotalloc-okay typo'd marker word
func unknown() {}
