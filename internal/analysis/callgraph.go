package analysis

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/types"
	"sort"
)

// This file holds the call-graph and declaration-lookup substrate
// shared by the inter-procedural analyzers (lockorder, hotalloc).
// Resolution is static and intra-package: a call site maps to a callee
// only when the callee is a named function or method declared in the
// package under analysis.  Calls through function values, interfaces,
// and other packages resolve to nil and the analyzers treat them as
// opaque — conservative for reachability walks rooted inside the
// package.

// callGraph indexes one package's function declarations and their
// static intra-package call edges.
type callGraph struct {
	// decls maps every declared function/method object to its AST.
	decls map[*types.Func]*ast.FuncDecl
	// callees lists the distinct intra-package functions each function
	// may call, in source order of first call site.  Calls made inside
	// function literals count toward the enclosing declaration: the
	// literal's body runs with (or on behalf of) the enclosing call,
	// so for reachability purposes its callees are the function's.
	callees map[*types.Func][]*types.Func
}

// buildCallGraph walks the package once and resolves every static call
// edge between its declared functions.
func buildCallGraph(pass *Pass) *callGraph {
	g := &callGraph{
		decls:   make(map[*types.Func]*ast.FuncDecl),
		callees: make(map[*types.Func][]*types.Func),
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			g.decls[obj] = fd
		}
	}
	for obj, fd := range g.decls {
		seen := make(map[*types.Func]bool)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := staticCallee(pass, call)
			if callee == nil || seen[callee] {
				return true
			}
			if _, declared := g.decls[callee]; !declared {
				return true
			}
			seen[callee] = true
			g.callees[obj] = append(g.callees[obj], callee)
			return true
		})
	}
	return g
}

// staticCallee resolves a call expression to the *types.Func it
// statically invokes: a plain function call f(...) or a method call
// x.m(...).  Function-value and builtin calls return nil.
func staticCallee(pass *Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := pass.TypesInfo.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		// Selections[] covers method calls; Uses covers qualified
		// package-level functions (pkg.F).
		if sel, ok := pass.TypesInfo.Selections[fun]; ok {
			fn, _ := sel.Obj().(*types.Func)
			return fn
		}
		fn, _ := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// reachable returns every declared function reachable from the roots
// along static call edges, mapped to the root that first reaches it
// (breadth-first, roots in the given order).  Functions in stop are
// neither visited nor expanded.
func (g *callGraph) reachable(roots []*types.Func, stop map[*types.Func]bool) map[*types.Func]*types.Func {
	out := make(map[*types.Func]*types.Func)
	var queue []*types.Func
	for _, r := range roots {
		if stop[r] || out[r] != nil {
			continue
		}
		out[r] = r
		queue = append(queue, r)
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		for _, callee := range g.callees[fn] {
			if stop[callee] {
				continue
			}
			if _, ok := out[callee]; ok {
				continue
			}
			out[callee] = out[fn]
			queue = append(queue, callee)
		}
	}
	return out
}

// sortedFuncs returns the graph's functions ordered by source
// position, for deterministic iteration.
func (g *callGraph) sortedFuncs() []*types.Func {
	out := make([]*types.Func, 0, len(g.decls))
	for fn := range g.decls {
		out = append(out, fn)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos() < out[j].Pos() })
	return out
}

// funcDisplayName renders a function for diagnostics: F for
// package-level functions, (*T).M or T.M for methods.
func funcDisplayName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return fn.Name()
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		if named, ok := p.Elem().(*types.Named); ok {
			return "(*" + named.Obj().Name() + ")." + fn.Name()
		}
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name() + "." + fn.Name()
	}
	return fn.Name()
}

// exprString renders an expression compactly for diagnostics and for
// syntactic identity of lock receivers (e.g. "s.shards[k]").
func exprString(pass *Pass, e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, pass.Fset, e); err != nil {
		return "?"
	}
	return buf.String()
}
