package analysis_test

import (
	"path/filepath"
	"testing"

	"aladdin/internal/analysis"
	"aladdin/internal/analysis/analysistest"
)

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "determinism"), analysis.Determinism)
}

func TestLockcheck(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "lockcheck"), analysis.Lockcheck)
}

func TestIntcap(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "intcap"), analysis.Intcap)
}

func TestErrflow(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "errflow"), analysis.Errflow)
}

func TestOrdinalflow(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "ordinalflow"), analysis.Ordinalflow)
}

// TestLockorder doubles as the multi-file fixture regression test: the
// package spans a.go and b.go and the summaries must cross the file
// boundary in both directions.
func TestLockorder(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "lockorder"), analysis.Lockorder)
}

func TestHotalloc(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "hotalloc"), analysis.Hotalloc)
}

// TestAllRegistered pins the multichecker's analyzer set: a new
// analyzer must be registered in All() to reach aladdin-vet and CI.
func TestAllRegistered(t *testing.T) {
	want := map[string]bool{
		"determinism": true,
		"errflow":     true,
		"hotalloc":    true,
		"intcap":      true,
		"lockcheck":   true,
		"lockorder":   true,
		"ordinalflow": true,
	}
	got := analysis.All()
	if len(got) != len(want) {
		t.Fatalf("All() returned %d analyzers, want %d", len(got), len(want))
	}
	for _, a := range got {
		if !want[a.Name] {
			t.Errorf("unexpected analyzer %q in All()", a.Name)
		}
		if a.Doc == "" {
			t.Errorf("analyzer %q has no Doc", a.Name)
		}
	}
}
