package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// floatMarker is the intcap analyzer's suppression marker.
const floatMarker = "float-ok"

// intcapPkgs are the packages whose arithmetic feeds capacities,
// demands and the tournament-tree aggregates.  All of that math is
// exact int64 (milli-cores, MiB): one float rounding slip in an
// aggregate would make the index's admission answers drift from the
// machines' true residuals and corrupt placements silently.
var intcapPkgs = []string{
	"aladdin/internal/resource",
	"aladdin/internal/core",
}

// Intcap bans floating-point arithmetic in resource/capacity math:
// any +,-,*,/ binary expression or compound assignment whose operands
// are floats, inside the capacity-math packages.  Reporting-only
// ratios (utilisation percentages, dominant shares) are legitimate
// float consumers; annotate those functions //aladdin:float-ok.
var Intcap = &Analyzer{
	Name: "intcap",
	Doc: "bans floating-point arithmetic in resource/capacity math where rounding would corrupt integer aggregates; " +
		"suppress reporting-only ratio code with //aladdin:" + floatMarker,
	Run: runIntcap,
}

func runIntcap(pass *Pass) (any, error) {
	if !inScope(pass.Pkg.Path(), intcapPkgs) {
		return nil, nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				switch n.Op {
				case token.ADD, token.SUB, token.MUL, token.QUO:
					if isFloat(pass, n.X) || isFloat(pass, n.Y) {
						pass.Reportf(n.Pos(), floatMarker,
							"floating-point %s in capacity math: use exact integer units (milli-cores, MiB)", n.Op)
						return false // one report per expression tree
					}
				}
			case *ast.AssignStmt:
				switch n.Tok {
				case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
					for _, lhs := range n.Lhs {
						if isFloat(pass, lhs) {
							pass.Reportf(n.Pos(), floatMarker,
								"floating-point %s in capacity math: use exact integer units (milli-cores, MiB)", n.Tok)
							break
						}
					}
				}
			}
			return true
		})
	}
	return nil, nil
}

// isFloat reports whether the expression's type is a floating-point
// basic type (or a named type whose underlying is one).
func isFloat(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
