package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
)

// lockorderMarker suppresses one lockorder diagnostic at a site.
const lockorderMarker = "lockorder-ok"

// lockLevelWord is the declaration directive naming a mutex field's
// rank in the package's lock order.
const lockLevelWord = "lock-level"

// lockorderScope limits the analyzer to the packages whose locks form
// a declared hierarchy: the sharded scheduler core
// (placeMu → coreShard.mu → ShardedSession.mu), the HTTP server's
// session RWMutex, and the simulator.  Fixture packages load outside
// the module path and are always in scope.
var lockorderScope = []string{
	"aladdin/internal/core",
	"aladdin/internal/server",
	"aladdin/internal/sim",
}

// Lockorder enforces the declared mutex partial order.  Mutex fields
// rank themselves with a declaration directive on the field:
//
//	placeMu sync.Mutex //aladdin:lock-level 10 serializes Place/Consolidate
//
// Lower levels are outer locks and must be acquired first.  The
// analyzer builds a per-function summary (locks acquired, locks
// released on behalf of callers, locks still held at exit), propagates
// the acquired set transitively over the intra-package call graph, and
// reports: an acquisition (direct or via a call) of a level ≤ any held
// level; a second acquisition of a mutex already held (double lock /
// self-deadlock, including via a callee); and a return reached while a
// lock is held with no deferred or later unlock — the classic missing
// unlock on an early error path.  Function literals are separate lock
// contexts (they may run on other goroutines), except deferred
// literals, which stay in the enclosing context.  Unlock-helper
// functions (the server's unlockAfterWrite) are understood through the
// released-set summary, deferred or not.
var Lockorder = &Analyzer{
	Name: "lockorder",
	Doc: "flags mutex acquisitions violating the //aladdin:lock-level order, double locks, and locks held at return; " +
		"suppress deliberate exceptions with //aladdin:" + lockorderMarker,
	Run: runLockorder,
}

// loEventKind discriminates the per-function event stream.
type loEventKind int

const (
	loAcquire loEventKind = iota
	loRelease
	loCall
	loReturn
)

// loEvent is one lock operation, intra-package call, or return inside
// a lock context, in source order.
type loEvent struct {
	pos      token.Pos
	kind     loEventKind
	field    *types.Var // loAcquire/loRelease: the mutex field
	key      string     // syntactic receiver identity, e.g. "s.shards[k].mu"
	read     bool       // RLock/RUnlock
	deferred bool
	callee   *types.Func // loCall
}

// heldLock is one entry of the simulated held-lock stack.
type heldLock struct {
	field           *types.Var
	key             string
	pos             token.Pos // acquisition site
	read            bool
	deferredRelease bool
}

// lockSummary is one function's observable locking behaviour.
type lockSummary struct {
	// acquires maps each mutex field this function may lock — itself
	// or transitively through callees — to a representative site.
	acquires map[*types.Var]token.Pos
	// releases lists mutex fields unlocked without a matching acquire
	// in the function body: the function releases a caller's lock.
	releases map[*types.Var]bool
	// holds lists mutex fields still held when the function exits.
	holds map[*types.Var]bool
}

// lockorderState is the per-package analysis state.
type lockorderState struct {
	pass      *Pass
	graph     *callGraph
	levels    map[*types.Var]int    // declared lock levels
	owner     map[*types.Var]string // struct name owning each mutex field
	summaries map[*types.Func]*lockSummary
	contexts  map[*types.Func][][]loEvent
}

func runLockorder(pass *Pass) (any, error) {
	if !inScope(pass.Pkg.Path(), lockorderScope) {
		return nil, nil
	}
	st := &lockorderState{
		pass:      pass,
		graph:     buildCallGraph(pass),
		levels:    make(map[*types.Var]int),
		owner:     make(map[*types.Var]string),
		summaries: make(map[*types.Func]*lockSummary),
		contexts:  make(map[*types.Func][][]loEvent),
	}
	st.collectLevels()
	funcs := st.graph.sortedFuncs()
	for _, fn := range funcs {
		st.contexts[fn] = st.collectEvents(st.graph.decls[fn])
	}
	// Two summary rounds: the first sees no callee effects, the second
	// folds in helper releases (defer s.unlockAfterWrite()) so such
	// functions do not read as holding their lock at exit.
	for round := 0; round < 2; round++ {
		prev := st.summaries
		st.summaries = make(map[*types.Func]*lockSummary, len(funcs))
		for _, fn := range funcs {
			st.summaries[fn] = st.directSummary(st.contexts[fn], prev)
		}
	}
	st.propagateAcquires(funcs)
	for _, fn := range funcs {
		for _, events := range st.contexts[fn] {
			st.checkContext(events)
		}
	}
	return nil, nil
}

// collectLevels reads //aladdin:lock-level N directives off mutex
// struct fields and records every mutex field's owning struct name for
// diagnostics.
func (st *lockorderState) collectLevels() {
	for _, d := range fieldDirectives(st.pass) {
		if d.word != lockLevelWord {
			continue
		}
		for _, name := range d.field.Names {
			fv, ok := st.pass.TypesInfo.Defs[name].(*types.Var)
			if !ok || !isSyncMutex(fv.Type()) {
				continue // audit reports the stale directive
			}
			levelStr, _, _ := cutWord(d.args)
			level, err := strconv.Atoi(levelStr)
			if err != nil {
				st.pass.Reportf(d.comment.Pos(), "",
					"malformed //aladdin:%s directive: first argument must be an integer level", lockLevelWord)
				continue
			}
			st.levels[fv] = level
			st.pass.noteMarkerUse(d.comment)
		}
	}
	// Owning struct names, for rendering summary-derived diagnostics.
	for _, name := range st.pass.Pkg.Scope().Names() {
		tn, ok := st.pass.Pkg.Scope().Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		s, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < s.NumFields(); i++ {
			if f := s.Field(i); isSyncMutex(f.Type()) {
				st.owner[f] = name
			}
		}
	}
}

// cutWord splits s at the first space.
func cutWord(s string) (first, rest string, ok bool) {
	for i := 0; i < len(s); i++ {
		if s[i] == ' ' || s[i] == '\t' {
			return s[:i], s[i+1:], true
		}
	}
	return s, "", false
}

// fieldDisplay renders a mutex field for diagnostics: Struct.field.
func (st *lockorderState) fieldDisplay(f *types.Var) string {
	if owner := st.owner[f]; owner != "" {
		return owner + "." + f.Name()
	}
	return f.Name()
}

// mutexFieldOp classifies expr.field.Lock/RLock/Unlock/RUnlock calls
// on any sync.Mutex/RWMutex struct field and returns the field, the
// syntactic identity of the lock expression, and whether it is an
// acquire and/or a reader op.
func mutexFieldOp(pass *Pass, call *ast.CallExpr) (field *types.Var, key string, acquire, read, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return nil, "", false, false, false
	}
	var acq, rd bool
	switch sel.Sel.Name {
	case "Lock":
		acq = true
	case "RLock":
		acq, rd = true, true
	case "Unlock":
	case "RUnlock":
		rd = true
	default:
		return nil, "", false, false, false
	}
	inner, isSel := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !isSel {
		return nil, "", false, false, false
	}
	fv, isVar := pass.TypesInfo.Uses[inner.Sel].(*types.Var)
	if !isVar || !fv.IsField() || !isSyncMutex(fv.Type()) {
		return nil, "", false, false, false
	}
	return fv, exprString(pass, inner), acq, rd, true
}

// collectEvents walks one function declaration and returns its lock
// contexts: the body proper first, then one per non-deferred function
// literal at any depth, each an event stream in source order.
func (st *lockorderState) collectEvents(fd *ast.FuncDecl) [][]loEvent {
	var contexts [][]loEvent
	var collect func(body ast.Node)
	collect = func(body ast.Node) {
		idx := len(contexts)
		contexts = append(contexts, nil)
		var events []loEvent
		var walk func(n ast.Node, inDefer bool)
		walk = func(root ast.Node, inDefer bool) {
			ast.Inspect(root, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.DeferStmt:
					if fl, isLit := n.Call.Fun.(*ast.FuncLit); isLit {
						walk(fl.Body, true)
					} else {
						walk(n.Call, true)
					}
					return false
				case *ast.FuncLit:
					collect(n.Body) // separate execution context
					return false
				case *ast.ReturnStmt:
					// Returns inside deferred literals leave the
					// literal, not the enclosing function.
					if !inDefer {
						events = append(events, loEvent{pos: n.Pos(), kind: loReturn})
					}
				case *ast.CallExpr:
					if field, key, acquire, read, isOp := mutexFieldOp(st.pass, n); isOp {
						kind := loRelease
						if acquire {
							kind = loAcquire
						}
						events = append(events, loEvent{
							pos: n.Pos(), kind: kind, field: field, key: key,
							read: read, deferred: inDefer,
						})
						return false
					}
					if callee := staticCallee(st.pass, n); callee != nil {
						if _, declared := st.graph.decls[callee]; declared {
							events = append(events, loEvent{
								pos: n.Pos(), kind: loCall, callee: callee, deferred: inDefer,
							})
						}
					}
				}
				return true
			})
		}
		walk(body, false)
		sort.SliceStable(events, func(i, j int) bool { return events[i].pos < events[j].pos })
		contexts[idx] = events
	}
	collect(fd.Body)
	return contexts
}

// directSummary computes a function's own locking behaviour before
// call-graph propagation.  Acquires union every context (a closure may
// run while the caller's locks are held); releases and holds describe
// the main body context only, which is what callers observe.  prev
// supplies the previous round's summaries so calls to unlock helpers
// count as releases; it is nil on the first round.
func (st *lockorderState) directSummary(contexts [][]loEvent, prev map[*types.Func]*lockSummary) *lockSummary {
	sum := &lockSummary{
		acquires: make(map[*types.Var]token.Pos),
		releases: make(map[*types.Var]bool),
		holds:    make(map[*types.Var]bool),
	}
	for ci, events := range contexts {
		var held []heldLock
		for _, ev := range events {
			switch ev.kind {
			case loAcquire:
				if _, seen := sum.acquires[ev.field]; !seen {
					sum.acquires[ev.field] = ev.pos
				}
				held = append(held, heldLock{field: ev.field, key: ev.key, pos: ev.pos, read: ev.read})
			case loRelease:
				if i := matchHeld(held, ev.field, ev.key); i >= 0 {
					if ev.deferred {
						held[i].deferredRelease = true
					} else {
						held = append(held[:i], held[i+1:]...)
					}
				} else if ci == 0 {
					sum.releases[ev.field] = true
				}
			case loCall:
				csum := prev[ev.callee]
				if csum == nil {
					continue
				}
				if ev.deferred {
					for i := range held {
						if csum.releases[held[i].field] {
							held[i].deferredRelease = true
						}
					}
					continue
				}
				for i := len(held) - 1; i >= 0; i-- {
					if csum.releases[held[i].field] && !held[i].deferredRelease {
						held = append(held[:i], held[i+1:]...)
					}
				}
			}
		}
		if ci == 0 {
			for _, h := range held {
				if !h.deferredRelease {
					sum.holds[h.field] = true
				}
			}
		}
	}
	return sum
}

// matchHeld finds the most recent held entry for a release: same
// syntactic key preferred, same field as fallback.
func matchHeld(held []heldLock, field *types.Var, key string) int {
	for i := len(held) - 1; i >= 0; i-- {
		if held[i].field == field && held[i].key == key {
			return i
		}
	}
	for i := len(held) - 1; i >= 0; i-- {
		if held[i].field == field {
			return i
		}
	}
	return -1
}

// propagateAcquires closes the acquired-lock sets over the call graph:
// a function may acquire whatever its intra-package callees may
// acquire.
func (st *lockorderState) propagateAcquires(funcs []*types.Func) {
	for changed := true; changed; {
		changed = false
		for _, fn := range funcs {
			sum := st.summaries[fn]
			for _, callee := range st.graph.callees[fn] {
				csum := st.summaries[callee]
				if csum == nil {
					continue
				}
				for f := range csum.acquires {
					if _, seen := sum.acquires[f]; !seen {
						sum.acquires[f] = csum.acquires[f]
						changed = true
					}
				}
			}
		}
	}
}

// checkContext simulates one lock context and reports order
// violations, double locks, and locks held at return.
func (st *lockorderState) checkContext(events []loEvent) {
	var held []heldLock
	for _, ev := range events {
		switch ev.kind {
		case loAcquire:
			st.checkAcquire(held, ev)
			held = append(held, heldLock{field: ev.field, key: ev.key, pos: ev.pos, read: ev.read})
		case loRelease:
			if i := matchHeld(held, ev.field, ev.key); i >= 0 {
				if ev.deferred {
					held[i].deferredRelease = true
				} else {
					held = append(held[:i], held[i+1:]...)
				}
			}
		case loCall:
			sum := st.summaries[ev.callee]
			if sum == nil {
				continue
			}
			if ev.deferred {
				// A deferred helper call releases at return, like a
				// deferred unlock (the server's unlockAfterWrite).
				for i := range held {
					if sum.releases[held[i].field] {
						held[i].deferredRelease = true
					}
				}
				continue
			}
			if len(held) > 0 {
				st.checkCall(held, ev, sum)
			}
			for i := len(held) - 1; i >= 0; i-- {
				if sum.releases[held[i].field] && !held[i].deferredRelease {
					held = append(held[:i], held[i+1:]...)
				}
			}
			for f := range sum.holds {
				held = append(held, heldLock{
					field: f,
					key:   "(" + funcDisplayName(ev.callee) + ")." + f.Name(),
					pos:   ev.pos,
				})
			}
		case loReturn:
			for _, h := range held {
				if !h.deferredRelease {
					st.pass.Reportf(ev.pos, lockorderMarker,
						"return while %s is still locked (acquired at %s): missing unlock on this path",
						h.key, st.pass.Fset.Position(h.pos))
				}
			}
		}
	}
	for _, h := range held {
		if !h.deferredRelease {
			st.pass.Reportf(h.pos, lockorderMarker,
				"%s is locked here but never unlocked before the function exits", h.key)
		}
	}
}

// checkAcquire reports a direct acquisition that double-locks or
// violates the declared order against the held set.
func (st *lockorderState) checkAcquire(held []heldLock, ev loEvent) {
	level, ranked := st.levels[ev.field]
	for _, h := range held {
		if h.field == ev.field && h.key == ev.key {
			if !h.read || !ev.read {
				st.pass.Reportf(ev.pos, lockorderMarker,
					"%s is already held (locked at %s): double lock would self-deadlock",
					ev.key, st.pass.Fset.Position(h.pos))
			}
			continue
		}
		hLevel, hRanked := st.levels[h.field]
		if !ranked || !hRanked {
			continue
		}
		switch {
		case hLevel > level:
			st.pass.Reportf(ev.pos, lockorderMarker,
				"acquiring %s (lock-level %d) while holding %s (lock-level %d): declared lock order requires lower levels first",
				ev.key, level, h.key, hLevel)
		case hLevel == level && h.field != ev.field:
			st.pass.Reportf(ev.pos, lockorderMarker,
				"acquiring %s while holding %s, both at lock-level %d: peer locks have no declared order",
				ev.key, h.key, level)
		case h.field == ev.field:
			// Another instance of the same field (e.g. two shards'
			// mutexes): no relative order exists between instances.
			st.pass.Reportf(ev.pos, lockorderMarker,
				"acquiring %s while still holding %s: two instances of %s held at once have no declared order",
				ev.key, h.key, st.fieldDisplay(ev.field))
		}
	}
}

// checkCall reports acquisitions a callee may perform (transitively)
// that conflict with the caller's held set.
func (st *lockorderState) checkCall(held []heldLock, ev loEvent, sum *lockSummary) {
	// Deterministic order over the callee's acquire set.
	fields := make([]*types.Var, 0, len(sum.acquires))
	for f := range sum.acquires {
		fields = append(fields, f)
	}
	sort.Slice(fields, func(i, j int) bool { return fields[i].Pos() < fields[j].Pos() })
	for _, f := range fields {
		level, ranked := st.levels[f]
		for _, h := range held {
			if h.field == f {
				st.pass.Reportf(ev.pos, lockorderMarker,
					"call to %s may lock %s, which is already held (locked at %s)",
					funcDisplayName(ev.callee), st.fieldDisplay(f), st.pass.Fset.Position(h.pos))
				continue
			}
			hLevel, hRanked := st.levels[h.field]
			if !ranked || !hRanked {
				continue
			}
			if hLevel >= level {
				st.pass.Reportf(ev.pos, lockorderMarker,
					"call to %s may acquire %s (lock-level %d) while holding %s (lock-level %d): declared lock order requires lower levels first",
					funcDisplayName(ev.callee), st.fieldDisplay(f), level, h.key, hLevel)
			}
		}
	}
}
