package analysis

// All returns aladdin-vet's analyzer suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{Determinism, Errflow, Hotalloc, Intcap, Lockcheck, Lockorder, Ordinalflow}
}
