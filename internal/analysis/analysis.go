// Package analysis is aladdin-vet's static-analysis substrate: a
// self-contained re-implementation of the golang.org/x/tools
// go/analysis contract (Analyzer, Pass, Diagnostic) on top of the
// standard library only.  The build environment deliberately has no
// module proxy access, so instead of depending on x/tools the loader
// (load.go) shells out to `go list -export` and type-checks target
// packages with go/types against the toolchain's export data — the
// same pipeline go/packages drives under the hood.  Analyzers written
// against this package are source-compatible with x/tools' API shape,
// so they can migrate to the real multichecker wholesale if the
// dependency ever becomes available.
//
// Repo-specific suppression convention: a diagnostic is silenced by a
// `//aladdin:<marker>` comment on the same line, the line above, or in
// the doc comment of the enclosing function declaration.  Each
// analyzer documents its marker (e.g. determinism honours
// //aladdin:nondeterministic-ok).  Markers always carry a reason after
// the marker word; bare suppressions are still honoured but frowned on
// in review.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer describes one invariant checker.  The shape mirrors
// golang.org/x/tools/go/analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -run filters.
	Name string
	// Doc is the one-paragraph description shown by aladdin-vet -list.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) (any, error)
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic.  The loader's drivers install
	// it; analyzers call Reportf instead.
	Report func(Diagnostic)

	// markerUse, when non-nil, records that the //aladdin: comment at
	// the given position was honoured during this run — either a
	// suppression that silenced a diagnostic or a declaration (domain,
	// lock-level, hotpath…) an analyzer consumed.  The suppression
	// audit (suppress.go) installs it to find stale markers.
	markerUse func(token.Pos)
}

// noteMarkerUse records that comment c was honoured.  Safe on a nil
// comment or outside an audit run.
func (p *Pass) noteMarkerUse(c *ast.Comment) {
	if p.markerUse != nil && c != nil {
		p.markerUse(c.Pos())
	}
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// Reportf reports a diagnostic at pos unless a suppression comment
// with the given marker covers it.  marker is the word after
// "aladdin:" (e.g. "nondeterministic-ok"); an empty marker disables
// suppression for this diagnostic.
func (p *Pass) Reportf(pos token.Pos, marker, format string, args ...any) {
	if marker != "" {
		if c := p.suppressedBy(pos, marker); c != nil {
			p.noteMarkerUse(c)
			return
		}
	}
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...), Analyzer: p.Analyzer.Name})
}

// Suppressed reports whether a `//aladdin:<marker>` comment covers the
// position: same line, the immediately preceding line, or the doc
// comment of the enclosing function declaration.
func (p *Pass) Suppressed(pos token.Pos, marker string) bool {
	c := p.suppressedBy(pos, marker)
	if c != nil {
		p.noteMarkerUse(c)
	}
	return c != nil
}

// suppressedBy returns the comment that suppresses a diagnostic with
// the given marker at pos, or nil.  Only directive-form comments
// (`//aladdin:<marker> …`, no leading space) count, so a prose mention
// of a marker in documentation never silences anything.
func (p *Pass) suppressedBy(pos token.Pos, marker string) *ast.Comment {
	file := p.fileFor(pos)
	if file == nil {
		return nil
	}
	line := p.Fset.Position(pos).Line
	// A marker on the diagnostic's own line beats one on the line
	// above: consecutive annotated lines each consume their own
	// marker, keeping the suppression audit's staleness signal sharp.
	var above *ast.Comment
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if word, _, ok := parseDirective(c); !ok || word != marker {
				continue
			}
			switch p.Fset.Position(c.Pos()).Line {
			case line:
				return c
			case line - 1:
				above = c
			}
		}
	}
	if above != nil {
		return above
	}
	// Enclosing function declaration's doc comment.  Scan the raw
	// comment list, not CommentGroup.Text(): //aladdin:marker parses as
	// a comment directive and Text() strips directives.
	for _, decl := range file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || pos < fd.Pos() || pos > fd.End() {
			continue
		}
		if fd.Doc == nil {
			continue
		}
		for _, c := range fd.Doc.List {
			if word, _, ok := parseDirective(c); ok && word == marker {
				return c
			}
		}
	}
	return nil
}

// fileFor returns the *ast.File containing pos.
func (p *Pass) fileFor(pos token.Pos) *ast.File {
	for _, f := range p.Files {
		if f.FileStart <= pos && pos <= f.FileEnd {
			return f
		}
	}
	return nil
}

// RunAnalyzers applies each analyzer to each package and returns all
// diagnostics in (file, line, column) order.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
			}
			pass.Report = func(d Diagnostic) { diags = append(diags, d) }
			if _, err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.Types.Path(), err)
			}
		}
	}
	sortDiagnostics(pkgs, diags)
	return diags, nil
}

// sortDiagnostics orders diagnostics by position, then analyzer name,
// using any package's file set (they all share one).
func sortDiagnostics(pkgs []*Package, diags []Diagnostic) {
	if len(pkgs) == 0 {
		return
	}
	fset := pkgs[0].Fset
	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
}
