package analysis

import "strings"

// inScope reports whether a package path is covered by an analyzer
// restricted to the given aladdin-internal package list.  Packages
// outside the aladdin module (analysistest fixtures, which load under
// synthetic import paths) are always in scope so fixtures exercise
// the checks without masquerading as internal packages.
func inScope(pkgPath string, scoped []string) bool {
	if !strings.HasPrefix(pkgPath, "aladdin/") {
		return true
	}
	for _, p := range scoped {
		if pkgPath == p {
			return true
		}
	}
	return false
}
