package parallel

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForEachCoversAllIndices(t *testing.T) {
	const n = 1000
	seen := make([]atomic.Bool, n)
	ForEach(n, 8, func(i int) {
		if seen[i].Swap(true) {
			t.Errorf("index %d visited twice", i)
		}
	})
	for i := range seen {
		if !seen[i].Load() {
			t.Fatalf("index %d not visited", i)
		}
	}
}

func TestForEachEdgeCases(t *testing.T) {
	calls := 0
	ForEach(0, 4, func(int) { calls++ })
	ForEach(-5, 4, func(int) { calls++ })
	if calls != 0 {
		t.Error("no calls expected for n <= 0")
	}
	// Single worker path.
	var order []int
	ForEach(5, 1, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Errorf("single worker should be sequential: %v", order)
		}
	}
	// More workers than items.
	var count atomic.Int64
	ForEach(3, 64, func(int) { count.Add(1) })
	if count.Load() != 3 {
		t.Errorf("count = %d", count.Load())
	}
	// Default workers.
	count.Store(0)
	ForEach(100, 0, func(int) { count.Add(1) })
	if count.Load() != 100 {
		t.Errorf("count = %d", count.Load())
	}
}

func TestMapOrdered(t *testing.T) {
	out := Map(50, 4, func(i int) int { return i * i })
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestPool(t *testing.T) {
	p := NewPool(4, 8)
	defer p.Close()
	var sum atomic.Int64
	for i := 1; i <= 100; i++ {
		i := i
		p.Submit(func() { sum.Add(int64(i)) })
	}
	p.Wait()
	if sum.Load() != 5050 {
		t.Errorf("sum = %d", sum.Load())
	}
	// Pool is reusable after Wait.
	p.Submit(func() { sum.Add(1) })
	p.Wait()
	if sum.Load() != 5051 {
		t.Errorf("sum after reuse = %d", sum.Load())
	}
}

func TestPoolDefaults(t *testing.T) {
	p := NewPool(0, 0)
	defer p.Close()
	done := make(chan struct{})
	p.Submit(func() { close(done) })
	<-done
	p.Wait()
}

func TestCounter(t *testing.T) {
	c := NewCounter()
	ForEach(64, 8, func(i int) {
		h := c.Handle()
		for j := 0; j < 100; j++ {
			h.Add(1)
		}
	})
	if got := c.Sum(); got != 6400 {
		t.Errorf("Sum = %d, want 6400", got)
	}
	c.Add(-400)
	if got := c.Sum(); got != 6000 {
		t.Errorf("Sum = %d, want 6000", got)
	}
}

func TestQuickCounterSum(t *testing.T) {
	f := func(deltas []int16) bool {
		c := NewCounter()
		var want int64
		ForEach(len(deltas), 4, func(i int) {
			c.Add(int64(deltas[i]))
		})
		for _, d := range deltas {
			want += int64(d)
		}
		return c.Sum() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
