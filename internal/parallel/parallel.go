// Package parallel provides the small concurrency utilities the
// simulators use: a bounded worker pool for fan-out work, a parallel
// for-loop over index ranges, and a sharded counter for low-contention
// statistics.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// ForEach runs fn(i) for every i in [0, n) across at most workers
// goroutines (0 means GOMAXPROCS).  It blocks until all calls have
// returned.  Work is handed out by index stealing (an atomic cursor),
// which balances uneven per-item costs.
func ForEach(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := cursor.Add(1) - 1
				if i >= int64(n) {
					return
				}
				fn(int(i))
			}
		}()
	}
	wg.Wait()
}

// Map applies fn to every index and collects results in order.
func Map[T any](n, workers int, fn func(i int) T) []T {
	out := make([]T, n)
	ForEach(n, workers, func(i int) {
		out[i] = fn(i)
	})
	return out
}

// Pool is a reusable fixed-size worker pool for heterogeneous tasks.
// The zero value is not usable; call NewPool.
type Pool struct {
	tasks chan func()
	wg    sync.WaitGroup
	once  sync.Once
}

// NewPool starts a pool with the given number of workers (0 means
// GOMAXPROCS) and queue depth.
func NewPool(workers, depth int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if depth <= 0 {
		depth = workers * 2
	}
	p := &Pool{tasks: make(chan func(), depth)}
	for i := 0; i < workers; i++ {
		go func() {
			for task := range p.tasks {
				task()
				p.wg.Done()
			}
		}()
	}
	return p
}

// Submit enqueues a task; it blocks when the queue is full.
func (p *Pool) Submit(task func()) {
	p.wg.Add(1)
	p.tasks <- task
}

// Wait blocks until every submitted task has completed.
func (p *Pool) Wait() { p.wg.Wait() }

// Close waits for outstanding tasks and shuts the workers down.  The
// pool must not be used afterwards.
func (p *Pool) Close() {
	p.wg.Wait()
	p.once.Do(func() { close(p.tasks) })
}

// shardPad keeps each shard on its own cache line to avoid false
// sharing between cores.
type shardPad struct {
	v atomic.Int64
	_ [56]byte
}

// Counter is a sharded int64 counter: adds touch a per-core-ish shard
// and reads sum all shards.  Use for hot-path statistics where a
// single atomic would bounce between cores.
type Counter struct {
	shards []shardPad
	next   atomic.Uint32
}

// NewCounter builds a counter with one shard per processor.
func NewCounter() *Counter {
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		n = 1
	}
	return &Counter{shards: make([]shardPad, n)}
}

// Handle returns an Adder bound to one shard; each goroutine should
// obtain its own.
func (c *Counter) Handle() *Adder {
	idx := int(c.next.Add(1)-1) % len(c.shards)
	return &Adder{shard: &c.shards[idx].v}
}

// Add increments an arbitrary shard (slower than using a Handle, but
// safe from any goroutine).
func (c *Counter) Add(delta int64) {
	idx := int(c.next.Add(1)-1) % len(c.shards)
	c.shards[idx].v.Add(delta)
}

// Sum returns the current total across shards.
func (c *Counter) Sum() int64 {
	var total int64
	for i := range c.shards {
		total += c.shards[i].v.Load()
	}
	return total
}

// Adder is a shard-bound handle for hot-path increments.
type Adder struct {
	shard *atomic.Int64
}

// Add increments the bound shard.
func (a *Adder) Add(delta int64) { a.shard.Add(delta) }
