// Package firmament reimplements the Firmament baseline (Gog et al.,
// OSDI 2016) as the paper evaluates it: centralized flow-based
// scheduling where each round solves a min-cost max-flow over a
// bipartite task→machine network, with three of Firmament's cost
// models (TRIVIAL, QUINCY, OCTOPUS, Table I).
//
// Firmament's flow network cannot express anti-affinity (its capacity
// function is one-dimensional and linear, §III.A), so constraints are
// handled by the multi-round mechanism with a timeout (§I): each round
// places tasks obliviously, then a conflict detector picks up to
// reschd(i) conflicting containers per machine to evict and
// re-schedule next round.  When the round budget (the timeout)
// expires, unresolved conflicts remain as violations and bouncing
// tasks remain undeployed — the behaviour Fig. 9 quantifies.
package firmament

import (
	"fmt"
	"time"

	"aladdin/internal/constraint"
	"aladdin/internal/flow"
	"aladdin/internal/resource"
	"aladdin/internal/sched"
	"aladdin/internal/topology"
	"aladdin/internal/workload"
)

// CostModel selects Firmament's arc-cost policy.
type CostModel int

const (
	// Trivial always schedules when resources are idle, preferring
	// the most packed machine (minimise used machines).
	Trivial CostModel = iota
	// Quincy is the original Quincy cost model: prefer machines that
	// are cheap to reach (here: rack locality with the app's other
	// containers) and lightly loaded.
	Quincy
	// Octopus load-balances on container counts.
	Octopus
)

// String names the cost model as the paper does.
func (c CostModel) String() string {
	switch c {
	case Trivial:
		return "TRIVIAL"
	case Quincy:
		return "QUINCY"
	case Octopus:
		return "OCTOPUS"
	default:
		return "UNKNOWN"
	}
}

// Options configures a Firmament instance.
type Options struct {
	// Model is the cost model.
	Model CostModel
	// Reschd is the paper's reschd(i): the maximum number of
	// containers rescheduled per machine when a conflict is detected
	// (evaluated at 1, 2, 4, 8).
	Reschd int
	// MaxRounds is the multi-round timeout; 0 means the default of
	// 3·Reschd+4 rounds, which scales the effort with the knob the
	// way the paper's timeout does.
	MaxRounds int
	// CandidatesPerTask bounds the arcs from each task into the
	// machine tier; 0 means the default of 4 (Firmament keeps its
	// network sparse through aggregators similarly).
	CandidatesPerTask int
	// ChunkSize bounds how many tasks share one flow solve; 0 means
	// the default of 512.
	ChunkSize int
	// UseDijkstraSolver switches the per-chunk min-cost solver from
	// the SPFA successive-shortest-path (the family the paper names)
	// to the Dijkstra-with-potentials variant; identical results,
	// different constants.
	UseDijkstraSolver bool
}

func (o Options) maxRounds() int {
	if o.MaxRounds > 0 {
		return o.MaxRounds
	}
	// The timeout scales with the rescheduling knob: reschd(8) gets a
	// far larger budget than reschd(1), which is what separates the
	// Fig. 9 curves.
	return 4*o.Reschd + 8
}

func (o Options) candidates() int {
	if o.CandidatesPerTask > 0 {
		return o.CandidatesPerTask
	}
	return 4
}

func (o Options) chunkSize() int {
	if o.ChunkSize > 0 {
		return o.ChunkSize
	}
	return 128
}

// Scheduler is the Firmament baseline.
type Scheduler struct {
	opts Options
}

// New builds a Firmament scheduler; Reschd below 1 is raised to 1.
func New(opts Options) *Scheduler {
	if opts.Reschd < 1 {
		opts.Reschd = 1
	}
	return &Scheduler{opts: opts}
}

// Name implements sched.Scheduler: e.g. "Firmament-QUINCY(8)".
func (s *Scheduler) Name() string {
	return fmt.Sprintf("Firmament-%s(%d)", s.opts.Model, s.opts.Reschd)
}

// state tracks one scheduling run.
type state struct {
	w       *workload.Workload
	cluster *topology.Cluster
	byID    map[string]*workload.Container
	asg     constraint.Assignment
	// tried[app] records machines where the app already hit a
	// conflict: re-submitting another container of the same app there
	// is pointless because the blocker is app-level (a sibling or an
	// anti-affine partner), and this is what lets the multi-round
	// mechanism converge instead of ping-ponging isomorphic siblings
	// across the same hotspots.
	tried map[string]map[topology.MachineID]bool
	// appRacks tracks racks hosting each app (QUINCY locality).
	appRacks map[string]map[string]int
}

// Schedule implements sched.Scheduler.
func (s *Scheduler) Schedule(w *workload.Workload, cluster *topology.Cluster, arrivals []*workload.Container) (*sched.Result, error) {
	start := time.Now()
	st := &state{
		w:        w,
		cluster:  cluster,
		byID:     make(map[string]*workload.Container, w.NumContainers()),
		asg:      make(constraint.Assignment, len(arrivals)),
		tried:    make(map[string]map[topology.MachineID]bool),
		appRacks: make(map[string]map[string]int),
	}
	for _, c := range w.Containers() {
		st.byID[c.ID] = c
	}

	pending := make([]*workload.Container, len(arrivals))
	copy(pending, arrivals)

	maxRounds := s.opts.maxRounds()
	for round := 0; round < maxRounds && len(pending) > 0; round++ {
		// Phase 1: flow-solve the pending tasks (oblivious to
		// anti-affinity — the linear capacity cannot see it).
		placedAny := s.solveRound(st, pending)

		// Phase 2: conflict detection and rescheduling selection.
		// Skipped on the last round: evicting with no chance to
		// re-place would only strand containers.
		var evicted []*workload.Container
		if round < maxRounds-1 {
			evicted = s.resolveConflicts(st)
		}

		// Next round's pending: tasks the solver failed plus evicted.
		var next []*workload.Container
		for _, c := range pending {
			if _, ok := st.asg[c.ID]; !ok {
				next = append(next, c)
			}
		}
		next = append(next, evicted...)
		if !placedAny && len(evicted) == 0 {
			pending = next
			break // no progress possible; timeout early
		}
		pending = next
	}

	// Final cleanup: at timeout, Firmament leaves a task unscheduled
	// rather than violating its constraints (Fig. 1b — "S0 is
	// unscheduled to avoid anti-affinity constraints").  Any residual
	// conflicting placements are evicted and counted undeployed.
	stranded := s.finalCleanup(st)

	var undeployed []string
	seen := map[string]bool{}
	for _, c := range append(pending, stranded...) {
		if !seen[c.ID] {
			seen[c.ID] = true
			undeployed = append(undeployed, c.ID)
		}
	}
	res := &sched.Result{
		Scheduler:  s.Name(),
		Assignment: st.asg,
		Undeployed: undeployed,
		Elapsed:    time.Since(start),
	}
	res.Finalize(w)
	return res, nil
}

// solveRound runs the min-cost max-flow over the pending tasks in
// chunks and applies resulting placements (resource-checked).
// Returns whether any task was placed.
func (s *Scheduler) solveRound(st *state, pending []*workload.Container) bool {
	placedAny := false
	chunk := s.opts.chunkSize()
	for lo := 0; lo < len(pending); lo += chunk {
		hi := lo + chunk
		if hi > len(pending) {
			hi = len(pending)
		}
		if s.solveChunk(st, pending[lo:hi]) {
			placedAny = true
		}
	}
	return placedAny
}

// solveChunk builds the bipartite flow network for one chunk of tasks
// and extracts placements from the min-cost solution.
func (s *Scheduler) solveChunk(st *state, tasks []*workload.Container) bool {
	machines := st.cluster.Machines()
	// Node layout: 0 = source, 1 = sink, then tasks, then machines
	// (only machines that receive arcs).  Tasks the max-flow cannot
	// route stay pending for the next round — equivalent to routing
	// them through Firmament's unscheduled aggregator, without paying
	// an SPFA run per unscheduled task.
	g := flow.NewGraph(2)
	const (
		src  = flow.NodeID(0)
		sink = flow.NodeID(1)
	)

	taskNode := make([]flow.NodeID, len(tasks))
	machNode := make(map[topology.MachineID]flow.NodeID)
	type placementArc struct {
		arc  int
		task int
		m    topology.MachineID
	}
	var placementArcs []placementArc

	// Slots per machine in whole-core units (resource fit is
	// re-checked at apply time; the slot count only shapes the flow).
	// The per-round cap keeps one cheap machine from absorbing a
	// whole wave of isomorphic tasks in a single solve, mirroring how
	// Firmament's incremental solver interleaves placements.
	slots := func(m *topology.Machine) int64 {
		sl := m.Free().Dim(resource.CPU) / 1000
		if sl > 8 {
			sl = 8
		}
		return sl
	}

	type cand struct {
		m    topology.MachineID
		cost int64
		rot  int
	}
	k := s.opts.candidates()
	cands := make([]cand, 0, k+1)
	for ti, c := range tasks {
		taskNode[ti] = g.AddNode()
		g.MustAddArc(src, taskNode[ti], 1, 0)

		// Select the k cheapest candidate machines in one pass
		// (lowest machine ID on ties, like the solver's deterministic
		// arc order).
		tried := st.tried[c.App]
		costFn := s.costFor(st, c)
		cands = cands[:0]
		for _, m := range machines {
			if !m.Fits(c.Demand) {
				continue
			}
			if tried != nil && tried[m.ID] {
				continue
			}
			nc := cand{m: m.ID, cost: costFn(m), rot: int(m.ID)}
			// Insertion into the bounded best-k list.
			pos := len(cands)
			for pos > 0 {
				prev := cands[pos-1]
				if prev.cost < nc.cost || (prev.cost == nc.cost && prev.rot <= nc.rot) {
					break
				}
				pos--
			}
			if pos >= k {
				continue
			}
			if len(cands) < k {
				cands = append(cands, cand{})
			}
			copy(cands[pos+1:], cands[pos:])
			cands[pos] = nc
		}
		for _, cd := range cands {
			mn, ok := machNode[cd.m]
			if !ok {
				mn = g.AddNode()
				machNode[cd.m] = mn
				machine := st.cluster.Machine(cd.m)
				sl := slots(machine)
				if s.opts.Model == Octopus {
					// Convex per-unit cost on the machine→sink arcs:
					// each additional task on the same machine costs
					// more, so the min-cost solution load-balances —
					// the flow-network encoding of OCTOPUS.
					base := int64(machine.NumContainers())
					for j := int64(0); j < sl; j++ {
						g.MustAddArc(mn, sink, 1, (base+j)*10)
					}
				} else {
					g.MustAddArc(mn, sink, sl, 0)
				}
			}
			idx := g.MustAddArc(taskNode[ti], mn, 1, cd.cost)
			placementArcs = append(placementArcs, placementArc{arc: idx, task: ti, m: cd.m})
		}
	}

	solve := flow.MinCostMaxFlow
	if s.opts.UseDijkstraSolver {
		solve = flow.MinCostMaxFlowDijkstra
	}
	if _, _, err := solve(g, src, sink); err != nil {
		// Costs are non-negative; this cannot happen, but fail safe
		// by scheduling nothing this chunk.
		return false
	}

	// Extract placements: task→machine arcs carrying flow.  Apply in
	// deterministic arc order with a real resource check.
	placed := false
	for _, pa := range placementArcs {
		if g.Arc(pa.arc).Flow() <= 0 {
			continue
		}
		c := tasks[pa.task]
		if _, already := st.asg[c.ID]; already {
			continue
		}
		m := st.cluster.Machine(pa.m)
		if !m.Fits(c.Demand) {
			continue // slot estimate over-admitted; retry next round
		}
		st.place(c, pa.m)
		placed = true
	}
	return placed
}

// costFor returns the per-machine arc cost function for one task
// under the configured cost model, with per-task state hoisted out of
// the machine loop.
func (s *Scheduler) costFor(st *state, c *workload.Container) func(*topology.Machine) int64 {
	switch s.opts.Model {
	case Trivial:
		// Most packed machine first: cost = remaining free CPU after
		// placement.
		demand := c.Demand
		return func(m *topology.Machine) int64 {
			return m.Free().Sub(demand).Dim(resource.CPU)
		}
	case Octopus:
		// Balance container counts.
		return func(m *topology.Machine) int64 {
			return int64(m.NumContainers())
		}
	case Quincy:
		// Locality: cheap if the app already runs in this rack, plus
		// a load term (the Quincy cost of crossing the aggregator).
		racks := st.appRacks[c.App]
		return func(m *topology.Machine) int64 {
			cost := int64(1000)
			if racks != nil && racks[m.Rack] > 0 {
				cost = 100
			}
			return cost + int64(m.NumContainers())*10
		}
	default:
		return func(*topology.Machine) int64 { return 0 }
	}
}

func (st *state) place(c *workload.Container, mid topology.MachineID) {
	if err := st.cluster.Machine(mid).Allocate(c.ID, c.Demand); err != nil {
		panic("firmament: place: " + err.Error())
	}
	st.asg[c.ID] = mid
	racks := st.appRacks[c.App]
	if racks == nil {
		racks = make(map[string]int)
		st.appRacks[c.App] = racks
	}
	racks[st.cluster.Machine(mid).Rack]++
}

func (st *state) evict(c *workload.Container, mid topology.MachineID) {
	if _, err := st.cluster.Machine(mid).Release(c.ID); err != nil {
		panic("firmament: evict: " + err.Error())
	}
	delete(st.asg, c.ID)
	rack := st.cluster.Machine(mid).Rack
	if racks := st.appRacks[c.App]; racks != nil {
		if racks[rack] > 0 {
			racks[rack]--
		}
	}
	tried := st.tried[c.App]
	if tried == nil {
		tried = make(map[topology.MachineID]bool)
		st.tried[c.App] = tried
	}
	tried[mid] = true
}

// conflictDegrees returns, for machine m, each hosted container's
// count of anti-affinity conflicts with co-hosted containers.
func (st *state) conflictDegrees(m *topology.Machine) map[string]int {
	ids := m.ContainerIDs()
	if len(ids) < 2 {
		return nil
	}
	deg := make(map[string]int)
	for i := 0; i < len(ids); i++ {
		a := st.byID[ids[i]]
		if a == nil {
			continue
		}
		for j := i + 1; j < len(ids); j++ {
			b := st.byID[ids[j]]
			if b == nil {
				continue
			}
			conflict := false
			if a.App == b.App {
				conflict = st.w.AntiAffine(a.App, a.App)
			} else {
				conflict = st.w.AntiAffine(a.App, b.App)
			}
			if conflict {
				deg[a.ID]++
				deg[b.ID]++
			}
		}
	}
	if len(deg) == 0 {
		return nil
	}
	return deg
}

// finalCleanup evicts, machine by machine, the highest-conflict
// containers until no anti-affinity conflict remains.  The evicted
// containers are stranded (undeployed).
func (s *Scheduler) finalCleanup(st *state) []*workload.Container {
	var stranded []*workload.Container
	for _, m := range st.cluster.Machines() {
		for {
			c := st.worstConflicting(m)
			if c == nil {
				break
			}
			st.evict(c, m.ID)
			stranded = append(stranded, c)
		}
	}
	return stranded
}

// resolveConflicts scans machines for anti-affinity conflicts and
// evicts up to reschd(i) involved containers per machine for
// rescheduling, preferring the containers involved in the most
// conflicts (a simple policy — the paper notes Firmament's selection
// struggles to reach global objectives).
func (s *Scheduler) resolveConflicts(st *state) []*workload.Container {
	var evicted []*workload.Container
	for _, m := range st.cluster.Machines() {
		// Evict the highest-degree container, then recompute: this
		// never evicts a container whose conflicts were already
		// cleared, so every eviction leaves at least one conflict
		// partner behind — which is exactly what justifies marking
		// the machine as tried for the evicted app.
		for k := 0; k < s.opts.Reschd; k++ {
			c := st.worstConflicting(m)
			if c == nil {
				break
			}
			st.evict(c, m.ID)
			evicted = append(evicted, c)
		}
	}
	return evicted
}

// worstConflicting returns the highest-conflict-degree container on
// the machine, or nil when the machine is conflict-free.
func (st *state) worstConflicting(m *topology.Machine) *workload.Container {
	deg := st.conflictDegrees(m)
	if deg == nil {
		return nil
	}
	worstID, worst := "", -1
	for id, d := range deg {
		if d > worst || (d == worst && id < worstID) {
			worstID, worst = id, d
		}
	}
	return st.byID[worstID]
}
