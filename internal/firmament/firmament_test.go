package firmament

import (
	"strings"
	"testing"

	"aladdin/internal/resource"
	"aladdin/internal/sched"
	"aladdin/internal/topology"
	"aladdin/internal/trace"
	"aladdin/internal/workload"
)

func cluster(n int) *topology.Cluster {
	return topology.New(topology.Config{
		Machines: n, MachinesPerRack: 8, RacksPerCluster: 4,
		Capacity: resource.Cores(32, 64*1024),
	})
}

func run(t *testing.T, s *Scheduler, w *workload.Workload, cl *topology.Cluster) *sched.Result {
	t.Helper()
	res, err := s.Schedule(w, cl, w.Arrange(workload.OrderSubmission))
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Verify(w, cl); err != nil {
		t.Fatal(err)
	}
	return res
}

func TestNames(t *testing.T) {
	cases := []struct {
		opts Options
		want string
	}{
		{Options{Model: Trivial, Reschd: 1}, "Firmament-TRIVIAL(1)"},
		{Options{Model: Quincy, Reschd: 8}, "Firmament-QUINCY(8)"},
		{Options{Model: Octopus, Reschd: 4}, "Firmament-OCTOPUS(4)"},
	}
	for _, c := range cases {
		if got := New(c.opts).Name(); got != c.want {
			t.Errorf("Name = %q, want %q", got, c.want)
		}
	}
	if !strings.Contains(CostModel(99).String(), "UNKNOWN") {
		t.Error("unknown cost model name")
	}
	if New(Options{Model: Trivial}).opts.Reschd != 1 {
		t.Error("Reschd should be raised to 1")
	}
}

func TestUnconstrainedPlacement(t *testing.T) {
	w := workload.MustNew([]*workload.App{
		{ID: "a", Demand: resource.Cores(4, 4096), Replicas: 8},
	})
	for _, model := range []CostModel{Trivial, Quincy, Octopus} {
		cl := cluster(4)
		res := run(t, New(Options{Model: model, Reschd: 2}), w, cl)
		if len(res.Undeployed) != 0 {
			t.Errorf("%v: undeployed %v", model, res.Undeployed)
		}
	}
}

func TestTrivialPacks(t *testing.T) {
	// TRIVIAL prefers packed machines: 8 one-core containers should
	// land on one machine.
	w := workload.MustNew([]*workload.App{
		{ID: "a", Demand: resource.Cores(1, 1024), Replicas: 8},
	})
	cl := cluster(8)
	run(t, New(Options{Model: Trivial, Reschd: 1}), w, cl)
	if used := cl.UsedMachines(); used != 1 {
		t.Errorf("TRIVIAL should pack onto 1 machine, used %d", used)
	}
}

func TestOctopusBalances(t *testing.T) {
	// OCTOPUS balances container counts: 8 containers on 4 machines
	// should use all 4.
	w := workload.MustNew([]*workload.App{
		{ID: "a", Demand: resource.Cores(1, 1024), Replicas: 8},
	})
	cl := cluster(4)
	run(t, New(Options{Model: Octopus, Reschd: 1}), w, cl)
	if used := cl.UsedMachines(); used != 4 {
		t.Errorf("OCTOPUS should touch all 4 machines, used %d", used)
	}
}

func TestConflictResolutionEventuallyResolves(t *testing.T) {
	// Two spread replicas forced to conflict in round 1 (TRIVIAL
	// packs them together); the multi-round mechanism must separate
	// them.
	w := workload.MustNew([]*workload.App{
		{ID: "spread", Demand: resource.Cores(1, 1024), Replicas: 2, AntiAffinitySelf: true},
	})
	cl := cluster(2)
	res := run(t, New(Options{Model: Trivial, Reschd: 1}), w, cl)
	if len(res.Undeployed) != 0 {
		t.Errorf("undeployed: %v", res.Undeployed)
	}
	if s := res.ViolationSummary(); s.Total() != 0 {
		t.Errorf("conflict not resolved: %+v", s)
	}
}

func TestObliviousFirstRoundCausesChurnOrViolations(t *testing.T) {
	// A heavily constrained workload on a trace: Firmament with
	// reschd(1) should strand containers (undeployed) and/or leave
	// violations — the Fig. 9 failure mode — while reschd(8) does
	// strictly better on undeployed+violations.
	w := trace.MustGenerate(trace.Scaled(21, 100))
	cl1, cl8 := cluster(256), cluster(256)
	res1 := run(t, New(Options{Model: Quincy, Reschd: 1}), w, cl1)
	res8 := run(t, New(Options{Model: Quincy, Reschd: 8}), w, cl8)
	bad1 := len(res1.Undeployed) + res1.ViolationSummary().Total()
	bad8 := len(res8.Undeployed) + res8.ViolationSummary().Total()
	if bad1 == 0 {
		t.Log("note: reschd(1) fully scheduled this trace")
	}
	if bad8 > bad1 {
		t.Errorf("reschd(8) should not be worse: %d vs %d", bad8, bad1)
	}
}

func TestTimeoutLeavesWorkUndone(t *testing.T) {
	// With a tiny round budget, conflicts cannot all resolve.
	w := workload.MustNew([]*workload.App{
		{ID: "spread", Demand: resource.Cores(1, 1024), Replicas: 6, AntiAffinitySelf: true},
	})
	cl := cluster(8)
	res := run(t, New(Options{Model: Trivial, Reschd: 1, MaxRounds: 1}), w, cl)
	if len(res.Undeployed)+res.ViolationSummary().Total() == 0 {
		t.Error("one round of TRIVIAL on a spread app should leave conflicts or undeployed")
	}
}

func TestInfeasibleStaysUndeployed(t *testing.T) {
	w := workload.MustNew([]*workload.App{
		{ID: "whale", Demand: resource.Cores(64, 1024), Replicas: 1},
	})
	cl := cluster(2)
	res := run(t, New(Options{Model: Quincy, Reschd: 2}), w, cl)
	if len(res.Undeployed) != 1 {
		t.Errorf("undeployed = %v", res.Undeployed)
	}
}

func TestQuincyLocalityPreference(t *testing.T) {
	// Quincy should co-locate an app's containers in the same rack
	// when capacity allows.
	w := workload.MustNew([]*workload.App{
		{ID: "a", Demand: resource.Cores(2, 2048), Replicas: 6},
	})
	cl := cluster(32) // 4 racks of 8
	res := run(t, New(Options{Model: Quincy, Reschd: 2}), w, cl)
	racks := map[string]int{}
	for id, m := range res.Assignment {
		_ = id
		racks[cl.Machine(m).Rack]++
	}
	if len(racks) > 2 {
		t.Errorf("QUINCY scattered across %d racks: %v", len(racks), racks)
	}
}

func TestChunkedSolvesPlaceWell(t *testing.T) {
	// The default chunked incremental solving must place nearly the
	// whole trace on an amply sized cluster; a finer chunk (more
	// frequent re-costing) must not be worse than the default by
	// much.  (A single giant chunk degrades — costs go stale within
	// one solve — which is exactly why Firmament solves
	// incrementally.)
	w := trace.MustGenerate(trace.Scaled(33, 300))
	clA, clB := cluster(256), cluster(256)
	resA := run(t, New(Options{Model: Octopus, Reschd: 4, ChunkSize: 32}), w, clA)
	resB := run(t, New(Options{Model: Octopus, Reschd: 4}), w, clB)
	if resB.UndeployedFraction() > 0.10 {
		t.Errorf("default chunking undeployed fraction %.3f too high", resB.UndeployedFraction())
	}
	if diff := resA.UndeployedFraction() - resB.UndeployedFraction(); diff > 0.15 || diff < -0.15 {
		t.Errorf("fine chunking diverges: %.3f vs %.3f", resA.UndeployedFraction(), resB.UndeployedFraction())
	}
}
