package firmament

import (
	"testing"

	"aladdin/internal/constraint"
	"aladdin/internal/resource"
	"aladdin/internal/topology"
	"aladdin/internal/workload"
)

func newState(t *testing.T, w *workload.Workload, machines int) *state {
	t.Helper()
	st := &state{
		w:        w,
		cluster:  cluster(machines),
		byID:     make(map[string]*workload.Container),
		asg:      make(constraint.Assignment),
		tried:    make(map[string]map[topology.MachineID]bool),
		appRacks: make(map[string]map[string]int),
	}
	for _, c := range w.Containers() {
		st.byID[c.ID] = c
	}
	return st
}

func conflictWorkload() *workload.Workload {
	return workload.MustNew([]*workload.App{
		{ID: "spread", Demand: resource.Cores(1, 1024), Replicas: 3, AntiAffinitySelf: true},
		{ID: "other", Demand: resource.Cores(1, 1024), Replicas: 2, AntiAffinityApps: []string{"spread"}},
		{ID: "free", Demand: resource.Cores(1, 1024), Replicas: 2},
	})
}

func place(t *testing.T, st *state, id string, m topology.MachineID) {
	t.Helper()
	st.place(st.byID[id], m)
}

func TestConflictDegrees(t *testing.T) {
	w := conflictWorkload()
	st := newState(t, w, 2)
	place(t, st, "spread/0", 0)
	place(t, st, "spread/1", 0) // within conflict
	place(t, st, "other/0", 0)  // across with both spreads
	place(t, st, "free/0", 0)   // no conflicts

	deg := st.conflictDegrees(st.cluster.Machine(0))
	if deg == nil {
		t.Fatal("conflicts expected")
	}
	// spread/0: vs spread/1 + other/0 = 2; spread/1 same; other/0: 2.
	if deg["spread/0"] != 2 || deg["spread/1"] != 2 || deg["other/0"] != 2 {
		t.Errorf("degrees = %v", deg)
	}
	if _, ok := deg["free/0"]; ok {
		t.Error("free container should have no degree entry")
	}
	// Conflict-free machine returns nil.
	if got := st.conflictDegrees(st.cluster.Machine(1)); got != nil {
		t.Errorf("empty machine degrees = %v", got)
	}
}

func TestWorstConflictingAndEvictMarksTried(t *testing.T) {
	w := conflictWorkload()
	st := newState(t, w, 2)
	place(t, st, "spread/0", 0)
	place(t, st, "spread/1", 0)
	place(t, st, "other/0", 0)

	c := st.worstConflicting(st.cluster.Machine(0))
	if c == nil {
		t.Fatal("worst conflicting expected")
	}
	st.evict(c, 0)
	if !st.tried[c.App][0] {
		t.Errorf("eviction should mark app %s tried on machine 0", c.App)
	}
	if _, ok := st.asg[c.ID]; ok {
		t.Error("evicted container still assigned")
	}
}

func TestFinalCleanupClearsAllConflicts(t *testing.T) {
	w := conflictWorkload()
	st := newState(t, w, 2)
	place(t, st, "spread/0", 0)
	place(t, st, "spread/1", 0)
	place(t, st, "spread/2", 0)
	place(t, st, "other/0", 0)
	place(t, st, "free/0", 0)

	s := New(Options{Model: Trivial, Reschd: 1})
	stranded := s.finalCleanup(st)
	if len(stranded) == 0 {
		t.Fatal("cleanup should strand conflicting containers")
	}
	// After cleanup the machine must be conflict-free, and the
	// non-conflicting container must survive.
	if st.conflictDegrees(st.cluster.Machine(0)) != nil {
		t.Error("conflicts remain after cleanup")
	}
	if _, ok := st.asg["free/0"]; !ok {
		t.Error("cleanup evicted a non-conflicting container")
	}
	// Minimality-ish: at least one of the conflict group survives.
	survivors := 0
	for _, id := range []string{"spread/0", "spread/1", "spread/2", "other/0"} {
		if _, ok := st.asg[id]; ok {
			survivors++
		}
	}
	if survivors == 0 {
		t.Error("cleanup should keep one container of the conflict group")
	}
}

func TestQuincyLocalityTracking(t *testing.T) {
	w := conflictWorkload()
	st := newState(t, w, 4)
	place(t, st, "free/0", 0)
	rack := st.cluster.Machine(0).Rack
	if st.appRacks["free"][rack] != 1 {
		t.Errorf("appRacks = %v", st.appRacks)
	}
	st.evict(st.byID["free/0"], 0)
	if st.appRacks["free"][rack] != 0 {
		t.Errorf("appRacks after evict = %v", st.appRacks)
	}
}

func TestCostModels(t *testing.T) {
	w := conflictWorkload()
	st := newState(t, w, 16) // two racks of 8
	c := st.byID["free/0"]
	m0, m1 := st.cluster.Machine(0), st.cluster.Machine(1)
	place(t, st, "free/1", 0) // load machine 0

	sTriv := New(Options{Model: Trivial, Reschd: 1})
	costFn := sTriv.costFor(st, c)
	if !(costFn(m0) < costFn(m1)) {
		t.Error("TRIVIAL should prefer (cost less) the more packed machine")
	}
	sOct := New(Options{Model: Octopus, Reschd: 1})
	costFn = sOct.costFor(st, c)
	if !(costFn(m1) < costFn(m0)) {
		t.Error("OCTOPUS should prefer the emptier machine")
	}
	sQ := New(Options{Model: Quincy, Reschd: 1})
	costFn = sQ.costFor(st, st.byID["free/0"])
	// free already runs in machine 0's rack; machines in that rack
	// are cheaper.
	sameRack := costFn(m0)
	other := costFn(st.cluster.Machine(8)) // different rack (8 per rack)
	if !(sameRack < other) {
		t.Errorf("QUINCY locality: same rack %d !< other %d", sameRack, other)
	}
}
