package stats

import (
	"fmt"
	"math"
	"sort"
)

// Quantile is a streaming quantile estimator using the P² algorithm
// (Jain & Chlamtac, 1985): it tracks a single quantile in O(1) space
// without storing observations — the right tool for long online
// simulations where batch latencies arrive forever.
type Quantile struct {
	p     float64
	count int
	// Five markers: heights q and positions n, plus desired positions
	// np and increments dn.
	q  [5]float64
	n  [5]float64
	np [5]float64
	dn [5]float64
	// init buffers the first five observations.
	init []float64
}

// NewQuantile builds an estimator for the p-th quantile, p in (0,1).
func NewQuantile(p float64) (*Quantile, error) {
	if p <= 0 || p >= 1 {
		return nil, fmt.Errorf("stats: quantile p %v out of (0,1)", p)
	}
	return &Quantile{p: p, init: make([]float64, 0, 5)}, nil
}

// Observe adds one sample.
func (e *Quantile) Observe(x float64) {
	e.count++
	if len(e.init) < 5 {
		e.init = append(e.init, x)
		if len(e.init) == 5 {
			sort.Float64s(e.init)
			for i := 0; i < 5; i++ {
				e.q[i] = e.init[i]
				e.n[i] = float64(i + 1)
			}
			p := e.p
			e.np = [5]float64{1, 1 + 2*p, 1 + 4*p, 3 + 2*p, 5}
			e.dn = [5]float64{0, p / 2, p, (1 + p) / 2, 1}
		}
		return
	}
	// Find cell k such that q[k] <= x < q[k+1]; adjust extremes.
	var k int
	switch {
	case x < e.q[0]:
		e.q[0] = x
		k = 0
	case x >= e.q[4]:
		e.q[4] = x
		k = 3
	default:
		for k = 0; k < 4; k++ {
			if x < e.q[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		e.n[i]++
	}
	for i := 0; i < 5; i++ {
		e.np[i] += e.dn[i]
	}
	// Adjust interior markers with the parabolic (P²) formula,
	// falling back to linear when the parabola would cross a
	// neighbour.
	for i := 1; i <= 3; i++ {
		d := e.np[i] - e.n[i]
		if (d >= 1 && e.n[i+1]-e.n[i] > 1) || (d <= -1 && e.n[i-1]-e.n[i] < -1) {
			s := math.Copysign(1, d)
			qn := e.parabolic(i, s)
			if e.q[i-1] < qn && qn < e.q[i+1] {
				e.q[i] = qn
			} else {
				e.q[i] = e.linear(i, s)
			}
			e.n[i] += s
		}
	}
}

func (e *Quantile) parabolic(i int, s float64) float64 {
	return e.q[i] + s/(e.n[i+1]-e.n[i-1])*
		((e.n[i]-e.n[i-1]+s)*(e.q[i+1]-e.q[i])/(e.n[i+1]-e.n[i])+
			(e.n[i+1]-e.n[i]-s)*(e.q[i]-e.q[i-1])/(e.n[i]-e.n[i-1]))
}

func (e *Quantile) linear(i int, s float64) float64 {
	j := i + int(s)
	return e.q[i] + s*(e.q[j]-e.q[i])/(e.n[j]-e.n[i])
}

// Value returns the current quantile estimate.  With fewer than five
// observations it falls back to the exact order statistic.
func (e *Quantile) Value() float64 {
	if e.count == 0 {
		return 0
	}
	if len(e.init) < 5 {
		tmp := make([]float64, len(e.init))
		copy(tmp, e.init)
		sort.Float64s(tmp)
		idx := int(math.Ceil(e.p*float64(len(tmp)))) - 1
		if idx < 0 {
			idx = 0
		}
		return tmp[idx]
	}
	return e.q[2]
}

// Count returns the number of observations.
func (e *Quantile) Count() int { return e.count }
