// Package stats provides the small statistics toolkit the experiment
// harness uses: CDFs, histograms, percentiles and utilisation-range
// summaries matching the paper's figures.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// CDF is an empirical cumulative distribution over float64 samples.
type CDF struct {
	sorted []float64
}

// NewCDF builds a CDF from samples (copied and sorted).
func NewCDF(samples []float64) *CDF {
	s := make([]float64, len(samples))
	copy(s, samples)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// NewCDFInts builds a CDF from integer samples.
func NewCDFInts(samples []int) *CDF {
	s := make([]float64, len(samples))
	for i, v := range samples {
		s[i] = float64(v)
	}
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// Len returns the sample count.
func (c *CDF) Len() int { return len(c.sorted) }

// At returns P(X ≤ x) in [0,1].
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	idx := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(idx) / float64(len(c.sorted))
}

// Percentile returns the p-th percentile (p in [0,100]) using
// nearest-rank.
func (c *CDF) Percentile(p float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return c.sorted[0]
	}
	if p >= 100 {
		return c.sorted[len(c.sorted)-1]
	}
	rank := int(math.Ceil(p / 100 * float64(len(c.sorted))))
	if rank < 1 {
		rank = 1
	}
	return c.sorted[rank-1]
}

// Min returns the smallest sample (0 when empty).
func (c *CDF) Min() float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	return c.sorted[0]
}

// Max returns the largest sample (0 when empty).
func (c *CDF) Max() float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	return c.sorted[len(c.sorted)-1]
}

// Mean returns the arithmetic mean (0 when empty).
func (c *CDF) Mean() float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range c.sorted {
		sum += v
	}
	return sum / float64(len(c.sorted))
}

// Points returns up to n evenly spaced (x, P(X≤x)) pairs for
// plotting, always including the extremes.
func (c *CDF) Points(n int) [][2]float64 {
	if len(c.sorted) == 0 || n <= 0 {
		return nil
	}
	if n > len(c.sorted) {
		n = len(c.sorted)
	}
	out := make([][2]float64, 0, n)
	for i := 0; i < n; i++ {
		idx := i * (len(c.sorted) - 1) / max(1, n-1)
		x := c.sorted[idx]
		out = append(out, [2]float64{x, float64(idx+1) / float64(len(c.sorted))})
	}
	return out
}

// Histogram counts samples into fixed-width buckets.
type Histogram struct {
	lo, width float64
	counts    []int
	total     int
}

// NewHistogram builds a histogram over [lo, hi) with the given number
// of buckets.  Samples outside the range clamp to the edge buckets.
func NewHistogram(lo, hi float64, buckets int) (*Histogram, error) {
	if buckets <= 0 {
		return nil, fmt.Errorf("stats: buckets must be positive, got %d", buckets)
	}
	if hi <= lo {
		return nil, fmt.Errorf("stats: hi %v must exceed lo %v", hi, lo)
	}
	return &Histogram{
		lo:     lo,
		width:  (hi - lo) / float64(buckets),
		counts: make([]int, buckets),
	}, nil
}

// Observe adds one sample.
func (h *Histogram) Observe(x float64) {
	idx := int((x - h.lo) / h.width)
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.counts) {
		idx = len(h.counts) - 1
	}
	h.counts[idx]++
	h.total++
}

// Count returns the count in bucket i.
func (h *Histogram) Count(i int) int { return h.counts[i] }

// Total returns the number of observations.
func (h *Histogram) Total() int { return h.total }

// Buckets returns the bucket count.
func (h *Histogram) Buckets() int { return len(h.counts) }

// BucketLow returns the inclusive lower bound of bucket i.
func (h *Histogram) BucketLow(i int) float64 { return h.lo + float64(i)*h.width }

// Render draws a text bar chart of the histogram, one line per
// bucket, scaled to width columns.
func (h *Histogram) Render(width int) string {
	if width <= 0 {
		width = 40
	}
	maxCount := 0
	for _, c := range h.counts {
		if c > maxCount {
			maxCount = c
		}
	}
	var b strings.Builder
	for i, c := range h.counts {
		bar := 0
		if maxCount > 0 {
			bar = c * width / maxCount
		}
		fmt.Fprintf(&b, "%10.1f | %s %d\n", h.BucketLow(i), strings.Repeat("#", bar), c)
	}
	return b.String()
}

// Range summarises min/mean/max of a float series, the form of the
// paper's Fig. 11 utilisation ranges.
type Range struct {
	Min, Mean, Max float64
}

// NewRange computes the range summary (zero Range when empty).
func NewRange(samples []float64) Range {
	if len(samples) == 0 {
		return Range{}
	}
	r := Range{Min: samples[0], Max: samples[0]}
	sum := 0.0
	for _, v := range samples {
		if v < r.Min {
			r.Min = v
		}
		if v > r.Max {
			r.Max = v
		}
		sum += v
	}
	r.Mean = sum / float64(len(samples))
	return r
}

// String renders "min..max (mean)" with percentages.
func (r Range) String() string {
	return fmt.Sprintf("%.0f%%..%.0f%% (mean %.0f%%)", r.Min*100, r.Max*100, r.Mean*100)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
