package stats

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestCDFBasics(t *testing.T) {
	c := NewCDF([]float64{3, 1, 2, 4, 5})
	if c.Len() != 5 {
		t.Errorf("Len = %d", c.Len())
	}
	if got := c.At(3); got != 0.6 {
		t.Errorf("At(3) = %v, want 0.6", got)
	}
	if got := c.At(0); got != 0 {
		t.Errorf("At(0) = %v", got)
	}
	if got := c.At(10); got != 1 {
		t.Errorf("At(10) = %v", got)
	}
	if c.Min() != 1 || c.Max() != 5 {
		t.Errorf("Min/Max = %v/%v", c.Min(), c.Max())
	}
	if c.Mean() != 3 {
		t.Errorf("Mean = %v", c.Mean())
	}
}

func TestCDFInts(t *testing.T) {
	c := NewCDFInts([]int{10, 20, 30})
	if c.At(20) != 2.0/3.0 {
		t.Errorf("At(20) = %v", c.At(20))
	}
}

func TestCDFEmpty(t *testing.T) {
	c := NewCDF(nil)
	if c.At(1) != 0 || c.Percentile(50) != 0 || c.Min() != 0 || c.Max() != 0 || c.Mean() != 0 {
		t.Error("empty CDF should return zeros")
	}
	if c.Points(5) != nil {
		t.Error("empty CDF Points should be nil")
	}
}

func TestPercentile(t *testing.T) {
	samples := make([]float64, 100)
	for i := range samples {
		samples[i] = float64(i + 1) // 1..100
	}
	c := NewCDF(samples)
	cases := map[float64]float64{0: 1, 50: 50, 99: 99, 100: 100, 150: 100, -5: 1}
	for p, want := range cases {
		if got := c.Percentile(p); got != want {
			t.Errorf("Percentile(%v) = %v, want %v", p, got, want)
		}
	}
}

func TestPoints(t *testing.T) {
	samples := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	c := NewCDF(samples)
	pts := c.Points(5)
	if len(pts) != 5 {
		t.Fatalf("Points = %d", len(pts))
	}
	if pts[0][0] != 1 || pts[len(pts)-1][0] != 10 {
		t.Errorf("extremes missing: %v", pts)
	}
	// Monotone.
	for i := 1; i < len(pts); i++ {
		if pts[i][0] < pts[i-1][0] || pts[i][1] < pts[i-1][1] {
			t.Errorf("points not monotone: %v", pts)
		}
	}
	if got := c.Points(100); len(got) != 10 {
		t.Errorf("Points capped at sample count: %d", len(got))
	}
	if c.Points(0) != nil {
		t.Error("Points(0) should be nil")
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{0, 1, 2.5, 9.9, 11, -3} {
		h.Observe(v)
	}
	if h.Total() != 6 {
		t.Errorf("Total = %d", h.Total())
	}
	if h.Buckets() != 5 {
		t.Errorf("Buckets = %d", h.Buckets())
	}
	// -3 clamps to bucket 0; 11 clamps to bucket 4.
	if h.Count(0) != 3 { // 0, 1, -3
		t.Errorf("Count(0) = %d", h.Count(0))
	}
	if h.Count(4) != 2 { // 9.9, 11
		t.Errorf("Count(4) = %d", h.Count(4))
	}
	if h.Count(1) != 1 { // 2.5
		t.Errorf("Count(1) = %d", h.Count(1))
	}
	if h.BucketLow(2) != 4 {
		t.Errorf("BucketLow(2) = %v", h.BucketLow(2))
	}
	out := h.Render(20)
	if !strings.Contains(out, "#") {
		t.Error("Render should contain bars")
	}
	if lines := strings.Count(out, "\n"); lines != 5 {
		t.Errorf("Render lines = %d", lines)
	}
}

func TestHistogramErrors(t *testing.T) {
	if _, err := NewHistogram(0, 10, 0); err == nil {
		t.Error("zero buckets should fail")
	}
	if _, err := NewHistogram(5, 5, 3); err == nil {
		t.Error("hi <= lo should fail")
	}
}

func TestHistogramRenderDefaultWidth(t *testing.T) {
	h, _ := NewHistogram(0, 1, 2)
	h.Observe(0.5)
	if out := h.Render(0); out == "" {
		t.Error("default width render empty")
	}
}

func TestRange(t *testing.T) {
	r := NewRange([]float64{0.2, 0.7, 0.5})
	if r.Min != 0.2 || r.Max != 0.7 {
		t.Errorf("Range = %+v", r)
	}
	if math.Abs(r.Mean-0.4666666) > 1e-5 {
		t.Errorf("Mean = %v", r.Mean)
	}
	if !strings.Contains(r.String(), "20%") || !strings.Contains(r.String(), "70%") {
		t.Errorf("String = %q", r.String())
	}
	if empty := NewRange(nil); empty != (Range{}) {
		t.Errorf("empty Range = %+v", empty)
	}
}

func TestQuickCDFMonotone(t *testing.T) {
	f := func(samples []float64, x, y float64) bool {
		for i, s := range samples {
			if math.IsNaN(s) || math.IsInf(s, 0) {
				samples[i] = 0
			}
		}
		if math.IsNaN(x) || math.IsNaN(y) || math.IsInf(x, 0) || math.IsInf(y, 0) {
			return true
		}
		c := NewCDF(samples)
		if x > y {
			x, y = y, x
		}
		return c.At(x) <= c.At(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickPercentileWithinSamples(t *testing.T) {
	f := func(raw []float64, p float64) bool {
		var samples []float64
		for _, s := range raw {
			if !math.IsNaN(s) && !math.IsInf(s, 0) {
				samples = append(samples, s)
			}
		}
		if len(samples) == 0 {
			return true
		}
		p = math.Mod(math.Abs(p), 100)
		c := NewCDF(samples)
		v := c.Percentile(p)
		sort.Float64s(samples)
		return v >= samples[0] && v <= samples[len(samples)-1]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
