package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestNewQuantileValidation(t *testing.T) {
	for _, p := range []float64{0, 1, -0.5, 2} {
		if _, err := NewQuantile(p); err == nil {
			t.Errorf("p=%v should be rejected", p)
		}
	}
	if _, err := NewQuantile(0.5); err != nil {
		t.Fatal(err)
	}
}

func TestQuantileSmallCounts(t *testing.T) {
	e, _ := NewQuantile(0.5)
	if e.Value() != 0 || e.Count() != 0 {
		t.Error("empty estimator should read 0")
	}
	e.Observe(10)
	if e.Value() != 10 {
		t.Errorf("single sample median = %v", e.Value())
	}
	e.Observe(20)
	e.Observe(30)
	// exact median of {10,20,30} with nearest rank = 20
	if e.Value() != 20 {
		t.Errorf("median of 3 = %v", e.Value())
	}
}

func TestQuantileUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	e, _ := NewQuantile(0.5)
	var all []float64
	for i := 0; i < 20000; i++ {
		x := rng.Float64() * 100
		e.Observe(x)
		all = append(all, x)
	}
	sort.Float64s(all)
	exact := all[len(all)/2]
	if math.Abs(e.Value()-exact) > 2.0 {
		t.Errorf("P² median %v vs exact %v", e.Value(), exact)
	}
}

func TestQuantileP99SkewedData(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	e, _ := NewQuantile(0.99)
	var all []float64
	for i := 0; i < 50000; i++ {
		// Exponential-ish latencies.
		x := rng.ExpFloat64() * 10
		e.Observe(x)
		all = append(all, x)
	}
	sort.Float64s(all)
	exact := all[int(0.99*float64(len(all)))]
	rel := math.Abs(e.Value()-exact) / exact
	if rel > 0.15 {
		t.Errorf("P² p99 %v vs exact %v (rel err %.2f)", e.Value(), exact, rel)
	}
	if e.Count() != 50000 {
		t.Errorf("Count = %d", e.Count())
	}
}

func TestQuantileMonotoneInputs(t *testing.T) {
	e, _ := NewQuantile(0.9)
	for i := 1; i <= 1000; i++ {
		e.Observe(float64(i))
	}
	v := e.Value()
	if v < 850 || v > 950 {
		t.Errorf("p90 of 1..1000 = %v, want ~900", v)
	}
}

func TestQuantileConstantInput(t *testing.T) {
	e, _ := NewQuantile(0.5)
	for i := 0; i < 100; i++ {
		e.Observe(42)
	}
	if e.Value() != 42 {
		t.Errorf("constant stream median = %v", e.Value())
	}
}
