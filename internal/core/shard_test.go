package core

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"aladdin/internal/constraint"
	"aladdin/internal/resource"
	"aladdin/internal/topology"
	"aladdin/internal/workload"
)

// shardCluster builds a cluster with one sub-cluster per 8 machines
// (4 per rack, 2 racks per sub), so shard counts up to machines/8 are
// exercisable.
func shardCluster(machines int) *topology.Cluster {
	return topology.New(topology.Config{
		Machines:        machines,
		MachinesPerRack: 4,
		RacksPerCluster: 2,
		Capacity:        resource.Cores(32, 64*1024),
	})
}

func newSharded(t *testing.T, opts Options, w *workload.Workload, cl *topology.Cluster) *ShardedSession {
	t.Helper()
	s, err := NewSharded(opts, w, cl)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// mustCleanSharded asserts the sharded session is fully audit-clean:
// every shard's invariant auditor, the wrapper coherence check, flow
// conservation, and global anti-affinity over the merged assignment in
// parent machine-id space (the cross-shard view no single shard can
// check on its own).
func mustCleanSharded(t *testing.T, s *ShardedSession, step int, op string) {
	t.Helper()
	if vs := s.AuditInvariants(); len(vs) != 0 {
		t.Fatalf("step %d (%s): sharded invariants broken: %v", step, op, vs)
	}
	if err := s.FlowConservation(); err != nil {
		t.Fatalf("step %d (%s): flow conservation: %v", step, op, err)
	}
	if vs := constraint.AuditAntiAffinity(s.w, s.Assignment()); len(vs) != 0 {
		t.Fatalf("step %d (%s): global anti-affinity violated: %v", step, op, vs)
	}
}

func TestShardedConstruction(t *testing.T) {
	w := sessionWorkload()
	cl := shardCluster(32) // 4 sub-clusters
	cases := []struct{ shards, want int }{
		{0, 1}, {1, 1}, {2, 2}, {4, 4}, {8, 4}, {-3, 1},
	}
	for _, c := range cases {
		opts := DefaultOptions()
		opts.Shards = c.shards
		s := newSharded(t, opts, w, cl)
		if got := s.NumShards(); got != c.want {
			t.Errorf("Shards=%d: NumShards=%d, want %d", c.shards, got, c.want)
		}
		// The shard clusters partition the parent: every machine
		// appears exactly once, in parent traversal order within its
		// shard, and capacities carry over.
		total := 0
		seen := make(map[string]bool)
		for _, shc := range s.ShardClusters() {
			total += shc.Size()
			for _, m := range shc.Machines() {
				if seen[m.Name] {
					t.Fatalf("Shards=%d: machine %s in two shards", c.shards, m.Name)
				}
				seen[m.Name] = true
			}
		}
		if total != cl.Size() {
			t.Errorf("Shards=%d: shard machines total %d, parent has %d", c.shards, total, cl.Size())
		}
		// Round-trip the routing tables.
		for gid := 0; gid < cl.Size(); gid++ {
			g := topology.MachineID(gid)
			sh, lid, err := s.locate(g)
			if err != nil {
				t.Fatalf("locate(%d): %v", gid, err)
			}
			if got := sh.cluster.Machine(lid).Name; got != cl.Machine(g).Name {
				t.Errorf("machine %d routes to %s, want %s", gid, got, cl.Machine(g).Name)
			}
		}
	}

	// Sharding an already-populated cluster must be rejected: the
	// shard copies would silently drop the live allocations.
	dirty := shardCluster(16)
	if err := dirty.Machine(0).Allocate("x", resource.Cores(1, 1024)); err != nil {
		t.Fatal(err)
	}
	if _, err := NewSharded(DefaultOptions(), w, dirty); err == nil {
		t.Error("NewSharded accepted a cluster with live allocations")
	}
}

// TestShardedMatchesSequential drives an identical mixed schedule
// through a concurrent and a sequential sharded session for several
// shard counts: the two must agree on every error outcome and stay
// byte-identical on the merged assignment after every operation.
func TestShardedMatchesSequential(t *testing.T) {
	for _, k := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("shards=%d", k), func(t *testing.T) {
			w := sessionWorkload()
			par := newSharded(t, shardedOpts(k, false), w, shardCluster(32))
			seq := newSharded(t, shardedOpts(k, true), w, shardCluster(32))
			containers := w.Containers()
			// A fixed schedule with placement churn, failures in both
			// shard ranges, recoveries and removals.
			schedule := []byte{0, 4, 8, 12, 16, 20, 24, 28, 32, 2, 66, 1, 5, 3, 67, 0, 4, 44, 40, 2, 14, 3, 15}
			for i, b := range schedule {
				op, arg := int(b&3), int(b>>2)
				var errs [2]error
				for si, s := range []*ShardedSession{par, seq} {
					switch op {
					case 0:
						c := containers[arg%len(containers)]
						if !s.Placed(c.ID) {
							_, errs[si] = s.Place([]*workload.Container{c})
						}
					case 1:
						c := containers[arg%len(containers)]
						if s.Placed(c.ID) {
							errs[si] = s.Remove(c.ID)
						}
					case 2:
						_, errs[si] = s.FailMachine(topology.MachineID(arg % 32))
					case 3:
						_, errs[si] = s.RecoverMachine(topology.MachineID(arg % 32))
					}
				}
				if (errs[0] == nil) != (errs[1] == nil) {
					t.Fatalf("step %d: concurrent err %v, sequential err %v", i, errs[0], errs[1])
				}
				pa, sa := par.Assignment(), seq.Assignment()
				if len(pa) != len(sa) {
					t.Fatalf("step %d: concurrent placed %d, sequential %d", i, len(pa), len(sa))
				}
				for id, m := range pa {
					if sm, ok := sa[id]; !ok || sm != m {
						t.Fatalf("step %d: container %s on machine %d concurrent, %d sequential", i, id, m, sm)
					}
				}
				mustCleanSharded(t, par, i, "op")
				mustCleanSharded(t, seq, i, "op")
			}
		})
	}
}

func shardedOpts(k int, sequential bool) Options {
	o := DefaultOptions()
	o.Shards = k
	o.SequentialShards = sequential
	return o
}

// TestShardedSpill overfills an application's home shard: the
// overflow must land on other shards instead of stranding, and the
// batch result must report every container placed.
func TestShardedSpill(t *testing.T) {
	// Shard 0 owns 8 machines × 32 cores = 256 cores; 20 replicas of
	// 16 cores need 320, so at least 4 must spill to shard 1.
	w := workload.MustNew([]*workload.App{
		{ID: "big", Demand: resource.Cores(16, 16*1024), Replicas: 20},
	})
	s := newSharded(t, shardedOpts(2, false), w, shardCluster(16))
	res, err := s.Place(w.Containers())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Undeployed) != 0 {
		t.Fatalf("undeployed with cluster-wide capacity available: %v", res.Undeployed)
	}
	if got := len(res.Assignment); got != 20 {
		t.Fatalf("batch assignment has %d containers, want 20", got)
	}
	spilled := 0
	for _, m := range res.Assignment {
		if int(m) >= 8 {
			spilled++
		}
	}
	if spilled == 0 {
		t.Error("no container spilled to shard 1 despite home-shard overflow")
	}
	mustCleanSharded(t, s, 0, "spill")
}

// TestShardedCrossShardAntiAffinity is the DL-boundary satellite: an
// application whose self-anti-affine replicas cannot all fit in its
// home shard must span sub-clusters without ever co-locating two
// replicas on one machine, checked on the merged global assignment.
func TestShardedCrossShardAntiAffinity(t *testing.T) {
	// 16 self-anti-affine replicas vs a home shard of 8 machines: at
	// most 8 place at home, the rest must spread across other shards.
	w := workload.MustNew([]*workload.App{
		{ID: "aa", Demand: resource.Cores(2, 2048), Replicas: 16, AntiAffinitySelf: true},
	})
	s := newSharded(t, shardedOpts(4, false), w, shardCluster(32))
	res, err := s.Place(w.Containers())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Undeployed) != 0 {
		t.Fatalf("undeployed: %v (32 machines can host 16 anti-affine replicas)", res.Undeployed)
	}
	byMachine := make(map[topology.MachineID]int)
	shardsUsed := make(map[int32]bool)
	for _, m := range res.Assignment {
		byMachine[m]++
		if byMachine[m] > 1 {
			t.Fatalf("machine %d hosts %d replicas of a self-anti-affine app", m, byMachine[m])
		}
		shardsUsed[s.ownerOf[m]] = true
	}
	if len(shardsUsed) < 2 {
		t.Errorf("app should span shards (home shard holds at most 8 of 16), used %d", len(shardsUsed))
	}
	mustCleanSharded(t, s, 0, "anti-affinity")
}

// TestShardedFailRecoverRouting exercises machine failure and repair
// through the global-id routing layer on a non-zero shard.
func TestShardedFailRecoverRouting(t *testing.T) {
	w := sessionWorkload()
	s := newSharded(t, shardedOpts(2, false), w, shardCluster(16))
	if _, err := s.Place(w.Containers()); err != nil {
		t.Fatal(err)
	}
	mustCleanSharded(t, s, 0, "place")

	// Find a hosting machine owned by shard 1 (global ids 8..15).
	var target topology.MachineID = topology.Invalid
	for id, m := range s.Assignment() {
		if int(m) >= 8 {
			target = m
			_ = id
			break
		}
	}
	if target == topology.Invalid {
		t.Skip("no container landed on shard 1 for this workload")
	}
	res, err := s.FailMachine(target)
	if err != nil {
		t.Fatalf("FailMachine(%d): %v", target, err)
	}
	if res.Machine != target {
		t.Errorf("FailureResult.Machine = %d, want the global id %d", res.Machine, target)
	}
	if res.Evicted == 0 {
		t.Error("failed a hosting machine but evicted nothing")
	}
	mustCleanSharded(t, s, 1, "fail")
	for _, m := range s.Assignment() {
		if m == target {
			t.Fatalf("container still assigned to failed machine %d", target)
		}
	}
	if _, err := s.FailMachine(target); err == nil {
		t.Error("second FailMachine on a down machine should error")
	}
	if _, err := s.RecoverMachine(target); err != nil {
		t.Fatalf("RecoverMachine(%d): %v", target, err)
	}
	if _, err := s.RecoverMachine(target); err == nil {
		t.Error("recovering an up machine should error")
	}
	if _, err := s.FailMachine(topology.MachineID(999)); err == nil {
		t.Error("failing an unknown machine should error")
	}
	mustCleanSharded(t, s, 2, "recover")
}

// TestShardedRemove round-trips departure and re-arrival through the
// ownership table.
func TestShardedRemove(t *testing.T) {
	w := sessionWorkload()
	s := newSharded(t, shardedOpts(2, false), w, shardCluster(16))
	if _, err := s.Place(w.Containers()); err != nil {
		t.Fatal(err)
	}
	id := w.Containers()[0].ID
	if err := s.Remove(id); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if s.Placed(id) {
		t.Fatalf("container %s still placed after Remove", id)
	}
	if err := s.Remove(id); err == nil {
		t.Error("second Remove should error")
	}
	if err := s.Remove("nope/0"); err == nil {
		t.Error("removing an unknown container should error")
	}
	if _, err := s.Place([]*workload.Container{w.Containers()[0]}); err != nil {
		t.Fatalf("re-place after Remove: %v", err)
	}
	mustCleanSharded(t, s, 0, "remove")
}

// TestShardedConcurrentFailRecoverRacingPlace is the -race satellite:
// placements fan out across shards while machine failures and repairs
// hammer the same shards from other goroutines.  After the storm
// drains, every shard and the wrapper tables must be audit-clean and
// flow-conserving.  Shard counts cover the CI matrix {1, 4,
// GOMAXPROCS}.
func TestShardedConcurrentFailRecoverRacingPlace(t *testing.T) {
	counts := map[int]bool{1: true, 4: true, runtime.GOMAXPROCS(0): true}
	for k := range counts {
		k := k
		t.Run(fmt.Sprintf("shards=%d", k), func(t *testing.T) {
			apps := make([]*workload.App, 16)
			for i := range apps {
				apps[i] = &workload.App{
					ID:               fmt.Sprintf("app%02d", i),
					Demand:           resource.Cores(2, 4096),
					Replicas:         8,
					AntiAffinitySelf: i%3 == 0,
				}
			}
			w := workload.MustNew(apps)
			cl := shardCluster(64)
			s := newSharded(t, shardedOpts(k, false), w, cl)

			var wg sync.WaitGroup
			wg.Add(2)
			go func() {
				defer wg.Done()
				containers := w.Containers()
				for i := 0; i < len(containers); i += 4 {
					end := i + 4
					if end > len(containers) {
						end = len(containers)
					}
					if _, err := s.Place(containers[i:end]); err != nil {
						t.Errorf("Place: %v", err)
						return
					}
				}
			}()
			go func() {
				defer wg.Done()
				// Deterministic LCG over machine ids; every failed
				// machine is recovered before the goroutine exits.
				x := uint32(12345)
				for i := 0; i < 64; i++ {
					x = x*1664525 + 1013904223
					m := topology.MachineID(x % 64)
					if _, err := s.FailMachine(m); err == nil {
						_, _ = s.RecoverMachine(m)
					}
				}
			}()
			wg.Wait()
			mustCleanSharded(t, s, 0, "drain")
		})
	}
}
