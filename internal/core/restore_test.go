package core

import (
	"reflect"
	"testing"

	"aladdin/internal/obs"
	"aladdin/internal/resource"
	"aladdin/internal/topology"
	"aladdin/internal/trace"
	"aladdin/internal/workload"
)

// appBatches splits the workload into per-app batches in app order —
// the batch boundaries a warm restart must preserve, because
// preemption victims requeue behind the current batch's tail.
func appBatches(w *workload.Workload) [][]*workload.Container {
	var out [][]*workload.Container
	for _, a := range w.Apps() {
		out = append(out, appContainers(w, a.ID))
	}
	return out
}

// assertSameSessionState fails the test unless both sessions hold an
// identical assignment, undeployed ledger and requeue ledger, and
// both pass the invariant audit.
func assertSameSessionState(t *testing.T, want, got *Session) {
	t.Helper()
	ws, gs := want.ExportState(), got.ExportState()
	if !reflect.DeepEqual(ws.Assignment, gs.Assignment) {
		t.Fatalf("assignments diverge:\n never-restarted: %v\n restored: %v", ws.Assignment, gs.Assignment)
	}
	if !reflect.DeepEqual(ws.Undeployed, gs.Undeployed) {
		t.Fatalf("undeployed ledgers diverge:\n never-restarted: %v\n restored: %v", ws.Undeployed, gs.Undeployed)
	}
	if !reflect.DeepEqual(ws.Requeues, gs.Requeues) {
		t.Fatalf("requeue ledgers diverge:\n never-restarted: %v\n restored: %v", ws.Requeues, gs.Requeues)
	}
	if vs := want.AuditInvariants(); len(vs) != 0 {
		t.Fatalf("never-restarted session violations: %v", vs)
	}
	if vs := got.AuditInvariants(); len(vs) != 0 {
		t.Fatalf("restored session violations: %v", vs)
	}
	if err := got.FlowConservation(); err != nil {
		t.Fatalf("restored session flow conservation: %v", err)
	}
}

// TestRestoreSessionEquivalence is the tentpole proof: checkpoint a
// session mid-trace, restore it into a fresh Session, replay the
// remaining batches on both, and require byte-identical outcomes.
func TestRestoreSessionEquivalence(t *testing.T) {
	w := trace.MustGenerate(trace.Scaled(7, 300))
	batches := appBatches(w)
	split := len(batches) / 2

	ref := NewSession(DefaultOptions(), w, smallCluster(48))
	for _, b := range batches {
		if _, err := ref.Place(b); err != nil {
			t.Fatal(err)
		}
	}

	warm := NewSession(DefaultOptions(), w, smallCluster(48))
	for _, b := range batches[:split] {
		if _, err := warm.Place(b); err != nil {
			t.Fatal(err)
		}
	}
	st := warm.ExportState()
	fresh, err := topology.FromSpecs(warm.Cluster().Specs())
	if err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreSession(DefaultOptions(), w, fresh, st)
	if err != nil {
		t.Fatal(err)
	}
	// Restored state matches the captured state before any new work.
	if !reflect.DeepEqual(restored.ExportState(), st) {
		t.Fatal("restored state differs from captured state")
	}
	for _, b := range batches[split:] {
		if _, err := restored.Place(b); err != nil {
			t.Fatal(err)
		}
	}
	assertSameSessionState(t, ref, restored)
}

// TestRestoreSessionEquivalenceWithFailures checkpoints while failed
// machines are live (down at capture), restores, then recovers on
// both timelines and keeps scheduling — outcomes must stay identical.
func TestRestoreSessionEquivalenceWithFailures(t *testing.T) {
	w := trace.MustGenerate(trace.Scaled(11, 300))
	batches := appBatches(w)
	split := len(batches) / 2
	failed := []topology.MachineID{3, 17}

	run := func(restart bool) *Session {
		s := NewSession(DefaultOptions(), w, smallCluster(48))
		for _, b := range batches[:split] {
			if _, err := s.Place(b); err != nil {
				t.Fatal(err)
			}
		}
		for _, id := range failed {
			if _, err := s.FailMachine(id); err != nil {
				t.Fatal(err)
			}
		}
		if restart {
			st := s.ExportState()
			fresh, err := topology.FromSpecs(s.Cluster().Specs())
			if err != nil {
				t.Fatal(err)
			}
			for _, id := range failed {
				if fresh.Machine(id).Up() {
					t.Fatalf("machine %d should restore down", id)
				}
			}
			s, err = RestoreSession(DefaultOptions(), w, fresh, st)
			if err != nil {
				t.Fatal(err)
			}
		}
		for _, b := range batches[split : split+len(batches[split:])/2] {
			if _, err := s.Place(b); err != nil {
				t.Fatal(err)
			}
		}
		for _, id := range failed {
			if _, err := s.RecoverMachine(id); err != nil {
				t.Fatal(err)
			}
		}
		for _, b := range batches[split+len(batches[split:])/2:] {
			if _, err := s.Place(b); err != nil {
				t.Fatal(err)
			}
		}
		return s
	}
	assertSameSessionState(t, run(false), run(true))
}

// TestExportStateCapturesRequeues forces a cross-batch preemption and
// verifies the consumed requeue budget survives a restore — without
// it, a restored session could preempt a victim past its budget.
func TestExportStateCapturesRequeues(t *testing.T) {
	w := workload.MustNew([]*workload.App{
		{ID: "hog", Demand: resource.Cores(12, 8192), Replicas: 1, Priority: workload.PriorityLow},
		{ID: "vip", Demand: resource.Cores(10, 8192), Replicas: 1, Priority: workload.PriorityHigh},
	})
	cl := topology.New(topology.Config{
		Machines: 1, MachinesPerRack: 1, RacksPerCluster: 1,
		Capacity: resource.Cores(16, 32*1024),
	})
	s := NewSession(DefaultOptions(), w, cl)
	if _, err := s.Place(appContainers(w, "hog")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Place(appContainers(w, "vip")); err != nil {
		t.Fatal(err)
	}
	st := s.ExportState()
	if st.Requeues["hog/0"] == 0 {
		t.Fatalf("preempted hog should have consumed requeue budget, got %v", st.Requeues)
	}
	if len(st.Undeployed) != 1 || st.Undeployed[0] != "hog/0" {
		t.Fatalf("undeployed = %v, want [hog/0]", st.Undeployed)
	}
	fresh, err := topology.FromSpecs(cl.Specs())
	if err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreSession(DefaultOptions(), w, fresh, st)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(restored.ExportState(), st) {
		t.Fatal("requeue ledger lost across restore")
	}
}

func TestRestoreSessionValidation(t *testing.T) {
	w := sessionWorkload()
	good := func() *SessionState {
		return &SessionState{
			Assignment: map[string]topology.MachineID{"web/0": 0},
		}
	}
	fresh := func() *topology.Cluster { return smallCluster(4) }

	if _, err := RestoreSession(DefaultOptions(), w, fresh(), nil); err == nil {
		t.Error("nil state should fail")
	}

	st := good()
	st.Assignment["web/0"] = 999
	if _, err := RestoreSession(DefaultOptions(), w, fresh(), st); err == nil {
		t.Error("unknown machine should fail")
	}

	st = good()
	st.Assignment["ghost/0"] = 0
	if _, err := RestoreSession(DefaultOptions(), w, fresh(), st); err == nil {
		t.Error("unknown container should fail")
	}

	st = good()
	cl := fresh()
	cl.Machine(0).MarkDown()
	if _, err := RestoreSession(DefaultOptions(), w, cl, st); err == nil {
		t.Error("placement on down machine should fail")
	}

	st = good()
	st.Undeployed = []string{"web/0"}
	if _, err := RestoreSession(DefaultOptions(), w, fresh(), st); err == nil {
		t.Error("placed+undeployed overlap should fail")
	}

	st = good()
	st.Undeployed = []string{"ghost/1"}
	if _, err := RestoreSession(DefaultOptions(), w, fresh(), st); err == nil {
		t.Error("unknown undeployed container should fail")
	}

	st = good()
	st.Requeues = map[string]int{"web/1": -1}
	if _, err := RestoreSession(DefaultOptions(), w, fresh(), st); err == nil {
		t.Error("negative requeue count should fail")
	}

	st = good()
	st.Requeues = map[string]int{"ghost/2": 1}
	if _, err := RestoreSession(DefaultOptions(), w, fresh(), st); err == nil {
		t.Error("unknown requeue container should fail")
	}
}

// TestRestoreWarmILCache proves the checkpointed IL cache is worth
// carrying: a warm restore (state with ILFailed) and a cold restore
// (the same state with ILFailed stripped, as an old-format snapshot
// would deliver) produce byte-identical placements for the same
// follow-up batch, but the warm session answers the unplaceable app's
// remaining replicas from the restored cache — strictly fewer
// aladdin_il_cache_misses_total than the cold session, which must
// re-prove unplaceability by searching.
func TestRestoreWarmILCache(t *testing.T) {
	w := workload.MustNew([]*workload.App{
		{ID: "giant", Demand: resource.Cores(64, 128*1024), Replicas: 4},
		{ID: "small", Demand: resource.Cores(2, 4096), Replicas: 4},
	})
	cl := topology.New(topology.Config{
		Machines:        8,
		MachinesPerRack: 4,
		Capacity:        resource.Cores(32, 64*1024),
	})
	s := NewSession(DefaultOptions(), w, cl)
	// giant/0 misses the IL cache and is proven unplaceable (64 cores
	// on 32-core machines); giant/1 is skipped off the fresh note.
	batch := append(appContainers(w, "small"), appContainers(w, "giant")[:2]...)
	if _, err := s.Place(batch); err != nil {
		t.Fatal(err)
	}
	st := s.ExportState()
	if !reflect.DeepEqual(st.ILFailed, []string{"giant"}) {
		t.Fatalf("captured ILFailed = %v, want [giant]", st.ILFailed)
	}

	restore := func(st *SessionState) (*Session, *obs.Registry) {
		t.Helper()
		reg := obs.NewRegistry()
		opts := DefaultOptions()
		opts.Metrics = reg
		fresh, err := topology.FromSpecs(cl.Specs())
		if err != nil {
			t.Fatal(err)
		}
		rs, err := RestoreSession(opts, w, fresh, st)
		if err != nil {
			t.Fatal(err)
		}
		return rs, reg
	}
	coldSt := *st
	coldSt.ILFailed = nil // what an ILFailed-less v2 snapshot restores to
	warm, warmReg := restore(st)
	cold, coldReg := restore(&coldSt)

	// Same follow-up batch on both: the remaining giant replicas.
	rest := appContainers(w, "giant")[2:]
	wres, err := warm.Place(rest)
	if err != nil {
		t.Fatal(err)
	}
	cres, err := cold.Place(rest)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(wres.Undeployed, cres.Undeployed) {
		t.Fatalf("follow-up batches diverge: warm undeployed %v, cold %v", wres.Undeployed, cres.Undeployed)
	}
	assertSameSessionState(t, cold, warm)

	warmMiss := warmReg.Snapshot().Counters["aladdin_il_cache_misses_total"]
	coldMiss := coldReg.Snapshot().Counters["aladdin_il_cache_misses_total"]
	if warmMiss >= coldMiss {
		t.Fatalf("warm restore IL misses = %d, want strictly fewer than cold restore's %d", warmMiss, coldMiss)
	}
	warmHit := warmReg.Snapshot().Counters["aladdin_il_cache_hits_total"]
	if warmHit == 0 {
		t.Fatal("warm restore recorded no IL cache hits; restored cache was not consulted")
	}
}
