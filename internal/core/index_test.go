package core

import (
	"fmt"
	"math/rand"
	"testing"

	"aladdin/internal/resource"
	"aladdin/internal/topology"
)

// idxFixture builds a cluster with a deterministic pseudo-random
// occupancy and an index maintained incrementally through every
// mutation, so tests can compare it against ground truth.
func idxFixture(t *testing.T, machines int, seed int64) (*topology.Cluster, *capIndex) {
	t.Helper()
	cl := topology.New(topology.Config{
		Machines:        machines,
		MachinesPerRack: 4,
		RacksPerCluster: 4,
		Capacity:        resource.Cores(32, 64*1024),
	})
	x := newCapIndex(cl)
	rng := rand.New(rand.NewSource(seed))
	next := 0
	for i := 0; i < machines*3; i++ {
		mid := topology.MachineID(rng.Intn(machines))
		m := cl.Machine(mid)
		if rng.Intn(4) == 0 && m.NumContainers() > 0 {
			ids := m.ContainerIDs()
			if _, err := m.Release(ids[rng.Intn(len(ids))]); err != nil {
				t.Fatal(err)
			}
		} else {
			d := resource.Cores(int64(1+rng.Intn(8)), int64(1+rng.Intn(8))*1024)
			if m.Fits(d) {
				if err := m.Allocate(fmt.Sprintf("c-%d", next), d); err != nil {
					t.Fatal(err)
				}
				next++
			}
		}
		x.update(mid)
	}
	return cl, x
}

// TestCapIndexIncrementalMatchesRebuild mutates machines through a
// long pseudo-random allocate/release sequence, maintaining the index
// incrementally, then verifies every node equals the from-scratch
// rebuild — the invariant the scheduler's safety valve assumes it is
// merely re-asserting.
func TestCapIndexIncrementalMatchesRebuild(t *testing.T) {
	cl, x := idxFixture(t, 48, 7)
	fresh := newCapIndex(cl)
	for i := range x.nodes {
		if x.nodes[i] != fresh.nodes[i] {
			t.Fatalf("node %d drifted: incremental %+v, rebuilt %+v", i, x.nodes[i], fresh.nodes[i])
		}
	}
}

// TestCapIndexRangeMaxFree checks the rack and sub-cluster range
// queries against a direct scan of machine state.
func TestCapIndexRangeMaxFree(t *testing.T) {
	cl, x := idxFixture(t, 48, 11)
	for _, rname := range cl.Racks() {
		var want resource.Vector
		for _, mid := range cl.Rack(rname).Machines {
			want = want.Max(cl.Machine(mid).Free())
		}
		if got := x.rangeMaxFree(x.tr.RackSpan[rname]); got != want {
			t.Fatalf("rack %s: rangeMaxFree %s, scan %s", rname, got, want)
		}
	}
	for _, gname := range cl.SubClusters() {
		var want resource.Vector
		for _, rname := range cl.SubCluster(gname).Racks {
			for _, mid := range cl.Rack(rname).Machines {
				want = want.Max(cl.Machine(mid).Free())
			}
		}
		if got := x.rangeMaxFree(x.tr.SubSpan[gname]); got != want {
			t.Fatalf("sub-cluster %s: rangeMaxFree %s, scan %s", gname, got, want)
		}
	}
}

// funcVisitor adapts a plain function to the idxVisitor interface for
// tests (production visitors are reusable structs; see admitState).
type funcVisitor func(topology.MachineID) bool

func (f funcVisitor) visit(m topology.MachineID) bool { return f(m) }

// TestCapIndexFirstFitMatchesScan compares the tree descent against a
// brute-force first-fit over the traversal, across demand sizes and
// both occupancy views.
func TestCapIndexFirstFitMatchesScan(t *testing.T) {
	cl, x := idxFixture(t, 48, 13)
	accept := funcVisitor(func(topology.MachineID) bool { return true })
	for cpu := int64(1); cpu <= 32; cpu += 3 {
		demand := resource.Cores(cpu, cpu*1024)
		for _, usedOnly := range []bool{false, true} {
			want := topology.Invalid
			for _, mid := range x.tr.Order {
				m := cl.Machine(mid)
				if usedOnly && m.NumContainers() == 0 {
					continue
				}
				if m.Fits(demand) {
					want = mid
					break
				}
			}
			visit := accept
			if usedOnly {
				visit = funcVisitor(func(mid topology.MachineID) bool {
					return cl.Machine(mid).NumContainers() > 0
				})
			}
			if got := x.firstFit(x.all(), demand, usedOnly, visit); got != want {
				t.Fatalf("firstFit(cpu=%d, usedOnly=%v) = %d, want %d", cpu, usedOnly, got, want)
			}
		}
	}
}

// TestCapIndexBestFitMatchesScan compares the branch-and-bound best
// fit against a brute-force minimum of (leftover CPU, machine ID).
func TestCapIndexBestFitMatchesScan(t *testing.T) {
	cl, x := idxFixture(t, 48, 17)
	for cpu := int64(1); cpu <= 32; cpu += 3 {
		demand := resource.Cores(cpu, cpu*1024)
		want := topology.Invalid
		var wantLeft int64 = 1<<62 - 1
		for _, mid := range x.tr.Order {
			m := cl.Machine(mid)
			if !m.Fits(demand) {
				continue
			}
			left := m.Free().Dim(resource.CPU) - cpu
			if left < wantLeft || (left == wantLeft && mid < want) {
				want, wantLeft = mid, left
			}
		}
		st := newBestFitState()
		x.bestFit(x.all(), demand, false, funcVisitor(func(topology.MachineID) bool { return true }), &st)
		if st.id != want {
			t.Fatalf("bestFit(cpu=%d) = %d, want %d", cpu, st.id, want)
		}
	}
}
