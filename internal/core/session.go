package core

import (
	"fmt"
	"time"

	"aladdin/internal/constraint"
	"aladdin/internal/sched"
	"aladdin/internal/topology"
	"aladdin/internal/workload"
)

// Session is the online face of Aladdin (§VI: "Aladdin is an online
// scheduling system"): it keeps the flow network, blacklists and
// aggregates alive across scheduling rounds so LLA batches can arrive
// and depart over time without rebuilding state.  A Session is not
// safe for concurrent use; the production deployment runs one
// scheduler manager (SM) per cluster (§III.A).
type Session struct {
	opts    Options
	w       *workload.Workload
	cluster *topology.Cluster
	r       *run

	placed map[string]bool
}

// NewSession builds a session over a workload universe (every app
// that may ever arrive; constraints need the full registry) and a
// cluster.  The cluster may already host residents unknown to the
// workload; they are treated as immovable.
func NewSession(opts Options, w *workload.Workload, cluster *topology.Cluster) *Session {
	s := &Session{
		opts:    opts,
		w:       w,
		cluster: cluster,
		placed:  make(map[string]bool),
	}
	s.r = &run{
		opts:       opts,
		w:          w,
		cluster:    cluster,
		net:        buildNetwork(w, cluster),
		ladder:     constraint.NewWeightLadder(w, opts.WeightBase),
		blacklist:  constraint.NewBlacklist(w, cluster.Size()),
		assignment: make(constraint.Assignment),
		byID:       make(map[string]*workload.Container, w.NumContainers()),
		requeues:   make(map[string]int),
	}
	for _, c := range w.Containers() {
		s.r.byID[c.ID] = c
	}
	s.r.search = &searcher{
		opts:      opts,
		cluster:   cluster,
		agg:       newAggregates(cluster),
		blacklist: s.r.blacklist,
		il:        newILCache(),
	}
	return s
}

// Assignment returns the live container→machine map.  The returned
// map is the session's own; callers must not mutate it.
func (s *Session) Assignment() constraint.Assignment { return s.r.assignment }

// Place schedules a batch of containers against the current state.
// Each container must belong to the session's workload and not be
// currently placed.  The result covers only this batch.
func (s *Session) Place(batch []*workload.Container) (*sched.Result, error) {
	start := time.Now()
	r := s.r
	migBefore, preBefore := r.migrations, r.preempts
	exploredBefore := r.search.explored

	queue := make([]*workload.Container, 0, len(batch))
	for _, c := range batch {
		if r.byID[c.ID] == nil {
			return nil, fmt.Errorf("core: session: container %s not in workload universe", c.ID)
		}
		if s.placed[c.ID] {
			return nil, fmt.Errorf("core: session: container %s already placed", c.ID)
		}
		queue = append(queue, c)
	}

	var undeployed []string
	batchSet := make(map[string]bool, len(batch))
	for _, c := range batch {
		batchSet[c.ID] = true
	}
	for i := 0; i < len(queue); i++ {
		c := queue[i]
		if s.opts.IsomorphismLimiting && r.search.il.skip(c.App) {
			undeployed = append(undeployed, c.ID)
			continue
		}
		if m := r.search.findMachine(c, noExclusion); m != topology.Invalid {
			if err := r.place(c, m); err != nil {
				return nil, err
			}
			s.placed[c.ID] = true
			continue
		}
		if s.opts.Migration && r.tryMigration(c) {
			s.placed[c.ID] = true
			continue
		}
		if s.opts.Migration && r.tryDefrag(c) {
			s.placed[c.ID] = true
			continue
		}
		if s.opts.Preemption {
			if victims, ok := r.tryPreemption(c); ok {
				s.placed[c.ID] = true
				for _, v := range victims {
					// A victim from an earlier batch re-enters this
					// batch's queue.
					s.placed[v.ID] = false
					queue = append(queue, v)
				}
				continue
			}
		}
		if s.opts.IsomorphismLimiting {
			r.search.il.note(c.App)
		}
		undeployed = append(undeployed, c.ID)
	}

	// Per-batch assignment view: only this batch's containers (plus
	// any requeued victims that landed back).
	asg := make(constraint.Assignment)
	for id := range batchSet {
		if m, ok := r.assignment[id]; ok {
			asg[id] = m
		}
	}
	for _, id := range undeployed {
		delete(asg, id)
	}

	res := &sched.Result{
		Scheduler:   s.opts.Name(),
		Assignment:  asg,
		Undeployed:  undeployed,
		Migrations:  r.migrations - migBefore,
		Preemptions: r.preempts - preBefore,
		Elapsed:     time.Since(start),
		WorkUnits:   r.search.explored - exploredBefore,
	}
	// Total for this batch only.
	res.Total = len(batchSet)
	for _, id := range undeployed {
		if !batchSet[id] {
			res.Total++ // requeued victim stranded in this round
		}
	}
	return res, nil
}

// Remove handles a departure: the container's resources are released
// and its flow cancelled.  Removing an unplaced container is an
// error.
func (s *Session) Remove(containerID string) error {
	c := s.r.byID[containerID]
	if c == nil {
		return fmt.Errorf("core: session: unknown container %s", containerID)
	}
	m, ok := s.r.assignment[containerID]
	if !ok {
		return fmt.Errorf("core: session: container %s not placed", containerID)
	}
	if err := s.r.unplace(c, m); err != nil {
		return err
	}
	s.placed[containerID] = false
	return nil
}

// Consolidate runs the machine-draining pass on demand (e.g. during
// off-peak hours) and returns the number of migrations it performed.
func (s *Session) Consolidate() int {
	before := s.r.consolidations
	s.r.consolidate()
	return s.r.consolidations - before
}

// Audit re-checks the live placement for violations; a healthy
// session always returns an empty slice.
func (s *Session) Audit() []constraint.Violation {
	return constraint.AuditAntiAffinity(s.w, s.r.assignment)
}

// FlowConservation verifies Equation 2 on the live network.
func (s *Session) FlowConservation() error {
	return s.r.net.checkConservation()
}
