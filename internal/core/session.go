package core

import (
	"fmt"
	"time"

	"aladdin/internal/constraint"
	"aladdin/internal/sched"
	"aladdin/internal/topology"
	"aladdin/internal/workload"
)

// Session is the online face of Aladdin (§VI: "Aladdin is an online
// scheduling system"): it keeps the flow network, blacklists and
// aggregates alive across scheduling rounds so LLA batches can arrive
// and depart over time without rebuilding state.  A Session is not
// safe for concurrent use; the production deployment runs one
// scheduler manager (SM) per cluster (§III.A).
type Session struct {
	opts    Options
	w       *workload.Workload
	cluster *topology.Cluster
	r       *run

	placed map[string]bool
}

// NewSession builds a session over a workload universe (every app
// that may ever arrive; constraints need the full registry) and a
// cluster.  The cluster may already host residents unknown to the
// workload; they are treated as immovable.
func NewSession(opts Options, w *workload.Workload, cluster *topology.Cluster) *Session {
	s := &Session{
		opts:    opts,
		w:       w,
		cluster: cluster,
		placed:  make(map[string]bool),
	}
	s.r = newRun(opts, w, cluster)
	return s
}

// Assignment returns the container→machine map.  The map is shared
// until the next placement change; callers must not mutate it.
func (s *Session) Assignment() constraint.Assignment { return s.r.assignmentMap() }

// Placed reports whether the container is currently deployed, in O(1).
func (s *Session) Placed(containerID string) bool {
	c := s.r.byID[containerID]
	return c != nil && s.r.asg[c.Ord] != topology.Invalid
}

// Place schedules a batch of containers against the current state.
// Each container must belong to the session's workload and not be
// currently placed.  The result covers only this batch.
func (s *Session) Place(batch []*workload.Container) (*sched.Result, error) {
	start := time.Now()
	r := s.r
	migBefore, preBefore := r.migrations, r.preempts
	exploredBefore := r.search.explored

	queue := make([]*workload.Container, 0, len(batch))
	for _, c := range batch {
		if r.byID[c.ID] == nil {
			return nil, fmt.Errorf("core: session: container %s not in workload universe", c.ID)
		}
		if s.placed[c.ID] {
			return nil, fmt.Errorf("core: session: container %s already placed", c.ID)
		}
		queue = append(queue, c)
	}

	var undeployed []string
	batchSet := make(map[string]bool, len(batch))
	for _, c := range batch {
		batchSet[c.ID] = true
	}
	for i := 0; i < len(queue); i++ {
		c := queue[i]
		if s.opts.IsomorphismLimiting && r.search.il.skip(c.App) {
			undeployed = append(undeployed, c.ID)
			continue
		}
		if m := r.search.findMachine(c, noExclusion); m != topology.Invalid {
			if err := r.place(c, m); err != nil {
				return nil, err
			}
			s.placed[c.ID] = true
			continue
		}
		if s.opts.Migration && r.tryMigration(c) {
			s.placed[c.ID] = true
			continue
		}
		if s.opts.Migration && r.tryDefrag(c) {
			s.placed[c.ID] = true
			continue
		}
		if s.opts.Preemption {
			if victims, ok := r.tryPreemption(c); ok {
				s.placed[c.ID] = true
				for _, v := range victims {
					// A victim from an earlier batch re-enters this
					// batch's queue.
					s.placed[v.ID] = false
					queue = append(queue, v)
				}
				continue
			}
		}
		if s.opts.IsomorphismLimiting {
			r.search.il.note(c.App)
		}
		undeployed = append(undeployed, c.ID)
	}

	// Per-batch assignment view: only this batch's containers (plus
	// any requeued victims that landed back).
	asg := make(constraint.Assignment)
	for id := range batchSet {
		if c := r.byID[id]; c != nil {
			if m := r.asg[c.Ord]; m != topology.Invalid {
				asg[id] = m
			}
		}
	}
	for _, id := range undeployed {
		delete(asg, id)
	}

	res := &sched.Result{
		Scheduler:   s.opts.Name(),
		Assignment:  asg,
		Undeployed:  undeployed,
		Migrations:  r.migrations - migBefore,
		Preemptions: r.preempts - preBefore,
		Elapsed:     time.Since(start),
		WorkUnits:   r.search.explored - exploredBefore,
	}
	// Total for this batch only.
	res.Total = len(batchSet)
	for _, id := range undeployed {
		if !batchSet[id] {
			res.Total++ // requeued victim stranded in this round
		}
	}
	return res, nil
}

// Remove handles a departure: the container's resources are released
// and its flow cancelled.  Removing an unplaced container is an
// error.
func (s *Session) Remove(containerID string) error {
	c := s.r.byID[containerID]
	if c == nil {
		return fmt.Errorf("core: session: unknown container %s", containerID)
	}
	m := s.r.asg[c.Ord]
	if m == topology.Invalid {
		return fmt.Errorf("core: session: container %s not placed", containerID)
	}
	if err := s.r.unplace(c, m); err != nil {
		return err
	}
	s.placed[containerID] = false
	return nil
}

// Consolidate runs the machine-draining pass on demand (e.g. during
// off-peak hours) and returns the number of migrations it performed.
func (s *Session) Consolidate() int {
	before := s.r.consolidations
	s.r.consolidate()
	return s.r.consolidations - before
}

// Audit re-checks the live placement for violations; a healthy
// session always returns an empty slice.
func (s *Session) Audit() []constraint.Violation {
	return constraint.AuditAntiAffinity(s.w, s.r.assignmentMap())
}

// FlowConservation verifies Equation 2 on the live network.
func (s *Session) FlowConservation() error {
	return s.r.net.checkConservation()
}
