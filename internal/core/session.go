package core

import (
	"fmt"
	"sort"
	"time"

	"aladdin/internal/constraint"
	"aladdin/internal/obs"
	"aladdin/internal/sched"
	"aladdin/internal/topology"
	"aladdin/internal/workload"
)

// Ledger states: every container the session has seen is either
// currently deployed or was submitted and is now undeployed (arrival
// rejection, removal, preemption stranding, machine failure).  The
// zero value means never submitted, so a fresh ledger needs no fill.
// ledgerStranded is the undeployed sub-state for containers knocked
// out by a machine failure: they did not ask to leave, so recovery
// (and the rebalancer's stranded sweep) auto-retries them; every
// other undeployed path requires an explicit re-submission.
const (
	ledgerNever      uint8 = 0
	ledgerPlaced     uint8 = 1
	ledgerUndeployed uint8 = 2
	ledgerStranded   uint8 = 3
)

// Session is the online face of Aladdin (§VI: "Aladdin is an online
// scheduling system"): it keeps the flow network, blacklists and
// aggregates alive across scheduling rounds so LLA batches can arrive
// and depart over time without rebuilding state.  A Session is not
// safe for concurrent use; the production deployment runs one
// scheduler manager (SM) per cluster (§III.A).
//
// All per-batch working state (queue, undeployed list, result and its
// assignment map, batch-membership marks) lives in reusable scratch
// buffers on the session: once warm, a steady-state Place call that
// needs no migration or preemption performs zero heap allocations
// (enforced by TestSessionPlaceZeroAlloc and the allocguard CI gate).
type Session struct {
	opts    Options
	w       *workload.Workload
	cluster *topology.Cluster
	r       *run
	name    string

	// ledger records each container's submission state by ordinal —
	// the SoA replacement for the ID-keyed placed map.  ExportState
	// derives the undeployed set from it.
	//
	//aladdin:domain ord -> _ container ordinal → submission state
	ledger []uint8
	// strandedN counts ledgerStranded entries so RecoverMachine can
	// skip the retry sweep in O(1) when nothing is stranded.
	strandedN int
	// disableRecoverRetry turns off RecoverMachine's automatic
	// stranded-container retry.  The sharded wrapper sets it on its
	// shard sessions: a shard cannot retry its own strandings because
	// the feasible destination may live on another shard, so the
	// wrapper runs the sweep itself across all shards.
	disableRecoverRetry bool

	// inBatch marks batch membership by ordinal: inBatch[ord] ==
	// batchEpoch means the container is part of the Place call in
	// flight.  An epoch bump resets all marks in O(1).
	batchEpoch uint32
	//aladdin:domain ord -> _ container ordinal → epoch of the batch in flight
	inBatch []uint32

	// Reusable per-batch scratch: the queue (batch plus requeued
	// preemption victims), the undeployed-ID buffer, and the returned
	// Result with its batch assignment view.  The Result a Place call
	// returns (and everything it references) is valid only until the
	// next Place call on the same session.
	queue    []*workload.Container
	undepBuf []string
	res      sched.Result
	resAsg   constraint.Assignment
}

// NewSession builds a session over a workload universe (every app
// that may ever arrive; constraints need the full registry) and a
// cluster.  The cluster may already host residents unknown to the
// workload; they are treated as immovable.
func NewSession(opts Options, w *workload.Workload, cluster *topology.Cluster) *Session {
	s := &Session{
		opts:    opts,
		w:       w,
		cluster: cluster,
		name:    opts.Name(),
		ledger:  make([]uint8, w.NumContainers()),
		inBatch: make([]uint32, w.NumContainers()),
	}
	s.r = newRun(opts, w, cluster)
	return s
}

// Assignment returns the container→machine map.  The map is shared
// until the next placement change; callers must not mutate it.
func (s *Session) Assignment() constraint.Assignment { return s.r.assignmentMap() }

// Placed reports whether the container is currently deployed, in O(1).
func (s *Session) Placed(containerID string) bool {
	c := s.r.byID[containerID]
	return c != nil && s.r.asg[c.Ord] != topology.Invalid
}

// AssignedOrd returns the machine hosting the container with the
// given workload ordinal, or topology.Invalid when it is not placed.
// It is the allocation-free counterpart of Assignment for wrappers
// (the sharded session) that track containers by ordinal and cannot
// afford an ID-keyed map probe per container.
func (s *Session) AssignedOrd(ord int) topology.MachineID {
	if ord < 0 || ord >= len(s.r.asg) {
		return topology.Invalid
	}
	return s.r.asg[ord]
}

// Place schedules a batch of containers against the current state.
// Each container must belong to the session's workload, appear at
// most once in the batch, and not be currently placed.  The result
// covers only this batch and — like every slice and map it references
// — is only valid until the next Place call on this session; callers
// that need to retain it across rounds must copy what they keep.
//
// On an internal placement error the containers placed before the
// error stay placed, and the partial Result is returned alongside the
// error so callers (the HTTP /place handler, the online simulator)
// can reconcile their view instead of silently diverging from the
// live cluster state.
//
//aladdin:hotpath steady-state placement is allocation-free (allocguard pins AllocsPerRun == 0)
func (s *Session) Place(batch []*workload.Container) (*sched.Result, error) {
	start := s.opts.now()
	r := s.r
	r.trc.Emit(obs.Event{Kind: obs.EvPlaceStart, Machine: -1, N: int64(len(batch))})
	migBefore, preBefore := r.migrations, r.preempts
	exploredBefore := r.search.explored

	s.batchEpoch++
	epoch := s.batchEpoch
	queue := s.queue[:0]
	canon := s.w.Containers()
	for _, c := range batch {
		if c == nil {
			return nil, fmt.Errorf("core: session: nil container in batch")
		}
		// Canonicalise to the workload's own container value: callers
		// may hand in equivalent copies, but all ordinal-keyed state
		// (assignment, network, ledger) is owned by the canonical one.
		if c.Ord < 0 || c.Ord >= len(canon) || canon[c.Ord] != c {
			cc := r.byID[c.ID]
			if cc == nil {
				return nil, fmt.Errorf("core: session: container %s not in workload universe", c.ID)
			}
			c = cc
		}
		if s.ledger[c.Ord] == ledgerPlaced {
			return nil, fmt.Errorf("core: session: container %s already placed", c.ID)
		}
		// The whole batch is validated before anything is placed, so a
		// duplicate must be caught here: by the time the pipeline saw
		// the second copy, the first would already be deployed and the
		// per-batch "not currently placed" check above would have
		// passed for both, double-booking the machine.
		if s.inBatch[c.Ord] == epoch {
			return nil, fmt.Errorf("core: session: container %s appears more than once in batch", c.ID)
		}
		s.inBatch[c.Ord] = epoch
		queue = append(queue, c)
	}
	s.queue = queue
	nBatch := len(queue)

	undeployed, err := s.placeQueue(queue, s.undepBuf[:0])
	s.undepBuf = undeployed

	// Per-batch assignment view: only this batch's containers (victims
	// from earlier batches that were displaced and re-placed stay in
	// the session-wide Assignment view, not this one).  queue's first
	// nBatch entries are exactly the batch, whatever re-queueing
	// happened behind them.
	if !s.opts.LeanPlaceResult {
		if s.resAsg == nil {
			s.resAsg = make(constraint.Assignment, nBatch) //aladdin:hotalloc-ok one-time lazy init; steady state clears and reuses the map
		}
		clear(s.resAsg)
		for _, c := range queue[:nBatch] {
			if m := r.asg[c.Ord]; m != topology.Invalid {
				s.resAsg[c.ID] = m
			}
		}
	}

	dt := s.opts.now().Sub(start)
	s.res = sched.Result{
		Scheduler:   s.name,
		Assignment:  s.resAsg,
		Undeployed:  undeployed,
		Migrations:  r.migrations - migBefore,
		Preemptions: r.preempts - preBefore,
		Elapsed:     dt,
		WallElapsed: dt,
		WorkUnits:   r.search.explored - exploredBefore,
	}
	r.met.placeBatch.Observe(s.res.Elapsed.Microseconds())
	// Total for this batch only, plus requeued victims from earlier
	// batches that this round stranded.
	s.res.Total = nBatch
	for _, id := range undeployed {
		if c := r.byID[id]; c == nil || s.inBatch[c.Ord] != epoch {
			s.res.Total++
		}
	}
	return &s.res, err
}

// setLedger writes a container's submission state, keeping the
// stranded count in sync.  Every ledger mutation funnels through here
// so strandedN can never drift.
//
//aladdin:hotpath runs per container in placeQueue; two comparisons, no allocations
func (s *Session) setLedger(ord int, state uint8) {
	if s.ledger[ord] == ledgerStranded {
		s.strandedN--
	}
	if state == ledgerStranded {
		s.strandedN++
	}
	s.ledger[ord] = state
}

// strand records one container as undeployed in the session ledger
// and appends its ID — every undeployed outcome (arrival rejection,
// IL skip, error unwinding) funnels through here so a checkpoint
// captures it and a warm restart knows not to re-attempt it.
func (s *Session) strand(undep []string, c *workload.Container) []string {
	s.setLedger(c.Ord, ledgerUndeployed)
	return append(undep, c.ID)
}

// placeQueue drives the normal placement pipeline — direct search,
// migration, defragmentation, preemption — over a queue of
// containers, re-queueing preemption victims behind the current tail,
// and returns the IDs left undeployed (appended to undep, which
// callers may pass with reused backing capacity).  It is the single
// path both batch arrivals (Place) and failure re-placement
// (FailMachine) run through, so every invariant (anti-affinity,
// priority safety, index freshness) holds identically for both.
//
// On an internal placement error, processing stops: the remaining
// queue is reported undeployed and the error returned.  Containers
// placed before the error stay placed.
func (s *Session) placeQueue(queue []*workload.Container, undep []string) ([]string, error) {
	r := s.r
	for i := 0; i < len(queue); i++ {
		c := queue[i]
		if s.opts.IsomorphismLimiting {
			if r.search.il.skip(r.search.refOf(c)) {
				r.met.ilHits.Inc()
				undep = s.strand(undep, c)
				continue
			}
			r.met.ilMisses.Inc()
		}
		if m := r.search.findMachine(c, noExclusion); m != topology.Invalid {
			if err := r.place(c, m); err != nil {
				for _, rest := range queue[i:] {
					undep = s.strand(undep, rest)
				}
				return undep, err
			}
			s.setLedger(c.Ord, ledgerPlaced)
			continue
		}
		if s.opts.Migration {
			ok, err := r.tryMigration(c)
			if err != nil {
				for _, rest := range queue[i:] {
					undep = s.strand(undep, rest)
				}
				return undep, err
			}
			if ok {
				s.setLedger(c.Ord, ledgerPlaced)
				continue
			}
			if ok, err = r.tryDefrag(c); err != nil {
				for _, rest := range queue[i:] {
					undep = s.strand(undep, rest)
				}
				return undep, err
			} else if ok {
				s.setLedger(c.Ord, ledgerPlaced)
				continue
			}
		}
		if s.opts.Preemption {
			victims, ok, err := r.tryPreemption(c)
			if err != nil {
				for _, rest := range queue[i:] {
					undep = s.strand(undep, rest)
				}
				return undep, err
			}
			if ok {
				s.setLedger(c.Ord, ledgerPlaced)
				for _, v := range victims {
					// A victim from an earlier batch re-enters this
					// batch's queue.
					s.setLedger(v.Ord, ledgerUndeployed)
					queue = append(queue, v)
				}
				continue
			}
		}
		// Budget-constrained failures prove nothing about the cluster:
		// recording them would poison later unconstrained searches.
		if s.opts.IsomorphismLimiting && r.moveCap == 0 {
			r.search.il.note(r.search.refOf(c))
		}
		undep = s.strand(undep, c)
	}
	return undep, nil
}

// Remove handles a departure: the container's resources are released
// and its flow cancelled.  Removing an unplaced container is an
// error.
//
//aladdin:hotpath departures run between placements; steady state stays allocation-free
func (s *Session) Remove(containerID string) error {
	c := s.r.byID[containerID]
	if c == nil {
		return fmt.Errorf("core: session: unknown container %s", containerID)
	}
	m := s.r.asg[c.Ord]
	if m == topology.Invalid {
		return fmt.Errorf("core: session: container %s not placed", containerID)
	}
	if err := s.r.unplace(c, m); err != nil {
		return err
	}
	s.setLedger(c.Ord, ledgerUndeployed)
	return nil
}

// FailureResult summarises one FailMachine call.
type FailureResult struct {
	// Machine is the failed machine.
	Machine topology.MachineID
	// Evicted counts the containers resident at the moment of
	// failure (including residents unknown to the workload).
	Evicted int
	// Replaced counts evicted containers the re-placement pipeline
	// parked on other machines.
	Replaced int
	// Stranded lists the containers left undeployed: evicted
	// residents with no feasible new home, residents unknown to the
	// workload (they die with the machine), and any lower-priority
	// collateral victims preempted during re-placement.
	Stranded []string
	// Migrations and Preemptions are the pipeline costs incurred to
	// re-place the evicted residents.
	Migrations, Preemptions int
	// Elapsed is the wall-clock time of eviction plus re-placement —
	// the re-placement latency a production cluster would alert on.
	Elapsed time.Duration
}

// FailMachine models a machine loss: the machine is taken out of
// service (the search index and all rescue passes stop considering
// it), every resident's flow is cancelled and its resources and
// blacklist entries released, and the evicted residents re-enter the
// normal place → migrate → defragment → preempt pipeline in priority
// order — highest first, so a displaced high-priority container is
// never beaten to the remaining capacity by a lower-priority
// neighbour from the same machine.  Containers with no feasible new
// home are stranded (reported in the result) exactly like rejected
// arrivals; they may be re-submitted later via Place.
//
// The session stays audit-clean across the call: anti-affinity and
// priority invariants are enforced by the shared pipeline, and flow
// conservation holds because every eviction cancels its flow before
// any re-placement augments a new path.
func (s *Session) FailMachine(id topology.MachineID) (*FailureResult, error) {
	start := s.opts.now()
	r := s.r
	machine := r.cluster.Machine(id)
	if machine == nil {
		return nil, fmt.Errorf("core: session: unknown machine %d", id)
	}
	if !machine.Up() {
		return nil, fmt.Errorf("core: session: machine %s is already down", machine.Name)
	}
	machine.MarkDown()
	r.search.noteUpdate(id)
	r.met.failures.Inc()
	r.met.machinesUp.Add(-1)
	r.met.machinesDown.Add(1)

	migBefore, preBefore := r.migrations, r.preempts
	res := &FailureResult{Machine: id}

	// Snapshot the residents, then evict each: release the (down)
	// machine's allocation, cancel the container's flow, clear its
	// blacklist contributions and refresh the index — r.unplace is the
	// same single mutation path every other eviction uses.  The
	// topology's string-ID view is used deliberately: it is the only
	// view that still includes pre-placed residents unknown to the
	// workload, and machine failure is a cold path.
	ids := append([]string(nil), machine.ContainerIDs()...)
	var evicted []*workload.Container
	for _, cid := range ids {
		res.Evicted++
		c := r.byID[cid]
		if c == nil {
			// A pre-placed resident unknown to the workload: it was
			// never routed through the flow network, so there is
			// nothing to cancel and nothing to re-place.
			if _, err := machine.Release(cid); err != nil {
				res.Elapsed = s.opts.now().Sub(start)
				return res, err
			}
			r.search.noteUpdate(id)
			res.Stranded = append(res.Stranded, cid)
			continue
		}
		if err := r.unplace(c, id); err != nil {
			res.Elapsed = s.opts.now().Sub(start)
			return res, err
		}
		s.setLedger(c.Ord, ledgerUndeployed)
		evicted = append(evicted, c)
	}

	// Highest priority first (ties: workload order) so the scarce
	// remaining capacity goes to the containers whose weighted flows
	// dominate, without needing preemption to fix the order up after
	// the fact.
	sort.Slice(evicted, func(i, j int) bool {
		if evicted[i].Priority != evicted[j].Priority {
			return evicted[i].Priority > evicted[j].Priority
		}
		return evicted[i].Ord < evicted[j].Ord
	})
	// Fresh undeployed backing (not the Place scratch): FailureResult
	// has no documented invalidation window, so its Stranded slice must
	// not be overwritten by the next Place call.
	stranded, err := s.placeQueue(evicted, nil)
	res.Stranded = append(res.Stranded, stranded...)
	for _, c := range evicted {
		if s.ledger[c.Ord] == ledgerPlaced {
			res.Replaced++
		}
	}
	// Everything the failure left undeployed — evicted residents with
	// no new home and collateral preemption victims alike — is marked
	// stranded: these containers did not depart, so recovery may
	// auto-retry them.  Residents unknown to the workload have no
	// ledger entry and die with the machine.
	for _, cid := range stranded {
		if c := r.byID[cid]; c != nil && s.ledger[c.Ord] == ledgerUndeployed {
			s.setLedger(c.Ord, ledgerStranded)
		}
	}
	res.Migrations = r.migrations - migBefore
	res.Preemptions = r.preempts - preBefore
	res.Elapsed = s.opts.now().Sub(start)
	r.met.failLat.Observe(res.Elapsed.Microseconds())
	r.trc.Emit(obs.Event{Kind: obs.EvFailMachine, Machine: int64(id), N: int64(res.Evicted)})
	return res, err
}

// RecoverMachine returns a failed machine to service: its capacity
// becomes visible to the search index again, and the isomorphism
// cache is invalidated because reappearing capacity can make a
// previously unplaceable application feasible.  Containers stranded
// by earlier failures are then retried automatically through the
// shared placement pipeline (unbudgeted — recovery should restore as
// much of the pre-failure placement as is feasible); the result
// reports what came back.  A non-nil error alongside a non-nil result
// is an internal placement error from the retry sweep.
func (s *Session) RecoverMachine(id topology.MachineID) (*RecoverResult, error) {
	start := s.opts.now()
	machine := s.r.cluster.Machine(id)
	if machine == nil {
		return nil, fmt.Errorf("core: session: unknown machine %d", id)
	}
	if machine.Up() {
		return nil, fmt.Errorf("core: session: machine %s is not down", machine.Name)
	}
	machine.MarkUp()
	s.r.search.noteUpdate(id)
	s.r.search.il.bump()
	s.r.met.recoveries.Inc()
	s.r.met.machinesUp.Add(1)
	s.r.met.machinesDown.Add(-1)
	s.r.trc.Emit(obs.Event{Kind: obs.EvRecoverMachine, Machine: int64(id)})
	res := &RecoverResult{Machine: id}
	var err error
	if !s.disableRecoverRetry && s.strandedN > 0 {
		var rr *RetryResult
		rr, err = s.RetryStranded(0)
		if rr != nil {
			res.Retried = rr.Retried
			res.Replaced = rr.Replaced
			res.Migrations = rr.Migrations
			res.Preemptions = rr.Preemptions
		}
	}
	res.Elapsed = s.opts.now().Sub(start)
	return res, err
}

// Consolidate runs the machine-draining pass on demand (e.g. during
// off-peak hours) and returns the number of migrations it performed.
// A non-nil error is a CorruptionError: a drain's rollback failed and
// the session state can no longer be trusted.
func (s *Session) Consolidate() (int, error) {
	before := s.r.consolidations
	err := s.r.consolidate()
	return s.r.consolidations - before, err
}

// Audit re-checks the live placement for violations; a healthy
// session always returns an empty slice.
func (s *Session) Audit() []constraint.Violation {
	return constraint.AuditAntiAffinity(s.w, s.r.assignmentMap())
}

// FlowConservation verifies Equation 2 on the live network.
func (s *Session) FlowConservation() error {
	return s.r.net.checkConservation()
}
