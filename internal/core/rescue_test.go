package core

import (
	"testing"

	"aladdin/internal/resource"
	"aladdin/internal/topology"
	"aladdin/internal/workload"
)

// TestDefragRescuesBigContainer builds a fragmented cluster: two
// machines each half-filled with small movable containers, so a
// half-machine container fits nowhere — until defragmentation
// consolidates the small ones (the Fig. 7 scenario).
func TestDefragRescuesBigContainer(t *testing.T) {
	w := workload.MustNew([]*workload.App{
		{ID: "small", Demand: resource.Cores(10, 8192), Replicas: 4, Priority: workload.PriorityLow},
		{ID: "big", Demand: resource.Cores(20, 16384), Replicas: 1, Priority: workload.PriorityLow},
	})
	cl := topology.New(topology.Config{
		Machines: 2, MachinesPerRack: 2, RacksPerCluster: 1,
		Capacity: resource.Cores(32, 64*1024),
	})
	// Interleave smalls so first-fit spreads 2 per machine (20 cores
	// each), leaving 12 free per machine: big (20c) fits nowhere
	// without moving a small.
	arrivals := w.Arrange(workload.OrderSubmission)
	res, err := NewDefault().Schedule(w, cl, arrivals)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Undeployed) != 0 {
		t.Fatalf("defrag should rescue the big container: %v", res.Undeployed)
	}
	if res.Migrations == 0 && res.Consolidations == 0 {
		// First-fit may have packed machine 0 fully (4 smalls do not
		// fit one machine: 40 > 32, so machine 0 gets 3, machine 1
		// gets 1, then big needs 20 with 2 and 22 free -> fits
		// machine 1!).  Verify the actual layout forced a move, else
		// the scenario did not trigger; check placement validity
		// regardless.
		t.Logf("no migration needed for this layout: %v", res.Assignment)
	}
	if err := res.Verify(w, cl); err != nil {
		t.Fatal(err)
	}
}

// TestDefragForcedScenario pre-fills machines with immovable
// residents so only defragmentation of known containers can work.
func TestDefragForcedScenario(t *testing.T) {
	w := workload.MustNew([]*workload.App{
		{ID: "mover", Demand: resource.Cores(10, 8192), Replicas: 2, Priority: workload.PriorityLow},
		{ID: "big", Demand: resource.Cores(20, 16384), Replicas: 1, Priority: workload.PriorityLow},
	})
	cl := topology.New(topology.Config{
		Machines: 2, MachinesPerRack: 2, RacksPerCluster: 1,
		Capacity: resource.Cores(32, 64*1024),
	})
	s := NewSession(DefaultOptions(), w, cl)
	movers := appContainers(w, "mover")
	// Place one mover on each machine by placing, then filling, then
	// placing the second.
	if _, err := s.Place(movers[:1]); err != nil { // machine 0
		t.Fatal(err)
	}
	// Fill machine 0 so the second mover lands on machine 1.
	if err := cl.Machine(0).Allocate("resident", resource.Cores(22, 1024)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Place(movers[1:2]); err != nil {
		t.Fatal(err)
	}
	if s.Assignment()["mover/1"] != 1 {
		t.Fatalf("setup: mover/1 on %d, want 1", s.Assignment()["mover/1"])
	}
	// Free machine 0's resident: now machine 0 has 22 free, machine 1
	// has 22 free, but big needs 20... it fits machine 0 directly.
	// Instead shrink: re-add a 10-core resident so machine 0 has 12
	// free and machine 1 has 22 free -> big (20c) fits machine 1?
	// 32-10=22 free: fits directly.  To force defrag, make both
	// machines hold one mover + sized residents leaving <20 free.
	if _, err := cl.Machine(0).Release("resident"); err != nil {
		t.Fatal(err)
	}
	if err := cl.Machine(0).Allocate("resident", resource.Cores(8, 1024)); err != nil {
		t.Fatal(err)
	}
	// machine 0: mover(10) + resident(8) = 18 used, 14 free.
	// machine 1: mover(10) = 10 used, 22 free -> big fits machine 1!
	// Add resident on machine 1 too.
	if err := cl.Machine(1).Allocate("resident2", resource.Cores(8, 1024)); err != nil {
		t.Fatal(err)
	}
	// machine 1: 18 used, 14 free.  big (20c) fits neither directly.
	// Moving mover/1 (10c) to machine 0 (14 free) frees machine 1 to
	// 24 -> big fits.
	res, err := s.Place(appContainers(w, "big"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Undeployed) != 0 {
		t.Fatalf("defrag should have moved a mover: %v", res.Undeployed)
	}
	if res.Migrations == 0 {
		t.Error("expected a defrag migration")
	}
	if vs := s.Audit(); len(vs) != 0 {
		t.Errorf("violations: %v", vs)
	}
	if err := s.FlowConservation(); err != nil {
		t.Error(err)
	}
}

// TestConsolidationDrainsLightMachines verifies the final sweep
// empties a lightly-loaded machine into existing free space.
func TestConsolidationDrainsLightMachines(t *testing.T) {
	// CLA order places the constrained app first, then singles; with
	// a deliberately adversarial arrival order the stream leaves a
	// fragmented tail that consolidation cleans up.  Construct
	// explicitly: two apps whose interleaved stream spreads, where a
	// packed layout needs fewer machines.
	w := workload.MustNew([]*workload.App{
		{ID: "a", Demand: resource.Cores(17, 8192), Replicas: 2},
		{ID: "b", Demand: resource.Cores(15, 8192), Replicas: 2},
	})
	cl := topology.New(topology.Config{
		Machines: 4, MachinesPerRack: 2, RacksPerCluster: 2,
		Capacity: resource.Cores(32, 64*1024),
	})
	// Interleaved: a/0(17)->m0, b/0(15)->m0 (32, full), a/1(17)->m1,
	// b/1(15)->m1 (full).  2 machines, already optimal: consolidation
	// is a no-op.
	res, err := NewDefault().Schedule(w, cl, w.Arrange(workload.OrderInterleaved))
	if err != nil {
		t.Fatal(err)
	}
	if cl.UsedMachines() != 2 {
		t.Errorf("used = %d, want 2", cl.UsedMachines())
	}
	// Submission order: a/0,a/1 -> m0 holds a/0(17); a/1 doesn't fit
	// m0 (15 free < 17) -> m1; b/0(15) -> m0 (fits exactly 15);
	// b/1(15) -> m1 (fits 15). 2 machines again.  Consolidation
	// cannot improve; assert it did not inflate counts.
	if res.Consolidations > 4 {
		t.Errorf("unexpected consolidation churn: %d", res.Consolidations)
	}
	if err := res.Verify(w, cl); err != nil {
		t.Fatal(err)
	}
}

// TestDrainRespectsConstraints: consolidation must never drain a
// container onto a machine its anti-affinity forbids.
func TestDrainRespectsConstraints(t *testing.T) {
	w := workload.MustNew([]*workload.App{
		{ID: "spread", Demand: resource.Cores(2, 2048), Replicas: 3, AntiAffinitySelf: true},
		{ID: "free", Demand: resource.Cores(2, 2048), Replicas: 5},
	})
	cl := topology.New(topology.Config{
		Machines: 6, MachinesPerRack: 3, RacksPerCluster: 2,
		Capacity: resource.Cores(32, 64*1024),
	})
	res, err := NewDefault().Schedule(w, cl, w.Arrange(workload.OrderInterleaved))
	if err != nil {
		t.Fatal(err)
	}
	if s := res.ViolationSummary(); s.Total() != 0 {
		t.Fatalf("violations after consolidation: %+v", s)
	}
	if err := res.Verify(w, cl); err != nil {
		t.Fatal(err)
	}
	// The three spread replicas remain on three distinct machines.
	seen := map[topology.MachineID]bool{}
	for _, c := range appContainers(w, "spread") {
		m := res.Assignment[c.ID]
		if seen[m] {
			t.Fatal("consolidation merged spread replicas")
		}
		seen[m] = true
	}
}
