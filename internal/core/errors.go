package core

import (
	"errors"
	"fmt"
)

// ErrUnknownContainer marks lookups of a container ID absent from
// the workload universe.  Callers (the HTTP /explain handler) use it
// to distinguish a caller mistake (not found) from an internal
// failure, which must not be collapsed into the same status.
var ErrUnknownContainer = errors.New("core: unknown container")

// ErrStateCorruption is the sentinel all CorruptionErrors wrap, so
// callers can errors.Is their way to "the scheduler state is no
// longer trustworthy" without matching on the specific rescue step.
var ErrStateCorruption = errors.New("core: scheduler state corruption")

// CorruptionError reports an unrecoverable divergence between the
// scheduler's coordinated views (machine allocations, flow network,
// blacklist, search index) discovered mid-rescue: a rollback or
// restore step failed, so the state may be half-mutated.  These used
// to be bare panics; they now surface as typed errors so a serving
// process can fail the one request, alert, and keep its other state
// queryable (the Auditor pinpoints what diverged).  A session that
// returned a CorruptionError should be considered poisoned: drain it
// and rebuild from the cluster's ground truth.
type CorruptionError struct {
	// Op names the rescue step that failed, e.g. "migration rollback".
	Op string
	// Err is the underlying placement/unplacement failure.
	Err error
}

// Error implements error.
func (e *CorruptionError) Error() string {
	return fmt.Sprintf("core: state corruption during %s: %v", e.Op, e.Err)
}

// Unwrap exposes both the sentinel and the underlying cause to
// errors.Is/As.
func (e *CorruptionError) Unwrap() []error { return []error{ErrStateCorruption, e.Err} }

// corrupt wraps a rescue-step failure as a CorruptionError.
func corrupt(op string, err error) error {
	return &CorruptionError{Op: op, Err: err}
}
