package core

import (
	"math"

	"aladdin/internal/resource"
	"aladdin/internal/topology"
)

// capIndex is the hierarchical residual-capacity index: a tournament
// tree over the cluster's machines in canonical traversal order
// (sub-cluster → rack → machine, the walk the naive search performs).
// Every node aggregates its subtree's residual capacity, so the three
// searches the scheduler runs per container become logarithmic:
//
//   - first-fit (DL on): descend to the leftmost leaf whose free
//     vector admits the demand — identical to the naive scan's
//     first-fit order, without visiting non-admitting machines;
//   - best-fit (DL off): branch-and-bound for the minimum-leftover-CPU
//     machine, pruning subtrees whose minimum free CPU already
//     exceeds the incumbent;
//   - range max-free: per-rack / per-sub-cluster maximum free vectors
//     (the R and G tier residuals) as O(log n) range queries, which is
//     what makes aggregate maintenance incremental.
//
// Because racks and sub-clusters are contiguous spans of the
// traversal, one tree serves all tiers.  Each aggregate is kept in
// two views: over all machines, and over machines hosting at least
// one container ("used"), so consolidation searches that must never
// open an empty machine (exclusion.skipEmpty) prune empty subtrees
// instead of enumerating them.
type capIndex struct {
	cluster *topology.Cluster
	tr      topology.Traversal

	// leaves is the leaf-tier width: the next power of two ≥ machine
	// count.  Nodes use 1-based heap layout (children of i are 2i and
	// 2i+1); leaf for traversal position p is leaves+p.
	leaves int

	// nodes holds each tree node's aggregates contiguously so one
	// cache line serves a whole node during descent and pull chains.
	nodes []idxNode
}

// idxNode aggregates one subtree.  maxFree/minCPU cover every up
// machine in the subtree; the Used variants cover only machines
// hosting ≥ 1 container.  Empty sets hold resource.NoCapacity /
// MaxInt64 so they admit nothing and never win a minimisation.  minID
// is the smallest up-machine ID in the subtree: the best-fit
// tie-break is (leftover CPU, then machine ID), so a subtree whose
// smallest ID exceeds the incumbent's cannot win a tie and is pruned.
type idxNode struct {
	maxFree     resource.Vector
	maxFreeUsed resource.Vector
	minCPU      int64
	minCPUUsed  int64
	minID       topology.MachineID
}

// noMachine is the minID sentinel for empty subtrees.
const noMachine = topology.MachineID(math.MaxInt)

// idxVisitor is the leaf acceptance check the searches apply on top of
// the index's resource admission (blacklist, exclusions, live-state
// re-check).  An interface over a caller-held struct rather than a
// closure: the searcher reuses one visitor value across searches, so
// converting it to an interface never allocates and the hot path stays
// heap-free.
type idxVisitor interface {
	visit(topology.MachineID) bool
}

func newCapIndex(cluster *topology.Cluster) *capIndex {
	n := cluster.Size()
	leaves := 1
	for leaves < n {
		leaves <<= 1
	}
	x := &capIndex{
		cluster: cluster,
		tr:      cluster.Traverse(),
		leaves:  leaves,
		nodes:   make([]idxNode, 2*leaves),
	}
	x.rebuild()
	return x
}

// leafValue derives the leaf node contents for traversal position p
// from the machine's live state.  Padding positions beyond the
// machine count and down machines both collapse to the empty-subtree
// sentinel: a failed machine has no residual capacity in any view, so
// every search prunes it exactly like a hole in the traversal.
func (x *capIndex) leafValue(p int) idxNode {
	empty := idxNode{
		maxFree:     resource.NoCapacity,
		maxFreeUsed: resource.NoCapacity,
		minCPU:      math.MaxInt64,
		minCPUUsed:  math.MaxInt64,
		minID:       noMachine,
	}
	if p >= len(x.tr.Order) {
		return empty
	}
	mid := x.tr.Order[p]
	m := x.cluster.Machine(mid)
	if !m.Up() {
		return empty
	}
	free := m.Free()
	nd := idxNode{
		maxFree:     free,
		maxFreeUsed: resource.NoCapacity,
		minCPU:      free.Dim(resource.CPU),
		minCPUUsed:  math.MaxInt64,
		minID:       mid,
	}
	if m.NumContainers() > 0 {
		nd.maxFreeUsed = free
		nd.minCPUUsed = nd.minCPU
	}
	return nd
}

// pullValue recomputes an interior node from its children.
func (x *capIndex) pullValue(node int) idxNode {
	l, r := &x.nodes[2*node], &x.nodes[2*node+1]
	nd := idxNode{
		maxFree:     l.maxFree.Max(r.maxFree),
		maxFreeUsed: l.maxFreeUsed.Max(r.maxFreeUsed),
		minCPU:      min64(l.minCPU, r.minCPU),
		minCPUUsed:  min64(l.minCPUUsed, r.minCPUUsed),
		minID:       l.minID,
	}
	if r.minID < nd.minID {
		nd.minID = r.minID
	}
	return nd
}

// update refreshes the index after machine m's free vector or
// occupancy changed: one leaf write plus a root-ward pull chain that
// stops as soon as an ancestor's aggregate is unchanged (a placement
// that does not move a subtree's extremes is O(1)).
func (x *capIndex) update(m topology.MachineID) {
	p := x.tr.Pos[m]
	leaf := x.leaves + p
	nd := x.leafValue(p)
	if x.nodes[leaf] == nd {
		return
	}
	x.nodes[leaf] = nd
	for node := leaf >> 1; node >= 1; node >>= 1 {
		nd := x.pullValue(node)
		if x.nodes[node] == nd {
			return
		}
		x.nodes[node] = nd
	}
}

// rebuild recomputes every node from live machine state — the
// full-rebuild safety valve and the constructor's initialiser.
func (x *capIndex) rebuild() {
	for p := 0; p < x.leaves; p++ {
		x.nodes[x.leaves+p] = x.leafValue(p)
	}
	for node := x.leaves - 1; node >= 1; node-- {
		x.nodes[node] = x.pullValue(node)
	}
}

// nodeMax returns the node's max-free vector in the requested view.
func (x *capIndex) nodeMax(node int, usedOnly bool) resource.Vector {
	if usedOnly {
		return x.nodes[node].maxFreeUsed
	}
	return x.nodes[node].maxFree
}

// nodeMinCPU returns the node's min-free-CPU in the requested view.
func (x *capIndex) nodeMinCPU(node int, usedOnly bool) int64 {
	if usedOnly {
		return x.nodes[node].minCPUUsed
	}
	return x.nodes[node].minCPU
}

// rangeMaxFree returns the component-wise maximum free vector over
// traversal positions [lo, hi) — the residual capacity of a rack or
// sub-cluster tier vertex — in O(log machines).
func (x *capIndex) rangeMaxFree(span topology.Span) resource.Vector {
	out := resource.NoCapacity
	lo, hi := span.Lo+x.leaves, span.Hi+x.leaves
	for lo < hi {
		if lo&1 == 1 {
			out = out.Max(x.nodes[lo].maxFree)
			lo++
		}
		if hi&1 == 1 {
			hi--
			out = out.Max(x.nodes[hi].maxFree)
		}
		lo >>= 1
		hi >>= 1
	}
	if out == resource.NoCapacity {
		// Preserve the naive aggregate's identity (zero vector) for
		// empty ranges.
		return resource.Vector{}
	}
	return out
}

// firstFit returns the first machine in traversal order within
// [span.Lo, span.Hi) whose free vector admits the demand and whose
// visit callback accepts it (blacklist, exclusions); Invalid when
// none does.  With exclusively resource-feasible rejections this is
// O(log machines); every visit rejection adds one descent.
func (x *capIndex) firstFit(span topology.Span, demand resource.Vector, usedOnly bool, visit idxVisitor) topology.MachineID {
	return x.firstFitNode(1, 0, x.leaves, span, demand, usedOnly, visit)
}

func (x *capIndex) firstFitNode(node, nodeLo, nodeHi int, span topology.Span, demand resource.Vector, usedOnly bool, visit idxVisitor) topology.MachineID {
	if nodeHi <= span.Lo || nodeLo >= span.Hi {
		return topology.Invalid
	}
	if !demand.Fits(x.nodeMax(node, usedOnly)) {
		return topology.Invalid
	}
	if nodeHi-nodeLo == 1 {
		mid := x.tr.Order[nodeLo]
		if visit.visit(mid) {
			return mid
		}
		return topology.Invalid
	}
	mid := (nodeLo + nodeHi) / 2
	if got := x.firstFitNode(2*node, nodeLo, mid, span, demand, usedOnly, visit); got != topology.Invalid {
		return got
	}
	return x.firstFitNode(2*node+1, mid, nodeHi, span, demand, usedOnly, visit)
}

// bestFitState carries the branch-and-bound incumbent: the machine
// with the smallest (leftover CPU, machine ID) found so far.
type bestFitState struct {
	id   topology.MachineID
	left int64
}

func newBestFitState() bestFitState {
	return bestFitState{id: topology.Invalid, left: math.MaxInt64}
}

// merge folds another incumbent in under the (leftover, ID) order.
func (st *bestFitState) merge(o bestFitState) {
	if o.id == topology.Invalid {
		return
	}
	if o.left < st.left || (o.left == st.left && o.id < st.id) {
		*st = o
	}
}

// bestFit finds the admitting machine within the span minimising
// leftover CPU after placement, ties broken by machine ID — the
// explicit tie-break the no-DL search converges to.  Subtrees are
// pruned when they cannot admit the demand or cannot beat the
// incumbent (their minimum free CPU is already larger, or equal with
// no smaller machine ID available).
func (x *capIndex) bestFit(span topology.Span, demand resource.Vector, usedOnly bool, visit idxVisitor, st *bestFitState) {
	x.bestFitNode(1, 0, x.leaves, span, demand, usedOnly, visit, st)
}

func (x *capIndex) bestFitNode(node, nodeLo, nodeHi int, span topology.Span, demand resource.Vector, usedOnly bool, visit idxVisitor, st *bestFitState) {
	if nodeHi <= span.Lo || nodeLo >= span.Hi {
		return
	}
	if !demand.Fits(x.nodeMax(node, usedOnly)) {
		return
	}
	if st.id != topology.Invalid {
		// Lower bound on any leftover in this subtree.
		bound := x.nodeMinCPU(node, usedOnly) - demand.Dim(resource.CPU)
		if bound > st.left || (bound == st.left && x.nodes[node].minID > st.id) {
			return
		}
	}
	if nodeHi-nodeLo == 1 {
		mid := x.tr.Order[nodeLo]
		if !visit.visit(mid) {
			return
		}
		// Score from live machine state, matching the visit callback's
		// live fitness check, so a stale leaf cannot skew the ranking.
		left := x.cluster.Machine(mid).Free().Dim(resource.CPU) - demand.Dim(resource.CPU)
		st.merge(bestFitState{id: mid, left: left})
		return
	}
	half := (nodeLo + nodeHi) / 2
	x.bestFitNode(2*node, nodeLo, half, span, demand, usedOnly, visit, st)
	x.bestFitNode(2*node+1, half, nodeHi, span, demand, usedOnly, visit, st)
}

// collectFits appends, in traversal order, machines within the span
// that admit the demand and pass the visit callback, stopping at
// limit (≤ 0 = unlimited).  Returns false once the limit is reached.
func (x *capIndex) collectFits(span topology.Span, demand resource.Vector, usedOnly bool, visit idxVisitor, limit int, out *[]topology.MachineID) bool {
	return x.collectFitsNode(1, 0, x.leaves, span, demand, usedOnly, visit, limit, out)
}

func (x *capIndex) collectFitsNode(node, nodeLo, nodeHi int, span topology.Span, demand resource.Vector, usedOnly bool, visit idxVisitor, limit int, out *[]topology.MachineID) bool {
	if nodeHi <= span.Lo || nodeLo >= span.Hi {
		return true
	}
	if !demand.Fits(x.nodeMax(node, usedOnly)) {
		return true
	}
	if nodeHi-nodeLo == 1 {
		mid := x.tr.Order[nodeLo]
		if visit.visit(mid) {
			*out = append(*out, mid)
			if limit > 0 && len(*out) >= limit {
				return false
			}
		}
		return true
	}
	half := (nodeLo + nodeHi) / 2
	if !x.collectFitsNode(2*node, nodeLo, half, span, demand, usedOnly, visit, limit, out) {
		return false
	}
	return x.collectFitsNode(2*node+1, half, nodeHi, span, demand, usedOnly, visit, limit, out)
}

// all returns the whole-cluster span.
func (x *capIndex) all() topology.Span {
	return topology.Span{Lo: 0, Hi: len(x.tr.Order)}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
