package core

import (
	"testing"

	"aladdin/internal/resource"
	"aladdin/internal/topology"
	"aladdin/internal/workload"
)

func netFixture(t *testing.T) (*workload.Workload, *topology.Cluster, *network) {
	t.Helper()
	w := workload.MustNew([]*workload.App{
		{ID: "a", Demand: resource.Cores(4, 4096), Replicas: 2},
		{ID: "b", Demand: resource.Cores(2, 2048), Replicas: 1},
	})
	cl := topology.New(topology.Config{
		Machines: 4, MachinesPerRack: 2, RacksPerCluster: 1,
		Capacity: resource.Cores(32, 64*1024),
	})
	return w, cl, buildNetwork(w, cl)
}

func TestBuildNetworkShape(t *testing.T) {
	w, cl, n := netFixture(t)
	// Nodes: source + sink + apps + subclusters + racks + machines +
	// containers.
	want := 2 + len(w.Apps()) + len(cl.SubClusters()) + len(cl.Racks()) + cl.Size() + w.NumContainers()
	if got := n.g.NumNodes(); got != want {
		t.Errorf("nodes = %d, want %d", got, want)
	}
	// Forward arcs before any A→G arc materialises: s→T and T→A per
	// container, G→R per rack, R→N and N→t per machine.
	wantArcs := 2*w.NumContainers() + len(cl.Racks()) + 2*cl.Size()
	if got := n.g.NumArcs(); got != wantArcs {
		t.Errorf("arcs = %d, want %d", got, wantArcs)
	}
}

func TestArcAGLazy(t *testing.T) {
	_, _, n := netFixture(t)
	before := n.g.NumArcs()
	idx1 := n.arcAG("a", "cluster-00")
	if n.g.NumArcs() != before+1 {
		t.Error("first arcAG should add one arc")
	}
	idx2 := n.arcAG("a", "cluster-00")
	if idx1 != idx2 {
		t.Error("arcAG should memoise")
	}
	if n.g.NumArcs() != before+1 {
		t.Error("repeat arcAG should not add arcs")
	}
}

func TestAugmentCancelRoundTrip(t *testing.T) {
	w, _, n := netFixture(t)
	c := w.Containers()[0]
	if err := n.augment(c, 1); err != nil {
		t.Fatal(err)
	}
	if got := n.totalFlow(); got != flowUnits(c) {
		t.Errorf("totalFlow = %d, want %d", got, flowUnits(c))
	}
	if err := n.checkConservation(); err != nil {
		t.Error(err)
	}
	if err := n.cancel(c, 1); err != nil {
		t.Fatal(err)
	}
	if got := n.totalFlow(); got != 0 {
		t.Errorf("totalFlow after cancel = %d", got)
	}
	if err := n.checkConservation(); err != nil {
		t.Error(err)
	}
}

func TestCancelWithoutAugmentFails(t *testing.T) {
	w, _, n := netFixture(t)
	if err := n.cancel(w.Containers()[0], 0); err == nil {
		t.Error("cancel without augment should fail")
	}
}

func TestAugmentUnknownMachineFails(t *testing.T) {
	w, _, n := netFixture(t)
	if err := n.augment(w.Containers()[0], 99); err == nil {
		t.Error("augment on unknown machine should fail")
	}
}

func TestAugmentSaturatesSourceArc(t *testing.T) {
	w, _, n := netFixture(t)
	c := w.Containers()[0]
	if err := n.augment(c, 0); err != nil {
		t.Fatal(err)
	}
	// The s→T arc is saturated: a second augment of the same
	// container must fail (impartible flow).
	if err := n.augment(c, 1); err == nil {
		t.Error("double augment should fail on the saturated source arc")
	}
}

func TestFlowUnitsFloor(t *testing.T) {
	zero := &workload.Container{ID: "z/0", App: "z", Demand: resource.Vector{}}
	if flowUnits(zero) != 1 {
		t.Error("zero-CPU container should push 1 unit")
	}
	c := &workload.Container{ID: "c/0", App: "c", Demand: resource.Cores(3, 0)}
	if flowUnits(c) != 3000 {
		t.Errorf("flowUnits = %d", flowUnits(c))
	}
}

func TestAggregatesTrackFreeSpace(t *testing.T) {
	// Two racks share one sub-cluster here (unlike the net fixture).
	cl := topology.New(topology.Config{
		Machines: 4, MachinesPerRack: 2, RacksPerCluster: 2,
		Capacity: resource.Cores(32, 64*1024),
	})
	agg := newAggregates(cl, DefaultOptions())
	rack := cl.Machine(0).Rack
	if !agg.rackAdmits(rack, resource.Cores(32, 64*1024)) {
		t.Error("fresh rack should admit a full-machine demand")
	}
	// Fill both machines of rack 0 almost fully.
	for _, mid := range cl.Rack(rack).Machines {
		if err := cl.Machine(mid).Allocate("f-"+cl.Machine(mid).Name, resource.Cores(31, 1024)); err != nil {
			t.Fatal(err)
		}
		agg.update(mid)
	}
	if agg.rackAdmits(rack, resource.Cores(2, 1)) {
		t.Error("rack with 1-core machines should not admit 2 cores")
	}
	if !agg.rackAdmits(rack, resource.Cores(1, 1)) {
		t.Error("rack should still admit 1 core")
	}
	// Sub-cluster aggregate still admits via the other rack.
	sub := cl.Machine(0).Cluster
	if !agg.subAdmits(sub, resource.Cores(2, 1)) {
		t.Error("sub-cluster should admit via the untouched rack")
	}
	// Releasing restores.
	m0 := cl.Rack(rack).Machines[0]
	if _, err := cl.Machine(m0).Release("f-" + cl.Machine(m0).Name); err != nil {
		t.Fatal(err)
	}
	agg.update(m0)
	if !agg.rackAdmits(rack, resource.Cores(2, 1)) {
		t.Error("release should restore the rack aggregate")
	}
}

func TestExclusionRules(t *testing.T) {
	e := exclusion{machine: 3, set: map[topology.MachineID]bool{5: true}}
	if !e.excludes(3) || !e.excludes(5) {
		t.Error("exclusion should cover machine and set")
	}
	if e.excludes(4) {
		t.Error("exclusion should not cover others")
	}
	if noExclusion.excludes(0) {
		t.Error("noExclusion should exclude nothing")
	}
}
