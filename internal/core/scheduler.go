package core

import (
	"fmt"
	"sort"

	"aladdin/internal/constraint"
	"aladdin/internal/obs"
	"aladdin/internal/resource"
	"aladdin/internal/sched"
	"aladdin/internal/topology"
	"aladdin/internal/workload"
)

// Scheduler is the Aladdin scheduler.  One instance is reusable
// across runs; all run state lives in a per-run context.
type Scheduler struct {
	opts Options
}

// New builds an Aladdin scheduler with the given options.
func New(opts Options) *Scheduler { return &Scheduler{opts: opts} }

// NewDefault builds the paper's headline configuration (weight base
// 16, IL+DL, migration and preemption on).
func NewDefault() *Scheduler { return New(DefaultOptions()) }

// Name implements sched.Scheduler.
func (s *Scheduler) Name() string { return s.opts.Name() }

// run carries the mutable state of one Schedule invocation.
type run struct {
	opts      Options
	w         *workload.Workload
	cluster   *topology.Cluster
	net       *network
	ladder    *constraint.WeightLadder
	blacklist *constraint.Blacklist
	search    *searcher
	met       coreMetrics
	trc       *obs.Tracer

	// asg is the live assignment, keyed by container ordinal (Invalid =
	// undeployed).  place/unplace are the scheduler's innermost
	// mutations; a slice write keeps them free of string hashing.  The
	// ID-keyed map views hand out materialise on demand.
	//
	//aladdin:domain ord -> machine container ordinal → assigned machine
	asg    []topology.MachineID
	asgMap constraint.Assignment
	// residents[m] lists the workload ordinals placed on machine m in
	// ascending ordinal order — the reverse view of asg, maintained by
	// place/unplace so migration, drain, defrag and preemption walk a
	// machine's occupants without the topology layer's string-ID round
	// trip.  Pre-placed residents unknown to the workload are absent;
	// consumers that need them (drain) detect the mismatch against
	// Machine.NumContainers.
	//
	//aladdin:domain machine, _ -> ord machine id → resident container ordinals
	residents [][]int32
	//aladdin:domain ord -> _ container ordinal → requeue count
	requeues       []int
	byID           map[string]*workload.Container
	migrations     int
	consolidations int
	preempts       int
	inversions     []constraint.Violation

	// preemptLog records every eviction for the runtime Auditor's
	// priority-ordering check: each entry must have victim priority
	// strictly below the claimant's (§III.B) unless the DisableWeights
	// ablation is on.
	preemptLog []preemptEvent

	// moveCap caps rescue moves (migration relocations, defrag moves,
	// preemption evictions) while non-zero; moveStartMig/moveStartPre
	// snapshot the counters at setMoveBudget so movesRemaining can
	// charge only moves made under the budget.  Direct placements are
	// free: the budget prices churn, not admissions.
	moveCap      int
	moveStartMig int
	moveStartPre int
}

// setMoveBudget caps subsequent rescue moves at cap (<= 0 clears the
// budget).  The rescue paths consult movesRemaining before committing
// to a relocation set, so a bounded call never exceeds the cap.
func (r *run) setMoveBudget(cap int) {
	if cap <= 0 {
		r.moveCap = 0
		return
	}
	r.moveCap = cap
	r.moveStartMig = r.migrations
	r.moveStartPre = r.preempts
}

// movesRemaining reports how many rescue moves the active budget still
// allows; effectively unbounded when no budget is set.
func (r *run) movesRemaining() int {
	if r.moveCap <= 0 {
		return int(^uint(0) >> 1)
	}
	spent := (r.migrations - r.moveStartMig) + (r.preempts - r.moveStartPre)
	if spent >= r.moveCap {
		return 0
	}
	return r.moveCap - spent
}

// preemptEvent is one preemption eviction: claimant displaced victim
// on machine.
type preemptEvent struct {
	claimant, victim *workload.Container
	machine          topology.MachineID
}

// newRun builds the mutable state for one scheduling context.
func newRun(opts Options, w *workload.Workload, cluster *topology.Cluster) *run {
	r := &run{
		opts:      opts,
		w:         w,
		cluster:   cluster,
		net:       buildNetwork(w, cluster),
		ladder:    constraint.NewWeightLadder(w, opts.WeightBase),
		blacklist: constraint.NewBlacklist(w, cluster.Size()),
		asg:       make([]topology.MachineID, w.NumContainers()),
		residents: make([][]int32, cluster.Size()),
		requeues:  make([]int, w.NumContainers()),
		byID:      make(map[string]*workload.Container, w.NumContainers()),
	}
	for i := range r.asg {
		r.asg[i] = topology.Invalid
	}
	for _, c := range w.Containers() {
		r.byID[c.ID] = c
	}
	r.search = newSearcher(opts, w, cluster, r.blacklist)
	r.met = newCoreMetrics(opts.Metrics, opts.MetricLabels)
	r.trc = opts.Tracer
	// Assigned after construction so newSearcher's signature stays
	// stable for the search benchmarks that build one directly.
	r.search.met = r.met
	r.met.initGauges(cluster)
	return r
}

// assignmentMap materialises the ID-keyed view of the assignment.
// The map is cached until the next place/unplace, so repeated reads
// between mutations share one map (sessions hand it out by design).
func (r *run) assignmentMap() constraint.Assignment {
	if r.asgMap == nil {
		r.asgMap = make(constraint.Assignment, len(r.asg))
		for _, c := range r.w.Containers() {
			if m := r.asg[c.Ord]; m != topology.Invalid {
				r.asgMap[c.ID] = m
			}
		}
	}
	return r.asgMap
}

// Schedule implements sched.Scheduler.  Containers are processed in
// the given arrival order; each is routed through the tiered flow
// network, with migration and preemption invoked when no direct
// augmenting path exists.
func (s *Scheduler) Schedule(w *workload.Workload, cluster *topology.Cluster, arrivals []*workload.Container) (*sched.Result, error) {
	start := s.opts.now()
	r := newRun(s.opts, w, cluster)
	r.trc.Emit(obs.Event{Kind: obs.EvPlaceStart, Machine: -1, N: int64(len(arrivals))})

	queue := make([]*workload.Container, len(arrivals))
	copy(queue, arrivals)
	var undeployed []string
	for i := 0; i < len(queue); i++ {
		c := queue[i]
		// Isomorphism limiting (Fig. 5a): a sibling of this container
		// already proved unplaceable and no capacity has been
		// released since — the search cannot succeed, skip it.
		if s.opts.IsomorphismLimiting {
			if r.search.il.skip(r.search.refOf(c)) {
				r.met.ilHits.Inc()
				undeployed = append(undeployed, c.ID)
				continue
			}
			r.met.ilMisses.Inc()
		}
		if m := r.search.findMachine(c, noExclusion); m != topology.Invalid {
			if err := r.place(c, m); err != nil {
				return nil, err
			}
			continue
		}
		if s.opts.Migration {
			if ok, err := r.tryMigration(c); err != nil {
				return nil, err
			} else if ok {
				continue
			}
			if ok, err := r.tryDefrag(c); err != nil {
				return nil, err
			} else if ok {
				continue
			}
		}
		if s.opts.Preemption {
			victims, ok, err := r.tryPreemption(c)
			if err != nil {
				return nil, err
			}
			if ok {
				// Victims re-enter the queue after the current tail;
				// their strictly lower priority bounds the recursion.
				queue = append(queue, victims...)
				continue
			}
		}
		// An unplaceability proof recorded while a move budget constrains
		// the rescue pipeline would poison later unconstrained searches —
		// the failure may be the budget's, not the cluster's.
		if s.opts.IsomorphismLimiting && r.moveCap == 0 {
			r.search.il.note(r.search.refOf(c))
		}
		undeployed = append(undeployed, c.ID)
	}

	if s.opts.Migration {
		// Consolidation pass: empty lightly-loaded machines into the
		// free space of used ones — the final step of minimising the
		// number of used machines (§II.A's resource-efficiency
		// objective).
		if err := r.consolidate(); err != nil {
			return nil, err
		}

		// Drained machines expose whole-machine gaps; containers that
		// were stranded by fragmentation get one more try through the
		// full pipeline.
		if len(undeployed) > 0 {
			var still []string
			for _, id := range undeployed {
				c := r.byID[id]
				if c == nil {
					still = append(still, id)
					continue
				}
				if m := r.search.findMachine(c, noExclusion); m != topology.Invalid {
					if err := r.place(c, m); err != nil {
						return nil, err
					}
					continue
				}
				if ok, err := r.tryMigration(c); err != nil {
					return nil, err
				} else if ok {
					continue
				}
				if ok, err := r.tryDefrag(c); err != nil {
					return nil, err
				} else if ok {
					continue
				}
				still = append(still, id)
			}
			undeployed = still
		}
	}

	if s.opts.GangScheduling {
		// Applied last: the rescue passes above may have completed a
		// partially-placed gang, and withdrawals must be final.
		var err error
		if undeployed, err = r.enforceGangs(undeployed); err != nil {
			return nil, err
		}
	}

	res := &sched.Result{
		Scheduler:      s.Name(),
		Assignment:     r.assignmentMap(),
		Undeployed:     undeployed,
		Violations:     r.inversions,
		Migrations:     r.migrations,
		Consolidations: r.consolidations,
		Preemptions:    r.preempts,
		Elapsed:        s.opts.now().Sub(start),
		WorkUnits:      r.search.explored,
	}
	r.met.placeBatch.Observe(res.Elapsed.Microseconds())
	res.Finalize(w)
	return res, nil
}

// place deploys a container on a machine, updating every view of the
// state: machine allocation, blacklist, flow network, and — via
// agg.update — the search index and rack/sub-cluster aggregates.
// Every mutation path (direct placement, migration, defragmentation,
// consolidation drains, preemption evictions, gang withdrawals)
// funnels through place/unplace, so the index can never go stale.
func (r *run) place(c *workload.Container, m topology.MachineID) error {
	machine := r.cluster.Machine(m)
	if err := machine.Allocate(c.ID, c.Demand); err != nil {
		return fmt.Errorf("core: place: %w", err)
	}
	if err := r.net.augment(c, m); err != nil {
		// Roll back the allocation to keep views consistent.
		if _, rerr := machine.Release(c.ID); rerr != nil {
			return fmt.Errorf("core: place rollback failed: %v (after %w)", rerr, err)
		}
		return err
	}
	r.blacklist.PlaceRef(m, r.search.refOf(c))
	r.asg[c.Ord] = m
	r.addResident(m, int32(c.Ord))
	r.asgMap = nil
	r.search.noteUpdate(m)
	r.met.placements.Inc()
	r.met.placedGauge.Add(1)
	r.trc.Emit(obs.Event{Kind: obs.EvAugmentingPath, Container: c.ID, Machine: int64(m)})
	return nil
}

// addResident records the container ordinal in machine m's resident
// list, keeping it ordinal-sorted.  Lists are short (containers per
// machine), so the insertion shift beats any tree; the slice keeps its
// capacity across remove/add churn, so steady-state placement cycles
// allocate nothing.
func (r *run) addResident(m topology.MachineID, ord int32) {
	rs := r.residents[m]
	i := len(rs)
	for i > 0 && rs[i-1] > ord {
		i--
	}
	rs = append(rs, 0)
	copy(rs[i+1:], rs[i:])
	rs[i] = ord
	r.residents[m] = rs
}

// removeResident drops the container ordinal from machine m's
// resident list.
func (r *run) removeResident(m topology.MachineID, ord int32) {
	rs := r.residents[m]
	for i, o := range rs {
		if o == ord {
			copy(rs[i:], rs[i+1:])
			r.residents[m] = rs[:len(rs)-1]
			return
		}
	}
}

// unplace removes a container from its machine, reversing place.
func (r *run) unplace(c *workload.Container, m topology.MachineID) error {
	machine := r.cluster.Machine(m)
	if _, err := machine.Release(c.ID); err != nil {
		return fmt.Errorf("core: unplace: %w", err)
	}
	if err := r.net.cancel(c, m); err != nil {
		return err
	}
	r.blacklist.ReleaseRef(m, r.search.refOf(c))
	r.asg[c.Ord] = topology.Invalid
	r.removeResident(m, int32(c.Ord))
	r.asgMap = nil
	r.search.noteUpdate(m)
	r.search.il.bump()
	r.met.placedGauge.Add(-1)
	return nil
}

// tryMigration clears anti-affinity blockage (Fig. 3b): find a
// machine where the container fits on resources but the blacklist
// blocks it, and relocate the blocking containers elsewhere.  The
// relocated containers stay deployed, so priority safety holds by
// construction.
//
//aladdin:hotpath-stop rescue path: migrations are rare and allocate for ranking/rollback by design
func (r *run) tryMigration(c *workload.Container) (bool, error) {
	if !r.met.on {
		return r.tryMigrationInner(c)
	}
	start := r.opts.now()
	ok, err := r.tryMigrationInner(c)
	r.met.migLat.Observe(r.opts.now().Sub(start).Microseconds())
	return ok, err
}

func (r *run) tryMigrationInner(c *workload.Container) (bool, error) {
	// Enumerate every machine the container fits on resource-wise,
	// then try the ones with the fewest blockers first: lightly
	// blocked machines clear cheapest, and under heavy anti-affinity
	// pressure (a large spread service arriving into a packed
	// cluster) most machines hold only one or two blockers.
	candidates := r.search.findResourceFits(c, noExclusion, 0)
	type cand struct {
		m        topology.MachineID
		blockers []*workload.Container
	}
	var ranked []cand
	for _, mid := range candidates {
		if r.blacklist.Allows(mid, c) {
			// A direct path exists after all (state changed since the
			// failed search); just take it.
			return r.place(c, mid) == nil, nil
		}
		blockers := r.blockersOn(mid, c)
		if len(blockers) == 0 || len(blockers) > r.opts.maxBlockers() {
			continue
		}
		if len(blockers) > r.movesRemaining() {
			continue // over the rescue-move budget
		}
		ranked = append(ranked, cand{m: mid, blockers: blockers})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if len(ranked[i].blockers) != len(ranked[j].blockers) {
			return len(ranked[i].blockers) < len(ranked[j].blockers)
		}
		return ranked[i].m < ranked[j].m
	})
	const maxAttempts = 32
	for i, cd := range ranked {
		if i >= maxAttempts {
			break
		}
		if ok, err := r.relocate(cd.blockers, cd.m, c); err != nil {
			return false, err
		} else if ok {
			return true, nil
		}
	}
	return false, nil
}

// blockersOn lists containers on machine m whose app conflicts with c
// (pre-placed residents outside the workload carry no constraints and
// are never blockers).
func (r *run) blockersOn(m topology.MachineID, c *workload.Container) []*workload.Container {
	cs := r.w.Containers()
	var out []*workload.Container
	for _, ord := range r.residents[m] {
		other := cs[ord]
		if r.w.AntiAffine(other.App, c.App) || (other.App == c.App && r.w.AntiAffine(c.App, c.App)) {
			out = append(out, other)
		}
	}
	return out
}

// relocate moves every blocker off machine m and places c there; on
// any failure all moves are rolled back.  A non-nil error means a
// rollback or restore step itself failed and the scheduler state is
// corrupt (see CorruptionError).
func (r *run) relocate(blockers []*workload.Container, m topology.MachineID, c *workload.Container) (bool, error) {
	type move struct {
		c        *workload.Container
		from, to topology.MachineID
	}
	var done []move
	rollback := func() error {
		for i := len(done) - 1; i >= 0; i-- {
			mv := done[i]
			if err := r.unplace(mv.c, mv.to); err != nil {
				return r.corrupt("migration rollback unplace", err)
			}
			if err := r.place(mv.c, mv.from); err != nil {
				return r.corrupt("migration rollback replace", err)
			}
		}
		return nil
	}
	for _, b := range blockers {
		if err := r.unplace(b, m); err != nil {
			return false, rollback()
		}
		dest := r.search.findMachine(b, exclusion{machine: m})
		if dest == topology.Invalid {
			// Put the blocker back and abandon this machine.
			if err := r.place(b, m); err != nil {
				return false, r.corrupt("migration restore blocker", err)
			}
			return false, rollback()
		}
		if err := r.place(b, dest); err != nil {
			if perr := r.place(b, m); perr != nil {
				return false, r.corrupt("migration restore blocker after failed move", perr)
			}
			return false, rollback()
		}
		done = append(done, move{c: b, from: m, to: dest})
	}
	if !r.blacklist.Allows(m, c) || !r.cluster.Machine(m).Fits(c.Demand) {
		return false, rollback()
	}
	if err := r.place(c, m); err != nil {
		return false, rollback()
	}
	r.migrations += len(done)
	r.met.migrations.Add(int64(len(done)))
	for _, mv := range done {
		r.trc.Emit(obs.Event{Kind: obs.EvMigrate, Container: c.ID, Victim: mv.c.ID, Machine: int64(mv.to), Detail: "migration"})
	}
	return true, nil
}

// enforceGangs applies all-or-nothing application semantics: every
// placed container whose application has at least one undeployed
// sibling is withdrawn and added to the undeployed set.
func (r *run) enforceGangs(undeployed []string) ([]string, error) {
	broken := make(map[string]bool)
	for _, id := range undeployed {
		if c := r.byID[id]; c != nil {
			broken[c.App] = true
		}
	}
	if len(broken) == 0 {
		return undeployed, nil
	}
	for _, c := range r.w.Containers() {
		if !broken[c.App] {
			continue
		}
		m := r.asg[c.Ord]
		if m == topology.Invalid {
			continue
		}
		if err := r.unplace(c, m); err != nil {
			return nil, r.corrupt("gang rollback", err)
		}
		undeployed = append(undeployed, c.ID)
	}
	return undeployed, nil
}

// consolidate empties lightly-loaded machines by migrating every
// container they host into existing used machines.  A machine is only
// drained when every container relocates successfully; otherwise the
// drain rolls back.  Consolidation never opens an empty machine, so
// each successful drain strictly reduces the used-machine count.
func (r *run) consolidate() error {
	_, _, err := r.consolidateBudget(0)
	return err
}

// consolidateBudget is consolidate with a per-call move cap: at most
// budget containers relocate (0 = unlimited).  A drain is
// all-or-nothing, so a machine is attempted only when its entire
// resident set fits inside the remaining budget; machines skipped for
// budget set more=true so the caller can resume with a later call.
// Drains are deterministic in cluster state, so a resumed call
// re-ranks the surviving machines and picks up where this one
// stopped.  more may be conservatively true (a skipped machine could
// turn out undrainable), never falsely false.
func (r *run) consolidateBudget(budget int) (moves int, more bool, err error) {
	// Drains are deterministic in cluster/blacklist/flow state, and a
	// failed drain rolls back exactly, so state advances only when a
	// drain succeeds.  epoch counts successes; a machine whose drain
	// failed at the current epoch would fail identically if retried,
	// so later passes skip it until some drain lands.
	epoch := 0
	failedAt := make(map[topology.MachineID]int)
	memo := make(map[drainKey]topology.MachineID)
	for pass := 0; pass < 2; pass++ {
		// Lightest machines first: cheapest to drain.
		type lm struct {
			m    topology.MachineID
			used int64
		}
		var light []lm
		for _, m := range r.cluster.Machines() {
			if m.NumContainers() == 0 {
				continue
			}
			// A down machine mid-eviction is the failure path's to
			// empty; draining it here would make rollback (re-placing
			// onto the down machine) impossible.
			if !m.Up() {
				continue
			}
			light = append(light, lm{m: m.ID, used: m.Used().Dim(resource.CPU)})
		}
		sort.Slice(light, func(i, j int) bool {
			if light[i].used != light[j].used {
				return light[i].used < light[j].used
			}
			return light[i].m < light[j].m
		})
		drained := false
		for _, cand := range light {
			if e, ok := failedAt[cand.m]; ok && e == epoch {
				continue
			}
			n := r.cluster.Machine(cand.m).NumContainers()
			if budget > 0 && moves+n > budget {
				// Signal More only when the drain could plausibly land:
				// without this check a fully-consolidated cluster whose
				// last machine exceeds the budget would report pending
				// work forever, spinning any resume loop built on More.
				if r.drainCouldFit(cand.m) {
					more = true
				}
				continue
			}
			// The memo shares feasibility prechecks across attempts: it
			// too stays valid until the next successful drain.
			if ok, derr := r.drain(cand.m, memo); derr != nil {
				return moves, more, derr
			} else if ok {
				moves += n
				drained = true
				epoch++
				clear(memo)
			} else {
				failedAt[cand.m] = epoch
			}
		}
		if !drained {
			return moves, more, nil
		}
	}
	return moves, more, nil
}

// drainCouldFit is the budget-skip analogue of drain's feasibility
// precheck: residents can only relocate onto other used machines
// (consolidation never opens an empty one), so when their combined
// demand exceeds the free capacity there, the drain is infeasible
// whatever the budget and the skip must not promise future work.
func (r *run) drainCouldFit(m topology.MachineID) bool {
	used := r.cluster.Machine(m).Used()
	var free resource.Vector
	for _, o := range r.cluster.Machines() {
		if o.ID == m || !o.Up() || o.NumContainers() == 0 {
			continue
		}
		free = free.Add(o.Free())
	}
	return used.Fits(free)
}

// drainKey classifies a resident for the drain feasibility precheck:
// two containers of the same app with the same demand see identical
// search outcomes, so one lookup answers for the whole class.
type drainKey struct {
	app    int
	demand resource.Vector
}

// drain attempts to move every container off machine m into other
// used machines; returns whether the machine was emptied.  A non-nil
// error means a rollback or restore step itself failed and the
// scheduler state is corrupt.
func (r *run) drain(m topology.MachineID, memo map[drainKey]topology.MachineID) (bool, error) {
	machine := r.cluster.Machine(m)
	all := r.w.Containers()
	if machine.NumContainers() != len(r.residents[m]) {
		return false, nil // unknown residents present: not movable
	}
	cs := make([]*workload.Container, 0, len(r.residents[m]))
	for _, ord := range r.residents[m] {
		cs = append(cs, all[ord])
	}
	if len(cs) == 0 {
		return false, nil
	}
	// Exact feasibility precheck.  Moves within a drain only shrink
	// free space and grow blacklists on candidate destinations (m
	// itself is excluded and skipEmpty freezes the used-machine set),
	// so a resident with no feasible destination now cannot gain one
	// mid-drain.  Bailing out here skips the move+rollback churn for
	// machines that can never be emptied — the common case once the
	// cluster is packed.  The memo caches the unexcluded search per
	// (app, demand) class: a destination other than m itself proves
	// feasibility for this drain too, and an Invalid result rules the
	// class out everywhere until the next successful drain.
	for _, c := range cs {
		key := drainKey{app: int(r.search.refOf(c)), demand: c.Demand}
		dest, ok := memo[key]
		if !ok {
			dest = r.search.findMachine(c, exclusion{skipEmpty: true})
			memo[key] = dest
		}
		if dest == topology.Invalid {
			return false, nil
		}
		if dest == m {
			// The memoised destination is the machine being drained;
			// only an exact per-machine search can settle this class.
			if r.search.findMachine(c, exclusion{machine: m, skipEmpty: true}) == topology.Invalid {
				return false, nil
			}
		}
	}
	// Every search below excludes m, and each move (and any rollback)
	// mutates it, so batch m's per-move index pull chains into a
	// single final write (no-op in eager modes; see
	// searcher.deferUpdates for the monotonicity argument).
	r.search.deferUpdates(m)
	defer r.search.resumeUpdates()
	type move struct {
		c  *workload.Container
		to topology.MachineID
	}
	var done []move
	rollback := func() error {
		for i := len(done) - 1; i >= 0; i-- {
			mv := done[i]
			if err := r.unplace(mv.c, mv.to); err != nil {
				return r.corrupt("drain rollback unplace", err)
			}
			if err := r.place(mv.c, m); err != nil {
				return r.corrupt("drain rollback replace", err)
			}
		}
		return nil
	}
	for _, c := range cs {
		if err := r.unplace(c, m); err != nil {
			return false, rollback()
		}
		dest := r.search.findMachine(c, exclusion{machine: m, skipEmpty: true})
		if dest == topology.Invalid {
			if err := r.place(c, m); err != nil {
				return false, r.corrupt("drain restore", err)
			}
			return false, rollback()
		}
		if err := r.place(c, dest); err != nil {
			if perr := r.place(c, m); perr != nil {
				return false, r.corrupt("drain restore after failed move", perr)
			}
			return false, rollback()
		}
		done = append(done, move{c: c, to: dest})
	}
	r.consolidations += len(done)
	r.met.consolidations.Add(int64(len(done)))
	for _, mv := range done {
		r.trc.Emit(obs.Event{Kind: obs.EvMigrate, Victim: mv.c.ID, Machine: int64(mv.to), Detail: "drain"})
	}
	return true, nil
}

// tryDefrag clears resource fragmentation (Fig. 7): when a container
// fits no machine's free space but does fit some machine's capacity,
// migrate the smallest containers off such a machine until the
// demand fits.  This is the "rescheduling incurs a cost ... bound to
// the worst complexity" mechanism of §IV.D.  Its latency lands in the
// migration histogram: defragmentation is the same relocate-to-admit
// rescue, differing only in what blocks the claimant.
//
//aladdin:hotpath-stop rescue path: defragmentation is rare and allocates for target ranking by design
func (r *run) tryDefrag(c *workload.Container) (bool, error) {
	if !r.met.on {
		return r.tryDefragInner(c)
	}
	start := r.opts.now()
	ok, err := r.tryDefragInner(c)
	r.met.migLat.Observe(r.opts.now().Sub(start).Microseconds())
	return ok, err
}

func (r *run) tryDefragInner(c *workload.Container) (bool, error) {
	type target struct {
		m    topology.MachineID
		free int64
	}
	var targets []target
	for _, m := range r.cluster.Machines() {
		if !m.Up() {
			continue
		}
		if !c.Demand.Fits(m.Capacity()) {
			continue
		}
		if !r.blacklist.Allows(m.ID, c) {
			continue
		}
		targets = append(targets, target{m: m.ID, free: m.Free().Dim(resource.CPU)})
	}
	// Most free space first: fewest containers to move.
	sort.Slice(targets, func(i, j int) bool {
		if targets[i].free != targets[j].free {
			return targets[i].free > targets[j].free
		}
		return targets[i].m < targets[j].m
	})
	const maxAttempts = 16
	for i, tg := range targets {
		if i >= maxAttempts {
			break
		}
		if ok, err := r.defragInto(tg.m, c); err != nil {
			return false, err
		} else if ok {
			return true, nil
		}
	}
	return false, nil
}

// defragInto moves the smallest containers off machine m until c
// fits, then places c; everything rolls back on failure.  A non-nil
// error means a rollback or restore step itself failed and the
// scheduler state is corrupt.
func (r *run) defragInto(m topology.MachineID, c *workload.Container) (bool, error) {
	machine := r.cluster.Machine(m)
	// Choose movers: smallest CPU first, skip nothing else — the
	// relocation search enforces their constraints at the new homes.
	// Unknown pre-placed residents are simply immovable furniture.
	all := r.w.Containers()
	var movers []*workload.Container
	for _, ord := range r.residents[m] {
		movers = append(movers, all[ord])
	}
	sort.Slice(movers, func(i, j int) bool {
		di, dj := movers[i].Demand.Dim(resource.CPU), movers[j].Demand.Dim(resource.CPU)
		if di != dj {
			return di < dj
		}
		return movers[i].ID < movers[j].ID
	})
	type move struct {
		c        *workload.Container
		from, to topology.MachineID
	}
	var done []move
	rollback := func() error {
		for i := len(done) - 1; i >= 0; i-- {
			mv := done[i]
			if err := r.unplace(mv.c, mv.to); err != nil {
				return r.corrupt("defrag rollback unplace", err)
			}
			if err := r.place(mv.c, mv.from); err != nil {
				return r.corrupt("defrag rollback replace", err)
			}
		}
		return nil
	}
	maxMoves := 4
	if rem := r.movesRemaining(); rem < maxMoves {
		maxMoves = rem // rescue-move budget binds tighter
	}
	for _, mv := range movers {
		if c.Demand.Fits(machine.Free()) {
			break
		}
		if len(done) >= maxMoves {
			break
		}
		if err := r.unplace(mv, m); err != nil {
			return false, rollback()
		}
		dest := r.search.findMachine(mv, exclusion{machine: m})
		if dest == topology.Invalid {
			if err := r.place(mv, m); err != nil {
				return false, r.corrupt("defrag restore", err)
			}
			continue // try the next mover
		}
		if err := r.place(mv, dest); err != nil {
			if perr := r.place(mv, m); perr != nil {
				return false, r.corrupt("defrag restore after failed move", perr)
			}
			continue
		}
		done = append(done, move{c: mv, from: m, to: dest})
	}
	if !c.Demand.Fits(machine.Free()) || !r.blacklist.Allows(m, c) {
		return false, rollback()
	}
	if err := r.place(c, m); err != nil {
		return false, rollback()
	}
	r.migrations += len(done)
	r.met.migrations.Add(int64(len(done)))
	for _, mv := range done {
		r.trc.Emit(obs.Event{Kind: obs.EvMigrate, Container: c.ID, Victim: mv.c.ID, Machine: int64(mv.to), Detail: "defrag"})
	}
	return true, nil
}

// tryPreemption evicts strictly-lower-priority containers to free
// resources for c (§III.B: weighted flows mean a high-priority
// container's placement dominates; the evicted victims re-queue).
// Returns the victims to requeue and whether preemption succeeded; a
// non-nil error means an eviction or restore step failed and the
// scheduler state is corrupt.
//
//aladdin:hotpath-stop rescue path: preemption is rare and allocates its victim sets by design
func (r *run) tryPreemption(c *workload.Container) ([]*workload.Container, bool, error) {
	if !r.met.on {
		return r.tryPreemptionInner(c)
	}
	start := r.opts.now()
	victims, ok, err := r.tryPreemptionInner(c)
	r.met.preLat.Observe(r.opts.now().Sub(start).Microseconds())
	return victims, ok, err
}

func (r *run) tryPreemptionInner(c *workload.Container) ([]*workload.Container, bool, error) {
	if !r.opts.DisableWeights && c.Priority <= workload.PriorityLow {
		return nil, false, nil
	}
	for _, gname := range r.cluster.SubClusters() {
		for _, rname := range r.cluster.SubCluster(gname).Racks {
			for _, mid := range r.cluster.Rack(rname).Machines {
				machine := r.cluster.Machine(mid)
				if !machine.Up() {
					continue
				}
				if !c.Demand.Fits(machine.Capacity()) {
					continue
				}
				if !r.blacklist.Allows(mid, c) {
					continue
				}
				victims := r.pickVictims(mid, c)
				if victims == nil {
					continue
				}
				// Evict victims that have requeue budget left.
				for _, v := range victims {
					if r.requeues[v.Ord] >= r.opts.maxRequeues() {
						victims = nil
						break
					}
				}
				if victims == nil {
					continue
				}
				if len(victims) > r.movesRemaining() {
					continue // over the rescue-move budget
				}
				for _, v := range victims {
					if err := r.unplace(v, mid); err != nil {
						return nil, false, r.corrupt("preemption evict", err)
					}
					r.preemptLog = append(r.preemptLog, preemptEvent{claimant: c, victim: v, machine: mid})
					r.requeues[v.Ord]++
					if v.Priority >= c.Priority {
						// Only reachable with DisableWeights: a
						// priority inversion the weighted flow would
						// have prevented.
						r.inversions = append(r.inversions, constraint.Violation{
							Kind: constraint.PriorityInversion, Machine: mid,
							ContainerA: c.ID, ContainerB: v.ID,
						})
					}
				}
				if err := r.place(c, mid); err != nil {
					// Should not happen: we just freed enough.
					for _, v := range victims {
						if perr := r.place(v, mid); perr != nil {
							return nil, false, r.corrupt("preemption restore victim", perr)
						}
					}
					return nil, false, nil
				}
				r.preempts += len(victims)
				r.met.preemptions.Add(int64(len(victims)))
				for _, v := range victims {
					r.trc.Emit(obs.Event{Kind: obs.EvPreempt, Container: c.ID, Victim: v.ID, Machine: int64(mid)})
				}
				return victims, true, nil
			}
		}
	}
	return nil, false, nil
}

// pickVictims chooses the smallest set of strictly-lower-priority
// containers on machine m whose eviction makes c fit, or nil when no
// such set exists.  Victims must also not be blacklist-relevant in a
// way that would keep c blocked (the blacklist check already passed,
// so only resources matter here).
func (r *run) pickVictims(m topology.MachineID, c *workload.Container) []*workload.Container {
	machine := r.cluster.Machine(m)
	free := machine.Free()
	if c.Demand.Fits(free) {
		// No preemption needed; caller's direct search should have
		// found it, but state may have changed.
		return []*workload.Container{}
	}
	var lower []*workload.Container
	cs := r.w.Containers()
	for _, ord := range r.residents[m] {
		other := cs[ord]
		// The weighted flow w_k·f (Equation 9) decides who may evict
		// whom: a container may only displace one with strictly
		// smaller weighted flow.  With a verified ladder this is
		// exactly "strictly lower priority"; the DisableWeights
		// ablation compares raw flows and so permits inversions.
		if r.evictable(other, c) {
			lower = append(lower, other)
		}
	}
	// Evict lowest priority first, largest demand first within a
	// class, until c fits.
	sortVictims(lower)
	var chosen []*workload.Container
	for _, v := range lower {
		free = free.Add(v.Demand)
		chosen = append(chosen, v)
		if c.Demand.Fits(free) {
			return chosen
		}
	}
	return nil
}

// evictable reports whether victim may be displaced by claimant under
// the flow-weighting rule.
func (r *run) evictable(victim, claimant *workload.Container) bool {
	if r.opts.DisableWeights {
		// Unweighted flows: a bigger raw flow wins regardless of
		// priority — the broken behaviour of Fig. 3a.
		return flowUnits(victim) < flowUnits(claimant)
	}
	return r.ladder.WeightedFlow(victim) < r.ladder.WeightedFlow(claimant) &&
		victim.Priority < claimant.Priority
}

// containerByID resolves a container ID through the run's index.
func (r *run) containerByID(id string) *workload.Container {
	return r.byID[id]
}

func sortVictims(vs []*workload.Container) {
	// Insertion sort: victim lists are tiny.
	for i := 1; i < len(vs); i++ {
		for j := i; j > 0; j-- {
			a, b := vs[j-1], vs[j]
			if a.Priority < b.Priority {
				break
			}
			if a.Priority == b.Priority && !b.Demand.Dominates(a.Demand) {
				break
			}
			vs[j-1], vs[j] = b, a
		}
	}
}
