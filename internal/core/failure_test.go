package core

import (
	"testing"

	"aladdin/internal/resource"
	"aladdin/internal/topology"
	"aladdin/internal/workload"
)

func TestFailMachineEvictsAndReplaces(t *testing.T) {
	w := sessionWorkload()
	cl := smallCluster(8)
	s := NewSession(DefaultOptions(), w, cl)
	for _, app := range []string{"web", "db", "batch"} {
		if _, err := s.Place(appContainers(w, app)); err != nil {
			t.Fatal(err)
		}
	}
	asg := s.Assignment()
	// Fail the machine hosting web/0.
	target, ok := asg["web/0"]
	if !ok {
		t.Fatal("web/0 not placed")
	}
	residents := len(cl.Machine(target).ContainerIDs())
	fr, err := s.FailMachine(target)
	if err != nil {
		t.Fatal(err)
	}
	if fr.Evicted != residents {
		t.Errorf("evicted %d, want %d residents", fr.Evicted, residents)
	}
	if fr.Replaced != fr.Evicted || len(fr.Stranded) != 0 {
		t.Errorf("with 7 machines spare everything should re-place: %+v", fr)
	}
	if fr.Elapsed <= 0 {
		t.Error("elapsed not stamped")
	}
	// The failed machine must be empty and hosting nothing.
	if got := len(cl.Machine(target).ContainerIDs()); got != 0 {
		t.Errorf("failed machine still hosts %d containers", got)
	}
	for id, m := range s.Assignment() {
		if m == target {
			t.Errorf("container %s still assigned to failed machine", id)
		}
	}
	if vs := s.Audit(); len(vs) != 0 {
		t.Errorf("violations after failure: %v", vs)
	}
	if err := s.FlowConservation(); err != nil {
		t.Errorf("flow conservation after failure: %v", err)
	}
	// Down machines drop out of metrics-visible capacity.
	if cl.DownMachines() != 1 {
		t.Errorf("DownMachines = %d, want 1", cl.DownMachines())
	}
}

func TestFailRecoverRoundTrip(t *testing.T) {
	w := sessionWorkload()
	cl := smallCluster(8)
	s := NewSession(DefaultOptions(), w, cl)
	for _, app := range []string{"web", "db", "batch"} {
		if _, err := s.Place(appContainers(w, app)); err != nil {
			t.Fatal(err)
		}
	}
	placedBefore := len(s.Assignment())
	if _, err := s.FailMachine(0); err != nil {
		t.Fatal(err)
	}
	if _, err := s.RecoverMachine(0); err != nil {
		t.Fatal(err)
	}
	if cl.DownMachines() != 0 {
		t.Errorf("DownMachines = %d after recovery, want 0", cl.DownMachines())
	}
	if !cl.Machine(0).Up() {
		t.Error("machine 0 should be up")
	}
	if got := len(s.Assignment()); got != placedBefore {
		t.Errorf("assignment size %d after round trip, want %d", got, placedBefore)
	}
	if vs := s.Audit(); len(vs) != 0 {
		t.Errorf("violations after round trip: %v", vs)
	}
	if err := s.FlowConservation(); err != nil {
		t.Errorf("flow conservation after round trip: %v", err)
	}
	// The recovered machine accepts placements again.
	if err := s.Remove("batch/0"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Place(appContainers(w, "batch")[:1]); err != nil {
		t.Fatal(err)
	}
}

func TestFailMachineErrors(t *testing.T) {
	w := sessionWorkload()
	cl := smallCluster(4)
	s := NewSession(DefaultOptions(), w, cl)
	if _, err := s.FailMachine(99); err == nil {
		t.Error("unknown machine should fail")
	}
	if _, err := s.RecoverMachine(99); err == nil {
		t.Error("recovering unknown machine should fail")
	}
	if _, err := s.RecoverMachine(0); err == nil {
		t.Error("recovering an up machine should fail")
	}
	if _, err := s.FailMachine(0); err != nil {
		t.Fatal(err)
	}
	if _, err := s.FailMachine(0); err == nil {
		t.Error("double failure should fail")
	}
	if _, err := s.RecoverMachine(0); err != nil {
		t.Fatal(err)
	}
}

func TestFailMachinePriorityOrderUnderScarcity(t *testing.T) {
	// Two machines.  pin (high) + filler (mid) pack the survivor to
	// the last core; vip (high) and bulk (low) share the machine that
	// fails.  Re-placement runs vip first (priority order): it can only
	// land by preempting filler, after which the survivor holds pin +
	// vip with 2 cores free — bulk has no preemptable victim left and
	// strands, as does the collateral filler.
	w := workload.MustNew([]*workload.App{
		{ID: "pin", Demand: resource.Cores(6, 4096), Replicas: 1, Priority: workload.PriorityHigh},
		{ID: "filler", Demand: resource.Cores(10, 8192), Replicas: 1, Priority: workload.PriorityMid},
		{ID: "vip", Demand: resource.Cores(8, 8192), Replicas: 1, Priority: workload.PriorityHigh},
		{ID: "bulk", Demand: resource.Cores(8, 8192), Replicas: 1, Priority: workload.PriorityLow},
	})
	cl := topology.New(topology.Config{
		Machines: 2, MachinesPerRack: 2, RacksPerCluster: 1,
		Capacity: resource.Cores(16, 32*1024),
	})
	s := NewSession(DefaultOptions(), w, cl)
	for _, app := range []string{"pin", "filler", "vip", "bulk"} {
		if _, err := s.Place(appContainers(w, app)); err != nil {
			t.Fatal(err)
		}
	}
	asg := s.Assignment()
	if asg["pin/0"] != asg["filler/0"] || asg["vip/0"] != asg["bulk/0"] || asg["pin/0"] == asg["vip/0"] {
		t.Fatalf("setup: want {pin,filler} and {vip,bulk} on separate machines, got %v", asg)
	}
	fr, err := s.FailMachine(asg["vip/0"])
	if err != nil {
		t.Fatal(err)
	}
	if fr.Evicted != 2 {
		t.Fatalf("evicted = %d, want 2", fr.Evicted)
	}
	asg = s.Assignment()
	if _, ok := asg["vip/0"]; !ok {
		t.Errorf("high-priority vip must be re-placed first; result %+v, assignment %v", fr, asg)
	}
	if _, ok := asg["bulk/0"]; ok {
		t.Errorf("low-priority bulk should be stranded on a full cluster; assignment %v", asg)
	}
	if fr.Replaced != 1 {
		t.Errorf("replaced = %d, want 1 (vip only); result %+v", fr.Replaced, fr)
	}
	if fr.Preemptions == 0 {
		t.Error("vip's rescue should have preempted filler")
	}
	if vs := s.Audit(); len(vs) != 0 {
		t.Errorf("violations: %v", vs)
	}
	if err := s.FlowConservation(); err != nil {
		t.Error(err)
	}
}

func TestDownMachineExcludedFromSearch(t *testing.T) {
	// All placements must avoid a down machine even when it has the
	// most free capacity.
	w := workload.MustNew([]*workload.App{
		{ID: "a", Demand: resource.Cores(4, 4096), Replicas: 6},
	})
	cl := smallCluster(4)
	s := NewSession(DefaultOptions(), w, cl)
	if _, err := s.FailMachine(0); err != nil {
		t.Fatal(err)
	}
	res, err := s.Place(appContainers(w, "a"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Undeployed) != 0 {
		t.Fatalf("undeployed on a 3-up-machine cluster: %v", res.Undeployed)
	}
	for id, m := range s.Assignment() {
		if m == 0 {
			t.Errorf("container %s placed on down machine", id)
		}
	}
	// Direct allocation on a down machine is refused at the topology
	// layer too.
	if err := cl.Machine(0).Allocate("ghost", resource.Cores(1, 1)); err == nil {
		t.Error("Allocate on a down machine should fail")
	}
}

func TestFailMachineStrandsUnknownResidents(t *testing.T) {
	// Residents pre-placed outside the workload universe die with the
	// machine: no flow to cancel, nothing to re-place.
	w := sessionWorkload()
	cl := smallCluster(4)
	if err := cl.Machine(2).Allocate("legacy/0", resource.Cores(2, 1024)); err != nil {
		t.Fatal(err)
	}
	s := NewSession(DefaultOptions(), w, cl)
	fr, err := s.FailMachine(2)
	if err != nil {
		t.Fatal(err)
	}
	if fr.Evicted != 1 || len(fr.Stranded) != 1 || fr.Stranded[0] != "legacy/0" {
		t.Errorf("unknown resident should be evicted and stranded: %+v", fr)
	}
	if err := s.FlowConservation(); err != nil {
		t.Error(err)
	}
}

func TestPlaceRejectsDuplicateInBatch(t *testing.T) {
	// Regression: a batch listing the same container twice must be
	// rejected during validation — before the fix the second copy
	// double-booked capacity because the "already placed" check only
	// saw pre-batch state.
	w := sessionWorkload()
	cl := smallCluster(8)
	s := NewSession(DefaultOptions(), w, cl)
	web := appContainers(w, "web")
	free := cl.Machine(0).Free()
	res, err := s.Place([]*workload.Container{web[0], web[0]})
	if err == nil {
		t.Fatal("duplicate container in batch should fail validation")
	}
	if res != nil {
		t.Errorf("validation failure must not return a result: %+v", res)
	}
	if _, ok := s.Assignment()["web/0"]; ok {
		t.Error("nothing should be placed after validation failure")
	}
	if got := cl.Machine(0).Free(); got != free {
		t.Errorf("machine usage changed by rejected batch: %v -> %v", free, got)
	}
}

func TestPlacePartialResultOnMidBatchError(t *testing.T) {
	// Regression: an internal r.place error mid-batch used to discard
	// the Result, leaving the caller blind to what was already live on
	// the cluster.  Force the error by allocating web/1's slot
	// out-of-band after validation would pass: findMachine sees the
	// space, r.place's Allocate then fails ("already on machine").
	w := workload.MustNew([]*workload.App{
		{ID: "web", Demand: resource.Cores(4, 8192), Replicas: 2, Priority: workload.PriorityHigh},
	})
	cl := topology.New(topology.Config{
		Machines: 1, MachinesPerRack: 1, RacksPerCluster: 1,
		Capacity: resource.Cores(32, 64*1024),
	})
	s := NewSession(DefaultOptions(), w, cl)
	if err := cl.Machine(0).Allocate("web/1", resource.Cores(4, 8192)); err != nil {
		t.Fatal(err)
	}
	res, err := s.Place(appContainers(w, "web"))
	if err == nil {
		t.Fatal("mid-batch collision should surface an error")
	}
	if res == nil {
		t.Fatal("mid-batch error must return the partial result")
	}
	if res.Deployed() != 1 {
		t.Errorf("partial result should report 1 deployed, got %d", res.Deployed())
	}
	if len(res.Undeployed) != 1 || res.Undeployed[0] != "web/1" {
		t.Errorf("partial result should report web/1 undeployed, got %v", res.Undeployed)
	}
	// The session view matches: web/0 live, web/1 not.
	if !s.Placed("web/0") {
		t.Error("web/0 should remain placed after the error")
	}
	if s.Placed("web/1") {
		t.Error("web/1 should not be marked placed")
	}
}
