package core

import (
	"fmt"

	"aladdin/internal/constraint"
	"aladdin/internal/resource"
	"aladdin/internal/topology"
	"aladdin/internal/workload"
)

// AuditViolationKind classifies one invariant breach found by the
// runtime Auditor.
type AuditViolationKind int

const (
	// AuditFlowConservation: Equation 2 fails at some vertex — flow
	// into an intermediate node does not equal flow out.
	AuditFlowConservation AuditViolationKind = iota
	// AuditTierFlow: a tier arc's flow disagrees with the placements
	// it should carry (a container's s→T arc vs its memoised units, a
	// machine's N→t arc vs the units of its placed containers, or the
	// network totals).
	AuditTierFlow
	// AuditIndexDrift: a tournament-tree node's cached aggregate
	// differs from the recompute over live machine state.
	AuditIndexDrift
	// AuditAggregateDrift: a rack or sub-cluster max-free aggregate
	// differs from the naive ground-truth recompute.
	AuditAggregateDrift
	// AuditAssignmentDrift: the ordinal assignment table and the
	// cluster's machine allocations disagree (a placed container's
	// machine does not host it, a hosted container is not recorded as
	// placed, or a placement sits on a down machine).
	AuditAssignmentDrift
	// AuditAntiAffinity: two anti-affine containers share a machine
	// (Equations 6–8 violated).
	AuditAntiAffinity
	// AuditPreemptionOrder: a recorded preemption evicted a victim
	// whose priority is not strictly below the claimant's — the
	// weighted-flow guarantee of §III.B broken.
	AuditPreemptionOrder
)

// String names the audit violation kind.
func (k AuditViolationKind) String() string {
	switch k {
	case AuditFlowConservation:
		return "flow-conservation"
	case AuditTierFlow:
		return "tier-flow"
	case AuditIndexDrift:
		return "index-drift"
	case AuditAggregateDrift:
		return "aggregate-drift"
	case AuditAssignmentDrift:
		return "assignment-drift"
	case AuditAntiAffinity:
		return "anti-affinity"
	case AuditPreemptionOrder:
		return "preemption-order"
	default:
		return "unknown"
	}
}

// AuditViolation is one invariant breach with a human-readable detail.
type AuditViolation struct {
	Kind   AuditViolationKind
	Detail string
}

// String renders the violation for logs.
func (v AuditViolation) String() string { return v.Kind.String() + ": " + v.Detail }

// Auditor is the runtime counterpart of aladdin-vet: where the static
// analyzers prove properties of the code, the Auditor re-derives the
// scheduler's coordinated views from ground truth and reports every
// divergence.  It is read-only (aside from flushing lazily-deferred
// aggregate refreshes, which any search would flush identically) and
// safe to call between any two scheduling operations: after each
// round, inside the simulator's failure-injection loop, or from a
// fuzzer driving random operation sequences.  A healthy session
// returns no violations; any violation means a bug in incremental
// state maintenance, not in the workload.
type Auditor struct {
	opts Options
	w    *workload.Workload
	r    *run
}

// NewAuditor builds an auditor over a session's live state.
func NewAuditor(s *Session) *Auditor {
	return &Auditor{opts: s.opts, w: s.w, r: s.r}
}

// Check runs every audit and returns the violations found, grouped in
// a fixed order: flow conservation, tier flows, index and aggregate
// drift, assignment consistency, anti-affinity, preemption ordering.
func (a *Auditor) Check() []AuditViolation {
	var out []AuditViolation
	out = append(out, a.checkFlows()...)
	out = append(out, a.checkIndex()...)
	out = append(out, a.checkAggregates()...)
	out = append(out, a.checkAssignment()...)
	out = append(out, a.checkAntiAffinity()...)
	out = append(out, a.checkPreemptions()...)
	return out
}

// checkFlows verifies Equation 2 at every vertex and then ties the
// flow values to the placements: each placed container's s→T arc
// carries exactly its flow units, each machine's N→t arc carries the
// sum over its placed containers, and the two tier totals agree.
func (a *Auditor) checkFlows() []AuditViolation {
	var out []AuditViolation
	r := a.r
	if err := r.net.checkConservation(); err != nil {
		out = append(out, AuditViolation{AuditFlowConservation, err.Error()})
	}
	perMachine := make(map[topology.MachineID]int64)
	var totalUnits int64
	for _, c := range r.w.Containers() {
		_, ct, err := r.net.ctOrd(c)
		if err != nil {
			out = append(out, AuditViolation{AuditTierFlow, err.Error()})
			continue
		}
		units := r.net.units[ct]
		srcFlow := r.net.g.Arc(int(r.net.srcArc[ct])).Flow()
		if m := r.asg[c.Ord]; m == topology.Invalid {
			if units != 0 || srcFlow != 0 {
				out = append(out, AuditViolation{AuditTierFlow, fmt.Sprintf(
					"container %s undeployed but s→T flow %d, memoised units %d", c.ID, srcFlow, units)})
			}
		} else {
			want := flowUnits(c)
			if units != want || srcFlow != want {
				out = append(out, AuditViolation{AuditTierFlow, fmt.Sprintf(
					"container %s on machine %d: s→T flow %d, memoised units %d, want %d",
					c.ID, m, srcFlow, units, want)})
			}
			perMachine[m] += want
			totalUnits += want
		}
	}
	for _, m := range r.cluster.Machines() {
		if got := r.net.g.Arc(int(r.net.ntArc[m.ID])).Flow(); got != perMachine[m.ID] {
			out = append(out, AuditViolation{AuditTierFlow, fmt.Sprintf(
				"machine %d N→t flow %d, placed container units %d", m.ID, got, perMachine[m.ID])})
		}
	}
	if got := r.net.totalFlow(); got != totalUnits {
		out = append(out, AuditViolation{AuditTierFlow, fmt.Sprintf(
			"total source flow %d, sum of placed units %d", got, totalUnits)})
	}
	return out
}

// checkIndex recomputes every tournament-tree node — leaves from live
// machine state, interior nodes from their children — and compares
// against the cached aggregates.  Skipped in naive-search mode, where
// the index is deliberately unmaintained.
func (a *Auditor) checkIndex() []AuditViolation {
	agg := a.r.search.agg
	if agg.naive {
		return nil
	}
	x := agg.idx
	var out []AuditViolation
	for p := 0; p < x.leaves; p++ {
		if got, want := x.nodes[x.leaves+p], x.leafValue(p); got != want {
			out = append(out, AuditViolation{AuditIndexDrift, fmt.Sprintf(
				"leaf %d: cached %+v, live %+v", p, got, want)})
		}
	}
	for node := x.leaves - 1; node >= 1; node-- {
		if got, want := x.nodes[node], x.pullValue(node); got != want {
			out = append(out, AuditViolation{AuditIndexDrift, fmt.Sprintf(
				"interior node %d: cached %+v, children give %+v", node, got, want)})
		}
	}
	return out
}

// checkAggregates compares the rack and sub-cluster max-free maps
// against the naive recompute from machine state.  The sub-cluster
// ground truth is derived from naive rack recomputes, not the cached
// rack map, so a corrupted rack aggregate cannot mask a matching
// sub-cluster corruption.
func (a *Auditor) checkAggregates() []AuditViolation {
	agg := a.r.search.agg
	agg.refresh() // flush legitimate lazy staleness first
	var out []AuditViolation
	for _, rname := range a.r.cluster.Racks() {
		if got, want := agg.rackMaxFree[rname], agg.naiveRackMaxFree(rname); got != want {
			out = append(out, AuditViolation{AuditAggregateDrift, fmt.Sprintf(
				"rack %s max-free: cached %s, live %s", rname, got, want)})
		}
	}
	for _, gname := range agg.subNames {
		var want resource.Vector
		for _, rname := range a.r.cluster.SubCluster(gname).Racks {
			want = want.Max(agg.naiveRackMaxFree(rname))
		}
		if got := agg.subMaxFree[gname]; got != want {
			out = append(out, AuditViolation{AuditAggregateDrift, fmt.Sprintf(
				"sub-cluster %s max-free: cached %s, live %s", gname, got, want)})
		}
	}
	return out
}

// checkAssignment cross-checks the ordinal assignment table against
// the cluster's machine allocations in both directions.
func (a *Auditor) checkAssignment() []AuditViolation {
	var out []AuditViolation
	r := a.r
	for _, c := range r.w.Containers() {
		m := r.asg[c.Ord]
		if m == topology.Invalid {
			continue
		}
		machine := r.cluster.Machine(m)
		if machine == nil {
			out = append(out, AuditViolation{AuditAssignmentDrift, fmt.Sprintf(
				"container %s assigned to unknown machine %d", c.ID, m)})
			continue
		}
		if !machine.Hosts(c.ID) {
			out = append(out, AuditViolation{AuditAssignmentDrift, fmt.Sprintf(
				"container %s assigned to machine %d which does not host it", c.ID, m)})
		}
		if !machine.Up() {
			out = append(out, AuditViolation{AuditAssignmentDrift, fmt.Sprintf(
				"container %s placed on down machine %d", c.ID, m)})
		}
	}
	for _, machine := range r.cluster.Machines() {
		for _, id := range machine.ContainerIDs() {
			c := r.byID[id]
			if c == nil {
				continue // pre-placed resident unknown to the workload
			}
			if r.asg[c.Ord] != machine.ID {
				out = append(out, AuditViolation{AuditAssignmentDrift, fmt.Sprintf(
					"machine %d hosts %s but the assignment records machine %d",
					machine.ID, id, r.asg[c.Ord])})
			}
		}
	}
	return out
}

// checkAntiAffinity re-audits the placement against Equations 6–8.
func (a *Auditor) checkAntiAffinity() []AuditViolation {
	var out []AuditViolation
	for _, v := range constraint.AuditAntiAffinity(a.w, a.r.assignmentMap()) {
		out = append(out, AuditViolation{AuditAntiAffinity, v.String()})
	}
	return out
}

// checkPreemptions verifies the §III.B guarantee on the run's
// preemption log: every victim's priority is strictly below its
// claimant's.  Under the DisableWeights ablation inversions are the
// expected failure mode (they are recorded as sched inversions
// instead), so the check is skipped.
func (a *Auditor) checkPreemptions() []AuditViolation {
	if a.opts.DisableWeights {
		return nil
	}
	var out []AuditViolation
	for _, ev := range a.r.preemptLog {
		if ev.victim.Priority >= ev.claimant.Priority {
			out = append(out, AuditViolation{AuditPreemptionOrder, fmt.Sprintf(
				"claimant %s (priority %d) evicted victim %s (priority %d) on machine %d",
				ev.claimant.ID, ev.claimant.Priority, ev.victim.ID, ev.victim.Priority, ev.machine)})
		}
	}
	return out
}

// AuditInvariants runs the full runtime Auditor over the session: flow
// conservation per tier, index/aggregate consistency, assignment
// cross-checks, anti-affinity, and preemption priority ordering.  It
// subsumes Audit (which covers anti-affinity only) and is meant for
// scheduling-round boundaries, failure-injection loops and fuzzing.
func (s *Session) AuditInvariants() []AuditViolation {
	if !s.r.met.on {
		return NewAuditor(s).Check()
	}
	start := s.opts.now()
	out := NewAuditor(s).Check()
	s.r.met.auditLat.Observe(s.opts.now().Sub(start).Microseconds())
	return out
}
