package core

import (
	"fmt"
	"sync"
	"testing"

	"aladdin/internal/resource"
	"aladdin/internal/workload"
)

// TestShardedConsolidateNIncremental proves the sharded sweep is
// genuinely incremental: with a move budget of 1 every call performs
// at most one move, and a placement issued between two calls lands
// immediately instead of queueing behind the rest of the drain — the
// old Consolidate pinned placeMu for the whole sweep, so this
// interleaving was impossible.
func TestShardedConsolidateNIncremental(t *testing.T) {
	w := workload.MustNew([]*workload.App{
		{ID: "fill", Demand: resource.Cores(8, 16384), Replicas: 64},
		{ID: "mid", Demand: resource.Cores(8, 16384), Replicas: 2},
	})
	s := newSharded(t, shardedOpts(2, false), w, shardCluster(16))
	res, err := s.Place(appContainers(w, "fill"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Undeployed) != 0 {
		t.Fatalf("fill left %d undeployed", len(res.Undeployed))
	}
	// Scatter: one resident per machine, worst case for packing.
	for m, ids := range byMachine(s.Assignment()) {
		for _, id := range ids[1:] {
			if err := s.Remove(id); err != nil {
				t.Fatalf("remove %s from machine %d: %v", id, m, err)
			}
		}
	}
	if used := len(byMachine(s.Assignment())); used != 16 {
		t.Fatalf("scatter produced %d used machines, want 16", used)
	}

	mid := appContainers(w, "mid")
	var calls, moves int
	for {
		r, err := s.ConsolidateN(1)
		if err != nil {
			t.Fatalf("ConsolidateN(1) call %d: %v", calls, err)
		}
		if r.Moves > 1 {
			t.Fatalf("call %d moved %d containers on a budget of 1", calls, r.Moves)
		}
		moves += r.Moves
		calls++
		// Mid-sweep placements: the budgeted sweep holds no lock
		// between calls, so these must land right away.
		if calls == 3 {
			for _, c := range mid {
				if _, err := s.Place([]*workload.Container{c}); err != nil {
					t.Fatalf("mid-sweep Place(%s): %v", c.ID, err)
				}
				if !s.Placed(c.ID) {
					t.Fatalf("mid-sweep placement %s did not land between drain steps", c.ID)
				}
			}
		}
		if !r.More {
			break
		}
		if calls > 128 {
			t.Fatalf("budget-1 sweep did not converge after %d calls", calls)
		}
	}
	if calls < 4 {
		t.Fatalf("sweep converged in %d calls; mid-sweep placement never interleaved", calls)
	}
	if moves == 0 {
		t.Fatal("sweep converged without moving anything on a 16-way scatter")
	}
	// 16 fill containers + 2 mid at 8 cores on 32-core machines pack
	// into at most 5 machines (one shard holds the extra pair).
	if used := len(byMachine(s.Assignment())); used > 6 {
		t.Errorf("post-sweep packing uses %d machines, want <= 6", used)
	}
	for _, c := range mid {
		if !s.Placed(c.ID) {
			t.Errorf("mid-sweep placement %s lost during consolidation", c.ID)
		}
	}
	mustCleanSharded(t, s, calls, "consolidate")
}

// TestShardedConcurrentConsolidateRacingPlace is the -race proof for
// the incremental sweep: one goroutine runs budgeted consolidation
// cycles in a loop while another streams placements and departures
// into the same shards.  Because ConsolidateN never takes placeMu and
// releases each shard lock between chunks, the traffic interleaves;
// afterwards every shard must be audit-clean and flow-conserving.
func TestShardedConcurrentConsolidateRacingPlace(t *testing.T) {
	apps := make([]*workload.App, 16)
	for i := range apps {
		apps[i] = &workload.App{
			ID:       fmt.Sprintf("app%02d", i),
			Demand:   resource.Cores(2, 4096),
			Replicas: 8,
		}
	}
	w := workload.MustNew(apps)
	s := newSharded(t, shardedOpts(4, false), w, shardCluster(32))
	containers := w.Containers()
	half := len(containers) / 2
	if _, err := s.Place(containers[:half]); err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		defer close(done)
		for i, c := range containers[half:] {
			if _, err := s.Place([]*workload.Container{c}); err != nil {
				t.Errorf("Place(%s): %v", c.ID, err)
				return
			}
			// Departures reopen holes for the sweep to chase.
			if i%4 == 3 {
				victim := containers[half+i-3]
				if err := s.Remove(victim.ID); err != nil {
					t.Errorf("Remove(%s): %v", victim.ID, err)
					return
				}
			}
		}
	}()
	cycles := 0
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			if _, err := s.ConsolidateN(2); err != nil {
				t.Errorf("ConsolidateN during churn: %v", err)
				return
			}
			cycles++
		}
	}()
	wg.Wait()
	if cycles == 0 {
		t.Log("consolidator never cycled before the placer finished")
	}

	// Let the sweep finish uncontended, then audit everything.
	if _, err := s.ConsolidateN(0); err != nil {
		t.Fatalf("final ConsolidateN: %v", err)
	}
	mustCleanSharded(t, s, cycles, "concurrent consolidate")
	// The placer removed every 4th streamed container (index i-3 at
	// each i%4==3 step, i.e. the indices divisible by 4).
	for i, c := range containers[half:] {
		removed := i%4 == 0 && i+3 < half
		if got := s.Placed(c.ID); got == removed {
			t.Errorf("container %s: placed=%v, want %v", c.ID, got, !removed)
		}
	}
}
