package core

import (
	"fmt"
	"testing"

	"aladdin/internal/constraint"
	"aladdin/internal/resource"
	"aladdin/internal/topology"
	"aladdin/internal/trace"
	"aladdin/internal/workload"
)

// benchFilledCluster builds a cluster and fills it with a real
// scheduling run (including consolidation), so search benchmarks see
// production-shaped occupancy rather than a synthetic fill.  factor is
// the trace downscale (50 ≈ 1.9k containers, 1 ≈ 100k).
func benchFilledCluster(b *testing.B, machines, factor int) *topology.Cluster {
	b.Helper()
	w := trace.MustGenerate(trace.Scaled(42, factor))
	cl := topology.New(topology.AlibabaConfig(machines))
	if _, err := NewDefault().Schedule(w, cl, w.Arrange(workload.OrderSubmission)); err != nil {
		b.Fatal(err)
	}
	return cl
}

// benchProbeDemands are the demand shapes the probes cycle through:
// the small/medium/large/max classes of the Alibaba distribution.
var benchProbeDemands = []resource.Vector{
	resource.Cores(1, 2*1024),
	resource.Cores(4, 8*1024),
	resource.Cores(8, 16*1024),
	resource.Cores(16, 32*1024),
}

// BenchmarkSearchIndexed isolates the search layer: findMachine on a
// pre-filled cluster, indexed versus the naive scan retained behind
// Options.NaiveSearch.  Three searches are measured per mode:
//
//   - first-fit: the DL search every arrival runs;
//   - first-fit/skipEmpty: consolidation's drain-precheck search,
//     which must not open empty machines;
//   - best-fit: the no-DL exhaustive search (naive scans the whole
//     cluster; the index prunes by branch-and-bound).
func BenchmarkSearchIndexed(b *testing.B) {
	for _, sc := range []struct {
		name     string
		machines int
		factor   int
	}{
		{"small", 384, 50},
		{"medium", 1024, 50},
		{"large", 10000, 5},
	} {
		cl := benchFilledCluster(b, sc.machines, sc.factor)
		uw := workload.MustNew(nil)
		bl := constraint.NewBlacklist(uw, cl.Size())
		for _, mode := range []struct {
			name string
			opts func() Options
		}{
			{"indexed", DefaultOptions},
			{"naive", func() Options {
				o := DefaultOptions()
				o.NaiveSearch = true
				return o
			}},
		} {
			for _, search := range []struct {
				name  string
				tweak func(*Options)
				excl  exclusion
			}{
				{"first-fit", func(*Options) {}, noExclusion},
				{"first-fit-skipEmpty", func(*Options) {}, exclusion{machine: topology.Invalid, skipEmpty: true}},
				{"best-fit", func(o *Options) { o.DepthLimiting = false }, noExclusion},
			} {
				name := fmt.Sprintf("%s/%s/%s", sc.name, mode.name, search.name)
				b.Run(name, func(b *testing.B) {
					opts := mode.opts()
					search.tweak(&opts)
					s := newSearcher(opts, uw, cl, bl)
					probe := &workload.Container{ID: "probe/0", App: "probe"}
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						probe.Demand = benchProbeDemands[i%len(benchProbeDemands)]
						s.findMachine(probe, search.excl)
					}
				})
			}
		}
	}
}
