package core

import (
	"testing"
	"time"

	"aladdin/internal/obs"
	"aladdin/internal/resource"
	"aladdin/internal/workload"
)

// stepClock is a deterministic fake for Options.Clock: every read
// advances by a fixed step, so any pair of reads with no reads in
// between measures exactly one step.
type stepClock struct {
	t    time.Time
	step time.Duration
}

func (c *stepClock) now() time.Time {
	c.t = c.t.Add(c.step)
	return c.t
}

// TestPhaseHistogramsExactWithFakeClock drives a session whose every
// container places directly (no rescue passes fire), under a clock
// that steps 100µs per read.  With that workload the clock-read
// schedule is fully determined: Place reads once at entry, findMachine
// reads twice per container, Place reads once at exit.  Every search
// observation must therefore be exactly one step, and the batch
// histogram must hold exactly (2n+1) steps.
func TestPhaseHistogramsExactWithFakeClock(t *testing.T) {
	const step = 100 * time.Microsecond
	clk := &stepClock{t: time.Unix(0, 0), step: step}
	reg := obs.NewRegistry()
	opts := DefaultOptions()
	opts.Clock = clk.now
	opts.Metrics = reg

	w := workload.MustNew([]*workload.App{
		{ID: "web", Demand: resource.Cores(4, 8192), Replicas: 4, Priority: workload.PriorityHigh},
	})
	cl := smallCluster(4)
	s := NewSession(opts, w, cl)
	res, err := s.Place(w.Containers())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Undeployed) != 0 {
		t.Fatalf("undeployed: %v", res.Undeployed)
	}

	const n = 4 // containers, all placed by direct search
	snap := reg.Snapshot()

	search := snap.Histograms["aladdin_search_duration_us"]
	if search.Count != n {
		t.Fatalf("search observations = %d, want %d", search.Count, n)
	}
	if want := int64(n * step.Microseconds()); search.Sum != want {
		t.Fatalf("search duration sum = %dµs, want %dµs (every search exactly one clock step)", search.Sum, want)
	}
	// 100µs lands precisely in the le=100 bucket of the shared ladder.
	for i, bound := range search.Bounds {
		if bound == step.Microseconds() && search.Counts[i] != n {
			t.Fatalf("le=%d bucket holds %d, want all %d observations", bound, search.Counts[i], n)
		}
	}

	batch := snap.Histograms["aladdin_place_batch_duration_us"]
	if batch.Count != 1 {
		t.Fatalf("batch observations = %d, want 1", batch.Count)
	}
	// Reads: 1 at entry + 2 per search + 1 at exit → elapsed spans
	// 2n+1 steps between the first and last read.
	if want := int64((2*n + 1) * step.Microseconds()); batch.Sum != want {
		t.Fatalf("batch duration = %dµs, want %dµs", batch.Sum, want)
	}

	if got := snap.Counters["aladdin_search_indexed_total"]; got != n {
		t.Fatalf("indexed searches = %d, want %d", got, n)
	}
	if got := snap.Counters["aladdin_search_naive_total"]; got != 0 {
		t.Fatalf("naive searches = %d, want 0", got)
	}
	// DL is on and every search succeeded → every search cut off early.
	if got := snap.Counters["aladdin_dl_cutoffs_total"]; got != n {
		t.Fatalf("DL cutoffs = %d, want %d", got, n)
	}
	if got := snap.Counters["aladdin_placements_total"]; got != n {
		t.Fatalf("placements = %d, want %d", got, n)
	}
	if got := snap.Gauges["aladdin_flow_containers_placed"]; got != n {
		t.Fatalf("placed gauge = %d, want %d", got, n)
	}
	if got := snap.Gauges["aladdin_machines_up"]; got != 4 {
		t.Fatalf("machines up = %d, want 4", got)
	}
}

// TestILCacheCountersAndFailureMetrics covers the IL hit/miss split,
// the audit-latency histogram, and the failure/recovery metrics.
func TestILCacheCountersAndFailureMetrics(t *testing.T) {
	clk := &stepClock{t: time.Unix(0, 0), step: 50 * time.Microsecond}
	reg := obs.NewRegistry()
	sink := &obs.SliceSink{}
	opts := DefaultOptions()
	opts.Migration = false
	opts.Preemption = false
	opts.Clock = clk.now
	opts.Metrics = reg
	opts.Tracer = obs.NewTracer(sink)

	// A 1-machine cluster: the first oversized replica fails the
	// search and primes the IL cache; the remaining siblings hit it.
	w := workload.MustNew([]*workload.App{
		{ID: "huge", Demand: resource.Cores(64, 128*1024), Replicas: 3},
		{ID: "tiny", Demand: resource.Cores(1, 1024), Replicas: 1},
	})
	cl := smallCluster(1)
	s := NewSession(opts, w, cl)
	if _, err := s.Place(w.Containers()); err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	if got := snap.Counters["aladdin_il_cache_hits_total"]; got != 2 {
		t.Fatalf("IL hits = %d, want 2 (two huge siblings skipped)", got)
	}
	// huge[0] and tiny both went through the search.
	if got := snap.Counters["aladdin_il_cache_misses_total"]; got != 2 {
		t.Fatalf("IL misses = %d, want 2", got)
	}

	if vs := s.AuditInvariants(); len(vs) != 0 {
		t.Fatalf("audit violations: %v", vs)
	}
	snap = reg.Snapshot()
	if got := snap.Histograms["aladdin_audit_duration_us"].Count; got != 1 {
		t.Fatalf("audit observations = %d, want 1", got)
	}

	mid := cl.Machines()[0].ID
	if _, err := s.FailMachine(mid); err != nil {
		t.Fatal(err)
	}
	if _, err := s.RecoverMachine(mid); err != nil {
		t.Fatal(err)
	}
	snap = reg.Snapshot()
	if got := snap.Counters["aladdin_machine_failures_total"]; got != 1 {
		t.Fatalf("failures = %d, want 1", got)
	}
	if got := snap.Counters["aladdin_machine_recoveries_total"]; got != 1 {
		t.Fatalf("recoveries = %d, want 1", got)
	}
	if got := snap.Gauges["aladdin_machines_down"]; got != 0 {
		t.Fatalf("machines down = %d, want 0 after recovery", got)
	}
	if got := snap.Histograms["aladdin_fail_machine_duration_us"].Count; got != 1 {
		t.Fatalf("failure latency observations = %d, want 1", got)
	}

	if got := sink.Count(obs.EvFailMachine); got != 1 {
		t.Fatalf("fail events = %d, want 1", got)
	}
	if got := sink.Count(obs.EvRecoverMachine); got != 1 {
		t.Fatalf("recover events = %d, want 1", got)
	}
	if got := sink.Count(obs.EvPlaceStart); got != 1 {
		t.Fatalf("place-start events = %d, want 1", got)
	}
	if got := sink.Count(obs.EvAugmentingPath); got < 1 {
		t.Fatalf("augmenting-path events = %d, want >= 1", got)
	}
}

// TestPreemptionAndCorruptionEvents checks the preemption counter,
// latency histogram and trace events through a real eviction.
func TestPreemptionAndCorruptionEvents(t *testing.T) {
	reg := obs.NewRegistry()
	sink := &obs.SliceSink{}
	opts := DefaultOptions()
	opts.Migration = false
	opts.Metrics = reg
	opts.Tracer = obs.NewTracer(sink)

	// One machine, filled by low-priority containers; a high-priority
	// arrival must preempt.
	w := workload.MustNew([]*workload.App{
		{ID: "low", Demand: resource.Cores(16, 32*1024), Replicas: 2, Priority: workload.PriorityLow},
		{ID: "high", Demand: resource.Cores(16, 32*1024), Replicas: 1, Priority: workload.PriorityHigh},
	})
	cl := smallCluster(1)
	s := NewSession(opts, w, cl)
	if _, err := s.Place(appContainers(w, "low")); err != nil {
		t.Fatal(err)
	}
	res, err := s.Place(appContainers(w, "high"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Preemptions == 0 {
		t.Fatalf("expected a preemption, got none (undeployed %v)", res.Undeployed)
	}

	snap := reg.Snapshot()
	if got := snap.Counters["aladdin_preemptions_total"]; got != int64(res.Preemptions) {
		t.Fatalf("preemption counter = %d, want %d", got, res.Preemptions)
	}
	if got := snap.Histograms["aladdin_preemption_duration_us"].Count; got < 1 {
		t.Fatalf("preemption latency observations = %d, want >= 1", got)
	}
	if got := sink.Count(obs.EvPreempt); got != res.Preemptions {
		t.Fatalf("preempt events = %d, want %d", got, res.Preemptions)
	}
	if got := snap.Counters["aladdin_corruptions_total"]; got != 0 {
		t.Fatalf("corruption counter = %d, want 0 on a healthy run", got)
	}
}

// TestDisabledInstrumentationAllocatesNothing is the satellite's
// zero-cost guarantee at the core layer: with no registry and no
// tracer attached, the record calls instrumented code makes are
// nil-receiver no-ops with 0 allocations.
func TestDisabledInstrumentationAllocatesNothing(t *testing.T) {
	r := &run{} // zero coreMetrics, nil tracer: the disabled shape
	allocs := testing.AllocsPerRun(1000, func() {
		r.met.searchLat.Observe(42)
		r.met.ilHits.Inc()
		r.met.placements.Inc()
		r.met.placedGauge.Add(1)
		r.trc.Emit(obs.Event{Kind: obs.EvAugmentingPath, Container: "web-0", Machine: 3})
	})
	if allocs != 0 {
		t.Fatalf("disabled instrumentation allocates %v bytes/op, want 0", allocs)
	}
}

// TestMetricsSharedAcrossSessionLifetime: a second batch through the
// same session accumulates into the same registry families, and the
// batch scheduler path (Schedule) records into a registry too.
func TestMetricsSharedAcrossSessionLifetime(t *testing.T) {
	reg := obs.NewRegistry()
	opts := DefaultOptions()
	opts.Metrics = reg

	w := sessionWorkload()
	cl := smallCluster(8)
	s := NewSession(opts, w, cl)
	if _, err := s.Place(appContainers(w, "batch")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Place(appContainers(w, "web")); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if got := snap.Histograms["aladdin_place_batch_duration_us"].Count; got != 2 {
		t.Fatalf("batch observations = %d, want 2", got)
	}

	reg2 := obs.NewRegistry()
	opts2 := DefaultOptions()
	opts2.Metrics = reg2
	w2 := sessionWorkload()
	cl2 := smallCluster(8)
	if _, err := New(opts2).Schedule(w2, cl2, w2.Arrange(workload.OrderSubmission)); err != nil {
		t.Fatal(err)
	}
	snap2 := reg2.Snapshot()
	if got := snap2.Histograms["aladdin_place_batch_duration_us"].Count; got != 1 {
		t.Fatalf("Schedule batch observations = %d, want 1", got)
	}
	if snap2.Counters["aladdin_placements_total"] == 0 {
		t.Fatalf("Schedule recorded no placements")
	}
}
