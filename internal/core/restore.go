package core

import (
	"fmt"
	"sort"
	"time"

	"aladdin/internal/constraint"
	"aladdin/internal/topology"
	"aladdin/internal/workload"
)

// SessionState is the portable state of a live Session: everything a
// warm restart needs beyond the cluster topology and the workload
// universe (which are checkpointed alongside — the snapshot stores
// the topology, the workload travels by reference as its trace).
//
// The scheduler's derived structures — the flow network, the
// tournament-tree index, rack/sub-cluster aggregates and blacklists —
// are deliberately absent: RestoreSession rebuilds them by replaying
// the assignment through the same place path live scheduling uses, so
// they can never disagree with the captured ground truth.  The IL
// cache's live entries travel as ILFailed so a restored session's
// first batch pays no re-miss storm; the sibling search hint restores
// cold (a pure memo whose absence changes explored-vertex counts but
// never placement outcomes).
type SessionState struct {
	// Assignment maps every currently-placed container to its machine.
	Assignment constraint.Assignment
	// Undeployed lists containers that were submitted but are not
	// currently placed — arrival rejections, preemption strandings and
	// failure evictions awaiting re-submission.  Sorted.
	Undeployed []string
	// Stranded lists the subset of Undeployed that was knocked out by
	// machine failures and is eligible for automatic retry (on
	// RecoverMachine or a rebalancer sweep).  Omitting it restores
	// every undeployed container as requiring explicit re-submission.
	// Sorted.
	Stranded []string
	// Requeues records the consumed preemption re-queue budget for
	// containers that have been evicted at least once; omitting it
	// would let a restored session preempt a victim past its budget.
	Requeues map[string]int
	// ILFailed lists applications currently proven unplaceable by the
	// isomorphism-limiting cache (entries live at the capture's
	// release generation).  Valid to re-apply on restore because the
	// restored cluster state is exactly the captured one: no capacity
	// has been released since the proofs were recorded.  Sorted.
	ILFailed []string
}

// Cluster returns the session's live cluster topology.
func (s *Session) Cluster() *topology.Cluster { return s.cluster }

// Workload returns the session's workload universe.
func (s *Session) Workload() *workload.Workload { return s.w }

// Options returns the options the session was built with.
func (s *Session) Options() Options { return s.opts }

// ExportState captures the session's portable state.  The returned
// value shares nothing with the session; it stays valid across
// subsequent scheduling.
func (s *Session) ExportState() *SessionState {
	st := &SessionState{
		Assignment: make(constraint.Assignment),
		Requeues:   make(map[string]int),
	}
	for id, m := range s.r.assignmentMap() {
		st.Assignment[id] = m
	}
	for _, c := range s.w.Containers() {
		// Stranded is an undeployed sub-state: such containers appear
		// in Undeployed (the complete not-placed ledger) and again in
		// Stranded so a restored session keeps auto-retrying them.
		switch s.ledger[c.Ord] {
		case ledgerUndeployed:
			st.Undeployed = append(st.Undeployed, c.ID)
		case ledgerStranded:
			st.Undeployed = append(st.Undeployed, c.ID)
			st.Stranded = append(st.Stranded, c.ID)
		}
		if n := s.r.requeues[c.Ord]; n > 0 {
			st.Requeues[c.ID] = n
		}
	}
	sort.Strings(st.Undeployed)
	sort.Strings(st.Stranded)
	if s.opts.IsomorphismLimiting {
		for ao, a := range s.w.Apps() {
			if s.r.search.il.valid(ao) {
				st.ILFailed = append(st.ILFailed, a.ID)
			}
		}
		sort.Strings(st.ILFailed)
	}
	return st
}

// RestoreSession rebuilds a live Session from a checkpointed state:
// the cluster must be a fresh (allocation-free) topology — typically
// topology.FromSpecs over the snapshot's machine specs, with failed
// machines already marked down — and the workload must be the same
// universe the state was captured from.  Every placement is replayed
// through the scheduler's single place path, so the flow network,
// blacklists, tournament-tree index and aggregates are rebuilt
// exactly as live scheduling would have left them; a restored session
// and a never-restarted one given the same subsequent batches produce
// identical assignments.
//
// Restore is strict: unknown containers, machines out of range or
// down, double placements, and containers listed both placed and
// undeployed all fail with an error rather than restoring a silently
// diverged state.
func RestoreSession(opts Options, w *workload.Workload, cluster *topology.Cluster, st *SessionState) (*Session, error) {
	if st == nil {
		return nil, fmt.Errorf("core: restore: nil state")
	}
	var start time.Time
	if opts.Metrics != nil {
		start = opts.now()
	}
	s := NewSession(opts, w, cluster)
	r := s.r

	// Deterministic replay in workload (ordinal) order.  The final
	// state is order-independent — flows, blacklist sets and aggregates
	// all commute — but a fixed order keeps restores reproducible for
	// debugging.
	for _, c := range w.Containers() {
		m, ok := st.Assignment[c.ID]
		if !ok {
			continue
		}
		machine := cluster.Machine(m)
		if machine == nil {
			return nil, fmt.Errorf("core: restore: container %s assigned to unknown machine %d", c.ID, m)
		}
		if !machine.Up() {
			return nil, fmt.Errorf("core: restore: container %s assigned to down machine %s", c.ID, machine.Name)
		}
		if err := r.place(c, m); err != nil {
			return nil, fmt.Errorf("core: restore: %w", err)
		}
		s.ledger[c.Ord] = ledgerPlaced
	}
	// Pure validation sweep: which offending container the error names
	// may vary with map order, but whether an error is returned cannot.
	//aladdin:nondeterministic-ok error-path-only selection
	for id := range st.Assignment {
		if r.byID[id] == nil {
			return nil, fmt.Errorf("core: restore: container %s not in workload universe", id)
		}
	}
	for _, id := range st.Undeployed {
		c := r.byID[id]
		if c == nil {
			return nil, fmt.Errorf("core: restore: undeployed container %s not in workload universe", id)
		}
		if s.ledger[c.Ord] == ledgerPlaced {
			return nil, fmt.Errorf("core: restore: container %s both placed and undeployed", id)
		}
		s.ledger[c.Ord] = ledgerUndeployed
	}
	for _, id := range st.Stranded {
		c := r.byID[id]
		if c == nil {
			return nil, fmt.Errorf("core: restore: stranded container %s not in workload universe", id)
		}
		if s.ledger[c.Ord] != ledgerUndeployed {
			return nil, fmt.Errorf("core: restore: stranded container %s not in the undeployed ledger", id)
		}
		s.setLedger(c.Ord, ledgerStranded)
	}
	// Distinct ordinals: the writes commute, and which entry an error
	// names may vary with map order but not whether one is returned.
	//aladdin:nondeterministic-ok commutative writes, error-path-only selection
	for id, n := range st.Requeues {
		c := r.byID[id]
		if c == nil {
			return nil, fmt.Errorf("core: restore: requeue ledger references unknown container %s", id)
		}
		if n < 0 {
			return nil, fmt.Errorf("core: restore: container %s has negative requeue count %d", id, n)
		}
		r.requeues[c.Ord] = n
	}
	// Warm the IL cache last: the replay above never released capacity
	// (place only), so the captured unplaceability proofs still hold at
	// the fresh session's release generation.  Skipped when the restored
	// configuration runs without IL — the memo would never be read.
	if opts.IsomorphismLimiting {
		for _, appID := range st.ILFailed {
			ref := r.blacklist.Ref(appID)
			if ref == constraint.NoApp {
				return nil, fmt.Errorf("core: restore: IL cache references unknown app %s", appID)
			}
			r.search.il.note(ref)
		}
	}
	if r.met.on {
		r.met.restoreLat.Observe(opts.now().Sub(start).Microseconds())
		r.met.restores.Inc()
	}
	return s, nil
}
