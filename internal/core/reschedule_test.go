package core

import (
	"reflect"
	"sort"
	"testing"

	"aladdin/internal/resource"
	"aladdin/internal/topology"
	"aladdin/internal/workload"
)

// mustClean fails the test unless the session passes the invariant
// auditor and flow conservation.
func mustClean(t *testing.T, s *Session, op string) {
	t.Helper()
	if vs := s.AuditInvariants(); len(vs) != 0 {
		t.Fatalf("%s: invariants broken: %v", op, vs)
	}
	if err := s.FlowConservation(); err != nil {
		t.Fatalf("%s: flow conservation: %v", op, err)
	}
}

// byMachine groups the current assignment's container IDs per machine,
// each group sorted for determinism.
func byMachine(asg map[string]topology.MachineID) map[topology.MachineID][]string {
	out := make(map[topology.MachineID][]string)
	for id, m := range asg {
		out[m] = append(out[m], id)
	}
	for _, ids := range out {
		sort.Strings(ids)
	}
	return out
}

// fragmentSession fills every machine of a fresh session with 8-core
// containers, then removes all but one container per machine — the
// worst-case scatter a consolidation pass exists to clean up.  Returns
// the session and the number of machines left holding one container.
func fragmentSession(t *testing.T, machines int) (*Session, int) {
	t.Helper()
	w := workload.MustNew([]*workload.App{
		{ID: "fill", Demand: resource.Cores(8, 16384), Replicas: machines * 4},
	})
	s := NewSession(DefaultOptions(), w, smallCluster(machines))
	res, err := s.Place(appContainers(w, "fill"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Undeployed) != 0 {
		t.Fatalf("fill left %d undeployed", len(res.Undeployed))
	}
	for m, ids := range byMachine(s.Assignment()) {
		for _, id := range ids[1:] {
			if err := s.Remove(id); err != nil {
				t.Fatalf("remove %s from machine %d: %v", id, m, err)
			}
		}
	}
	return s, len(byMachine(s.Assignment()))
}

// TestConsolidateNBudgetResume: a budget-1 consolidation performs at
// most one move per call, reports More while drain work remains, and
// resumed calls converge to the same packing an unbudgeted pass
// reaches in one shot.
func TestConsolidateNBudgetResume(t *testing.T) {
	s, scattered := fragmentSession(t, 4)
	if scattered != 4 {
		t.Fatalf("scatter produced %d used machines, want 4", scattered)
	}

	var calls, moves int
	for {
		r, err := s.ConsolidateN(1)
		if err != nil {
			t.Fatal(err)
		}
		if r.Moves > 1 {
			t.Fatalf("call %d moved %d containers, budget was 1", calls, r.Moves)
		}
		calls++
		moves += r.Moves
		if !r.More {
			break
		}
		if calls > 16 {
			t.Fatal("budgeted consolidation does not converge")
		}
	}
	mustClean(t, s, "after budgeted consolidation")

	// Three single-container machines drain into the fourth.
	if moves != 3 {
		t.Errorf("total moves = %d, want 3", moves)
	}
	if used := len(byMachine(s.Assignment())); used != 1 {
		t.Errorf("used machines after consolidation = %d, want 1", used)
	}

	// The unbudgeted pass on an identically-scattered session reaches
	// the same packing in a single call.  It may spend more moves than
	// the budgeted loop: within one pass drains cascade through
	// machines that already absorbed earlier drains, while the budgeted
	// loop re-ranks candidates between calls and always drains the
	// current lightest.
	ref, _ := fragmentSession(t, 4)
	r, err := ref.ConsolidateN(0)
	if err != nil {
		t.Fatal(err)
	}
	if r.More {
		t.Error("unbudgeted pass reported More")
	}
	if r.Moves < moves {
		t.Errorf("unbudgeted pass moved %d, less than budgeted total %d", r.Moves, moves)
	}
	if used := len(byMachine(ref.Assignment())); used != 1 {
		t.Errorf("unbudgeted used machines = %d, want 1", used)
	}
}

// retryScenario builds the stranded-retry fixture: a 28-core container
// alone on one machine, twelve 8-core pads filling the other three.
// Failing the big container's machine strands it — every other machine
// is full, so the failure-time rescue pipeline cannot help.
func retryScenario(t *testing.T) (s *Session, big string, home topology.MachineID) {
	t.Helper()
	w := workload.MustNew([]*workload.App{
		{ID: "big", Demand: resource.Cores(28, 56*1024), Replicas: 1},
		{ID: "pad", Demand: resource.Cores(8, 16384), Replicas: 12},
	})
	s = NewSession(DefaultOptions(), w, smallCluster(4))
	if _, err := s.Place(appContainers(w, "big")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Place(appContainers(w, "pad")); err != nil {
		t.Fatal(err)
	}
	big = "big/0"
	home = s.Assignment()[big]
	fr, err := s.FailMachine(home)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fr.Stranded, []string{big}) {
		t.Fatalf("failure stranded %v, want [%s]", fr.Stranded, big)
	}
	if got := s.StrandedIDs(); !reflect.DeepEqual(got, []string{big}) {
		t.Fatalf("StrandedIDs = %v, want [%s]", got, big)
	}
	return s, big, home
}

// TestRetryStrandedMoveBudget: re-placing the stranded container
// requires exactly two migrations (no single machine can be freed with
// one move), so a budget-1 sweep must leave it stranded and spend
// nothing, while a budget-2 sweep rescues it.
func TestRetryStrandedMoveBudget(t *testing.T) {
	s, big, home := retryScenario(t)

	// Open 16-core holes on two of the full machines.  No hole fits the
	// 28-core container directly; the cheapest rescue drains one holed
	// machine's two remaining pads into the other's hole — exactly two
	// migrations, and no single move can free 28 cores anywhere.
	groups := byMachine(s.Assignment())
	var others []topology.MachineID
	for m := range groups {
		if m != home {
			others = append(others, m)
		}
	}
	sort.Slice(others, func(i, j int) bool { return others[i] < others[j] })
	if len(others) != 3 {
		t.Fatalf("pads live on %d machines, want 3", len(others))
	}
	for _, m := range others[:2] {
		for _, id := range groups[m][:2] {
			if err := s.Remove(id); err != nil {
				t.Fatal(err)
			}
		}
	}

	r1, err := s.RetryStranded(1)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Retried != 1 || len(r1.Replaced) != 0 {
		t.Fatalf("budget-1 sweep: retried %d, replaced %v; want a skipped rescue", r1.Retried, r1.Replaced)
	}
	if spent := r1.Migrations + r1.Preemptions; spent > 1 {
		t.Fatalf("budget-1 sweep spent %d moves", spent)
	}
	if got := s.StrandedIDs(); !reflect.DeepEqual(got, []string{big}) {
		t.Fatalf("after budget-1 sweep StrandedIDs = %v, want [%s]", got, big)
	}

	r2, err := s.RetryStranded(2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r2.Replaced, []string{big}) {
		t.Fatalf("budget-2 sweep replaced %v, want [%s]", r2.Replaced, big)
	}
	if r2.Migrations != 2 || r2.Preemptions != 0 {
		t.Fatalf("budget-2 sweep spent %d migrations / %d preemptions, want exactly 2 / 0", r2.Migrations, r2.Preemptions)
	}
	if got := s.StrandedIDs(); len(got) != 0 {
		t.Fatalf("still stranded after rescue: %v", got)
	}
	mustClean(t, s, "after budgeted retry")
}

// TestRecoverMachineAutoRetry: recovery re-places what the failure
// stranded — the regression the continuous-rescheduling work fixes.
// Before it, a stranded container stayed out forever even after its
// only feasible machine came back.
func TestRecoverMachineAutoRetry(t *testing.T) {
	s, big, home := retryScenario(t)

	rr, err := s.RecoverMachine(home)
	if err != nil {
		t.Fatal(err)
	}
	if rr.Machine != home {
		t.Errorf("RecoverResult.Machine = %d, want %d", rr.Machine, home)
	}
	if rr.Retried != 1 || !reflect.DeepEqual(rr.Replaced, []string{big}) {
		t.Fatalf("recovery retried %d / replaced %v, want the stranded container re-placed", rr.Retried, rr.Replaced)
	}
	if got := s.StrandedIDs(); len(got) != 0 {
		t.Fatalf("stranded after recovery: %v", got)
	}
	if !s.Placed(big) {
		t.Fatal("stranded container not placed after recovery")
	}
	mustClean(t, s, "after recovery auto-retry")
}

// TestForget: a forgotten stranded container leaves the retry set but
// stays undeployed; placed and unknown containers are rejected.
func TestForget(t *testing.T) {
	s, big, home := retryScenario(t)

	if err := s.Forget("ghost/0"); err == nil {
		t.Error("forgetting an unknown container should fail")
	}
	if err := s.Forget("pad/0"); err == nil {
		t.Error("forgetting a placed container should fail")
	}
	if err := s.Forget(big); err != nil {
		t.Fatal(err)
	}
	if got := s.StrandedIDs(); len(got) != 0 {
		t.Fatalf("StrandedIDs after Forget = %v, want none", got)
	}
	// Forgetting a merely-undeployed container is a no-op.
	if err := s.Forget(big); err != nil {
		t.Fatal(err)
	}

	// Recovery now has nothing to retry: the departed application's
	// container must not be resurrected.
	rr, err := s.RecoverMachine(home)
	if err != nil {
		t.Fatal(err)
	}
	if rr.Retried != 0 || len(rr.Replaced) != 0 {
		t.Fatalf("recovery retried %d / replaced %v after Forget, want nothing", rr.Retried, rr.Replaced)
	}
	if s.Placed(big) {
		t.Fatal("forgotten container was resurrected")
	}
}

// TestPackingStats spot-checks the rebalancer's trigger inputs against
// a hand-computable layout.
func TestPackingStats(t *testing.T) {
	s, _ := fragmentSession(t, 4) // 4 machines, one 8/32-core container each
	ps := s.PackingStats()
	if ps.Machines != 4 || ps.Used != 4 || ps.Down != 0 || ps.Stranded != 0 {
		t.Fatalf("PackingStats = %+v", ps)
	}
	if ps.FreeCPU != 4*24000 || ps.LargestFreeCPU != 24000 {
		t.Fatalf("free CPU = %d / largest %d, want 96000 / 24000", ps.FreeCPU, ps.LargestFreeCPU)
	}
	if got, want := ps.MeanUtilization, 0.25; got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("mean utilization = %v, want %v", got, want)
	}

	if _, err := s.ConsolidateN(0); err != nil {
		t.Fatal(err)
	}
	ps = s.PackingStats()
	if ps.Used != 1 {
		t.Fatalf("used after consolidation = %d, want 1", ps.Used)
	}
	if ps.FreeCPU != 4*24000 {
		t.Fatalf("consolidation changed total free CPU: %d", ps.FreeCPU)
	}
}

// TestExportStateRoundTripsStranded: strandedness survives a
// checkpoint/restore — a restored session keeps auto-retrying exactly
// what the live one would.
func TestExportStateRoundTripsStranded(t *testing.T) {
	s, big, _ := retryScenario(t)
	st := s.ExportState()
	if !reflect.DeepEqual(st.Stranded, []string{big}) {
		t.Fatalf("exported Stranded = %v, want [%s]", st.Stranded, big)
	}
	fresh, err := topology.FromSpecs(s.Cluster().Specs())
	if err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreSession(DefaultOptions(), s.Workload(), fresh, st)
	if err != nil {
		t.Fatal(err)
	}
	if got := restored.StrandedIDs(); !reflect.DeepEqual(got, []string{big}) {
		t.Fatalf("restored StrandedIDs = %v, want [%s]", got, big)
	}

	// A corrupt snapshot — stranded without being undeployed — fails.
	bad := s.ExportState()
	bad.Stranded = []string{"pad/0"}
	if _, err := RestoreSession(DefaultOptions(), s.Workload(), fresh, bad); err == nil {
		t.Fatal("restore accepted a stranded container outside the undeployed ledger")
	}
}
