package core

import (
	"testing"

	"aladdin/internal/resource"
	"aladdin/internal/workload"
)

func TestGangSchedulingAllOrNothing(t *testing.T) {
	// 5 spread replicas on 4 machines: without gangs 4 deploy; with
	// gangs the whole application is withdrawn.
	w := workload.MustNew([]*workload.App{
		{ID: "gang", Demand: resource.Cores(1, 1024), Replicas: 5, AntiAffinitySelf: true},
		{ID: "solo", Demand: resource.Cores(1, 1024), Replicas: 1},
	})
	cl := smallCluster(4)

	plain := mustSchedule(t, NewDefault(), w, cl, workload.OrderSubmission)
	if plain.Deployed() != 5 { // 4 gang + solo
		t.Fatalf("plain deployed = %d, want 5", plain.Deployed())
	}

	cl.Reset()
	opts := DefaultOptions()
	opts.GangScheduling = true
	res := mustSchedule(t, New(opts), w, cl, workload.OrderSubmission)
	if res.Deployed() != 1 {
		t.Errorf("gang deployed = %d, want only solo", res.Deployed())
	}
	if _, ok := res.Assignment["solo/0"]; !ok {
		t.Error("unaffected app must stay deployed")
	}
	if len(res.Undeployed) != 5 {
		t.Errorf("undeployed = %d, want all 5 gang replicas", len(res.Undeployed))
	}
	// The withdrawn capacity is actually free again.
	var used int64
	for _, m := range cl.Machines() {
		used += m.Used().Dim(resource.CPU)
	}
	if used != 1000 {
		t.Errorf("used CPU = %d, want 1000 (only solo)", used)
	}
}

func TestGangSchedulingFullGangDeploys(t *testing.T) {
	w := workload.MustNew([]*workload.App{
		{ID: "gang", Demand: resource.Cores(1, 1024), Replicas: 4, AntiAffinitySelf: true},
	})
	cl := smallCluster(4)
	opts := DefaultOptions()
	opts.GangScheduling = true
	res := mustSchedule(t, New(opts), w, cl, workload.OrderSubmission)
	if res.Deployed() != 4 || len(res.Undeployed) != 0 {
		t.Errorf("full gang should deploy: %v", res)
	}
}

func TestGangSchedulingConservation(t *testing.T) {
	// Gang rollback must keep the flow network conserved (withdrawn
	// flows cancel cleanly) — verified through a session.
	w := workload.MustNew([]*workload.App{
		{ID: "gang", Demand: resource.Cores(8, 8192), Replicas: 6, AntiAffinitySelf: true},
	})
	cl := smallCluster(4)
	opts := DefaultOptions()
	opts.GangScheduling = true
	res, err := New(opts).Schedule(w, cl, w.Arrange(workload.OrderSubmission))
	if err != nil {
		t.Fatal(err)
	}
	if res.Deployed() != 0 {
		t.Errorf("infeasible gang should fully withdraw, deployed %d", res.Deployed())
	}
	if err := res.Verify(w, cl); err != nil {
		t.Fatal(err)
	}
	if cl.UsedMachines() != 0 {
		t.Errorf("cluster should be empty after gang withdrawal, used %d", cl.UsedMachines())
	}
}
