package core

import (
	"errors"
	"testing"

	"aladdin/internal/constraint"
	"aladdin/internal/topology"
	"aladdin/internal/workload"
)

// The fuzz targets drive random operation sequences through a live
// Session and run the full invariant Auditor after every step: any
// sequence of place / remove / fail / recover operations must leave
// the flow network, the search index and the assignment tables
// mutually consistent, and must surface failures as errors — never as
// panics or silent state corruption.
//
// Byte encoding: each input byte is one operation.  The low two bits
// select the operation, the high six bits select its target (reduced
// modulo the container or machine universe), so any byte string is a
// valid schedule and the fuzzer's bit flips map to small schedule
// edits.

const fuzzOpBudget = 256 // cap schedule length so exhaustive audits stay fast

// mustCleanAudit fails the fuzz run if the auditor finds violations.
func mustCleanAudit(t *testing.T, s *Session, step int, op string) {
	t.Helper()
	if vs := s.AuditInvariants(); len(vs) != 0 {
		t.Fatalf("step %d (%s): invariants broken: %v", step, op, vs)
	}
}

// mustNotCorrupt allows domain errors (duplicate placement, failing a
// down machine) but fails hard on state corruption.
func mustNotCorrupt(t *testing.T, err error, step int, op string) {
	t.Helper()
	if err != nil && errors.Is(err, ErrStateCorruption) {
		t.Fatalf("step %d (%s): state corruption: %v", step, op, err)
	}
}

// FuzzPlace drives arbitrary interleavings of single-container
// placements, departures, machine failures and repairs.
func FuzzPlace(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 4, 8, 12, 16, 20})                   // straight-line placements
	f.Add([]byte{0, 4, 1, 5, 0, 4})                      // place, remove, re-place
	f.Add([]byte{0, 4, 8, 2, 6, 3, 7, 0})                // placements around a failure and repair
	f.Add([]byte{0, 0, 1, 1, 2, 2, 3, 3, 254, 255, 253}) // duplicate ops and high ordinals
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > fuzzOpBudget {
			data = data[:fuzzOpBudget]
		}
		w := sessionWorkload()
		cl := smallCluster(8)
		s := NewSession(DefaultOptions(), w, cl)
		containers := w.Containers()
		machines := cl.Machines()
		for i, b := range data {
			op, arg := int(b&3), int(b>>2)
			switch op {
			case 0:
				c := containers[arg%len(containers)]
				_, err := s.Place([]*workload.Container{c})
				mustNotCorrupt(t, err, i, "place")
				mustCleanAudit(t, s, i, "place")
			case 1:
				c := containers[arg%len(containers)]
				if s.Placed(c.ID) {
					mustNotCorrupt(t, s.Remove(c.ID), i, "remove")
					mustCleanAudit(t, s, i, "remove")
				}
			case 2:
				m := machines[arg%len(machines)]
				if m.Up() {
					_, err := s.FailMachine(m.ID)
					mustNotCorrupt(t, err, i, "fail")
					mustCleanAudit(t, s, i, "fail")
				}
			case 3:
				m := machines[arg%len(machines)]
				if !m.Up() {
					_, rerr := s.RecoverMachine(m.ID)
					mustNotCorrupt(t, rerr, i, "recover")
					mustCleanAudit(t, s, i, "recover")
				}
			}
		}
	})
}

// FuzzFailRecover starts from a fully-placed session and fuzzes only
// the failure/repair schedule — the paths where eviction, re-placement
// and index maintenance interact hardest.
func FuzzFailRecover(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1})                   // fail then repair one machine
	f.Add([]byte{0, 2, 4, 1, 3, 5})       // overlapping failures, ordered repairs
	f.Add([]byte{0, 0, 0, 1, 1, 1})       // repeated ops on one machine
	f.Add([]byte{254, 255, 252, 253, 16}) // high machine ordinals
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > fuzzOpBudget {
			data = data[:fuzzOpBudget]
		}
		w := sessionWorkload()
		cl := smallCluster(8)
		s := NewSession(DefaultOptions(), w, cl)
		if _, err := s.Place(w.Containers()); err != nil {
			t.Fatal(err)
		}
		machines := cl.Machines()
		for i, b := range data {
			m := machines[int(b>>1)%len(machines)]
			if b&1 == 0 {
				if !m.Up() {
					continue
				}
				_, err := s.FailMachine(m.ID)
				mustNotCorrupt(t, err, i, "fail")
				mustCleanAudit(t, s, i, "fail")
			} else {
				if m.Up() {
					continue
				}
				_, rerr := s.RecoverMachine(m.ID)
				mustNotCorrupt(t, rerr, i, "recover")
				mustCleanAudit(t, s, i, "recover")
			}
		}
		// Repair everything: the session must end audit-clean with all
		// capacity back in service.
		for _, m := range machines {
			if !m.Up() {
				if _, err := s.RecoverMachine(m.ID); err != nil {
					t.Fatalf("final recovery of machine %d: %v", m.ID, err)
				}
			}
		}
		mustCleanAudit(t, s, len(data), "drain")
	})
}

// checkOrdinalViews asserts that the dense ordinal tables and the
// string-keyed boundary views of a session never disagree: every
// container's cached app ref matches a fresh workload lookup, the
// ordinal-keyed assignment matches the exported ID-keyed map and the
// topology layer's hosting state, each machine's resident-ordinal
// list mirrors its container set, and the network's per-machine arc
// and sub-cluster tables match their name-keyed construction maps.
func checkOrdinalViews(t *testing.T, s *Session, step int) {
	t.Helper()
	r := s.r
	all := s.w.Containers()
	asgMap := s.Assignment()
	placed := 0
	for _, c := range all {
		if got, want := r.search.refs[c.Ord], constraint.AppRef(s.w.AppIndex(c.App)); got != want {
			t.Fatalf("step %d: container %s: cached app ref %d, workload lookup %d", step, c.ID, got, want)
		}
		m := r.asg[c.Ord]
		em, ok := asgMap[c.ID]
		if (m != topology.Invalid) != ok || (ok && em != m) {
			t.Fatalf("step %d: container %s: ordinal assignment %d, exported (%v, %d)", step, c.ID, m, ok, em)
		}
		if m != topology.Invalid {
			placed++
			if !r.cluster.Machine(m).Hosts(c.ID) {
				t.Fatalf("step %d: container %s assigned to machine %d but not hosted there", step, c.ID, m)
			}
		}
	}
	if placed != len(asgMap) {
		t.Fatalf("step %d: %d placed ordinals, %d exported assignments", step, placed, len(asgMap))
	}
	for mid := 0; mid < r.cluster.Size(); mid++ {
		m := topology.MachineID(mid)
		res := r.residents[m]
		if got, want := len(res), r.cluster.Machine(m).NumContainers(); got != want {
			t.Fatalf("step %d: machine %d: %d residents, topology hosts %d", step, mid, got, want)
		}
		for j, ord := range res {
			if j > 0 && res[j-1] >= ord {
				t.Fatalf("step %d: machine %d: residents not in ascending ordinal order: %v", step, mid, res)
			}
			if r.asg[ord] != m {
				t.Fatalf("step %d: machine %d: resident %s assigned to %d", step, mid, all[ord].ID, r.asg[ord])
			}
		}
	}
	n := r.net
	for _, c := range all {
		if got, want := int(n.appOf[c.Ord]), n.appOrd[c.App]; got != want {
			t.Fatalf("step %d: container %s: appOf %d, appOrd map %d", step, c.ID, got, want)
		}
	}
	for _, rname := range r.cluster.Racks() {
		rack := r.cluster.Rack(rname)
		for _, mid := range rack.Machines {
			if got, want := int(n.grArcOf[mid]), n.grArc[rname]; got != want {
				t.Fatalf("step %d: machine %d: grArcOf %d, grArc map %d", step, mid, got, want)
			}
			if got, want := int(n.subOf[mid]), n.subOrd[rack.Cluster]; got != want {
				t.Fatalf("step %d: machine %d: subOf %d, subOrd map %d", step, mid, got, want)
			}
		}
	}
}

// FuzzIndexNaiveEquivalence runs the same fuzzed schedule against an
// indexed session and a naive-scan session: under depth limiting the
// two searches promise byte-identical placements, so after every
// operation both the success/failure of the call and the full
// assignment table must agree, and the indexed session must stay
// audit-clean (which includes the index-vs-live cross-check).  Both
// sessions' dense ordinal tables must additionally keep agreeing with
// their string-keyed export views after every step (checkOrdinalViews).
//
// The same schedule additionally drives a concurrent and a sequential
// ShardedSession pair over a multi-sub-cluster topology, with the
// shard count fuzzed from the input's last byte: the two sharded
// modes promise byte-identical merged assignments and identical error
// outcomes, and the concurrent one must stay audit-clean (per-shard
// auditors plus the wrapper ownership coherence check) with global
// anti-affinity holding across shard boundaries.
func FuzzIndexNaiveEquivalence(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 4, 8, 12, 16, 20, 24, 28, 32, 36, 40, 44}) // place everything
	f.Add([]byte{0, 4, 1, 2, 6, 3, 7, 0, 4})                   // churn with a failure window
	f.Add([]byte{255, 254, 253, 252, 0, 1, 2, 3})              // high ordinals
	f.Add([]byte{0, 4, 8, 2, 66, 1, 3, 67, 0, 3})              // churn, 4 shards (last byte 67 % 4 + 1)
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > fuzzOpBudget {
			data = data[:fuzzOpBudget]
		}
		naiveOpts := DefaultOptions()
		naiveOpts.NaiveSearch = true
		indexed := NewSession(DefaultOptions(), sessionWorkload(), smallCluster(8))
		naive := NewSession(naiveOpts, sessionWorkload(), smallCluster(8))
		sessions := []*Session{indexed, naive}
		machineCount := indexed.r.cluster.Size()

		// Sharded pair: shard count 1–4 from the last input byte, over
		// a 4-sub-cluster topology so every count is distinct.
		shards := 1
		if len(data) > 0 {
			shards = int(data[len(data)-1])%4 + 1
		}
		parOpts, seqOpts := DefaultOptions(), DefaultOptions()
		parOpts.Shards, seqOpts.Shards = shards, shards
		seqOpts.SequentialShards = true
		shardedPar, err := NewSharded(parOpts, sessionWorkload(), shardCluster(32))
		if err != nil {
			t.Fatal(err)
		}
		shardedSeq, err := NewSharded(seqOpts, sessionWorkload(), shardCluster(32))
		if err != nil {
			t.Fatal(err)
		}
		shardedMachines := 32

		for i, b := range data {
			op, arg := int(b&3), int(b>>2)
			var errs [2]error
			for si, s := range sessions {
				containers := s.w.Containers()
				switch op {
				case 0:
					_, errs[si] = s.Place([]*workload.Container{containers[arg%len(containers)]})
				case 1:
					id := containers[arg%len(containers)].ID
					if s.Placed(id) {
						errs[si] = s.Remove(id)
					}
				case 2:
					mid := topology.MachineID(arg % machineCount)
					if s.r.cluster.Machine(mid).Up() {
						_, errs[si] = s.FailMachine(mid)
					}
				case 3:
					mid := topology.MachineID(arg % machineCount)
					if !s.r.cluster.Machine(mid).Up() {
						_, errs[si] = s.RecoverMachine(mid)
					}
				}
				mustNotCorrupt(t, errs[si], i, "op")
			}
			if (errs[0] == nil) != (errs[1] == nil) {
				t.Fatalf("step %d: indexed err %v, naive err %v", i, errs[0], errs[1])
			}
			ia, na := indexed.Assignment(), naive.Assignment()
			if len(ia) != len(na) {
				t.Fatalf("step %d: indexed placed %d containers, naive %d", i, len(ia), len(na))
			}
			for id, m := range ia {
				if nm, ok := na[id]; !ok || nm != m {
					t.Fatalf("step %d: container %s on machine %d indexed, %d naive", i, id, m, nm)
				}
			}
			mustCleanAudit(t, indexed, i, "op")
			checkOrdinalViews(t, indexed, i)
			checkOrdinalViews(t, naive, i)

			// Sharded concurrent vs sequential: same op, compared the
			// same way.
			var serrs [2]error
			for si, ss := range []*ShardedSession{shardedPar, shardedSeq} {
				containers := ss.w.Containers()
				switch op {
				case 0:
					c := containers[arg%len(containers)]
					if !ss.Placed(c.ID) {
						_, serrs[si] = ss.Place([]*workload.Container{c})
					}
				case 1:
					c := containers[arg%len(containers)]
					if ss.Placed(c.ID) {
						serrs[si] = ss.Remove(c.ID)
					}
				case 2:
					_, serrs[si] = ss.FailMachine(topology.MachineID(arg % shardedMachines))
				case 3:
					_, serrs[si] = ss.RecoverMachine(topology.MachineID(arg % shardedMachines))
				}
				mustNotCorrupt(t, serrs[si], i, "sharded op")
			}
			if (serrs[0] == nil) != (serrs[1] == nil) {
				t.Fatalf("step %d: sharded concurrent err %v, sequential err %v", i, serrs[0], serrs[1])
			}
			pa, sa := shardedPar.Assignment(), shardedSeq.Assignment()
			if len(pa) != len(sa) {
				t.Fatalf("step %d: sharded concurrent placed %d, sequential %d", i, len(pa), len(sa))
			}
			for id, m := range pa {
				if sm, ok := sa[id]; !ok || sm != m {
					t.Fatalf("step %d: container %s on machine %d concurrent, %d sequential", i, id, m, sm)
				}
			}
			if vs := shardedPar.AuditInvariants(); len(vs) != 0 {
				t.Fatalf("step %d: sharded invariants broken: %v", i, vs)
			}
			if vs := constraint.AuditAntiAffinity(shardedPar.w, pa); len(vs) != 0 {
				t.Fatalf("step %d: cross-shard anti-affinity violated: %v", i, vs)
			}
		}
	})
}
