package core

import (
	"bytes"
	"strings"
	"testing"

	"aladdin/internal/constraint"
	"aladdin/internal/resource"
	"aladdin/internal/workload"
)

func TestExportNetworkDOT(t *testing.T) {
	w := workload.MustNew([]*workload.App{
		{ID: "a", Demand: resource.Cores(4, 4096), Replicas: 2, AntiAffinitySelf: true},
	})
	cl := smallCluster(2)
	res := mustSchedule(t, NewDefault(), w, cl, workload.OrderSubmission)

	var buf bytes.Buffer
	if err := ExportNetworkDOT(&buf, w, cl, res.Assignment); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"digraph flow {",
		`label="s"`, `label="t"`,
		`label="A:a"`, `label="T:a/0"`, `label="T:a/1"`,
		"N:machine-00000", "R:rack-0000", "G:cluster-00",
		"style=solid", // flows exist
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT missing %q", want)
		}
	}
}

func TestExportNetworkDOTBadAssignment(t *testing.T) {
	w := workload.MustNew([]*workload.App{
		{ID: "a", Demand: resource.Cores(4, 4096), Replicas: 1},
	})
	cl := smallCluster(2)
	bad := constraint.Assignment{"a/0": 99}
	var buf bytes.Buffer
	if err := ExportNetworkDOT(&buf, w, cl, bad); err == nil {
		t.Error("unknown machine in assignment should fail")
	}
}
