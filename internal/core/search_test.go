package core

import (
	"sort"
	"testing"

	"aladdin/internal/constraint"
	"aladdin/internal/resource"
	"aladdin/internal/topology"
	"aladdin/internal/trace"
	"aladdin/internal/workload"
)

// scheduleWith runs one full batch with the given option tweak and
// returns the result, with DebugChecks cross-validating the
// incremental aggregates against the naive recompute throughout.
func scheduleWith(t *testing.T, machines int, tweak func(*Options)) (*workload.Workload, map[string]topology.MachineID, []string) {
	t.Helper()
	w := trace.MustGenerate(trace.Scaled(42, 100)) // ~130 apps, ~1000 containers
	cl := topology.New(topology.AlibabaConfig(machines))
	opts := DefaultOptions()
	opts.DebugChecks = true
	tweak(&opts)
	res, err := New(opts).Schedule(w, cl, w.Arrange(workload.OrderSubmission))
	if err != nil {
		t.Fatal(err)
	}
	asg := make(map[string]topology.MachineID, len(res.Assignment))
	for id, m := range res.Assignment {
		asg[id] = m
	}
	und := append([]string(nil), res.Undeployed...)
	sort.Strings(und)
	return w, asg, und
}

// TestIndexedMatchesNaiveDL is the A/B oracle for the DL (first-fit)
// search: the indexed scheduler must produce byte-identical placements
// to the retained naive scan on the same trace — same assignment for
// every container, same undeployed set.  1024 machines puts the
// cluster above the parallel-sweep threshold so the sharded paths are
// exercised too.
func TestIndexedMatchesNaiveDL(t *testing.T) {
	_, gotAsg, gotUnd := scheduleWith(t, 1024, func(o *Options) {})
	_, wantAsg, wantUnd := scheduleWith(t, 1024, func(o *Options) { o.NaiveSearch = true })

	if len(gotAsg) != len(wantAsg) {
		t.Fatalf("indexed deployed %d containers, naive %d", len(gotAsg), len(wantAsg))
	}
	for id, want := range wantAsg {
		if got, ok := gotAsg[id]; !ok || got != want {
			t.Fatalf("container %s: indexed machine %d, naive machine %d", id, gotAsg[id], want)
		}
	}
	if len(gotUnd) != len(wantUnd) {
		t.Fatalf("indexed undeployed %d, naive %d", len(gotUnd), len(wantUnd))
	}
	for i := range gotUnd {
		if gotUnd[i] != wantUnd[i] {
			t.Fatalf("undeployed[%d]: indexed %s, naive %s", i, gotUnd[i], wantUnd[i])
		}
	}
}

// TestIndexedMatchesNaiveNoDL is the no-DL analogue: with depth
// limiting off the search is exhaustive (best fit by leftover CPU,
// ties by machine ID), and the indexed branch-and-bound — including
// its parallel sub-cluster sweep — must reach the same placements and
// the same undeployed set as the serial scan for any GOMAXPROCS.
func TestIndexedMatchesNaiveNoDL(t *testing.T) {
	_, gotAsg, gotUnd := scheduleWith(t, 1024, func(o *Options) {
		o.DepthLimiting = false
	})
	_, wantAsg, wantUnd := scheduleWith(t, 1024, func(o *Options) {
		o.DepthLimiting = false
		o.NaiveSearch = true
	})

	if len(gotUnd) != len(wantUnd) {
		t.Fatalf("indexed undeployed %d, naive %d", len(gotUnd), len(wantUnd))
	}
	for i := range gotUnd {
		if gotUnd[i] != wantUnd[i] {
			t.Fatalf("undeployed[%d]: indexed %s, naive %s", i, gotUnd[i], wantUnd[i])
		}
	}
	for id, want := range wantAsg {
		if got, ok := gotAsg[id]; !ok || got != want {
			t.Fatalf("container %s: indexed machine %d, naive machine %d", id, gotAsg[id], want)
		}
	}
}

// searchFixture builds a small two-rack cluster with a hand-placed
// occupancy pattern and a searcher per mode, for white-box search
// tests.  Machines 0 and 1 host a filler container each; the rest are
// empty.
func searchFixture(t *testing.T, tweak func(*Options)) (indexed, naive *searcher, cl *topology.Cluster) {
	t.Helper()
	cl = topology.New(topology.Config{
		Machines:        8,
		MachinesPerRack: 4,
		Capacity:        resource.Cores(32, 64*1024),
	})
	for i, mid := range []topology.MachineID{0, 1} {
		if err := cl.Machine(mid).Allocate(
			workload.MustNew([]*workload.App{{ID: "filler", Replicas: 2, Demand: resource.Cores(8, 16*1024)}}).Containers()[i].ID,
			resource.Cores(8, 16*1024)); err != nil {
			t.Fatal(err)
		}
	}
	uw := workload.MustNew(nil)
	bl := constraint.NewBlacklist(uw, cl.Size())
	mk := func(naiveMode bool) *searcher {
		opts := DefaultOptions()
		opts.NaiveSearch = naiveMode
		tweak(&opts)
		return newSearcher(opts, uw, cl, bl)
	}
	return mk(false), mk(true), cl
}

// TestFindResourceFitsSkipEmpty is the regression test for the
// migration-path bug where findResourceFits ignored
// exclusion.skipEmpty and handed consolidation empty machines as
// migration targets.  Both the indexed and naive enumerations must
// honour the flag, and the limit must truncate in traversal order.
func TestFindResourceFitsSkipEmpty(t *testing.T) {
	indexed, naive, _ := searchFixture(t, func(*Options) {})
	probe := &workload.Container{ID: "p/0", App: "p", Demand: resource.Cores(2, 4*1024)}

	for _, tc := range []struct {
		name string
		s    *searcher
	}{
		{"indexed", indexed},
		{"naive", naive},
	} {
		got := tc.s.findResourceFits(probe, exclusion{machine: topology.Invalid, skipEmpty: true}, 0)
		want := []topology.MachineID{0, 1}
		if len(got) != len(want) {
			t.Fatalf("%s: skipEmpty fits = %v, want %v", tc.name, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: skipEmpty fits = %v, want %v", tc.name, got, want)
			}
		}

		// Without skipEmpty every machine fits; the limit truncates in
		// traversal order.
		got = tc.s.findResourceFits(probe, noExclusion, 3)
		want = []topology.MachineID{0, 1, 2}
		if len(got) != len(want) {
			t.Fatalf("%s: limited fits = %v, want %v", tc.name, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: limited fits = %v, want %v", tc.name, got, want)
			}
		}
	}
}

// TestNoDLTieBreak pins the no-DL selection rule: minimum leftover
// CPU, ties broken by the smaller machine ID.  Machines 0 and 1 have
// identical (smallest) leftover after the fixture's fill, so machine
// 0 must win in both modes; after it is excluded, machine 1 must.
func TestNoDLTieBreak(t *testing.T) {
	indexed, naive, _ := searchFixture(t, func(o *Options) { o.DepthLimiting = false })
	probe := &workload.Container{ID: "p/0", App: "p", Demand: resource.Cores(2, 4*1024)}

	for _, tc := range []struct {
		name string
		s    *searcher
	}{
		{"indexed", indexed},
		{"naive", naive},
	} {
		if got := tc.s.findMachine(probe, noExclusion); got != 0 {
			t.Fatalf("%s: best fit = %d, want machine 0 (tie on leftover broken by ID)", tc.name, got)
		}
		if got := tc.s.findMachine(probe, exclusion{machine: 0}); got != 1 {
			t.Fatalf("%s: best fit with 0 excluded = %d, want machine 1", tc.name, got)
		}
	}
}

// TestILCacheGenerations pins the isomorphism-limiting cache's
// generation semantics: a noted failure holds only while no capacity
// has been released — bump (a release) re-enables the app, while
// further placements (which never call bump) must not.  Apps are the
// dense ordinals 0 ("a") and 1 ("b").
func TestILCacheGenerations(t *testing.T) {
	const a, b constraint.AppRef = 0, 1
	for _, tc := range []struct {
		name string
		ops  func(il *ilCache)
		skip bool
	}{
		{"fresh cache skips nothing", func(il *ilCache) {}, false},
		{"noted failure skips", func(il *ilCache) { il.note(a) }, true},
		{"failure survives other apps' notes", func(il *ilCache) {
			il.note(a)
			il.note(b)
		}, true},
		{"release re-enables", func(il *ilCache) {
			il.note(a)
			il.bump()
		}, false},
		{"re-noted after release skips again", func(il *ilCache) {
			il.note(a)
			il.bump()
			il.note(a)
		}, true},
		{"stale note from older generation does not skip", func(il *ilCache) {
			il.note(a)
			il.bump()
			il.bump()
		}, false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			il := newILCache(2)
			tc.ops(il)
			if got := il.skip(a); got != tc.skip {
				t.Fatalf("skip(a) = %v, want %v", got, tc.skip)
			}
		})
	}
}

// TestILCacheOutOfUniverse pins the boundary behaviour: NoApp and
// out-of-range ordinals never skip, and noting them is a no-op
// (bench probes and unknown residents must not corrupt the table).
func TestILCacheOutOfUniverse(t *testing.T) {
	il := newILCache(1)
	il.note(constraint.NoApp)
	il.note(5)
	if il.skip(constraint.NoApp) {
		t.Error("skip(NoApp) = true, want false")
	}
	if il.skip(5) {
		t.Error("skip(out-of-range) = true, want false")
	}
	if il.skip(0) {
		t.Error("skip(0) = true after no-op notes, want false")
	}
}
