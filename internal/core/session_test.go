package core

import (
	"testing"

	"aladdin/internal/resource"
	"aladdin/internal/topology"
	"aladdin/internal/trace"
	"aladdin/internal/workload"
)

func sessionWorkload() *workload.Workload {
	return workload.MustNew([]*workload.App{
		{ID: "web", Demand: resource.Cores(4, 8192), Replicas: 4, Priority: workload.PriorityHigh, AntiAffinitySelf: true},
		{ID: "db", Demand: resource.Cores(8, 16384), Replicas: 2, Priority: workload.PriorityMid, AntiAffinityApps: []string{"web"}},
		{ID: "batch", Demand: resource.Cores(2, 4096), Replicas: 6, Priority: workload.PriorityLow},
	})
}

func appContainers(w *workload.Workload, app string) []*workload.Container {
	var out []*workload.Container
	for _, c := range w.Containers() {
		if c.App == app {
			out = append(out, c)
		}
	}
	return out
}

func TestSessionIncrementalBatches(t *testing.T) {
	w := sessionWorkload()
	cl := smallCluster(8)
	s := NewSession(DefaultOptions(), w, cl)

	res1, err := s.Place(appContainers(w, "batch"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res1.Undeployed) != 0 {
		t.Fatalf("batch 1 undeployed: %v", res1.Undeployed)
	}
	res2, err := s.Place(appContainers(w, "web"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Undeployed) != 0 {
		t.Fatalf("batch 2 undeployed: %v", res2.Undeployed)
	}
	res3, err := s.Place(appContainers(w, "db"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res3.Undeployed) != 0 {
		t.Fatalf("batch 3 undeployed: %v", res3.Undeployed)
	}
	if len(s.Assignment()) != 12 {
		t.Errorf("assignment size = %d, want 12", len(s.Assignment()))
	}
	if vs := s.Audit(); len(vs) != 0 {
		t.Errorf("violations: %v", vs)
	}
	if err := s.FlowConservation(); err != nil {
		t.Error(err)
	}
}

func TestSessionRejectsDuplicatesAndUnknown(t *testing.T) {
	w := sessionWorkload()
	cl := smallCluster(8)
	s := NewSession(DefaultOptions(), w, cl)
	web := appContainers(w, "web")
	if _, err := s.Place(web[:1]); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Place(web[:1]); err == nil {
		t.Error("double placement should fail")
	}
	ghost := &workload.Container{ID: "ghost/0", App: "ghost", Demand: resource.Cores(1, 1)}
	if _, err := s.Place([]*workload.Container{ghost}); err == nil {
		t.Error("unknown container should fail")
	}
	// Malformed requests must come back as errors, never crash the
	// serving process: a nil entry and a same-batch duplicate.
	if _, err := s.Place([]*workload.Container{web[1], nil}); err == nil {
		t.Error("nil container in batch should fail")
	}
	if _, err := s.Place([]*workload.Container{web[1], web[1]}); err == nil {
		t.Error("duplicate container within one batch should fail")
	}
	// The rejected batches must leave no partial state behind.
	if s.Placed(web[1].ID) {
		t.Error("rejected batch leaked a placement")
	}
	if vs := s.AuditInvariants(); len(vs) != 0 {
		t.Errorf("rejected batches left violations: %v", vs)
	}
}

func TestSessionRemoveAndReuse(t *testing.T) {
	w := sessionWorkload()
	cl := smallCluster(8)
	s := NewSession(DefaultOptions(), w, cl)
	web := appContainers(w, "web")
	if _, err := s.Place(web); err != nil {
		t.Fatal(err)
	}
	used := cl.UsedMachines()
	if err := s.Remove("web/0"); err != nil {
		t.Fatal(err)
	}
	if cl.UsedMachines() >= used && used > 1 {
		t.Log("machine may still host others; checking assignment instead")
	}
	if _, ok := s.Assignment()["web/0"]; ok {
		t.Error("web/0 should be gone from assignment")
	}
	if err := s.Remove("web/0"); err == nil {
		t.Error("double remove should fail")
	}
	if err := s.Remove("nope"); err == nil {
		t.Error("unknown remove should fail")
	}
	// Re-place the departed container: departures free capacity for
	// later arrivals.
	if _, err := s.Place(web[:1]); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Assignment()["web/0"]; !ok {
		t.Error("web/0 should be placed again")
	}
	if err := s.FlowConservation(); err != nil {
		t.Error(err)
	}
}

func TestSessionDeparturesUnblockArrivals(t *testing.T) {
	// Fill a single machine, then depart everything and verify a new
	// batch fits.
	w := workload.MustNew([]*workload.App{
		{ID: "gen1", Demand: resource.Cores(16, 16384), Replicas: 2},
		{ID: "gen2", Demand: resource.Cores(16, 16384), Replicas: 2},
	})
	cl := topology.New(topology.Config{
		Machines: 1, MachinesPerRack: 1, RacksPerCluster: 1,
		Capacity: resource.Cores(32, 64*1024),
	})
	s := NewSession(DefaultOptions(), w, cl)
	res, err := s.Place(appContainers(w, "gen1"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Undeployed) != 0 {
		t.Fatal("gen1 should fit exactly")
	}
	res2, err := s.Place(appContainers(w, "gen2"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Undeployed) != 2 {
		t.Fatalf("gen2 should not fit while gen1 runs: %v", res2.Undeployed)
	}
	for _, c := range appContainers(w, "gen1") {
		if err := s.Remove(c.ID); err != nil {
			t.Fatal(err)
		}
	}
	res3, err := s.Place(appContainers(w, "gen2"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res3.Undeployed) != 0 {
		t.Fatalf("gen2 should fit after departures: %v", res3.Undeployed)
	}
}

func TestSessionPreemptionAcrossBatches(t *testing.T) {
	// A low-priority hog from batch 1 is preempted by a high-priority
	// arrival in batch 2.
	w := workload.MustNew([]*workload.App{
		{ID: "hog", Demand: resource.Cores(12, 8192), Replicas: 1, Priority: workload.PriorityLow},
		{ID: "vip", Demand: resource.Cores(10, 8192), Replicas: 1, Priority: workload.PriorityHigh},
	})
	cl := topology.New(topology.Config{
		Machines: 1, MachinesPerRack: 1, RacksPerCluster: 1,
		Capacity: resource.Cores(16, 32*1024),
	})
	s := NewSession(DefaultOptions(), w, cl)
	if _, err := s.Place(appContainers(w, "hog")); err != nil {
		t.Fatal(err)
	}
	res, err := s.Place(appContainers(w, "vip"))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Assignment()["vip/0"]; !ok {
		t.Fatal("vip must preempt across batches")
	}
	if res.Preemptions == 0 {
		t.Error("preemption count missing")
	}
	if _, ok := s.Assignment()["hog/0"]; ok {
		t.Error("hog should be evicted")
	}
}

func TestSessionConsolidate(t *testing.T) {
	w := workload.MustNew([]*workload.App{
		{ID: "a", Demand: resource.Cores(2, 2048), Replicas: 8},
	})
	cl := smallCluster(8)
	s := NewSession(DefaultOptions(), w, cl)
	cs := appContainers(w, "a")
	// Place one per batch so first-fit sees shifting state; then
	// remove alternating ones to fragment.
	for _, c := range cs {
		if _, err := s.Place([]*workload.Container{c}); err != nil {
			t.Fatal(err)
		}
	}
	// All land on machine 0 (first fit, 16 cores total vs 32): no
	// fragmentation possible.  Force spread via removal and manual
	// re-place on a fresh session instead: simpler — fragmented state
	// arises naturally in bigger runs; here just assert Consolidate
	// is a no-op on a packed cluster.
	moved, err := s.Consolidate()
	if err != nil {
		t.Fatal(err)
	}
	if moved != 0 {
		t.Errorf("consolidate on packed cluster moved %d", moved)
	}
	if vs := s.Audit(); len(vs) != 0 {
		t.Errorf("violations: %v", vs)
	}
}

func TestSessionMatchesBatchScheduler(t *testing.T) {
	// Feeding the whole trace as one session batch must match the
	// one-shot Scheduler on headline metrics.
	w := trace.MustGenerate(trace.Scaled(42, 300))
	cl1 := smallCluster(128)
	cl2 := smallCluster(128)

	res1, err := NewDefault().Schedule(w, cl1, w.Arrange(workload.OrderInterleaved))
	if err != nil {
		t.Fatal(err)
	}
	s := NewSession(DefaultOptions(), w, cl2)
	res2, err := s.Place(w.Arrange(workload.OrderInterleaved))
	if err != nil {
		t.Fatal(err)
	}
	if len(res1.Undeployed) != len(res2.Undeployed) {
		// The batch scheduler runs a final consolidation+retry; allow
		// the session to be no better, at most slightly worse.
		if len(res2.Undeployed) < len(res1.Undeployed) {
			t.Errorf("session (%d undeployed) beat batch (%d)?", len(res2.Undeployed), len(res1.Undeployed))
		}
	}
	if vs := s.Audit(); len(vs) != 0 {
		t.Errorf("session violations: %v", vs)
	}
}
