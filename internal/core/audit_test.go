package core

import (
	"errors"
	"testing"

	"aladdin/internal/flow"
	"aladdin/internal/resource"
	"aladdin/internal/topology"
	"aladdin/internal/workload"
)

// auditSession places every container of the session workload and
// asserts the auditor finds nothing — corruption tests start from a
// proven-clean session.
func auditSession(t *testing.T) (*Session, *workload.Workload) {
	t.Helper()
	w := sessionWorkload()
	s := NewSession(DefaultOptions(), w, smallCluster(8))
	if _, err := s.Place(w.Containers()); err != nil {
		t.Fatal(err)
	}
	if vs := s.AuditInvariants(); len(vs) != 0 {
		t.Fatalf("clean session reports violations: %v", vs)
	}
	return s, w
}

func hasKind(vs []AuditViolation, kind AuditViolationKind) bool {
	for _, v := range vs {
		if v.Kind == kind {
			return true
		}
	}
	return false
}

func placedMachine(t *testing.T, s *Session, c *workload.Container) topology.MachineID {
	t.Helper()
	m := s.r.asg[c.Ord]
	if m == topology.Invalid {
		t.Fatalf("container %s not placed", c.ID)
	}
	return m
}

// TestAuditorDetectsBrokenConservation pushes one unit through a
// machine's N→t arc with no matching inflow: Equation 2 breaks at the
// machine vertex and the tier flow no longer matches the placements.
func TestAuditorDetectsBrokenConservation(t *testing.T) {
	s, w := auditSession(t)
	c := appContainers(w, "web")[0]
	m := placedMachine(t, s, c)
	if err := flow.AugmentPath(s.r.net.g, []int{int(s.r.net.ntArc[m])}, 1); err != nil {
		t.Fatal(err)
	}
	vs := s.AuditInvariants()
	if !hasKind(vs, AuditFlowConservation) {
		t.Errorf("no flow-conservation violation in %v", vs)
	}
	if !hasKind(vs, AuditTierFlow) {
		t.Errorf("no tier-flow violation in %v", vs)
	}
}

// TestAuditorDetectsViolatedBlacklist teleports a self-anti-affine
// web container onto its sibling's machine behind the scheduler's
// back: the anti-affinity audit and the assignment cross-check must
// both fire.
func TestAuditorDetectsViolatedBlacklist(t *testing.T) {
	s, w := auditSession(t)
	web := appContainers(w, "web")
	sibling := placedMachine(t, s, web[1])
	s.r.asg[web[0].Ord] = sibling
	s.r.asgMap = nil // drop the cached ID-keyed view
	vs := s.AuditInvariants()
	if !hasKind(vs, AuditAntiAffinity) {
		t.Errorf("no anti-affinity violation in %v", vs)
	}
	if !hasKind(vs, AuditAssignmentDrift) {
		t.Errorf("no assignment-drift violation in %v", vs)
	}
}

// TestAuditorDetectsInvertedPreemption forges a preemption log entry
// where a low-priority claimant evicted a high-priority victim — the
// inversion weighted flows exist to prevent.
func TestAuditorDetectsInvertedPreemption(t *testing.T) {
	s, w := auditSession(t)
	batch := appContainers(w, "batch")[0] // PriorityLow
	web := appContainers(w, "web")[0]     // PriorityHigh
	s.r.preemptLog = append(s.r.preemptLog, preemptEvent{
		claimant: batch, victim: web, machine: placedMachine(t, s, web),
	})
	vs := s.AuditInvariants()
	if !hasKind(vs, AuditPreemptionOrder) {
		t.Errorf("no preemption-order violation in %v", vs)
	}
}

// TestAuditorDetectsIndexDrift allocates resources on a machine
// without notifying the search index (the cached leaf and its
// ancestors diverge from live state) and separately corrupts a cached
// rack aggregate (the allocation alone need not move the rack's
// maximum if a freer machine still dominates it).
func TestAuditorDetectsIndexDrift(t *testing.T) {
	s, w := auditSession(t)
	c := appContainers(w, "web")[0]
	m := placedMachine(t, s, c)
	if err := s.r.cluster.Machine(m).Allocate("ghost/0", resource.Cores(2, 1024)); err != nil {
		t.Fatal(err)
	}
	agg := s.r.search.agg
	agg.refresh() // settle lazy staleness so the corruption below sticks
	agg.rackMaxFree[s.r.cluster.Machine(m).Rack] = resource.Cores(1, 1)
	vs := s.AuditInvariants()
	if !hasKind(vs, AuditIndexDrift) {
		t.Errorf("no index-drift violation in %v", vs)
	}
	if !hasKind(vs, AuditAggregateDrift) {
		t.Errorf("no aggregate-drift violation in %v", vs)
	}
}

// TestAuditorCleanAcrossFailure exercises the auditor across the
// failure/recovery lifecycle: a healthy session must stay
// violation-free through FailMachine and RecoverMachine.
func TestAuditorCleanAcrossFailure(t *testing.T) {
	s, w := auditSession(t)
	m := placedMachine(t, s, appContainers(w, "batch")[0])
	if _, err := s.FailMachine(m); err != nil {
		t.Fatal(err)
	}
	if vs := s.AuditInvariants(); len(vs) != 0 {
		t.Errorf("violations after failure: %v", vs)
	}
	if _, err := s.RecoverMachine(m); err != nil {
		t.Fatal(err)
	}
	if vs := s.AuditInvariants(); len(vs) != 0 {
		t.Errorf("violations after recovery: %v", vs)
	}
}

// TestCorruptionErrorSurfacesNotPanics corrupts a placed container's
// flow-units memo so that its unplace cancels too little flow and
// every re-augment — the forward move and the rollback's restore —
// fails on the exhausted s→T arc.  The failure must surface as a
// typed CorruptionError, not a panic that kills the serving process.
func TestCorruptionErrorSurfacesNotPanics(t *testing.T) {
	s, w := auditSession(t)
	web := appContainers(w, "web")
	blocker := web[0]
	m := placedMachine(t, s, blocker)
	_, ct, err := s.r.net.ctOrd(blocker)
	if err != nil {
		t.Fatal(err)
	}
	s.r.net.units[ct] = 1 // memo says 1 unit; the arc carries 4000
	_, err = s.r.relocate([]*workload.Container{blocker}, m, web[1])
	if err == nil {
		t.Fatal("sabotaged relocate returned no error")
	}
	if !errors.Is(err, ErrStateCorruption) {
		t.Errorf("errors.Is(err, ErrStateCorruption) = false for %v", err)
	}
	var ce *CorruptionError
	if !errors.As(err, &ce) {
		t.Fatalf("error %v is not a *CorruptionError", err)
	}
	if ce.Op == "" || ce.Err == nil {
		t.Errorf("CorruptionError missing context: %+v", ce)
	}
}
