package core

import (
	"testing"

	"aladdin/internal/resource"
	"aladdin/internal/sched"
	"aladdin/internal/topology"
	"aladdin/internal/trace"
	"aladdin/internal/workload"
)

func smallCluster(machines int) *topology.Cluster {
	return topology.New(topology.Config{
		Machines:        machines,
		MachinesPerRack: 4,
		RacksPerCluster: 4,
		Capacity:        resource.Cores(32, 64*1024),
	})
}

func mustSchedule(t *testing.T, s *Scheduler, w *workload.Workload, cl *topology.Cluster, order workload.ArrivalOrder) *sched.Result {
	t.Helper()
	res, err := s.Schedule(w, cl, w.Arrange(order))
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	if err := res.Verify(w, cl); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	return res
}

func TestScheduleSimple(t *testing.T) {
	w := workload.MustNew([]*workload.App{
		{ID: "a", Demand: resource.Cores(4, 8192), Replicas: 3},
	})
	cl := smallCluster(2)
	res := mustSchedule(t, NewDefault(), w, cl, workload.OrderSubmission)
	if len(res.Undeployed) != 0 {
		t.Errorf("undeployed: %v", res.Undeployed)
	}
	if res.Deployed() != 3 {
		t.Errorf("deployed = %d", res.Deployed())
	}
	if len(res.Violations) != 0 {
		t.Errorf("violations: %v", res.Violations)
	}
}

func TestScheduleSelfAntiAffinitySpreads(t *testing.T) {
	// 4 replicas with self anti-affinity on 4 machines: one each.
	w := workload.MustNew([]*workload.App{
		{ID: "spread", Demand: resource.Cores(1, 1024), Replicas: 4, AntiAffinitySelf: true},
	})
	cl := smallCluster(4)
	res := mustSchedule(t, NewDefault(), w, cl, workload.OrderSubmission)
	if len(res.Undeployed) != 0 {
		t.Fatalf("undeployed: %v", res.Undeployed)
	}
	seen := map[topology.MachineID]bool{}
	for _, m := range res.Assignment {
		if seen[m] {
			t.Fatal("two replicas share a machine despite self anti-affinity")
		}
		seen[m] = true
	}
}

func TestScheduleSelfAntiAffinityOversubscribed(t *testing.T) {
	// 5 spread replicas on 4 machines: exactly one must stay
	// undeployed, never violated.
	w := workload.MustNew([]*workload.App{
		{ID: "spread", Demand: resource.Cores(1, 1024), Replicas: 5, AntiAffinitySelf: true},
	})
	cl := smallCluster(4)
	res := mustSchedule(t, NewDefault(), w, cl, workload.OrderSubmission)
	if len(res.Undeployed) != 1 {
		t.Errorf("undeployed = %v, want exactly 1", res.Undeployed)
	}
	if len(res.Violations) != 0 {
		t.Errorf("violations: %v", res.Violations)
	}
}

func TestScheduleAcrossAppAntiAffinity(t *testing.T) {
	w := workload.MustNew([]*workload.App{
		{ID: "red", Demand: resource.Cores(2, 2048), Replicas: 2, AntiAffinityApps: []string{"blue"}},
		{ID: "blue", Demand: resource.Cores(2, 2048), Replicas: 2},
	})
	cl := smallCluster(4)
	res := mustSchedule(t, NewDefault(), w, cl, workload.OrderSubmission)
	if len(res.Undeployed) != 0 {
		t.Fatalf("undeployed: %v", res.Undeployed)
	}
	if len(res.Violations) != 0 {
		t.Errorf("violations: %v", res.Violations)
	}
	// Check no machine hosts both colors.
	for id1, m1 := range res.Assignment {
		for id2, m2 := range res.Assignment {
			if m1 == m2 && id1[:3] == "red" && id2[:4] == "blue" {
				t.Fatalf("red %s and blue %s share machine %d", id1, id2, m1)
			}
		}
	}
}

func TestScheduleFigure1Scenario(t *testing.T) {
	// The paper's Fig. 1: one S0 (low priority) and two S1 (high
	// priority) arrive together; S1 and S0 are anti-affine.  Two
	// machines.  Firmament leaves S0 unscheduled; Medea violates the
	// constraint; Aladdin must deploy all three cleanly.
	w := workload.MustNew([]*workload.App{
		{ID: "s0", Demand: resource.Cores(8, 8192), Replicas: 1, Priority: workload.PriorityLow, AntiAffinityApps: []string{"s1"}},
		{ID: "s1", Demand: resource.Cores(12, 12288), Replicas: 2, Priority: workload.PriorityHigh, AntiAffinitySelf: false},
	})
	cl := smallCluster(2)
	res := mustSchedule(t, NewDefault(), w, cl, workload.OrderSubmission)
	if len(res.Undeployed) != 0 {
		t.Fatalf("Aladdin must deploy all of Fig. 1: undeployed %v", res.Undeployed)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("Aladdin must not violate Fig. 1 constraints: %v", res.Violations)
	}
}

func TestScheduleMigrationScenario(t *testing.T) {
	// Fig. 3b: container A (high) runs on machine M; container B
	// (low) only fits on M because N is too small for it; A fits on
	// both.  Aladdin must migrate A to N and place B on M.
	cl := topology.New(topology.Config{
		Machines:        2,
		MachinesPerRack: 2,
		RacksPerCluster: 1,
		Capacity:        resource.Cores(16, 32*1024),
	})
	// Shrink machine 1 by pre-filling it so only A (4c) fits there,
	// not B (10c).
	filler := resource.Cores(10, 1024)
	if err := cl.Machine(1).Allocate("filler", filler); err != nil {
		t.Fatal(err)
	}
	w := workload.MustNew([]*workload.App{
		{ID: "a", Demand: resource.Cores(4, 2048), Replicas: 1, Priority: workload.PriorityHigh, AntiAffinityApps: []string{"b"}},
		{ID: "b", Demand: resource.Cores(10, 4096), Replicas: 1, Priority: workload.PriorityLow},
	})
	// a arrives first and lands on machine 0 (first fit); b then only
	// fits machine 0 but is blocked by anti-affinity -> migration.
	res, err := NewDefault().Schedule(w, cl, w.Arrange(workload.OrderSubmission))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Undeployed) != 0 {
		t.Fatalf("undeployed: %v (migration should have cleared the block)", res.Undeployed)
	}
	if res.Migrations == 0 {
		t.Error("expected at least one migration")
	}
	if len(res.Violations) != 0 {
		t.Errorf("violations: %v", res.Violations)
	}
	if res.Assignment["a/0"] != 1 || res.Assignment["b/0"] != 0 {
		t.Errorf("assignment = %v, want a on 1, b on 0", res.Assignment)
	}
}

func TestScheduleMigrationDisabled(t *testing.T) {
	cl := topology.New(topology.Config{
		Machines: 2, MachinesPerRack: 2, RacksPerCluster: 1,
		Capacity: resource.Cores(16, 32*1024),
	})
	if err := cl.Machine(1).Allocate("filler", resource.Cores(10, 1024)); err != nil {
		t.Fatal(err)
	}
	w := workload.MustNew([]*workload.App{
		{ID: "a", Demand: resource.Cores(4, 2048), Replicas: 1, Priority: workload.PriorityHigh, AntiAffinityApps: []string{"b"}},
		{ID: "b", Demand: resource.Cores(10, 4096), Replicas: 1, Priority: workload.PriorityLow},
	})
	opts := DefaultOptions()
	opts.Migration = false
	res, err := New(opts).Schedule(w, cl, w.Arrange(workload.OrderSubmission))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Undeployed) != 1 {
		t.Errorf("without migration b must stay undeployed, got %v", res.Undeployed)
	}
	if len(res.Violations) != 0 {
		t.Errorf("violations: %v", res.Violations)
	}
}

func TestSchedulePreemption(t *testing.T) {
	// One machine; a low-priority hog arrives first, then a
	// high-priority container that no longer fits.  The hog must be
	// preempted (and stays undeployed since there is nowhere else).
	cl := topology.New(topology.Config{
		Machines: 1, MachinesPerRack: 1, RacksPerCluster: 1,
		Capacity: resource.Cores(16, 32*1024),
	})
	w := workload.MustNew([]*workload.App{
		{ID: "hog", Demand: resource.Cores(12, 8192), Replicas: 1, Priority: workload.PriorityLow},
		{ID: "vip", Demand: resource.Cores(10, 8192), Replicas: 1, Priority: workload.PriorityHigh},
	})
	res, err := NewDefault().Schedule(w, cl, w.Arrange(workload.OrderSubmission))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.Assignment["vip/0"]; !ok {
		t.Fatal("vip must be deployed via preemption")
	}
	if res.Preemptions == 0 {
		t.Error("expected a preemption")
	}
	if len(res.Undeployed) != 1 || res.Undeployed[0] != "hog/0" {
		t.Errorf("undeployed = %v, want [hog/0]", res.Undeployed)
	}
}

func TestScheduleNeverPreemptsHighForLow(t *testing.T) {
	// Reverse arrival: high first, then low that does not fit.  The
	// low one must NOT preempt (weighted flow guarantee, §III.B).
	cl := topology.New(topology.Config{
		Machines: 1, MachinesPerRack: 1, RacksPerCluster: 1,
		Capacity: resource.Cores(16, 32*1024),
	})
	w := workload.MustNew([]*workload.App{
		{ID: "vip", Demand: resource.Cores(10, 8192), Replicas: 1, Priority: workload.PriorityHigh},
		{ID: "bulk", Demand: resource.Cores(12, 8192), Replicas: 1, Priority: workload.PriorityLow},
	})
	res, err := NewDefault().Schedule(w, cl, w.Arrange(workload.OrderSubmission))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.Assignment["vip/0"]; !ok {
		t.Fatal("vip must stay deployed")
	}
	if res.Preemptions != 0 {
		t.Errorf("preemptions = %d, want 0", res.Preemptions)
	}
	if len(res.Undeployed) != 1 || res.Undeployed[0] != "bulk/0" {
		t.Errorf("undeployed = %v, want [bulk/0]", res.Undeployed)
	}
}

func TestScheduleDisableWeightsAblation(t *testing.T) {
	// With weights disabled (Fig. 3a's broken behaviour), the bigger
	// raw flow evicts the smaller even against priority.
	cl := topology.New(topology.Config{
		Machines: 1, MachinesPerRack: 1, RacksPerCluster: 1,
		Capacity: resource.Cores(16, 32*1024),
	})
	w := workload.MustNew([]*workload.App{
		{ID: "vip", Demand: resource.Cores(10, 8192), Replicas: 1, Priority: workload.PriorityHigh},
		{ID: "bulk", Demand: resource.Cores(12, 8192), Replicas: 1, Priority: workload.PriorityLow},
	})
	opts := DefaultOptions()
	opts.DisableWeights = true
	res, err := New(opts).Schedule(w, cl, w.Arrange(workload.OrderSubmission))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.Assignment["bulk/0"]; !ok {
		t.Fatal("ablation: bulk should have evicted vip")
	}
	s := res.ViolationSummary()
	if s.Inversions == 0 {
		t.Error("ablation must record a priority inversion")
	}
}

func TestScheduleCapacityExhaustion(t *testing.T) {
	w := workload.MustNew([]*workload.App{
		{ID: "big", Demand: resource.Cores(20, 4096), Replicas: 3},
	})
	cl := smallCluster(2) // only 2 machines can hold one 20-core each
	res := mustSchedule(t, NewDefault(), w, cl, workload.OrderSubmission)
	if len(res.Undeployed) != 1 {
		t.Errorf("undeployed = %v, want 1", res.Undeployed)
	}
}

func TestScheduleOversizedContainer(t *testing.T) {
	w := workload.MustNew([]*workload.App{
		{ID: "whale", Demand: resource.Cores(64, 4096), Replicas: 1},
	})
	cl := smallCluster(4)
	res := mustSchedule(t, NewDefault(), w, cl, workload.OrderSubmission)
	if len(res.Undeployed) != 1 {
		t.Errorf("oversized container must be undeployed, got %v", res.Undeployed)
	}
}

func TestScheduleMemoryDimensionEnforced(t *testing.T) {
	// CPU fits but memory does not: multidimensional capacity.
	w := workload.MustNew([]*workload.App{
		{ID: "memhog", Demand: resource.Cores(1, 128*1024), Replicas: 1},
	})
	cl := smallCluster(2)
	res := mustSchedule(t, NewDefault(), w, cl, workload.OrderSubmission)
	if len(res.Undeployed) != 1 {
		t.Error("memory over-demand must stay undeployed")
	}
}

func TestScheduleVariantsAllClean(t *testing.T) {
	// All four IL/DL combinations produce valid, violation-free
	// placements on a synthetic trace.
	// Cluster sized so mutually anti-affine spread apps (up to ~80
	// replicas each in the mid class) remain feasible.
	w := trace.MustGenerate(trace.Scaled(5, 200)) // ~65 apps, ~500 containers
	cl := smallCluster(192)
	for _, opt := range []struct {
		il, dl bool
	}{{false, false}, {true, false}, {false, true}, {true, true}} {
		opts := DefaultOptions()
		opts.IsomorphismLimiting = opt.il
		opts.DepthLimiting = opt.dl
		s := New(opts)
		cl.Reset()
		res := mustSchedule(t, s, w, cl, workload.OrderSubmission)
		if sum := res.ViolationSummary(); sum.Within+sum.Across != 0 {
			t.Errorf("%s: anti-affinity violations: %+v", s.Name(), sum)
		}
		if res.UndeployedFraction() > 0.05 {
			t.Errorf("%s: undeployed fraction %.3f too high", s.Name(), res.UndeployedFraction())
		}
	}
}

func TestScheduleTraceZeroViolations(t *testing.T) {
	// The headline claim: Aladdin incurs zero anti-affinity
	// violations on the Alibaba-shaped trace.
	w := trace.MustGenerate(trace.Scaled(42, 100)) // ~130 apps, ~1000 containers
	cl := smallCluster(256)
	res := mustSchedule(t, NewDefault(), w, cl, workload.OrderSubmission)
	if sum := res.ViolationSummary(); sum.Total() != 0 {
		t.Errorf("violations: %+v", sum)
	}
	if len(res.Undeployed) != 0 {
		t.Errorf("undeployed: %d containers", len(res.Undeployed))
	}
}

func TestScheduleAllArrivalOrdersConsistent(t *testing.T) {
	w := trace.MustGenerate(trace.Scaled(42, 100))
	cl := smallCluster(256)
	used := map[workload.ArrivalOrder]int{}
	for _, order := range workload.AllArrivalOrders() {
		cl.Reset()
		res := mustSchedule(t, NewDefault(), w, cl, order)
		if sum := res.ViolationSummary(); sum.Within+sum.Across != 0 {
			t.Errorf("order %v: violations %+v", order, sum)
		}
		used[order] = cl.UsedMachines()
	}
	// Machine counts must be nearly order-independent (Fig. 10 shows
	// identical counts for Aladdin across all four orders).
	min, max := 1<<30, 0
	for _, u := range used {
		if u < min {
			min = u
		}
		if u > max {
			max = u
		}
	}
	if max-min > max/5+2 {
		t.Errorf("machine usage varies too much across orders: %v", used)
	}
}

func TestScheduleFlowConservation(t *testing.T) {
	// Drive the network through placements incl. migrations, then
	// verify Equation 2 holds and total flow equals deployed demand.
	w := trace.MustGenerate(trace.Scaled(9, 300))
	cl := smallCluster(48)
	s := NewDefault()
	r := newRun(s.opts, w, cl)
	var placedFlow int64
	for _, c := range w.Containers() {
		m := r.search.findMachine(c, noExclusion)
		if m == topology.Invalid {
			continue
		}
		if err := r.place(c, m); err != nil {
			t.Fatal(err)
		}
		placedFlow += flowUnits(c)
	}
	if err := r.net.checkConservation(); err != nil {
		t.Fatal(err)
	}
	if got := r.net.totalFlow(); got != placedFlow {
		t.Errorf("total flow %d != placed flow %d", got, placedFlow)
	}
	// Unplace a few and re-check.
	n := 0
	for _, c := range w.Containers() {
		if m := r.asg[c.Ord]; m != topology.Invalid {
			if err := r.unplace(c, m); err != nil {
				t.Fatal(err)
			}
			placedFlow -= flowUnits(c)
			n++
			if n == 10 {
				break
			}
		}
	}
	if err := r.net.checkConservation(); err != nil {
		t.Fatal(err)
	}
	if got := r.net.totalFlow(); got != placedFlow {
		t.Errorf("after unplace: total flow %d != %d", got, placedFlow)
	}
}

func TestOptionsName(t *testing.T) {
	cases := []struct {
		opts Options
		want string
	}{
		{Options{WeightBase: 16}, "Aladdin(16)"},
		{Options{WeightBase: 32, IsomorphismLimiting: true}, "Aladdin(32)+IL"},
		{Options{WeightBase: 64, IsomorphismLimiting: true, DepthLimiting: true}, "Aladdin(64)+IL+DL"},
		{Options{WeightBase: 128, DepthLimiting: true}, "Aladdin(128)+DL"},
	}
	for _, c := range cases {
		if got := c.opts.Name(); got != c.want {
			t.Errorf("Name() = %q, want %q", got, c.want)
		}
	}
	if NewDefault().Name() != "Aladdin(16)+IL+DL" {
		t.Errorf("default name = %q", NewDefault().Name())
	}
}

func TestOptionDefaults(t *testing.T) {
	var o Options
	if o.maxBlockers() != 2 || o.maxRequeues() != 2 {
		t.Error("zero options should default bounds to 2")
	}
	o.MaxBlockersPerMigration = 5
	o.MaxRequeues = 7
	if o.maxBlockers() != 5 || o.maxRequeues() != 7 {
		t.Error("explicit bounds should win")
	}
}

func TestILSkipsSiblingsOfUnplaceableApp(t *testing.T) {
	// Machines nearly full; an app with 50 isomorphic siblings that
	// no machine can take.  With IL the search runs once and the 49
	// siblings skip; the explored-vertex counter proves it.
	w := workload.MustNew([]*workload.App{
		{ID: "big", Demand: resource.Cores(2, 1024), Replicas: 50},
	})
	countExplored := func(il bool) (int64, int) {
		cl := topology.New(topology.Config{
			Machines: 4, MachinesPerRack: 2, RacksPerCluster: 2,
			Capacity: resource.Cores(2, 2048),
		})
		for _, m := range cl.Machines() {
			if err := m.Allocate("filler-"+m.Name, resource.Cores(1, 1)); err != nil {
				t.Fatal(err)
			}
		}
		opts := DefaultOptions()
		opts.IsomorphismLimiting = il
		s := New(opts)
		res, err := s.Schedule(w, cl, w.Arrange(workload.OrderSubmission))
		if err != nil {
			t.Fatal(err)
		}
		return res.WorkUnits, len(res.Undeployed)
	}
	exploredIL, undeployedIL := countExplored(true)
	exploredNo, undeployedNo := countExplored(false)
	if undeployedIL != 50 || undeployedNo != 50 {
		t.Fatalf("both variants must strand all 50: IL=%d no=%d", undeployedIL, undeployedNo)
	}
	if exploredIL*10 > exploredNo {
		t.Errorf("IL explored %d vertices, want < 1/10 of %d", exploredIL, exploredNo)
	}
}

func TestILInvalidatedByRelease(t *testing.T) {
	// A sibling skipped by IL must become placeable again once
	// capacity is released mid-run: preemption by a later
	// high-priority arrival releases space, and subsequently
	// requeued work re-enters the search.  We verify indirectly: IL
	// must not change the final outcome on a preemption-heavy run.
	w := workload.MustNew([]*workload.App{
		{ID: "filler", Demand: resource.Cores(12, 8192), Replicas: 4, Priority: workload.PriorityLow},
		{ID: "late", Demand: resource.Cores(10, 8192), Replicas: 2, Priority: workload.PriorityHigh},
	})
	run := func(il bool) (deployed int) {
		cl := topology.New(topology.Config{
			Machines: 2, MachinesPerRack: 2, RacksPerCluster: 1,
			Capacity: resource.Cores(16, 32*1024),
		})
		opts := DefaultOptions()
		opts.IsomorphismLimiting = il
		res, err := New(opts).Schedule(w, cl, w.Arrange(workload.OrderSubmission))
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Verify(w, cl); err != nil {
			t.Fatal(err)
		}
		return res.Deployed()
	}
	if a, b := run(true), run(false); a != b {
		t.Errorf("IL changed deployment count: %d vs %d", a, b)
	}
}

func TestILReducesExploration(t *testing.T) {
	// IL must not change placements, only cut explored vertices.
	w := trace.MustGenerate(trace.Scaled(13, 150))
	clA := smallCluster(224)
	clB := smallCluster(224)

	base := DefaultOptions()
	base.IsomorphismLimiting = false
	withIL := DefaultOptions()

	arrivals := w.Arrange(workload.OrderSubmission)
	resA, err := New(base).Schedule(w, clA, arrivals)
	if err != nil {
		t.Fatal(err)
	}
	resB, err := New(withIL).Schedule(w, clB, arrivals)
	if err != nil {
		t.Fatal(err)
	}
	if len(resA.Undeployed) != len(resB.Undeployed) {
		t.Errorf("IL changed undeployed: %d vs %d", len(resA.Undeployed), len(resB.Undeployed))
	}
	if va, vb := resA.ViolationSummary().Total(), resB.ViolationSummary().Total(); va != 0 || vb != 0 {
		t.Errorf("violations: %d vs %d", va, vb)
	}
}
