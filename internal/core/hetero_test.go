package core

import (
	"testing"

	"aladdin/internal/resource"
	"aladdin/internal/topology"
	"aladdin/internal/trace"
	"aladdin/internal/workload"
)

func heteroCluster(t *testing.T) *topology.Cluster {
	t.Helper()
	cl, err := topology.NewHeterogeneous(topology.HeteroConfig{
		Classes: []topology.MachineClass{
			{Name: "big", Count: 12, Capacity: resource.Cores(64, 128*1024)},
			{Name: "std", Count: 64, Capacity: resource.Cores(32, 64*1024)},
			{Name: "old", Count: 24, Capacity: resource.Cores(16, 32*1024)},
		},
		MachinesPerRack: 8,
		RacksPerCluster: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

func TestScheduleHeterogeneousCluster(t *testing.T) {
	// The future-work extension: the flow model handles mixed machine
	// classes without modification because capacities are per-machine
	// vectors.
	cl := heteroCluster(t)
	w := workload.MustNew([]*workload.App{
		// Only fits the big class.
		{ID: "huge", Demand: resource.Cores(48, 96*1024), Replicas: 4, AntiAffinitySelf: true},
		// Fits std and big, not old.
		{ID: "mid", Demand: resource.Cores(24, 48*1024), Replicas: 8},
		// Fits everywhere.
		{ID: "small", Demand: resource.Cores(4, 8*1024), Replicas: 30},
	})
	res := mustSchedule(t, NewDefault(), w, cl, workload.OrderInterleaved)
	if len(res.Undeployed) != 0 {
		t.Fatalf("undeployed: %v", res.Undeployed)
	}
	if s := res.ViolationSummary(); s.Total() != 0 {
		t.Fatalf("violations: %+v", s)
	}
	// Class constraints respected: huge containers only on 64c
	// machines, mid never on 16c machines.
	for id, m := range res.Assignment {
		capVec := cl.Machine(m).Capacity()
		switch {
		case len(id) >= 4 && id[:4] == "huge":
			if capVec.Dim(resource.CPU) < 64000 {
				t.Errorf("%s on %s-class machine %v", id, capVec, m)
			}
		case len(id) >= 3 && id[:3] == "mid":
			if capVec.Dim(resource.CPU) < 32000 {
				t.Errorf("%s on undersized machine %v", id, capVec)
			}
		}
	}
}

func TestScheduleHeterogeneousTrace(t *testing.T) {
	cl := heteroCluster(t)
	w := trace.MustGenerate(trace.Scaled(17, 400)) // ~32 apps, ~250 containers
	res := mustSchedule(t, NewDefault(), w, cl, workload.OrderSubmission)
	if s := res.ViolationSummary(); s.Total() != 0 {
		t.Errorf("violations: %+v", s)
	}
	if res.UndeployedFraction() > 0.1 {
		t.Errorf("undeployed fraction %.2f", res.UndeployedFraction())
	}
}

func TestSessionHeterogeneous(t *testing.T) {
	cl := heteroCluster(t)
	w := workload.MustNew([]*workload.App{
		{ID: "a", Demand: resource.Cores(40, 80*1024), Replicas: 2},
		{ID: "b", Demand: resource.Cores(8, 16*1024), Replicas: 6},
	})
	s := NewSession(DefaultOptions(), w, cl)
	if _, err := s.Place(w.Containers()); err != nil {
		t.Fatal(err)
	}
	if len(s.Assignment()) != 8 {
		t.Errorf("placed %d, want 8", len(s.Assignment()))
	}
	if err := s.FlowConservation(); err != nil {
		t.Error(err)
	}
}
